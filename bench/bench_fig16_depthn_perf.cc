/**
 * @file
 * Figure 16 reproduction: normalized performance of Depth-16,
 * Depth-32, Fastswap and HoPP (§VI-C). Depth-N's fixed early
 * injection does not reliably beat Fastswap (it cannot observe hits
 * and pollutes the MRU end of the LRU), while HoPP is best of four.
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    const char *names[] = {"npb-cg", "npb-ft", "npb-lu", "npb-mg",
                           "npb-is", "kmeans-omp", "quicksort", "hpl",
                           "graphx-bfs", "graphx-cc"};

    bench::RunCache cache;
    bench::RunCache cache16;
    cache16.base().depth = 16;
    bench::RunCache cache32;
    cache32.base().depth = 32;

    stats::Table table("Figure 16: normalized performance vs Depth-N");
    table.header({"Workload", "Depth-16", "Depth-32", "Fastswap",
                  "HoPP"});

    double sums[4] = {0, 0, 0, 0};
    for (const auto &w : names) {
        Tick local = cache.localTime(w);
        double d16 = normalizedPerformance(
            local, cache16.run(w, SystemKind::DepthN, 0.5).makespan);
        double d32 = normalizedPerformance(
            local, cache32.run(w, SystemKind::DepthN, 0.5).makespan);
        double fs = cache.normPerf(w, SystemKind::Fastswap, 0.5);
        double hp = cache.normPerf(w, SystemKind::Hopp, 0.5);
        sums[0] += d16;
        sums[1] += d32;
        sums[2] += fs;
        sums[3] += hp;
        table.row({w, stats::Table::num(d16, 3),
                   stats::Table::num(d32, 3), stats::Table::num(fs, 3),
                   stats::Table::num(hp, 3)});
    }
    double n = static_cast<double>(std::size(names));
    table.row({"Average", stats::Table::num(sums[0] / n, 3),
               stats::Table::num(sums[1] / n, 3),
               stats::Table::num(sums[2] / n, 3),
               stats::Table::num(sums[3] / n, 3)});
    table.print();
    std::puts("Paper Fig 16 (for comparison): Depth-N does not"
              " necessarily outperform Fastswap (e.g. NPB-MG); HoPP"
              " achieves the best of the four everywhere.");
    return 0;
}
