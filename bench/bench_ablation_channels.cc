/**
 * @file
 * Ablation (§III-B): multi-channel memory controllers. Interleaved
 * channels split a page's cachelines over all MCs, so each HPD sees
 * only 64/channels lines — the paper prescribes reducing N to keep
 * extraction timely, with repeats de-duplicated in the framework.
 * Non-interleaved channels extract whole pages per channel and the
 * framework merges the streams.
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    const char *names[] = {"kmeans-omp", "npb-cg", "npb-mg"};

    stats::Table table(
        "Ablation: memory channels (§III-B) @50% local, HoPP");
    table.header({"Workload", "channels", "layout", "N/channel",
                  "hot/access", "coverage", "CT (ms)"});

    for (const auto &w : names) {
        struct Cfg
        {
            unsigned channels;
            bool interleaved;
            bool scaleN;
        };
        for (Cfg c : {Cfg{1, true, true}, Cfg{2, true, true},
                      Cfg{4, true, true}, Cfg{4, true, false},
                      Cfg{4, false, true}}) {
            MachineConfig cfg;
            cfg.system = SystemKind::Hopp;
            cfg.localMemRatio = 0.5;
            cfg.hopp.channels = c.channels;
            cfg.hopp.channelInterleaved = c.interleaved;
            cfg.hopp.scaleThresholdWithChannels = c.scaleN;
            Machine m(cfg);
            m.addWorkload(
                workloads::makeWorkload(w, bench::benchScale()));
            auto r = m.run();
            auto *h = m.hoppSystem();
            auto totals = h->hpdTotals();
            table.row(
                {w, std::to_string(c.channels),
                 c.interleaved ? "interleaved" : "per-page",
                 std::to_string(h->hpd(0).config().threshold),
                 stats::Table::pct(totals.hotRatio(), 2),
                 stats::Table::num(r.coverage, 3),
                 stats::Table::num(
                     toDouble(r.makespan) / 1e6, 2)});
        }
    }
    table.print();
    std::puts("Per §III-B: interleaving without reducing N (row"
              " '4 interleaved N=8') starves the HPD — each channel"
              " sees only 16 of a page's 64 lines, so extraction is"
              " late or never; scaling N with the channel count"
              " restores coverage, at the cost of more repeated"
              " extractions de-duplicated by the framework.");
    return 0;
}
