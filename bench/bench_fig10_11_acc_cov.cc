/**
 * @file
 * Figures 10 and 11 reproduction: prefetching accuracy and coverage of
 * Fastswap's readahead vs HoPP on the non-JVM programs at 50% local
 * memory. HoPP's coverage is split as in Fig 11: the swapcache-hit
 * part (pages prefetched during faults) and the DRAM-hit part (pages
 * injected by the HoPP framework, which never fault).
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    bench::RunCache cache;
    auto names = workloads::nonJvmWorkloadNames();

    stats::Table acc("Figure 10: prefetch accuracy, non-JVM @50%");
    acc.header({"Workload", "Fastswap", "HoPP"});
    stats::Table cov("Figure 11: prefetch coverage, non-JVM @50%");
    cov.header({"Workload", "Fastswap", "HoPP", "HoPP(swapcache part)",
                "HoPP(DRAM-hit part)"});

    double fs_acc = 0, hp_acc = 0, fs_cov = 0, hp_cov = 0;
    for (const auto &w : names) {
        const auto &fs = cache.run(w, SystemKind::Fastswap, 0.5);
        const auto &hp = cache.run(w, SystemKind::Hopp, 0.5);
        fs_acc += fs.accuracy;
        hp_acc += hp.systemAccuracy;
        fs_cov += fs.coverage;
        hp_cov += hp.coverage;
        acc.row({w, stats::Table::num(fs.accuracy, 3),
                 stats::Table::num(hp.systemAccuracy, 3)});
        cov.row({w, stats::Table::num(fs.coverage, 3),
                 stats::Table::num(hp.coverage, 3),
                 stats::Table::num(hp.coverage - hp.dramHitCoverage, 3),
                 stats::Table::num(hp.dramHitCoverage, 3)});
    }
    double n = static_cast<double>(names.size());
    acc.row({"Average", stats::Table::num(fs_acc / n, 3),
             stats::Table::num(hp_acc / n, 3)});
    cov.row({"Average", stats::Table::num(fs_cov / n, 3),
             stats::Table::num(hp_cov / n, 3), "", ""});
    acc.print();
    cov.print();
    std::puts("Paper (for comparison): HoPP accuracy > 0.9 everywhere,"
              " ~18% above Fastswap on average; HoPP coverage > 0.99"
              " on QuickSort/K-means with zero page faults observed.");
    return 0;
}
