/**
 * @file
 * Ablation: HPD design choices, end to end. Table II reports the
 * extraction ratio per threshold N; this ablation closes the loop by
 * measuring how N and table geometry move prefetch *coverage* and
 * completion time (the §III-B trade-off between timely extraction and
 * bandwidth: small N extracts earlier but repeats more; large N risks
 * eviction before extraction).
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

runner::RunResult
runHpd(const char *workload, unsigned threshold, std::size_t sets,
       std::size_t ways)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    cfg.hopp.hpd.threshold = threshold;
    cfg.hopp.hpd.sets = sets;
    cfg.hopp.hpd.ways = ways;
    Machine m(cfg);
    m.addWorkload(
        workloads::makeWorkload(workload, hopp::bench::benchScale()));
    return m.run();
}

} // namespace

int
main()
{
    stats::Table thr("Ablation: HPD threshold N, end-to-end @50%");
    thr.header({"Workload", "N", "CT (ms)", "coverage",
                "DRAM-hit part"});
    for (const char *w : {"kmeans-omp", "npb-mg"}) {
        for (unsigned n : {2u, 8u, 32u}) {
            auto r = runHpd(w, n, 4, 16);
            thr.row({w, std::to_string(n),
                     stats::Table::num(
                         toDouble(r.makespan) / 1e6, 2),
                     stats::Table::num(r.coverage, 3),
                     stats::Table::num(r.dramHitCoverage, 3)});
        }
    }
    thr.print();

    stats::Table geo("Ablation: HPD table geometry (sets x ways)");
    geo.header({"Workload", "geometry", "CT (ms)", "coverage"});
    struct Geometry
    {
        std::size_t sets, ways;
    };
    for (const char *w : {"npb-cg", "graphx-pr"}) {
        for (Geometry g : {Geometry{1, 16}, Geometry{4, 16},
                           Geometry{16, 16}, Geometry{4, 64}}) {
            auto r = runHpd(w, 8, g.sets, g.ways);
            geo.row({w,
                     std::to_string(g.sets) + "x" +
                         std::to_string(g.ways),
                     stats::Table::num(
                         toDouble(r.makespan) / 1e6, 2),
                     stats::Table::num(r.coverage, 3)});
        }
    }
    geo.print();
    std::puts("The paper's 4x16 @ N=8 sits at the knee: bigger tables"
              " or smaller thresholds buy little coverage for more"
              " hot-page bandwidth (Table II / §III-B).");
    return 0;
}
