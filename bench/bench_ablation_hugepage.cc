/**
 * @file
 * Ablation (§IV extension): huge-batch prefetching. Once a simple
 * stream proves long, HoPP can swap many consecutive future pages in
 * one RDMA request (the paper's 2 MB-reservation direction) instead
 * of page-by-page. Compares completion time and transfer counts with
 * batching off/on across streaming workloads.
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    const char *names[] = {"microbench", "kmeans-omp", "npb-is",
                           "quicksort"};

    auto sweep = [&](const char *caption, Duration issue_overhead) {
        stats::Table table(caption);
        table.header({"Workload", "CT off (ms)", "CT on (ms)",
                      "Speedup", "page reads off", "page reads on",
                      "batches"});
        for (const auto &w : names) {
            auto run = [&](bool enabled) {
                MachineConfig cfg;
                cfg.system = SystemKind::Hopp;
                cfg.localMemRatio = 0.5;
                cfg.link.perTransferOverhead = issue_overhead;
                cfg.hopp.batch.enabled = enabled;
                cfg.hopp.batch.batchPages = 32;
                cfg.hopp.batch.minStreamLen = 128;
                cfg.hopp.batch.everyHotPages = 24;
                Machine m(cfg);
                m.addWorkload(
                    workloads::makeWorkload(w, bench::benchScale()));
                auto r = m.run();
                struct Out
                {
                    Tick ct;
                    std::uint64_t transfers;
                    std::uint64_t batches;
                };
                return Out{r.makespan,
                           m.backend().demandReads() +
                               m.backend().prefetchReads(),
                           m.backend().batchReads()};
            };
            auto off = run(false);
            auto on = run(true);
            table.row(
                {w,
                 stats::Table::num(toDouble(off.ct) / 1e6,
                                   2),
                 stats::Table::num(toDouble(on.ct) / 1e6,
                                   2),
                 stats::Table::num(toDouble(off.ct) /
                                       toDouble(on.ct),
                                   3),
                 std::to_string(off.transfers),
                 std::to_string(on.transfers),
                 std::to_string(on.batches)});
        }
        table.print();
    };

    sweep("Ablation: huge-batch prefetching @50%, fast-issue NIC"
          " (150 ns/transfer)",
          150);
    sweep("Ablation: huge-batch prefetching @50%, slow-issue NIC"
          " (3 us/transfer)",
          3000);

    std::puts("Finding: with a fast-issue NIC, a 32-page batch"
              " head-of-line blocks the timely per-page path on the"
              " FIFO link and *hurts* — which is why the paper leaves"
              " 2 MB batched swap-in as future work needing a reserved"
              " space. When per-transfer issue overhead dominates"
              " (slow-issue NIC), amortizing it across a batch wins.");
    return 0;
}
