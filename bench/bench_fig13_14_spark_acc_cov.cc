/**
 * @file
 * Figures 13 and 14 reproduction: prefetch accuracy and coverage on
 * the Spark/GraphX workloads. JVM memory management produces many
 * short streams, so coverage is lower than for the non-JVM programs
 * (§VI-B), but HoPP still leads Fastswap on both metrics.
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    bench::RunCache cache;
    auto names = workloads::sparkWorkloadNames();

    stats::Table acc("Figure 13: prefetch accuracy, Spark workloads");
    acc.header({"Workload", "Fastswap", "HoPP"});
    stats::Table cov("Figure 14: prefetch coverage, Spark workloads");
    cov.header({"Workload", "Fastswap", "HoPP", "HoPP(DRAM-hit part)"});

    double fs_acc = 0, hp_acc = 0, fs_cov = 0, hp_cov = 0;
    for (const auto &w : names) {
        double ratio = w == "spark-kmeans" ? 0.15 : 0.33;
        const auto &fs = cache.run(w, SystemKind::Fastswap, ratio);
        const auto &hp = cache.run(w, SystemKind::Hopp, ratio);
        fs_acc += fs.accuracy;
        hp_acc += hp.systemAccuracy;
        fs_cov += fs.coverage;
        hp_cov += hp.coverage;
        acc.row({w, stats::Table::num(fs.accuracy, 3),
                 stats::Table::num(hp.systemAccuracy, 3)});
        cov.row({w, stats::Table::num(fs.coverage, 3),
                 stats::Table::num(hp.coverage, 3),
                 stats::Table::num(hp.dramHitCoverage, 3)});
    }
    double n = static_cast<double>(names.size());
    acc.row({"Average", stats::Table::num(fs_acc / n, 3),
             stats::Table::num(hp_acc / n, 3)});
    cov.row({"Average", stats::Table::num(fs_cov / n, 3),
             stats::Table::num(hp_cov / n, 3), ""});
    acc.print();
    cov.print();
    std::printf("HoPP vs Fastswap: +%.1f%% accuracy, +%.1f%% coverage"
                " (absolute, averaged).\n",
                100.0 * (hp_acc - fs_acc) / n,
                100.0 * (hp_cov - fs_cov) / n);
    std::puts("Paper (for comparison): HoPP is 18% / 29.1% above"
              " Fastswap on average Spark accuracy / coverage.");
    return 0;
}
