/**
 * @file
 * Ablation: policy-engine parameters (§III-E) and software data-path
 * latency. Sweeps the timeliness band [T_min, T_max], the adaptation
 * step alpha, and the trainer's hot-page-to-decision delay, on the
 * §VI-E microbenchmark.
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

runner::RunResult
runMicro(MachineConfig cfg)
{
    Machine m(cfg);
    m.addWorkload(
        workloads::makeWorkload("microbench", hopp::bench::benchScale()));
    return m.run();
}

MachineConfig
base()
{
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    return cfg;
}

std::string
ms(Tick t)
{
    return hopp::stats::Table::num(toDouble(t) / 1e6, 2);
}

} // namespace

int
main()
{
    using namespace hopp::time_literals;

    stats::Table tmin("Ablation: T_min (grow-offset threshold)");
    tmin.header({"T_min", "CT (ms)"});
    for (Duration t : {5_us, 20_us, 40_us, 160_us, 640_us}) {
        MachineConfig cfg = base();
        cfg.hopp.policy.tMin = t;
        tmin.row({std::to_string(t / 1000) + "us",
                  ms(runMicro(cfg).makespan)});
    }
    tmin.print();

    stats::Table alpha("Ablation: adaptation step alpha");
    alpha.header({"alpha", "CT (ms)"});
    for (double a : {0.05, 0.1, 0.2, 0.4, 0.8}) {
        MachineConfig cfg = base();
        cfg.hopp.policy.alpha = a;
        alpha.row({stats::Table::num(a, 2),
                   ms(runMicro(cfg).makespan)});
    }
    alpha.print();

    stats::Table delay("Ablation: trainer data-path delay");
    delay.header({"delay", "CT (ms)", "coverage"});
    for (Duration d : {0_us, 1_us, 5_us, 20_us, 100_us}) {
        MachineConfig cfg = base();
        cfg.hopp.trainerDelay = d;
        auto r = runMicro(cfg);
        delay.row({std::to_string(d / 1000) + "us", ms(r.makespan),
                   stats::Table::num(r.coverage, 3)});
    }
    delay.print();
    std::puts("The paper's defaults (alpha=0.2, T_min=40us) sit on the"
              " flat part of each curve; the asynchronous data path"
              " tolerates tens of microseconds of software latency"
              " because the offset adapts to absorb it (§III-E).");
    return 0;
}
