/**
 * @file
 * Figure 12 reproduction: normalized performance of Fastswap and HoPP
 * on the Spark/GraphX workloads. Per §VI-B, Spark-KMeans runs with
 * 2 GB of 13 GB local (~15%); the other Spark applications with 11 GB
 * of 33 GB (~33%).
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

double
ratioFor(const std::string &w)
{
    return w == "spark-kmeans" ? 0.15 : 0.33;
}

} // namespace

int
main()
{
    bench::RunCache cache;
    auto names = workloads::sparkWorkloadNames();

    stats::Table table(
        "Figure 12: normalized performance, Spark workloads");
    table.header({"Workload", "LocalRatio", "Fastswap", "HoPP",
                  "HoPP/FS"});

    double fs_sum = 0, hp_sum = 0;
    for (const auto &w : names) {
        double ratio = ratioFor(w);
        double fs = cache.normPerf(w, SystemKind::Fastswap, ratio);
        double hp = cache.normPerf(w, SystemKind::Hopp, ratio);
        fs_sum += fs;
        hp_sum += hp;
        table.row({w, stats::Table::pct(ratio, 0),
                   stats::Table::num(fs, 3), stats::Table::num(hp, 3),
                   stats::Table::num(hp / fs, 3)});
    }
    double n = static_cast<double>(names.size());
    table.row({"Average", "", stats::Table::num(fs_sum / n, 3),
               stats::Table::num(hp_sum / n, 3),
               stats::Table::num(hp_sum / fs_sum, 3)});
    table.print();
    std::printf("HoPP accelerates Fastswap by %.1f%% on average.\n",
                100.0 * (hp_sum / fs_sum - 1.0));
    std::puts("Paper Fig 12 (for comparison): averages FS 0.264 /"
              " HoPP 0.357; HoPP accelerates Fastswap by 34.7% on"
              " average (52.2% max on Spark-KMeans, 18.4% min on CC).");
    return 0;
}
