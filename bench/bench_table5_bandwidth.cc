/**
 * @file
 * Table V reproduction: extra DRAM bandwidth consumed by (a) HPD
 * writing hot-page records and (b) RPT-cache queries to the DRAM RPT,
 * as a percentage of application DRAM traffic (§VI-F).
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    struct Row
    {
        const char *workload;
        const char *label;
    };
    const Row rows[] = {
        {"kmeans-omp", "Kmeans"},   {"quicksort", "quicksort"},
        {"hpl", "HPL"},             {"npb-cg", "CG"},
        {"npb-ft", "FT"},           {"npb-lu", "LU"},
        {"npb-mg", "MG"},           {"npb-is", "IS"},
        {"graphx-pr", "PR"},        {"graphx-cc", "CC"},
        {"graphx-bfs", "BFS"},      {"graphx-lp", "LP"},
        {"spark-kmeans", "Kmeans(S)"}, {"spark-bayes", "Bayes(S)"},
    };

    stats::Table table("Table V: extra bandwidth of HPD / RPT (%)");
    table.header({"Program", "HPD %", "RPT %", "RPT % (scaled cache)"});
    double hpd_sum = 0.0, rpt_sum = 0.0, rpt_small_sum = 0.0;

    auto measure = [](const char *workload,
                      std::uint64_t rpt_cache_bytes) {
        MachineConfig cfg;
        cfg.system = SystemKind::HoppOnly;
        cfg.localMemRatio = 0.5;
        cfg.hopp.rptCache.capacityBytes = rpt_cache_bytes;
        Machine m(cfg);
        m.addWorkload(
            workloads::makeWorkload(workload, bench::benchScale()));
        m.run();
        auto &dram = m.dram();
        using mem::TrafficSource;
        double app =
            static_cast<double>(dram.traffic(TrafficSource::AppRead) +
                                dram.traffic(TrafficSource::AppWrite));
        double hpd = 100.0 *
                     static_cast<double>(
                         dram.traffic(TrafficSource::HotPageWrite)) /
                     app;
        double rpt = 100.0 *
                     static_cast<double>(
                         dram.traffic(TrafficSource::RptQuery)) /
                     app;
        return std::pair{hpd, rpt};
    };

    for (const auto &row : rows) {
        // Default 64 KB cache, plus an 8 KB cache whose entry count
        // relative to the scaled footprints approximates the paper's
        // 8K-entry cache vs GB-class footprints.
        auto [hpd, rpt] = measure(row.workload, 64 << 10);
        auto [hpd2, rpt_small] = measure(row.workload, 8 << 10);
        (void)hpd2;
        hpd_sum += hpd;
        rpt_sum += rpt;
        rpt_small_sum += rpt_small;
        table.row({row.label, stats::Table::num(hpd, 3),
                   stats::Table::num(rpt, 4),
                   stats::Table::num(rpt_small, 4)});
    }
    double n = static_cast<double>(std::size(rows));
    table.row({"Average", stats::Table::num(hpd_sum / n, 3),
               stats::Table::num(rpt_sum / n, 4),
               stats::Table::num(rpt_small_sum / n, 4)});
    table.print();
    std::puts("Paper Table V (for comparison): HPD average 0.16%"
              " (0.09-0.30%), RPT average 0.004%. Our scaled"
              " footprints fit inside the default 64 KB cache, so the"
              " scaled-cache column restores the paper's"
              " cache-to-footprint ratio.");
    return 0;
}
