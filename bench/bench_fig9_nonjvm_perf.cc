/**
 * @file
 * Figure 9 reproduction: normalized performance (CT_local/CT_system)
 * of Fastswap and HoPP on the non-JVM programs with local memory
 * limited to 50% and 25% of the footprint (§VI-B).
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    bench::RunCache cache;
    auto names = workloads::nonJvmWorkloadNames();

    // Pre-run the whole grid (HOPP_BENCH_JOBS host threads; serial by
    // default). The figure loops below then read from the cache, with
    // numbers identical to a serial fill.
    std::vector<bench::RunSpec> grid;
    for (const auto &w : names) {
        grid.push_back({w, SystemKind::Local, 1.0});
        for (double ratio : {0.5, 0.25}) {
            grid.push_back({w, SystemKind::Fastswap, ratio});
            grid.push_back({w, SystemKind::Hopp, ratio});
        }
    }
    cache.prefill(grid, bench::benchJobs());

    stats::Table table(
        "Figure 9: normalized performance, non-JVM workloads");
    table.header({"Workload", "FS@50%", "HoPP@50%", "FS@25%",
                  "HoPP@25%"});

    double sum[4] = {0, 0, 0, 0};
    for (const auto &w : names) {
        double fs50 = cache.normPerf(w, SystemKind::Fastswap, 0.5);
        double hp50 = cache.normPerf(w, SystemKind::Hopp, 0.5);
        double fs25 = cache.normPerf(w, SystemKind::Fastswap, 0.25);
        double hp25 = cache.normPerf(w, SystemKind::Hopp, 0.25);
        sum[0] += fs50;
        sum[1] += hp50;
        sum[2] += fs25;
        sum[3] += hp25;
        table.row({w, stats::Table::num(fs50, 3),
                   stats::Table::num(hp50, 3),
                   stats::Table::num(fs25, 3),
                   stats::Table::num(hp25, 3)});
    }
    double n = static_cast<double>(names.size());
    table.row({"Average", stats::Table::num(sum[0] / n, 3),
               stats::Table::num(sum[1] / n, 3),
               stats::Table::num(sum[2] / n, 3),
               stats::Table::num(sum[3] / n, 3)});
    table.print();

    std::printf("HoPP over Fastswap: %.1f%% average improvement @50%%,"
                " %.1f%% @25%%\n",
                100.0 * (sum[1] / sum[0] - 1.0),
                100.0 * (sum[3] / sum[2] - 1.0));
    std::puts("Paper Fig 9 (for comparison): averages FS 0.563 / HoPP"
              " 0.674 @50% (+24.9%); FS 0.409 / HoPP 0.531 @25%"
              " (+32%).");
    return 0;
}
