/**
 * @file
 * Figure 21 reproduction: the relationship between normalized
 * performance, prefetch accuracy and coverage. Per the paper, HoPP's
 * coverage here counts only DRAM hits; when both accuracy and
 * coverage approach 1, HoPP's normalized performance approaches 1
 * regardless of how much of the working set is disaggregated — and at
 * similar coverage, Fastswap still loses due to the 2.3 us
 * prefetch-hit overhead (§VI-D).
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    bench::RunCache cache;
    auto names = workloads::allWorkloadNames();

    stats::Table table(
        "Figure 21: accuracy vs coverage vs normalized performance"
        " @50%");
    table.header({"Workload", "System", "Accuracy", "Coverage",
                  "NormPerf"});

    for (const auto &w : names) {
        const auto &fs = cache.run(w, SystemKind::Fastswap, 0.5);
        const auto &hp = cache.run(w, SystemKind::Hopp, 0.5);
        Tick local = cache.localTime(w);
        table.row({w, "fastswap", stats::Table::num(fs.accuracy, 3),
                   stats::Table::num(fs.coverage, 3),
                   stats::Table::num(
                       normalizedPerformance(local, fs.makespan), 3)});
        table.row({w, "hopp", stats::Table::num(hp.systemAccuracy, 3),
                   stats::Table::num(hp.dramHitCoverage, 3),
                   stats::Table::num(
                       normalizedPerformance(local, hp.makespan), 3)});
    }
    table.print();
    std::puts("Paper Fig 21 (for comparison): points with accuracy"
              " and coverage both near 1 (QuickSort, K-means-OMP under"
              " HoPP) sit near normalized performance 1; Fastswap"
              " points with similar coverage still perform worse"
              " because every hit costs a 2.3 us fault.");
    return 0;
}
