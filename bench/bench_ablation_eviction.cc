/**
 * @file
 * Ablation (§IV direction): trace-informed page eviction. The same
 * hot-page trace that trains prefetching can advise kernel reclaim:
 * pages extracted as hot within a recent window get a second chance
 * even when their accessed bit was already consumed. Compares reclaim
 * quality (refaults of recently-hot pages) and completion time.
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    const char *names[] = {"quicksort", "graphx-pr", "npb-cg",
                           "spark-kmeans"};

    stats::Table table(
        "Ablation: hot-page-trace eviction advice @50%");
    table.header({"Workload", "CT off (ms)", "CT on (ms)", "Speedup",
                  "remote faults off", "remote faults on"});

    for (const auto &w : names) {
        auto run = [&](bool enabled) {
            MachineConfig cfg;
            cfg.system = SystemKind::Hopp;
            cfg.localMemRatio = 0.5;
            cfg.hopp.evictionAdvisor = enabled;
            Machine m(cfg);
            m.addWorkload(
                workloads::makeWorkload(w, bench::benchScale()));
            return m.run();
        };
        auto off = run(false);
        auto on = run(true);
        table.row(
            {w,
             stats::Table::num(toDouble(off.makespan) / 1e6,
                               2),
             stats::Table::num(toDouble(on.makespan) / 1e6,
                               2),
             stats::Table::num(toDouble(off.makespan) /
                                   toDouble(on.makespan),
                               3),
             std::to_string(off.vms.remoteFaults),
             std::to_string(on.vms.remoteFaults)});
    }
    table.print();
    std::puts("Keeping recently-hot pages resident helps reuse-heavy"
              " patterns (quicksort recursion, graph vertex sets) and"
              " is bounded by the rotation cap elsewhere — the §IV"
              " \"improving kernel page eviction\" direction.");
    return 0;
}
