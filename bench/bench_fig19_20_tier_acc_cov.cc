/**
 * @file
 * Figures 19 and 20 reproduction: per-tier accuracy and per-tier
 * coverage contribution of the adaptive three-tier prefetcher
 * (§VI-D). Every tier's accuracy stays high; SSP contributes most of
 * the coverage, with LSP and RSP adding more on ladder-heavy (HPL)
 * and ripple-heavy (NPB-MG) programs.
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::core;
using namespace hopp::runner;

int
main()
{
    const char *names[] = {"hpl", "npb-mg", "npb-lu", "kmeans-omp",
                           "quicksort", "npb-cg", "npb-ft", "npb-is"};

    stats::Table acc("Figure 19: per-tier prefetch accuracy");
    acc.header({"Workload", "SSP", "LSP", "RSP"});
    stats::Table cov("Figure 20: per-tier coverage contribution");
    cov.header({"Workload", "SSP", "LSP", "RSP", "total(DRAM-hit)"});

    for (const auto &w : names) {
        MachineConfig cfg;
        cfg.system = SystemKind::Hopp;
        cfg.localMemRatio = 0.5;
        Machine m(cfg);
        m.addWorkload(workloads::makeWorkload(w, bench::benchScale()));
        auto r = m.run();
        auto *h = m.hoppSystem();
        std::vector<std::string> acells{w};
        std::vector<std::string> ccells{w};
        std::uint64_t denom = r.demandRemote;
        std::uint64_t total_hits = 0;
        for (auto t : {Tier::Ssp, Tier::Lsp, Tier::Rsp})
            total_hits += h->exec().tierStats(t).hits;
        denom += total_hits +
                 (r.vms.swapCacheHits + r.vms.inflightWaits);
        for (auto t : {Tier::Ssp, Tier::Lsp, Tier::Rsp}) {
            const auto &ts = h->exec().tierStats(t);
            acells.push_back(ts.completed
                                 ? stats::Table::num(ts.accuracy(), 3)
                                 : "-");
            double c = denom ? static_cast<double>(ts.hits) /
                                   static_cast<double>(denom)
                             : 0.0;
            ccells.push_back(stats::Table::num(c, 3));
        }
        ccells.push_back(stats::Table::num(
            denom ? static_cast<double>(total_hits) /
                        static_cast<double>(denom)
                  : 0.0,
            3));
        acc.row(std::move(acells));
        cov.row(std::move(ccells));
    }
    acc.print();
    cov.print();
    std::puts("Paper (for comparison): every tier's accuracy > 0.9;"
              " on HPL and NPB-MG, LSP adds ~9.1% coverage and RSP"
              " ~10% on top of SSP (§VI-D).");
    return 0;
}
