/**
 * @file
 * Component microbenchmarks (google-benchmark): throughput of the
 * hardware-model hot paths — HPD accesses, RPT cache lookups/updates,
 * STT feeding + three-tier training, LLC accesses, the event queue,
 * and Leap's stride detector. These bound the simulator's speed and
 * sanity-check that per-access costs stay O(1).
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "hopp/algorithms.hh"
#include "hopp/hpd.hh"
#include "hopp/rpt.hh"
#include "hopp/stt.hh"
#include "mem/llc.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

using namespace hopp;

static void
BM_HpdStreamingAccess(benchmark::State &state)
{
    core::Hpd hpd(core::HpdConfig{});
    PhysAddr pa;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hpd.access(pa, false));
        pa += lineBytes;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HpdStreamingAccess);

static void
BM_HpdHotSetAccess(benchmark::State &state)
{
    // Pathological reuse: every access hits the same tracked page.
    core::Hpd hpd(core::HpdConfig{});
    for (auto _ : state)
        benchmark::DoNotOptimize(hpd.access(PhysAddr{0x1000}, false));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HpdHotSetAccess);

static void
BM_RptCacheLookupHit(benchmark::State &state)
{
    mem::Dram dram(16);
    core::Rpt rpt;
    core::RptCache cache(rpt, dram);
    for (std::uint64_t p = 0; p < 1024; ++p)
        cache.update(Ppn{p}, core::RptEntry{Pid{1}, Vpn{p}});
    std::uint64_t p = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(Ppn{p}));
        p = (p + 1) & 1023;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RptCacheLookupHit);

static void
BM_RptCacheUpdate(benchmark::State &state)
{
    mem::Dram dram(16);
    core::Rpt rpt;
    core::RptCache cache(rpt, dram);
    std::uint64_t p = 0;
    for (auto _ : state) {
        cache.update(Ppn{p}, core::RptEntry{Pid{1}, Vpn{p}});
        p = (p + 1) & ((1 << 16) - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RptCacheUpdate);

static void
BM_SttFeedSequential(benchmark::State &state)
{
    core::Stt stt;
    Vpn v;
    for (auto _ : state) {
        benchmark::DoNotOptimize(stt.feed(Pid{1}, v++));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SttFeedSequential);

static void
BM_ThreeTierOnFullStream(benchmark::State &state)
{
    core::Stt stt;
    core::StreamView view{};
    Vpn v;
    // Prime one stream to full.
    for (int i = 0; i < 16; ++i) {
        if (auto r = stt.feed(Pid{1}, v++))
            view = *r;
    }
    for (auto _ : state) {
        auto r = stt.feed(Pid{1}, v++);
        if (r)
            benchmark::DoNotOptimize(core::runThreeTier(*r));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThreeTierOnFullStream);

static void
BM_LspWorstCase(benchmark::State &state)
{
    // LSP runs only when SSP fails: cross-stream ladder history.
    std::vector<Vpn> vpns;
    static const unsigned off[3] = {0, 2, 1};
    for (unsigned i = 0; i < 16; ++i)
        vpns.push_back(Vpn{(i / 3) * 16ull + off[i % 3]});
    std::vector<std::int64_t> strides;
    for (std::size_t i = 1; i < vpns.size(); ++i)
        strides.push_back(signedDelta(vpns[i - 1], vpns[i]));
    core::StreamView view{Pid{1}, 1, 100, &vpns, &strides};
    for (auto _ : state)
        benchmark::DoNotOptimize(core::runLsp(view));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LspWorstCase);

static void
BM_LlcStreamingAccess(benchmark::State &state)
{
    mem::Llc llc(mem::LlcConfig{});
    PhysAddr pa;
    for (auto _ : state) {
        benchmark::DoNotOptimize(llc.access(pa));
        pa += lineBytes;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LlcStreamingAccess);

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    sim::EventQueue eq;
    for (auto _ : state) {
        eq.schedule(eq.now() + 1, [] {});
        eq.runOne();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_Pcg32Next(benchmark::State &state)
{
    Pcg32 rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Pcg32Next);

static void
BM_HpdSteadyState(benchmark::State &state)
{
    // Steady-state extraction rate: the HPD table and its aging state
    // survive across benchmark repetitions (only the counters reset),
    // so later repetitions measure a warm table rather than cold
    // fills. Counters reset through the same StatSet resetter registry
    // the stats dump uses — not per-field — so a counter added to
    // HpdStats later is automatically covered here too.
    static core::Hpd hpd(core::HpdConfig{});
    stats::StatSet set("hpd");
    set.addResetter([] { hpd.resetStats(); });
    set.resetAll();

    Pcg32 rng(3);
    for (auto _ : state) {
        PhysAddr pa{static_cast<std::uint64_t>(rng.below(1 << 14))
                    << pageShift};
        benchmark::DoNotOptimize(hpd.access(pa, false));
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["hot_ratio"] = hpd.stats().hotRatio();
}
BENCHMARK(BM_HpdSteadyState)->Repetitions(3)->ReportAggregatesOnly(true);

BENCHMARK_MAIN();
