/**
 * @file
 * Table II reproduction: the ratio between hot pages identified and
 * memory accesses (LLC-miss reads at the MC) as the HPD threshold N
 * sweeps {2, 4, 8, 16, 32} (§III-B).
 *
 * Like the paper's offline-trace methodology, the application runs
 * with its full footprint local so the access stream is undisturbed
 * by swapping; only the HPD observes the MC traffic.
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    const char *workloads[] = {"kmeans-omp", "graphx-pr", "graphx-cc",
                               "graphx-lp", "graphx-bfs"};
    const char *rows[] = {"K-means", "PageRank", "CC", "LP", "BFS"};
    const unsigned thresholds[] = {2, 4, 8, 16, 32};

    stats::Table table(
        "Table II: hot pages identified / memory accesses (%)");
    table.header({"Workload", "N=2", "N=4", "N=8", "N=16", "N=32"});

    for (std::size_t w = 0; w < std::size(workloads); ++w) {
        std::vector<std::string> cells{rows[w]};
        for (unsigned n : thresholds) {
            MachineConfig cfg;
            cfg.system = SystemKind::HoppOnly;
            cfg.localMemRatio = 1.2; // everything local: offline trace
            cfg.hopp.hpd.threshold = n;
            Machine m(cfg);
            m.addWorkload(workloads::makeWorkload(
                workloads[w], bench::benchScale()));
            // Full footprint local: pure trace-collection run.
            m.run();
            double ratio = m.hoppSystem()->hpd().stats().hotRatio();
            cells.push_back(stats::Table::pct(ratio, 2));
        }
        table.row(std::move(cells));
    }
    table.print();
    std::puts("Paper Table II (for comparison): K-means 1.72..1.54%,"
              " PageRank 11.72..0.84%, CC 5.18..1.02%,"
              " LP 3.96..1.26%, BFS 4.01..1.23% (N=2..32).");
    return 0;
}
