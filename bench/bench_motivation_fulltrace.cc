/**
 * @file
 * §II-B motivation study: feeding the majority-based prefetcher with
 * the *full* memory trace (HoPP's hot pages, with page clustering and
 * the large per-stream window) versus the fault-address-only view
 * Leap gets. The paper measures +10.6% accuracy and +13.9% coverage
 * from the full trace alone.
 *
 * Here: "leap" = majority prefetching on fault addresses;
 * "hopp-ssp" = the same majority detection on the full hot-page
 * trace, clustered into per-stream windows by the STT (LSP/RSP
 * disabled so only the revamped majority algorithm runs).
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    // Interference-heavy workloads where fault-only history suffers
    // from the paper's limitations (1)-(3); "microbench" is exactly
    // the Fig. 1 scenario (two concurrent streams whose faults
    // interleave in the global history).
    const char *names[] = {"microbench", "npb-ft", "npb-is", "npb-cg",
                           "graphx-bfs", "kmeans-omp", "quicksort"};

    stats::Table table(
        "Motivation (§II-B): majority prefetching, fault-only vs full"
        " trace");
    table.header({"Workload", "Leap acc", "SSP-full acc", "Leap cov",
                  "SSP-full cov", "Leap CT(ms)", "SSP CT(ms)",
                  "CT ratio"});

    double la = 0, ha = 0, lc = 0, hc = 0, ct_ratio = 0;
    for (const auto &w : names) {
        auto leap = runOne(w, SystemKind::Leap, 0.5,
                           hopp::bench::benchScale());
        MachineConfig cfg;
        cfg.system = SystemKind::HoppOnly;
        cfg.localMemRatio = 0.5;
        cfg.hopp.tierMask = core::tiers::ssp;
        Machine m(cfg);
        m.addWorkload(
            workloads::makeWorkload(w, hopp::bench::benchScale()));
        auto ssp = m.run();
        la += leap.accuracy;
        ha += ssp.accuracy;
        lc += leap.coverage;
        hc += ssp.coverage;
        double ratio = toDouble(leap.makespan) /
                       toDouble(ssp.makespan);
        ct_ratio += ratio;
        table.row({w, stats::Table::num(leap.accuracy, 3),
                   stats::Table::num(ssp.accuracy, 3),
                   stats::Table::num(leap.coverage, 3),
                   stats::Table::num(ssp.coverage, 3),
                   stats::Table::num(
                       toDouble(leap.makespan) / 1e6, 2),
                   stats::Table::num(
                       toDouble(ssp.makespan) / 1e6, 2),
                   stats::Table::num(ratio, 2)});
    }
    double n = static_cast<double>(std::size(names));
    table.row({"Average", stats::Table::num(la / n, 3),
               stats::Table::num(ha / n, 3),
               stats::Table::num(lc / n, 3),
               stats::Table::num(hc / n, 3), "", "",
               stats::Table::num(ct_ratio / n, 2)});
    table.print();
    std::printf("Full trace vs fault-only: %+.1f%% accuracy,"
                " %+.1f%% coverage (absolute, averaged);"
                " full-trace majority is %.2fx faster on average.\n",
                100.0 * (ha - la) / n, 100.0 * (hc - lc) / n,
                ct_ratio / n);
    std::puts("Paper §II-B (for comparison): full memory access"
              " improves the majority prefetcher by +10.6% accuracy"
              " and +13.9% coverage. In our cyclically-reused scaled"
              " workloads even mispredicted fetches are eventually"
              " 'hit', so the quality gap surfaces as completion time"
              " (timeliness + per-stream training) rather than as the"
              " nominal hit ratios.");
    return 0;
}
