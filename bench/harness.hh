/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: scale
 * control via HOPP_BENCH_SCALE, cached local-baseline completion
 * times, and run shorthands.
 */

#ifndef HOPP_BENCH_HARNESS_HH
#define HOPP_BENCH_HARNESS_HH

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "runner/machine.hh"
#include "runner/sweep_pool.hh"
#include "stats/table.hh"
#include "workloads/apps.hh"

namespace hopp::bench
{

/** Workload scale, overridable with HOPP_BENCH_SCALE (default 1.0). */
inline workloads::WorkloadScale
benchScale()
{
    workloads::WorkloadScale s;
    if (const char *env = std::getenv("HOPP_BENCH_SCALE")) {
        double v = std::atof(env);
        if (v > 0) {
            s.footprint = v;
            s.iterations = v < 1.0 ? v : 1.0;
        }
    }
    return s;
}

/**
 * Host worker threads for sweep prefills, overridable with
 * HOPP_BENCH_JOBS (default 1 = serial; 0 = all cores).
 */
inline unsigned
benchJobs()
{
    if (const char *env = std::getenv("HOPP_BENCH_JOBS")) {
        int v = std::atoi(env);
        if (v == 0)
            return runner::SweepPool::hardwareJobs();
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 1;
}

/** One configuration of a bench sweep grid. */
struct RunSpec
{
    std::string workload;
    runner::SystemKind system;
    double ratio;
};

/**
 * Run cache: local baselines are shared across figures within one
 * binary, and identical (workload, system, ratio) runs reuse results.
 */
class RunCache
{
  public:
    explicit RunCache(runner::MachineConfig base = {})
        : base_(std::move(base))
    {
    }

    /** Run (or fetch) one configuration. */
    const runner::RunResult &
    run(const std::string &workload, runner::SystemKind system,
        double ratio)
    {
        std::string key = keyOf(workload, system, ratio);
        auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
        auto result =
            runner::runOne(workload, system, ratio, benchScale(), base_);
        return cache_.emplace(key, std::move(result)).first->second;
    }

    /** CT_local of a workload. */
    Tick
    localTime(const std::string &workload)
    {
        return run(workload, runner::SystemKind::Local, 1.0).makespan;
    }

    /** Normalized performance of one run (paper §VI-A). */
    double
    normPerf(const std::string &workload, runner::SystemKind system,
             double ratio)
    {
        return runner::normalizedPerformance(
            localTime(workload), run(workload, system, ratio).makespan);
    }

    /**
     * Run a whole grid up front on @p jobs host threads and cache the
     * results, so the figure loops below hit the cache instead of
     * simulating serially. Runs are fully independent Machines
     * (runner::SweepPool's contract), and results are inserted in
     * submission order, so the cache contents — and every number
     * derived from them — are identical to a serial fill. Specs
     * already cached (duplicates included) are skipped.
     */
    void
    prefill(const std::vector<RunSpec> &specs, unsigned jobs)
    {
        std::vector<const RunSpec *> todo;
        std::map<std::string, bool> seen;
        for (const RunSpec &s : specs) {
            std::string key = keyOf(s.workload, s.system, s.ratio);
            if (cache_.count(key) || seen.count(key))
                continue;
            seen.emplace(std::move(key), true);
            todo.push_back(&s);
        }
        runner::SweepPool pool(jobs);
        std::vector<runner::RunResult> results =
            pool.run<runner::RunResult>(
                todo.size(), [&](std::size_t i) {
                    const RunSpec &s = *todo[i];
                    return runner::runOne(s.workload, s.system, s.ratio,
                                          benchScale(), base_);
                });
        for (std::size_t i = 0; i < todo.size(); ++i) {
            const RunSpec &s = *todo[i];
            cache_.emplace(keyOf(s.workload, s.system, s.ratio),
                           std::move(results[i]));
        }
    }

    /** Mutable base config (set before the first run). */
    runner::MachineConfig &base() { return base_; }

  private:
    static std::string
    keyOf(const std::string &workload, runner::SystemKind system,
          double ratio)
    {
        return workload + "/" + runner::systemName(system) + "/" +
               stats::Table::num(ratio, 3);
    }

    runner::MachineConfig base_;
    std::map<std::string, runner::RunResult> cache_;
};

} // namespace hopp::bench

#endif // HOPP_BENCH_HARNESS_HH
