/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: scale
 * control via HOPP_BENCH_SCALE, cached local-baseline completion
 * times, and run shorthands.
 */

#ifndef HOPP_BENCH_HARNESS_HH
#define HOPP_BENCH_HARNESS_HH

#include <cstdlib>
#include <map>
#include <string>

#include "runner/machine.hh"
#include "stats/table.hh"
#include "workloads/apps.hh"

namespace hopp::bench
{

/** Workload scale, overridable with HOPP_BENCH_SCALE (default 1.0). */
inline workloads::WorkloadScale
benchScale()
{
    workloads::WorkloadScale s;
    if (const char *env = std::getenv("HOPP_BENCH_SCALE")) {
        double v = std::atof(env);
        if (v > 0) {
            s.footprint = v;
            s.iterations = v < 1.0 ? v : 1.0;
        }
    }
    return s;
}

/**
 * Run cache: local baselines are shared across figures within one
 * binary, and identical (workload, system, ratio) runs reuse results.
 */
class RunCache
{
  public:
    explicit RunCache(runner::MachineConfig base = {})
        : base_(std::move(base))
    {
    }

    /** Run (or fetch) one configuration. */
    const runner::RunResult &
    run(const std::string &workload, runner::SystemKind system,
        double ratio)
    {
        std::string key = workload + "/" +
                          runner::systemName(system) + "/" +
                          stats::Table::num(ratio, 3);
        auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
        auto result =
            runner::runOne(workload, system, ratio, benchScale(), base_);
        return cache_.emplace(key, std::move(result)).first->second;
    }

    /** CT_local of a workload. */
    Tick
    localTime(const std::string &workload)
    {
        return run(workload, runner::SystemKind::Local, 1.0).makespan;
    }

    /** Normalized performance of one run (paper §VI-A). */
    double
    normPerf(const std::string &workload, runner::SystemKind system,
             double ratio)
    {
        return runner::normalizedPerformance(
            localTime(workload), run(workload, system, ratio).makespan);
    }

    /** Mutable base config (set before the first run). */
    runner::MachineConfig &base() { return base_; }

  private:
    runner::MachineConfig base_;
    std::map<std::string, runner::RunResult> cache_;
};

} // namespace hopp::bench

#endif // HOPP_BENCH_HARNESS_HH
