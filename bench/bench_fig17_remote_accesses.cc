/**
 * @file
 * Figure 17 reproduction: remote page reads (demand + prefetch) of
 * Depth-16/32, Fastswap and HoPP, normalized to Fastswap *without*
 * prefetching (§VI-C). Depth-N's rigid prefetching issues the most
 * remote traffic; HoPP wins on performance without necessarily
 * minimizing remote reads, thanks to flexible early injection.
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    const char *names[] = {"npb-cg", "npb-ft", "npb-lu", "npb-mg",
                           "npb-is", "kmeans-omp", "quicksort", "hpl",
                           "graphx-bfs", "graphx-cc"};

    bench::RunCache cache;
    bench::RunCache cache16;
    cache16.base().depth = 16;
    bench::RunCache cache32;
    cache32.base().depth = 32;

    stats::Table table(
        "Figure 17: remote accesses normalized to no-prefetching");
    table.header({"Workload", "Depth-16", "Depth-32", "Fastswap",
                  "HoPP"});

    auto remote = [](const RunResult &r) {
        return static_cast<double>(r.demandRemote + r.prefetchReads);
    };

    double sums[4] = {0, 0, 0, 0};
    for (const auto &w : names) {
        double base = static_cast<double>(
            cache.run(w, SystemKind::NoPrefetch, 0.5).demandRemote);
        double d16 =
            remote(cache16.run(w, SystemKind::DepthN, 0.5)) / base;
        double d32 =
            remote(cache32.run(w, SystemKind::DepthN, 0.5)) / base;
        double fs =
            remote(cache.run(w, SystemKind::Fastswap, 0.5)) / base;
        double hp = remote(cache.run(w, SystemKind::Hopp, 0.5)) / base;
        sums[0] += d16;
        sums[1] += d32;
        sums[2] += fs;
        sums[3] += hp;
        table.row({w, stats::Table::num(d16, 3),
                   stats::Table::num(d32, 3), stats::Table::num(fs, 3),
                   stats::Table::num(hp, 3)});
    }
    double n = static_cast<double>(std::size(names));
    table.row({"Average", stats::Table::num(sums[0] / n, 3),
               stats::Table::num(sums[1] / n, 3),
               stats::Table::num(sums[2] / n, 3),
               stats::Table::num(sums[3] / n, 3)});
    table.print();
    std::puts("Paper Fig 17 (for comparison): Depth-N issues the most"
              " remote accesses of the four; HoPP does not necessarily"
              " minimize remote accesses yet performs best (§VI-C).");
    return 0;
}
