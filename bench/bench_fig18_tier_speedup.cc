/**
 * @file
 * Figure 18 reproduction: completion-time speedup over Fastswap
 * (1 - CT_system/CT_Fastswap) as prefetch tiers are enabled
 * cumulatively: SSP, SSP+LSP, SSP+LSP+RSP (§VI-D).
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    const char *names[] = {"hpl", "npb-mg", "npb-lu", "kmeans-omp",
                           "quicksort", "npb-cg"};
    const struct
    {
        const char *label;
        unsigned mask;
    } tiers[] = {
        {"SSP", core::tiers::ssp},
        {"SSP+LSP", core::tiers::ssp | core::tiers::lsp},
        {"SSP+LSP+RSP", core::tiers::all},
    };

    bench::RunCache fsCache;
    stats::Table table(
        "Figure 18: speedup over Fastswap per enabled tier set");
    table.header({"Workload", "SSP", "SSP+LSP", "SSP+LSP+RSP"});

    for (const auto &w : names) {
        double ct_fs = toDouble(
            fsCache.run(w, SystemKind::Fastswap, 0.5).makespan);
        std::vector<std::string> cells{w};
        for (const auto &tier : tiers) {
            MachineConfig cfg;
            cfg.system = SystemKind::Hopp;
            cfg.localMemRatio = 0.5;
            cfg.hopp.tierMask = tier.mask;
            Machine m(cfg);
            m.addWorkload(
                workloads::makeWorkload(w, bench::benchScale()));
            auto r = m.run();
            double speedup =
                1.0 - toDouble(r.makespan) / ct_fs;
            cells.push_back(stats::Table::pct(speedup, 1));
        }
        table.row(std::move(cells));
    }
    table.print();
    std::puts("Paper Fig 18 (for comparison): speedup grows as tiers"
              " are added — each tier raises coverage while keeping"
              " accuracy high (§VI-D).");
    return 0;
}
