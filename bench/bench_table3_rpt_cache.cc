/**
 * @file
 * Table III reproduction: RPT cache hit rate as the cache size sweeps
 * 1..64 KB (§III-C), for K-means and PageRank under 50% local memory
 * (hit rates are high because a hot page's PTE was usually just
 * established, leaving its entry in the cache).
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    const char *workloads[] = {"kmeans-omp", "graphx-pr"};
    const char *rows[] = {"K-means", "PgRank"};
    const std::uint64_t sizes_kb[] = {1, 2, 4, 8, 16, 32, 64};

    stats::Table table("Table III: RPT cache hit rate vs size (KB)");
    std::vector<std::string> header{"Workload"};
    for (auto kb : sizes_kb)
        header.push_back(std::to_string(kb) + "KB");
    table.header(std::move(header));

    for (std::size_t w = 0; w < std::size(workloads); ++w) {
        std::vector<std::string> cells{rows[w]};
        for (auto kb : sizes_kb) {
            MachineConfig cfg;
            cfg.system = SystemKind::HoppOnly;
            cfg.localMemRatio = 0.5;
            cfg.hopp.rptCache.capacityBytes = kb << 10;
            Machine m(cfg);
            m.addWorkload(workloads::makeWorkload(
                workloads[w], bench::benchScale()));
            m.run();
            double rate =
                m.hoppSystem()->rptCache().stats().hitRate();
            cells.push_back(stats::Table::num(rate, 3));
        }
        table.row(std::move(cells));
    }
    table.print();
    std::puts("Paper Table III (for comparison): K-means 0.92 -> 0.998,"
              " PgRank 0.85 -> 0.997 (1 KB -> 64 KB).");
    return 0;
}
