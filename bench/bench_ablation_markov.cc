/**
 * @file
 * Ablation (§III-D's "machine-learning-based designs can also be
 * enabled by full trace"): the correlation (Markov) tier on
 * pointer-chasing and gather-heavy workloads. The full hot-page trace
 * supplies the transition history such predictors need; the fault-only
 * view never sees enough of the sequence to learn it.
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::core;
using namespace hopp::runner;

int
main()
{
    const char *names[] = {"linkedlist", "graphx-pr", "spark-bayes",
                           "kmeans-omp"};

    stats::Table table(
        "Ablation: correlation (Markov) tier on top of SSP+LSP+RSP"
        " @50%");
    table.header({"Workload", "CT off (ms)", "CT on (ms)", "Speedup",
                  "Mkv issued", "Mkv accuracy", "DRAM-cov off",
                  "DRAM-cov on"});

    for (const auto &w : names) {
        auto run = [&](bool markov) {
            MachineConfig cfg;
            cfg.system = SystemKind::Hopp;
            cfg.localMemRatio = 0.5;
            cfg.hopp.tierMask =
                markov ? (tiers::all | tiers::markov) : tiers::all;
            auto m = std::make_unique<Machine>(cfg);
            m->addWorkload(
                workloads::makeWorkload(w, bench::benchScale()));
            auto r = m->run();
            return std::pair{std::move(m), r};
        };
        auto [m_off, off] = run(false);
        auto [m_on, on] = run(true);
        const auto &mkv = m_on->hoppSystem()->exec().tierStats(Tier::Mkv);
        table.row(
            {w,
             stats::Table::num(toDouble(off.makespan) / 1e6,
                               2),
             stats::Table::num(toDouble(on.makespan) / 1e6,
                               2),
             stats::Table::num(toDouble(off.makespan) /
                                   toDouble(on.makespan),
                               3),
             std::to_string(mkv.issued),
             mkv.completed ? stats::Table::num(mkv.accuracy(), 3) : "-",
             stats::Table::num(off.dramHitCoverage, 3),
             stats::Table::num(on.dramHitCoverage, 3)});
    }
    table.print();
    std::puts("Pointer chasing (linkedlist) is invisible to every"
              " stride tier; the correlation tier learns the repeated"
              " page-transition graph from the hot-page trace and"
              " converts its faults into injected DRAM hits. On"
              " stream-dominated workloads the stride tiers win first"
              " and the correlation tier stays nearly idle — at worst"
              " its sporadic, less-timely predictions cost a few"
              " percent (graphx), which is why it ships disabled.");
    return 0;
}
