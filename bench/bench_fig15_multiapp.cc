/**
 * @file
 * Figure 15 reproduction: speedup of HoPP over Fastswap when multiple
 * applications run simultaneously, each cgroup-limited to 50% of its
 * footprint (§VI-B). The hot-page trace carries PIDs, so HoPP trains
 * per-application streams even under co-location.
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

runner::RunResult
runPair(SystemKind system, const std::string &a, const std::string &b)
{
    MachineConfig cfg;
    cfg.system = system;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload(a, bench::benchScale(), 1));
    m.addWorkload(workloads::makeWorkload(b, bench::benchScale(), 2));
    return m.run();
}

} // namespace

int
main()
{
    const std::pair<const char *, const char *> pairs[] = {
        {"kmeans-omp", "quicksort"},
        {"hpl", "npb-mg"},
        {"npb-cg", "npb-is"},
        {"npb-ft", "npb-lu"},
    };

    stats::Table table(
        "Figure 15: per-app speedup of HoPP over Fastswap, co-located"
        " pairs @50%");
    table.header({"Pair", "App", "FS (ms)", "HoPP (ms)", "Speedup"});

    double sum = 0;
    unsigned count = 0;
    for (const auto &[a, b] : pairs) {
        auto fs = runPair(SystemKind::Fastswap, a, b);
        auto hp = runPair(SystemKind::Hopp, a, b);
        std::string pair = std::string(a) + "+" + b;
        for (const std::string app : {a, b}) {
            double ct_fs =
                toDouble(fs.completionOf(app)) / 1e6;
            double ct_hp =
                toDouble(hp.completionOf(app)) / 1e6;
            double speedup = ct_fs / ct_hp;
            sum += speedup;
            ++count;
            table.row({pair, app, stats::Table::num(ct_fs, 2),
                       stats::Table::num(ct_hp, 2),
                       stats::Table::num(speedup, 3)});
        }
    }
    table.row({"Average", "", "", "",
               stats::Table::num(sum / count, 3)});
    table.print();
    std::puts("Paper Fig 15 (for comparison): HoPP improves every"
              " co-located application; per-PID hot pages let HoPP"
              " train prefetchers per application.");
    return 0;
}
