/**
 * @file
 * Simulator-core steady-state throughput benchmark.
 *
 * Two measurements, one canonical JSON artifact (BENCH_simcore.json):
 *
 * 1. Event-dispatch microbenchmark: a ring of in-flight "RDMA read"
 *    completions — the dominant event on the fault/prefetch path —
 *    driven through (a) the production sim::EventQueue with templated
 *    completion callbacks landing in inline-storage events, and (b) an
 *    in-binary replica of the pre-rewrite design: the completion
 *    callback type-erased into a std::function, wrapped in a second
 *    std::function for the queue (the old RdmaFabric::readAsync
 *    idiom), stored in a std::priority_queue whose const top() forces
 *    one more deep copy on every dispatch. The replica IS the recorded
 *    baseline, so the speedup in the artifact always compares against
 *    the design this PR replaced, on the same machine, in the same
 *    run.
 *
 * 2. Page-walk microbenchmark: the access hot path's translation step
 *    over a resident working set, measured three ways — (a) an
 *    in-binary replica of the pre-rewrite flat-hash page table
 *    (std::unordered_map keyed by pageKey), (b) the production
 *    two-level radix walk (vm/page_table.hh), and (c) the radix walk
 *    fronted by the software TLB (vm/tlb.hh), the configuration the
 *    simulator actually runs. As with the event-dispatch replica, the
 *    hash baseline is measured in the same binary on the same machine.
 *
 * 3. Sweep scaling: a 16-config (workload, system, ratio) sweep run
 *    through runner::SweepPool serially and with 4 workers, recording
 *    both wall times, the speedup, and host_cpus — on a single-core
 *    host the speedup is honestly ~1, and the artifact says so.
 *
 * 4. End-to-end steady state: a full HoPP machine run (microbench
 *    workload, 50% local memory) reporting faults/sec, events/sec and
 *    wall-ns per simulated millisecond.
 *
 * 5. Batched access execution: the same end-to-end run with the
 *    batched pump and with --no-batch, best of three each, asserting
 *    the two agree on every simulated outcome and recording the
 *    host-side speedup.
 *
 * 6. Trace replay: the end-to-end run again with --record-trace on,
 *    then the recorded trace replayed through runner::ReplayEngine,
 *    best of three. Reports replay throughput (records/sec), the
 *    replay speedup over re-simulating live, the on-disk compression
 *    vs the raw 16 B/record HMTT format, and whether the replayed
 *    MC-side stats matched the live run byte for byte.
 *
 * Wall-clock use is deliberate and confined to bench/ (the determinism
 * lint only polices src/ and tools/): throughput numbers are exactly
 * the place where real time belongs.
 *
 * Flags: --out PATH (default BENCH_simcore.json), --quick (CI smoke).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "obs/profiler.hh"
#include "runner/machine.hh"
#include "runner/replay_engine.hh"
#include "runner/sweep_pool.hh"
#include "sim/event_queue.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"
#include "workloads/apps.hh"

using namespace hopp;

namespace
{

double
wallSeconds(std::chrono::steady_clock::time_point t0,
            std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Replica of the event queue this PR replaced: type-erased
 * std::function closures (heap-allocated beyond the ~16 B SSO) in a
 * std::priority_queue, whose const top() forces a deep copy — and thus
 * more allocations — on every dispatch.
 */
class LegacyQueue
{
  public:
    void
    schedule(Tick when, std::function<void()> fn)
    {
        pq_.push(Entry{when, seq_++, std::move(fn)});
    }

    void
    scheduleIn(Duration delta, std::function<void()> fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    Tick now() const { return now_; }

    bool
    runOne()
    {
        if (pq_.empty())
            return false;
        Entry e = pq_.top(); // the historical copy-on-dispatch
        pq_.pop();
        now_ = e.when;
        ++executed_;
        e.fn();
        return true;
    }

    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq_;
    Tick now_;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

/**
 * Pre-rewrite fabric idiom: the caller's completion callback is
 * type-erased into std::function (first allocation: the capture is
 * over the SSO), then wrapped in a second std::function for the queue
 * (second allocation); dispatch copies both again.
 */
void
legacyReadAsync(LegacyQueue &q, Duration lat,
                std::function<void(Tick)> done)
{
    Tick completion = q.now() + lat;
    q.schedule(completion,
               [done = std::move(done), completion] { done(completion); });
}

/**
 * Post-rewrite fabric idiom (net/rdma.hh): the callback type flows
 * through a template parameter straight into the event's fixed inline
 * storage — zero allocations end to end.
 */
template <typename F>
void
inlineReadAsync(sim::EventQueue &q, Duration lat, F &&done)
{
    Tick completion = q.now() + lat;
    q.schedule(completion,
               [done = std::forward<F>(done), completion]() mutable {
                   done(completion);
               });
}

/**
 * One in-flight "read": the completion handler records the result and
 * issues the next read, exactly the steady-state shape of demand
 * faults and prefetch streams. The callback captures the actor plus a
 * (slot, vpn) pair, like the tree's completion closures.
 */
struct LegacyActor
{
    LegacyQueue &q;
    std::uint64_t budget;
    std::uint64_t acc = 0;

    void
    onDone(Tick t, std::uint64_t slot, std::uint64_t vpn)
    {
        acc += t.raw() ^ slot ^ vpn;
        if (budget == 0)
            return;
        --budget;
        legacyReadAsync(q, Duration{1 + (acc & 7)},
                        [this, slot = slot + 1, vpn = vpn + 2](Tick c) {
                            onDone(c, slot, vpn);
                        });
    }
};

struct InlineActor
{
    sim::EventQueue &q;
    std::uint64_t budget;
    std::uint64_t acc = 0;

    void
    onDone(Tick t, std::uint64_t slot, std::uint64_t vpn)
    {
        acc += t.raw() ^ slot ^ vpn;
        if (budget == 0)
            return;
        --budget;
        inlineReadAsync(q, Duration{1 + (acc & 7)},
                        [this, slot = slot + 1, vpn = vpn + 2](Tick c) {
                            onDone(c, slot, vpn);
                        });
    }
};

/** Dispatch throughput of one queue flavour, best of three trials. */
template <typename Queue, typename Actor>
double
dispatchEventsPerSec(std::uint64_t events_per_trial)
{
    // 16 in-flight completions: the fabric keeps a modest number of
    // reads outstanding (per-app fault + prefetch windows), so the
    // queue stays shallow and the per-event closure cost dominates —
    // the quantity this benchmark isolates.
    constexpr int actors = 16;
    constexpr int trials = 3;
    double best = 0;
    for (int trial = 0; trial < trials; ++trial) {
        Queue q;
        std::vector<Actor> ring(actors,
                                Actor{q, events_per_trial / actors});
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < actors; ++i)
            ring[i].onDone(Tick{static_cast<std::uint64_t>(1 + i)}, 1,
                           2);
        while (q.runOne()) {
        }
        auto t1 = std::chrono::steady_clock::now();
        double rate =
            static_cast<double>(q.executed()) / wallSeconds(t0, t1);
        if (rate > best)
            best = rate;
    }
    return best;
}

/**
 * Replica of the page table this PR replaced: one flat hash over
 * pageKey(pid, vpn). Every translation pays hashing, bucket probing,
 * and a dependent pointer chase; iteration order was a separate sort.
 */
class LegacyHashTable
{
  public:
    vm::PageInfo &
    get(Pid pid, Vpn vpn)
    {
        return map_[vm::pageKey(pid, vpn)];
    }

    vm::PageInfo *
    find(Pid pid, Vpn vpn)
    {
        auto it = map_.find(vm::pageKey(pid, vpn));
        return it == map_.end() ? nullptr : &it->second;
    }

  private:
    std::unordered_map<std::uint64_t, vm::PageInfo> map_;
};

/**
 * Access stream with page-level locality: pick a page, stay on it for
 * a short burst (consecutive lines of one page translate to the same
 * VPN), jump. This is the translation-request shape the VMS hot path
 * sees from the workload generators.
 */
std::vector<std::uint64_t>
makeWalkStream(std::uint64_t pages, std::uint64_t length)
{
    Pcg32 rng(7);
    std::vector<std::uint64_t> stream;
    stream.reserve(length);
    while (stream.size() < length) {
        std::uint64_t vpn = rng.below64(pages);
        std::uint32_t burst = 1 + rng.below(8);
        for (std::uint32_t b = 0; b < burst && stream.size() < length;
             ++b)
            stream.push_back(vpn);
    }
    return stream;
}

/** Translations/sec of one lookup flavour, best of three trials. */
template <typename Lookup>
double
walkAccessesPerSec(const std::vector<std::uint64_t> &stream, Lookup fn)
{
    constexpr int trials = 3;
    double best = 0;
    std::uint64_t sink = 0;
    for (int trial = 0; trial < trials; ++trial) {
        auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t vpn : stream)
            sink += reinterpret_cast<std::uintptr_t>(fn(Vpn{vpn}));
        auto t1 = std::chrono::steady_clock::now();
        double rate = static_cast<double>(stream.size()) /
                      wallSeconds(t0, t1);
        if (rate > best)
            best = rate;
    }
    // Defeat dead-code elimination without perturbing the loop.
    if (sink == 1)
        std::fputc(' ', stderr);
    return best;
}

struct PageWalk
{
    std::uint64_t residentPages;
    std::uint64_t streamLength;
    double legacyHashPerSec;
    double radixPerSec;
    double radixTlbPerSec;
    double speedupVsLegacy;
    double tlbHitRate;
};

PageWalk
pageWalkBench(bool quick)
{
    const Pid pid{1};
    PageWalk w;
    w.residentPages = quick ? 16'384 : 65'536;
    w.streamLength = quick ? 4'000'000 : 16'000'000;

    LegacyHashTable legacy;
    vm::PageTable radix;
    vm::Tlb tlb(1024);
    for (std::uint64_t v = 0; v < w.residentPages; ++v) {
        legacy.get(pid, Vpn{v}).state = vm::PageState::Resident;
        radix.get(pid, Vpn{v}).state = vm::PageState::Resident;
    }

    auto stream = makeWalkStream(w.residentPages, w.streamLength);
    w.legacyHashPerSec = walkAccessesPerSec(stream, [&](Vpn vpn) {
        return legacy.find(pid, vpn);
    });
    w.radixPerSec = walkAccessesPerSec(stream, [&](Vpn vpn) {
        return radix.find(pid, vpn);
    });
    // The production shape (vm::Vms::access): TLB probe first, radix
    // walk and fill on a miss.
    w.radixTlbPerSec = walkAccessesPerSec(stream, [&](Vpn vpn) {
        if (vm::PageInfo *pi = tlb.lookup(pid, vpn))
            return pi;
        vm::PageInfo *pi = radix.find(pid, vpn);
        tlb.fill(pid, vpn, pi);
        return pi;
    });
    w.speedupVsLegacy = w.radixTlbPerSec / w.legacyHashPerSec;
    w.tlbHitRate = static_cast<double>(tlb.hits()) /
                   static_cast<double>(tlb.hits() + tlb.misses());
    return w;
}

struct SweepScaling
{
    std::uint64_t configs;
    unsigned jobs;
    unsigned hostCpus;
    double serialWallSec;
    double parallelWallSec;
    double speedup;
    bool deterministic;
};

SweepScaling
sweepScalingBench(bool quick)
{
    // The hopp_sweep.determinism ctest's grid: 2 workloads x 2 systems
    // x 4 ratios = 16 fully independent configurations.
    struct Cell
    {
        const char *workload;
        runner::SystemKind system;
        double ratio;
    };
    std::vector<Cell> cells;
    for (const char *w : {"microbench", "linkedlist"})
        for (auto s :
             {runner::SystemKind::Fastswap, runner::SystemKind::Hopp})
            for (double r : {0.2, 0.4, 0.6, 0.8})
                cells.push_back(Cell{w, s, r});

    workloads::WorkloadScale scale;
    scale.footprint = quick ? 0.1 : 0.3;
    scale.iterations = quick ? 0.2 : 0.5;
    auto task = [&](std::size_t i) {
        runner::MachineConfig cfg;
        cfg.system = cells[i].system;
        cfg.localMemRatio = cells[i].ratio;
        runner::Machine m(cfg);
        m.addWorkload(
            workloads::makeWorkload(cells[i].workload, scale, 43));
        return m.run().makespan;
    };

    SweepScaling s;
    s.configs = cells.size();
    s.jobs = 4;
    s.hostCpus = runner::SweepPool::hardwareJobs();

    auto t0 = std::chrono::steady_clock::now();
    auto serial =
        runner::SweepPool(1).run<Tick>(cells.size(), task);
    auto t1 = std::chrono::steady_clock::now();
    auto parallel =
        runner::SweepPool(s.jobs).run<Tick>(cells.size(), task);
    auto t2 = std::chrono::steady_clock::now();

    s.serialWallSec = wallSeconds(t0, t1);
    s.parallelWallSec = wallSeconds(t1, t2);
    s.speedup = s.serialWallSec / s.parallelWallSec;
    s.deterministic = serial == parallel;
    return s;
}

struct EndToEnd
{
    double faultsPerSec;
    double eventsPerSec;
    double accessesPerSec;
    double wallNsPerSimMs;
    std::uint64_t faults;
    std::uint64_t events;
    std::uint64_t accesses;
    Tick makespan;
};

/** One full HoPP machine run; @p batch selects the access pump. */
EndToEnd
endToEndOnce(bool quick, bool batch)
{
    runner::MachineConfig cfg;
    cfg.system = runner::SystemKind::Hopp;
    cfg.localMemRatio = 0.5; // half the footprint is remote: constant
                             // fault/prefetch pressure
    cfg.batch = batch;
    workloads::WorkloadScale scale;
    scale.footprint = quick ? 0.2 : 1.0;
    scale.iterations = quick ? 0.2 : 1.0;
    runner::Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("microbench", scale));
    auto t0 = std::chrono::steady_clock::now();
    runner::RunResult r = m.run();
    auto t1 = std::chrono::steady_clock::now();
    double wall = wallSeconds(t0, t1);
    double sim_ms = static_cast<double>(r.makespan.raw()) / 1e6;
    EndToEnd e;
    e.faults = m.vms().stats().faults();
    e.events = m.eventQueue().executed();
    e.accesses = m.vms().stats().accesses;
    e.makespan = r.makespan;
    e.faultsPerSec = static_cast<double>(e.faults) / wall;
    e.eventsPerSec = static_cast<double>(e.events) / wall;
    e.accessesPerSec = static_cast<double>(e.accesses) / wall;
    e.wallNsPerSimMs = wall * 1e9 / sim_ms;
    return e;
}

EndToEnd
endToEndSteadyState(bool quick)
{
    return endToEndOnce(quick, /*batch=*/true);
}

struct BatchedAccess
{
    EndToEnd batched; //!< best of three, batch pump (the default)
    EndToEnd scalar;  //!< best of three, --no-batch scalar pump
    double speedupVsScalar;
    bool identicalResults;
};

/**
 * 5. Batched access execution (ROADMAP item 3): the end-to-end run
 *    with the batched pump against the same run with --no-batch,
 *    best of three each. The two must agree on every simulated
 *    outcome (identical_results) — the speedup is pure host-side.
 *    The >= 10x acceptance comparison is against the pre-batching
 *    committed artifact's end_to_end.faults_per_sec (hopp-report
 *    diffs the two JSONs).
 */
BatchedAccess
batchedAccessBench(bool quick)
{
    constexpr int trials = 3;
    BatchedAccess b{};
    for (int i = 0; i < trials; ++i) {
        EndToEnd on = endToEndOnce(quick, true);
        if (i == 0 || on.faultsPerSec > b.batched.faultsPerSec)
            b.batched = on;
        EndToEnd off = endToEndOnce(quick, false);
        if (i == 0 || off.faultsPerSec > b.scalar.faultsPerSec)
            b.scalar = off;
    }
    b.speedupVsScalar =
        b.batched.faultsPerSec / b.scalar.faultsPerSec;
    b.identicalResults = b.batched.faults == b.scalar.faults &&
                         b.batched.accesses == b.scalar.accesses &&
                         b.batched.events == b.scalar.events &&
                         b.batched.makespan == b.scalar.makespan;
    return b;
}

struct TraceReplay
{
    std::uint64_t records;
    std::uint64_t traceBytes;
    std::uint64_t cells; //!< policy cells evaluated per replay pass
    double bytesPerRecord;
    double compressionRatio; //!< vs the raw 16 B/record HMTT format
    double liveWallSec;
    double liveRecordsPerSec;
    double replayRecordsPerSec; //!< cells x records / wall, best of 3
    double replaySpeedup;       //!< replay vs live, records/sec
    bool identicalResults;      //!< MC-side stats byte-identical
};

/**
 * 6. Trace replay (ROADMAP item 4 / DESIGN.md §15): record the
 *    end-to-end run's MC-side input stream, then sweep a policy grid
 *    over it in one ReplayEngine fan-out pass. "Live" throughput
 *    charges the recording run's whole wall time to its record count —
 *    that is exactly what a policy sweep pays per configuration
 *    without replay — and replay throughput is cells x records over
 *    the pass's wall time, since one pass evaluates every cell. Cell 0
 *    is the recorded configuration; its stats document must stay
 *    byte-identical to the live run's (the fidelity contract).
 */
TraceReplay
traceReplayBench(bool quick)
{
    const std::string path = "bench_trace_replay.trc";
    runner::MachineConfig cfg;
    cfg.system = runner::SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    cfg.recordTracePath = path;
    workloads::WorkloadScale scale;
    scale.footprint = quick ? 0.2 : 1.0;
    scale.iterations = quick ? 0.2 : 1.0;
    runner::Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("microbench", scale));
    auto t0 = std::chrono::steady_clock::now();
    m.run();
    auto t1 = std::chrono::steady_clock::now();

    TraceReplay tr{};
    tr.liveWallSec = wallSeconds(t0, t1);
    tr.records = m.traceWriter()->records();
    tr.traceBytes = m.traceWriter()->bytesWritten();
    tr.bytesPerRecord = static_cast<double>(tr.traceBytes) /
                        static_cast<double>(tr.records);
    tr.compressionRatio =
        static_cast<double>(16 * tr.records) /
        static_cast<double>(tr.traceBytes);
    tr.liveRecordsPerSec =
        static_cast<double>(tr.records) / tr.liveWallSec;
    std::string live =
        core::mcSideStatsJson(m.hoppSystem()->pipeline());

    // The policy grid: cell 0 is the recorded configuration (so the
    // fidelity contract stays checkable), the rest cross every
    // non-empty three-tier subset with the Markov tier and huge-batch
    // issue on/off — the sweep a paper-style software ablation
    // actually runs (tiers and batching are software knobs, so every
    // cell shares the recorded hardware frontend).
    std::vector<runner::ReplayConfig> cells;
    cells.emplace_back();
    for (unsigned mask = 1; mask <= core::tiers::all; ++mask) {
        for (unsigned mkv : {0u, core::tiers::markov}) {
            for (bool batch : {false, true}) {
                if (mask == core::HoppConfig{}.tierMask && mkv == 0 &&
                    batch == core::HoppConfig{}.batch.enabled) {
                    continue; // cell 0 already covers it
                }
                runner::ReplayConfig c;
                c.hopp.tierMask = mask | mkv;
                c.hopp.batch.enabled = batch;
                cells.push_back(c);
            }
        }
    }
    tr.cells = cells.size();

    constexpr int trials = 3;
    tr.identicalResults = true;
    for (int i = 0; i < trials; ++i) {
        trace::TraceReader reader;
        if (reader.open(path) != trace::TraceIoStatus::Ok) {
            tr.identicalResults = false;
            break;
        }
        runner::ReplayEngine engine(cells);
        auto r0 = std::chrono::steady_clock::now();
        trace::TraceIoStatus st = engine.run(reader);
        auto r1 = std::chrono::steady_clock::now();
        double rate = static_cast<double>(tr.cells * tr.records) /
                      wallSeconds(r0, r1);
        if (rate > tr.replayRecordsPerSec)
            tr.replayRecordsPerSec = rate;
        tr.identicalResults &= st == trace::TraceIoStatus::Ok &&
                               engine.mcStatsJson(0) == live;
    }
    tr.replaySpeedup = tr.replayRecordsPerSec / tr.liveRecordsPerSec;
    std::remove(path.c_str());
    return tr;
}

/**
 * 7. Self-profile: the end-to-end run again, this time with the host
 *    self-profiler armed, reporting where the simulator's own wall
 *    time goes (dispatch vs page walk vs fault path vs LLC vs ...).
 *    The attributed fraction is the profiler's coverage acceptance
 *    gate: the zones must explain >= 90% of Machine::run() wall time.
 */
obs::prof::Report
selfProfileBench(bool quick)
{
    obs::prof::reset();
    obs::prof::enable(true);

    runner::MachineConfig cfg;
    cfg.system = runner::SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    workloads::WorkloadScale scale;
    scale.footprint = quick ? 0.2 : 1.0;
    scale.iterations = quick ? 0.2 : 1.0;
    runner::Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("microbench", scale));
    m.run();

    obs::prof::enable(false);
    return obs::prof::collect();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_simcore.json";
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[++i];
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    const std::uint64_t dispatch_events = quick ? 1'000'000 : 8'000'000;

    std::printf("simcore benchmark (%s)\n", quick ? "quick" : "full");
    double inline_eps =
        dispatchEventsPerSec<sim::EventQueue, InlineActor>(
            dispatch_events);
    double legacy_eps = dispatchEventsPerSec<LegacyQueue, LegacyActor>(
        dispatch_events);
    double speedup = inline_eps / legacy_eps;
    std::printf("  dispatch: inline %.3fM ev/s, legacy replica %.3fM "
                "ev/s, speedup %.2fx\n",
                inline_eps / 1e6, legacy_eps / 1e6, speedup);

    PageWalk w = pageWalkBench(quick);
    std::printf("  page walk: radix+tlb %.1fM acc/s (tlb hit %.1f%%), "
                "radix %.1fM acc/s, hash replica %.1fM acc/s, "
                "speedup %.2fx\n",
                w.radixTlbPerSec / 1e6, 100.0 * w.tlbHitRate,
                w.radixPerSec / 1e6, w.legacyHashPerSec / 1e6,
                w.speedupVsLegacy);

    SweepScaling s = sweepScalingBench(quick);
    std::printf("  sweep: %llu configs, serial %.2fs, %u jobs %.2fs, "
                "speedup %.2fx on %u host cpu(s)%s\n",
                (unsigned long long)s.configs, s.serialWallSec, s.jobs,
                s.parallelWallSec, s.speedup, s.hostCpus,
                s.deterministic ? "" : " [NONDETERMINISTIC!]");

    EndToEnd e = endToEndSteadyState(quick);
    std::printf("  end-to-end: %.0f faults/s, %.3fM ev/s, %.0f wall-ns "
                "per sim-ms\n",
                e.faultsPerSec, e.eventsPerSec / 1e6, e.wallNsPerSimMs);

    BatchedAccess ba = batchedAccessBench(quick);
    std::printf("  batched access: %.0f faults/s (%.2fM acc/s), scalar "
                "%.0f faults/s, speedup %.2fx%s\n",
                ba.batched.faultsPerSec,
                ba.batched.accessesPerSec / 1e6,
                ba.scalar.faultsPerSec, ba.speedupVsScalar,
                ba.identicalResults ? "" : " [RESULTS DIVERGE!]");

    TraceReplay tr = traceReplayBench(quick);
    std::printf("  trace replay: %llu-cell sweep %.2fM rec/s (live "
                "%.2fM rec/s, speedup %.1fx), %.2f B/rec (%.2fx vs "
                "raw)%s\n",
                (unsigned long long)tr.cells,
                tr.replayRecordsPerSec / 1e6,
                tr.liveRecordsPerSec / 1e6, tr.replaySpeedup,
                tr.bytesPerRecord, tr.compressionRatio,
                tr.identicalResults ? "" : " [RESULTS DIVERGE!]");

    obs::prof::Report p = selfProfileBench(quick);
    std::printf("  self-profile: %.1f%% of %.3f ms attributed to "
                "zones\n",
                100.0 * p.attributedFraction(),
                static_cast<double>(p.wallNs()) / 1e6);

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return 1;
    }
    // Canonical artifact: fixed key order, schema documented in
    // DESIGN.md §9.
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"hopp-bench-simcore-v1\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
    std::fprintf(f, "  \"event_dispatch\": {\n");
    std::fprintf(f, "    \"events_per_trial\": %llu,\n",
                 (unsigned long long)dispatch_events);
    std::fprintf(f, "    \"inline_events_per_sec\": %.0f,\n",
                 inline_eps);
    std::fprintf(f, "    \"legacy_baseline_events_per_sec\": %.0f,\n",
                 legacy_eps);
    std::fprintf(f, "    \"speedup_vs_legacy\": %.3f\n", speedup);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"page_walk\": {\n");
    std::fprintf(f, "    \"resident_pages\": %llu,\n",
                 (unsigned long long)w.residentPages);
    std::fprintf(f, "    \"stream_length\": %llu,\n",
                 (unsigned long long)w.streamLength);
    std::fprintf(f, "    \"legacy_hash_accesses_per_sec\": %.0f,\n",
                 w.legacyHashPerSec);
    std::fprintf(f, "    \"radix_accesses_per_sec\": %.0f,\n",
                 w.radixPerSec);
    std::fprintf(f, "    \"radix_tlb_accesses_per_sec\": %.0f,\n",
                 w.radixTlbPerSec);
    std::fprintf(f, "    \"tlb_hit_rate\": %.4f,\n", w.tlbHitRate);
    std::fprintf(f, "    \"speedup_vs_legacy_hash\": %.3f\n",
                 w.speedupVsLegacy);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"sweep_scaling\": {\n");
    std::fprintf(f, "    \"configs\": %llu,\n",
                 (unsigned long long)s.configs);
    std::fprintf(f, "    \"jobs\": %u,\n", s.jobs);
    std::fprintf(f, "    \"host_cpus\": %u,\n", s.hostCpus);
    std::fprintf(f, "    \"serial_wall_sec\": %.3f,\n",
                 s.serialWallSec);
    std::fprintf(f, "    \"parallel_wall_sec\": %.3f,\n",
                 s.parallelWallSec);
    std::fprintf(f, "    \"speedup\": %.3f,\n", s.speedup);
    std::fprintf(f, "    \"deterministic\": %s\n",
                 s.deterministic ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"end_to_end\": {\n");
    std::fprintf(f, "    \"workload\": \"microbench\",\n");
    std::fprintf(f, "    \"local_mem_ratio\": 0.5,\n");
    std::fprintf(f, "    \"faults\": %llu,\n",
                 (unsigned long long)e.faults);
    std::fprintf(f, "    \"events\": %llu,\n",
                 (unsigned long long)e.events);
    std::fprintf(f, "    \"faults_per_sec\": %.0f,\n", e.faultsPerSec);
    std::fprintf(f, "    \"events_per_sec\": %.0f,\n", e.eventsPerSec);
    std::fprintf(f, "    \"wall_ns_per_sim_ms\": %.0f\n",
                 e.wallNsPerSimMs);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"batched_access\": {\n");
    std::fprintf(f, "    \"workload\": \"microbench\",\n");
    std::fprintf(f, "    \"local_mem_ratio\": 0.5,\n");
    std::fprintf(f, "    \"accesses\": %llu,\n",
                 (unsigned long long)ba.batched.accesses);
    std::fprintf(f, "    \"faults\": %llu,\n",
                 (unsigned long long)ba.batched.faults);
    std::fprintf(f, "    \"faults_per_sec\": %.0f,\n",
                 ba.batched.faultsPerSec);
    std::fprintf(f, "    \"accesses_per_sec\": %.0f,\n",
                 ba.batched.accessesPerSec);
    std::fprintf(f, "    \"scalar_faults_per_sec\": %.0f,\n",
                 ba.scalar.faultsPerSec);
    std::fprintf(f, "    \"speedup_vs_scalar\": %.3f,\n",
                 ba.speedupVsScalar);
    std::fprintf(f, "    \"identical_results\": %s\n",
                 ba.identicalResults ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"trace_replay\": {\n");
    std::fprintf(f, "    \"workload\": \"microbench\",\n");
    std::fprintf(f, "    \"local_mem_ratio\": 0.5,\n");
    std::fprintf(f, "    \"records\": %llu,\n",
                 (unsigned long long)tr.records);
    std::fprintf(f, "    \"trace_bytes\": %llu,\n",
                 (unsigned long long)tr.traceBytes);
    std::fprintf(f, "    \"cells\": %llu,\n",
                 (unsigned long long)tr.cells);
    std::fprintf(f, "    \"bytes_per_record\": %.3f,\n",
                 tr.bytesPerRecord);
    std::fprintf(f, "    \"compression_ratio\": %.3f,\n",
                 tr.compressionRatio);
    std::fprintf(f, "    \"live_wall_sec\": %.3f,\n", tr.liveWallSec);
    std::fprintf(f, "    \"live_records_per_sec\": %.0f,\n",
                 tr.liveRecordsPerSec);
    std::fprintf(f, "    \"replay_records_per_sec\": %.0f,\n",
                 tr.replayRecordsPerSec);
    std::fprintf(f, "    \"replay_speedup\": %.3f,\n",
                 tr.replaySpeedup);
    std::fprintf(f, "    \"identical_results\": %s\n",
                 tr.identicalResults ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"self_profile\": {\n");
    std::fprintf(f, "    \"wall_ns\": %llu,\n",
                 (unsigned long long)p.wallNs());
    std::fprintf(f, "    \"attributed_ns\": %llu,\n",
                 (unsigned long long)p.attributedNs());
    std::fprintf(f, "    \"attributed_fraction\": %.4f,\n",
                 p.attributedFraction());
    std::fprintf(f, "    \"zones\": [\n");
    for (unsigned z = 0; z < obs::prof::zoneCount; ++z) {
        const auto &s = p.zones[z];
        std::fprintf(
            f,
            "      {\"zone\": \"%s\", \"total_ns\": %llu, "
            "\"self_ns\": %llu, \"count\": %llu}%s\n",
            obs::prof::zoneName(static_cast<obs::prof::Zone>(z)),
            (unsigned long long)s.totalNs,
            (unsigned long long)p.selfNs(
                static_cast<obs::prof::Zone>(z)),
            (unsigned long long)s.count,
            z + 1 < obs::prof::zoneCount ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", out.c_str());
    return 0;
}
