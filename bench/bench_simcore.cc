/**
 * @file
 * Simulator-core steady-state throughput benchmark.
 *
 * Two measurements, one canonical JSON artifact (BENCH_simcore.json):
 *
 * 1. Event-dispatch microbenchmark: a ring of in-flight "RDMA read"
 *    completions — the dominant event on the fault/prefetch path —
 *    driven through (a) the production sim::EventQueue with templated
 *    completion callbacks landing in inline-storage events, and (b) an
 *    in-binary replica of the pre-rewrite design: the completion
 *    callback type-erased into a std::function, wrapped in a second
 *    std::function for the queue (the old RdmaFabric::readAsync
 *    idiom), stored in a std::priority_queue whose const top() forces
 *    one more deep copy on every dispatch. The replica IS the recorded
 *    baseline, so the speedup in the artifact always compares against
 *    the design this PR replaced, on the same machine, in the same
 *    run.
 *
 * 2. End-to-end steady state: a full HoPP machine run (microbench
 *    workload, 50% local memory) reporting faults/sec, events/sec and
 *    wall-ns per simulated millisecond.
 *
 * Wall-clock use is deliberate and confined to bench/ (the determinism
 * lint only polices src/ and tools/): throughput numbers are exactly
 * the place where real time belongs.
 *
 * Flags: --out PATH (default BENCH_simcore.json), --quick (CI smoke).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "runner/machine.hh"
#include "sim/event_queue.hh"
#include "workloads/apps.hh"

using namespace hopp;

namespace
{

double
wallSeconds(std::chrono::steady_clock::time_point t0,
            std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Replica of the event queue this PR replaced: type-erased
 * std::function closures (heap-allocated beyond the ~16 B SSO) in a
 * std::priority_queue, whose const top() forces a deep copy — and thus
 * more allocations — on every dispatch.
 */
class LegacyQueue
{
  public:
    void
    schedule(Tick when, std::function<void()> fn)
    {
        pq_.push(Entry{when, seq_++, std::move(fn)});
    }

    void
    scheduleIn(Duration delta, std::function<void()> fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    Tick now() const { return now_; }

    bool
    runOne()
    {
        if (pq_.empty())
            return false;
        Entry e = pq_.top(); // the historical copy-on-dispatch
        pq_.pop();
        now_ = e.when;
        ++executed_;
        e.fn();
        return true;
    }

    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq_;
    Tick now_;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

/**
 * Pre-rewrite fabric idiom: the caller's completion callback is
 * type-erased into std::function (first allocation: the capture is
 * over the SSO), then wrapped in a second std::function for the queue
 * (second allocation); dispatch copies both again.
 */
void
legacyReadAsync(LegacyQueue &q, Duration lat,
                std::function<void(Tick)> done)
{
    Tick completion = q.now() + lat;
    q.schedule(completion,
               [done = std::move(done), completion] { done(completion); });
}

/**
 * Post-rewrite fabric idiom (net/rdma.hh): the callback type flows
 * through a template parameter straight into the event's fixed inline
 * storage — zero allocations end to end.
 */
template <typename F>
void
inlineReadAsync(sim::EventQueue &q, Duration lat, F &&done)
{
    Tick completion = q.now() + lat;
    q.schedule(completion,
               [done = std::forward<F>(done), completion]() mutable {
                   done(completion);
               });
}

/**
 * One in-flight "read": the completion handler records the result and
 * issues the next read, exactly the steady-state shape of demand
 * faults and prefetch streams. The callback captures the actor plus a
 * (slot, vpn) pair, like the tree's completion closures.
 */
struct LegacyActor
{
    LegacyQueue &q;
    std::uint64_t budget;
    std::uint64_t acc = 0;

    void
    onDone(Tick t, std::uint64_t slot, std::uint64_t vpn)
    {
        acc += t.raw() ^ slot ^ vpn;
        if (budget == 0)
            return;
        --budget;
        legacyReadAsync(q, Duration{1 + (acc & 7)},
                        [this, slot = slot + 1, vpn = vpn + 2](Tick c) {
                            onDone(c, slot, vpn);
                        });
    }
};

struct InlineActor
{
    sim::EventQueue &q;
    std::uint64_t budget;
    std::uint64_t acc = 0;

    void
    onDone(Tick t, std::uint64_t slot, std::uint64_t vpn)
    {
        acc += t.raw() ^ slot ^ vpn;
        if (budget == 0)
            return;
        --budget;
        inlineReadAsync(q, Duration{1 + (acc & 7)},
                        [this, slot = slot + 1, vpn = vpn + 2](Tick c) {
                            onDone(c, slot, vpn);
                        });
    }
};

/** Dispatch throughput of one queue flavour, best of three trials. */
template <typename Queue, typename Actor>
double
dispatchEventsPerSec(std::uint64_t events_per_trial)
{
    // 16 in-flight completions: the fabric keeps a modest number of
    // reads outstanding (per-app fault + prefetch windows), so the
    // queue stays shallow and the per-event closure cost dominates —
    // the quantity this benchmark isolates.
    constexpr int actors = 16;
    constexpr int trials = 3;
    double best = 0;
    for (int trial = 0; trial < trials; ++trial) {
        Queue q;
        std::vector<Actor> ring(actors,
                                Actor{q, events_per_trial / actors});
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < actors; ++i)
            ring[i].onDone(Tick{static_cast<std::uint64_t>(1 + i)}, 1,
                           2);
        while (q.runOne()) {
        }
        auto t1 = std::chrono::steady_clock::now();
        double rate =
            static_cast<double>(q.executed()) / wallSeconds(t0, t1);
        if (rate > best)
            best = rate;
    }
    return best;
}

struct EndToEnd
{
    double faultsPerSec;
    double eventsPerSec;
    double wallNsPerSimMs;
    std::uint64_t faults;
    std::uint64_t events;
};

EndToEnd
endToEndSteadyState(bool quick)
{
    runner::MachineConfig cfg;
    cfg.system = runner::SystemKind::Hopp;
    cfg.localMemRatio = 0.5; // half the footprint is remote: constant
                             // fault/prefetch pressure
    workloads::WorkloadScale scale;
    scale.footprint = quick ? 0.2 : 1.0;
    scale.iterations = quick ? 0.2 : 1.0;
    runner::Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("microbench", scale));
    auto t0 = std::chrono::steady_clock::now();
    runner::RunResult r = m.run();
    auto t1 = std::chrono::steady_clock::now();
    double wall = wallSeconds(t0, t1);
    double sim_ms = static_cast<double>(r.makespan.raw()) / 1e6;
    EndToEnd e;
    e.faults = m.vms().stats().faults();
    e.events = m.eventQueue().executed();
    e.faultsPerSec = static_cast<double>(e.faults) / wall;
    e.eventsPerSec = static_cast<double>(e.events) / wall;
    e.wallNsPerSimMs = wall * 1e9 / sim_ms;
    return e;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_simcore.json";
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[++i];
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    const std::uint64_t dispatch_events = quick ? 1'000'000 : 8'000'000;

    std::printf("simcore benchmark (%s)\n", quick ? "quick" : "full");
    double inline_eps =
        dispatchEventsPerSec<sim::EventQueue, InlineActor>(
            dispatch_events);
    double legacy_eps = dispatchEventsPerSec<LegacyQueue, LegacyActor>(
        dispatch_events);
    double speedup = inline_eps / legacy_eps;
    std::printf("  dispatch: inline %.3fM ev/s, legacy replica %.3fM "
                "ev/s, speedup %.2fx\n",
                inline_eps / 1e6, legacy_eps / 1e6, speedup);

    EndToEnd e = endToEndSteadyState(quick);
    std::printf("  end-to-end: %.0f faults/s, %.3fM ev/s, %.0f wall-ns "
                "per sim-ms\n",
                e.faultsPerSec, e.eventsPerSec / 1e6, e.wallNsPerSimMs);

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return 1;
    }
    // Canonical artifact: fixed key order, schema documented in
    // DESIGN.md §9.
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"hopp-bench-simcore-v1\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
    std::fprintf(f, "  \"event_dispatch\": {\n");
    std::fprintf(f, "    \"events_per_trial\": %llu,\n",
                 (unsigned long long)dispatch_events);
    std::fprintf(f, "    \"inline_events_per_sec\": %.0f,\n",
                 inline_eps);
    std::fprintf(f, "    \"legacy_baseline_events_per_sec\": %.0f,\n",
                 legacy_eps);
    std::fprintf(f, "    \"speedup_vs_legacy\": %.3f\n", speedup);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"end_to_end\": {\n");
    std::fprintf(f, "    \"workload\": \"microbench\",\n");
    std::fprintf(f, "    \"local_mem_ratio\": 0.5,\n");
    std::fprintf(f, "    \"faults\": %llu,\n",
                 (unsigned long long)e.faults);
    std::fprintf(f, "    \"events\": %llu,\n",
                 (unsigned long long)e.events);
    std::fprintf(f, "    \"faults_per_sec\": %.0f,\n", e.faultsPerSec);
    std::fprintf(f, "    \"events_per_sec\": %.0f,\n", e.eventsPerSec);
    std::fprintf(f, "    \"wall_ns_per_sim_ms\": %.0f\n",
                 e.wallNsPerSimMs);
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", out.c_str());
    return 0;
}
