/**
 * @file
 * Figure 22 reproduction — design sensitivity on the §VI-E
 * microbenchmark (2 threads, each read-summing every 8-byte block of
 * its array; 50% local memory):
 *
 *  - Leap (two concurrent streams confuse its global stride detector),
 *  - VMA-based readahead (slightly better than Fastswap),
 *  - HoPP with fixed offset i=1 and i=20K,
 *  - HoPP with the adaptive offset (the shipped configuration).
 *
 * All reported as speedup over Fastswap, plus the local scenario.
 */

#include <cstdio>

#include "harness.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

RunResult
runMicro(const MachineConfig &cfg)
{
    Machine m(cfg);
    m.addWorkload(
        workloads::makeWorkload("microbench", hopp::bench::benchScale()));
    return m.run();
}

} // namespace

int
main()
{
    MachineConfig fs;
    fs.system = SystemKind::Fastswap;
    fs.localMemRatio = 0.5;
    auto fs_result = runMicro(fs);
    double ct_fs = toDouble(fs_result.makespan);

    MachineConfig local = fs;
    local.system = SystemKind::Local;
    auto local_result = runMicro(local);

    stats::Table table(
        "Figure 22: design sensitivity, speedup over Fastswap"
        " (microbenchmark)");
    table.header({"System", "CT (ms)", "Speedup vs Fastswap"});

    auto report = [&](const std::string &label, const RunResult &r) {
        double speedup = 1.0 - toDouble(r.makespan) / ct_fs;
        table.row({label,
                   stats::Table::num(
                       toDouble(r.makespan) / 1e6, 2),
                   stats::Table::pct(speedup, 1)});
    };

    report("local (upper bound)", local_result);
    report("fastswap (baseline)", fs_result);

    MachineConfig leap = fs;
    leap.system = SystemKind::Leap;
    report("leap", runMicro(leap));

    MachineConfig vma = fs;
    vma.system = SystemKind::Vma;
    report("vma-readahead", runMicro(vma));

    MachineConfig h1 = fs;
    h1.system = SystemKind::Hopp;
    h1.hopp.policy.adaptive = false;
    h1.hopp.policy.offsetInit = 1.0;
    report("hopp (offset=1 fixed)", runMicro(h1));

    MachineConfig h20k = h1;
    h20k.hopp.policy.offsetInit = 20'000.0;
    h20k.hopp.policy.offsetMax = 20'000.0;
    report("hopp (offset=20K fixed)", runMicro(h20k));

    MachineConfig hdyn = fs;
    hdyn.system = SystemKind::Hopp;
    report("hopp (adaptive offset)", runMicro(hdyn));

    table.print();
    std::puts("Paper Fig 22 (for comparison): Leap below Fastswap (two"
              " streams confuse its stride detection); VMA ~3.6% above"
              " Fastswap; HoPP ~40% above VMA (early PTE injection"
              " removes all prefetch-hit faults); adaptive offset beats"
              " both fixed offsets.");
    return 0;
}
