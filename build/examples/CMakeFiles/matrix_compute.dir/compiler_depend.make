# Empty compiler generated dependencies file for matrix_compute.
# This may be replaced when dependencies are built.
