file(REMOVE_RECURSE
  "CMakeFiles/matrix_compute.dir/matrix_compute.cpp.o"
  "CMakeFiles/matrix_compute.dir/matrix_compute.cpp.o.d"
  "matrix_compute"
  "matrix_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
