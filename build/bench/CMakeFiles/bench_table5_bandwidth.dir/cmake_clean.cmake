file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_bandwidth.dir/bench_table5_bandwidth.cc.o"
  "CMakeFiles/bench_table5_bandwidth.dir/bench_table5_bandwidth.cc.o.d"
  "bench_table5_bandwidth"
  "bench_table5_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
