# Empty compiler generated dependencies file for bench_ablation_hpd.
# This may be replaced when dependencies are built.
