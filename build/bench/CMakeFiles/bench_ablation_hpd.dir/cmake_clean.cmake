file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hpd.dir/bench_ablation_hpd.cc.o"
  "CMakeFiles/bench_ablation_hpd.dir/bench_ablation_hpd.cc.o.d"
  "bench_ablation_hpd"
  "bench_ablation_hpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
