file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_fulltrace.dir/bench_motivation_fulltrace.cc.o"
  "CMakeFiles/bench_motivation_fulltrace.dir/bench_motivation_fulltrace.cc.o.d"
  "bench_motivation_fulltrace"
  "bench_motivation_fulltrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_fulltrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
