# Empty dependencies file for bench_motivation_fulltrace.
# This may be replaced when dependencies are built.
