# Empty dependencies file for bench_fig18_tier_speedup.
# This may be replaced when dependencies are built.
