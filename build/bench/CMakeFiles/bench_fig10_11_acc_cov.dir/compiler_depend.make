# Empty compiler generated dependencies file for bench_fig10_11_acc_cov.
# This may be replaced when dependencies are built.
