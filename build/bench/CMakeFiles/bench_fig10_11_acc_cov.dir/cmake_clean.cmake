file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_acc_cov.dir/bench_fig10_11_acc_cov.cc.o"
  "CMakeFiles/bench_fig10_11_acc_cov.dir/bench_fig10_11_acc_cov.cc.o.d"
  "bench_fig10_11_acc_cov"
  "bench_fig10_11_acc_cov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_acc_cov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
