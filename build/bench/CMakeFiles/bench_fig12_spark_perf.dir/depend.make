# Empty dependencies file for bench_fig12_spark_perf.
# This may be replaced when dependencies are built.
