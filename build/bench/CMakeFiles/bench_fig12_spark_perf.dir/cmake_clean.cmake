file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_spark_perf.dir/bench_fig12_spark_perf.cc.o"
  "CMakeFiles/bench_fig12_spark_perf.dir/bench_fig12_spark_perf.cc.o.d"
  "bench_fig12_spark_perf"
  "bench_fig12_spark_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_spark_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
