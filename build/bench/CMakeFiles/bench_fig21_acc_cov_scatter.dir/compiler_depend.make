# Empty compiler generated dependencies file for bench_fig21_acc_cov_scatter.
# This may be replaced when dependencies are built.
