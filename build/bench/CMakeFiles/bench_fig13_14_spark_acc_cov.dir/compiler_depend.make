# Empty compiler generated dependencies file for bench_fig13_14_spark_acc_cov.
# This may be replaced when dependencies are built.
