file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hpd_ratio.dir/bench_table2_hpd_ratio.cc.o"
  "CMakeFiles/bench_table2_hpd_ratio.dir/bench_table2_hpd_ratio.cc.o.d"
  "bench_table2_hpd_ratio"
  "bench_table2_hpd_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hpd_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
