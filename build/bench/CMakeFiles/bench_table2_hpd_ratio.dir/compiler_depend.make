# Empty compiler generated dependencies file for bench_table2_hpd_ratio.
# This may be replaced when dependencies are built.
