# Empty dependencies file for bench_fig19_20_tier_acc_cov.
# This may be replaced when dependencies are built.
