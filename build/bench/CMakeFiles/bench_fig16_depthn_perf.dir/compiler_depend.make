# Empty compiler generated dependencies file for bench_fig16_depthn_perf.
# This may be replaced when dependencies are built.
