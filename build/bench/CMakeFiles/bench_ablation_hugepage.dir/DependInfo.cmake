
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_hugepage.cc" "bench/CMakeFiles/bench_ablation_hugepage.dir/bench_ablation_hugepage.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_hugepage.dir/bench_ablation_hugepage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runner/CMakeFiles/hopp_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/hopp/CMakeFiles/hopp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/hopp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hopp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hopp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hopp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hopp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hopp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hopp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hopp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
