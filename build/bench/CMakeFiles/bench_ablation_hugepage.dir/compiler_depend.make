# Empty compiler generated dependencies file for bench_ablation_hugepage.
# This may be replaced when dependencies are built.
