file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hugepage.dir/bench_ablation_hugepage.cc.o"
  "CMakeFiles/bench_ablation_hugepage.dir/bench_ablation_hugepage.cc.o.d"
  "bench_ablation_hugepage"
  "bench_ablation_hugepage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hugepage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
