file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_rpt_cache.dir/bench_table3_rpt_cache.cc.o"
  "CMakeFiles/bench_table3_rpt_cache.dir/bench_table3_rpt_cache.cc.o.d"
  "bench_table3_rpt_cache"
  "bench_table3_rpt_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_rpt_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
