# Empty compiler generated dependencies file for bench_table3_rpt_cache.
# This may be replaced when dependencies are built.
