file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_remote_accesses.dir/bench_fig17_remote_accesses.cc.o"
  "CMakeFiles/bench_fig17_remote_accesses.dir/bench_fig17_remote_accesses.cc.o.d"
  "bench_fig17_remote_accesses"
  "bench_fig17_remote_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_remote_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
