# Empty dependencies file for bench_fig17_remote_accesses.
# This may be replaced when dependencies are built.
