# Empty compiler generated dependencies file for test_readahead.
# This may be replaced when dependencies are built.
