file(REMOVE_RECURSE
  "CMakeFiles/test_vms_random.dir/test_vms_random.cc.o"
  "CMakeFiles/test_vms_random.dir/test_vms_random.cc.o.d"
  "test_vms_random"
  "test_vms_random.pdb"
  "test_vms_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vms_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
