# Empty dependencies file for test_vms_random.
# This may be replaced when dependencies are built.
