# Empty dependencies file for test_hpd.
# This may be replaced when dependencies are built.
