file(REMOVE_RECURSE
  "CMakeFiles/test_hpd.dir/test_hpd.cc.o"
  "CMakeFiles/test_hpd.dir/test_hpd.cc.o.d"
  "test_hpd"
  "test_hpd.pdb"
  "test_hpd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
