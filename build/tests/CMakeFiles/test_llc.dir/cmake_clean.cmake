file(REMOVE_RECURSE
  "CMakeFiles/test_llc.dir/test_llc.cc.o"
  "CMakeFiles/test_llc.dir/test_llc.cc.o.d"
  "test_llc"
  "test_llc.pdb"
  "test_llc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_llc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
