file(REMOVE_RECURSE
  "CMakeFiles/test_algorithm_properties.dir/test_algorithm_properties.cc.o"
  "CMakeFiles/test_algorithm_properties.dir/test_algorithm_properties.cc.o.d"
  "test_algorithm_properties"
  "test_algorithm_properties.pdb"
  "test_algorithm_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithm_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
