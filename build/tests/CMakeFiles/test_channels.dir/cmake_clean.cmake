file(REMOVE_RECURSE
  "CMakeFiles/test_channels.dir/test_channels.cc.o"
  "CMakeFiles/test_channels.dir/test_channels.cc.o.d"
  "test_channels"
  "test_channels.pdb"
  "test_channels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
