# Empty dependencies file for test_rpt.
# This may be replaced when dependencies are built.
