
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rpt.cc" "tests/CMakeFiles/test_rpt.dir/test_rpt.cc.o" "gcc" "tests/CMakeFiles/test_rpt.dir/test_rpt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hopp/CMakeFiles/hopp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/hopp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hopp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hopp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hopp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hopp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hopp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hopp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
