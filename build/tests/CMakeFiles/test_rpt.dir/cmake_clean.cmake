file(REMOVE_RECURSE
  "CMakeFiles/test_rpt.dir/test_rpt.cc.o"
  "CMakeFiles/test_rpt.dir/test_rpt.cc.o.d"
  "test_rpt"
  "test_rpt.pdb"
  "test_rpt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
