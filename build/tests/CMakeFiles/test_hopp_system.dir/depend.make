# Empty dependencies file for test_hopp_system.
# This may be replaced when dependencies are built.
