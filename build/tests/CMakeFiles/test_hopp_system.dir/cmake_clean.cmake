file(REMOVE_RECURSE
  "CMakeFiles/test_hopp_system.dir/test_hopp_system.cc.o"
  "CMakeFiles/test_hopp_system.dir/test_hopp_system.cc.o.d"
  "test_hopp_system"
  "test_hopp_system.pdb"
  "test_hopp_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hopp_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
