file(REMOVE_RECURSE
  "CMakeFiles/test_stt.dir/test_stt.cc.o"
  "CMakeFiles/test_stt.dir/test_stt.cc.o.d"
  "test_stt"
  "test_stt.pdb"
  "test_stt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
