# Empty dependencies file for test_stt.
# This may be replaced when dependencies are built.
