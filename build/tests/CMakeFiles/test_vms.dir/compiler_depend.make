# Empty compiler generated dependencies file for test_vms.
# This may be replaced when dependencies are built.
