file(REMOVE_RECURSE
  "CMakeFiles/test_vms.dir/test_vms.cc.o"
  "CMakeFiles/test_vms.dir/test_vms.cc.o.d"
  "test_vms"
  "test_vms.pdb"
  "test_vms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
