file(REMOVE_RECURSE
  "CMakeFiles/hopp_mem.dir/dram.cc.o"
  "CMakeFiles/hopp_mem.dir/dram.cc.o.d"
  "CMakeFiles/hopp_mem.dir/llc.cc.o"
  "CMakeFiles/hopp_mem.dir/llc.cc.o.d"
  "CMakeFiles/hopp_mem.dir/memctrl.cc.o"
  "CMakeFiles/hopp_mem.dir/memctrl.cc.o.d"
  "libhopp_mem.a"
  "libhopp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
