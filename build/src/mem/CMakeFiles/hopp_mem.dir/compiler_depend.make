# Empty compiler generated dependencies file for hopp_mem.
# This may be replaced when dependencies are built.
