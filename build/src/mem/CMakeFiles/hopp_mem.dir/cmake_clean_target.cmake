file(REMOVE_RECURSE
  "libhopp_mem.a"
)
