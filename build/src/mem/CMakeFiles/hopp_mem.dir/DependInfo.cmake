
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/hopp_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/hopp_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/llc.cc" "src/mem/CMakeFiles/hopp_mem.dir/llc.cc.o" "gcc" "src/mem/CMakeFiles/hopp_mem.dir/llc.cc.o.d"
  "/root/repo/src/mem/memctrl.cc" "src/mem/CMakeFiles/hopp_mem.dir/memctrl.cc.o" "gcc" "src/mem/CMakeFiles/hopp_mem.dir/memctrl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hopp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hopp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
