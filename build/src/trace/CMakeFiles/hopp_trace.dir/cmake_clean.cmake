file(REMOVE_RECURSE
  "CMakeFiles/hopp_trace.dir/trace_io.cc.o"
  "CMakeFiles/hopp_trace.dir/trace_io.cc.o.d"
  "libhopp_trace.a"
  "libhopp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
