# Empty dependencies file for hopp_trace.
# This may be replaced when dependencies are built.
