file(REMOVE_RECURSE
  "libhopp_trace.a"
)
