# Empty compiler generated dependencies file for hopp_workloads.
# This may be replaced when dependencies are built.
