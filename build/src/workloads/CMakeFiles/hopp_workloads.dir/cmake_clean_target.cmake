file(REMOVE_RECURSE
  "libhopp_workloads.a"
)
