file(REMOVE_RECURSE
  "CMakeFiles/hopp_workloads.dir/apps.cc.o"
  "CMakeFiles/hopp_workloads.dir/apps.cc.o.d"
  "CMakeFiles/hopp_workloads.dir/patterns.cc.o"
  "CMakeFiles/hopp_workloads.dir/patterns.cc.o.d"
  "libhopp_workloads.a"
  "libhopp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
