file(REMOVE_RECURSE
  "libhopp_runner.a"
)
