file(REMOVE_RECURSE
  "CMakeFiles/hopp_runner.dir/machine.cc.o"
  "CMakeFiles/hopp_runner.dir/machine.cc.o.d"
  "CMakeFiles/hopp_runner.dir/stats_report.cc.o"
  "CMakeFiles/hopp_runner.dir/stats_report.cc.o.d"
  "libhopp_runner.a"
  "libhopp_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopp_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
