# Empty compiler generated dependencies file for hopp_runner.
# This may be replaced when dependencies are built.
