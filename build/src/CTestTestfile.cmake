# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("sim")
subdirs("mem")
subdirs("vm")
subdirs("net")
subdirs("remote")
subdirs("trace")
subdirs("workloads")
subdirs("prefetch")
subdirs("hopp")
subdirs("runner")
