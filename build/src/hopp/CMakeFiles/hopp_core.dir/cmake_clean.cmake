file(REMOVE_RECURSE
  "CMakeFiles/hopp_core.dir/algorithms.cc.o"
  "CMakeFiles/hopp_core.dir/algorithms.cc.o.d"
  "CMakeFiles/hopp_core.dir/hopp_system.cc.o"
  "CMakeFiles/hopp_core.dir/hopp_system.cc.o.d"
  "CMakeFiles/hopp_core.dir/markov.cc.o"
  "CMakeFiles/hopp_core.dir/markov.cc.o.d"
  "CMakeFiles/hopp_core.dir/rpt.cc.o"
  "CMakeFiles/hopp_core.dir/rpt.cc.o.d"
  "CMakeFiles/hopp_core.dir/stt.cc.o"
  "CMakeFiles/hopp_core.dir/stt.cc.o.d"
  "libhopp_core.a"
  "libhopp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
