
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hopp/algorithms.cc" "src/hopp/CMakeFiles/hopp_core.dir/algorithms.cc.o" "gcc" "src/hopp/CMakeFiles/hopp_core.dir/algorithms.cc.o.d"
  "/root/repo/src/hopp/hopp_system.cc" "src/hopp/CMakeFiles/hopp_core.dir/hopp_system.cc.o" "gcc" "src/hopp/CMakeFiles/hopp_core.dir/hopp_system.cc.o.d"
  "/root/repo/src/hopp/markov.cc" "src/hopp/CMakeFiles/hopp_core.dir/markov.cc.o" "gcc" "src/hopp/CMakeFiles/hopp_core.dir/markov.cc.o.d"
  "/root/repo/src/hopp/rpt.cc" "src/hopp/CMakeFiles/hopp_core.dir/rpt.cc.o" "gcc" "src/hopp/CMakeFiles/hopp_core.dir/rpt.cc.o.d"
  "/root/repo/src/hopp/stt.cc" "src/hopp/CMakeFiles/hopp_core.dir/stt.cc.o" "gcc" "src/hopp/CMakeFiles/hopp_core.dir/stt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/hopp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/hopp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hopp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hopp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hopp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hopp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hopp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
