# Empty compiler generated dependencies file for hopp_core.
# This may be replaced when dependencies are built.
