file(REMOVE_RECURSE
  "libhopp_core.a"
)
