file(REMOVE_RECURSE
  "CMakeFiles/hopp_prefetch.dir/leap.cc.o"
  "CMakeFiles/hopp_prefetch.dir/leap.cc.o.d"
  "libhopp_prefetch.a"
  "libhopp_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopp_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
