# Empty compiler generated dependencies file for hopp_prefetch.
# This may be replaced when dependencies are built.
