file(REMOVE_RECURSE
  "libhopp_prefetch.a"
)
