file(REMOVE_RECURSE
  "CMakeFiles/hopp_common.dir/logging.cc.o"
  "CMakeFiles/hopp_common.dir/logging.cc.o.d"
  "CMakeFiles/hopp_common.dir/random.cc.o"
  "CMakeFiles/hopp_common.dir/random.cc.o.d"
  "libhopp_common.a"
  "libhopp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
