# Empty compiler generated dependencies file for hopp_common.
# This may be replaced when dependencies are built.
