file(REMOVE_RECURSE
  "libhopp_common.a"
)
