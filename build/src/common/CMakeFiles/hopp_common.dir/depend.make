# Empty dependencies file for hopp_common.
# This may be replaced when dependencies are built.
