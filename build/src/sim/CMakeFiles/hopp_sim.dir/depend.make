# Empty dependencies file for hopp_sim.
# This may be replaced when dependencies are built.
