file(REMOVE_RECURSE
  "libhopp_sim.a"
)
