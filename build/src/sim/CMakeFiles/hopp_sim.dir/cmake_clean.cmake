file(REMOVE_RECURSE
  "CMakeFiles/hopp_sim.dir/event_queue.cc.o"
  "CMakeFiles/hopp_sim.dir/event_queue.cc.o.d"
  "libhopp_sim.a"
  "libhopp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
