file(REMOVE_RECURSE
  "libhopp_stats.a"
)
