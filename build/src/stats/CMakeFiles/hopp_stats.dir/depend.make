# Empty dependencies file for hopp_stats.
# This may be replaced when dependencies are built.
