file(REMOVE_RECURSE
  "CMakeFiles/hopp_stats.dir/stats.cc.o"
  "CMakeFiles/hopp_stats.dir/stats.cc.o.d"
  "CMakeFiles/hopp_stats.dir/table.cc.o"
  "CMakeFiles/hopp_stats.dir/table.cc.o.d"
  "libhopp_stats.a"
  "libhopp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
