# Empty dependencies file for hopp_vm.
# This may be replaced when dependencies are built.
