file(REMOVE_RECURSE
  "libhopp_vm.a"
)
