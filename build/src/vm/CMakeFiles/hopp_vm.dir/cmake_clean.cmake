file(REMOVE_RECURSE
  "CMakeFiles/hopp_vm.dir/vms.cc.o"
  "CMakeFiles/hopp_vm.dir/vms.cc.o.d"
  "libhopp_vm.a"
  "libhopp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
