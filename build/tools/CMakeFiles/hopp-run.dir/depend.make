# Empty dependencies file for hopp-run.
# This may be replaced when dependencies are built.
