file(REMOVE_RECURSE
  "CMakeFiles/hopp-run.dir/hopp_run.cc.o"
  "CMakeFiles/hopp-run.dir/hopp_run.cc.o.d"
  "hopp-run"
  "hopp-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopp-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
