/**
 * @file
 * hopp_trace: validate and summarize flight-recorder traces.
 *
 *   hopp_trace [--check] [--summary] [--top N] FILE
 *
 * FILE is either a Chrome trace_event JSON document (hopp-run
 * --trace-out) or a JSONL file with one event object per line
 * (--trace-jsonl); the format is auto-detected.
 *
 * --check    validate only: JSON well-formedness, required fields,
 *            monotonic timestamps, balanced B/E and b/e spans.
 *            Exit 0 when clean, 1 with one error per line otherwise.
 * --summary  print event counts per phase and the top spans by total
 *            time (default when no mode flag is given; implies the
 *            validation too, since the numbers come from the same
 *            walk).
 * --top N    how many span names the summary lists (default 10).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/trace_check.hh"

using hopp::obs::TraceCheck;
namespace json = hopp::obs::json;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--check] [--summary] [--top N] FILE\n",
                 argv0);
}

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        std::fprintf(stderr, "hopp_trace: cannot open '%s'\n",
                     path.c_str());
        return false;
    }
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

/**
 * Parse the input in either framing. A Chrome trace parses as one
 * document; a JSONL file fails that (multiple roots), so fall back to
 * line-by-line parsing. @p storage keeps the parsed values alive for
 * the returned TraceCheck walk.
 */
bool
parseAndCheck(const std::string &text, TraceCheck &out)
{
    json::Value root;
    std::string err;
    if (json::parse(text, root, &err)) {
        out = hopp::obs::checkTrace(root);
        return true;
    }

    // JSONL: every non-empty line is one event object.
    std::vector<json::Value> events;
    std::size_t start = 0, lineno = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        ++lineno;
        std::string line = text.substr(start, end - start);
        start = end + 1;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        json::Value v;
        std::string line_err;
        if (!json::parse(line, v, &line_err)) {
            std::fprintf(stderr,
                         "hopp_trace: not valid JSON (%s) nor JSONL"
                         " (line %zu: %s)\n",
                         err.c_str(), lineno, line_err.c_str());
            return false;
        }
        events.push_back(std::move(v));
    }
    std::vector<const json::Value *> ptrs;
    ptrs.reserve(events.size());
    for (const auto &e : events)
        ptrs.push_back(&e);
    out = hopp::obs::checkEvents(ptrs);
    return true;
}

const char *
phaseName(char ph)
{
    switch (ph) {
      case 'B': return "span begin";
      case 'E': return "span end";
      case 'X': return "complete span";
      case 'i': return "instant";
      case 'C': return "counter";
      case 'b': return "async begin";
      case 'e': return "async end";
    }
    return "?";
}

void
printSummary(const TraceCheck &c, unsigned top)
{
    std::printf("events: %zu\n", c.events);
    for (const auto &[ph, count] : c.phaseCounts) {
        std::printf("  %c (%s): %llu\n", ph, phaseName(ph),
                    static_cast<unsigned long long>(count));
    }

    std::vector<std::pair<std::string, hopp::obs::SpanTotal>> spans(
        c.spans.begin(), c.spans.end());
    std::sort(spans.begin(), spans.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.totalUs != b.second.totalUs)
                      return a.second.totalUs > b.second.totalUs;
                  return a.first < b.first;
              });
    if (!spans.empty())
        std::printf("top spans by total time:\n");
    for (std::size_t i = 0; i < spans.size() && i < top; ++i) {
        std::printf("  %-28s %12.3f us over %llu spans\n",
                    spans[i].first.c_str(), spans[i].second.totalUs,
                    static_cast<unsigned long long>(
                        spans[i].second.count));
    }

    if (!c.trackSpans.empty())
        std::printf("completed spans per track:\n");
    for (const auto &[track, count] : c.trackSpans) {
        std::printf("  track %u: %llu span(s)\n", track,
                    static_cast<unsigned long long>(count));
    }

    if (!c.counters.empty())
        std::printf("counter totals:\n");
    for (const auto &[name, total] : c.counters) {
        std::printf("  %-28s sum %.3f over %llu sample(s)\n",
                    name.c_str(), total.sum,
                    static_cast<unsigned long long>(total.samples));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool check_only = false;
    bool summary = false;
    unsigned top = 10;
    std::string path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--check") {
            check_only = true;
        } else if (arg == "--summary") {
            summary = true;
        } else if (arg == "--top") {
            if (i + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            top = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (path.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (!check_only && !summary)
        summary = true;

    std::string text;
    if (!readFile(path, text))
        return 1;

    TraceCheck result;
    if (!parseAndCheck(text, result))
        return 1;

    for (const auto &e : result.errors)
        std::fprintf(stderr, "hopp_trace: %s\n", e.c_str());

    if (summary)
        printSummary(result, top);
    if (result.ok()) {
        if (check_only)
            std::printf("%s: ok (%zu events)\n", path.c_str(),
                        result.events);
        return 0;
    }
    std::fprintf(stderr, "hopp_trace: %zu error(s) in %s\n",
                 result.errors.size(), path.c_str());
    return 1;
}
