/**
 * @file
 * hopp-replay: sweep HoPP policies over a recorded trace at memory
 * speed — record once with `hopp-run --record-trace`, then cross the
 * captured MC-side input stream against a tier-mask x HPD-threshold
 * grid without re-simulating the workload, VMS, or page walks.
 *
 *   hopp-replay --trace FILE [--tiers MASK]... [--threshold N]...
 *               [--channels N] [--no-interleave] [--markov]
 *               [--jobs N] [--out FILE] [--mc-stats-json FILE]
 *   hopp-replay --import-champsim IN --trace OUT [--pid N]
 *               [--tick-per-instr NS]
 *
 * Cells sharing an HPD threshold (the hardware axis) replay in one
 * pass: a shared frontend decodes the trace and probes the HPD once,
 * fanning each hot page out to every tier-mask cell's trainer
 * (ReplayEngine fan-out). With --jobs N the threshold groups execute
 * on N host threads through SweepPool; fragments contain no wall
 * times and are assembled in a fixed tiers-major order, so the
 * document is byte-identical for every --jobs value.
 *
 * --mc-stats-json writes the MC-side fidelity-contract document of a
 * single-cell grid; diffing it against the recording run's
 * `hopp-run --mc-stats-json` is the record->replay determinism check
 * (DESIGN.md §15).
 *
 * Examples:
 *   hopp-run --workload kmeans-omp --system hopp --record-trace k.trc
 *   hopp-replay --trace k.trc --tiers 1 --tiers 7 --tiers 15 \
 *               --threshold 4 --threshold 8 --jobs 4 --out grid.json
 *   hopp-replay --import-champsim app.champsim.bin --trace app.trc
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/trace_writer.hh"
#include "runner/replay_engine.hh"
#include "runner/sweep_pool.hh"
#include "trace/champsim.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --trace FILE [options]\n"
        "  --trace FILE        recorded trace to replay (with\n"
        "                      --import-champsim: the output path)\n"
        "  --tiers MASK        tier bitmask grid axis (repeatable;"
        " default 7)\n"
        "  --threshold N       HPD threshold grid axis (repeatable;"
        " default 8)\n"
        "  --channels N        memory channels (default 1)\n"
        "  --no-interleave     per-page channel layout\n"
        "  --markov            add the Markov tier to every cell\n"
        "  --jobs N            host worker threads (default 1; 0 ="
        " all cores)\n"
        "  --out FILE          write the grid document to FILE"
        " (default stdout)\n"
        "  --mc-stats-json FILE  write the MC-side fidelity document"
        " (single-cell grids only)\n"
        "  --import-champsim IN  convert a ChampSim binary trace to"
        " the replay format and exit\n"
        "  --pid N             pid for imported records (default 1)\n"
        "  --tick-per-instr NS imported inter-instruction time"
        " (default 4)\n",
        argv0);
}

/** Indent every line of a rendered JSON block by @p pad spaces. */
std::string
indent(const std::string &text, int pad)
{
    std::string out;
    std::string prefix(static_cast<std::size_t>(pad), ' ');
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos)
            nl = text.size();
        if (nl > start)
            out += prefix + text.substr(start, nl - start);
        out += '\n';
        start = nl + 1;
    }
    if (!out.empty() && out.back() == '\n')
        out.pop_back();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path, out_path, mc_stats_json, champsim_in;
    std::vector<unsigned> tier_masks;
    std::vector<unsigned> thresholds;
    ReplayConfig base;
    bool markov = false;
    unsigned jobs = 1;
    std::uint64_t champsim_pid = 1;
    Duration tick_per_instr = 4;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            usage(argv[0]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--trace") {
            trace_path = need(i);
        } else if (arg == "--tiers") {
            tier_masks.push_back(
                static_cast<unsigned>(std::atoi(need(i))));
        } else if (arg == "--threshold") {
            thresholds.push_back(
                static_cast<unsigned>(std::atoi(need(i))));
        } else if (arg == "--channels") {
            base.hopp.channels =
                static_cast<unsigned>(std::atoi(need(i)));
        } else if (arg == "--no-interleave") {
            base.hopp.channelInterleaved = false;
        } else if (arg == "--markov") {
            markov = true;
        } else if (arg == "--jobs") {
            int n = std::atoi(need(i));
            jobs = n <= 0 ? SweepPool::hardwareJobs()
                          : static_cast<unsigned>(n);
        } else if (arg == "--out") {
            out_path = need(i);
        } else if (arg == "--mc-stats-json") {
            mc_stats_json = need(i);
        } else if (arg == "--import-champsim") {
            champsim_in = need(i);
        } else if (arg == "--pid") {
            champsim_pid =
                static_cast<std::uint64_t>(std::atoll(need(i)));
        } else if (arg == "--tick-per-instr") {
            tick_per_instr =
                static_cast<Duration>(std::atoll(need(i)));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (trace_path.empty()) {
        usage(argv[0]);
        return 2;
    }

    if (!champsim_in.empty()) {
        trace::ChampSimOptions opt;
        opt.pid = champsim_pid;
        opt.tickPerInstr = tick_per_instr;
        trace::ChampSimImport imp =
            trace::importChampSim(champsim_in, trace_path, opt);
        if (imp.status != trace::TraceIoStatus::Ok) {
            std::fprintf(stderr, "champsim import failed: %s\n",
                         trace::traceIoStatusName(imp.status));
            return 1;
        }
        std::printf("imported %llu instructions -> %llu accesses over"
                    " %llu pages\n",
                    static_cast<unsigned long long>(imp.instructions),
                    static_cast<unsigned long long>(imp.accesses),
                    static_cast<unsigned long long>(imp.pages));
        return 0;
    }

    if (tier_masks.empty())
        tier_masks.push_back(core::tiers::all);
    if (thresholds.empty())
        thresholds.push_back(core::HpdConfig{}.threshold);
    if (markov) {
        for (unsigned &m : tier_masks)
            m |= core::tiers::markov;
    }
    if (!mc_stats_json.empty() &&
        (tier_masks.size() != 1 || thresholds.size() != 1)) {
        std::fprintf(stderr, "--mc-stats-json needs a single-cell"
                             " grid (one --tiers, one --threshold)\n");
        return 2;
    }

    // Grid execution: the HPD threshold is hardware, the tier mask is
    // software. Cells sharing a threshold replay in ONE pass through
    // a shared frontend (ReplayEngine fan-out) — decode and the
    // per-access HPD/RPT work are paid once per threshold, not once
    // per cell — and SweepPool spreads the threshold groups across
    // host threads. Fragments carry no wall times and are assembled
    // tiers-major below, so the document stays byte-identical for
    // every --jobs value (and to the old per-cell execution).
    struct GroupOut
    {
        std::vector<std::string> byTier;
        std::string mcStats; //!< cell 0's fidelity doc (group 0 only)
    };
    std::string mc_stats_doc;
    SweepPool pool(jobs);
    std::vector<GroupOut> groups = pool.run<GroupOut>(
        thresholds.size(), [&](std::size_t g) {
            GroupOut out;
            // Fan-outs are capped at maxReplayCells; a wider tier axis
            // simply replays in several passes.
            for (std::size_t lo = 0; lo < tier_masks.size();
                 lo += maxReplayCells) {
                std::size_t hi = std::min(
                    lo + maxReplayCells, tier_masks.size());
                std::vector<ReplayConfig> cfgs;
                cfgs.reserve(hi - lo);
                for (std::size_t c = lo; c < hi; ++c) {
                    ReplayConfig cfg = base;
                    cfg.hopp.tierMask = tier_masks[c];
                    cfg.hopp.hpd.threshold = thresholds[g];
                    cfgs.push_back(cfg);
                }
                trace::TraceReader reader;
                trace::TraceIoStatus st = reader.open(trace_path);
                ReplayEngine engine(cfgs);
                if (st == trace::TraceIoStatus::Ok)
                    st = engine.run(reader);
                for (std::size_t c = lo; c < hi; ++c) {
                    std::size_t cell = c - lo;
                    std::string frag;
                    frag += "    {\n";
                    frag += "      \"tiers\": " +
                            std::to_string(tier_masks[c]) + ",\n";
                    frag += "      \"threshold\": " +
                            std::to_string(thresholds[g]) + ",\n";
                    // A failed cell still renders (sweep documents
                    // stay complete); the post-run scan turns any
                    // non-ok status into a nonzero exit.
                    frag += "      \"status\": \"" +
                            std::string(
                                trace::traceIoStatusName(st)) +
                            "\",\n";
                    frag += "      \"mc_stats\":\n" +
                            indent(engine.mcStatsJson(cell), 6) +
                            ",\n";
                    frag += "      \"oracle\":\n" +
                            indent(engine.oracleJson(cell), 6) + "\n";
                    frag += "    }";
                    out.byTier.push_back(std::move(frag));
                }
                if (g == 0 && lo == 0 && !mc_stats_json.empty())
                    out.mcStats = engine.mcStatsJson(0);
            }
            return out;
        });
    if (!mc_stats_json.empty())
        mc_stats_doc = groups[0].mcStats;

    // Tiers-major document order, matching the submission order the
    // per-cell execution used.
    std::vector<std::string> fragments;
    fragments.reserve(tier_masks.size() * thresholds.size());
    for (std::size_t t = 0; t < tier_masks.size(); ++t)
        for (std::size_t g = 0; g < thresholds.size(); ++g)
            fragments.push_back(std::move(groups[g].byTier[t]));

    bool replay_failed = false;
    for (const std::string &f : fragments) {
        if (f.find("\"status\": \"ok\"") == std::string::npos)
            replay_failed = true;
    }

    std::string doc;
    doc += "{\n";
    doc += "  \"schema\": \"hopp-replay-v1\",\n";
    doc += "  \"trace\": \"" + trace_path + "\",\n";
    doc += "  \"runs\": [\n";
    for (std::size_t i = 0; i < fragments.size(); ++i) {
        doc += fragments[i];
        doc += i + 1 < fragments.size() ? ",\n" : "\n";
    }
    doc += "  ]\n";
    doc += "}\n";

    bool io_ok = true;
    if (out_path.empty())
        std::fputs(doc.c_str(), stdout);
    else
        io_ok &= obs::writeFile(out_path, doc);
    if (!mc_stats_json.empty())
        io_ok &= obs::writeFile(mc_stats_json, mc_stats_doc);
    return (io_ok && !replay_failed) ? 0 : 1;
}
