/**
 * @file
 * Stat-reset completeness pass: every registered stat backed by a
 * counter member must be covered by a reset method of its component.
 *
 * The repo's steady-state benchmarking and multi-phase runs rely on
 * runner::resetAllStats() truly zeroing every counter that the stats
 * report reads. PR 3 found (by hand) that SwapBackend::batchReads_ was
 * registered in the report but missing from SwapBackend::resetStats();
 * this pass turns that bug class into a compile gate.
 *
 * What it does, cross-TU:
 *
 *   1. builds a class database over the whole tree: member variables,
 *      inline and out-of-line method bodies, simple accessors
 *      (`return member_;` / `return member_[...];`), *counter* members
 *      (incremented via ++ or += anywhere in the class's methods), and
 *      members mentioned in reset* methods (a whole-value assignment
 *      `m_ = T{};` marks m_ fully reset);
 *   2. finds StatSet factory functions (a local `stats::StatSet
 *      s("name")`), maps their parameters to classes, resolves each
 *      `s.record("stat", expr)` to a backing member where the
 *      expression is a single accessor call (through `static_cast`,
 *      and through one struct-ref local like `const VmsStats &v =
 *      vms.stats()`), and checks the backing member against the
 *      class's reset coverage;
 *   3. requires each factory that records at least one resolvable
 *      member-backed stat to register a resetter (`s.addResetter`).
 *
 * Rules:
 *
 *   stat-unreset       a registered stat reads a counter member that
 *                      no reset* method of its class resets
 *   stat-no-resetter   a factory records member-backed stats but never
 *                      calls addResetter
 *
 * Deliberate limits (kept honest in --verbose): chained accessors
 * (`h.exec().deduped()`), computed stats (ratios, sizes), and members
 * that are never incremented (gauges, capacities) are skipped, never
 * guessed at.
 */

#pragma once

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/model.hh"

namespace hopp::analysis
{

struct MethodInfo
{
    std::string name;
    std::vector<CodeToken> body; //!< tokens between the braces
    int line = 0;
};

struct ClassInfo
{
    std::string name;
    std::set<std::string> members;
    std::map<std::string, std::string> accessorBacking;
    std::vector<MethodInfo> methods;
    std::set<std::string> counters;
    std::set<std::string> resetMentioned;
};

using ClassDb = std::map<std::string, ClassInfo>;

namespace statreset_detail
{

inline bool
isIdent(const CodeToken &t)
{
    return t.kind == TokKind::Ident;
}

inline bool
isKeywordCall(const std::string &s)
{
    return s == "if" || s == "for" || s == "while" || s == "switch" ||
           s == "return" || s == "sizeof" || s == "catch" ||
           s == "alignof" || s == "decltype" || s == "static_assert";
}

/**
 * From an opening paren of a parameter/argument list, the index one
 * past the matching close; `out_close` receives the close index.
 */
inline bool
parenSpan(const std::vector<CodeToken> &code, std::size_t open,
          std::size_t &out_close)
{
    std::size_t close = matchForward(code, open);
    if (close >= code.size())
        return false;
    out_close = close;
    return true;
}

/**
 * Walk the tokens after a parameter list's `)` looking for a function
 * body. Accepts cv/ref qualifiers, noexcept(...), override/final,
 * trailing return types, and constructor initializer lists. Returns
 * the index of the body '{', or npos when the construct is a
 * declaration / expression instead.
 */
inline std::size_t
findBodyBrace(const std::vector<CodeToken> &code, std::size_t after_close)
{
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    bool in_init_list = false;
    for (std::size_t i = after_close; i < code.size(); ++i) {
        const CodeToken &t = code[i];
        if (t.text == "{")
            return i;
        if (t.text == ";")
            return npos;
        if (t.text == "(") {
            // noexcept(...) or an initializer-list member init.
            std::size_t close;
            if (!parenSpan(code, i, close))
                return npos;
            i = close;
            continue;
        }
        if (t.text == ":") {
            // Either `::` (trailing return type) or a ctor init list.
            if (i + 1 < code.size() && code[i + 1].text == ":") {
                ++i;
                continue;
            }
            in_init_list = true;
            continue;
        }
        if (isIdent(t) || t.text == "&" || t.text == "-" ||
            t.text == ">" || t.text == "<" || t.text == "*" ||
            t.text == "," || in_init_list)
            continue;
        if (t.text == "=")
            return npos; // = default / = delete / = 0
        return npos;
    }
    return npos;
}

/** Simple accessor: body is `return M;` or `return M[...];`. */
inline std::string
simpleAccessorBacking(const std::vector<CodeToken> &body)
{
    if (body.size() < 3 || body[0].text != "return" || !isIdent(body[1]))
        return "";
    if (body[2].text == ";" && body.size() == 3)
        return body[1].text;
    if (body[2].text == "[") {
        std::size_t close = matchForward(body, 2);
        if (close + 1 < body.size() && body[close + 1].text == ";" &&
            close + 2 == body.size())
            return body[1].text;
    }
    return "";
}

/** Slice [begin, end) of a code-token vector. */
inline std::vector<CodeToken>
slice(const std::vector<CodeToken> &code, std::size_t begin,
      std::size_t end)
{
    return {code.begin() + static_cast<std::ptrdiff_t>(begin),
            code.begin() + static_cast<std::ptrdiff_t>(end)};
}

/**
 * Parse one class body ([begin, end) inside the braces) into `info`,
 * registering nested classes in `db` as they appear.
 */
inline void
parseClassBody(const std::vector<CodeToken> &code, std::size_t begin,
               std::size_t end, ClassInfo &info, ClassDb &db);

inline std::size_t
end_scan(const std::vector<CodeToken> &code, std::size_t from)
{
    // Bound the class-head scan (base-clause lists are finite; the
    // rejection tokens end real statements long before this).
    return from + 96 < code.size() ? from + 96 : code.size();
}

/**
 * Try to parse a class/struct definition whose `class`/`struct`
 * keyword sits at `i`. Returns one past the definition on success.
 */
inline std::size_t
parseClassDef(const std::vector<CodeToken> &code, std::size_t i,
              ClassDb &db)
{
    // `class X ... {` with nothing statement-like in between; `enum
    // class` and template parameter lists are rejected by the callers
    // and the scan below.
    if (i + 1 >= code.size() || !isIdent(code[i + 1]))
        return i + 1;
    const std::string &name = code[i + 1].text;
    for (std::size_t j = i + 2; j < end_scan(code, i); ++j) {
        const std::string &t = code[j].text;
        if (t == "{") {
            std::size_t close = matchForward(code, j);
            if (close >= code.size())
                return code.size();
            ClassInfo &info = db[name];
            info.name = name;
            parseClassBody(code, j + 1, close, info, db);
            return close + 1;
        }
        if (t == ";" || t == "(" || t == ")" || t == "=" || t == ">")
            return j; // forward decl / template param / other
        // base clause idents, ':', '<...>', commas all acceptable
    }
    return i + 1;
}

inline void
parseClassBody(const std::vector<CodeToken> &code, std::size_t begin,
               std::size_t end, ClassInfo &info, ClassDb &db)
{
    std::size_t i = begin;
    while (i < end) {
        const CodeToken &t = code[i];

        // Access specifiers.
        if (isIdent(t) &&
            (t.text == "public" || t.text == "private" ||
             t.text == "protected") &&
            i + 1 < end && code[i + 1].text == ":" &&
            (i + 2 >= end || code[i + 2].text != ":")) {
            i += 2;
            continue;
        }

        // Nested class / struct definitions become their own entries.
        if (isIdent(t) && (t.text == "class" || t.text == "struct") &&
            (i == begin || code[i - 1].text != "enum")) {
            std::size_t next = parseClassDef(code, i, db);
            if (next > i) {
                i = next;
                continue;
            }
        }

        // Skip enums, friends, usings, templates wholesale.
        if (isIdent(t) && t.text == "enum") {
            while (i < end && code[i].text != "{" && code[i].text != ";")
                ++i;
            if (i < end && code[i].text == "{")
                i = matchForward(code, i) + 1;
            continue;
        }
        if (isIdent(t) &&
            (t.text == "friend" || t.text == "using" ||
             t.text == "typedef")) {
            while (i < end && code[i].text != ";")
                ++i;
            ++i;
            continue;
        }
        if (isIdent(t) && t.text == "template") {
            // Skip the parameter list `<...>`.
            std::size_t j = i + 1;
            int depth = 0;
            for (; j < end; ++j) {
                if (code[j].text == "<")
                    ++depth;
                else if (code[j].text == ">" && --depth == 0)
                    break;
            }
            i = j + 1;
            continue;
        }

        // Member function or member variable: find the declarator.
        std::size_t j = i;
        bool handled = false;
        for (; j < end; ++j) {
            const CodeToken &u = code[j];
            if (u.text == ";") {
                ++j;
                handled = true;
                break; // nothing declared we care about
            }
            if (isIdent(u) && j + 1 < end) {
                const std::string &nx = code[j + 1].text;
                if (nx == "(" && !isKeywordCall(u.text)) {
                    // Method (or constructor). Find body or decl end.
                    std::size_t close;
                    if (!parenSpan(code, j + 1, close)) {
                        j = end;
                        handled = true;
                        break;
                    }
                    std::size_t body = findBodyBrace(code, close + 1);
                    if (body == static_cast<std::size_t>(-1)) {
                        // Declaration (or `= default`): skip past ';'.
                        std::size_t k = close + 1;
                        while (k < end && code[k].text != ";")
                            ++k;
                        j = k + 1;
                    } else {
                        std::size_t bclose = matchForward(code, body);
                        MethodInfo m;
                        m.name = u.text;
                        m.line = u.line;
                        m.body = slice(code, body + 1,
                                       bclose < end ? bclose : end);
                        std::string backing =
                            simpleAccessorBacking(m.body);
                        if (!backing.empty())
                            info.accessorBacking[m.name] = backing;
                        info.methods.push_back(std::move(m));
                        j = (bclose < end ? bclose : end) + 1;
                    }
                    handled = true;
                    break;
                }
                if (nx == ";" || nx == "=" || nx == "[" || nx == "{") {
                    // Member variable declarator.
                    info.members.insert(u.text);
                    std::size_t k = j + 1;
                    int brace = 0;
                    while (k < end) {
                        if (code[k].text == "{")
                            ++brace;
                        else if (code[k].text == "}")
                            --brace;
                        else if (code[k].text == ";" && brace == 0)
                            break;
                        ++k;
                    }
                    j = k + 1;
                    handled = true;
                    break;
                }
            }
        }
        i = handled ? (j > i ? j : i + 1) : j;
        if (!handled)
            ++i;
    }
}

} // namespace statreset_detail

/** Build the class database over every file of the tree. */
inline ClassDb
buildClassDb(const SourceTree &tree)
{
    using namespace statreset_detail;
    ClassDb db;

    // Phase 1: class/struct bodies (members, inline methods).
    for (const auto &f : tree.files) {
        const auto &code = f.code;
        for (std::size_t i = 0; i < code.size(); ++i) {
            if (!isIdent(code[i]) ||
                (code[i].text != "class" && code[i].text != "struct"))
                continue;
            if (i > 0 && (code[i - 1].text == "enum" ||
                          code[i - 1].text == "<" ||
                          code[i - 1].text == ","))
                continue; // enum class / template parameter
            std::size_t next = parseClassDef(code, i, db);
            if (next > i + 1)
                i = next - 1;
        }
    }

    // Phase 2: out-of-line method definitions `Type Class::method(...)`.
    for (const auto &f : tree.files) {
        const auto &code = f.code;
        for (std::size_t i = 0; i + 4 < code.size(); ++i) {
            if (!isIdent(code[i]) || code[i + 1].text != ":" ||
                code[i + 2].text != ":" || !isIdent(code[i + 3]) ||
                code[i + 4].text != "(")
                continue;
            auto cls = db.find(code[i].text);
            if (cls == db.end())
                continue;
            std::size_t close;
            if (!parenSpan(code, i + 4, close))
                continue;
            std::size_t body = findBodyBrace(code, close + 1);
            if (body == static_cast<std::size_t>(-1))
                continue;
            std::size_t bclose = matchForward(code, body);
            if (bclose >= code.size())
                continue;
            MethodInfo m;
            m.name = code[i + 3].text;
            m.line = code[i + 3].line;
            m.body = slice(code, body + 1, bclose);
            std::string backing = simpleAccessorBacking(m.body);
            if (!backing.empty())
                cls->second.accessorBacking[m.name] = backing;
            cls->second.methods.push_back(std::move(m));
            i = bclose;
        }
    }

    // Phase 3: counters and reset coverage from the method bodies.
    for (auto &[name, cls] : db) {
        for (const auto &m : cls.methods) {
            const auto &b = m.body;
            for (std::size_t i = 0; i < b.size(); ++i) {
                if (!isIdent(b[i]) || !cls.members.count(b[i].text))
                    continue;
                const std::string &mem = b[i].text;
                bool pre_inc = i >= 2 && b[i - 1].text == "+" &&
                               b[i - 2].text == "+";
                // Direct: M += / M ++ ; subscript: M[...] += ;
                // through-struct: M.field += / ++M.field (covered by
                // pre_inc since M directly follows ++).
                std::size_t after = i + 1;
                if (after < b.size() && b[after].text == "[") {
                    std::size_t close = matchForward(b, after);
                    after = close < b.size() ? close + 1 : b.size();
                } else if (after + 1 < b.size() &&
                           b[after].text == "." &&
                           isIdent(b[after + 1])) {
                    after += 2;
                }
                bool post_inc =
                    after + 1 < b.size() && b[after].text == "+" &&
                    b[after + 1].text == "+";
                bool compound =
                    after + 1 < b.size() && b[after].text == "+" &&
                    b[after + 1].text == "=";
                if (pre_inc || post_inc || compound)
                    cls.counters.insert(mem);
            }
        }
        for (const auto &m : cls.methods) {
            if (m.name.rfind("reset", 0) != 0)
                continue;
            for (std::size_t i = 0; i < m.body.size(); ++i)
                if (isIdent(m.body[i]) &&
                    cls.members.count(m.body[i].text))
                    cls.resetMentioned.insert(m.body[i].text);
        }
    }
    return db;
}

/** Counters of the pass, surfaced by --verbose. */
struct StatResetSummary
{
    int factories = 0;
    int recordsResolved = 0;
    int recordsSkipped = 0;
};

namespace statreset_detail
{

/** A resolved backing member: class + member names. */
struct Backing
{
    std::string cls;
    std::string member;
    std::string via; //!< human-readable access path for diagnostics
};

/**
 * Resolve a record value expression to its backing member, if the
 * expression is a single accessor step. `params` maps parameter names
 * to class names; `locals` maps struct-ref locals to (param, accessor).
 */
inline bool
resolveExpr(std::vector<CodeToken> expr, const ClassDb &db,
            const std::map<std::string, std::string> &params,
            const std::map<std::string, std::pair<std::string, std::string>>
                &locals,
            Backing &out)
{
    // Unwrap static_cast<...>( inner ).
    while (expr.size() > 5 && expr[0].text == "static_cast") {
        std::size_t open = 1;
        while (open < expr.size() && expr[open].text != "(")
            ++open;
        if (open >= expr.size())
            return false;
        std::size_t close = matchForward(expr, open);
        if (close + 1 != expr.size())
            return false;
        expr = slice(expr, open + 1, close);
    }
    if (expr.size() < 3 || !isIdent(expr[0]) || expr[1].text != "." ||
        !isIdent(expr[2]))
        return false;
    const std::string &recv = expr[0].text;
    const std::string &mem = expr[2].text;

    // P.method(args...) — args must be the final balanced list.
    if (expr.size() > 3 && expr[3].text == "(") {
        std::size_t close = matchForward(expr, 3);
        if (close + 1 != expr.size())
            return false; // chained or arithmetic continuation
        auto p = params.find(recv);
        if (p == params.end())
            return false; // method on a local: derived
        auto cls = db.find(p->second);
        if (cls == db.end())
            return false;
        auto acc = cls->second.accessorBacking.find(mem);
        if (acc == cls->second.accessorBacking.end())
            return false; // computed accessor: derived stat
        out = {p->second, acc->second, recv + "." + mem + "()"};
        return true;
    }

    // P.field — on a struct-ref local or directly on a parameter.
    if (expr.size() != 3)
        return false;
    auto l = locals.find(recv);
    if (l != locals.end()) {
        auto p = params.find(l->second.first);
        if (p == params.end())
            return false;
        auto cls = db.find(p->second);
        if (cls == db.end())
            return false;
        auto acc = cls->second.accessorBacking.find(l->second.second);
        if (acc == cls->second.accessorBacking.end())
            return false;
        out = {p->second, acc->second,
               l->second.first + "." + l->second.second + "()." + mem};
        return true;
    }
    auto p = params.find(recv);
    if (p != params.end() && db.count(p->second)) {
        out = {p->second, mem, recv + "." + mem};
        return true;
    }
    return false;
}

/** Split a token range into top-level comma-separated chunks. */
inline std::vector<std::vector<CodeToken>>
splitTopLevel(const std::vector<CodeToken> &code, std::size_t begin,
              std::size_t end)
{
    std::vector<std::vector<CodeToken>> out(1);
    int paren = 0, brace = 0, bracket = 0;
    for (std::size_t i = begin; i < end; ++i) {
        const std::string &t = code[i].text;
        if (t == "(")
            ++paren;
        else if (t == ")")
            --paren;
        else if (t == "{")
            ++brace;
        else if (t == "}")
            --brace;
        else if (t == "[")
            ++bracket;
        else if (t == "]")
            --bracket;
        if (t == "," && paren == 0 && brace == 0 && bracket == 0) {
            out.emplace_back();
            continue;
        }
        out.back().push_back(code[i]);
    }
    return out;
}

} // namespace statreset_detail

/**
 * Run the stat-reset pass: find StatSet factories, resolve records,
 * check reset coverage.
 */
inline void
statResetPass(SourceTree &tree, const ClassDb &db,
              StatResetSummary &summary)
{
    using namespace statreset_detail;

    for (auto &f : tree.files) {
        const auto &code = f.code;
        // Find function definitions: Ident '(' ... ')' ... '{' with a
        // type token directly before the name.
        for (std::size_t i = 1; i + 1 < code.size(); ++i) {
            if (!isIdent(code[i]) || code[i + 1].text != "(" ||
                isKeywordCall(code[i].text))
                continue;
            const CodeToken &prev = code[i - 1];
            if (!(isIdent(prev) || prev.text == ">" || prev.text == "*" ||
                  prev.text == "&"))
                continue;
            if (isIdent(prev) && isKeywordCall(prev.text))
                continue;
            std::size_t close;
            if (!parenSpan(code, i + 1, close))
                continue;
            std::size_t body = findBodyBrace(code, close + 1);
            if (body == static_cast<std::size_t>(-1))
                continue;
            std::size_t bclose = matchForward(code, body);
            if (bclose >= code.size())
                continue;

            // Parameters: name = last ident of each chunk, class = the
            // ident directly before it (skipping & and *).
            std::map<std::string, std::string> params;
            for (const auto &chunk :
                 splitTopLevel(code, i + 2, close)) {
                if (chunk.size() < 2)
                    continue;
                std::size_t n = chunk.size();
                if (!isIdent(chunk[n - 1]))
                    continue;
                std::size_t ty = n - 1;
                while (ty > 0 && (chunk[ty - 1].text == "&" ||
                                  chunk[ty - 1].text == "*"))
                    --ty;
                if (ty == 0 || !isIdent(chunk[ty - 1]))
                    continue;
                params[chunk[n - 1].text] = chunk[ty - 1].text;
            }

            // The factory anchor: a local `StatSet <var>(...)`.
            std::string set_var, set_name;
            int set_line = 0;
            for (std::size_t k = body + 1; k + 2 < bclose; ++k) {
                if (isIdent(code[k]) && code[k].text == "StatSet" &&
                    isIdent(code[k + 1]) && code[k + 2].text == "(") {
                    set_var = code[k + 1].text;
                    set_line = code[k + 1].line;
                    if (k + 3 < bclose &&
                        code[k + 3].kind == TokKind::String) {
                        const std::string &s = code[k + 3].text;
                        if (s.size() >= 2)
                            set_name = s.substr(1, s.size() - 2);
                    }
                    break;
                }
            }
            if (set_var.empty()) {
                i = body; // not a factory; keep scanning inside
                continue;
            }
            ++summary.factories;
            if (set_name.empty())
                set_name = code[i].text; // fall back to function name

            // Struct-ref locals: `<v> = <param> . <accessor> ( )`.
            std::map<std::string, std::pair<std::string, std::string>>
                locals;
            for (std::size_t k = body + 1; k + 6 < bclose; ++k) {
                if (isIdent(code[k]) && code[k + 1].text == "=" &&
                    isIdent(code[k + 2]) && code[k + 3].text == "." &&
                    isIdent(code[k + 4]) && code[k + 5].text == "(" &&
                    code[k + 6].text == ")" &&
                    params.count(code[k + 2].text)) {
                    locals[code[k].text] = {code[k + 2].text,
                                            code[k + 4].text};
                }
            }

            // Records and resetter registration.
            bool has_resetter = false;
            int resolved_here = 0;
            for (std::size_t k = body + 1; k + 2 < bclose; ++k) {
                if (!isIdent(code[k]) || code[k].text != set_var ||
                    code[k + 1].text != ".")
                    continue;
                const std::string &call = code[k + 2].text;
                if (call == "addResetter") {
                    has_resetter = true;
                    continue;
                }
                if (call != "record" || k + 3 >= bclose ||
                    code[k + 3].text != "(")
                    continue;
                std::size_t rclose = matchForward(code, k + 3);
                if (rclose >= bclose)
                    continue;
                auto args = splitTopLevel(code, k + 4, rclose);
                if (args.size() < 2 || args[0].size() != 1 ||
                    args[0][0].kind != TokKind::String) {
                    ++summary.recordsSkipped;
                    continue;
                }
                const std::string &quoted = args[0][0].text;
                std::string stat =
                    quoted.size() >= 2
                        ? quoted.substr(1, quoted.size() - 2)
                        : quoted;
                Backing backing;
                if (!resolveExpr(args[1], db, params, locals,
                                 backing)) {
                    ++summary.recordsSkipped;
                    continue;
                }
                ++summary.recordsResolved;
                ++resolved_here;
                const ClassInfo &cls = db.at(backing.cls);
                bool counter = cls.counters.count(backing.member) != 0;
                bool reset =
                    cls.resetMentioned.count(backing.member) != 0;
                if (counter && !reset) {
                    tree.report(
                        f, code[k].line, "stat-unreset",
                        "stat '" + set_name + "." + stat + "' reads " +
                            backing.cls + "::" + backing.member +
                            " (via " + backing.via +
                            "), a counter no reset method of " +
                            backing.cls +
                            " ever resets — resetAllStats() would "
                            "keep a stale value (the batchReads_ bug "
                            "class)");
                }
            }
            if (resolved_here > 0 && !has_resetter) {
                tree.report(
                    f, set_line, "stat-no-resetter",
                    "StatSet '" + set_name +
                        "' records member-backed stats but never "
                        "calls addResetter; resetAllStats() would "
                        "skip this component entirely");
            }
            i = bclose; // continue after this function
        }
    }
}

} // namespace hopp::analysis
