/**
 * @file
 * Stat-reset completeness pass: every registered stat backed by a
 * counter member must be covered by a reset method of its component.
 *
 * The repo's steady-state benchmarking and multi-phase runs rely on
 * runner::resetAllStats() truly zeroing every counter that the stats
 * report reads. PR 3 found (by hand) that SwapBackend::batchReads_ was
 * registered in the report but missing from SwapBackend::resetStats();
 * this pass turns that bug class into a compile gate.
 *
 * The cross-TU class database (members, method bodies, accessors,
 * counters, reset coverage) now lives in the symbol index
 * (analysis/symbols.hh), shared with the call graph. On top of it this
 * pass:
 *
 *   1. finds StatSet factory functions (a local `stats::StatSet
 *      s("name")`), maps their parameters to classes, resolves each
 *      `s.record("stat", expr)` to a backing member where the
 *      expression is a single accessor call (through `static_cast`,
 *      and through one struct-ref local like `const VmsStats &v =
 *      vms.stats()`), and checks the backing member against the
 *      class's reset coverage;
 *   2. requires each factory that records at least one resolvable
 *      member-backed stat to register a resetter (`s.addResetter`).
 *
 * Rules:
 *
 *   stat-unreset       a registered stat reads a counter member that
 *                      no reset* method of its class resets
 *   stat-no-resetter   a factory records member-backed stats but never
 *                      calls addResetter
 *
 * Deliberate limits (kept honest in --verbose): chained accessors
 * (`h.exec().deduped()`), computed stats (ratios, sizes), and members
 * that are never incremented (gauges, capacities) are skipped, never
 * guessed at.
 */

#pragma once

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/model.hh"
#include "analysis/symbols.hh"

namespace hopp::analysis
{

/** Counters of the pass, surfaced by --verbose. */
struct StatResetSummary
{
    int factories = 0;
    int recordsResolved = 0;
    int recordsSkipped = 0;
};

namespace statreset_detail
{

using namespace symbol_detail;

/** A resolved backing member: class + member names. */
struct Backing
{
    std::string cls;
    std::string member;
    std::string via; //!< human-readable access path for diagnostics
};

/**
 * Resolve a record value expression to its backing member, if the
 * expression is a single accessor step. `params` maps parameter names
 * to class names; `locals` maps struct-ref locals to (param, accessor).
 */
inline bool
resolveExpr(std::vector<CodeToken> expr, const ClassDb &db,
            const std::map<std::string, std::string> &params,
            const std::map<std::string, std::pair<std::string, std::string>>
                &locals,
            Backing &out)
{
    // Unwrap static_cast<...>( inner ).
    while (expr.size() > 5 && expr[0].text == "static_cast") {
        std::size_t open = 1;
        while (open < expr.size() && expr[open].text != "(")
            ++open;
        if (open >= expr.size())
            return false;
        std::size_t close = matchForward(expr, open);
        if (close + 1 != expr.size())
            return false;
        expr = slice(expr, open + 1, close);
    }
    if (expr.size() < 3 || !isIdent(expr[0]) || expr[1].text != "." ||
        !isIdent(expr[2]))
        return false;
    const std::string &recv = expr[0].text;
    const std::string &mem = expr[2].text;

    // P.method(args...) — args must be the final balanced list.
    if (expr.size() > 3 && expr[3].text == "(") {
        std::size_t close = matchForward(expr, 3);
        if (close + 1 != expr.size())
            return false; // chained or arithmetic continuation
        auto p = params.find(recv);
        if (p == params.end())
            return false; // method on a local: derived
        auto cls = db.find(p->second);
        if (cls == db.end())
            return false;
        auto acc = cls->second.accessorBacking.find(mem);
        if (acc == cls->second.accessorBacking.end())
            return false; // computed accessor: derived stat
        out = {p->second, acc->second, recv + "." + mem + "()"};
        return true;
    }

    // P.field — on a struct-ref local or directly on a parameter.
    if (expr.size() != 3)
        return false;
    auto l = locals.find(recv);
    if (l != locals.end()) {
        auto p = params.find(l->second.first);
        if (p == params.end())
            return false;
        auto cls = db.find(p->second);
        if (cls == db.end())
            return false;
        auto acc = cls->second.accessorBacking.find(l->second.second);
        if (acc == cls->second.accessorBacking.end())
            return false;
        out = {p->second, acc->second,
               l->second.first + "." + l->second.second + "()." + mem};
        return true;
    }
    auto p = params.find(recv);
    if (p != params.end() && db.count(p->second)) {
        out = {p->second, mem, recv + "." + mem};
        return true;
    }
    return false;
}

} // namespace statreset_detail

/**
 * Run the stat-reset pass: find StatSet factories, resolve records,
 * check reset coverage.
 */
inline void
statResetPass(SourceTree &tree, const ClassDb &db,
              StatResetSummary &summary)
{
    using namespace statreset_detail;

    for (auto &f : tree.files) {
        const auto &code = f.code;
        // Find function definitions: Ident '(' ... ')' ... '{' with a
        // type token directly before the name.
        for (std::size_t i = 1; i + 1 < code.size(); ++i) {
            if (!isIdent(code[i]) || code[i + 1].text != "(" ||
                isKeywordCall(code[i].text))
                continue;
            const CodeToken &prev = code[i - 1];
            if (!(isIdent(prev) || prev.text == ">" || prev.text == "*" ||
                  prev.text == "&"))
                continue;
            if (isIdent(prev) && isKeywordCall(prev.text))
                continue;
            std::size_t close;
            if (!parenSpan(code, i + 1, close))
                continue;
            std::size_t body = findBodyBrace(code, close + 1);
            if (body == static_cast<std::size_t>(-1))
                continue;
            std::size_t bclose = matchForward(code, body);
            if (bclose >= code.size())
                continue;

            // Parameters: name = last ident of each chunk, class = the
            // ident directly before it (skipping & and *).
            std::map<std::string, std::string> params;
            for (const auto &chunk :
                 splitTopLevel(code, i + 2, close)) {
                if (chunk.size() < 2)
                    continue;
                std::size_t n = chunk.size();
                if (!isIdent(chunk[n - 1]))
                    continue;
                std::size_t ty = n - 1;
                while (ty > 0 && (chunk[ty - 1].text == "&" ||
                                  chunk[ty - 1].text == "*"))
                    --ty;
                if (ty == 0 || !isIdent(chunk[ty - 1]))
                    continue;
                params[chunk[n - 1].text] = chunk[ty - 1].text;
            }

            // The factory anchor: a local `StatSet <var>(...)`.
            std::string set_var, set_name;
            int set_line = 0;
            for (std::size_t k = body + 1; k + 2 < bclose; ++k) {
                if (isIdent(code[k]) && code[k].text == "StatSet" &&
                    isIdent(code[k + 1]) && code[k + 2].text == "(") {
                    set_var = code[k + 1].text;
                    set_line = code[k + 1].line;
                    if (k + 3 < bclose &&
                        code[k + 3].kind == TokKind::String) {
                        const std::string &s = code[k + 3].text;
                        if (s.size() >= 2)
                            set_name = s.substr(1, s.size() - 2);
                    }
                    break;
                }
            }
            if (set_var.empty()) {
                i = body; // not a factory; keep scanning inside
                continue;
            }
            ++summary.factories;
            if (set_name.empty())
                set_name = code[i].text; // fall back to function name

            // Struct-ref locals: `<v> = <param> . <accessor> ( )`.
            std::map<std::string, std::pair<std::string, std::string>>
                locals;
            for (std::size_t k = body + 1; k + 6 < bclose; ++k) {
                if (isIdent(code[k]) && code[k + 1].text == "=" &&
                    isIdent(code[k + 2]) && code[k + 3].text == "." &&
                    isIdent(code[k + 4]) && code[k + 5].text == "(" &&
                    code[k + 6].text == ")" &&
                    params.count(code[k + 2].text)) {
                    locals[code[k].text] = {code[k + 2].text,
                                            code[k + 4].text};
                }
            }

            // Records and resetter registration.
            bool has_resetter = false;
            int resolved_here = 0;
            for (std::size_t k = body + 1; k + 2 < bclose; ++k) {
                if (!isIdent(code[k]) || code[k].text != set_var ||
                    code[k + 1].text != ".")
                    continue;
                const std::string &call = code[k + 2].text;
                if (call == "addResetter") {
                    has_resetter = true;
                    continue;
                }
                if (call != "record" || k + 3 >= bclose ||
                    code[k + 3].text != "(")
                    continue;
                std::size_t rclose = matchForward(code, k + 3);
                if (rclose >= bclose)
                    continue;
                auto args = splitTopLevel(code, k + 4, rclose);
                if (args.size() < 2 || args[0].size() != 1 ||
                    args[0][0].kind != TokKind::String) {
                    ++summary.recordsSkipped;
                    continue;
                }
                const std::string &quoted = args[0][0].text;
                std::string stat =
                    quoted.size() >= 2
                        ? quoted.substr(1, quoted.size() - 2)
                        : quoted;
                Backing backing;
                if (!resolveExpr(args[1], db, params, locals,
                                 backing)) {
                    ++summary.recordsSkipped;
                    continue;
                }
                ++summary.recordsResolved;
                ++resolved_here;
                const ClassInfo &cls = db.at(backing.cls);
                bool counter = cls.counters.count(backing.member) != 0;
                bool reset =
                    cls.resetMentioned.count(backing.member) != 0;
                if (counter && !reset) {
                    tree.report(
                        f, code[k].line, "stat-unreset",
                        "stat '" + set_name + "." + stat + "' reads " +
                            backing.cls + "::" + backing.member +
                            " (via " + backing.via +
                            "), a counter no reset method of " +
                            backing.cls +
                            " ever resets — resetAllStats() would "
                            "keep a stale value (the batchReads_ bug "
                            "class)");
                }
            }
            if (resolved_here > 0 && !has_resetter) {
                tree.report(
                    f, set_line, "stat-no-resetter",
                    "StatSet '" + set_name +
                        "' records member-backed stats but never "
                        "calls addResetter; resetAllStats() would "
                        "skip this component entirely");
            }
            i = bclose; // continue after this function
        }
    }
}

} // namespace hopp::analysis
