/**
 * @file
 * Shared C++ token lexer for the project's static-analysis tools.
 *
 * hopp_lint and hopp_analyze both need to reason about source text
 * without being fooled by comments, string literals, raw strings, or
 * preprocessor line continuations. Line-regex scanning cannot tell
 * `allow(` inside a string from `allow(` in a directive comment, or
 * `//` inside a raw string from a comment. This lexer produces a
 * full-fidelity token stream instead:
 *
 *   - every byte of the input is covered by exactly one token, so
 *     concatenating token texts reproduces the file byte-for-byte
 *     (the reassembly property the lexer tests verify);
 *   - comments, string/char literals (including encoding prefixes and
 *     raw strings with arbitrary delimiters), preprocessor directives
 *     (including backslash line continuations), identifiers, numbers
 *     (pp-number rules: digit separators, exponent signs), and
 *     single-character punctuators are distinct token kinds;
 *   - each token records the 1-based line its first character sits on.
 *
 * The lexer is deliberately a *lexer*, not a parser: rules built on it
 * (see token_stream.hh) match token sequences, which is exactly the
 * granularity the project's determinism and architecture rules need.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hopp::analysis
{

enum class TokKind
{
    Whitespace,  //!< spaces, tabs, newlines, carriage returns
    Comment,     //!< // line or slash-star block comment, markers included
    String,      //!< "..." or raw R"delim(...)delim", prefix + quotes included
    CharLit,     //!< '...' character literal, quotes included
    PpDirective, //!< '#' line incl. backslash continuations
    Ident,       //!< identifier or keyword
    Number,      //!< pp-number (integer / float / separators / exponents)
    Punct,       //!< any other single character
};

struct Token
{
    TokKind kind;
    std::string text; //!< exact source spelling
    int line;         //!< 1-based line of the first character
};

namespace detail
{

inline bool
identStart(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

inline bool
identChar(char c)
{
    return identStart(c) || (c >= '0' && c <= '9');
}

inline bool
digit(char c)
{
    return c >= '0' && c <= '9';
}

/**
 * Length of a string-literal encoding prefix (u8, u, U, L) at `i`, or
 * 0 when none. Only meaningful when the character after the prefix is
 * a quote or R".
 */
inline std::size_t
encodingPrefixLen(const std::string &s, std::size_t i)
{
    if (s.compare(i, 2, "u8") == 0)
        return 2;
    if (s[i] == 'u' || s[i] == 'U' || s[i] == 'L')
        return 1;
    return 0;
}

} // namespace detail

/**
 * Lex `src` into a full-coverage token vector. Never fails: malformed
 * input (unterminated literal or comment) yields a token running to
 * end of input, which keeps the reassembly property intact.
 */
inline std::vector<Token>
lex(const std::string &src)
{
    using namespace detail;

    std::vector<Token> out;
    std::size_t i = 0;
    int line = 1;
    bool line_start = true; // only whitespace seen since last newline

    auto countLines = [](const std::string &text) {
        int n = 0;
        for (char c : text)
            if (c == '\n')
                ++n;
        return n;
    };
    auto push = [&](TokKind kind, std::size_t begin, std::size_t end) {
        Token t{kind, src.substr(begin, end - begin), line};
        line += countLines(t.text);
        if (kind != TokKind::Whitespace)
            line_start = false;
        out.push_back(std::move(t));
    };

    while (i < src.size()) {
        char c = src[i];

        // Whitespace runs (newlines reset the line-start flag).
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            std::size_t j = i;
            bool saw_nl = false;
            while (j < src.size() &&
                   (src[j] == ' ' || src[j] == '\t' || src[j] == '\r' ||
                    src[j] == '\n')) {
                saw_nl = saw_nl || src[j] == '\n';
                ++j;
            }
            push(TokKind::Whitespace, i, j);
            if (saw_nl)
                line_start = true;
            i = j;
            continue;
        }

        // Comments.
        if (c == '/' && i + 1 < src.size()) {
            if (src[i + 1] == '/') {
                std::size_t j = src.find('\n', i);
                if (j == std::string::npos)
                    j = src.size();
                push(TokKind::Comment, i, j);
                i = j;
                continue;
            }
            if (src[i + 1] == '*') {
                std::size_t j = src.find("*/", i + 2);
                j = j == std::string::npos ? src.size() : j + 2;
                push(TokKind::Comment, i, j);
                i = j;
                continue;
            }
        }

        // Preprocessor directive: '#' first on its line, swallowing
        // backslash-newline continuations. Comments inside the
        // directive ride along in the token text; token_stream.hh's
        // ppText() strips them before rules look at the directive.
        if (c == '#' && line_start) {
            std::size_t j = i;
            while (j < src.size()) {
                if (src[j] == '\n') {
                    // A continuation if the last non-CR char before the
                    // newline is a backslash.
                    std::size_t k = j;
                    while (k > i && src[k - 1] == '\r')
                        --k;
                    if (k > i && src[k - 1] == '\\') {
                        ++j;
                        continue;
                    }
                    break;
                }
                // A trailing // comment ends the directive; it lexes
                // as its own Comment token so suppression / expect
                // directives on include lines are still seen.
                if (src[j] == '/' && j + 1 < src.size() &&
                    src[j + 1] == '/')
                    break;
                // A block comment inside the directive may span lines.
                if (src[j] == '/' && j + 1 < src.size() &&
                    src[j + 1] == '*') {
                    std::size_t close = src.find("*/", j + 2);
                    j = close == std::string::npos ? src.size()
                                                   : close + 2;
                    continue;
                }
                ++j;
            }
            push(TokKind::PpDirective, i, j);
            i = j;
            continue;
        }

        // String and character literals, with optional encoding prefix
        // and raw-string syntax. Checked before identifiers so u8"x",
        // LR"(y)" and friends lex as one literal token.
        {
            std::size_t p = identStart(c) ? encodingPrefixLen(src, i) : 0;
            std::size_t q = i + p;
            bool raw = q < src.size() && src[q] == 'R' &&
                       q + 1 < src.size() && src[q + 1] == '"';
            if (raw) {
                // R"delim( ... )delim"
                std::size_t open = q + 2;
                std::size_t paren = src.find('(', open);
                if (paren != std::string::npos) {
                    std::string close =
                        ")" + src.substr(open, paren - open) + "\"";
                    std::size_t end = src.find(close, paren + 1);
                    end = end == std::string::npos ? src.size()
                                                   : end + close.size();
                    push(TokKind::String, i, end);
                    i = end;
                    continue;
                }
            }
            if (q < src.size() && (src[q] == '"' || src[q] == '\'') &&
                (p == 0 || !raw)) {
                // Guard: a bare identifier char followed by a quote only
                // counts when the prefix is a real encoding prefix; the
                // encodingPrefixLen check above already ensured that.
                char quote = src[q];
                bool is_literal = p > 0 || !identStart(c);
                // Digit separators (1'000) are consumed by the number
                // lexer below, so a quote directly after a digit never
                // reaches this point.
                if (is_literal || src[i] == quote) {
                    std::size_t j = q + 1;
                    while (j < src.size() && src[j] != quote &&
                           src[j] != '\n') {
                        if (src[j] == '\\' && j + 1 < src.size())
                            ++j;
                        ++j;
                    }
                    if (j < src.size() && src[j] == quote)
                        ++j;
                    push(quote == '"' ? TokKind::String : TokKind::CharLit,
                         i, j);
                    i = j;
                    continue;
                }
            }
        }

        // Identifiers.
        if (identStart(c)) {
            std::size_t j = i + 1;
            while (j < src.size() && identChar(src[j]))
                ++j;
            push(TokKind::Ident, i, j);
            i = j;
            continue;
        }

        // Numbers (pp-number: digits, idents, '.', digit separators,
        // and signs directly after an exponent character).
        if (digit(c) || (c == '.' && i + 1 < src.size() &&
                         digit(src[i + 1]))) {
            std::size_t j = i + 1;
            while (j < src.size()) {
                char d = src[j];
                if (identChar(d) || d == '.') {
                    ++j;
                } else if (d == '\'' && j + 1 < src.size() &&
                           identChar(src[j + 1])) {
                    j += 2; // digit separator
                } else if ((d == '+' || d == '-') &&
                           (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                            src[j - 1] == 'p' || src[j - 1] == 'P')) {
                    ++j;
                } else {
                    break;
                }
            }
            push(TokKind::Number, i, j);
            i = j;
            continue;
        }

        // Everything else: one punctuator character.
        push(TokKind::Punct, i, i + 1);
        ++i;
    }
    return out;
}

/** Reassemble a token vector back into source text. */
inline std::string
reassemble(const std::vector<Token> &toks)
{
    std::string out;
    for (const auto &t : toks)
        out += t.text;
    return out;
}

} // namespace hopp::analysis
