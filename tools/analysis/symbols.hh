/**
 * @file
 * Cross-TU symbol index: the whole tree's namespaces, classes, free
 * functions and out-of-line method definitions, resolved into one
 * queryable database.
 *
 * This is the semantic layer between the shared lexer (lexer.hh /
 * token_stream.hh) and the passes that reason about *behaviour* rather
 * than text. The stat-reset pass (stat_reset.hh) consumes the class
 * database (members, accessors, counters, reset coverage); the call
 * graph (call_graph.hh) additionally needs member/parameter/local
 * *types* to resolve `recv.method()` call sites, overload sets keyed
 * by arity, and declaration-vs-definition knowledge so a call into a
 * bodiless method (pure virtual, external) is honestly accounted as
 * unresolved instead of silently dropped.
 *
 * What the index records, tree-wide:
 *
 *   - every class/struct definition (including nested ones): member
 *     variables with their base type and — for templated containers —
 *     the first template-argument type (`std::vector<Cgroup>` records
 *     base "vector", element "Cgroup"); methods with body tokens,
 *     declared arity, and the file/line they are defined in; method
 *     declarations without a body in the tree (kept separate, so the
 *     call graph can tell "resolved" from "declared but invisible");
 *     simple accessors (`return m_;`), counter members and reset
 *     coverage exactly as the stat-reset pass always used them;
 *   - out-of-line definitions `Type Class::method(...)` matched back
 *     to their class (the declaration/definition join);
 *   - free function definitions with enclosing namespace, parameters
 *     and arity, indexed by name (overload sets: all definitions of a
 *     name, narrowed by argument count at resolution time);
 *   - `using X = ...;` type aliases, so `Tick(0)`-style cast syntax is
 *     not mistaken for an unresolvable call.
 *
 * Parsing is token-pattern based (no preprocessor, no templates
 * instantiated); every heuristic here errs toward *recording less and
 * counting the gap* — the honest-conservatism contract the hotpath
 * pass documents in DESIGN.md §12.
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/model.hh"

namespace hopp::analysis
{

/** One method body (inline or out-of-line) of a class. */
struct MethodInfo
{
    std::string name;
    std::vector<CodeToken> body; //!< tokens between the braces
    int line = 0;
    int arity = 0;               //!< declared parameter count
    std::string file;            //!< tree-relative defining file
    /// (name, base type) per parameter, in declaration order.
    std::vector<std::pair<std::string, std::string>> params;
};

/** One class/struct definition aggregated across the tree. */
struct ClassInfo
{
    std::string name;
    std::set<std::string> members;
    /// member -> declared base type ("Llc", "vector", "Tracer"...).
    std::map<std::string, std::string> memberTypes;
    /// member -> first template-argument type for templated members.
    std::map<std::string, std::string> memberElemTypes;
    std::map<std::string, std::string> accessorBacking;
    std::vector<MethodInfo> methods;
    /// methods declared in the class body with no definition anywhere
    /// in the tree (pure virtual, or defined outside the analyzed
    /// roots) — calls to these are *unresolved*, never guessed at.
    std::set<std::string> methodDecls;
    std::set<std::string> counters;
    std::set<std::string> resetMentioned;

    bool
    hasMethodBody(const std::string &method) const
    {
        for (const auto &m : methods)
            if (m.name == method)
                return true;
        return false;
    }
};

using ClassDb = std::map<std::string, ClassInfo>;

namespace symbol_detail
{

inline bool
isIdent(const CodeToken &t)
{
    return t.kind == TokKind::Ident;
}

inline bool
isKeywordCall(const std::string &s)
{
    return s == "if" || s == "for" || s == "while" || s == "switch" ||
           s == "return" || s == "sizeof" || s == "catch" ||
           s == "alignof" || s == "decltype" || s == "static_assert";
}

/**
 * From an opening paren of a parameter/argument list, the index one
 * past the matching close; `out_close` receives the close index.
 */
inline bool
parenSpan(const std::vector<CodeToken> &code, std::size_t open,
          std::size_t &out_close)
{
    std::size_t close = matchForward(code, open);
    if (close >= code.size())
        return false;
    out_close = close;
    return true;
}

/**
 * Walk the tokens after a parameter list's `)` looking for a function
 * body. Accepts cv/ref qualifiers, noexcept(...), override/final,
 * trailing return types, and constructor initializer lists. Returns
 * the index of the body '{', or npos when the construct is a
 * declaration / expression instead.
 */
inline std::size_t
findBodyBrace(const std::vector<CodeToken> &code, std::size_t after_close)
{
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    bool in_init_list = false;
    for (std::size_t i = after_close; i < code.size(); ++i) {
        const CodeToken &t = code[i];
        if (t.text == "{")
            return i;
        if (t.text == ";")
            return npos;
        if (t.text == "(") {
            // noexcept(...) or an initializer-list member init.
            std::size_t close;
            if (!parenSpan(code, i, close))
                return npos;
            i = close;
            continue;
        }
        if (t.text == ":") {
            // Either `::` (trailing return type) or a ctor init list.
            if (i + 1 < code.size() && code[i + 1].text == ":") {
                ++i;
                continue;
            }
            in_init_list = true;
            continue;
        }
        if (isIdent(t) || t.text == "&" || t.text == "-" ||
            t.text == ">" || t.text == "<" || t.text == "*" ||
            t.text == "," || in_init_list)
            continue;
        if (t.text == "=")
            return npos; // = default / = delete / = 0
        return npos;
    }
    return npos;
}

/** Simple accessor: body is `return M;` or `return M[...];`. */
inline std::string
simpleAccessorBacking(const std::vector<CodeToken> &body)
{
    if (body.size() < 3 || body[0].text != "return" || !isIdent(body[1]))
        return "";
    if (body[2].text == ";" && body.size() == 3)
        return body[1].text;
    if (body[2].text == "[") {
        std::size_t close = matchForward(body, 2);
        if (close + 1 < body.size() && body[close + 1].text == ";" &&
            close + 2 == body.size())
            return body[1].text;
    }
    return "";
}

/** Slice [begin, end) of a code-token vector. */
inline std::vector<CodeToken>
slice(const std::vector<CodeToken> &code, std::size_t begin,
      std::size_t end)
{
    return {code.begin() + static_cast<std::ptrdiff_t>(begin),
            code.begin() + static_cast<std::ptrdiff_t>(end)};
}

/** Split a token range into top-level comma-separated chunks. */
inline std::vector<std::vector<CodeToken>>
splitTopLevel(const std::vector<CodeToken> &code, std::size_t begin,
              std::size_t end)
{
    std::vector<std::vector<CodeToken>> out(1);
    int paren = 0, brace = 0, bracket = 0, angle = 0;
    for (std::size_t i = begin; i < end; ++i) {
        const std::string &t = code[i].text;
        if (t == "(")
            ++paren;
        else if (t == ")")
            --paren;
        else if (t == "{")
            ++brace;
        else if (t == "}")
            --brace;
        else if (t == "[")
            ++bracket;
        else if (t == "]")
            --bracket;
        else if (t == "<")
            ++angle;
        else if (t == ">" && angle > 0)
            --angle;
        if (t == "," && paren == 0 && brace == 0 && bracket == 0 &&
            angle == 0) {
            out.emplace_back();
            continue;
        }
        out.back().push_back(code[i]);
    }
    return out;
}

/** Number of parameters/arguments inside a `(`...`)` span. */
inline int
countArgs(const std::vector<CodeToken> &code, std::size_t open,
          std::size_t close)
{
    auto chunks = splitTopLevel(code, open + 1, close);
    if (chunks.size() == 1 && chunks[0].empty())
        return 0;
    return static_cast<int>(chunks.size());
}

/** Identifiers that are cv/storage noise, never a type name. */
inline bool
isDeclNoise(const std::string &s)
{
    return s == "const" || s == "volatile" || s == "static" ||
           s == "mutable" || s == "constexpr" || s == "inline" ||
           s == "typename" || s == "struct" || s == "class" ||
           s == "explicit" || s == "virtual";
}

/**
 * Declared type of the declarator ending just before `declarator`,
 * scanning backwards no further than `stmt_begin`. Returns the base
 * type identifier ("Llc", "vector", "uint64_t", ...) and fills
 * `out_elem` with the first template-argument type when the base is
 * templated ("" otherwise). Returns "" when no type is recognizable.
 */
inline std::string
declBaseType(const std::vector<CodeToken> &code, std::size_t stmt_begin,
             std::size_t declarator, std::string &out_elem)
{
    out_elem.clear();
    std::size_t k = declarator;
    while (k > stmt_begin) {
        const CodeToken &t = code[k - 1];
        if (t.text == "&" || t.text == "*" ||
            (isIdent(t) && isDeclNoise(t.text))) {
            --k;
            continue;
        }
        break;
    }
    if (k == stmt_begin)
        return "";
    const CodeToken &t = code[k - 1];
    if (isIdent(t))
        return t.text;
    if (t.text == ">") {
        // Templated type: find the matching '<' backwards, take the
        // ident before it as the base and the first ident inside the
        // angle brackets (skipping std:: and noise) as the element.
        int depth = 0;
        std::size_t j = k - 1;
        for (;; --j) {
            if (code[j].text == ">")
                ++depth;
            else if (code[j].text == "<" && --depth == 0)
                break;
            if (j == stmt_begin)
                return "";
        }
        if (j == stmt_begin || !isIdent(code[j - 1]))
            return "";
        for (std::size_t e = j + 1; e + 1 < k; ++e) {
            if (isIdent(code[e]) && !isDeclNoise(code[e].text) &&
                code[e].text != "std" &&
                (e + 1 >= k - 1 || code[e + 1].text != ":")) {
                out_elem = code[e].text;
                break;
            }
        }
        return code[j - 1].text;
    }
    return "";
}

/**
 * Parameter list of a function: (name, base type) per declared
 * parameter, in order. Unrecognizable chunks contribute ("", "") so
 * the arity still counts them.
 */
inline std::vector<std::pair<std::string, std::string>>
parseParams(const std::vector<CodeToken> &code, std::size_t open,
            std::size_t close)
{
    std::vector<std::pair<std::string, std::string>> params;
    if (close <= open + 1)
        return params;
    for (const auto &chunk : splitTopLevel(code, open + 1, close)) {
        if (chunk.empty())
            continue;
        std::size_t n = chunk.size();
        // Default argument: the declarator sits before the '='.
        std::size_t end = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (chunk[i].text == "=") {
                end = i;
                break;
            }
        }
        if (end == 0)
            continue;
        if (!isIdent(chunk[end - 1])) {
            params.emplace_back("", "");
            continue;
        }
        std::string elem;
        std::string base = declBaseType(chunk, 0, end - 1, elem);
        if (base.empty()) {
            // Unnamed parameter: the trailing ident was the type.
            params.emplace_back("", chunk[end - 1].text);
            continue;
        }
        params.emplace_back(chunk[end - 1].text, base);
    }
    return params;
}

/**
 * Name of an operator function whose `operator` keyword sits at `i`,
 * and the index of its parameter-list '('. Handles `operator()`,
 * symbol operators (`operator<`, `operator+=`, `operator[]`), and
 * conversion operators (`operator bool`). Returns "" when the shape is
 * not recognizable (the caller then skips one token).
 */
inline std::string
operatorName(const std::vector<CodeToken> &code, std::size_t i,
             std::size_t &out_open)
{
    std::string name = "operator";
    std::size_t j = i + 1;
    // operator() : the first '(' pair is part of the name.
    if (j < code.size() && code[j].text == "(") {
        std::size_t close = matchForward(code, j);
        if (close == j + 1 && close + 1 < code.size() &&
            code[close + 1].text == "(") {
            out_open = close + 1;
            return "operator()";
        }
        out_open = j;
        return ""; // `operator (` with args: not a definition shape
    }
    for (; j < code.size() && j < i + 5; ++j) {
        if (code[j].text == "(") {
            out_open = j;
            return name.size() > 8 ? name : "";
        }
        if (code[j].kind == TokKind::Punct || isIdent(code[j])) {
            name += code[j].text;
            continue;
        }
        return "";
    }
    return "";
}

inline void
parseClassBody(const std::vector<CodeToken> &code, std::size_t begin,
               std::size_t end, ClassInfo &info, ClassDb &db,
               const std::string &file);

inline std::size_t
end_scan(const std::vector<CodeToken> &code, std::size_t from)
{
    // Bound the class-head scan (base-clause lists are finite; the
    // rejection tokens end real statements long before this).
    return from + 96 < code.size() ? from + 96 : code.size();
}

/**
 * Try to parse a class/struct definition whose `class`/`struct`
 * keyword sits at `i`. Returns one past the definition on success.
 */
inline std::size_t
parseClassDef(const std::vector<CodeToken> &code, std::size_t i,
              ClassDb &db, const std::string &file)
{
    // `class X ... {` with nothing statement-like in between; `enum
    // class` and template parameter lists are rejected by the callers
    // and the scan below.
    if (i + 1 >= code.size() || !isIdent(code[i + 1]))
        return i + 1;
    const std::string &name = code[i + 1].text;
    for (std::size_t j = i + 2; j < end_scan(code, i); ++j) {
        const std::string &t = code[j].text;
        if (t == "{") {
            std::size_t close = matchForward(code, j);
            if (close >= code.size())
                return code.size();
            ClassInfo &info = db[name];
            info.name = name;
            parseClassBody(code, j + 1, close, info, db, file);
            return close + 1;
        }
        if (t == ";" || t == "(" || t == ")" || t == "=" || t == ">")
            return j; // forward decl / template param / other
        // base clause idents, ':', '<...>', commas all acceptable
    }
    return i + 1;
}

inline void
parseClassBody(const std::vector<CodeToken> &code, std::size_t begin,
               std::size_t end, ClassInfo &info, ClassDb &db,
               const std::string &file)
{
    std::size_t i = begin;
    while (i < end) {
        const CodeToken &t = code[i];

        // Access specifiers.
        if (isIdent(t) &&
            (t.text == "public" || t.text == "private" ||
             t.text == "protected") &&
            i + 1 < end && code[i + 1].text == ":" &&
            (i + 2 >= end || code[i + 2].text != ":")) {
            i += 2;
            continue;
        }

        // Nested class / struct definitions become their own entries.
        if (isIdent(t) && (t.text == "class" || t.text == "struct") &&
            (i == begin || code[i - 1].text != "enum")) {
            std::size_t next = parseClassDef(code, i, db, file);
            if (next > i) {
                i = next;
                continue;
            }
        }

        // Skip enums, friends, usings, templates wholesale.
        if (isIdent(t) && t.text == "enum") {
            while (i < end && code[i].text != "{" && code[i].text != ";")
                ++i;
            if (i < end && code[i].text == "{")
                i = matchForward(code, i) + 1;
            continue;
        }
        if (isIdent(t) &&
            (t.text == "friend" || t.text == "using" ||
             t.text == "typedef")) {
            while (i < end && code[i].text != ";")
                ++i;
            ++i;
            continue;
        }
        if (isIdent(t) && t.text == "template") {
            // Skip the parameter list `<...>`.
            std::size_t j = i + 1;
            int depth = 0;
            for (; j < end; ++j) {
                if (code[j].text == "<")
                    ++depth;
                else if (code[j].text == ">" && --depth == 0)
                    break;
            }
            i = j + 1;
            continue;
        }

        // Member function or member variable: find the declarator.
        std::size_t stmt = i;
        std::size_t j = i;
        bool handled = false;
        for (; j < end; ++j) {
            const CodeToken &u = code[j];
            if (u.text == ";") {
                ++j;
                handled = true;
                break; // nothing declared we care about
            }
            if (!isIdent(u) || j + 1 >= end)
                continue;

            // Operator definitions / declarations.
            std::string mname = u.text;
            std::size_t open = j + 1;
            if (u.text == "operator") {
                mname = operatorName(code, j, open);
                if (mname.empty()) {
                    while (j < end && code[j].text != ";" &&
                           code[j].text != "{")
                        ++j;
                    if (j < end && code[j].text == "{")
                        j = matchForward(code, j);
                    ++j;
                    handled = true;
                    break;
                }
            } else if (code[j + 1].text != "(") {
                const std::string &nx = code[j + 1].text;
                if (nx == ";" || nx == "=" || nx == "[" || nx == "{") {
                    // Member variable declarator.
                    info.members.insert(u.text);
                    std::string elem;
                    std::string base =
                        declBaseType(code, stmt, j, elem);
                    if (!base.empty()) {
                        info.memberTypes[u.text] = base;
                        if (!elem.empty())
                            info.memberElemTypes[u.text] = elem;
                    }
                    std::size_t k = j + 1;
                    int brace = 0;
                    while (k < end) {
                        if (code[k].text == "{")
                            ++brace;
                        else if (code[k].text == "}")
                            --brace;
                        else if (code[k].text == ";" && brace == 0)
                            break;
                        ++k;
                    }
                    j = k + 1;
                    handled = true;
                    break;
                }
                continue;
            }
            if (isKeywordCall(mname))
                continue;

            // Method (or constructor). Find body or decl end.
            std::size_t close;
            if (!parenSpan(code, open, close)) {
                j = end;
                handled = true;
                break;
            }
            int arity = countArgs(code, open, close);
            std::size_t body = findBodyBrace(code, close + 1);
            if (body == static_cast<std::size_t>(-1)) {
                // Declaration (or `= default` / `= 0`): record it so
                // the call graph knows the name exists but has no
                // visible body, then skip past ';'.
                info.methodDecls.insert(mname);
                std::size_t k = close + 1;
                while (k < end && code[k].text != ";")
                    ++k;
                j = k + 1;
            } else {
                std::size_t bclose = matchForward(code, body);
                MethodInfo m;
                m.name = mname;
                m.line = u.line;
                m.arity = arity;
                m.file = file;
                m.params = parseParams(code, open, close);
                m.body =
                    slice(code, body + 1, bclose < end ? bclose : end);
                std::string backing = simpleAccessorBacking(m.body);
                if (!backing.empty())
                    info.accessorBacking[m.name] = backing;
                info.methods.push_back(std::move(m));
                j = (bclose < end ? bclose : end) + 1;
            }
            handled = true;
            break;
        }
        i = handled ? (j > i ? j : i + 1) : j;
        if (!handled)
            ++i;
    }
}

} // namespace symbol_detail

/** One free-function definition. */
struct FuncDef
{
    std::string ns;   //!< enclosing namespace ("a::b", "" at global)
    std::string name;
    int arity = 0;
    int line = 0;
    std::string file; //!< tree-relative defining file
    std::vector<CodeToken> body;
    /// (name, base type) per parameter, in declaration order.
    std::vector<std::pair<std::string, std::string>> params;
};

/**
 * The whole-tree symbol index. `classes` is the class database the
 * stat-reset pass has always used (now with member types); `frees`
 * adds free-function definitions; `aliases` records `using X = ...`
 * names so cast syntax is not mistaken for calls.
 */
struct SymbolIndex
{
    ClassDb classes;
    std::vector<FuncDef> frees;
    /// free-function name -> indices into `frees` (the overload set).
    std::map<std::string, std::vector<std::size_t>> freesByName;
    /// `using X = ...` -> base type ident of the aliased type
    /// ("TaggedU64", "function", "uint64_t", ...).
    std::map<std::string, std::string> aliases;

    const ClassInfo *
    findClass(const std::string &name) const
    {
        auto it = classes.find(name);
        return it == classes.end() ? nullptr : &it->second;
    }
};

/** Build the full symbol index over every file of the tree. */
inline SymbolIndex
buildSymbolIndex(const SourceTree &tree)
{
    using namespace symbol_detail;
    SymbolIndex sym;

    // Phase 1: class/struct bodies (members, inline methods, decls).
    for (const auto &f : tree.files) {
        const auto &code = f.code;
        for (std::size_t i = 0; i < code.size(); ++i) {
            if (!isIdent(code[i]) ||
                (code[i].text != "class" && code[i].text != "struct"))
                continue;
            if (i > 0 && (code[i - 1].text == "enum" ||
                          code[i - 1].text == "<" ||
                          code[i - 1].text == ","))
                continue; // enum class / template parameter
            std::size_t next = parseClassDef(code, i, sym.classes, f.rel);
            if (next > i + 1)
                i = next - 1;
        }
    }

    // Phase 2: out-of-line method definitions `Type Class::method(...)`
    // joined to their class, `using` aliases, and free-function
    // definitions with their enclosing namespace.
    for (const auto &f : tree.files) {
        const auto &code = f.code;
        std::vector<std::pair<std::string, std::size_t>> ns_stack;
        for (std::size_t i = 0; i < code.size(); ++i) {
            // Track namespace scopes by their closing brace index.
            while (!ns_stack.empty() && i >= ns_stack.back().second)
                ns_stack.pop_back();
            if (isIdent(code[i]) && code[i].text == "namespace") {
                std::string name;
                std::size_t j = i + 1;
                while (j < code.size() && code[j].text != "{" &&
                       code[j].text != ";" && code[j].text != "=") {
                    name += code[j].text;
                    ++j;
                }
                if (j < code.size() && code[j].text == "{") {
                    std::size_t close = matchForward(code, j);
                    ns_stack.emplace_back(name, close);
                    i = j;
                }
                continue;
            }
            if (isIdent(code[i]) && code[i].text == "using" &&
                i + 2 < code.size() && isIdent(code[i + 1]) &&
                code[i + 2].text == "=") {
                // Alias target base: the ident before the first '<',
                // else the last ident of the right-hand side.
                std::string base;
                for (std::size_t j = i + 3;
                     j < code.size() && code[j].text != ";"; ++j) {
                    if (code[j].text == "<")
                        break;
                    if (isIdent(code[j]) && code[j].text != "std" &&
                        !isDeclNoise(code[j].text))
                        base = code[j].text;
                }
                sym.aliases[code[i + 1].text] = base;
                continue;
            }
            // Skip class bodies: their methods came from phase 1.
            if (isIdent(code[i]) &&
                (code[i].text == "class" || code[i].text == "struct") &&
                (i == 0 || (code[i - 1].text != "enum" &&
                            code[i - 1].text != "<" &&
                            code[i - 1].text != ","))) {
                for (std::size_t j = i + 2; j < end_scan(code, i); ++j) {
                    const std::string &t = code[j].text;
                    if (t == "{") {
                        std::size_t close = matchForward(code, j);
                        i = close < code.size() ? close : code.size() - 1;
                        break;
                    }
                    if (t == ";" || t == "(" || t == ")" || t == "=" ||
                        t == ">")
                        break;
                }
                continue;
            }
            if (!isIdent(code[i]) || i + 1 >= code.size())
                continue;

            // Out-of-line method: `Class :: name (`.
            if (i + 4 < code.size() && code[i + 1].text == ":" &&
                code[i + 2].text == ":" && isIdent(code[i + 3]) &&
                code[i + 4].text == "(") {
                auto cls = sym.classes.find(code[i].text);
                if (cls == sym.classes.end())
                    continue;
                std::size_t close;
                if (!parenSpan(code, i + 4, close))
                    continue;
                std::size_t body = findBodyBrace(code, close + 1);
                if (body == static_cast<std::size_t>(-1))
                    continue;
                std::size_t bclose = matchForward(code, body);
                if (bclose >= code.size())
                    continue;
                MethodInfo m;
                m.name = code[i + 3].text;
                m.line = code[i + 3].line;
                m.arity = countArgs(code, i + 4, close);
                m.file = f.rel;
                m.params = parseParams(code, i + 4, close);
                m.body = slice(code, body + 1, bclose);
                std::string backing = simpleAccessorBacking(m.body);
                if (!backing.empty())
                    cls->second.accessorBacking[m.name] = backing;
                cls->second.methods.push_back(std::move(m));
                i = bclose;
                continue;
            }

            // Free-function definition: type-ish token, then
            // `name ( params ) ... {`. Namespaced scope recorded.
            if (i == 0 || code[i + 1].text != "(" ||
                isKeywordCall(code[i].text))
                continue;
            const CodeToken &prev = code[i - 1];
            bool type_before = (isIdent(prev) && !isKeywordCall(prev.text) &&
                                prev.text != "return") ||
                               prev.text == ">" || prev.text == "*" ||
                               prev.text == "&";
            if (!type_before)
                continue;
            std::size_t close;
            if (!parenSpan(code, i + 1, close))
                continue;
            std::size_t body = findBodyBrace(code, close + 1);
            if (body == static_cast<std::size_t>(-1))
                continue;
            std::size_t bclose = matchForward(code, body);
            if (bclose >= code.size())
                continue;
            FuncDef fd;
            for (const auto &[n, c] : ns_stack) {
                if (fd.ns.empty())
                    fd.ns = n;
                else
                    fd.ns += "::" + n;
            }
            fd.name = code[i].text;
            fd.line = code[i].line;
            fd.file = f.rel;
            fd.params = parseParams(code, i + 1, close);
            fd.arity = static_cast<int>(fd.params.size());
            fd.body = slice(code, body + 1, bclose);
            sym.freesByName[fd.name].push_back(sym.frees.size());
            sym.frees.push_back(std::move(fd));
            i = bclose;
        }
    }

    // Phase 3: counters and reset coverage from the method bodies, and
    // declaration/definition reconciliation.
    for (auto &[name, cls] : sym.classes) {
        for (const auto &m : cls.methods)
            cls.methodDecls.erase(m.name);
        for (const auto &m : cls.methods) {
            const auto &b = m.body;
            for (std::size_t i = 0; i < b.size(); ++i) {
                if (!isIdent(b[i]) || !cls.members.count(b[i].text))
                    continue;
                const std::string &mem = b[i].text;
                bool pre_inc = i >= 2 && b[i - 1].text == "+" &&
                               b[i - 2].text == "+";
                // Direct: M += / M ++ ; subscript: M[...] += ;
                // through-struct: M.field += / ++M.field (covered by
                // pre_inc since M directly follows ++).
                std::size_t after = i + 1;
                if (after < b.size() && b[after].text == "[") {
                    std::size_t close = matchForward(b, after);
                    after = close < b.size() ? close + 1 : b.size();
                } else if (after + 1 < b.size() &&
                           b[after].text == "." &&
                           isIdent(b[after + 1])) {
                    after += 2;
                }
                bool post_inc =
                    after + 1 < b.size() && b[after].text == "+" &&
                    b[after + 1].text == "+";
                bool compound =
                    after + 1 < b.size() && b[after].text == "+" &&
                    b[after + 1].text == "=";
                if (pre_inc || post_inc || compound)
                    cls.counters.insert(mem);
            }
        }
        for (const auto &m : cls.methods) {
            if (m.name.rfind("reset", 0) != 0)
                continue;
            for (std::size_t i = 0; i < m.body.size(); ++i)
                if (isIdent(m.body[i]) &&
                    cls.members.count(m.body[i].text))
                    cls.resetMentioned.insert(m.body[i].text);
        }
    }
    return sym;
}

/**
 * Build the class database alone (the stat-reset pass's historical
 * entry point; the full index subsumes it).
 */
inline ClassDb
buildClassDb(const SourceTree &tree)
{
    return buildSymbolIndex(tree).classes;
}

} // namespace hopp::analysis
