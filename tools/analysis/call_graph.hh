/**
 * @file
 * Conservative cross-TU call graph over the symbol index.
 *
 * Nodes are every function *definition* the index knows: class methods
 * (inline and out-of-line) and free functions. Edges are call sites
 * resolved by token patterns:
 *
 *   - bare calls `f(...)`: same-class method first, then a free
 *     function overload set narrowed by argument count;
 *   - member calls `recv.m(...)` / `recv->m(...)`: the receiver's
 *     declared type is looked up through a per-function type
 *     environment (parameters, locals — including range-for variables
 *     typed from the iterated container's element type — then the
 *     enclosing class's members), `using` aliases are chased, and
 *     smart-pointer receivers dereference to their element type;
 *   - qualified calls `Cls::m(...)` and namespace-qualified free
 *     calls;
 *   - `recv[...]` on a class-typed receiver whose class defines
 *     `operator[]` (project containers like FlatU64Map grow inside
 *     it).
 *
 * The honest-conservatism contract: anything the resolver cannot
 * prove a target for is *counted*, per function, with the call text
 * kept for --verbose — virtual calls through bodiless declarations,
 * callbacks through `std::function` members, receivers of unknown
 * type, chained calls. Reachability consumers (the hotpath pass) must
 * surface these counts next to their findings so "no diagnostic"
 * can never silently mean "couldn't see the call". Calls into std/
 * external types are deliberately *not* edges (their bodies are not
 * in the tree); the hotpath pass catches the dangerous ones by token
 * pattern at the call site instead.
 */

#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/model.hh"
#include "analysis/symbols.hh"

namespace hopp::analysis
{

/** Resolved declared type of a variable: base + element for templates. */
struct TypeInfo
{
    std::string base;
    std::string elem;
};

/** One call-graph node: a function definition somewhere in the tree. */
struct CallNode
{
    std::string cls; //!< enclosing class; "" for a free function
    std::string name;
    int arity = 0;
    int line = 0;
    std::string file;
    const std::vector<CodeToken> *body = nullptr;
    const std::vector<std::pair<std::string, std::string>> *params =
        nullptr;

    std::string
    qual() const
    {
        return cls.empty() ? name : cls + "::" + name;
    }
};

namespace callgraph_detail
{

using namespace symbol_detail;

inline const std::set<std::string> &
containerBases()
{
    static const std::set<std::string> s = {
        "vector", "string", "basic_string", "deque", "list",
        "forward_list", "map", "multimap", "set", "multiset",
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset", "queue", "priority_queue", "stack",
    };
    return s;
}

/** std/builtin types whose member calls are external, never edges. */
inline const std::set<std::string> &
externalTypes()
{
    static const std::set<std::string> s = {
        // containers (kept in sync with containerBases)
        "vector", "string", "basic_string", "deque", "list",
        "forward_list", "map", "multimap", "set", "multiset",
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset", "queue", "priority_queue", "stack",
        "array", "span", "bitset", "initializer_list", "string_view",
        // vocabulary / io / sync std types
        "optional", "pair", "tuple", "variant", "atomic", "function",
        "unique_ptr", "shared_ptr", "weak_ptr", "ifstream", "ofstream",
        "fstream", "istream", "ostream", "stringstream",
        "ostringstream", "istringstream", "path", "mt19937",
        "mt19937_64", "mutex", "thread", "error_code",
        // builtins and fixed-width aliases
        "void", "bool", "char", "short", "int", "long", "unsigned",
        "signed", "float", "double", "auto", "size_t", "ssize_t",
        "ptrdiff_t", "int8_t", "int16_t", "int32_t", "int64_t",
        "uint8_t", "uint16_t", "uint32_t", "uint64_t", "uintptr_t",
        "intptr_t",
    };
    return s;
}

/** Benign libc/builtin free calls: never edges, never unresolved. */
inline bool
benignFreeCall(const std::string &n)
{
    static const std::set<std::string> s = {
        "assert", "memcpy", "memmove", "memset", "strcmp", "strlen",
        "snprintf", "abs", "abort", "exit", "move", "forward", "swap",
        "min", "max", "get", "size", "begin", "end",
    };
    return s.count(n) != 0;
}

/** Identifiers that look like macros: ALL_CAPS or the hopp_ family. */
inline bool
macroLike(const std::string &n)
{
    if (n.rfind("hopp_", 0) == 0 || n.rfind("HOPP_", 0) == 0)
        return true;
    bool alpha = false;
    for (char c : n) {
        if (c >= 'a' && c <= 'z')
            return false;
        if (c >= 'A' && c <= 'Z')
            alpha = true;
    }
    return alpha && n.size() >= 2;
}

/** Backward bracket match: index of the opener for `close`. */
inline std::size_t
matchBackward(const std::vector<CodeToken> &code, std::size_t close)
{
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    const std::string &c = code[close].text;
    std::string open = c == ")" ? "(" : c == "]" ? "[" : "{";
    int depth = 0;
    for (std::size_t i = close + 1; i-- > 0;) {
        if (code[i].text == c)
            ++depth;
        else if (code[i].text == open && --depth == 0)
            return i;
        if (i == 0)
            break;
    }
    return npos;
}

} // namespace callgraph_detail

/**
 * Declared types visible inside one function: parameters and locals
 * by name, then the enclosing class's members; `using` aliases chased
 * via canonical().
 */
struct TypeEnv
{
    std::map<std::string, TypeInfo> vars;
    const ClassInfo *cls = nullptr;
    const SymbolIndex *sym = nullptr;

    TypeInfo
    resolve(const std::string &n) const
    {
        auto it = vars.find(n);
        if (it != vars.end())
            return it->second;
        if (cls) {
            auto mt = cls->memberTypes.find(n);
            if (mt != cls->memberTypes.end()) {
                TypeInfo t{mt->second, ""};
                auto me = cls->memberElemTypes.find(n);
                if (me != cls->memberElemTypes.end())
                    t.elem = me->second;
                return t;
            }
        }
        return {};
    }

    /** Chase `using X = ...` aliases to a base the index may know. */
    std::string
    canonical(std::string base) const
    {
        for (int i = 0; i < 4 && sym; ++i) {
            auto a = sym->aliases.find(base);
            if (a == sym->aliases.end() || a->second.empty() ||
                a->second == base)
                break;
            base = a->second;
        }
        return base;
    }

    /** True when `n` names a known variable (param/local/member). */
    bool
    isVariable(const std::string &n) const
    {
        return vars.count(n) != 0 || (cls && cls->members.count(n) != 0);
    }
};

/**
 * Build the type environment of one node: parameters first, then a
 * scan of the body for local declarations (`Type v = ...;`,
 * `Type v;`, and range-for variables — `for (auto *l : list_)` types
 * `l` from `list_`'s element type).
 */
inline TypeEnv
buildTypeEnv(const SymbolIndex &sym, const CallNode &node)
{
    using namespace callgraph_detail;
    TypeEnv env;
    env.sym = &sym;
    env.cls = node.cls.empty() ? nullptr : sym.findClass(node.cls);
    if (node.params)
        for (const auto &[n, ty] : *node.params)
            if (!n.empty() && !ty.empty())
                env.vars[n] = {ty, ""};

    const auto &body = *node.body;
    std::size_t stmt = 0;
    for (std::size_t i = 0; i < body.size(); ++i) {
        const CodeToken &t = body[i];
        const std::string &x = t.text;
        if (x == ";" || x == "{" || x == "}" || x == "(" || x == ",") {
            stmt = i + 1;
            continue;
        }

        // Range-for: `for ( <decl> : <range> )`.
        if (isIdent(t) && x == "for" && i + 1 < body.size() &&
            body[i + 1].text == "(") {
            std::size_t close = matchForward(body, i + 1);
            if (close >= body.size())
                continue;
            int depth = 0;
            std::size_t colon = 0;
            for (std::size_t j = i + 2; j < close; ++j) {
                const std::string &c = body[j].text;
                if (c == "(" || c == "[" || c == "{")
                    ++depth;
                else if (c == ")" || c == "]" || c == "}")
                    --depth;
                else if (c == ":" && depth == 0 &&
                         (j + 1 >= close || body[j + 1].text != ":") &&
                         body[j - 1].text != ":") {
                    colon = j;
                    break;
                }
            }
            if (colon > i + 2 && isIdent(body[colon - 1])) {
                const std::string &var = body[colon - 1].text;
                std::string elem;
                std::string base =
                    declBaseType(body, i + 2, colon - 1, elem);
                if (base.empty() || base == "auto") {
                    // Type the variable from the iterated container.
                    if (colon + 2 == close && isIdent(body[colon + 1])) {
                        TypeInfo c =
                            env.resolve(body[colon + 1].text);
                        if (!c.elem.empty())
                            env.vars.emplace(var,
                                             TypeInfo{c.elem, ""});
                    }
                } else {
                    env.vars.emplace(var, TypeInfo{base, elem});
                }
            }
            continue;
        }

        // Plain local: `<type tokens> v = ...` / `<type tokens> v ;`.
        if (isIdent(t) && i + 1 < body.size() &&
            (body[i + 1].text == "=" || body[i + 1].text == ";" ||
             body[i + 1].text == "{")) {
            std::string elem;
            std::string base = declBaseType(body, stmt, i, elem);
            if (!base.empty() && base != "auto" && base != "return" &&
                base != "else" && base != "case" &&
                base != "delete" && !isKeywordCall(base))
                env.vars.emplace(t.text, TypeInfo{base, elem});
        }
    }
    return env;
}

/** The call graph: nodes, adjacency, and unresolved-call accounting. */
struct CallGraph
{
    std::vector<CallNode> nodes;
    /// "Cls::name" / free "name" -> node ids (the overload set).
    std::map<std::string, std::vector<std::size_t>> byQual;
    std::vector<std::vector<std::size_t>> callees;
    /// per node: distinct call sites the resolver could not prove a
    /// target for, with a short reason each.
    std::vector<std::set<std::string>> unresolved;

    /**
     * Node ids matching `qual` ("Cls::m" or free "f"). With
     * `argc >= 0`, overloads of that exact arity are preferred; the
     * whole set is returned when none matches exactly.
     */
    std::vector<std::size_t>
    findNodes(const std::string &qual, int argc = -1) const
    {
        auto it = byQual.find(qual);
        if (it == byQual.end())
            return {};
        if (argc < 0)
            return it->second;
        std::vector<std::size_t> exact;
        for (std::size_t id : it->second)
            if (nodes[id].arity == argc)
                exact.push_back(id);
        return exact.empty() ? it->second : exact;
    }
};

namespace callgraph_detail
{

/**
 * Declared type of the receiver expression ending at `recv_end`: a
 * plain variable, `this`, one chained member hop (`a.b` / `a->b`),
 * or a subscript (`a[i]` resolves to the element type of `a`).
 */
inline TypeInfo
resolveReceiver(const SymbolIndex &sym, const TypeEnv &env,
                const std::string &self_cls,
                const std::vector<CodeToken> &body,
                std::size_t recv_end)
{
    const CodeToken &r = body[recv_end];
    if (isIdent(r)) {
        if (r.text == "this")
            return {self_cls, ""};
        TypeInfo ty = env.resolve(r.text);
        if (!ty.base.empty())
            return ty;
        // One chained member hop: outer.inner / outer->inner.
        std::size_t outer = 0;
        bool chained = false;
        if (recv_end >= 2 && body[recv_end - 1].text == "." &&
            isIdent(body[recv_end - 2])) {
            outer = recv_end - 2;
            chained = true;
        } else if (recv_end >= 3 && body[recv_end - 1].text == ">" &&
                   body[recv_end - 2].text == "-" &&
                   isIdent(body[recv_end - 3])) {
            outer = recv_end - 3;
            chained = true;
        }
        if (chained) {
            std::string ob = env.canonical(
                resolveReceiver(sym, env, self_cls, body, outer)
                    .base);
            if (const ClassInfo *oc = sym.findClass(ob)) {
                auto mt = oc->memberTypes.find(r.text);
                if (mt != oc->memberTypes.end()) {
                    TypeInfo out{mt->second, ""};
                    auto me = oc->memberElemTypes.find(r.text);
                    if (me != oc->memberElemTypes.end())
                        out.elem = me->second;
                    return out;
                }
            }
        }
        return {};
    }
    if (r.text == "]" && recv_end > 0) {
        std::size_t open = matchBackward(body, recv_end);
        if (open != static_cast<std::size_t>(-1) && open > 0 &&
            isIdent(body[open - 1])) {
            TypeInfo c =
                resolveReceiver(sym, env, self_cls, body, open - 1);
            if (!c.elem.empty())
                return {c.elem, ""};
        }
    }
    return {};
}

/** Resolve one member/qualified/bare call site; append edges. */
inline void
resolveCall(const SymbolIndex &sym, const TypeEnv &env, CallGraph &cg,
            std::size_t self, const std::vector<CodeToken> &body,
            std::size_t i, std::size_t close)
{
    const std::string &name = body[i].text;
    int argc = countArgs(body, i + 1, close);
    auto &edges = cg.callees[self];
    auto &unres = cg.unresolved[self];

    auto link = [&](const std::vector<std::size_t> &targets) {
        for (std::size_t id : targets)
            if (id != self)
                edges.push_back(id);
        return !targets.empty();
    };

    // Member call: recv.name( / recv->name(.
    bool member = false;
    std::size_t recv_end = 0;
    bool arrow = false;
    if (i >= 2 && body[i - 1].text == ".") {
        member = true;
        recv_end = i - 2;
    } else if (i >= 3 && body[i - 1].text == ">" &&
               body[i - 2].text == "-") {
        member = true;
        arrow = true;
        recv_end = i - 3;
    }
    if (member) {
        TypeInfo ty = resolveReceiver(sym, env, cg.nodes[self].cls,
                                      body, recv_end);
        if (ty.base.empty()) {
            unres.insert("." + name + " (unknown receiver)");
            return;
        }
        std::string base = env.canonical(ty.base);
        if (arrow &&
            (base == "unique_ptr" || base == "shared_ptr") &&
            !ty.elem.empty())
            base = env.canonical(ty.elem);
        if (externalTypes().count(base))
            return; // std type: sinks are caught by token scan
        const ClassInfo *ci = sym.findClass(base);
        if (!ci) {
            unres.insert("." + name + " (type " + base +
                         " not indexed)");
            return;
        }
        if (link(cg.findNodes(base + "::" + name, argc)))
            return;
        // A callable member variable: `e.fn(...)` dispatches through
        // fn's own class (InlineEvent-style inline callables).
        auto mt = ci->memberTypes.find(name);
        if (mt != ci->memberTypes.end()) {
            std::string mbase = env.canonical(mt->second);
            if (sym.findClass(mbase) &&
                link(cg.findNodes(mbase + "::operator()", argc)))
                return;
            unres.insert(base + "::" + name + " (callback member)");
            return;
        }
        if (ci->methodDecls.count(name))
            unres.insert(base + "::" + name + " (no visible body)");
        else
            unres.insert(base + "::" + name + " (unknown method)");
        return;
    }

    // Qualified call: Qual::name(.
    if (i >= 3 && body[i - 1].text == ":" && body[i - 2].text == ":" &&
        isIdent(body[i - 3])) {
        const std::string &qual = body[i - 3].text;
        if (sym.findClass(qual)) {
            if (link(cg.findNodes(qual + "::" + name, argc)))
                return;
            unres.insert(qual + "::" + name + " (unknown method)");
            return;
        }
        // Namespace-qualified free call (vm::pageKey), else external
        // (std::...) — sinks are caught by token scan.
        link(cg.findNodes(name, argc));
        return;
    }

    // Bare call.
    if (!cg.nodes[self].cls.empty() &&
        link(cg.findNodes(cg.nodes[self].cls + "::" + name, argc)))
        return;
    if (env.isVariable(name)) {
        // A variable invoked like a function: a callback we cannot
        // see through (std::function member or similar).
        std::string base = env.canonical(env.resolve(name).base);
        const ClassInfo *ci = sym.findClass(base);
        if (ci && link(cg.findNodes(base + "::operator()", argc)))
            return;
        unres.insert(name + " (callback)");
        return;
    }
    if (link(cg.findNodes(name, argc)))
        return;
    if (!cg.nodes[self].cls.empty()) {
        const ClassInfo *ci = sym.findClass(cg.nodes[self].cls);
        if (ci && ci->methodDecls.count(name)) {
            unres.insert(cg.nodes[self].cls + "::" + name +
                         " (no visible body)");
            return;
        }
    }
    if (macroLike(name) || benignFreeCall(name))
        return;
    if (sym.classes.count(name) || sym.aliases.count(name) ||
        externalTypes().count(name))
        return; // constructor cast: T(x)
    unres.insert(name + " (unknown function)");
}

} // namespace callgraph_detail

/** Build the call graph over every definition in the index. */
inline CallGraph
buildCallGraph(const SymbolIndex &sym)
{
    using namespace callgraph_detail;
    CallGraph cg;

    for (const auto &[cname, ci] : sym.classes) {
        for (const auto &m : ci.methods) {
            CallNode n;
            n.cls = cname;
            n.name = m.name;
            n.arity = m.arity;
            n.line = m.line;
            n.file = m.file;
            n.body = &m.body;
            n.params = &m.params;
            cg.byQual[n.qual()].push_back(cg.nodes.size());
            cg.nodes.push_back(std::move(n));
        }
    }
    for (const auto &fd : sym.frees) {
        CallNode n;
        n.name = fd.name;
        n.arity = fd.arity;
        n.line = fd.line;
        n.file = fd.file;
        n.body = &fd.body;
        n.params = &fd.params;
        cg.byQual[n.qual()].push_back(cg.nodes.size());
        cg.nodes.push_back(std::move(n));
    }

    cg.callees.resize(cg.nodes.size());
    cg.unresolved.resize(cg.nodes.size());

    for (std::size_t id = 0; id < cg.nodes.size(); ++id) {
        const CallNode &node = cg.nodes[id];
        const auto &body = *node.body;
        TypeEnv env = buildTypeEnv(sym, node);
        for (std::size_t i = 0; i < body.size(); ++i) {
            if (!isIdent(body[i]))
                continue;
            // Subscript into a project container: edges into its
            // operator[] (growth may hide there).
            if (i + 1 < body.size() && body[i + 1].text == "[" &&
                (i == 0 || (body[i - 1].text != "." &&
                            body[i - 1].text != ">"))) {
                std::string base =
                    env.canonical(env.resolve(body[i].text).base);
                if (!base.empty() && sym.findClass(base))
                    for (std::size_t tgt :
                         cg.findNodes(base + "::operator[]"))
                        if (tgt != id)
                            cg.callees[id].push_back(tgt);
            }
            if (i + 1 >= body.size() || body[i + 1].text != "(")
                continue;
            const std::string &name = body[i].text;
            if (isKeywordCall(name) || name == "operator" ||
                name == "constexpr" || name == "noexcept" ||
                name == "alignas" || name == "defined" ||
                name == "new" || name == "delete")
                continue; // placement new / operator invocations
            std::size_t close = matchForward(body, i + 1);
            if (close >= body.size())
                continue;
            resolveCall(sym, env, cg, id, body, i, close);
        }
        // Dedup edges.
        auto &e = cg.callees[id];
        std::sort(e.begin(), e.end());
        e.erase(std::unique(e.begin(), e.end()), e.end());
    }
    return cg;
}

} // namespace hopp::analysis
