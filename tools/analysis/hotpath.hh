/**
 * @file
 * Hot-path purity pass: no allocation and no nondeterminism reachable
 * from the declared simulator hot loops.
 *
 * PR 4 made the event core allocation-free and PR 5 made the access
 * path TLB-fast; per-file token lints and one zero-alloc test guard
 * those wins, but neither sees through a call. This pass walks the
 * conservative call graph (call_graph.hh) from a set of declared
 * *roots* and reports every *forbidden sink* reachable from them,
 * with the full call chain in the diagnostic.
 *
 * Roots and sink families come from `hotpaths.conf` (default:
 * `<root>/hotpaths.conf`, override with --hotpaths):
 *
 *   # comment
 *   root EventQueue::runOne      # Cls::method or a free function
 *   sink alloc                   # enable a sink family
 *
 * Families and their rules:
 *
 *   alloc      hotpath-alloc      `new`, make_unique/make_shared,
 *                                 to_string, container growth
 *                                 (push_back & co) on a receiver with
 *                                 no reserve() call in scope
 *   func       hotpath-func       std::function construction
 *   clock      hotpath-clock      <chrono> clocks, clock_gettime,
 *                                 gettimeofday
 *   rng        hotpath-rng        host RNG (random_device, mt19937,
 *                                 rand) — hopp::Pcg32 is the blessed
 *                                 deterministic source
 *   unordered  hotpath-unordered  iteration over unordered containers
 *                                 (host-hash ordering leaks into
 *                                 event order)
 *   thread     hotpath-thread     thread/mutex/lock primitives
 *   io         hotpath-io         iostream/stdio on the hot path
 *
 * Every diagnostic prints the complete root→sink call chain plus the
 * root's unresolved-call count (the honest-conservatism contract: a
 * clean run with a high unresolved count is weaker evidence than a
 * clean run with zero, and the reader gets to know which they have).
 * Suppression uses the standard justified-allow syntax on the sink
 * line; a missing config file skips the pass (trees without declared
 * hot paths have nothing to check).
 *
 * Extra rule outside the families: `hotpath-root` fires when a
 * declared root matches no function in the tree — a renamed hot loop
 * must not silently disarm the watchdog.
 */

#pragma once

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/call_graph.hh"
#include "analysis/model.hh"
#include "analysis/symbols.hh"

namespace hopp::analysis
{

/** Parsed hotpaths.conf. */
struct HotpathConfig
{
    bool loaded = false;
    std::string file; //!< path as given, for diagnostics
    /// (root spec, conf line) in declaration order.
    std::vector<std::pair<std::string, int>> roots;
    std::set<std::string> families;
    std::string error; //!< nonempty when the file failed to parse
};

/** Counters of the pass, surfaced by --verbose. */
struct HotpathSummary
{
    int roots = 0;
    int matchedRoots = 0;
    int reachable = 0;   //!< functions reachable from any root
    int findings = 0;
    int unresolved = 0;  //!< unresolved calls under any root
};

inline bool
knownSinkFamily(const std::string &f)
{
    return f == "alloc" || f == "func" || f == "clock" || f == "rng" ||
           f == "unordered" || f == "thread" || f == "io";
}

/** Load hotpaths.conf; `loaded` false when the file does not exist. */
inline HotpathConfig
loadHotpathConfig(const std::filesystem::path &path)
{
    HotpathConfig conf;
    conf.file = path.generic_string();
    std::ifstream in(path);
    if (!in)
        return conf;
    conf.loaded = true;
    std::string line;
    for (int lineno = 1; std::getline(in, line); ++lineno) {
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ss(line);
        std::string kw, arg, extra;
        if (!(ss >> kw))
            continue;
        if (!(ss >> arg) || (ss >> extra)) {
            conf.error = conf.file + ":" + std::to_string(lineno) +
                         ": expected '<root|sink> <arg>'";
            return conf;
        }
        if (kw == "root") {
            conf.roots.emplace_back(arg, lineno);
        } else if (kw == "sink") {
            if (!knownSinkFamily(arg)) {
                conf.error = conf.file + ":" +
                             std::to_string(lineno) +
                             ": unknown sink family '" + arg + "'";
                return conf;
            }
            conf.families.insert(arg);
        } else {
            conf.error = conf.file + ":" + std::to_string(lineno) +
                         ": unknown directive '" + kw + "'";
            return conf;
        }
    }
    return conf;
}

namespace hotpath_detail
{

using namespace callgraph_detail;

/** One forbidden-sink site inside a function body. */
struct Sink
{
    std::string family;
    int line = 0;
    std::string desc;
};

/** Does `tokens` contain `name . reserve (`? */
inline bool
hasReserveCall(const std::vector<CodeToken> &tokens,
               const std::string &name)
{
    for (std::size_t i = 0; i + 3 < tokens.size(); ++i)
        if (isIdent(tokens[i]) && tokens[i].text == name &&
            tokens[i + 1].text == "." &&
            tokens[i + 2].text == "reserve" &&
            tokens[i + 3].text == "(")
            return true;
    return false;
}

/**
 * Is container growth on `recv` excused by a reserve() call in scope —
 * same body for locals, any method of the enclosing class for
 * members?
 */
inline bool
reservedExempt(const SymbolIndex &sym, const TypeEnv &env,
               const std::vector<CodeToken> &body,
               const std::string &recv)
{
    if (hasReserveCall(body, recv))
        return true;
    // Not a local: class state (a member, or a field reached through
    // a parameter/member — `e.vpns`); a reserve() anywhere in the
    // class's methods manages its capacity.
    if (env.cls && env.vars.count(recv) == 0) {
        for (const auto &m : env.cls->methods)
            if (hasReserveCall(m.body, recv))
                return true;
    }
    (void)sym;
    return false;
}

/** Growth calls that imply allocation on any container type. */
inline bool
unambiguousGrowth(const std::string &m)
{
    return m == "push_back" || m == "emplace_back" || m == "append";
}

/**
 * Growth calls that imply allocation on std container receivers.
 * reserve() is deliberately absent: it is the controlled sizing call
 * the exemption rewards, so flagging it would make the safe idiom
 * unwritable.
 */
inline bool
containerGrowth(const std::string &m)
{
    return m == "insert" || m == "emplace" || m == "resize" ||
           m == "assign" || m == "push_front" || m == "push" ||
           m == "emplace_front";
}

/** Growth calls the reserve() exemption may excuse. */
inline bool
exemptableGrowth(const std::string &m)
{
    return m == "push_back" || m == "emplace_back" || m == "push" ||
           m == "emplace" || m == "insert" || m == "append" ||
           m == "emplace_front" || m == "push_front";
}

inline bool
unorderedBase(const std::string &b)
{
    return b.rfind("unordered_", 0) == 0;
}

/** Scan one function body for forbidden sinks of enabled families. */
inline std::vector<Sink>
collectSinks(const SymbolIndex &sym, const CallNode &node,
             const std::set<std::string> &families)
{
    std::vector<Sink> sinks;
    const auto &body = *node.body;
    TypeEnv env = buildTypeEnv(sym, node);
    auto want = [&](const char *f) { return families.count(f) != 0; };

    for (std::size_t i = 0; i < body.size(); ++i) {
        if (!isIdent(body[i]))
            continue;
        const std::string &x = body[i].text;
        const std::string next =
            i + 1 < body.size() ? body[i + 1].text : "";
        bool called = next == "(";
        bool stdQual = i >= 1 && body[i - 1].text == ":";

        // --- alloc ---------------------------------------------------
        if (want("alloc")) {
            // `new (buf) T` is placement new into existing storage —
            // the event core's inline-callable idiom — not a heap
            // allocation.
            if (x == "new" && next != "(") {
                sinks.push_back({"alloc", body[i].line,
                                 "heap allocation via 'new'"});
                continue;
            }
            if ((x == "make_unique" || x == "make_shared" ||
                 x == "to_string") &&
                (called || next == "<")) {
                sinks.push_back({"alloc", body[i].line,
                                 "heap allocation via 'std::" + x +
                                     "'"});
                continue;
            }
            // Container growth: `recv.m(` / `recv->m(`.
            if (called &&
                (unambiguousGrowth(x) || containerGrowth(x)) && i >= 2 &&
                (body[i - 1].text == "." ||
                 (body[i - 1].text == ">" && i >= 3 &&
                  body[i - 2].text == "-"))) {
                std::size_t recv_at =
                    body[i - 1].text == "." ? i - 2 : i - 3;
                std::string recv, base;
                if (isIdent(body[recv_at])) {
                    recv = body[recv_at].text;
                    base = env.canonical(
                        resolveReceiver(sym, env, node.cls, body,
                                        recv_at)
                            .base);
                }
                bool project = !base.empty() &&
                               sym.findClass(base) != nullptr;
                bool container = containerBases().count(base) != 0;
                bool unknown = base.empty();
                bool growth =
                    !project && (container ||
                                 (unknown && unambiguousGrowth(x)));
                if (growth && exemptableGrowth(x) && !recv.empty() &&
                    reservedExempt(sym, env, body, recv))
                    growth = false;
                if (growth) {
                    std::string who =
                        recv.empty() ? "<expr>" : recv;
                    sinks.push_back(
                        {"alloc", body[i].line,
                         "container growth '" + who + "." + x +
                             "(...)' with no reserve() in scope"});
                    continue;
                }
            }
        }

        // --- func ----------------------------------------------------
        if (want("func") && x == "function" && next == "<") {
            sinks.push_back({"func", body[i].line,
                             "std::function construction"});
            continue;
        }

        // --- clock ---------------------------------------------------
        if (want("clock") &&
            (x == "chrono" || x == "steady_clock" ||
             x == "system_clock" || x == "high_resolution_clock" ||
             ((x == "clock_gettime" || x == "gettimeofday") &&
              called))) {
            sinks.push_back({"clock", body[i].line,
                             "wall-clock access via '" + x + "'"});
            continue;
        }

        // --- rng -----------------------------------------------------
        if (want("rng") &&
            (x == "random_device" || x == "mt19937" ||
             x == "mt19937_64" || x == "drand48" || x == "lrand48" ||
             ((x == "rand" || x == "srand") && called))) {
            sinks.push_back({"rng", body[i].line,
                             "host RNG via '" + x + "'"});
            continue;
        }

        // --- unordered -----------------------------------------------
        if (want("unordered")) {
            // `.begin(` on an unordered-typed receiver.
            if (x == "begin" && called && i >= 2 &&
                body[i - 1].text == "." && isIdent(body[i - 2])) {
                std::string base = env.canonical(
                    env.resolve(body[i - 2].text).base);
                if (unorderedBase(base)) {
                    sinks.push_back(
                        {"unordered", body[i].line,
                         "iteration over unordered container '" +
                             body[i - 2].text + "'"});
                    continue;
                }
            }
            // Range-for over an unordered-typed container.
            if (x == "for" && next == "(") {
                std::size_t close = matchForward(body, i + 1);
                for (std::size_t j = i + 2;
                     j + 1 < close && close < body.size(); ++j) {
                    if (body[j].text == ":" &&
                        body[j - 1].text != ":" &&
                        body[j + 1].text != ":" &&
                        isIdent(body[j + 1])) {
                        std::string base = env.canonical(
                            env.resolve(body[j + 1].text).base);
                        if (unorderedBase(base))
                            sinks.push_back(
                                {"unordered", body[j + 1].line,
                                 "iteration over unordered "
                                 "container '" +
                                     body[j + 1].text + "'"});
                        break;
                    }
                }
            }
        }

        // --- thread --------------------------------------------------
        if (want("thread") &&
            (x == "thread" || x == "mutex" || x == "shared_mutex" ||
             x == "lock_guard" || x == "unique_lock" ||
             x == "scoped_lock" || x == "condition_variable") &&
            (stdQual || next == "<")) {
            sinks.push_back({"thread", body[i].line,
                             "thread primitive 'std::" + x + "'"});
            continue;
        }

        // --- io ------------------------------------------------------
        if (want("io")) {
            bool stream = x == "cout" || x == "cerr" || x == "clog";
            bool cio =
                called &&
                (x == "printf" || x == "fprintf" || x == "puts" ||
                 x == "putchar" || x == "fwrite" || x == "fread" ||
                 x == "fopen" || x == "fflush" || x == "scanf" ||
                 x == "getline");
            if (stream || cio) {
                sinks.push_back({"io", body[i].line,
                                 "host I/O via '" + x + "'"});
                continue;
            }
        }
    }
    return sinks;
}

} // namespace hotpath_detail

/**
 * Run the hotpath pass: BFS the call graph from each configured root,
 * report every reachable sink with its full call chain and the
 * root's unresolved-call count.
 */
inline void
hotpathPass(SourceTree &tree, const SymbolIndex &sym,
            const CallGraph &cg, const HotpathConfig &conf,
            HotpathSummary &summary)
{
    using namespace hotpath_detail;
    if (!conf.loaded)
        return;

    std::map<std::size_t, std::vector<Sink>> sink_cache;
    std::set<std::size_t> any_reachable;
    // Dedup across roots: the first root (in conf order) reaching a
    // sink owns its diagnostic.
    std::set<std::string> seen;

    summary.roots = static_cast<int>(conf.roots.size());
    for (const auto &[spec, conf_line] : conf.roots) {
        std::vector<std::size_t> starts = cg.findNodes(spec);
        if (starts.empty()) {
            // A renamed hot loop must not silently disarm the pass.
            tree.diags.push_back(
                {conf.file, conf_line, "hotpath-root",
                 "root '" + spec +
                     "' matches no function in the tree — renamed "
                     "hot loop? fix hotpaths.conf or the code"});
            continue;
        }
        ++summary.matchedRoots;

        // BFS with parent pointers: shortest chain per function.
        std::map<std::size_t, std::size_t> parent;
        std::set<std::size_t> visited(starts.begin(), starts.end());
        std::vector<std::size_t> queue(starts.begin(), starts.end());
        for (std::size_t qi = 0; qi < queue.size(); ++qi) {
            std::size_t n = queue[qi];
            for (std::size_t tgt : cg.callees[n]) {
                if (visited.insert(tgt).second) {
                    parent[tgt] = n;
                    queue.push_back(tgt);
                }
            }
        }

        int unresolved = 0;
        for (std::size_t n : visited)
            unresolved +=
                static_cast<int>(cg.unresolved[n].size());
        any_reachable.insert(visited.begin(), visited.end());
        summary.unresolved += unresolved;

        std::string tail =
            "; root " + spec + ": " + std::to_string(unresolved) +
            " unresolved call(s) across " +
            std::to_string(visited.size()) + " reachable function(s)";

        for (std::size_t n : queue) {
            auto cached = sink_cache.find(n);
            if (cached == sink_cache.end())
                cached = sink_cache
                             .emplace(n, collectSinks(
                                             sym, cg.nodes[n],
                                             conf.families))
                             .first;
            if (cached->second.empty())
                continue;
            // Chain root -> ... -> n.
            std::vector<std::string> chain;
            for (std::size_t c = n;;) {
                chain.push_back(cg.nodes[c].qual());
                auto p = parent.find(c);
                if (p == parent.end())
                    break;
                c = p->second;
            }
            std::string path;
            for (std::size_t ci = chain.size(); ci-- > 0;) {
                path += chain[ci];
                if (ci > 0)
                    path += " -> ";
            }
            const SourceFile *f = tree.find(cg.nodes[n].file);
            if (!f)
                continue;
            for (const Sink &s : cached->second) {
                std::string rule = "hotpath-" + s.family;
                std::string key = cg.nodes[n].file + ":" +
                                  std::to_string(s.line) + ":" + rule;
                if (!seen.insert(key).second)
                    continue;
                ++summary.findings;
                tree.report(*f, s.line, rule.c_str(),
                            s.desc + " on hot path; chain: " + path +
                                tail);
            }
        }
    }
    summary.reachable = static_cast<int>(any_reachable.size());
}

} // namespace hopp::analysis
