/**
 * @file
 * Token-stream views and matching helpers shared by hopp_lint and
 * hopp_analyze.
 *
 * A TokenStream wraps one lexed file and offers the three views the
 * analysis tools consume:
 *
 *   - code(): tokens with whitespace and comments removed and string /
 *     char literal *contents* replaced by an empty literal — rules
 *     match real code tokens, never prose or literal payloads;
 *   - strippedLines(): the file line by line with comments blanked to
 *     spaces and literal contents blanked in place — for the legacy
 *     line-window rules (layout and columns preserved exactly);
 *   - comments(): comment tokens only — suppression directives like
 *     `// hopp-lint: allow(...)` are parsed from here, so a directive
 *     spelled inside a string literal can no longer suppress anything.
 *
 * ppText() flattens a preprocessor directive token: line continuations
 * and embedded comments become single spaces, which is what include
 * and guard parsing want to see.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/lexer.hh"

namespace hopp::analysis
{

/** One non-whitespace, non-comment token with its source line. */
struct CodeToken
{
    TokKind kind;
    std::string text;
    int line;
};

/** Directive text with continuations and comments flattened to spaces. */
inline std::string
ppText(const std::string &directive)
{
    std::string out;
    std::size_t i = 0;
    while (i < directive.size()) {
        char c = directive[i];
        if (c == '\\') {
            // Backslash-newline (with optional CR) is a continuation.
            std::size_t j = i + 1;
            while (j < directive.size() && directive[j] == '\r')
                ++j;
            if (j < directive.size() && directive[j] == '\n') {
                out += ' ';
                i = j + 1;
                continue;
            }
        }
        if (c == '/' && i + 1 < directive.size()) {
            if (directive[i + 1] == '/')
                break; // trailing comment: directive content ends
            if (directive[i + 1] == '*') {
                std::size_t close = directive.find("*/", i + 2);
                out += ' ';
                i = close == std::string::npos ? directive.size()
                                               : close + 2;
                continue;
            }
        }
        if (c == '\n' || c == '\r' || c == '\t')
            c = ' ';
        out += c;
        ++i;
    }
    return out;
}

class TokenStream
{
  public:
    explicit TokenStream(const std::string &src) : tokens_(lex(src)) {}

    const std::vector<Token> &all() const { return tokens_; }

    /**
     * Code tokens: comments and whitespace gone, directives flattened.
     * String/char literals keep their exact text (their *kind* keeps
     * token matchers from confusing them with identifiers or
     * punctuation; consumers that want payloads, like the stat-name
     * reader in hopp_analyze, read them verbatim).
     */
    std::vector<CodeToken>
    code() const
    {
        std::vector<CodeToken> out;
        for (const auto &t : tokens_) {
            switch (t.kind) {
            case TokKind::Whitespace:
            case TokKind::Comment:
                break;
            case TokKind::PpDirective:
                out.push_back({t.kind, ppText(t.text), t.line});
                break;
            default:
                out.push_back({t.kind, t.text, t.line});
                break;
            }
        }
        return out;
    }

    /** Comment tokens with their start lines (directive parsing). */
    std::vector<Token>
    comments() const
    {
        std::vector<Token> out;
        for (const auto &t : tokens_)
            if (t.kind == TokKind::Comment)
                out.push_back(t);
        return out;
    }

    /**
     * The file as lines of "code text": comments become spaces, string
     * and char literal contents become spaces (delimiters kept), other
     * tokens keep their exact spelling and position. Preprocessor
     * directives keep their text so include/guard-sensitive rules can
     * still see them line by line.
     */
    std::vector<std::string>
    strippedLines() const
    {
        std::vector<std::string> lines(1);
        auto append = [&](const std::string &text) {
            for (char c : text) {
                if (c == '\n')
                    lines.emplace_back();
                else
                    lines.back() += c;
            }
        };
        auto blank = [&](const std::string &text, std::size_t keep) {
            // Keep the first and last `keep` chars (delimiters), blank
            // the payload; newlines inside raw strings stay newlines.
            for (std::size_t k = 0; k < text.size(); ++k) {
                char c = text[k];
                if (c == '\n') {
                    lines.emplace_back();
                    continue;
                }
                bool delim = k < keep || k + keep >= text.size();
                lines.back() += delim ? c : ' ';
            }
        };
        for (const auto &t : tokens_) {
            switch (t.kind) {
            case TokKind::Comment:
                blank(t.text, 0);
                break;
            case TokKind::String:
            case TokKind::CharLit:
                blank(t.text, 1);
                break;
            default:
                append(t.text);
                break;
            }
        }
        return lines;
    }

  private:
    std::vector<Token> tokens_;
};

/**
 * Index of the matching closer for the opener at `open` in a code-token
 * vector ((), {}, []). Returns toks.size() when unbalanced.
 */
inline std::size_t
matchForward(const std::vector<CodeToken> &toks, std::size_t open)
{
    const std::string &o = toks[open].text;
    const char *close = o == "(" ? ")" : o == "{" ? "}" : "]";
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Punct)
            continue;
        if (toks[i].text == o)
            ++depth;
        else if (toks[i].text == close && --depth == 0)
            return i;
    }
    return toks.size();
}

} // namespace hopp::analysis
