/**
 * @file
 * Source model shared by the hopp_analyze passes.
 *
 * hopp_analyze is a cross-translation-unit analyzer: every pass needs
 * the same view of the tree (all files lexed once, module = first path
 * component under the analyzed root) and the same diagnostic plumbing
 * (suppression comments, expect markers for the self-test). This
 * header provides both; the passes live in include_graph.hh and
 * stat_reset.hh.
 *
 * Suppression mirrors hopp_lint's syntax under the tool's own prefix:
 *
 *   // hopp-analyze: allow(<rule>[, <rule>...])   this or next line
 *   // hopp-analyze: allow-file(<rule>)           whole file
 *
 * with `*` as a wildcard, and `hopp-analyze-expect(<rule>)` markers
 * driving `--self-test`. Directives are parsed from comment tokens
 * only, so nothing inside a string literal can suppress a finding.
 */

#pragma once

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/token_stream.hh"

namespace hopp::analysis
{

struct Diag
{
    std::string file; //!< path as given (root-relative for tree scans)
    int line = 0;
    std::string rule;
    std::string message;

    bool
    operator<(const Diag &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        if (rule != o.rule)
            return rule < o.rule;
        return message < o.message;
    }
};

/** Suppression + expect directives from one file's comments. */
struct Directives
{
    std::map<int, std::vector<std::string>> lineAllows;
    std::vector<std::string> fileAllows;
    std::vector<std::pair<int, std::string>> expects;
};

inline std::vector<std::string>
parseRuleList(const std::string &text, std::size_t open_paren)
{
    std::vector<std::string> rules;
    std::size_t close = text.find(')', open_paren);
    if (close == std::string::npos)
        return rules;
    std::string args = text.substr(open_paren + 1, close - open_paren - 1);
    std::string cur;
    for (char c : args) {
        if (c == ',' || c == ' ') {
            if (!cur.empty())
                rules.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        rules.push_back(cur);
    return rules;
}

/**
 * Parse `<prefix>: allow(...)` / `<prefix>: allow-file(...)` and
 * `<prefix>-expect(...)` from comment tokens, attributing each
 * directive to the physical line it sits on.
 */
inline Directives
parseDirectives(const std::vector<Token> &comments, const char *prefix)
{
    const std::string kw = std::string(prefix) + ":";
    const std::string expect_kw = std::string(prefix) + "-expect(";
    Directives d;
    for (const auto &tok : comments) {
        std::istringstream in(tok.text);
        int lineno = tok.line;
        for (std::string line; std::getline(in, line); ++lineno) {
            std::size_t pos = line.find(kw);
            while (pos != std::string::npos) {
                std::size_t after = pos + kw.size();
                std::size_t file_kw = line.find("allow-file(", after);
                std::size_t line_kw = line.find("allow(", after);
                if (file_kw != std::string::npos) {
                    auto rs = parseRuleList(
                        line, file_kw + std::strlen("allow-file"));
                    d.fileAllows.insert(d.fileAllows.end(), rs.begin(),
                                        rs.end());
                } else if (line_kw != std::string::npos) {
                    auto rs = parseRuleList(
                        line, line_kw + std::strlen("allow"));
                    auto &dst = d.lineAllows[lineno];
                    dst.insert(dst.end(), rs.begin(), rs.end());
                }
                pos = line.find(kw, after);
            }
            std::size_t expect = line.find(expect_kw);
            if (expect != std::string::npos) {
                for (const auto &rule : parseRuleList(
                         line, expect + expect_kw.size() - 1))
                    d.expects.emplace_back(lineno, rule);
            }
        }
    }
    return d;
}

inline bool
listCovers(const std::vector<std::string> &rules, const std::string &rule)
{
    return std::any_of(rules.begin(), rules.end(),
                       [&](const std::string &r) {
                           return r == "*" || r == rule;
                       });
}

/** One lexed source file of the analyzed tree. */
struct SourceFile
{
    std::filesystem::path path; //!< absolute/as-walked path
    std::string rel;            //!< root-relative, '/' separators
    std::string module;         //!< first path component ("" at root)
    bool header = false;
    std::vector<CodeToken> code;
    std::vector<Token> pp;      //!< PpDirective tokens, raw text
    Directives directives;
};

/** The whole analyzed tree, files sorted by relative path. */
struct SourceTree
{
    std::filesystem::path root;
    std::vector<SourceFile> files;
    std::vector<Diag> diags;

    const SourceFile *
    find(const std::string &rel) const
    {
        for (const auto &f : files)
            if (f.rel == rel)
                return &f;
        return nullptr;
    }

    /** Report unless suppressed on the line, one above, or file-wide. */
    void
    report(const SourceFile &f, int line, const char *rule,
           std::string message)
    {
        if (listCovers(f.directives.fileAllows, rule))
            return;
        for (int n : {line, line - 1}) {
            auto it = f.directives.lineAllows.find(n);
            if (it != f.directives.lineAllows.end() &&
                listCovers(it->second, rule))
                return;
        }
        diags.push_back({f.rel, line, rule, std::move(message)});
    }
};

inline bool
analyzableFile(const std::filesystem::path &p)
{
    auto ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".hpp";
}

/** Load and lex every C++ file under `root` (or the single file). */
inline SourceTree
loadTree(const std::filesystem::path &root)
{
    namespace fs = std::filesystem;
    SourceTree tree;
    tree.root = root;

    std::vector<fs::path> paths;
    if (fs::is_regular_file(root))
        paths.push_back(root);
    else
        for (const auto &entry : fs::recursive_directory_iterator(root))
            if (entry.is_regular_file() && analyzableFile(entry.path()))
                paths.push_back(entry.path());
    std::sort(paths.begin(), paths.end());

    for (const auto &p : paths) {
        std::ifstream in(p);
        if (!in)
            continue;
        std::ostringstream ss;
        ss << in.rdbuf();
        TokenStream ts(ss.str());

        SourceFile f;
        f.path = p;
        f.rel = fs::is_regular_file(root)
                    ? p.filename().generic_string()
                    : fs::relative(p, root).generic_string();
        std::size_t slash = f.rel.find('/');
        f.module = slash == std::string::npos ? std::string()
                                              : f.rel.substr(0, slash);
        auto ext = p.extension().string();
        f.header = ext == ".hh" || ext == ".hpp";
        f.code = ts.code();
        for (const auto &t : ts.all())
            if (t.kind == TokKind::PpDirective)
                f.pp.push_back(t);
        f.directives = parseDirectives(ts.comments(), "hopp-analyze");
        tree.files.push_back(std::move(f));
    }
    return tree;
}

/**
 * The target of a quote include directive, or "" when the directive is
 * not a quote include (`#include <...>` and every other directive).
 */
inline std::string
quoteIncludeTarget(const std::string &directive_text)
{
    std::string flat = ppText(directive_text);
    std::size_t h = flat.find('#');
    if (h == std::string::npos)
        return "";
    std::size_t i = flat.find_first_not_of(" \t", h + 1);
    if (i == std::string::npos || flat.compare(i, 7, "include") != 0)
        return "";
    std::size_t open = flat.find('"', i + 7);
    if (open == std::string::npos)
        return "";
    std::size_t close = flat.find('"', open + 1);
    if (close == std::string::npos)
        return "";
    return flat.substr(open + 1, close - open - 1);
}

} // namespace hopp::analysis
