/**
 * @file
 * Include-graph pass: module layering, rooted includes, guard style,
 * and include-cycle detection.
 *
 * The architecture contract lives in a declared layer DAG
 * (tools/analysis/layers.conf for src/). Format, one declaration per
 * line, '#' comments:
 *
 *   layer <module> [<module>...]   layers are declared bottom-up; a
 *                                  file may include its own layer and
 *                                  any layer declared before it
 *   interface <module/file.hh>     an interface header: includable
 *                                  from any layer, but may itself only
 *                                  include the bottom layer (or other
 *                                  interface headers) — the escape
 *                                  hatch stays honest
 *   allow <from> <to>              an explicit extra edge: module
 *                                  <from> may include module <to> even
 *                                  though <to> sits above it
 *
 * Rules emitted by this pass:
 *
 *   undeclared-module  a module directory (or included module) absent
 *                      from layers.conf — the DAG must stay total
 *   include-rooted     a quote include that is not module-rooted
 *                      ("dir/file.hh") or does not resolve under the
 *                      analyzed root
 *   layer              an include that jumps to a higher layer with no
 *                      declared allow edge
 *   interface-purity   an interface header including anything above
 *                      the bottom layer
 *   guard-style        a header whose first directive is not
 *                      `#pragma once` (one guard style, machine-checked)
 *   include-cycle      a cycle in the file-level quote-include graph
 */

#pragma once

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/model.hh"

namespace hopp::analysis
{

struct LayerConfig
{
    bool loaded = false;
    std::map<std::string, int> layerOf;          //!< module -> index
    std::set<std::string> interfaces;            //!< rel header paths
    std::set<std::pair<std::string, std::string>> allowEdges;
    std::string error;                           //!< parse failure
};

inline LayerConfig
loadLayerConfig(const std::filesystem::path &conf_path)
{
    LayerConfig cfg;
    std::ifstream in(conf_path);
    if (!in)
        return cfg;
    int layer = 0;
    int lineno = 0;
    for (std::string line; std::getline(in, line);) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream words(line);
        std::string kw;
        if (!(words >> kw))
            continue;
        if (kw == "layer") {
            std::string mod;
            int declared = 0;
            while (words >> mod) {
                cfg.layerOf[mod] = layer;
                ++declared;
            }
            if (declared)
                ++layer;
        } else if (kw == "interface") {
            std::string hdr;
            while (words >> hdr)
                cfg.interfaces.insert(hdr);
        } else if (kw == "allow") {
            std::string from, to;
            if (words >> from >> to) {
                cfg.allowEdges.emplace(from, to);
            } else {
                cfg.error = "allow needs <from> <to> (line " +
                            std::to_string(lineno) + ")";
                return cfg;
            }
        } else {
            cfg.error = "unknown keyword '" + kw + "' (line " +
                        std::to_string(lineno) + ")";
            return cfg;
        }
    }
    cfg.loaded = true;
    return cfg;
}

/**
 * Run the include-graph pass over `tree`. When `cfg.loaded` is false
 * the layering rules are skipped (rooted includes, guard style, and
 * cycles still run) — fixture trees without an architecture contract
 * stay analyzable.
 */
inline void
includeGraphPass(SourceTree &tree, const LayerConfig &cfg)
{
    // --- Per-file include edges (resolved root-relative targets) -----
    struct Edge
    {
        std::size_t from;   //!< index into tree.files
        std::string target; //!< resolved rel path
        int line;
    };
    std::vector<Edge> edges;
    std::map<std::string, std::size_t> byRel;
    for (std::size_t i = 0; i < tree.files.size(); ++i)
        byRel[tree.files[i].rel] = i;

    for (std::size_t i = 0; i < tree.files.size(); ++i) {
        SourceFile &f = tree.files[i];
        for (const auto &pp : f.pp) {
            std::string target = quoteIncludeTarget(pp.text);
            if (target.empty())
                continue;
            bool resolves = byRel.count(target) != 0;
            if (target.find('/') == std::string::npos || !resolves) {
                tree.report(f, pp.line, "include-rooted",
                            "include \"" + target +
                                "\" is not a module-rooted path under "
                                "the analyzed tree; spell includes as "
                                "\"<module>/<file>\" from the source "
                                "root");
                continue;
            }
            edges.push_back({i, target, pp.line});

            if (!cfg.loaded)
                continue;
            std::string target_mod = target.substr(0, target.find('/'));
            bool iface = cfg.interfaces.count(target) != 0;

            if (cfg.interfaces.count(f.rel)) {
                // Interface headers may only reach the bottom layer or
                // other interface headers.
                auto it = cfg.layerOf.find(target_mod);
                bool bottom = it != cfg.layerOf.end() &&
                              it->second == 0;
                if (!bottom && !iface) {
                    tree.report(
                        f, pp.line, "interface-purity",
                        "interface header includes \"" + target +
                            "\"; interface headers may only include "
                            "the bottom layer so every layer can "
                            "depend on them");
                }
                continue;
            }
            if (iface)
                continue; // interface headers are includable anywhere
            if (f.module.empty())
                continue; // file at the root: no module to layer
            auto from_it = cfg.layerOf.find(f.module);
            auto to_it = cfg.layerOf.find(target_mod);
            if (from_it == cfg.layerOf.end()) {
                tree.report(f, pp.line, "undeclared-module",
                            "module '" + f.module +
                                "' is not declared in layers.conf; "
                                "every module must have a layer");
                continue;
            }
            if (to_it == cfg.layerOf.end()) {
                tree.report(f, pp.line, "undeclared-module",
                            "included module '" + target_mod +
                                "' is not declared in layers.conf; "
                                "every module must have a layer");
                continue;
            }
            if (to_it->second > from_it->second &&
                !cfg.allowEdges.count({f.module, target_mod})) {
                tree.report(
                    f, pp.line, "layer",
                    "layering inversion: '" + f.module + "' (layer " +
                        std::to_string(from_it->second) +
                        ") includes \"" + target + "\" from '" +
                        target_mod + "' (layer " +
                        std::to_string(to_it->second) +
                        "); declare an allow edge in layers.conf or "
                        "move the dependency down");
            }
        }

        // --- Guard style: headers open with #pragma once -------------
        if (f.header) {
            bool pragma_once = false;
            int first_line = 1;
            if (!f.pp.empty()) {
                first_line = f.pp.front().line;
                std::string flat = ppText(f.pp.front().text);
                // Normalize "#  pragma   once" to token order.
                std::istringstream words(
                    flat.substr(flat.find('#') + 1));
                std::string a, b;
                words >> a >> b;
                pragma_once = a == "pragma" && b == "once";
            }
            if (!pragma_once) {
                tree.report(f, first_line, "guard-style",
                            "header must open with '#pragma once' "
                            "(the tree's one sanctioned guard style); "
                            "#ifndef guards drift from file renames "
                            "and collide when copied");
            }
        }
    }

    // --- Cycle detection over the resolved file graph ----------------
    // Iterative DFS, three colors; each cycle reported once, anchored
    // at the edge that closes it from the lexically smallest file.
    std::map<std::size_t, std::vector<const Edge *>> adj;
    for (const auto &e : edges) {
        auto it = byRel.find(e.target);
        if (it != byRel.end())
            adj[e.from].push_back(&e);
    }
    std::vector<int> color(tree.files.size(), 0); // 0 white 1 grey 2 black
    std::vector<std::size_t> stack;               // current DFS path
    std::set<std::set<std::size_t>> seen_cycles;

    // Recursive lambda via explicit stack of (node, next-edge-index).
    for (std::size_t start = 0; start < tree.files.size(); ++start) {
        if (color[start] != 0)
            continue;
        std::vector<std::pair<std::size_t, std::size_t>> frames;
        frames.emplace_back(start, 0);
        color[start] = 1;
        stack.push_back(start);
        while (!frames.empty()) {
            auto &[node, next] = frames.back();
            const auto &out = adj[node];
            if (next >= out.size()) {
                color[node] = 2;
                stack.pop_back();
                frames.pop_back();
                continue;
            }
            const Edge *e = out[next++];
            std::size_t to = byRel.at(e->target);
            if (color[to] == 1) {
                // Found a cycle: the path suffix from `to` plus edge e.
                auto at = std::find(stack.begin(), stack.end(), to);
                std::set<std::size_t> key(at, stack.end());
                if (seen_cycles.insert(key).second) {
                    std::string chain;
                    for (auto it2 = at; it2 != stack.end(); ++it2)
                        chain += tree.files[*it2].rel + " -> ";
                    chain += tree.files[to].rel;
                    const SourceFile &f = tree.files[e->from];
                    tree.report(f, e->line, "include-cycle",
                                "include cycle: " + chain +
                                    "; break the cycle with a forward "
                                    "declaration or an interface "
                                    "header");
                }
            } else if (color[to] == 0) {
                color[to] = 1;
                stack.push_back(to);
                frames.emplace_back(to, 0);
            }
        }
    }
}

} // namespace hopp::analysis
