/**
 * @file
 * hopp_lint: project-specific determinism and fidelity lint.
 *
 * The simulator's paper-figure reproducibility rests on every run being
 * a pure function of the configuration and seed. This tool walks C++
 * sources and flags constructs that historically break that property:
 *
 *   raw-rand        std::rand/srand/random/drand48 — unseeded or
 *                   process-global RNG state; use hopp::Pcg32.
 *   random-device   std::random_device — hardware entropy makes runs
 *                   unrepeatable.
 *   wall-clock      system_clock / gettimeofday / time() / clock() —
 *                   wall-clock time inside the simulation; all time
 *                   must be sim::EventQueue ticks. obs/profiler.* is
 *                   the one sanctioned reader (it times the simulator
 *                   itself and is proven side-effect free by the
 *                   profiler on/off byte-identity test).
 *   unordered-iter  range-for or begin() iteration over a variable
 *                   declared as std::unordered_map/unordered_set in the
 *                   same file — iteration order is unspecified, so any
 *                   order-sensitive consumer diverges across stdlibs.
 *   ptr-key         std::map/std::set keyed by a pointer — iteration
 *                   follows allocation addresses, which ASLR
 *                   randomises run to run.
 *
 * Type-discipline rules (the static half of the strong-typing layer in
 * common/types.hh):
 *
 *   raw-int-addr    a raw std::uint64_t / unsigned long long declared
 *                   in a header with an address/page/tick vocabulary
 *                   name (pa, va, vpn, ppn, pfn, addr, tick, page) —
 *                   should be one of the tagged types so cross-space
 *                   confusion fails to compile.
 *   page-shift      manual `<< pageShift` / `>> pageShift` arithmetic
 *                   outside common/types.hh — use pageOf()/pageBase()
 *                   so the page geometry stays in one place.
 *   raw             .raw() unwrapping of a tagged type without a
 *                   `hopp-lint: allow(raw)` justification — the escape
 *                   hatch is for serialization/stats boundaries only.
 *
 * Observability rules:
 *
 *   obs-chrono      any std::chrono use (or <chrono> include) in a
 *                   file under an obs/ directory — the flight
 *                   recorder's traces must be byte-deterministic, so
 *                   its timestamps come exclusively from simulator
 *                   ticks, never wall clocks.
 *
 * Simulation-core rules:
 *
 *   sim-std-function  std::function in a file under a sim/ directory —
 *                   the event core is allocation-free by design;
 *                   closures go through sim::InlineEvent (fixed inline
 *                   storage, compile-time capture budget) or a template
 *                   parameter, never a type-erased heap closure.
 *   thread-primitive  raw std::thread / mutex / atomic / futures
 *                   anywhere but runner/sweep* — simulation code is
 *                   single-threaded by contract (results are a pure
 *                   function of config + seed), and the only sanctioned
 *                   host parallelism is whole independent runs behind
 *                   runner::SweepPool's index-ordered API.
 *
 * Since PR 6 the scanner is a thin driver over the shared token lexer
 * in tools/analysis/ (also the base of hopp_analyze): rules match
 * lexed tokens or comment-stripped, literal-blanked line text, so a
 * `//` inside a raw string, an `allow(` inside a string literal, or a
 * rule keyword in prose can no longer confuse them. The three
 * historically noisiest rules (raw, unordered-iter, ptr-key) match
 * token sequences directly and now see through multi-line declarations
 * and for-headers.
 *
 * Suppression:
 *   // hopp-lint: allow(<rule>[, <rule>...])    this or next line
 *   // hopp-lint: allow-file(<rule>)            whole file
 * with `*` accepted as a rule wildcard. Every allow should carry a
 * justification in the surrounding comment. Directives are only read
 * from comments.
 *
 * Usage:
 *   hopp_lint PATH...            lint files / directory trees
 *   hopp_lint --self-test DIR    verify diagnostics against
 *                                `hopp-lint-expect(<rule>)` markers
 *
 * Exit status: 0 clean, 1 violations (or self-test mismatch), 2 usage.
 */

// The rule patterns below necessarily spell out the very tokens they
// hunt for outside string literals too (token spellings in matchers),
// so this file suppresses its own rules wholesale.
// hopp-lint: allow-file(*)

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lexer.hh"
#include "analysis/token_stream.hh"

namespace fs = std::filesystem;

namespace
{

using hopp::analysis::CodeToken;
using hopp::analysis::TokKind;
using hopp::analysis::Token;
using hopp::analysis::TokenStream;

struct Diagnostic
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;

    bool
    operator<(const Diagnostic &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        return rule < o.rule;
    }
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Find `token` in `line` at a non-identifier boundary, optionally
 * requiring an immediately following '('.
 */
bool
hasToken(const std::string &line, const char *token, bool call_only)
{
    std::size_t len = std::strlen(token);
    std::size_t pos = 0;
    while ((pos = line.find(token, pos)) != std::string::npos) {
        bool left_ok = pos == 0 || !isIdentChar(line[pos - 1]);
        std::size_t end = pos + len;
        bool right_ok = call_only
                            ? end < line.size() && line[end] == '('
                            : end >= line.size() || !isIdentChar(line[end]);
        if (left_ok && right_ok)
            return true;
        pos += len;
    }
    return false;
}

/** Extract rule names from an `allow(...)` / `expect(...)` argument. */
std::vector<std::string>
parseRuleList(const std::string &line, std::size_t open_paren)
{
    std::vector<std::string> rules;
    std::size_t close = line.find(')', open_paren);
    if (close == std::string::npos)
        return rules;
    std::string args = line.substr(open_paren + 1, close - open_paren - 1);
    std::string cur;
    for (char c : args) {
        if (c == ',' || c == ' ') {
            if (!cur.empty())
                rules.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        rules.push_back(cur);
    return rules;
}

/** Directives gathered from one file's comments. */
struct Directives
{
    std::map<int, std::vector<std::string>> lineAllows;
    std::vector<std::string> fileAllows;
    std::vector<std::pair<int, std::string>> expects;
};

/**
 * Parse allow / allow-file / expect directives from comment tokens.
 * Multi-line block comments attribute each directive to the physical
 * line it sits on.
 */
Directives
parseDirectives(const std::vector<Token> &comments)
{
    Directives d;
    for (const auto &tok : comments) {
        std::istringstream in(tok.text);
        int lineno = tok.line;
        for (std::string line; std::getline(in, line); ++lineno) {
            std::size_t pos = line.find("hopp-lint:");
            while (pos != std::string::npos) {
                std::size_t after = pos + std::strlen("hopp-lint:");
                std::size_t file_kw = line.find("allow-file(", after);
                std::size_t line_kw = line.find("allow(", after);
                if (file_kw != std::string::npos) {
                    auto rs = parseRuleList(
                        line, file_kw + std::strlen("allow-file"));
                    d.fileAllows.insert(d.fileAllows.end(), rs.begin(),
                                        rs.end());
                } else if (line_kw != std::string::npos) {
                    auto rs = parseRuleList(
                        line, line_kw + std::strlen("allow"));
                    auto &dst = d.lineAllows[lineno];
                    dst.insert(dst.end(), rs.begin(), rs.end());
                }
                pos = line.find("hopp-lint:", after);
            }
            std::size_t expect = line.find("hopp-lint-expect(");
            if (expect != std::string::npos) {
                for (const auto &rule : parseRuleList(
                         line, expect + std::strlen("hopp-lint-expect")))
                    d.expects.emplace_back(lineno, rule);
            }
        }
    }
    return d;
}

bool
listCovers(const std::vector<std::string> &rules, const std::string &rule)
{
    return std::any_of(rules.begin(), rules.end(),
                       [&](const std::string &r) {
                           return r == "*" || r == rule;
                       });
}

/**
 * Names declared as unordered containers in a code-token stream.
 * Token-based: multi-line declarations are seen whole.
 */
void
recordUnorderedDecls(const std::vector<CodeToken> &code,
                     std::vector<std::string> &names)
{
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
        if (code[i].kind != TokKind::Ident ||
            (code[i].text != "unordered_map" &&
             code[i].text != "unordered_set"))
            continue;
        if (code[i + 1].text != "<")
            continue;
        // Walk to the matching '>' of the template argument list.
        std::size_t j = i + 1;
        int depth = 0;
        for (; j < code.size(); ++j) {
            if (code[j].text == "<")
                ++depth;
            else if (code[j].text == ">" && --depth == 0)
                break;
        }
        if (j >= code.size())
            continue;
        // The declared name is the next identifier (skip &, *); stop at
        // statement punctuation, which means this was a type mention,
        // not a declaration.
        std::string name;
        for (++j; j < code.size(); ++j) {
            const std::string &t = code[j].text;
            if (code[j].kind == TokKind::Ident) {
                name = t;
                break;
            }
            if (t != "&" && t != "*")
                break;
        }
        if (!name.empty())
            names.push_back(name);
    }
}

/**
 * Token-based for-header scan: flag any use of a recorded unordered
 * container name inside a `for (...)` header (range-for sequence or
 * iterator begin()/end() calls alike).
 */
void
findUnorderedIterations(
    const std::vector<CodeToken> &code,
    const std::vector<std::string> &names,
    const std::function<void(int, const std::string &)> &flag)
{
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
        if (code[i].kind != TokKind::Ident || code[i].text != "for" ||
            code[i + 1].text != "(")
            continue;
        std::size_t close = hopp::analysis::matchForward(code, i + 1);
        for (std::size_t j = i + 2; j < close && j < code.size(); ++j) {
            if (code[j].kind != TokKind::Ident)
                continue;
            for (const auto &name : names) {
                if (code[j].text == name) {
                    flag(code[i].line, name);
                    j = close; // one diagnostic per for-header
                    break;
                }
            }
        }
    }
}

/**
 * Token-based pointer-key scan: std::map< K or std::set< K where the
 * first template argument contains a '*' at template depth 1.
 */
void
findPointerKeyedOrdered(const std::vector<CodeToken> &code,
                        const std::function<void(int)> &flag)
{
    for (std::size_t i = 0; i + 3 < code.size(); ++i) {
        if (code[i].kind != TokKind::Ident || code[i].text != "std")
            continue;
        if (code[i + 1].text != ":" || code[i + 2].text != ":")
            continue;
        const std::string &container = code[i + 3].text;
        if (container != "map" && container != "set")
            continue;
        if (i + 4 >= code.size() || code[i + 4].text != "<")
            continue;
        int depth = 0;
        for (std::size_t j = i + 4; j < code.size(); ++j) {
            const std::string &t = code[j].text;
            if (t == "<") {
                ++depth;
            } else if (t == ">") {
                if (--depth == 0)
                    break;
            } else if (depth == 1 && t == ",") {
                break; // end of the key argument
            } else if (depth >= 1 && t == "*") {
                flag(code[i].line);
                break;
            } else if (t == ";" || t == "{") {
                break; // not a template argument list after all
            }
        }
    }
}

/** Lowercased word-split of an identifier (camelCase and snake_case). */
std::vector<std::string>
identWords(const std::string &ident)
{
    std::vector<std::string> words;
    std::string cur;
    for (char c : ident) {
        if (c == '_') {
            if (!cur.empty())
                words.push_back(cur);
            cur.clear();
        } else if (std::isupper(static_cast<unsigned char>(c))) {
            if (!cur.empty())
                words.push_back(cur);
            cur.clear();
            cur += static_cast<char>(std::tolower(c));
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        words.push_back(cur);
    return words;
}

/**
 * True when an identifier names an address/page/tick quantity. Matches
 * whole words only, so counts like `hotPages` or `footprintPages` stay
 * clean while `pageKey`, `fault_addr` or `tick` are flagged.
 */
bool
addrVocabIdent(const std::string &ident)
{
    static const char *vocab[] = {"pa",   "va",      "vpn",  "ppn",
                                  "pfn",  "addr",    "address", "tick",
                                  "page"};
    for (const auto &w : identWords(ident))
        for (const char *v : vocab)
            if (w == v)
                return true;
    return false;
}

/**
 * raw-int-addr detector: a raw 64-bit integer token whose following
 * identifier (the declared parameter, member, or function name) uses
 * address/page/tick vocabulary. One diagnostic per line suffices.
 */
bool
findRawIntAddr(const std::string &line, std::string &ident)
{
    for (const char *tok : {"uint64_t", "unsigned long long"}) {
        std::size_t len = std::strlen(tok);
        std::size_t pos = 0;
        while ((pos = line.find(tok, pos)) != std::string::npos) {
            bool left_ok = pos == 0 || !isIdentChar(line[pos - 1]);
            std::size_t i = pos + len;
            pos += len;
            if (!left_ok || (i < line.size() && isIdentChar(line[i])))
                continue;
            while (i < line.size() &&
                   (line[i] == ' ' || line[i] == '\t' ||
                    line[i] == '&' || line[i] == '*'))
                ++i;
            std::string name;
            while (i < line.size() && isIdentChar(line[i]))
                name += line[i++];
            if (!name.empty() && addrVocabIdent(name)) {
                ident = name;
                return true;
            }
        }
    }
    return false;
}

/** True when `pageShift` appears as the right operand of << or >>. */
bool
hasManualPageShift(const std::string &line)
{
    std::size_t pos = 0;
    while ((pos = line.find("pageShift", pos)) != std::string::npos) {
        bool left_ident = pos > 0 && isIdentChar(line[pos - 1]);
        std::size_t end = pos + std::strlen("pageShift");
        bool right_ident = end < line.size() && isIdentChar(line[end]);
        std::size_t j = pos;
        while (j > 0 && (line[j - 1] == ' ' || line[j - 1] == '\t'))
            --j;
        bool shifted = j >= 2 && (line.compare(j - 2, 2, "<<") == 0 ||
                                  line.compare(j - 2, 2, ">>") == 0);
        if (!left_ident && !right_ident && shifted)
            return true;
        pos = end;
    }
    return false;
}

struct FileScan
{
    std::vector<Diagnostic> diags;
    std::vector<Diagnostic> expected; //!< self-test markers
};

bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

void
scanFile(const fs::path &path, FileScan &out)
{
    std::string src;
    if (!readFile(path, src)) {
        std::fprintf(stderr, "hopp_lint: cannot open %s\n",
                     path.c_str());
        return;
    }

    TokenStream ts(src);
    const std::vector<std::string> code_lines = ts.strippedLines();
    const std::vector<CodeToken> code = ts.code();
    const Directives dirs = parseDirectives(ts.comments());

    // Raw lines: the allow-window logic must see comment-only lines as
    // occupied, so it walks the original text, not the stripped text.
    std::vector<std::string> raw_lines;
    {
        std::istringstream in(src);
        for (std::string line; std::getline(in, line);)
            raw_lines.push_back(line);
    }

    std::vector<std::string> unordered_names;

    auto ext = path.extension().string();
    bool is_header = ext == ".hh" || ext == ".hpp";
    std::string generic = path.generic_string();
    bool in_obs = generic.find("/obs/") != std::string::npos ||
                  generic.rfind("obs/", 0) == 0;
    bool in_sim = generic.find("/sim/") != std::string::npos ||
                  generic.rfind("sim/", 0) == 0;
    // The sweep pool is the one sanctioned home for host threads; a
    // basename prefix ("runner/sweep") covers sweep_pool.* and any
    // future sweep_*.cc split out beside it.
    bool in_sweep = generic.find("runner/sweep") != std::string::npos;
    // The host self-profiler is the one sanctioned wall-clock reader:
    // it measures the simulator, never the simulation, and ships with
    // a byte-identity test proving sim output is unaffected. Same
    // basename-prefix trick as runner/sweep above.
    bool in_profiler =
        generic.find("obs/profiler.") != std::string::npos;
    bool is_types_hh =
        generic.size() >= std::strlen("common/types.hh") &&
        generic.compare(generic.size() - std::strlen("common/types.hh"),
                        std::string::npos, "common/types.hh") == 0;

    // Members declared in the class header are iterated from the .cc:
    // preload sibling-header declarations so those loops are seen too.
    if (ext == ".cc" || ext == ".cpp") {
        for (const char *hdr_ext : {".hh", ".hpp"}) {
            fs::path hdr = path;
            hdr.replace_extension(hdr_ext);
            std::string hdr_src;
            if (!readFile(hdr, hdr_src))
                continue;
            recordUnorderedDecls(TokenStream(hdr_src).code(),
                                 unordered_names);
            break;
        }
    }
    recordUnorderedDecls(code, unordered_names);

    auto lineAllowed = [&](int lineno, const char *rule) {
        auto it = dirs.lineAllows.find(lineno);
        return it != dirs.lineAllows.end() &&
               listCovers(it->second, rule);
    };

    auto emit = [&](int lineno, const char *rule, std::string msg) {
        if (listCovers(dirs.fileAllows, rule))
            return;
        if (lineAllowed(lineno, rule))
            return;
        // An allow on an earlier line covers this one as long as no
        // completed statement (';', '{', '}') or blank line intervenes
        // — so one annotation above a wrapped hopp_assert covers every
        // continuation line. Bounded walk; statements wrap a few lines.
        for (int n = lineno - 1, steps = 0; n >= 1 && steps < 8;
             --n, ++steps) {
            if (static_cast<std::size_t>(n) > raw_lines.size())
                break;
            const std::string &prev_raw = raw_lines[n - 1];
            if (prev_raw.find_first_not_of(" \t") == std::string::npos)
                break;
            if (lineAllowed(n, rule))
                return;
            std::string trimmed = static_cast<std::size_t>(n) <=
                                          code_lines.size()
                                      ? code_lines[n - 1]
                                      : std::string();
            while (!trimmed.empty() &&
                   (trimmed.back() == ' ' || trimmed.back() == '\t'))
                trimmed.pop_back();
            if (!trimmed.empty() &&
                (trimmed.back() == ';' || trimmed.back() == '{' ||
                 trimmed.back() == '}'))
                break;
        }
        out.diags.push_back(
            {path.string(), lineno, rule, std::move(msg)});
    };

    for (const auto &[lineno, rule] : dirs.expects)
        out.expected.push_back({path.string(), lineno, rule, ""});

    // --- Token-sequence rules (multi-line aware) ---------------------

    findUnorderedIterations(
        code, unordered_names, [&](int lineno, const std::string &name) {
            emit(lineno, "unordered-iter",
                 "iteration over unordered container '" + name +
                     "' has unspecified order; sort keys first or "
                     "justify order-insensitivity with an allow comment");
        });

    findPointerKeyedOrdered(code, [&](int lineno) {
        emit(lineno, "ptr-key",
             "std::map/std::set keyed by a pointer iterates in "
             "allocation-address order, which ASLR randomises");
    });

    for (std::size_t i = 0; i + 2 < code.size(); ++i) {
        if (code[i].text == "." && code[i + 1].kind == TokKind::Ident &&
            code[i + 1].text == "raw" && code[i + 2].text == "(") {
            emit(code[i].line, "raw",
                 ".raw() unwraps a tagged type; confine it to "
                 "serialization/stats boundaries and justify with "
                 "hopp-lint: allow(raw)");
        }
    }

    // --- Line rules over comment-stripped, literal-blanked text ------

    for (std::size_t n = 0; n < code_lines.size(); ++n) {
        const std::string &line = code_lines[n];
        int lineno = static_cast<int>(n + 1);

        for (const char *tok :
             {"rand", "srand", "rand_r", "random", "srandom", "drand48"}) {
            if (hasToken(line, tok, /*call_only=*/true)) {
                emit(lineno, "raw-rand",
                     std::string(tok) +
                         "() uses process-global RNG state; use "
                         "hopp::Pcg32 seeded from the workload seed");
                break;
            }
        }

        if (hasToken(line, "random_device", false)) {
            emit(lineno, "random-device",
                 "std::random_device draws hardware entropy; runs "
                 "become unrepeatable");
        }

        if (!in_profiler) {
            for (const char *tok : {"system_clock", "steady_clock",
                                    "high_resolution_clock"}) {
                if (hasToken(line, tok, false)) {
                    emit(lineno, "wall-clock",
                         std::string(tok) +
                             " reads wall-clock time; simulated time "
                             "must come from sim::EventQueue ticks "
                             "(host timing belongs in obs/profiler.*)");
                    break;
                }
            }
            for (const char *tok :
                 {"time", "clock", "gettimeofday", "clock_gettime"}) {
                if (hasToken(line, tok, /*call_only=*/true)) {
                    emit(lineno, "wall-clock",
                         std::string(tok) +
                             "() reads wall-clock time; simulated time "
                             "must come from sim::EventQueue ticks "
                             "(host timing belongs in obs/profiler.*)");
                    break;
                }
            }
        }

        if (is_header) {
            std::string ident;
            if (findRawIntAddr(line, ident)) {
                emit(lineno, "raw-int-addr",
                     "raw 64-bit integer '" + ident +
                         "' carries address/page/tick vocabulary; use "
                         "the tagged types in common/types.hh");
            }
        }

        if (!is_types_hh && hasManualPageShift(line)) {
            emit(lineno, "page-shift",
                 "manual pageShift arithmetic outside common/types.hh; "
                 "use pageOf()/pageBase() so page geometry stays "
                 "centralized");
        }

        if (in_obs && !in_profiler && hasToken(line, "chrono", false)) {
            emit(lineno, "obs-chrono",
                 "std::chrono in the observability layer; trace "
                 "timestamps must be simulator ticks so traces stay "
                 "byte-deterministic");
        }

        if (in_sim && line.find("std::function") != std::string::npos) {
            emit(lineno, "sim-std-function",
                 "std::function in the simulation core; closures "
                 "must use sim::InlineEvent (or a template parameter) "
                 "so the event hot path stays allocation-free");
        }

        if (!in_sweep) {
            for (const char *tok :
                 {"std::thread", "std::jthread", "std::mutex",
                  "std::recursive_mutex", "std::shared_mutex",
                  "std::atomic", "std::condition_variable",
                  "std::lock_guard", "std::unique_lock",
                  "std::scoped_lock", "std::future", "std::promise",
                  "std::async"}) {
                if (line.find(tok) != std::string::npos) {
                    emit(lineno, "thread-primitive",
                         std::string(tok) +
                             " outside runner/sweep*; simulation code "
                             "is single-threaded by contract — host "
                             "parallelism goes through "
                             "runner::SweepPool");
                    break;
                }
            }
        }
    }
}

bool
lintableFile(const fs::path &p)
{
    auto ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".hpp";
}

void
collectFiles(const fs::path &root, std::vector<fs::path> &files)
{
    if (fs::is_regular_file(root)) {
        files.push_back(root);
        return;
    }
    for (const auto &entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintableFile(entry.path()))
            files.push_back(entry.path());
    }
}

int
selfTest(const std::vector<fs::path> &files)
{
    FileScan scan;
    for (const auto &f : files)
        scanFile(f, scan);

    std::set<Diagnostic> got(scan.diags.begin(), scan.diags.end());
    std::set<Diagnostic> want(scan.expected.begin(), scan.expected.end());

    int mismatches = 0;
    for (const auto &d : want) {
        if (!got.count(d)) {
            std::fprintf(stderr,
                         "self-test: MISSING %s:%d [%s] (expected but "
                         "not emitted)\n",
                         d.file.c_str(), d.line, d.rule.c_str());
            ++mismatches;
        }
    }
    for (const auto &d : got) {
        if (!want.count(d)) {
            std::fprintf(stderr,
                         "self-test: SPURIOUS %s:%d [%s] %s\n",
                         d.file.c_str(), d.line, d.rule.c_str(),
                         d.message.c_str());
            ++mismatches;
        }
    }
    std::printf("hopp_lint self-test: %zu expected, %zu emitted, %d "
                "mismatches\n",
                want.size(), got.size(), mismatches);
    return mismatches ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool self_test = false;
    std::vector<fs::path> roots;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--self-test") {
            self_test = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--self-test] PATH...\n", argv[0]);
            return 0;
        } else {
            roots.emplace_back(arg);
        }
    }
    if (roots.empty()) {
        std::fprintf(stderr, "usage: %s [--self-test] PATH...\n",
                     argv[0]);
        return 2;
    }

    std::vector<fs::path> files;
    for (const auto &r : roots) {
        if (!fs::exists(r)) {
            std::fprintf(stderr, "hopp_lint: no such path: %s\n",
                         r.c_str());
            return 2;
        }
        collectFiles(r, files);
    }
    std::sort(files.begin(), files.end());

    if (self_test)
        return selfTest(files);

    FileScan scan;
    for (const auto &f : files)
        scanFile(f, scan);
    std::sort(scan.diags.begin(), scan.diags.end());
    for (const auto &d : scan.diags) {
        std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());
    }
    std::printf("hopp_lint: %zu file(s), %zu violation(s)\n",
                files.size(), scan.diags.size());
    return scan.diags.empty() ? 0 : 1;
}
