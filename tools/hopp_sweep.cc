/**
 * @file
 * hopp-sweep: run a cross-product of configurations, optionally in
 * parallel, and emit one deterministic JSON document.
 *
 *   hopp-sweep [--workload NAME]... [--system NAME]... [--ratio F]...
 *              [--scale F] [--iterations F] [--seed N] [--jobs N]
 *              [--out FILE]
 *
 * The sweep is the cross product workload x system x ratio, enumerated
 * workload-major. Each configuration runs on its own fully-independent
 * Machine; with --jobs N the runs execute on N host threads through
 * runner::SweepPool. Every run renders its own result fragment (stats
 * JSON included) inside its task, and fragments are concatenated in
 * submission order — so the output is byte-identical for every --jobs
 * value, which the sweep.determinism ctest and the CI sweep smoke
 * verify by diffing --jobs 1 against --jobs 4. --jobs deliberately
 * does not appear in the document.
 *
 * Examples:
 *   hopp-sweep --workload kmeans-omp --system hopp --system fastswap \
 *              --ratio 0.3 --ratio 0.5 --ratio 0.7 --jobs 4
 *   hopp-sweep --workload microbench --scale 0.2 --out sweep.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/trace_writer.hh"
#include "runner/machine.hh"
#include "runner/stats_report.hh"
#include "runner/sweep_pool.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --workload NAME  workload (repeatable; default kmeans-omp)\n"
        "  --system NAME    system under test (repeatable; default"
        " hopp)\n"
        "  --ratio F        local memory / footprint (repeatable;"
        " default 0.5)\n"
        "  --scale F        footprint scale factor (default 1.0)\n"
        "  --iterations F   iteration scale factor (default 1.0)\n"
        "  --seed N         workload seed (default 42)\n"
        "  --jobs N         host worker threads (default 1; 0 = all"
        " cores)\n"
        "  --out FILE       write the document to FILE (default"
        " stdout)\n",
        argv0);
}

SystemKind
parseSystem(const std::string &name)
{
    for (auto kind : {SystemKind::Local, SystemKind::NoPrefetch,
                      SystemKind::Fastswap, SystemKind::Leap,
                      SystemKind::Vma, SystemKind::DepthN,
                      SystemKind::Hopp, SystemKind::HoppOnly}) {
        if (name == systemName(kind))
            return kind;
    }
    hopp_fatal("unknown system '%s'", name.c_str());
}

/** One cell of the cross product. */
struct SweepConfig
{
    std::string workload;
    SystemKind system;
    std::string ratioText; //!< as given on the command line
    double ratio;
};

/** Indent every line of a rendered JSON block by @p pad spaces. */
std::string
indent(const std::string &text, int pad)
{
    std::string out;
    std::string prefix(static_cast<std::size_t>(pad), ' ');
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos)
            nl = text.size();
        if (nl > start)
            out += prefix + text.substr(start, nl - start);
        out += '\n';
        start = nl + 1;
    }
    // Drop the trailing newline so the caller controls separators.
    if (!out.empty() && out.back() == '\n')
        out.pop_back();
    return out;
}

/**
 * Run one configuration and render its complete result fragment. All
 * state — Machine, stats, the rendered string — is local to the call,
 * which is what makes the sweep safe to parallelize.
 */
std::string
runOneConfig(const SweepConfig &sc, const workloads::WorkloadScale &scale,
             std::uint64_t seed)
{
    MachineConfig cfg;
    cfg.system = sc.system;
    cfg.localMemRatio = sc.ratio;
    Machine machine(cfg);
    // Seed offset mirrors hopp-run's single-workload seeding, so a
    // sweep cell reproduces the matching hopp-run invocation exactly.
    machine.addWorkload(
        workloads::makeWorkload(sc.workload, scale, seed + 1));
    RunResult r = machine.run();

    std::string out;
    out += "    {\n";
    out += "      \"workload\": \"" + sc.workload + "\",\n";
    out += "      \"system\": \"" + std::string(systemName(sc.system)) +
           "\",\n";
    out += "      \"ratio\": " + sc.ratioText + ",\n";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.0f", toDouble(r.makespan));
    out += "      \"makespan_ns\": " + std::string(buf) + ",\n";
    out += "      \"stats\":\n" + indent(statsJson(machine), 6) + "\n";
    out += "    }";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> workload_names;
    std::vector<SystemKind> systems;
    std::vector<std::pair<std::string, double>> ratios;
    workloads::WorkloadScale scale;
    std::uint64_t seed = 42;
    unsigned jobs = 1;
    std::string out_path;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            usage(argv[0]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--workload") {
            workload_names.push_back(need(i));
        } else if (arg == "--system") {
            systems.push_back(parseSystem(need(i)));
        } else if (arg == "--ratio") {
            std::string text = need(i);
            ratios.emplace_back(text, std::atof(text.c_str()));
        } else if (arg == "--scale") {
            scale.footprint = std::atof(need(i));
        } else if (arg == "--iterations") {
            scale.iterations = std::atof(need(i));
        } else if (arg == "--seed") {
            seed = static_cast<std::uint64_t>(std::atoll(need(i)));
        } else if (arg == "--jobs") {
            int n = std::atoi(need(i));
            jobs = n <= 0 ? SweepPool::hardwareJobs()
                          : static_cast<unsigned>(n);
        } else if (arg == "--out") {
            out_path = need(i);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (workload_names.empty())
        workload_names.push_back("kmeans-omp");
    if (systems.empty())
        systems.push_back(SystemKind::Hopp);
    if (ratios.empty())
        ratios.emplace_back("0.5", 0.5);

    // Cross product, workload-major: the submission order IS the
    // document order, whatever --jobs is.
    std::vector<SweepConfig> configs;
    for (const auto &w : workload_names)
        for (SystemKind s : systems)
            for (const auto &[text, value] : ratios)
                configs.push_back(SweepConfig{w, s, text, value});

    SweepPool pool(jobs);
    std::vector<std::string> fragments = pool.run<std::string>(
        configs.size(), [&](std::size_t i) {
            return runOneConfig(configs[i], scale, seed);
        });

    std::string doc;
    doc += "{\n";
    doc += "  \"schema\": \"hopp-sweep-v1\",\n";
    doc += "  \"runs\": [\n";
    for (std::size_t i = 0; i < fragments.size(); ++i) {
        doc += fragments[i];
        doc += i + 1 < fragments.size() ? ",\n" : "\n";
    }
    doc += "  ]\n";
    doc += "}\n";

    if (out_path.empty()) {
        std::fputs(doc.c_str(), stdout);
        return 0;
    }
    return obs::writeFile(out_path, doc) ? 0 : 1;
}
