// hopp-lint: allow-file(*)
/**
 * @file
 * hopp_analyze — cross-translation-unit static analyzer for the HoPP
 * tree. Where hopp_lint checks one file at a time, this tool loads the
 * whole source tree (tools/analysis/model.hh), lexes every file with
 * the shared lexer, and runs passes that need the global view:
 *
 *   include_graph.hh  module layering against tools/analysis/layers.conf,
 *                     rooted include paths, one guard style, and
 *                     include-cycle detection
 *   stat_reset.hh     stat-reset completeness: every registered stat
 *                     backed by a counter member must be reset by its
 *                     component's reset method, and every factory that
 *                     records member-backed stats must addResetter
 *   hotpath.hh        hot-path purity: no allocation / nondeterminism
 *                     sink reachable (via the call graph built from
 *                     symbols.hh + call_graph.hh) from the roots
 *                     declared in tools/analysis/hotpaths.conf
 *
 * Usage:
 *   hopp_analyze [--layers FILE] [--hotpaths FILE] [--json]
 *                [--verbose] ROOT...
 *   hopp_analyze --self-test FIXTURE_DIR
 *
 * With no --layers, ROOT/layers.conf is used when present; with no
 * --hotpaths, ROOT/hotpaths.conf — either file being absent skips
 * that pass (the remaining passes still run). --json prints the
 * findings as a machine-readable array (for CI annotations) instead
 * of the human lines. --self-test treats each immediate subdirectory
 * of FIXTURE_DIR as an independent tree and checks the emitted
 * diagnostics against `hopp-analyze-expect(rule)` markers.
 *
 * Exit codes: 0 clean, 1 violations (or self-test mismatch), 2 usage /
 * IO error.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "analysis/call_graph.hh"
#include "analysis/hotpath.hh"
#include "analysis/include_graph.hh"
#include "analysis/model.hh"
#include "analysis/stat_reset.hh"
#include "analysis/symbols.hh"

namespace
{

namespace fs = std::filesystem;
using namespace hopp::analysis;

struct Options
{
    std::string layersFile;
    std::string hotpathsFile;
    bool selfTest = false;
    bool verbose = false;
    bool json = false;
    std::vector<std::string> roots;
};

/** Analyze one tree; returns its diagnostics, sorted. */
std::vector<Diag>
analyzeRoot(const fs::path &root, const Options &opt)
{
    SourceTree tree = loadTree(root);

    fs::path conf = opt.layersFile.empty() ? root / "layers.conf"
                                           : fs::path(opt.layersFile);
    LayerConfig cfg = loadLayerConfig(conf);
    if (!cfg.error.empty()) {
        std::fprintf(stderr, "hopp_analyze: %s: %s\n",
                     conf.string().c_str(), cfg.error.c_str());
        std::exit(2);
    }
    fs::path hconf_path = opt.hotpathsFile.empty()
                              ? root / "hotpaths.conf"
                              : fs::path(opt.hotpathsFile);
    HotpathConfig hconf = loadHotpathConfig(hconf_path);
    if (!hconf.error.empty()) {
        std::fprintf(stderr, "hopp_analyze: %s\n", hconf.error.c_str());
        std::exit(2);
    }
    if (opt.verbose) {
        std::fprintf(
            stderr,
            "hopp_analyze: %s: %zu files, layers.conf %s, "
            "hotpaths.conf %s\n",
            root.string().c_str(), tree.files.size(),
            cfg.loaded ? "loaded" : "absent (layering skipped)",
            hconf.loaded ? "loaded" : "absent (hotpath skipped)");
    }

    includeGraphPass(tree, cfg);

    SymbolIndex sym = buildSymbolIndex(tree);
    StatResetSummary stats;
    statResetPass(tree, sym.classes, stats);
    if (opt.verbose) {
        std::fprintf(stderr,
                     "hopp_analyze: %d stat factories, %d records "
                     "resolved to members, %d skipped as derived\n",
                     stats.factories, stats.recordsResolved,
                     stats.recordsSkipped);
    }

    if (hconf.loaded) {
        CallGraph cg = buildCallGraph(sym);
        HotpathSummary hp;
        hotpathPass(tree, sym, cg, hconf, hp);
        if (opt.verbose) {
            std::fprintf(
                stderr,
                "hopp_analyze: call graph %zu functions; hotpath "
                "%d/%d roots matched, %d reachable functions, %d "
                "unresolved calls, %d sink sites\n",
                cg.nodes.size(), hp.matchedRoots, hp.roots,
                hp.reachable, hp.unresolved, hp.findings);
            for (std::size_t n = 0; n < cg.nodes.size(); ++n)
                for (const auto &u : cg.unresolved[n])
                    std::fprintf(stderr,
                                 "hopp_analyze:   unresolved in %s: "
                                 "%s\n",
                                 cg.nodes[n].qual().c_str(),
                                 u.c_str());
        }
    }

    std::sort(tree.diags.begin(), tree.diags.end());
    return tree.diags;
}

void
printDiags(const std::vector<Diag> &diags, const std::string &prefix)
{
    for (const auto &d : diags)
        std::printf("%s%s:%d: [%s] %s\n", prefix.c_str(),
                    d.file.c_str(), d.line, d.rule.c_str(),
                    d.message.c_str());
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Machine-readable findings: a JSON array, one object per diagnostic.
 * `path` is the repo-relative location CI can annotate (`file` is
 * root-relative as printed by the human output; hotpath-root diags
 * already carry the config path).
 */
void
printJson(const std::vector<std::pair<std::string, std::vector<Diag>>>
              &by_root)
{
    std::printf("[");
    bool first = true;
    for (const auto &[root, diags] : by_root) {
        for (const auto &d : diags) {
            std::string path =
                d.rule == "hotpath-root" || root == "."
                    ? d.file
                    : root + "/" + d.file;
            std::printf("%s\n  {\"root\": \"%s\", \"file\": \"%s\", "
                        "\"path\": \"%s\", \"line\": %d, "
                        "\"rule\": \"%s\", \"message\": \"%s\"}",
                        first ? "" : ",", jsonEscape(root).c_str(),
                        jsonEscape(d.file).c_str(),
                        jsonEscape(path).c_str(), d.line,
                        d.rule.c_str(),
                        jsonEscape(d.message).c_str());
            first = false;
        }
    }
    std::printf("%s]\n", first ? "" : "\n");
}

/**
 * Self-test over fixture trees: each immediate subdirectory of
 * `fixture_dir` is analyzed on its own (with its own layers.conf /
 * hotpaths.conf, when present) and the diagnostics must match the
 * `hopp-analyze-expect` markers in its files, line by line and rule
 * by rule.
 */
int
runSelfTest(const fs::path &fixture_dir, bool verbose)
{
    if (!fs::is_directory(fixture_dir)) {
        std::fprintf(stderr, "hopp_analyze: --self-test: %s is not a "
                             "directory\n",
                     fixture_dir.string().c_str());
        return 2;
    }
    int expected = 0, emitted = 0, mismatches = 0;
    std::vector<fs::path> subdirs;
    for (const auto &entry : fs::directory_iterator(fixture_dir))
        if (entry.is_directory())
            subdirs.push_back(entry.path());
    std::sort(subdirs.begin(), subdirs.end());

    for (const auto &dir : subdirs) {
        SourceTree tree = loadTree(dir);
        std::set<std::pair<std::string, std::pair<int, std::string>>>
            want;
        for (const auto &f : tree.files)
            for (const auto &[line, rule] : f.directives.expects)
                want.insert({f.rel, {line, rule}});
        expected += static_cast<int>(want.size());

        Options fixture_opt;
        fixture_opt.verbose = verbose;
        auto diags = analyzeRoot(dir, fixture_opt);
        emitted += static_cast<int>(diags.size());
        auto left = want;
        for (const auto &d : diags) {
            std::pair<std::string, std::pair<int, std::string>> key{
                d.file, {d.line, d.rule}};
            if (left.erase(key))
                continue;
            ++mismatches;
            std::printf("SPURIOUS %s/%s:%d: [%s] %s\n",
                        dir.filename().string().c_str(),
                        d.file.c_str(), d.line, d.rule.c_str(),
                        d.message.c_str());
        }
        for (const auto &[file, at] : left) {
            ++mismatches;
            std::printf("MISSING  %s/%s:%d: [%s] expected but not "
                        "emitted\n",
                        dir.filename().string().c_str(), file.c_str(),
                        at.first, at.second.c_str());
        }
    }
    std::printf("hopp_analyze self-test: %d expected, %d emitted, %d "
                "mismatches\n",
                expected, emitted, mismatches);
    return mismatches == 0 ? 0 : 1;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: hopp_analyze [--layers FILE] [--hotpaths "
                 "FILE] [--json] [--verbose] ROOT...\n"
                 "       hopp_analyze --self-test FIXTURE_DIR\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--layers" && i + 1 < argc) {
            opt.layersFile = argv[++i];
        } else if (arg == "--hotpaths" && i + 1 < argc) {
            opt.hotpathsFile = argv[++i];
        } else if (arg == "--self-test") {
            opt.selfTest = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else {
            opt.roots.push_back(arg);
        }
    }
    if (opt.roots.empty())
        return usage();

    if (opt.selfTest) {
        if (opt.roots.size() != 1)
            return usage();
        return runSelfTest(opt.roots[0], opt.verbose);
    }

    int total = 0;
    std::vector<std::pair<std::string, std::vector<Diag>>> by_root;
    for (const auto &root : opt.roots) {
        if (!fs::exists(root)) {
            std::fprintf(stderr, "hopp_analyze: %s: no such path\n",
                         root.c_str());
            return 2;
        }
        auto diags = analyzeRoot(root, opt);
        if (!opt.json)
            printDiags(diags, opt.roots.size() > 1 ? root + ": " : "");
        total += static_cast<int>(diags.size());
        by_root.emplace_back(root, std::move(diags));
    }
    if (opt.json)
        printJson(by_root);
    if (total)
        std::fprintf(stderr, "hopp_analyze: %d violation%s\n", total,
                     total == 1 ? "" : "s");
    return total == 0 ? 0 : 1;
}
