/**
 * @file
 * hopp-report: aggregate one run's observability artifacts into a
 * single ranked report, with baseline diffing for CI.
 *
 *   hopp-report [--bench FILE] [--baseline FILE]
 *               [--fail-on-regress PCT] [--stats FILE]
 *               [--metrics FILE] [--profile FILE]
 *               [--out FILE.md] [--json FILE.json] [--github]
 *               [--top N]
 *
 * Inputs (all optional, at least one required):
 *   --bench FILE     bench_simcore output (BENCH_simcore.json)
 *   --baseline FILE  a previous bench JSON to diff against
 *   --stats FILE     hopp-run --stats-json output
 *   --metrics FILE   hopp-run --metrics-out CSV
 *   --profile FILE   hopp-run --profile-out / bench self-profile JSON
 *
 * Outputs:
 *   markdown report to stdout (or --out FILE.md), optional machine
 *   summary to --json FILE.json, and with --github one
 *   `::warning` annotation per regression for Actions logs.
 *
 * Regression gate: --fail-on-regress 10% exits non-zero when any
 * direction-aware bench metric moved more than the threshold the
 * wrong way vs the baseline. Direction comes from the metric name:
 * throughput-like suffixes (_per_sec, speedup, hit_rate, accuracy,
 * coverage, fraction, compression_ratio, identical_results — booleans
 * diff as 0/1, so a fidelity flag flipping false regresses by 100%)
 * must not drop; cost-like suffixes (wall_sec, wall_ns_per_sim_ms,
 * miss_rate, bytes_per_record) must not rise; anything else (counts,
 * configs) is reported but never gates.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace json = hopp::obs::json;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--bench FILE] [--baseline FILE]\n"
        "          [--fail-on-regress PCT] [--stats FILE]\n"
        "          [--metrics FILE] [--profile FILE]\n"
        "          [--out FILE.md] [--json FILE.json] [--github]\n"
        "          [--top N]\n",
        argv0);
}

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        std::fprintf(stderr, "hopp-report: cannot open '%s'\n",
                     path.c_str());
        return false;
    }
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "hopp-report: cannot write '%s'\n",
                     path.c_str());
        return false;
    }
    std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return n == content.size();
}

bool
loadJson(const std::string &path, json::Value &out)
{
    std::string text;
    if (!readFile(path, text))
        return false;
    std::string err;
    if (!json::parse(text, out, &err)) {
        std::fprintf(stderr, "hopp-report: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    return true;
}

/** One numeric leaf of a JSON document, addressed by dotted path. */
struct Leaf
{
    std::string path;
    double value = 0.0;
};

void
flatten(const json::Value &v, const std::string &prefix,
        std::vector<Leaf> &out)
{
    if (v.isNumber()) {
        out.push_back({prefix, v.number()});
        return;
    }
    if (v.isBool()) {
        // Booleans diff as 0/1 so a flipped acceptance flag (e.g. a
        // replay's identical_results going false) shows up as a 100%
        // move instead of silently vanishing from the report.
        out.push_back({prefix, v.boolean() ? 1.0 : 0.0});
        return;
    }
    if (v.isObject()) {
        for (const auto &[k, m] : v.members())
            flatten(m, prefix.empty() ? k : prefix + "." + k, out);
        return;
    }
    if (v.isArray()) {
        for (std::size_t i = 0; i < v.items().size(); ++i)
            flatten(v.items()[i], prefix + "[" + std::to_string(i) + "]",
                    out);
    }
    // Strings/null carry no comparable magnitude.
}

bool
endsWith(const std::string &s, const char *suffix)
{
    std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** +1: larger is better; -1: smaller is better; 0: don't gate. */
int
direction(const std::string &metric)
{
    if (endsWith(metric, "wall_sec") ||
        endsWith(metric, "wall_ns_per_sim_ms") ||
        endsWith(metric, "miss_rate") ||
        endsWith(metric, "bytes_per_record"))
        return -1;
    if (endsWith(metric, "_per_sec") || endsWith(metric, "speedup") ||
        endsWith(metric, "hit_rate") || endsWith(metric, "accuracy") ||
        endsWith(metric, "coverage") || endsWith(metric, "fraction") ||
        endsWith(metric, "compression_ratio") ||
        endsWith(metric, "identical_results"))
        return 1;
    return 0;
}

/** One bench metric compared against the baseline. */
struct DiffRow
{
    std::string metric;
    double current = 0.0;
    double baseline = 0.0;
    double deltaPct = 0.0; //!< signed raw change, percent of baseline
    bool hasBaseline = false;
    int dir = 0;
    bool regressed = false; //!< moved > threshold the wrong way
    bool improved = false;  //!< moved > threshold the right way
};

std::string
fmtNum(double v)
{
    char buf[64];
    // %.6g keeps counts exact and rates readable, deterministically.
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

std::string
fmtPct(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%+.2f%%", v);
    return buf;
}

struct Options
{
    std::string bench, baseline, stats, metrics, profile;
    std::string outMd, outJson;
    double regressPct = -1.0; //!< <0: report only, never fail
    bool github = false;
    unsigned top = 12;
};

/** metrics CSV column summary. */
struct ColumnSummary
{
    std::string name;
    double last = 0.0, min = 0.0, max = 0.0;
    std::size_t samples = 0;
};

bool
summarizeCsv(const std::string &text, std::vector<ColumnSummary> &out)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        if (end > start)
            lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    if (lines.empty())
        return false;
    // Header row names the columns.
    std::size_t col_start = 0;
    const std::string &hdr = lines.front();
    while (col_start <= hdr.size()) {
        std::size_t c = hdr.find(',', col_start);
        if (c == std::string::npos)
            c = hdr.size();
        ColumnSummary cs;
        cs.name = hdr.substr(col_start, c - col_start);
        out.push_back(std::move(cs));
        col_start = c + 1;
    }
    for (std::size_t r = 1; r < lines.size(); ++r) {
        std::size_t pos = 0;
        for (ColumnSummary &cs : out) {
            std::size_t c = lines[r].find(',', pos);
            if (c == std::string::npos)
                c = lines[r].size();
            double v = std::strtod(lines[r].c_str() + pos, nullptr);
            if (cs.samples == 0) {
                cs.min = cs.max = v;
            } else {
                cs.min = std::min(cs.min, v);
                cs.max = std::max(cs.max, v);
            }
            cs.last = v;
            ++cs.samples;
            pos = c + 1;
            if (c == lines[r].size())
                break;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "hopp-report: %s needs a value\n",
                             what);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--bench") {
            opt.bench = need("--bench");
        } else if (arg == "--baseline") {
            opt.baseline = need("--baseline");
        } else if (arg == "--stats") {
            opt.stats = need("--stats");
        } else if (arg == "--metrics") {
            opt.metrics = need("--metrics");
        } else if (arg == "--profile") {
            opt.profile = need("--profile");
        } else if (arg == "--out") {
            opt.outMd = need("--out");
        } else if (arg == "--json") {
            opt.outJson = need("--json");
        } else if (arg == "--fail-on-regress") {
            std::string pct = need("--fail-on-regress");
            opt.regressPct = std::strtod(pct.c_str(), nullptr);
            if (opt.regressPct <= 0.0) {
                std::fprintf(stderr,
                             "hopp-report: bad --fail-on-regress '%s'\n",
                             pct.c_str());
                return 2;
            }
        } else if (arg == "--github") {
            opt.github = true;
        } else if (arg == "--top") {
            opt.top = static_cast<unsigned>(
                std::strtoul(need("--top"), nullptr, 10));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "hopp-report: unknown argument '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (opt.bench.empty() && opt.stats.empty() && opt.metrics.empty() &&
        opt.profile.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (!opt.baseline.empty() && opt.bench.empty()) {
        std::fprintf(stderr,
                     "hopp-report: --baseline needs --bench to diff\n");
        return 2;
    }

    // The gate threshold: when --fail-on-regress is absent, diff with
    // a 10% marker threshold but never fail.
    const double thr = opt.regressPct > 0.0 ? opt.regressPct : 10.0;

    std::string md;
    md += "# HoPP performance report\n";

    // ---- Bench + baseline diff ------------------------------------
    std::vector<DiffRow> rows;
    bool haveBaseline = false;
    if (!opt.bench.empty()) {
        json::Value bench;
        if (!loadJson(opt.bench, bench))
            return 2;
        std::vector<Leaf> cur;
        flatten(bench, "", cur);

        std::vector<Leaf> base;
        if (!opt.baseline.empty()) {
            json::Value bl;
            if (!loadJson(opt.baseline, bl))
                return 2;
            flatten(bl, "", base);
            haveBaseline = true;
        }

        for (const Leaf &l : cur) {
            DiffRow r;
            r.metric = l.path;
            r.current = l.value;
            r.dir = direction(l.path);
            for (const Leaf &b : base) {
                if (b.path == l.path) {
                    r.baseline = b.value;
                    r.hasBaseline = true;
                    break;
                }
            }
            if (r.hasBaseline && r.baseline != 0.0) {
                r.deltaPct = (r.current - r.baseline) /
                             std::fabs(r.baseline) * 100.0;
                if (r.dir > 0) {
                    r.regressed = r.deltaPct < -thr;
                    r.improved = r.deltaPct > thr;
                } else if (r.dir < 0) {
                    r.regressed = r.deltaPct > thr;
                    r.improved = r.deltaPct < -thr;
                }
            }
            rows.push_back(std::move(r));
        }

        // Ranked: regressions first, then by |delta|; undiffed rows
        // keep document order at the bottom.
        std::stable_sort(rows.begin(), rows.end(),
                         [](const DiffRow &a, const DiffRow &b) {
                             if (a.regressed != b.regressed)
                                 return a.regressed;
                             if (a.hasBaseline != b.hasBaseline)
                                 return a.hasBaseline;
                             return std::fabs(a.deltaPct) >
                                    std::fabs(b.deltaPct);
                         });

        md += "\n## Bench: " + opt.bench;
        if (haveBaseline)
            md += " vs baseline " + opt.baseline;
        md += "\n\n";
        if (haveBaseline)
            md += "| metric | current | baseline | delta | status |\n"
                  "|---|---:|---:|---:|---|\n";
        else
            md += "| metric | current |\n|---|---:|\n";
        for (const DiffRow &r : rows) {
            if (haveBaseline) {
                const char *status =
                    !r.hasBaseline        ? "new"
                    : r.regressed         ? "**REGRESSED**"
                    : r.improved          ? "improved"
                    : r.dir == 0          ? "info"
                                          : "ok";
                md += "| " + r.metric + " | " + fmtNum(r.current) +
                      " | " +
                      (r.hasBaseline ? fmtNum(r.baseline)
                                     : std::string("-")) +
                      " | " +
                      (r.hasBaseline ? fmtPct(r.deltaPct)
                                     : std::string("-")) +
                      " | " + status + " |\n";
            } else {
                md += "| " + r.metric + " | " + fmtNum(r.current) +
                      " |\n";
            }
        }
    }

    // ---- Self-profile ---------------------------------------------
    if (!opt.profile.empty()) {
        json::Value prof;
        if (!loadJson(opt.profile, prof))
            return 2;
        md += "\n## Self-profile: " + opt.profile + "\n\n";
        const json::Value *wall = prof.find("wall_ns");
        const json::Value *frac = prof.find("attributed_fraction");
        if (wall != nullptr && frac != nullptr) {
            char line[160];
            std::snprintf(line, sizeof line,
                          "wall %.3f ms, %.1f%% attributed to zones\n\n",
                          wall->number() / 1e6, frac->number() * 100.0);
            md += line;
        }
        const json::Value *zones = prof.find("zones");
        if (zones != nullptr && zones->isArray()) {
            // Rank zones by self time, largest first.
            std::vector<const json::Value *> zs;
            for (const json::Value &z : zones->items())
                zs.push_back(&z);
            auto selfNs = [](const json::Value *z) {
                const json::Value *s = z->find("self_ns");
                return s != nullptr ? s->number() : 0.0;
            };
            std::stable_sort(zs.begin(), zs.end(),
                             [&](const json::Value *a,
                                 const json::Value *b) {
                                 return selfNs(a) > selfNs(b);
                             });
            md += "| zone | self ms | total ms | self % | count |\n"
                  "|---|---:|---:|---:|---:|\n";
            const double wallNs =
                wall != nullptr && wall->number() > 0.0 ? wall->number()
                                                        : 0.0;
            unsigned listed = 0;
            for (const json::Value *z : zs) {
                if (listed++ >= opt.top)
                    break;
                const json::Value *name = z->find("zone");
                const json::Value *total = z->find("total_ns");
                const json::Value *count = z->find("count");
                if (name == nullptr || total == nullptr)
                    continue;
                char line[256];
                std::snprintf(
                    line, sizeof line,
                    "| %s | %.3f | %.3f | %.1f%% | %.0f |\n",
                    name->str().c_str(), selfNs(z) / 1e6,
                    total->number() / 1e6,
                    wallNs > 0.0 ? selfNs(z) / wallNs * 100.0 : 0.0,
                    count != nullptr ? count->number() : 0.0);
                md += line;
            }
        }
    }

    // ---- Stats ----------------------------------------------------
    if (!opt.stats.empty()) {
        json::Value stats;
        if (!loadJson(opt.stats, stats))
            return 2;
        std::vector<Leaf> leaves;
        flatten(stats, "", leaves);
        md += "\n## Stats: " + opt.stats + "\n\n";
        md += "| counter | value |\n|---|---:|\n";
        for (const Leaf &l : leaves)
            md += "| " + l.path + " | " + fmtNum(l.value) + " |\n";
    }

    // ---- Metrics CSV ----------------------------------------------
    if (!opt.metrics.empty()) {
        std::string text;
        if (!readFile(opt.metrics, text))
            return 2;
        std::vector<ColumnSummary> cols;
        if (summarizeCsv(text, cols)) {
            md += "\n## Metrics: " + opt.metrics + "\n\n";
            md += "| gauge | last | min | max | samples |\n"
                  "|---|---:|---:|---:|---:|\n";
            for (const ColumnSummary &c : cols) {
                md += "| " + c.name + " | " + fmtNum(c.last) + " | " +
                      fmtNum(c.min) + " | " + fmtNum(c.max) + " | " +
                      std::to_string(c.samples) + " |\n";
            }
        }
    }

    // ---- Verdict --------------------------------------------------
    std::vector<const DiffRow *> regressions;
    for (const DiffRow &r : rows) {
        if (r.regressed)
            regressions.push_back(&r);
    }
    if (haveBaseline) {
        char line[128];
        std::snprintf(line, sizeof line,
                      "\n%zu regression(s) beyond %.1f%%.\n",
                      regressions.size(), thr);
        md += line;
    }

    if (opt.github) {
        for (const DiffRow *r : regressions) {
            std::printf("::warning title=perf-regression::%s moved "
                        "%s vs baseline (current %s, baseline %s)\n",
                        r->metric.c_str(), fmtPct(r->deltaPct).c_str(),
                        fmtNum(r->current).c_str(),
                        fmtNum(r->baseline).c_str());
        }
    }

    if (!opt.outJson.empty()) {
        std::string js;
        js += "{\n  \"schema\": \"hopp-report-v1\",\n";
        char line[256];
        std::snprintf(line, sizeof line,
                      "  \"threshold_pct\": %.2f,\n"
                      "  \"regressions\": [\n",
                      thr);
        js += line;
        for (std::size_t i = 0; i < regressions.size(); ++i) {
            const DiffRow *r = regressions[i];
            std::snprintf(line, sizeof line,
                          "    {\"metric\": \"%s\", \"current\": %.10g, "
                          "\"baseline\": %.10g, \"delta_pct\": %.4f}%s\n",
                          r->metric.c_str(), r->current, r->baseline,
                          r->deltaPct,
                          i + 1 < regressions.size() ? "," : "");
            js += line;
        }
        js += "  ]\n}\n";
        if (!writeFile(opt.outJson, js))
            return 2;
    }

    if (!opt.outMd.empty()) {
        if (!writeFile(opt.outMd, md))
            return 2;
    } else {
        std::fputs(md.c_str(), stdout);
    }

    if (opt.regressPct > 0.0 && !regressions.empty()) {
        std::fprintf(stderr,
                     "hopp-report: %zu metric(s) regressed beyond "
                     "%.1f%%\n",
                     regressions.size(), opt.regressPct);
        return 1;
    }
    return 0;
}
