/**
 * @file
 * hopp-run: command-line driver for one-off experiments.
 *
 *   hopp-run [--workload NAME]... [--system NAME] [--ratio F]
 *            [--scale F] [--iterations F] [--depth N] [--tiers MASK]
 *            [--channels N] [--no-interleave] [--batch] [--markov]
 *            [--eviction-advisor] [--seed N] [--dump-hopp] [--list]
 *            [--trace-out FILE] [--trace-jsonl FILE]
 *            [--metrics-out FILE] [--metrics-period NS]
 *            [--stats-json FILE] [--profile-out FILE]
 *            [--blackbox-out FILE] [--inject-corruption N]
 *            [--record-trace FILE] [--mc-stats-json FILE]
 *
 * Examples:
 *   hopp-run --workload npb-mg --system hopp --ratio 0.5 --dump-hopp
 *   hopp-run --workload kmeans-omp --workload quicksort --system hopp
 *   hopp-run --workload kmeans-omp --trace-out run.json  # -> Perfetto
 *   hopp-run --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "hopp/hopp_system.hh"
#include "obs/profiler.hh"
#include "obs/trace_writer.hh"
#include "runner/machine.hh"
#include "runner/stats_report.hh"
#include "stats/table.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --workload NAME     workload to run (repeatable; default"
        " kmeans-omp)\n"
        "  --system NAME       local | no-prefetch | fastswap | leap |"
        " vma | depth-n | hopp | hopp-only (default hopp)\n"
        "  --ratio F           local memory / footprint (default 0.5)\n"
        "  --scale F           footprint scale factor (default 1.0)\n"
        "  --iterations F      iteration scale factor (default 1.0)\n"
        "  --depth N           Depth-N depth (default 32)\n"
        "  --tiers MASK        tier bitmask: 1=SSP 2=LSP 4=RSP 8=Markov"
        " (default 7)\n"
        "  --channels N        memory channels (default 1)\n"
        "  --no-interleave     per-page channel layout\n"
        "  --batch             enable huge-batch prefetching\n"
        "  --markov            shorthand for --tiers 15\n"
        "  --eviction-advisor  enable trace-informed reclaim advice\n"
        "  --no-tlb            disable the host-side software TLB (the"
        " output must not change)\n"
        "  --no-batch          drive accesses one at a time instead of"
        " in blocks (the output must not change)\n"
        "  --check N           run the invariant validators every N"
        " events (0 = off)\n"
        "  --seed N            workload seed (default 42)\n"
        "  --dump-hopp         print HoPP component statistics\n"
        "  --stats             print the full component stats dump"
        " (stderr)\n"
        "  --stats-json FILE   write the stats dump as JSON to FILE\n"
        "  --trace-out FILE    record a Chrome trace_event JSON trace"
        " (open in Perfetto)\n"
        "  --trace-jsonl FILE  record the trace as one-event-per-line"
        " JSONL\n"
        "  --metrics-out FILE  write periodic gauge samples as CSV\n"
        "  --metrics-period NS sampling period in simulated ns"
        " (default 100000)\n"
        "  --profile-out FILE  enable the host self-profiler and write"
        " its JSON report (sim output is unaffected)\n"
        "  --blackbox-out FILE dump the black-box event ring as JSONL"
        " after the run\n"
        "  --inject-corruption N  test hook: corrupt LLC accounting"
        " after N events so --check fails and dumps forensics\n"
        "  --record-trace FILE record the MC-side input stream in the"
        " replay format (feed to hopp-replay)\n"
        "  --mc-stats-json FILE  write the MC-side pipeline stats"
        " (the replay fidelity contract document)\n"
        "  --list              list workloads and exit\n",
        argv0);
}

SystemKind
parseSystem(const std::string &name)
{
    for (auto kind : {SystemKind::Local, SystemKind::NoPrefetch,
                      SystemKind::Fastswap, SystemKind::Leap,
                      SystemKind::Vma, SystemKind::DepthN,
                      SystemKind::Hopp, SystemKind::HoppOnly}) {
        if (name == systemName(kind))
            return kind;
    }
    hopp_fatal("unknown system '%s'", name.c_str());
}

void
dumpHopp(core::HoppSystem &h)
{
    using core::Tier;
    auto hpd = h.hpdTotals();
    std::printf("\n-- HoPP internals --\n");
    std::printf("HPD: %llu reads -> %llu hot pages (%.3f%%),"
                " %llu suppressed, %llu evictions\n",
                static_cast<unsigned long long>(hpd.reads),
                static_cast<unsigned long long>(hpd.hotPages),
                100.0 * hpd.hotRatio(),
                static_cast<unsigned long long>(hpd.suppressed),
                static_cast<unsigned long long>(hpd.evictions));
    std::printf("RPT cache: hit rate %.4f (%llu lookups), %llu"
                " updates, %llu invalidates; DRAM RPT %zu entries"
                " (%llu bytes)\n",
                h.rptCache().stats().hitRate(),
                static_cast<unsigned long long>(
                    h.rptCache().stats().lookups),
                static_cast<unsigned long long>(
                    h.rptCache().stats().updates),
                static_cast<unsigned long long>(
                    h.rptCache().stats().invalidates),
                h.rpt().size(),
                static_cast<unsigned long long>(h.rpt().bytes()));
    std::printf("STT: %llu fed, %llu streams seeded, %llu evicted\n",
                static_cast<unsigned long long>(h.stt().stats().fed),
                static_cast<unsigned long long>(
                    h.stt().stats().seeded),
                static_cast<unsigned long long>(
                    h.stt().stats().evicted));
    const char *tier_names[] = {"SSP", "LSP", "RSP", "Markov"};
    for (unsigned t = 0; t < core::tierCount; ++t) {
        const auto &ts = h.exec().tierStats(static_cast<Tier>(t));
        if (ts.requested == 0)
            continue;
        std::printf("%-6s: %llu requested, %llu issued, %llu hits,"
                    " %llu evicted unused (accuracy %.3f)\n",
                    tier_names[t],
                    static_cast<unsigned long long>(ts.requested),
                    static_cast<unsigned long long>(ts.issued),
                    static_cast<unsigned long long>(ts.hits),
                    static_cast<unsigned long long>(ts.evictedUnused),
                    ts.accuracy());
    }
    std::printf("policy: %llu feedbacks (%llu up, %llu down);"
                " exec dedup %llu; ring drops %llu\n",
                static_cast<unsigned long long>(
                    h.policy().stats().feedbacks),
                static_cast<unsigned long long>(
                    h.policy().stats().increases),
                static_cast<unsigned long long>(
                    h.policy().stats().decreases),
                static_cast<unsigned long long>(h.exec().deduped()),
                static_cast<unsigned long long>(h.ring().dropped()));
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> workload_names;
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    workloads::WorkloadScale scale;
    std::uint64_t seed = 42;
    bool dump_hopp = false;
    bool dump_stats = false;
    std::string trace_out, trace_jsonl, metrics_out, stats_json;
    std::string profile_out, blackbox_out, mc_stats_json;
    Duration metrics_period = 100'000; // 100 us of simulated time

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            usage(argv[0]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--workload") {
            workload_names.push_back(need(i));
        } else if (arg == "--system") {
            cfg.system = parseSystem(need(i));
        } else if (arg == "--ratio") {
            cfg.localMemRatio = std::atof(need(i));
        } else if (arg == "--scale") {
            scale.footprint = std::atof(need(i));
        } else if (arg == "--iterations") {
            scale.iterations = std::atof(need(i));
        } else if (arg == "--depth") {
            cfg.depth = static_cast<unsigned>(std::atoi(need(i)));
        } else if (arg == "--tiers") {
            cfg.hopp.tierMask =
                static_cast<unsigned>(std::atoi(need(i)));
        } else if (arg == "--channels") {
            cfg.hopp.channels =
                static_cast<unsigned>(std::atoi(need(i)));
        } else if (arg == "--no-interleave") {
            cfg.hopp.channelInterleaved = false;
        } else if (arg == "--batch") {
            cfg.hopp.batch.enabled = true;
        } else if (arg == "--markov") {
            cfg.hopp.tierMask |= core::tiers::markov;
        } else if (arg == "--eviction-advisor") {
            cfg.hopp.evictionAdvisor = true;
        } else if (arg == "--no-tlb") {
            cfg.tlb = false;
        } else if (arg == "--no-batch") {
            cfg.batch = false;
        } else if (arg == "--check") {
            cfg.checkInterval =
                static_cast<std::uint64_t>(std::atoll(need(i)));
        } else if (arg == "--seed") {
            seed = static_cast<std::uint64_t>(std::atoll(need(i)));
        } else if (arg == "--dump-hopp") {
            dump_hopp = true;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--stats-json") {
            stats_json = need(i);
        } else if (arg == "--trace-out") {
            trace_out = need(i);
        } else if (arg == "--trace-jsonl") {
            trace_jsonl = need(i);
        } else if (arg == "--metrics-out") {
            metrics_out = need(i);
        } else if (arg == "--profile-out") {
            profile_out = need(i);
        } else if (arg == "--blackbox-out") {
            blackbox_out = need(i);
        } else if (arg == "--record-trace") {
            cfg.recordTracePath = need(i);
        } else if (arg == "--mc-stats-json") {
            mc_stats_json = need(i);
        } else if (arg == "--inject-corruption") {
            cfg.corruptAfterEvents =
                static_cast<std::uint64_t>(std::atoll(need(i)));
        } else if (arg == "--metrics-period") {
            metrics_period =
                static_cast<Duration>(std::atoll(need(i)));
        } else if (arg == "--list") {
            for (const auto &n : workloads::allWorkloadNames())
                std::printf("%s\n", n.c_str());
            std::printf("microbench\nlinkedlist\n");
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (workload_names.empty())
        workload_names.push_back("kmeans-omp");
    if (!trace_out.empty() || !trace_jsonl.empty())
        cfg.trace = true;
    if (!metrics_out.empty())
        cfg.metricsPeriod = metrics_period;
    // Host-side only: profiling changes no simulated behaviour, so
    // enabling it must leave every sim artifact byte-identical (the
    // profiler_on_off ctest holds us to that).
    if (!profile_out.empty())
        obs::prof::enable(true);

    Machine machine(cfg);
    for (std::size_t i = 0; i < workload_names.size(); ++i) {
        machine.addWorkload(workloads::makeWorkload(
            workload_names[i], scale, seed + i + 1));
    }
    RunResult r = machine.run();

    stats::Table table("hopp-run results");
    table.header({"app", "completion (ms)", "accesses", "faults"});
    for (const auto &app : r.apps) {
        table.row({app.name,
                   stats::Table::num(
                       toDouble(app.completion) / 1e6, 3),
                   std::to_string(app.accesses), ""});
    }
    table.print();

    std::printf("system=%s ratio=%.2f makespan=%.3f ms\n",
                systemName(cfg.system), cfg.localMemRatio,
                toDouble(r.makespan) / 1e6);
    std::printf("faults: %llu total (%llu cold, %llu remote, %llu"
                " swapcache hits, %llu inflight waits)\n",
                static_cast<unsigned long long>(r.vms.faults()),
                static_cast<unsigned long long>(r.vms.coldFaults),
                static_cast<unsigned long long>(r.vms.remoteFaults),
                static_cast<unsigned long long>(r.vms.swapCacheHits),
                static_cast<unsigned long long>(r.vms.inflightWaits));
    std::printf("prefetch: accuracy %.3f (system %.3f), coverage"
                " %.3f, DRAM-hit coverage %.3f\n",
                r.accuracy, r.systemAccuracy, r.coverage,
                r.dramHitCoverage);
    std::printf("remote: %llu demand reads, %llu prefetch reads,"
                " %llu writebacks\n",
                static_cast<unsigned long long>(r.demandRemote),
                static_cast<unsigned long long>(r.prefetchReads),
                static_cast<unsigned long long>(r.writebacks));

    if (dump_hopp) {
        if (auto *h = machine.hoppSystem())
            dumpHopp(*h);
        else
            std::puts("(no HoPP system in this configuration)");
    }
    if (dump_stats) {
        // stderr, so the table/summary lines above stay grep-stable
        // on stdout and the dump never interleaves with them.
        std::fputs("\n-- component statistics --\n", stderr);
        std::fputs(statsReport(machine).c_str(), stderr);
    }
    bool io_ok = true;
    if (!stats_json.empty())
        io_ok &= obs::writeFile(stats_json, statsJson(machine));
    if (!trace_out.empty()) {
        io_ok &= obs::writeFile(trace_out,
                                obs::toChromeJson(machine.tracer()));
    }
    if (!trace_jsonl.empty()) {
        io_ok &= obs::writeFile(trace_jsonl,
                                obs::toJsonl(machine.tracer()));
    }
    if (!metrics_out.empty()) {
        io_ok &= obs::writeFile(metrics_out,
                                machine.metricsSampler()->toCsv());
    }
    if (!profile_out.empty()) {
        io_ok &= obs::writeFile(profile_out,
                                obs::prof::toJson(obs::prof::collect()));
    }
    if (!blackbox_out.empty())
        io_ok &= machine.dumpForensics(blackbox_out);
    if (!mc_stats_json.empty()) {
        if (auto *h = machine.hoppSystem()) {
            io_ok &= obs::writeFile(
                mc_stats_json, core::mcSideStatsJson(h->pipeline()));
        } else {
            std::fprintf(stderr, "--mc-stats-json needs a hopp/"
                                 "hopp-only system\n");
            io_ok = false;
        }
    }
    if (!cfg.recordTracePath.empty() && !machine.traceRecordOk()) {
        std::fprintf(stderr, "trace recording to '%s' failed\n",
                     cfg.recordTracePath.c_str());
        io_ok = false;
    }
    return io_ok ? 0 : 1;
}
