/**
 * @file
 * Datacenter consolidation scenario (the paper's Fig. 15 setting):
 * three applications share one compute node, each cgroup-limited to
 * half its footprint, with remote memory backing the rest. Because
 * the hot-page trace carries PIDs, HoPP trains prefetchers per
 * application even under co-location — fault-driven prefetchers see
 * one interleaved fault stream instead.
 */

#include <cstdio>

#include "runner/machine.hh"
#include "stats/table.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

RunResult
runTrio(SystemKind system)
{
    MachineConfig cfg;
    cfg.system = system;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("kmeans-omp", {}, 1));
    m.addWorkload(workloads::makeWorkload("npb-cg", {}, 2));
    m.addWorkload(workloads::makeWorkload("quicksort", {}, 3));
    return m.run();
}

} // namespace

int
main()
{
    auto fs = runTrio(SystemKind::Fastswap);
    auto leap = runTrio(SystemKind::Leap);
    auto hp = runTrio(SystemKind::Hopp);

    stats::Table table(
        "Three co-located applications @50% local memory each");
    table.header({"App", "Fastswap (ms)", "Leap (ms)", "HoPP (ms)",
                  "HoPP vs FS"});
    for (const auto &app : fs.apps) {
        double ct_fs = toDouble(app.completion) / 1e6;
        double ct_leap =
            toDouble(leap.completionOf(app.name)) / 1e6;
        double ct_hp =
            toDouble(hp.completionOf(app.name)) / 1e6;
        table.row({app.name, stats::Table::num(ct_fs, 2),
                   stats::Table::num(ct_leap, 2),
                   stats::Table::num(ct_hp, 2),
                   stats::Table::num(ct_fs / ct_hp, 3) + "x"});
    }
    table.print();

    std::printf("Total faults: fastswap %llu, leap %llu, hopp %llu"
                " (%llu of hopp's hits were fault-free DRAM hits)\n",
                static_cast<unsigned long long>(fs.vms.faults()),
                static_cast<unsigned long long>(leap.vms.faults()),
                static_cast<unsigned long long>(hp.vms.faults()),
                static_cast<unsigned long long>(hp.vms.injectedHits));
    std::puts("\nWhy HoPP wins under co-location: the interleaved"
              " fault stream confuses history-based prefetchers, but"
              " the MC's hot-page trace is tagged with PIDs, so the"
              " STT clusters every application's streams separately"
              " (§VI-B, Fig. 15).");
    return 0;
}
