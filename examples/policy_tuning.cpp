/**
 * @file
 * Policy-engine tuning (§III-E): sweep the prefetch-offset and
 * intensity knobs on the §VI-E microbenchmark and watch timeliness
 * turn into completion time. Demonstrates how a deployment would
 * calibrate HoPP for its own network latency envelope.
 */

#include <cstdio>

#include "runner/machine.hh"
#include "stats/table.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

RunResult
runWith(const core::PolicyConfig &policy)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    cfg.hopp.policy = policy;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("microbench", {}));
    return m.run();
}

} // namespace

int
main()
{
    Tick local =
        runOne("microbench", SystemKind::Local, 1.0, {}).makespan;

    stats::Table fixed("Fixed prefetch offsets (adaptation off)");
    fixed.header({"offset i", "CT (ms)", "NormPerf", "Accuracy"});
    for (double i : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 512.0}) {
        core::PolicyConfig p;
        p.adaptive = false;
        p.offsetInit = i;
        p.offsetMax = i;
        auto r = runWith(p);
        fixed.row({stats::Table::num(i, 0),
                   stats::Table::num(
                       toDouble(r.makespan) / 1e6, 2),
                   stats::Table::num(
                       normalizedPerformance(local, r.makespan), 3),
                   stats::Table::num(r.accuracy, 3)});
    }
    fixed.print();

    stats::Table adaptive("Adaptive offset with varying intensity");
    adaptive.header({"intensity", "CT (ms)", "NormPerf"});
    for (unsigned intensity : {1u, 2u, 4u}) {
        core::PolicyConfig p;
        p.intensity = intensity;
        auto r = runWith(p);
        adaptive.row({std::to_string(intensity),
                      stats::Table::num(
                          toDouble(r.makespan) / 1e6, 2),
                      stats::Table::num(
                          normalizedPerformance(local, r.makespan),
                          3)});
    }
    adaptive.print();

    std::puts("Too small an offset arrives late (stalls on in-flight"
              " reads); too large wastes local memory and misses the"
              " stream end. The adaptive policy finds the window"
              " automatically by steering measured timeliness into"
              " [T_min, T_max].");
    return 0;
}
