/**
 * @file
 * Domain scenario: a GraphX-style analytics job (phased footprint,
 * gather-heavy, JVM noise) on disaggregated memory — the hardest class
 * in the paper's evaluation. Runs every system side by side, then
 * opens the HoPP machine up: which prefetch tiers fired, how the
 * policy engine adapted offsets, and what the hardware modules cost.
 */

#include <cstdio>

#include "runner/machine.hh"
#include "stats/table.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    const std::string app = "graphx-pr";
    const double ratio = 0.33; // 11 GB of 33 GB in the paper
    workloads::WorkloadScale scale;

    Tick local = runOne(app, SystemKind::Local, 1.0, scale).makespan;

    stats::Table table("PageRank on disaggregated memory (33% local)");
    table.header({"System", "CT (ms)", "NormPerf", "Accuracy",
                  "Coverage", "Faults"});
    for (auto sys : {SystemKind::NoPrefetch, SystemKind::Fastswap,
                     SystemKind::Leap, SystemKind::Hopp}) {
        auto r = runOne(app, sys, ratio, scale);
        table.row({systemName(sys),
                   stats::Table::num(
                       toDouble(r.makespan) / 1e6, 2),
                   stats::Table::num(
                       normalizedPerformance(local, r.makespan), 3),
                   stats::Table::num(r.accuracy, 3),
                   stats::Table::num(r.coverage, 3),
                   std::to_string(r.vms.faults())});
    }
    table.print();
    std::puts("Note: HoPP halves the fault count outright (early PTE"
              " injection). Leap posts a strong time here because this"
              " job's fault stream is stride-friendly; under genuinely"
              " interleaved streams its global stride detector locks"
              " onto cross-stream garbage and collapses — see"
              " bench_fig22_sensitivity.\n");

    // Re-run HoPP keeping the machine alive to inspect internals.
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = ratio;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload(app, scale));
    m.run();
    auto *h = m.hoppSystem();

    std::printf("hardware:  %llu LLC-miss reads -> %llu hot pages"
                " (%.2f%%), RPT cache hit rate %.3f\n",
                static_cast<unsigned long long>(
                    h->hpd().stats().reads),
                static_cast<unsigned long long>(
                    h->hpd().stats().hotPages),
                100.0 * h->hpd().stats().hotRatio(),
                h->rptCache().stats().hitRate());
    std::printf("training:  %llu streams seeded, %llu predictions"
                " (SSP %llu, LSP %llu, RSP %llu)\n",
                static_cast<unsigned long long>(
                    h->stt().stats().seeded),
                static_cast<unsigned long long>(
                    h->trainer().stats().totalPredictions()),
                static_cast<unsigned long long>(
                    h->trainer().stats().predictions[0]),
                static_cast<unsigned long long>(
                    h->trainer().stats().predictions[1]),
                static_cast<unsigned long long>(
                    h->trainer().stats().predictions[2]));
    std::printf("policy:    %llu timeliness feedbacks, %llu offset"
                " increases, %llu decreases\n",
                static_cast<unsigned long long>(
                    h->policy().stats().feedbacks),
                static_cast<unsigned long long>(
                    h->policy().stats().increases),
                static_cast<unsigned long long>(
                    h->policy().stats().decreases));
    std::printf("execution: %llu requests deduplicated, %zu"
                " outstanding at end\n",
                static_cast<unsigned long long>(h->exec().deduped()),
                h->exec().outstanding());
    return 0;
}
