/**
 * @file
 * Quickstart: build a disaggregated-memory machine, run one workload
 * under Fastswap and under HoPP, and compare the §VI-A metrics.
 *
 *   $ ./examples/quickstart
 *   $ ./examples/quickstart --trace-out run.json   # flight recorder on
 *
 * This is the smallest end-to-end use of the public API: pick a
 * workload from the registry, pick a system, run, read the results.
 * With `--trace-out FILE` the HoPP run records a Chrome trace_event
 * JSON (open in https://ui.perfetto.dev, validate with hopp_trace).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/trace_writer.hh"
#include "runner/machine.hh"

using namespace hopp;
using namespace hopp::runner;

int
main(int argc, char **argv)
{
    std::string trace_out;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
            trace_out = argv[++i];
    }
    // A workload from the registry (paper Table IV); scale 1.0 is the
    // default bench size (tens of MB instead of the paper's GBs).
    workloads::WorkloadScale scale;
    const std::string app = "kmeans-omp";

    // Baseline: everything fits in local memory.
    RunResult local = runOne(app, SystemKind::Local, 1.0, scale);
    std::printf("local      : %8.2f ms\n",
                toDouble(local.makespan) / 1e6);

    // Fastswap: kernel swap + offset-based readahead, 50% local.
    RunResult fs = runOne(app, SystemKind::Fastswap, 0.5, scale);
    std::printf("fastswap   : %8.2f ms  (normalized %.3f, accuracy"
                " %.3f, coverage %.3f)\n",
                toDouble(fs.makespan) / 1e6,
                normalizedPerformance(local.makespan, fs.makespan),
                fs.accuracy, fs.coverage);

    // HoPP: the MC hot-page trace drives adaptive three-tier
    // prefetching with early PTE injection, alongside Fastswap.
    // Built by hand (not runOne) so the machine outlives the run and
    // its flight recorder can be exported.
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    cfg.trace = !trace_out.empty();
    Machine hopp_machine(cfg);
    hopp_machine.addWorkload(workloads::makeWorkload(app, scale));
    RunResult hp = hopp_machine.run();
    std::printf("hopp       : %8.2f ms  (normalized %.3f, accuracy"
                " %.3f, coverage %.3f)\n",
                toDouble(hp.makespan) / 1e6,
                normalizedPerformance(local.makespan, hp.makespan),
                hp.accuracy, hp.coverage);

    std::printf("\nHoPP cut page faults from %llu to %llu"
                " (%llu of the hits were fault-free DRAM hits).\n",
                static_cast<unsigned long long>(fs.vms.faults()),
                static_cast<unsigned long long>(hp.vms.faults()),
                static_cast<unsigned long long>(hp.vms.injectedHits));

    if (!trace_out.empty()) {
        if (!obs::writeFile(trace_out,
                            obs::toChromeJson(hopp_machine.tracer()))) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         trace_out.c_str());
            return 1;
        }
        std::printf("\nwrote %s (open in https://ui.perfetto.dev)\n",
                    trace_out.c_str());
    }
    return 0;
}
