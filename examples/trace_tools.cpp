/**
 * @file
 * HMTT trace tooling (§V): capture a full MC access trace of a running
 * workload with the bump-in-the-wire tracer emulation, persist it in
 * the binary trace format, reload it, and run the paper's §VI-D style
 * offline analysis (stride census over the page-level read trace).
 */

#include <cstdio>
#include <map>
#include <vector>

#include "runner/machine.hh"
#include "stats/table.hh"
#include "trace/hmtt.hh"
#include "trace/trace_io.hh"

using namespace hopp;
using namespace hopp::runner;

int
main()
{
    // 1. Build the machine, attach the tracer to the MC *before* the
    //    workload starts, then run.
    MachineConfig cfg;
    cfg.system = SystemKind::NoPrefetch;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("npb-mg", {}));
    m.prepare();

    trace::HmttConfig hcfg;
    hcfg.ringCapacity = 1 << 22;
    trace::Hmtt tracer(m.dram(), hcfg);
    m.memCtrl().attach(&tracer);
    m.run();

    // 2. Drain the ring to a binary trace file, as the prototype
    //    persists HMTT traces for offline study.
    std::vector<trace::HmttRecord> records;
    while (auto r = tracer.ring().pop())
        records.push_back(*r);
    const std::string path = "/tmp/hopp_npb_mg.trace";
    if (!trace::writeTraceFile(path, records)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("captured %llu MC accesses (%llu dropped by the ring),"
                " wrote %zu records to %s\n",
                static_cast<unsigned long long>(tracer.captured()),
                static_cast<unsigned long long>(
                    tracer.ring().dropped()),
                records.size(), path.c_str());

    // 3. Reload and analyse: page-level stride census of READ misses,
    //    the raw material of the paper's stream-pattern taxonomy.
    std::vector<trace::HmttRecord> loaded;
    if (auto st = trace::readTraceFile(path, loaded);
        st != trace::TraceIoStatus::Ok) {
        std::fprintf(stderr, "cannot read %s back: %s\n", path.c_str(),
                     trace::traceIoStatusName(st));
        return 1;
    }
    std::map<std::int64_t, std::uint64_t> stride_census;
    std::uint64_t reads = 0;
    Ppn last{};
    bool have_last = false;
    for (const auto &rec : loaded) {
        if (rec.isWrite)
            continue;
        ++reads;
        Ppn ppn = rec.ppn();
        if (have_last && ppn != last) {
            std::int64_t stride = signedDelta(last, ppn);
            if (stride >= -8 && stride <= 8)
                ++stride_census[stride];
            else
                ++stride_census[stride < 0 ? -9 : 9]; // |s| > 8 bucket
        }
        last = ppn;
        have_last = true;
    }

    stats::Table table("Page-stride census of the NPB-MG read trace");
    table.header({"stride", "count", "share"});
    for (const auto &[stride, count] : stride_census) {
        std::string label = stride == 9    ? "> +8"
                            : stride == -9 ? "< -8"
                                           : std::to_string(stride);
        table.row({label, std::to_string(count),
                   stats::Table::pct(static_cast<double>(count) /
                                         static_cast<double>(reads),
                                     1)});
    }
    table.print();
    std::puts("The mass at small +/- strides with net forward progress"
              " is the ripple signature (paper Fig. 3) that RSP"
              " exploits. Physical-address strides are noisier than"
              " virtual ones — which is exactly why HoPP adds the"
              " reverse page table.");
    std::remove(path.c_str());
    return 0;
}
