/**
 * @file
 * Domain scenario: a blocked matrix kernel (HPL-style ladder streams,
 * paper Fig. 2) built *from pattern primitives* rather than the app
 * registry — showing how to assemble a custom workload — then an
 * ablation of which prefetch tier is required to cover it.
 */

#include <cstdio>

#include "runner/machine.hh"
#include "stats/table.hh"
#include "workloads/patterns.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

/** A custom two-thread blocked-factorization workload. */
workloads::Workload
makeBlockedKernel()
{
    workloads::Workload w;
    w.name = "blocked-kernel";
    w.footprintPages = 2 * 3 * 64; // 2 threads x 64 treads x 3 pages
    for (unsigned t = 0; t < 2; ++t) {
        w.threads.push_back([t] {
            workloads::LadderGen::Params p;
            p.base = VirtAddr{0x20'0000'0000ull +
                              t * 0x1'0000'0000ull};
            p.treadPages = 3;
            p.risePages = 16;
            p.treads = 64;
            p.linesPerPage = 64;
            p.passes = 10;
            p.crossStream = true; // Fig. 2: treads cross streams
            return std::make_unique<workloads::LadderGen>(p);
        });
    }
    return w;
}

Tick
runKernel(SystemKind system, double ratio, unsigned tier_mask)
{
    MachineConfig cfg;
    cfg.system = system;
    cfg.localMemRatio = ratio;
    cfg.hopp.tierMask = tier_mask;
    Machine m(cfg);
    m.addWorkload(makeBlockedKernel());
    return m.run().makespan;
}

} // namespace

int
main()
{
    Tick local = runKernel(SystemKind::Local, 1.0, core::tiers::all);
    Tick fs = runKernel(SystemKind::Fastswap, 0.5, core::tiers::all);

    stats::Table table(
        "Blocked matrix kernel @50% local: which tier covers ladder"
        " streams?");
    table.header({"Configuration", "CT (ms)", "NormPerf"});
    auto row = [&](const char *label, Tick ct) {
        table.row({label,
                   stats::Table::num(toDouble(ct) / 1e6, 2),
                   stats::Table::num(normalizedPerformance(local, ct),
                                     3)});
    };
    row("local", local);
    row("fastswap", fs);
    row("hopp SSP only", runKernel(SystemKind::Hopp, 0.5,
                                   core::tiers::ssp));
    row("hopp SSP+LSP", runKernel(SystemKind::Hopp, 0.5,
                                  core::tiers::ssp | core::tiers::lsp));
    row("hopp all tiers", runKernel(SystemKind::Hopp, 0.5,
                                    core::tiers::all));
    table.print();

    std::puts("Cross-stream treads have no dominant stride, so SSP"
              " alone cannot identify the pattern: the Ladder tier"
              " (Algorithm 1) provides the coverage — the paper's HPL"
              " ablation in Fig. 18.");
    return 0;
}
