/**
 * @file
 * Unit tests for the adaptive swap readahead window (Linux-style
 * hit-rate adaptation) and its interaction with a co-running
 * injection engine.
 */

#include <gtest/gtest.h>

#include "prefetch/readahead.hh"
#include "prefetch/stats.hh"
#include "runner/machine.hh"

using namespace hopp;
using namespace hopp::prefetch;
using namespace hopp::runner;

namespace
{

/** Drive the adaptation logic directly through the listener API. */
void
epoch(Readahead &ra, unsigned completed, unsigned hits,
      unsigned epoch_faults = 64)
{
    for (unsigned i = 0; i < completed; ++i)
        ra.onPrefetchCompleted(Pid{1}, Vpn{i}, origin::readahead,
                               Tick{}, false);
    for (unsigned i = 0; i < hits; ++i)
        ra.onPrefetchHit(Pid{1}, Vpn{i}, origin::readahead, Tick{},
                         Tick{1}, false);
    // Faults with no slot only tick the adaptation epoch.
    for (unsigned i = 0; i < epoch_faults; ++i) {
        ra.onFault(vm::FaultContext{Pid{1}, Vpn{0}, remote::noSlot,
                                    vm::FaultKind::Remote, Tick{}});
    }
}

struct RaRig
{
    sim::EventQueue eq;
    mem::Dram dram{64};
    mem::MemCtrl mc{dram};
    mem::Llc llc{mem::LlcConfig{16 << 10, 4}};
    net::RdmaFabric fabric{eq, net::LinkConfig{}};
    remote::RemoteNode node{1 << 16};
    remote::SwapBackend backend{fabric, node};
    vm::Vms vms{eq, dram, mc, llc, backend, [] {
                    vm::VmsConfig c;
                    c.kswapdEnabled = false;
                    return c;
                }()};
};

} // namespace

TEST(ReadaheadWindow, StartsAtMax)
{
    RaRig rig;
    Readahead ra(rig.vms, rig.backend);
    EXPECT_EQ(ra.window(), 8u);
}

TEST(ReadaheadWindow, ShrinksOnLowHitRate)
{
    RaRig rig;
    Readahead ra(rig.vms, rig.backend);
    epoch(ra, 100, 10); // 10% hits
    EXPECT_EQ(ra.window(), 4u);
    epoch(ra, 100, 10);
    EXPECT_EQ(ra.window(), 2u);
    epoch(ra, 100, 10);
    EXPECT_EQ(ra.window(), 2u) << "clamped at minWindow";
}

TEST(ReadaheadWindow, RecoversOnHighHitRate)
{
    RaRig rig;
    Readahead ra(rig.vms, rig.backend);
    epoch(ra, 100, 10);
    epoch(ra, 100, 10);
    ASSERT_EQ(ra.window(), 2u);
    epoch(ra, 100, 90);
    EXPECT_EQ(ra.window(), 4u);
    epoch(ra, 100, 90);
    EXPECT_EQ(ra.window(), 8u);
    epoch(ra, 100, 90);
    EXPECT_EQ(ra.window(), 8u) << "clamped at maxWindow";
}

TEST(ReadaheadWindow, MiddlingHitRateHoldsSteady)
{
    RaRig rig;
    ReadaheadConfig cfg; // grow > 0.5, shrink < 0.25
    Readahead ra(rig.vms, rig.backend, cfg);
    epoch(ra, 100, 40); // between the thresholds
    EXPECT_EQ(ra.window(), 8u);
}

TEST(ReadaheadWindow, IgnoresOtherOrigins)
{
    RaRig rig;
    Readahead ra(rig.vms, rig.backend);
    for (unsigned i = 0; i < 100; ++i) {
        ra.onPrefetchCompleted(Pid{1}, Vpn{i}, origin::hopp, Tick{},
                               true);
        ra.onPrefetchHit(Pid{1}, Vpn{i}, origin::leap, Tick{}, Tick{1},
                         false);
    }
    for (unsigned i = 0; i < 64; ++i) {
        ra.onFault(vm::FaultContext{Pid{1}, Vpn{0}, remote::noSlot,
                                    vm::FaultKind::Remote, Tick{}});
    }
    EXPECT_EQ(ra.window(), 8u) << "foreign events must not adapt it";
}

TEST(ReadaheadWindow, EndToEndBacksOffWhenHoppCovers)
{
    // In a HoPP machine, injections remove the faults readahead's
    // fetches would satisfy; its window must retreat rather than
    // keep wasting link bandwidth.
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    Machine hopp_m(cfg);
    hopp_m.addWorkload(
        workloads::makeWorkload("kmeans-omp", {0.25, 0.5}));
    auto hopp_r = hopp_m.run();

    cfg.system = SystemKind::Fastswap;
    Machine fs_m(cfg);
    fs_m.addWorkload(
        workloads::makeWorkload("kmeans-omp", {0.25, 0.5}));
    auto fs_r = fs_m.run();

    // Alongside HoPP, readahead completes far fewer fetches than when
    // it is the only prefetcher.
    auto ra_in_hopp =
        hopp_m.prefetchStats().forOrigin(origin::readahead).completed;
    auto ra_alone =
        fs_m.prefetchStats().forOrigin(origin::readahead).completed;
    EXPECT_LT(ra_in_hopp, ra_alone / 2);
    EXPECT_GT(fs_r.coverage, 0.9);
    EXPECT_GT(hopp_r.dramHitCoverage, 0.5);
}
