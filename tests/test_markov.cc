/**
 * @file
 * Unit + integration tests for the correlation (Markov) tier: table
 * training/prediction, chain walking, replacement, and end-to-end
 * coverage of pointer-chasing workloads that stride tiers cannot see.
 */

#include <gtest/gtest.h>

#include "hopp/markov.hh"
#include "runner/machine.hh"

using namespace hopp;
using namespace hopp::core;
using namespace hopp::runner;

TEST(MarkovTable, PredictsAfterMinCountObservations)
{
    MarkovTable t;
    t.train(Pid{1}, Vpn{10}, Vpn{77});
    EXPECT_TRUE(t.predict(Pid{1}, Vpn{10}).empty()) << "one observation is noise";
    t.train(Pid{1}, Vpn{10}, Vpn{77});
    auto p = t.predict(Pid{1}, Vpn{10});
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p[0], Vpn{77});
}

TEST(MarkovTable, ChainsDominantSuccessors)
{
    MarkovTable t;
    // 10 -> 20 -> 30 -> 40, seen twice each.
    for (int i = 0; i < 2; ++i) {
        t.train(Pid{1}, Vpn{10}, Vpn{20});
        t.train(Pid{1}, Vpn{20}, Vpn{30});
        t.train(Pid{1}, Vpn{30}, Vpn{40});
    }
    auto p = t.predict(Pid{1}, Vpn{10}, /*depth=*/3);
    ASSERT_GE(p.size(), 3u);
    EXPECT_EQ(p[0], Vpn{20});
    EXPECT_EQ(p[1], Vpn{30});
    EXPECT_EQ(p[2], Vpn{40});
}

TEST(MarkovTable, KeepsTwoSuccessorsAndPrefersDominant)
{
    MarkovTable t;
    for (int i = 0; i < 5; ++i)
        t.train(Pid{1}, Vpn{10}, Vpn{20});
    for (int i = 0; i < 2; ++i)
        t.train(Pid{1}, Vpn{10}, Vpn{99});
    auto p = t.predict(Pid{1}, Vpn{10}, 1);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0], Vpn{20}); // slot order: dominant first
}

TEST(MarkovTable, WeakSuccessorDisplacedByFrequencyDecay)
{
    MarkovTable t;
    t.train(Pid{1}, Vpn{10}, Vpn{20});
    t.train(Pid{1}, Vpn{10}, Vpn{21});
    // A third successor decays and eventually displaces a weak slot.
    t.train(Pid{1}, Vpn{10}, Vpn{22}); // decays one slot to 0? (count 1 -> 0, replaced)
    t.train(Pid{1}, Vpn{10}, Vpn{22});
    t.train(Pid{1}, Vpn{10}, Vpn{22});
    auto p = t.predict(Pid{1}, Vpn{10}, 1);
    bool has22 = false;
    for (Vpn v : p)
        has22 |= v == Vpn{22};
    EXPECT_TRUE(has22);
}

TEST(MarkovTable, PidsAreIndependent)
{
    MarkovTable t;
    t.train(Pid{1}, Vpn{10}, Vpn{20});
    t.train(Pid{1}, Vpn{10}, Vpn{20});
    EXPECT_FALSE(t.predict(Pid{1}, Vpn{10}).empty());
    EXPECT_TRUE(t.predict(Pid{2}, Vpn{10}).empty());
}

TEST(MarkovTable, CapacityBoundedByConfig)
{
    MarkovConfig cfg;
    cfg.entries = 64;
    cfg.ways = 8;
    MarkovTable t(cfg);
    for (std::uint64_t v = 0; v < 1000; ++v) {
        t.train(Pid{1}, Vpn{v}, Vpn{v + 1});
        t.train(Pid{1}, Vpn{v}, Vpn{v + 1});
    }
    EXPECT_LE(t.size(), 64u);
}

TEST(MarkovIntegration, CoversPointerChasingThatTiersCannot)
{
    workloads::WorkloadScale scale{0.2, 0.6};

    MachineConfig base;
    base.system = SystemKind::Hopp;
    base.localMemRatio = 0.5;

    // Without the correlation tier: the permutation walk is invisible.
    Machine off(base);
    off.addWorkload(workloads::makeWorkload("linkedlist", scale));
    auto r_off = off.run();

    MachineConfig mk = base;
    mk.hopp.tierMask = core::tiers::all | core::tiers::markov;
    Machine on(mk);
    on.addWorkload(workloads::makeWorkload("linkedlist", scale));
    auto r_on = on.run();

    const auto &ts = on.hoppSystem()->exec().tierStats(Tier::Mkv);
    EXPECT_GT(ts.issued, 100u);
    EXPECT_GT(ts.accuracy(), 0.8);
    EXPECT_GT(r_on.dramHitCoverage, r_off.dramHitCoverage + 0.1)
        << "the correlation tier must add real coverage";
    EXPECT_LT(r_on.makespan, r_off.makespan);
}

TEST(MarkovIntegration, DisabledByDefault)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(
        workloads::makeWorkload("linkedlist", {0.1, 0.3}));
    m.run();
    EXPECT_EQ(m.hoppSystem()->exec().tierStats(Tier::Mkv).issued, 0u);
}

TEST(MarkovIntegration, HarmlessOnPureStreams)
{
    // On K-means the stride tiers cover everything; the correlation
    // tier must not degrade accuracy.
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    cfg.hopp.tierMask = core::tiers::all | core::tiers::markov;
    Machine m(cfg);
    m.addWorkload(
        workloads::makeWorkload("kmeans-omp", {0.15, 0.4}));
    auto r = m.run();
    EXPECT_GT(r.systemAccuracy, 0.85);
}
