/**
 * @file
 * Allocation-freedom and ordering proofs for the rewritten event core.
 *
 * A global instrumented allocator counts every operator-new call made
 * while tracking is armed: scheduling and dispatching events through
 * sim::EventQueue must perform ZERO heap allocations for every capture
 * shape the tree actually uses (the old std::function design allocated
 * per schedule for captures over the SSO threshold, and copied — hence
 * re-allocated — per dispatch). A separate determinism test drives 10k
 * mixed schedule/scheduleIn calls, many colliding on the same tick,
 * and checks execution order against the documented (tick, issue-seq)
 * FIFO contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "sim/event_queue.hh"

namespace
{

std::uint64_t g_allocs = 0;
bool g_track = false;

struct AllocTracker
{
    AllocTracker()
    {
        g_allocs = 0;
        g_track = true;
    }
    ~AllocTracker() { g_track = false; }

    std::uint64_t
    count() const
    {
        return g_allocs;
    }
};

} // namespace

// Instrumented global allocator: counts while armed, delegates to
// malloc/free. Sized/array forms forward so nothing escapes the count.
// GCC pair-matches new/free across the replaced operators and warns;
// that analysis does not apply to the replacing definitions themselves.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void *
operator new(std::size_t n)
{
    if (g_track)
        ++g_allocs;
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace
{

using namespace hopp;
using sim::EventQueue;
using sim::InlineEvent;

TEST(EventQueueAlloc, InTreeCaptureShapesScheduleWithoutAllocating)
{
    EventQueue eq;
    eq.reserve(64); // pre-size outside the tracking window

    // Stand-ins for the capture shapes used across the tree.
    struct Self
    {
        int x = 0;
    } self; // [this]
    std::uint64_t hits = 0;

    // [this, pid] — kswapd rearm, trainer drain (16 B).
    // [this, pid, vpn] — prefetch completion binding (24 B).
    // [done, completion] — RDMA completion wrapping a user callback
    //   plus a Tick; modelled by a 40 B payload below.
    struct Payload40
    {
        void *a;
        std::uint64_t b, c, d;
    } p40{&self, 1, 2, 3};
    struct Payload56
    {
        void *a;
        std::uint64_t b, c, d, e, f;
    } p56{&self, 1, 2, 3, 4, 5}; // near the 64 B budget

    // Move-only capture: the unique_ptr was allocated ahead of time;
    // moving it into the event must not allocate again.
    auto owned = std::make_unique<int>(7);

    std::uint64_t observed;
    {
        AllocTracker tracker;
        eq.schedule(Tick{10}, [&hits] { ++hits; });
        eq.schedule(Tick{10}, [&hits, &self] { hits += self.x + 1; });
        eq.schedule(Tick{11},
                    [&hits, s = &self, pid = std::uint16_t{3}] {
                        hits += pid + s->x;
                    });
        eq.schedule(Tick{12}, [&hits, p40] { hits += p40.b; });
        eq.schedule(Tick{13}, [&hits, p56] { hits += p56.f; });
        eq.scheduleIn(Duration{20},
                      [&hits, o = std::move(owned)] { hits += *o; });
        while (eq.runOne()) {
        }
        observed = tracker.count();
    }
    EXPECT_EQ(observed, 0u);
    EXPECT_EQ(hits, 1u + 1 + 3 + 1 + 5 + 7);
}

TEST(EventQueueAlloc, SelfReschedulingSteadyStateIsAllocationFree)
{
    // The machine's dominant pattern: an actor that runs, does work,
    // and reschedules itself — thousands of schedule+dispatch cycles
    // over a shallow heap must never touch the allocator.
    EventQueue eq;
    eq.reserve(64);
    std::uint64_t steps = 0;

    struct Actor
    {
        EventQueue &eq;
        std::uint64_t &steps;

        void
        step()
        {
            if (++steps >= 10'000)
                return;
            eq.scheduleIn(Duration{3}, [this] { step(); });
        }
    } actor{eq, steps};

    std::uint64_t observed;
    {
        AllocTracker tracker;
        eq.schedule(Tick{1}, [&actor] { actor.step(); });
        eq.run();
        observed = tracker.count();
    }
    EXPECT_EQ(observed, 0u);
    EXPECT_EQ(steps, 10'000u);
}

TEST(EventQueueAlloc, OversizedCaptureWouldNotCompile)
{
    // Compile-time contract: a capture over InlineEvent::inlineBytes
    // is rejected by static_assert (no silent heap fallback). This
    // can't be expressed as a runtime EXPECT; assert the budget and
    // that representative shapes satisfy it instead.
    static_assert(InlineEvent::inlineBytes == 64);
    struct Fits
    {
        void *a;
        std::uint64_t b[7];
    };
    static_assert(sizeof(Fits) <= InlineEvent::inlineBytes);
    struct TooBig
    {
        std::uint64_t b[9];
    };
    static_assert(sizeof(TooBig) > InlineEvent::inlineBytes);
    SUCCEED();
}

TEST(EventQueueDeterminism, SameTickFifoAcross10kMixedSchedules)
{
    // 10k schedule/scheduleIn calls over a deliberately tiny tick
    // range (heavy same-tick collisions), issued both from outside the
    // run loop and from inside running events. The documented order is
    // strict (tick, issue-sequence): a stable sort of the issue log by
    // tick must predict execution exactly.
    EventQueue eq;
    Pcg32 rng(42);

    std::vector<std::pair<Tick, std::uint32_t>> issued;
    std::vector<std::uint32_t> executed;
    std::uint32_t next_id = 0;

    auto issue = [&](Tick when, std::uint32_t id) {
        issued.emplace_back(when, id);
        eq.schedule(when, [&executed, id] { executed.push_back(id); });
    };

    // Phase 1: 5k pre-loaded events across 16 distinct ticks.
    for (int i = 0; i < 5'000; ++i)
        issue(Tick{rng.below(16)}, next_id++);

    // Phase 2: 5k more issued from inside callbacks as the queue
    // drains — alternating schedule (absolute) and scheduleIn
    // (relative), still colliding on a small set of future ticks.
    std::uint32_t nested_left = 5'000;
    std::function<void()> spawn = [&] {
        std::uint32_t burst = 1 + rng.below(4);
        for (std::uint32_t b = 0; b < burst && nested_left > 0; ++b) {
            --nested_left;
            Duration delta{rng.below(8)};
            std::uint32_t id = next_id++;
            Tick when = eq.now() + delta;
            issued.emplace_back(when, id);
            if (rng.below(2) == 0) {
                eq.schedule(when, [&executed, id] {
                    executed.push_back(id);
                });
            } else {
                eq.scheduleIn(delta, [&executed, id] {
                    executed.push_back(id);
                });
            }
        }
        if (nested_left > 0) {
            eq.scheduleIn(Duration{1 + rng.below(4)},
                          [&spawn] { spawn(); });
        }
    };
    eq.schedule(Tick{16}, [&spawn] { spawn(); });
    eq.run();

    ASSERT_EQ(executed.size(), issued.size());
    ASSERT_EQ(executed.size(), 10'000u);

    // Model: stable sort of the issue log by tick (issue order is the
    // tie-break, exactly the (when, seq) contract).
    std::vector<std::pair<Tick, std::uint32_t>> model = issued;
    std::stable_sort(model.begin(), model.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    for (std::size_t i = 0; i < model.size(); ++i) {
        ASSERT_EQ(executed[i], model[i].second) << "at position " << i;
    }
}

TEST(EventQueueDeterminism, NestedSameTickEventRunsAfterEarlierIssues)
{
    // An event scheduled *for the current tick from inside a callback*
    // must still run after everything issued earlier for that tick.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(Tick{5}, [&] {
        order.push_back(0);
        eq.schedule(Tick{5}, [&] { order.push_back(2); });
    });
    eq.schedule(Tick{5}, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

} // namespace
