/**
 * @file
 * Unit tests for the discrete-event core: ordering, determinism,
 * runUntil semantics, and self-rescheduling actors.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace hopp;
using namespace hopp::sim;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), Tick{});
    EXPECT_EQ(eq.nextTime(), maxTick);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(Tick{30}, [&] { order.push_back(3); });
    eq.schedule(Tick{10}, [&] { order.push_back(1); });
    eq.schedule(Tick{20}, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), Tick{30});
}

TEST(EventQueue, SameTickEventsRunFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(Tick{5}, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(Tick{1}, [&] {
        ++fired;
        eq.scheduleIn(1, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), Tick{2});
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(Tick{10}, [&] { ++fired; });
    eq.schedule(Tick{20}, [&] { ++fired; });
    eq.schedule(Tick{21}, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(Tick{20}), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), Tick{20});
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(Tick{500});
    EXPECT_EQ(eq.now(), Tick{500});
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(Tick{static_cast<std::uint64_t>(i)}, [&] { ++fired; });
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(eq.size(), 6u);
}

TEST(EventQueue, SelfReschedulingActorTerminates)
{
    EventQueue eq;
    int steps = 0;
    std::function<void()> step = [&] {
        if (++steps < 100)
            eq.scheduleIn(3, step);
    };
    eq.schedule(Tick{0}, step);
    eq.run();
    EXPECT_EQ(steps, 100);
    EXPECT_EQ(eq.now(), Tick{99 * 3});
}

TEST(EventQueue, ExecutedCountsLifetime)
{
    EventQueue eq;
    eq.schedule(Tick{1}, [] {});
    eq.schedule(Tick{2}, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(Tick{10}, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(Tick{5}, [] {}), "past");
}
