/**
 * @file
 * Tests for the §IV extension features: huge-batch prefetching (many
 * consecutive pages in one RDMA transfer with PTE injection on
 * arrival) and trace-informed eviction advice.
 */

#include <gtest/gtest.h>

#include <set>

#include "hopp/hopp_system.hh"
#include "runner/machine.hh"

using namespace hopp;
using namespace hopp::core;
using namespace hopp::runner;

namespace
{

struct BatchRig
{
    static constexpr Pid pid{1};

    BatchRig()
    {
        vm::VmsConfig vcfg;
        vcfg.kswapdEnabled = false;
        // Unbounded second-chance scans: strict LRU order, so the
        // tests can predict exactly which pages get evicted.
        vcfg.secondChanceCap = 1u << 20;
        eq = std::make_unique<sim::EventQueue>();
        dram = std::make_unique<mem::Dram>(256);
        mc = std::make_unique<mem::MemCtrl>(*dram);
        llc = std::make_unique<mem::Llc>(mem::LlcConfig{16 << 10, 4});
        fabric =
            std::make_unique<net::RdmaFabric>(*eq, net::LinkConfig{});
        node = std::make_unique<remote::RemoteNode>(1 << 16);
        backend = std::make_unique<remote::SwapBackend>(*fabric, *node);
        vms = std::make_unique<vm::Vms>(*eq, *dram, *mc, *llc, *backend,
                                        vcfg);
        vms->createProcess(pid, 128);
    }

    Duration
    touch(Vpn v, Tick t)
    {
        return vms->access(pid, pageBase(v), false, t);
    }

    /** Cold-touch 0..n-1 then spill them out with fresh pages. */
    Tick
    spill(std::uint64_t n)
    {
        Tick t{};
        for (std::uint64_t v = 0; v < n; ++v)
            t += touch(Vpn{v}, t);
        for (std::uint64_t v = 1000; v < 1000 + 128; ++v)
            t += touch(Vpn{v}, t);
        return t;
    }

    std::unique_ptr<sim::EventQueue> eq;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::MemCtrl> mc;
    std::unique_ptr<mem::Llc> llc;
    std::unique_ptr<net::RdmaFabric> fabric;
    std::unique_ptr<remote::RemoteNode> node;
    std::unique_ptr<remote::SwapBackend> backend;
    std::unique_ptr<vm::Vms> vms;
};

} // namespace

TEST(BatchPrefetch, BundlesConsecutiveSwappedPages)
{
    BatchRig rig;
    Tick t = rig.spill(64); // pages 0..63 are remote now
    unsigned bundled =
        rig.vms->prefetchInjectBatch(BatchRig::pid, Vpn{0}, 32, 5, t);
    EXPECT_EQ(bundled, 32u);
    EXPECT_EQ(rig.backend->batchReads(), 1u);
    rig.eq->run();
    for (std::uint64_t v = 0; v < 32; ++v) {
        EXPECT_TRUE(rig.vms->pageTable().present(BatchRig::pid, Vpn{v}))
            << "vpn " << v;
        EXPECT_TRUE(
            rig.vms->pageTable().find(BatchRig::pid, Vpn{v})->injected);
    }
}

TEST(BatchPrefetch, SkipsNonSwappedPages)
{
    BatchRig rig;
    Tick t = rig.spill(8); // only 0..7 swapped; 8.. untouched
    unsigned bundled =
        rig.vms->prefetchInjectBatch(BatchRig::pid, Vpn{4}, 16, 5, t);
    EXPECT_EQ(bundled, 4u); // pages 4..7 only
    rig.eq->run();
    EXPECT_TRUE(rig.vms->pageTable().present(BatchRig::pid, Vpn{7}));
    EXPECT_EQ(rig.vms->pageTable().find(BatchRig::pid, Vpn{9}), nullptr);
}

TEST(BatchPrefetch, EmptyBundleIssuesNothing)
{
    BatchRig rig;
    Tick t{};
    for (std::uint64_t v = 0; v < 8; ++v)
        t += rig.touch(Vpn{v}, t); // all resident
    EXPECT_EQ(rig.vms->prefetchInjectBatch(BatchRig::pid, Vpn{0}, 8, 5, t),
              0u);
    EXPECT_EQ(rig.backend->batchReads(), 0u);
}

TEST(BatchPrefetch, OneTransferIsCheaperThanManySmall)
{
    // Serialization equal, but N-1 base latencies saved.
    net::LinkConfig cfg;
    sim::EventQueue eq;
    net::RdmaFabric fabric(eq, cfg);
    remote::RemoteNode node(1024);
    remote::SwapBackend backend(fabric, node);
    Tick batch_done = backend.readBatchAsync(32, Tick{}, [](Tick) {});
    sim::EventQueue eq2;
    net::RdmaFabric fabric2(eq2, cfg);
    remote::SwapBackend backend2(fabric2, node);
    Tick last{};
    for (int i = 0; i < 32; ++i)
        last = backend2.readAsync(Tick{}, [](Tick) {});
    EXPECT_LT(batch_done, last);
    eq.run();
    eq2.run();
}

TEST(BatchPrefetch, TrainerIssuesBatchesOnLongStreams)
{
    MachineConfig cfg;
    cfg.system = SystemKind::HoppOnly;
    cfg.localMemRatio = 0.5;
    cfg.hopp.batch.enabled = true;
    cfg.hopp.batch.minStreamLen = 64;
    cfg.hopp.batch.batchPages = 32;
    cfg.hopp.batch.everyHotPages = 16;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("microbench", {}));
    m.run();
    EXPECT_GT(m.hoppSystem()->trainer().stats().batchesIssued, 10u);
    EXPECT_GT(m.hoppSystem()->exec().batches(), 10u);
    EXPECT_GT(m.backend().batchReads(), 10u);
}

TEST(BatchPrefetch, DisabledByDefault)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("microbench", {}));
    m.run();
    EXPECT_EQ(m.hoppSystem()->trainer().stats().batchesIssued, 0u);
    EXPECT_EQ(m.backend().batchReads(), 0u);
}

namespace
{

struct WarmAdvisor : vm::Vms::EvictionAdvisor
{
    std::set<Vpn> warm;
    int consulted = 0;

    bool
    keepWarm(Pid, Vpn vpn, Tick) override
    {
        ++consulted;
        return warm.count(vpn) > 0;
    }
};

} // namespace

TEST(EvictionAdvisor, WarmPagesSurviveReclaim)
{
    BatchRig rig;
    WarmAdvisor advisor;
    advisor.warm = {Vpn{0}, Vpn{1}};
    rig.vms->setEvictionAdvisor(&advisor);
    Tick t{};
    for (std::uint64_t v = 0; v < 128; ++v)
        t += rig.touch(Vpn{v}, t);
    // Next allocations must evict, but pages 0 and 1 get rotations.
    for (std::uint64_t v = 500; v < 510; ++v)
        t += rig.touch(Vpn{v}, t);
    EXPECT_GT(advisor.consulted, 0);
    EXPECT_TRUE(rig.vms->pageTable().present(BatchRig::pid, Vpn{0}));
    EXPECT_TRUE(rig.vms->pageTable().present(BatchRig::pid, Vpn{1}));
    // A cold page of the same vintage was evicted instead.
    EXPECT_FALSE(rig.vms->pageTable().present(BatchRig::pid, Vpn{2}));
}

TEST(EvictionAdvisor, HoppSystemTracksHotness)
{
    MachineConfig cfg;
    cfg.system = SystemKind::HoppOnly;
    cfg.localMemRatio = 0.5;
    cfg.hopp.evictionAdvisor = true;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("kmeans-omp", {}));
    auto r = m.run();
    EXPECT_GT(r.makespan, Tick{});
    // The advisor answered from real hot-page history: a page that was
    // just extracted must be warm at that instant.
    auto *h = m.hoppSystem();
    EXPECT_GT(h->hpd().stats().hotPages, 0u);
}
