/**
 * @file
 * Process-teardown and kswapd-bookkeeping regression tests.
 *
 * The original kswapd latch lived in a VMS-side `unordered_map<Pid,
 * bool>` populated by operator[] on every watermark check and never
 * erased — unbounded growth across process churn in long colocation
 * runs. The latch now lives inside the Cgroup itself, so it is bounded
 * by the number of *live* processes structurally; these tests pin that
 * down, plus the destroyProcess teardown path (frames, swap slots,
 * page records, LRU, charges, PTE hooks) and the benign dispatch of a
 * kswapd pass whose process exited while the event was in flight.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "vm/vms.hh"

using namespace hopp;
using namespace hopp::vm;

namespace
{

struct ClearRecorder : PteHook
{
    std::vector<std::pair<Vpn, Ppn>> sets;
    std::vector<std::pair<Vpn, Ppn>> clears;

    void
    onPteSet(Pid, Vpn vpn, Ppn ppn, bool, bool, Tick) override
    {
        sets.emplace_back(vpn, ppn);
    }

    void
    onPteClear(Pid, Vpn vpn, Ppn ppn, Tick) override
    {
        clears.emplace_back(vpn, ppn);
    }
};

class VmsTeardownTest : public ::testing::Test
{
  protected:
    VmsTeardownTest() { rebuild(/*dram_frames=*/256, /*kswapd=*/true); }

    void
    rebuild(std::uint64_t dram_frames, bool kswapd)
    {
        VmsConfig cfg;
        cfg.kswapdEnabled = kswapd;
        eq = std::make_unique<sim::EventQueue>();
        dram = std::make_unique<mem::Dram>(dram_frames);
        mc = std::make_unique<mem::MemCtrl>(*dram);
        llc = std::make_unique<mem::Llc>(mem::LlcConfig{64 << 10, 8});
        fabric =
            std::make_unique<net::RdmaFabric>(*eq, net::LinkConfig{});
        node = std::make_unique<remote::RemoteNode>(1 << 20);
        backend = std::make_unique<remote::SwapBackend>(*fabric, *node);
        vms = std::make_unique<Vms>(*eq, *dram, *mc, *llc, *backend,
                                    cfg);
        vms->addPteHook(&hook);
    }

    /** Fill pages [0, n) of pid, advancing local time. */
    Tick
    fill(Pid pid, std::uint64_t n, Tick t = Tick{})
    {
        for (std::uint64_t v = 0; v < n; ++v)
            t += vms->access(pid, pageBase(Vpn{v}), true, t);
        return t;
    }

    ClearRecorder hook;
    std::unique_ptr<sim::EventQueue> eq;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::MemCtrl> mc;
    std::unique_ptr<mem::Llc> llc;
    std::unique_ptr<net::RdmaFabric> fabric;
    std::unique_ptr<remote::RemoteNode> node;
    std::unique_ptr<remote::SwapBackend> backend;
    std::unique_ptr<Vms> vms;
};

TEST_F(VmsTeardownTest, DestroyReleasesFramesSlotsAndRecords)
{
    Pid pid{1};
    vms->createProcess(pid, 16);
    // Overcommit so some pages swap out (allocating remote slots) and
    // the survivors stay resident.
    Tick t = fill(pid, 24);
    eq->runUntil(t + Duration{1'000'000});

    ASSERT_GT(dram->usedFrames(), 0u);
    ASSERT_GT(backend->liveMappings(), 0u);
    ASSERT_GT(vms->pageTable().size(), 0u);

    std::size_t resident_before =
        vms->pageTable().countState(PageState::Resident);
    vms->destroyProcess(pid, eq->now());

    EXPECT_EQ(dram->usedFrames(), 0u);
    EXPECT_EQ(backend->liveMappings(), 0u);
    EXPECT_EQ(vms->pageTable().size(), 0u);
    EXPECT_EQ(vms->processCount(), 0u);
    EXPECT_EQ(vms->findCgroup(pid), nullptr);
    // Every resident page's PTE was cleared on the way out (the RPT
    // shootdown HoPP relies on).
    EXPECT_EQ(hook.clears.size(),
              resident_before + vms->stats().evictions);
}

TEST_F(VmsTeardownTest, ProcessChurnLeavesNoPerPidResidue)
{
    // 40 create/run/destroy cycles: bookkeeping must track *live*
    // processes (here: at most one), not every pid ever seen.
    for (std::uint16_t i = 1; i <= 40; ++i) {
        Pid pid{i};
        vms->createProcess(pid, 8);
        Tick t = fill(pid, 12);
        eq->runUntil(t + Duration{1'000'000});
        vms->destroyProcess(pid, eq->now());
        EXPECT_EQ(vms->processCount(), 0u);
        EXPECT_EQ(vms->pageTable().size(), 0u);
        EXPECT_EQ(dram->usedFrames(), 0u);
        EXPECT_EQ(backend->liveMappings(), 0u);
    }
}

TEST_F(VmsTeardownTest, KswapdEventAfterDestroyIsBenign)
{
    Pid pid{1};
    vms->createProcess(pid, 8);
    // Push the cgroup over the high watermark so a kswapd pass gets
    // scheduled, then destroy the process before it dispatches.
    Tick t = fill(pid, 8);
    ASSERT_TRUE(vms->cgroup(pid).kswapdActive());
    ASSERT_GT(eq->size(), 0u);
    vms->destroyProcess(pid, t);
    // The pending pass dispatches against a dead pid: must be a no-op,
    // not a crash or an assert.
    eq->run();
    EXPECT_EQ(vms->stats().kswapdReclaims, 0u);
    EXPECT_EQ(vms->processCount(), 0u);
}

TEST_F(VmsTeardownTest, KswapdLatchClearsAndRearms)
{
    Pid pid{1};
    vms->createProcess(pid, 8);
    Tick t = fill(pid, 8);
    ASSERT_TRUE(vms->cgroup(pid).kswapdActive());
    // Let background reclaim run to below the low watermark.
    eq->runUntil(t + Duration{100'000'000});
    EXPECT_FALSE(vms->cgroup(pid).kswapdActive());
    EXPECT_GT(vms->stats().kswapdReclaims, 0u);
    // Refill above the watermark: the latch must arm again.
    t = fill(pid, 8, eq->now());
    EXPECT_TRUE(vms->cgroup(pid).kswapdActive());
    eq->runUntil(t + Duration{100'000'000});
    EXPECT_FALSE(vms->cgroup(pid).kswapdActive());
}

TEST_F(VmsTeardownTest, DestroyWithColocatedSurvivorKeepsItIntact)
{
    Pid a{1}, b{2};
    vms->createProcess(a, 16);
    vms->createProcess(b, 16);
    Tick t = fill(a, 12);
    Tick t2 = fill(b, 12, t);
    eq->runUntil(t2 + Duration{1'000'000});

    std::uint64_t b_charged = vms->cgroup(b).charged();
    ASSERT_GT(b_charged, 0u);
    vms->destroyProcess(a, eq->now());

    EXPECT_EQ(vms->processCount(), 1u);
    EXPECT_EQ(vms->cgroup(b).charged(), b_charged);
    // Survivor's pages are all still translatable.
    for (std::uint64_t v = 0; v < 12; ++v)
        EXPECT_NE(vms->pageTable().find(b, Vpn{v}), nullptr);
}

} // namespace
