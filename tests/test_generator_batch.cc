/**
 * @file
 * Randomized oracle for AccessGenerator::nextBatch: for every concrete
 * generator and combinator, draining through nextBatch with arbitrary
 * (randomized) block sizes must reproduce the exact access sequence
 * that repeated next() calls produce — including partial final blocks,
 * LimitGen truncation mid-block, and InterleaveGen sub-stream
 * exhaustion mid-burst. The batched Machine pump and the --no-batch
 * byte-identity test both stand on this equivalence.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "workloads/generator.hh"
#include "workloads/patterns.hh"

using namespace hopp;
using namespace hopp::workloads;

namespace
{

using Factory = std::function<GeneratorPtr()>;

/**
 * Build the generator twice from the same factory; drain one via
 * next() and the other via nextBatch() with block sizes drawn from
 * @p seed, and require identical sequences. Also checks that
 * end-of-stream is sticky for both drains.
 */
void
expectBatchMatchesNext(const Factory &make, std::uint64_t seed,
                       std::size_t max_block = 64)
{
    GeneratorPtr ref = make();
    GeneratorPtr bat = make();

    std::vector<Access> expect;
    {
        Access a;
        while (ref->next(a))
            expect.push_back(a);
        EXPECT_FALSE(ref->next(a)) << "next() end-of-stream not sticky";
    }

    Pcg32 rng(seed);
    std::vector<Access> block(max_block);
    std::vector<Access> got;
    got.reserve(expect.size());
    for (;;) {
        std::size_t n =
            1 + rng.below(static_cast<std::uint32_t>(max_block));
        std::size_t filled = bat->nextBatch(block.data(), n);
        ASSERT_LE(filled, n);
        got.insert(got.end(), block.begin(),
                   block.begin() + static_cast<std::ptrdiff_t>(filled));
        ASSERT_LE(got.size(), expect.size())
            << "nextBatch produced surplus accesses";
        if (filled < n)
            break;
    }
    EXPECT_EQ(bat->nextBatch(block.data(), block.size()), 0u)
        << "nextBatch end-of-stream not sticky";

    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].va, expect[i].va) << "diverged at access " << i;
        ASSERT_EQ(got[i].write, expect[i].write)
            << "diverged at access " << i;
    }

    // reset() must rewind the batched drain to the same sequence.
    bat->reset();
    std::size_t head = std::min<std::size_t>(expect.size(), max_block);
    ASSERT_EQ(bat->nextBatch(block.data(), head), head);
    for (std::size_t i = 0; i < head; ++i)
        ASSERT_EQ(block[i].va, expect[i].va)
            << "post-reset divergence at access " << i;
}

/** Exercise several block-size distributions per generator. */
void
checkAllSeeds(const Factory &make)
{
    for (std::uint64_t seed : {1u, 7u, 42u}) {
        expectBatchMatchesNext(make, seed, 64);
        expectBatchMatchesNext(make, seed, 5); // tiny, many partials
    }
    expectBatchMatchesNext(make, 3, 4096); // one oversized block
}

/** A generator that does NOT override nextBatch: the base default. */
class CountingGen : public AccessGenerator
{
  public:
    explicit CountingGen(std::uint64_t n) : n_(n) {}

    bool
    next(Access &out) override
    {
        if (i_ >= n_)
            return false;
        out.va = VirtAddr{i_ * lineBytes};
        out.write = (i_ & 1) != 0;
        ++i_;
        return true;
    }

    void reset() override { i_ = 0; }

  private:
    std::uint64_t n_;
    std::uint64_t i_ = 0;
};

} // namespace

TEST(GeneratorBatch, DefaultImplementationLoopsNext)
{
    checkAllSeeds([] { return std::make_unique<CountingGen>(1000); });
    // Degenerate streams: empty, single access.
    checkAllSeeds([] { return std::make_unique<CountingGen>(0); });
    checkAllSeeds([] { return std::make_unique<CountingGen>(1); });
}

TEST(GeneratorBatch, SequentialScan)
{
    checkAllSeeds([] {
        SequentialScan::Params p;
        p.base = pageBase(Vpn{64});
        p.pages = 37;
        p.pageStride = 3;
        p.linesPerPage = 5;
        p.passes = 3;
        p.write = true;
        return std::make_unique<SequentialScan>(p);
    });
    checkAllSeeds([] {
        SequentialScan::Params p;
        p.base = pageBase(Vpn{8});
        p.pages = 16;
        p.backward = true;
        p.linesPerPage = 7;
        p.passes = 2;
        return std::make_unique<SequentialScan>(p);
    });
}

TEST(GeneratorBatch, Ladder)
{
    checkAllSeeds([] {
        LadderGen::Params p;
        p.base = pageBase(Vpn{512});
        p.treadPages = 5;
        p.risePages = 11;
        p.treads = 7;
        p.linesPerPage = 3;
        p.passes = 2;
        p.crossStream = true;
        return std::make_unique<LadderGen>(p);
    });
}

TEST(GeneratorBatch, Ripple)
{
    checkAllSeeds([] {
        RippleGen::Params p;
        p.base = pageBase(Vpn{1024});
        p.pages = 61;
        p.linesPerPage = 9;
        p.passes = 2;
        p.jitter = 3;
        p.hopChance = 0.5;
        p.seed = 99;
        return std::make_unique<RippleGen>(p);
    });
}

TEST(GeneratorBatch, Gather)
{
    checkAllSeeds([] {
        GatherGen::Params p;
        p.seqBase = pageBase(Vpn{2048});
        p.seqPages = 23;
        p.seqLinesPerPage = 11;
        p.targetBase = pageBase(Vpn{4096});
        p.targetPages = 40;
        p.gatherPerLine = 0.7;
        p.passes = 2;
        p.seed = 5;
        return std::make_unique<GatherGen>(p);
    });
}

TEST(GeneratorBatch, HotCold)
{
    checkAllSeeds([] {
        HotColdGen::Params p;
        p.base = pageBase(Vpn{300});
        p.pages = 50;
        p.accesses = 777;
        p.linesPerVisit = 3;
        p.seed = 17;
        return std::make_unique<HotColdGen>(p);
    });
}

TEST(GeneratorBatch, ShortRuns)
{
    checkAllSeeds([] {
        ShortRunsGen::Params p;
        p.base = pageBase(Vpn{600});
        p.pages = 120;
        p.runs = 19;
        p.runPagesMin = 2;
        p.runPagesMax = 9;
        p.linesPerPage = 6;
        p.gcEvery = 5;
        p.alignPages = 4;
        p.seed = 23;
        return std::make_unique<ShortRunsGen>(p);
    });
}

TEST(GeneratorBatch, Permutation)
{
    checkAllSeeds([] {
        PermutationGen::Params p;
        p.base = pageBase(Vpn{900});
        p.pages = 43;
        p.linesPerPage = 5;
        p.passes = 3;
        p.seed = 11;
        return std::make_unique<PermutationGen>(p);
    });
}

TEST(GeneratorBatch, Quicksort)
{
    checkAllSeeds([] {
        QuicksortGen::Params p;
        p.base = pageBase(Vpn{1500});
        p.pages = 96;
        p.cutoffPages = 6;
        p.linesPerPage = 4;
        p.seed = 31;
        return std::make_unique<QuicksortGen>(p);
    });
}

TEST(GeneratorBatch, LimitTruncatesMidBlock)
{
    // Limits deliberately not multiples of any block size, so the
    // truncation lands mid-block.
    for (std::uint64_t limit : {1u, 63u, 997u}) {
        checkAllSeeds([limit] {
            SequentialScan::Params p;
            p.base = pageBase(Vpn{64});
            p.pages = 64;
            p.linesPerPage = 8;
            p.passes = 100;
            return std::make_unique<LimitGen>(
                std::make_unique<SequentialScan>(p), limit);
        });
    }
    // Limit beyond the inner stream: the inner end wins.
    checkAllSeeds([] {
        SequentialScan::Params p;
        p.base = pageBase(Vpn{64});
        p.pages = 10;
        p.linesPerPage = 4;
        return std::make_unique<LimitGen>(
            std::make_unique<SequentialScan>(p), 1u << 30);
    });
}

TEST(GeneratorBatch, PhasedHandsOverBetweenPhases)
{
    checkAllSeeds([] {
        std::vector<GeneratorPtr> phases;
        SequentialScan::Params a;
        a.base = pageBase(Vpn{0});
        a.pages = 13;
        a.linesPerPage = 5;
        phases.push_back(std::make_unique<SequentialScan>(a));
        // A zero-length phase in the middle (limit 0) must be skipped.
        SequentialScan::Params b;
        b.base = pageBase(Vpn{50});
        b.pages = 4;
        phases.push_back(std::make_unique<LimitGen>(
            std::make_unique<SequentialScan>(b), 0));
        HotColdGen::Params c;
        c.base = pageBase(Vpn{100});
        c.pages = 20;
        c.accesses = 131;
        c.seed = 3;
        phases.push_back(std::make_unique<HotColdGen>(c));
        return std::make_unique<PhasedGen>(std::move(phases));
    });
}

TEST(GeneratorBatch, InterleaveExhaustsSubStreamsMidBurst)
{
    // Sub-stream lengths chosen so none is a multiple of the burst:
    // every sub-stream dies mid-burst, the round-robin must skip the
    // dead one and keep draining the remainder.
    for (unsigned burst : {1u, 3u, 7u}) {
        checkAllSeeds([burst] {
            std::vector<GeneratorPtr> subs;
            for (std::uint64_t len : {41u, 5u, 152u}) {
                SequentialScan::Params p;
                p.base = pageBase(Vpn{1000 + 100 * len});
                p.pages = 64;
                p.linesPerPage = 8;
                p.passes = 100;
                subs.push_back(std::make_unique<LimitGen>(
                    std::make_unique<SequentialScan>(p), len));
            }
            return std::make_unique<InterleaveGen>(std::move(subs),
                                                   burst);
        });
    }
}

TEST(GeneratorBatch, NestedCombinators)
{
    // The apps.cc shape: phases of interleaved, limited sub-streams.
    checkAllSeeds([] {
        auto mkphase = [](std::uint64_t base, unsigned burst) {
            std::vector<GeneratorPtr> subs;
            SequentialScan::Params p;
            p.base = pageBase(Vpn{base});
            p.pages = 31;
            p.linesPerPage = 6;
            p.passes = 2;
            subs.push_back(std::make_unique<SequentialScan>(p));
            PermutationGen::Params q;
            q.base = pageBase(Vpn{base + 64});
            q.pages = 17;
            q.linesPerPage = 4;
            q.seed = base;
            subs.push_back(std::make_unique<LimitGen>(
                std::make_unique<PermutationGen>(q), 201));
            return std::make_unique<InterleaveGen>(std::move(subs),
                                                   burst);
        };
        std::vector<GeneratorPtr> phases;
        phases.push_back(mkphase(0, 5));
        phases.push_back(mkphase(4096, 2));
        return std::make_unique<PhasedGen>(std::move(phases));
    });
}
