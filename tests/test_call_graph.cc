/**
 * @file
 * Unit tests for the cross-TU symbol index (tools/analysis/symbols.hh)
 * and the conservative call graph (tools/analysis/call_graph.hh) that
 * the hot-path purity pass walks. The load-bearing properties:
 *
 *  - declarations join their out-of-line definitions, overload sets
 *    keep per-arity members, and `using` aliases are not mistaken for
 *    calls;
 *  - receiver typing resolves params, locals, members, one chained
 *    hop, subscripts, and smart-pointer derefs to the right class;
 *  - every call the resolver cannot prove a target for lands in the
 *    node's unresolved set with a reason — conservative means counted,
 *    not silently dropped;
 *  - the hotpath pass reports a reachable sink with its full
 *    root-to-sink chain, and a root that matches nothing fires
 *    hotpath-root.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analysis/call_graph.hh"
#include "analysis/hotpath.hh"
#include "analysis/model.hh"
#include "analysis/symbols.hh"

using namespace hopp::analysis;

namespace
{

/** Lex (rel, source) pairs into an in-memory SourceTree. */
SourceTree
makeTree(const std::vector<std::pair<std::string, std::string>> &files)
{
    SourceTree tree;
    for (const auto &[rel, src] : files) {
        TokenStream ts(src);
        SourceFile f;
        f.rel = rel;
        std::size_t slash = rel.find('/');
        f.module = slash == std::string::npos ? std::string()
                                              : rel.substr(0, slash);
        f.header = rel.size() > 3 &&
                   rel.compare(rel.size() - 3, 3, ".hh") == 0;
        f.code = ts.code();
        f.directives = parseDirectives(ts.comments(), "hopp-analyze");
        tree.files.push_back(std::move(f));
    }
    return tree;
}

/** The one node with qualified name `qual`, asserting it exists. */
std::size_t
nodeOf(const CallGraph &cg, const std::string &qual)
{
    auto ids = cg.findNodes(qual);
    EXPECT_EQ(ids.size(), 1u) << qual;
    return ids.empty() ? 0 : ids[0];
}

/** True when `cg` has an edge qual_from -> qual_to. */
bool
hasEdge(const CallGraph &cg, const std::string &from,
        const std::string &to)
{
    auto fids = cg.findNodes(from);
    auto tids = cg.findNodes(to);
    if (fids.empty() || tids.empty())
        return false;
    for (std::size_t f : fids)
        for (std::size_t callee : cg.callees[f])
            for (std::size_t t : tids)
                if (callee == t)
                    return true;
    return false;
}

/** True when some unresolved entry of `qual` contains `needle`. */
bool
hasUnresolved(const CallGraph &cg, const std::string &qual,
              const std::string &needle)
{
    for (std::size_t id : cg.findNodes(qual))
        for (const std::string &u : cg.unresolved[id])
            if (u.find(needle) != std::string::npos)
                return true;
    return false;
}

} // namespace

TEST(SymbolIndex, MembersMethodsAndOutOfLineJoin)
{
    SourceTree tree = makeTree({
        {"mod/widget.hh", R"cpp(
namespace fixture
{
class Widget
{
  public:
    void touch(int v);
    int count() const { return count_; }

  private:
    std::vector<int> log_;
    int count_ = 0;
};
} // namespace fixture
)cpp"},
        {"mod/widget.cc", R"cpp(
namespace fixture
{
void
Widget::touch(int v)
{
    log_.push_back(v);
    ++count_;
}
} // namespace fixture
)cpp"},
    });

    SymbolIndex sym = buildSymbolIndex(tree);
    const ClassInfo *w = sym.findClass("Widget");
    ASSERT_NE(w, nullptr);
    EXPECT_TRUE(w->members.count("log_"));
    EXPECT_EQ(w->memberTypes.at("log_"), "vector");
    EXPECT_EQ(w->memberTypes.at("count_"), "int");

    // The out-of-line definition joined the in-class declaration, so
    // touch is a method with a body, not a dangling decl.
    EXPECT_TRUE(w->hasMethodBody("touch"));
    EXPECT_TRUE(w->hasMethodBody("count"));
    EXPECT_EQ(w->methodDecls.count("touch"), 0u);

    for (const auto &m : w->methods)
        if (m.name == "touch") {
            EXPECT_EQ(m.arity, 1);
            EXPECT_EQ(m.file, "mod/widget.cc");
            ASSERT_EQ(m.params.size(), 1u);
            EXPECT_EQ(m.params[0].first, "v");
        }
}

TEST(SymbolIndex, FreeOverloadSetsAndAliases)
{
    SourceTree tree = makeTree({
        {"mod/util.hh", R"cpp(
namespace fixture
{
using Ticket = std::uint64_t;

inline int
clampTo(int v)
{
    return v < 0 ? 0 : v;
}

inline int
clampTo(int v, int hi)
{
    return v > hi ? hi : clampTo(v);
}
} // namespace fixture
)cpp"},
    });

    SymbolIndex sym = buildSymbolIndex(tree);
    auto it = sym.freesByName.find("clampTo");
    ASSERT_NE(it, sym.freesByName.end());
    ASSERT_EQ(it->second.size(), 2u);
    int a0 = sym.frees[it->second[0]].arity;
    int a1 = sym.frees[it->second[1]].arity;
    EXPECT_EQ(a0 + a1, 3); // one unary, one binary
    EXPECT_EQ(sym.aliases.at("Ticket"), "uint64_t");
}

TEST(CallGraph, ReceiverResolutionAcrossDeclarationForms)
{
    SourceTree tree = makeTree({
        {"mod/engine.hh", R"cpp(
namespace fixture
{
class Gauge
{
  public:
    void bump() { ++n_; }

  private:
    int n_ = 0;
};

class Slot
{
  public:
    Gauge gauge;
};

class Engine
{
  public:
    void
    step(Gauge &param)
    {
        param.bump();           // parameter receiver
        member_.bump();         // member receiver
        Gauge local;
        local.bump();           // local receiver
        slot_.gauge.bump();     // one chained member hop
        ring_[0].bump();        // subscript -> element type
        owned_->bump();         // unique_ptr deref
    }

  private:
    Gauge member_;
    Slot slot_;
    std::vector<Gauge> ring_;
    std::unique_ptr<Gauge> owned_;
};
} // namespace fixture
)cpp"},
    });

    SymbolIndex sym = buildSymbolIndex(tree);
    CallGraph cg = buildCallGraph(sym);

    EXPECT_TRUE(hasEdge(cg, "Engine::step", "Gauge::bump"));
    // Every receiver form resolved: no unresolved entries at all.
    std::size_t id = nodeOf(cg, "Engine::step");
    EXPECT_TRUE(cg.unresolved[id].empty())
        << *cg.unresolved[id].begin();
}

TEST(CallGraph, OverloadsPreferExactArity)
{
    SourceTree tree = makeTree({
        {"mod/ov.hh", R"cpp(
namespace fixture
{
inline int pick(int a) { return a; }
inline int pick(int a, int b) { return a + b; }
} // namespace fixture
)cpp"},
    });

    SymbolIndex sym = buildSymbolIndex(tree);
    CallGraph cg = buildCallGraph(sym);
    auto unary = cg.findNodes("pick", 1);
    ASSERT_EQ(unary.size(), 1u);
    EXPECT_EQ(cg.nodes[unary[0]].arity, 1);
    auto binary = cg.findNodes("pick", 2);
    ASSERT_EQ(binary.size(), 1u);
    EXPECT_EQ(cg.nodes[binary[0]].arity, 2);
    // Unknown arity falls back to the whole overload set.
    EXPECT_EQ(cg.findNodes("pick", 3).size(), 2u);
}

TEST(CallGraph, UnresolvedCallsAreCountedWithReasons)
{
    SourceTree tree = makeTree({
        {"mod/frontier.hh", R"cpp(
namespace fixture
{
class Port
{
  public:
    void poke(); // declared here, defined outside the tree
};

class Frontier
{
  public:
    void
    run()
    {
        mystery();   // no such function anywhere
        port_.poke(); // decl without visible body
        hook_();     // callback variable
    }

  private:
    Port port_;
    std::function<void()> hook_;
};
} // namespace fixture
)cpp"},
    });

    SymbolIndex sym = buildSymbolIndex(tree);
    CallGraph cg = buildCallGraph(sym);

    EXPECT_TRUE(hasUnresolved(cg, "Frontier::run", "mystery"));
    EXPECT_TRUE(hasUnresolved(cg, "Frontier::run", "poke"));
    EXPECT_TRUE(hasUnresolved(cg, "Frontier::run", "hook_"));
    std::size_t id = nodeOf(cg, "Frontier::run");
    EXPECT_EQ(cg.unresolved[id].size(), 3u);
    // Honest conservatism: nothing silently resolved to an edge.
    EXPECT_TRUE(cg.callees[id].empty());
}

TEST(Hotpath, ReportsFullChainFromRootToSink)
{
    SourceTree tree = makeTree({
        {"mod/engine.hh", R"cpp(
namespace fixture
{
class Buffer
{
  public:
    void
    grow(int v)
    {
        data_.push_back(v);
    }

  private:
    std::vector<int> data_;
};

class Engine
{
  public:
    void step() { buf_.grow(1); }

  private:
    Buffer buf_;
};
} // namespace fixture
)cpp"},
    });

    SymbolIndex sym = buildSymbolIndex(tree);
    CallGraph cg = buildCallGraph(sym);

    HotpathConfig conf;
    conf.loaded = true;
    conf.file = "hotpaths.conf";
    conf.roots.emplace_back("Engine::step", 1);
    conf.roots.emplace_back("Engine::gone", 2); // matches nothing
    conf.families.insert("alloc");

    HotpathSummary summary;
    hotpathPass(tree, sym, cg, conf, summary);

    EXPECT_EQ(summary.roots, 2);
    EXPECT_EQ(summary.matchedRoots, 1);
    EXPECT_EQ(summary.findings, 1);

    bool saw_chain = false, saw_root = false;
    for (const Diag &d : tree.diags) {
        if (d.rule == "hotpath-alloc") {
            saw_chain =
                d.message.find("Engine::step -> Buffer::grow") !=
                std::string::npos;
            // The honest-conservatism tail rides on every finding.
            EXPECT_NE(d.message.find("unresolved call(s)"),
                      std::string::npos);
            EXPECT_EQ(d.file, "mod/engine.hh");
        }
        if (d.rule == "hotpath-root") {
            saw_root = d.message.find("Engine::gone") !=
                       std::string::npos;
            EXPECT_EQ(d.line, 2);
        }
    }
    EXPECT_TRUE(saw_chain);
    EXPECT_TRUE(saw_root);
}
