/**
 * @file
 * Tests for the machine-wide statistics report: every component
 * contributes, the dump is parseable, and key values agree with the
 * RunResult the machine returned.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "runner/machine.hh"
#include "runner/stats_report.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

double
valueOf(const std::vector<stats::StatSet> &sets,
        const std::string &name)
{
    for (const auto &s : sets) {
        for (const auto &v : s.values()) {
            if (v.name == name)
                return v.value;
        }
    }
    ADD_FAILURE() << "stat '" << name << "' not found";
    return -1;
}

} // namespace

TEST(StatsReport, AllComponentSetsPresentForHoppMachine)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("kmeans-omp", {0.1, 0.3}));
    m.run();
    std::string report = statsReport(m);
    for (const char *prefix :
         {"llc.hits", "dram.frames_total", "vms.faults",
          "remote.demand_reads", "prefetch.accuracy",
          "net.read.bytes", "net.write.bytes", "hopp.hpd.hot_pages",
          "hopp.tier.ssp.issued", "hopp.policy.feedbacks"}) {
        EXPECT_NE(report.find(prefix), std::string::npos) << prefix;
    }
}

TEST(StatsReport, NoHoppSectionForPlainFastswap)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Fastswap;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("kmeans-omp", {0.1, 0.3}));
    m.run();
    std::string report = statsReport(m);
    EXPECT_EQ(report.find("hopp."), std::string::npos);
    EXPECT_NE(report.find("vms.faults"), std::string::npos);
}

TEST(StatsReport, ValuesAgreeWithRunResult)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("quicksort", {0.1, 0.3}));
    auto r = m.run();
    auto sets = collectStats(m);
    EXPECT_DOUBLE_EQ(valueOf(sets, "vms.accesses"),
                     static_cast<double>(r.vms.accesses));
    EXPECT_DOUBLE_EQ(valueOf(sets, "vms.faults"),
                     static_cast<double>(r.vms.faults()));
    EXPECT_DOUBLE_EQ(valueOf(sets, "remote.demand_reads"),
                     static_cast<double>(r.demandRemote));
    EXPECT_DOUBLE_EQ(valueOf(sets, "prefetch.accuracy"), r.accuracy);
    EXPECT_DOUBLE_EQ(valueOf(sets, "prefetch.coverage"), r.coverage);
}

TEST(StatsReport, EveryLineIsNameValueComment)
{
    MachineConfig cfg;
    cfg.system = SystemKind::HoppOnly;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("npb-mg", {0.1, 0.3}));
    m.run();
    std::istringstream in(statsReport(m));
    std::string line;
    unsigned lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        std::istringstream ls(line);
        std::string name;
        double value;
        ASSERT_TRUE(static_cast<bool>(ls >> name >> value)) << line;
        EXPECT_NE(line.find('#'), std::string::npos) << line;
    }
    EXPECT_GT(lines, 40u);
}

TEST(StatsReport, TrafficConservation)
{
    // DRAM traffic split by source must sum to the module total.
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("npb-is", {0.1, 0.3}));
    m.run();
    auto sets = collectStats(m);
    double sum = valueOf(sets, "dram.bytes_app_read") +
                 valueOf(sets, "dram.bytes_app_write") +
                 valueOf(sets, "dram.bytes_page_dma") +
                 valueOf(sets, "dram.bytes_hot_page") +
                 valueOf(sets, "dram.bytes_rpt_query") +
                 valueOf(sets, "dram.bytes_rpt_update");
    EXPECT_DOUBLE_EQ(sum,
                     static_cast<double>(m.dram().totalTraffic()));
}
