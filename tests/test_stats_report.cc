/**
 * @file
 * Tests for the machine-wide statistics report: every component
 * contributes, the dump is parseable, and key values agree with the
 * RunResult the machine returned.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.hh"
#include "runner/machine.hh"
#include "runner/stats_report.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

double
valueOf(const std::vector<stats::StatSet> &sets,
        const std::string &name)
{
    for (const auto &s : sets) {
        for (const auto &v : s.values()) {
            if (v.name == name)
                return v.value;
        }
    }
    ADD_FAILURE() << "stat '" << name << "' not found";
    return -1;
}

} // namespace

TEST(StatsReport, AllComponentSetsPresentForHoppMachine)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("kmeans-omp", {0.1, 0.3}));
    m.run();
    std::string report = statsReport(m);
    for (const char *prefix :
         {"llc.hits", "dram.frames_total", "vms.faults",
          "remote.demand_reads", "prefetch.accuracy",
          "net.read.bytes", "net.write.bytes", "hopp.hpd.hot_pages",
          "hopp.tier.ssp.issued", "hopp.policy.feedbacks"}) {
        EXPECT_NE(report.find(prefix), std::string::npos) << prefix;
    }
}

TEST(StatsReport, NoHoppSectionForPlainFastswap)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Fastswap;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("kmeans-omp", {0.1, 0.3}));
    m.run();
    std::string report = statsReport(m);
    EXPECT_EQ(report.find("hopp."), std::string::npos);
    EXPECT_NE(report.find("vms.faults"), std::string::npos);
}

TEST(StatsReport, ValuesAgreeWithRunResult)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("quicksort", {0.1, 0.3}));
    auto r = m.run();
    auto sets = collectStats(m);
    EXPECT_DOUBLE_EQ(valueOf(sets, "vms.accesses"),
                     static_cast<double>(r.vms.accesses));
    EXPECT_DOUBLE_EQ(valueOf(sets, "vms.faults"),
                     static_cast<double>(r.vms.faults()));
    EXPECT_DOUBLE_EQ(valueOf(sets, "remote.demand_reads"),
                     static_cast<double>(r.demandRemote));
    EXPECT_DOUBLE_EQ(valueOf(sets, "prefetch.accuracy"), r.accuracy);
    EXPECT_DOUBLE_EQ(valueOf(sets, "prefetch.coverage"), r.coverage);
}

TEST(StatsReport, EveryLineIsNameValueComment)
{
    MachineConfig cfg;
    cfg.system = SystemKind::HoppOnly;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("npb-mg", {0.1, 0.3}));
    m.run();
    std::istringstream in(statsReport(m));
    std::string line;
    unsigned lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        std::istringstream ls(line);
        std::string name;
        double value;
        ASSERT_TRUE(static_cast<bool>(ls >> name >> value)) << line;
        EXPECT_NE(line.find('#'), std::string::npos) << line;
    }
    EXPECT_GT(lines, 40u);
}

TEST(StatsReport, TrafficConservation)
{
    // DRAM traffic split by source must sum to the module total.
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("npb-is", {0.1, 0.3}));
    m.run();
    auto sets = collectStats(m);
    double sum = valueOf(sets, "dram.bytes_app_read") +
                 valueOf(sets, "dram.bytes_app_write") +
                 valueOf(sets, "dram.bytes_page_dma") +
                 valueOf(sets, "dram.bytes_hot_page") +
                 valueOf(sets, "dram.bytes_rpt_query") +
                 valueOf(sets, "dram.bytes_rpt_update");
    EXPECT_DOUBLE_EQ(sum,
                     static_cast<double>(m.dram().totalTraffic()));
}

TEST(StatsReport, StatsJsonIsValidAndDeterministic)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("kmeans-omp", {0.1, 0.3}));
    m.run();
    std::string doc = statsJson(m);
    obs::json::Value root;
    std::string err;
    ASSERT_TRUE(obs::json::parse(doc, root, &err)) << err;
    ASSERT_TRUE(root.isObject());
    EXPECT_NE(root.find("vms.faults"), nullptr);
    EXPECT_NE(root.find("latency.remote_fault.p50_ns"), nullptr);
    // Re-rendering the same machine is byte-identical.
    EXPECT_EQ(doc, statsJson(m));
}

TEST(StatsReport, ResetAllZeroesEveryDumpedCounter)
{
    // Satellite contract: resetAll() must cover exactly what the dump
    // covers — run, reset, and require every count-like stat to read
    // zero (rates and capacities may legitimately stay nonzero).
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    // Huge-batch prefetching on, so the backend batch counter (the
    // historical reset gap) sees traffic.
    cfg.hopp.batch.enabled = true;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("quicksort", {0.3, 0.3}));
    m.run();

    // Sanity: the run produced traffic in the sets we care about.
    auto before = collectStats(m);
    EXPECT_GT(valueOf(before, "vms.faults"), 0.0);
    EXPECT_GT(valueOf(before, "remote.batch_reads"), 0.0);
    EXPECT_GT(valueOf(before, "mc.reads"), 0.0);
    EXPECT_GT(valueOf(before, "net.read.bytes"), 0.0);
    EXPECT_GT(valueOf(before, "latency.remote_fault.count"), 0.0);

    resetAllStats(m);
    auto after = collectStats(m);
    for (const char *name :
         {"llc.hits", "llc.misses", "vms.faults", "vms.accesses",
          "remote.demand_reads", "remote.batch_reads",
          "remote.writebacks", "mc.reads", "mc.writes",
          "net.read.bytes", "net.read.transfers", "net.write.bytes",
          "prefetch.completed", "hopp.hpd.hot_pages",
          "hopp.trainer.hot_pages", "hopp.tier.ssp.issued"}) {
        EXPECT_DOUBLE_EQ(valueOf(after, name), 0.0) << name;
    }
    // The latency histograms reset too: the dump drops empty classes.
    for (const auto &s : after) {
        for (const auto &v : s.values())
            EXPECT_NE(v.name.rfind("latency.", 0), 0u) << v.name;
    }
}
