/**
 * @file
 * MetricsSampler tests: periodic sampling on the event queue, gauge
 * registration, CSV export, queue-drain behaviour, and the trace
 * counter mirror.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hh"
#include "sim/event_queue.hh"

using namespace hopp;
using namespace hopp::obs;

namespace
{

/** Schedule a no-op at @p when so the sampler has work to follow. */
void
keepAlive(sim::EventQueue &eq, Tick when)
{
    eq.schedule(when, [] {});
}

} // namespace

TEST(MetricsSampler, SamplesOnThePeriodWhileEventsPend)
{
    sim::EventQueue eq;
    MetricsSampler ms(eq, 100);
    int pulls = 0;
    ms.addGauge("g", [&pulls] { return static_cast<double>(++pulls); });
    keepAlive(eq, Tick(1000));
    ms.start();
    eq.run();
    // Samples at t=100..1000 while the keep-alive event pends; the
    // sampler must not keep the queue alive past the last real event.
    ASSERT_GE(ms.times().size(), 9u);
    EXPECT_EQ(ms.times().front(), Tick(100));
    for (std::size_t i = 1; i < ms.times().size(); ++i)
        EXPECT_EQ(ms.times()[i] - ms.times()[i - 1], 100u);
    EXPECT_LE(ms.times().back(), Tick(1100));
    EXPECT_TRUE(eq.empty());
}

TEST(MetricsSampler, DoesNotKeepDrainedQueueAlive)
{
    sim::EventQueue eq;
    MetricsSampler ms(eq, 10);
    ms.addGauge("g", [] { return 1.0; });
    ms.start();
    // No other events: the first firing sees an empty queue and stops.
    std::uint64_t executed = eq.run(1000);
    EXPECT_LE(executed, 2u);
    EXPECT_TRUE(eq.empty());
}

TEST(MetricsSampler, GaugesSampleInRegistrationOrder)
{
    sim::EventQueue eq;
    MetricsSampler ms(eq, 50);
    ms.addGauge("a", [] { return 1.0; });
    ms.addGauge("b", [] { return 2.0; });
    keepAlive(eq, Tick(100));
    ms.start();
    eq.run();
    ASSERT_EQ(ms.gauges().size(), 2u);
    EXPECT_EQ(ms.gauges()[0].name, "a");
    EXPECT_EQ(ms.gauges()[1].name, "b");
    ASSERT_EQ(ms.series().size(), 2u);
    ASSERT_FALSE(ms.series()[0].empty());
    EXPECT_DOUBLE_EQ(ms.series()[0][0], 1.0);
    EXPECT_DOUBLE_EQ(ms.series()[1][0], 2.0);
}

TEST(MetricsSampler, SampleNowAppendsFinalRow)
{
    sim::EventQueue eq;
    MetricsSampler ms(eq, 100);
    double v = 5.0;
    ms.addGauge("g", [&v] { return v; });
    keepAlive(eq, Tick(250));
    ms.start();
    eq.run();
    std::size_t rows = ms.times().size();
    v = 9.0;
    ms.sampleNow();
    ASSERT_EQ(ms.times().size(), rows + 1);
    EXPECT_DOUBLE_EQ(ms.series()[0].back(), 9.0);
}

TEST(MetricsSampler, CsvHasHeaderAndOneRowPerSample)
{
    sim::EventQueue eq;
    MetricsSampler ms(eq, 100);
    ms.addGauge("resident", [] { return 3.0; });
    ms.addGauge("backlog", [] { return 0.5; });
    keepAlive(eq, Tick(200));
    ms.start();
    eq.run();
    std::string csv = ms.toCsv();
    EXPECT_EQ(csv.rfind("tick_ns,resident,backlog\n", 0), 0u) << csv;
    std::size_t newlines = 0;
    for (char c : csv)
        newlines += c == '\n';
    EXPECT_EQ(newlines, 1 + ms.times().size());
    EXPECT_NE(csv.find("\n100,3,0.5\n"), std::string::npos) << csv;
}

TEST(MetricsSampler, MirrorsSamplesAsTraceCounters)
{
    sim::EventQueue eq;
    MetricsSampler ms(eq, 100);
    ms.addGauge("depth", [] { return 2.0; });
    Tracer t;
    t.enable();
    ms.setTracer(&t);
    keepAlive(eq, Tick(150));
    ms.start();
    eq.run();
    ASSERT_GE(t.size(), 1u);
    EXPECT_EQ(t.events()[0].ph, 'C');
    EXPECT_STREQ(t.events()[0].name, "depth");
    EXPECT_EQ(t.events()[0].value, 2u);
}
