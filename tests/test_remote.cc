/**
 * @file
 * Unit tests for the remote memory node and swap backend: slot
 * allocation adjacency, reverse mappings, and neighbourhood queries.
 */

#include <gtest/gtest.h>

#include "remote/remote_node.hh"
#include "remote/swap_backend.hh"

using namespace hopp;
using namespace hopp::remote;

TEST(RemoteNode, AllocatesAscendingSlots)
{
    RemoteNode node(100);
    EXPECT_EQ(node.allocate(), 0u);
    EXPECT_EQ(node.allocate(), 1u);
    EXPECT_EQ(node.allocate(), 2u);
    EXPECT_EQ(node.liveSlots(), 3u);
}

TEST(RemoteNode, RecyclesFreedSlots)
{
    RemoteNode node(100);
    node.allocate();
    SwapSlot s1 = node.allocate();
    node.release(s1);
    EXPECT_EQ(node.allocate(), s1);
    EXPECT_EQ(node.liveSlots(), 2u);
}

TEST(RemoteNodeDeath, OverflowPanics)
{
    RemoteNode node(2);
    node.allocate();
    node.allocate();
    EXPECT_DEATH(node.allocate(), "full");
}

TEST(RemoteNodeDeath, BogusReleasePanics)
{
    RemoteNode node(10);
    EXPECT_DEATH(node.release(5), "never-allocated");
}

namespace
{

struct BackendFixture : ::testing::Test
{
    sim::EventQueue eq;
    net::RdmaFabric fabric{eq, net::LinkConfig{}};
    RemoteNode node{1 << 20};
    SwapBackend backend{fabric, node};
};

} // namespace

TEST_F(BackendFixture, AllocateRecordsOwner)
{
    SwapSlot s = backend.allocate(3, 0x100);
    auto owner = backend.owner(s);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(owner->pid, 3);
    EXPECT_EQ(owner->vpn, 0x100u);
    backend.release(s);
    EXPECT_FALSE(backend.owner(s).has_value());
}

TEST_F(BackendFixture, NeighborsReturnAdjacentSlotOwners)
{
    // Evict pages in order: slots 0..4 belong to vpns 10..14.
    for (Vpn v = 10; v <= 14; ++v)
        backend.allocate(1, v);
    auto around = backend.neighbors(2, 2, 2);
    ASSERT_EQ(around.size(), 4u);
    EXPECT_EQ(around[0].vpn, 10u);
    EXPECT_EQ(around[1].vpn, 11u);
    EXPECT_EQ(around[2].vpn, 13u);
    EXPECT_EQ(around[3].vpn, 14u);
}

TEST_F(BackendFixture, NeighborsClampAtSlotZero)
{
    backend.allocate(1, 10);
    backend.allocate(1, 11);
    auto around = backend.neighbors(0, 4, 1);
    ASSERT_EQ(around.size(), 1u);
    EXPECT_EQ(around[0].vpn, 11u);
}

TEST_F(BackendFixture, NeighborsSkipFreedSlots)
{
    for (Vpn v = 10; v <= 14; ++v)
        backend.allocate(1, v);
    backend.release(1);
    auto around = backend.neighbors(2, 2, 0);
    ASSERT_EQ(around.size(), 1u);
    EXPECT_EQ(around[0].vpn, 10u);
}

TEST_F(BackendFixture, CountsDemandAndPrefetchReadsSeparately)
{
    backend.demandRead(0);
    backend.readAsync(0, [](Tick) {});
    backend.readAsync(0, [](Tick) {});
    backend.write(0);
    EXPECT_EQ(backend.demandReads(), 1u);
    EXPECT_EQ(backend.prefetchReads(), 2u);
    EXPECT_EQ(backend.writebacks(), 1u);
    eq.run();
}

TEST_F(BackendFixture, DemandReadLatencyMatchesLinkModel)
{
    Tick done = backend.demandRead(1000);
    EXPECT_GT(done, 1000u + 3000u); // base latency dominates
    EXPECT_LT(done, 1000u + 6000u);
}
