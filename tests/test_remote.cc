/**
 * @file
 * Unit tests for the remote memory node and swap backend: slot
 * allocation adjacency, reverse mappings, and neighbourhood queries.
 */

#include <gtest/gtest.h>

#include "remote/remote_node.hh"
#include "remote/swap_backend.hh"

using namespace hopp;
using namespace hopp::remote;

TEST(RemoteNode, AllocatesAscendingSlots)
{
    RemoteNode node(100);
    EXPECT_EQ(node.allocate(), 0u);
    EXPECT_EQ(node.allocate(), 1u);
    EXPECT_EQ(node.allocate(), 2u);
    EXPECT_EQ(node.liveSlots(), 3u);
}

TEST(RemoteNode, RecyclesFreedSlots)
{
    RemoteNode node(100);
    node.allocate();
    SwapSlot s1 = node.allocate();
    node.release(s1);
    EXPECT_EQ(node.allocate(), s1);
    EXPECT_EQ(node.liveSlots(), 2u);
}

TEST(RemoteNodeDeath, OverflowPanics)
{
    RemoteNode node(2);
    node.allocate();
    node.allocate();
    EXPECT_DEATH(node.allocate(), "full");
}

TEST(RemoteNodeDeath, BogusReleasePanics)
{
    RemoteNode node(10);
    EXPECT_DEATH(node.release(5), "never-allocated");
}

namespace
{

struct BackendFixture : ::testing::Test
{
    sim::EventQueue eq;
    net::RdmaFabric fabric{eq, net::LinkConfig{}};
    RemoteNode node{1 << 20};
    SwapBackend backend{fabric, node};
};

} // namespace

TEST_F(BackendFixture, AllocateRecordsOwner)
{
    SwapSlot s = backend.allocate(Pid{3}, Vpn{0x100});
    auto owner = backend.owner(s);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(owner->pid, Pid{3});
    EXPECT_EQ(owner->vpn, Vpn{0x100});
    backend.release(s);
    EXPECT_FALSE(backend.owner(s).has_value());
}

TEST_F(BackendFixture, NeighborsReturnAdjacentSlotOwners)
{
    // Evict pages in order: slots 0..4 belong to vpns 10..14.
    for (std::uint64_t v = 10; v <= 14; ++v)
        backend.allocate(Pid{1}, Vpn{v});
    auto around = backend.neighbors(2, 2, 2);
    ASSERT_EQ(around.size(), 4u);
    EXPECT_EQ(around[0].vpn, Vpn{10});
    EXPECT_EQ(around[1].vpn, Vpn{11});
    EXPECT_EQ(around[2].vpn, Vpn{13});
    EXPECT_EQ(around[3].vpn, Vpn{14});
}

TEST_F(BackendFixture, NeighborsClampAtSlotZero)
{
    backend.allocate(Pid{1}, Vpn{10});
    backend.allocate(Pid{1}, Vpn{11});
    auto around = backend.neighbors(0, 4, 1);
    ASSERT_EQ(around.size(), 1u);
    EXPECT_EQ(around[0].vpn, Vpn{11});
}

TEST_F(BackendFixture, NeighborsSkipFreedSlots)
{
    for (std::uint64_t v = 10; v <= 14; ++v)
        backend.allocate(Pid{1}, Vpn{v});
    backend.release(1);
    auto around = backend.neighbors(2, 2, 0);
    ASSERT_EQ(around.size(), 1u);
    EXPECT_EQ(around[0].vpn, Vpn{10});
}

TEST_F(BackendFixture, CountsDemandAndPrefetchReadsSeparately)
{
    backend.demandRead(Tick{});
    backend.readAsync(Tick{}, [](Tick) {});
    backend.readAsync(Tick{}, [](Tick) {});
    backend.write(Tick{});
    EXPECT_EQ(backend.demandReads(), 1u);
    EXPECT_EQ(backend.prefetchReads(), 2u);
    EXPECT_EQ(backend.writebacks(), 1u);
    eq.run();
}

TEST_F(BackendFixture, DemandReadLatencyMatchesLinkModel)
{
    Tick done = backend.demandRead(Tick{1000});
    EXPECT_GT(done, Tick{1000 + 3000}); // base latency dominates
    EXPECT_LT(done, Tick{1000 + 6000});
}
