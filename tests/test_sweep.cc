/**
 * @file
 * SweepPool tests: the determinism contract (results indexed by
 * submission order for any worker count), inline-serial fallback,
 * exception propagation, and parity between a parallel sweep of real
 * simulation runs and its serial reference.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/machine.hh"
#include "runner/sweep_pool.hh"

using namespace hopp;
using namespace hopp::runner;

TEST(SweepPool, SerialRunsInSubmissionOrder)
{
    SweepPool pool(1);
    auto out = pool.run<std::size_t>(8, [](std::size_t i) {
        return i * i;
    });
    ASSERT_EQ(out.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(SweepPool, ZeroJobsClampsToOne)
{
    EXPECT_EQ(SweepPool(0).jobs(), 1u);
    EXPECT_EQ(SweepPool(4).jobs(), 4u);
}

TEST(SweepPool, EmptyAndSingleCounts)
{
    SweepPool pool(4);
    EXPECT_TRUE(pool.run<int>(0, [](std::size_t) { return 1; }).empty());
    auto one = pool.run<int>(1, [](std::size_t) { return 7; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 7);
}

TEST(SweepPool, ParallelMatchesSerialWithUnbalancedWork)
{
    // Task i busy-works an amount that varies wildly with i, so workers
    // finish far out of submission order; the result vector must still
    // be index-ordered and identical to the serial pool's.
    auto task = [](std::size_t i) {
        volatile std::uint64_t sink = 0;
        for (std::uint64_t k = 0; k < (i % 7) * 20000; ++k)
            sink = sink + k;
        return std::to_string(i) + ":" + std::to_string(i * 31);
    };
    auto serial = SweepPool(1).run<std::string>(64, task);
    auto parallel = SweepPool(4).run<std::string>(64, task);
    EXPECT_EQ(parallel, serial);
}

TEST(SweepPool, MoreJobsThanTasksIsFine)
{
    auto out = SweepPool(16).run<std::size_t>(3, [](std::size_t i) {
        return i + 100;
    });
    EXPECT_EQ(out, (std::vector<std::size_t>{100, 101, 102}));
}

TEST(SweepPool, FirstTaskExceptionIsRethrown)
{
    SweepPool pool(4);
    EXPECT_THROW(pool.run<int>(40,
                               [](std::size_t i) {
                                   if (i == 17)
                                       throw std::runtime_error("boom");
                                   return static_cast<int>(i);
                               }),
                 std::runtime_error);
}

TEST(SweepPool, HardwareJobsIsAtLeastOne)
{
    EXPECT_GE(SweepPool::hardwareJobs(), 1u);
}

TEST(SweepPool, ParallelSimulationSweepMatchesSerial)
{
    // The real use: each task builds its own Machine and runs a small
    // config. Makespans and headline stats must be identical whatever
    // the worker count (full byte-level parity of the rendered sweep
    // document is covered by the hopp_sweep.determinism ctest).
    struct Cell
    {
        SystemKind system;
        double ratio;
    };
    std::vector<Cell> cells = {
        {SystemKind::Fastswap, 0.3},
        {SystemKind::Fastswap, 0.6},
        {SystemKind::Hopp, 0.3},
        {SystemKind::Hopp, 0.6},
    };
    auto task = [&](std::size_t i) {
        MachineConfig cfg;
        cfg.system = cells[i].system;
        cfg.localMemRatio = cells[i].ratio;
        Machine machine(cfg);
        workloads::WorkloadScale scale;
        scale.footprint = 0.1;
        scale.iterations = 0.2;
        machine.addWorkload(
            workloads::makeWorkload("microbench", scale, 43));
        RunResult r = machine.run();
        return r.makespan;
    };
    auto serial = SweepPool(1).run<Tick>(cells.size(), task);
    auto parallel = SweepPool(4).run<Tick>(cells.size(), task);
    EXPECT_EQ(parallel, serial);
}
