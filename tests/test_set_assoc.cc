/**
 * @file
 * Unit tests for the generic set-associative LRU cache that underlies
 * the LLC, the HPD table and the RPT cache.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/set_assoc.hh"

using hopp::mem::SetAssocCache;

TEST(SetAssoc, MissThenHit)
{
    SetAssocCache<int> c(4, 2);
    EXPECT_EQ(c.touch(42), nullptr);
    EXPECT_FALSE(c.insert(42, 7).has_value());
    int *v = c.touch(42);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, 7);
    EXPECT_EQ(c.size(), 1u);
}

TEST(SetAssoc, InsertOverwritesExistingTag)
{
    SetAssocCache<int> c(4, 2);
    c.insert(1, 10);
    c.insert(1, 20);
    EXPECT_EQ(*c.peek(1), 20);
    EXPECT_EQ(c.size(), 1u);
}

TEST(SetAssoc, EvictsLruWithinSet)
{
    // 1 set, 2 ways: keys all collide.
    SetAssocCache<int> c(1, 2);
    c.insert(1, 1);
    c.insert(2, 2);
    c.touch(1); // make 2 the LRU
    auto ev = c.insert(3, 3);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->tag, 2u);
    EXPECT_EQ(ev->value, 2);
    EXPECT_NE(c.peek(1), nullptr);
    EXPECT_NE(c.peek(3), nullptr);
    EXPECT_EQ(c.peek(2), nullptr);
}

TEST(SetAssoc, PeekDoesNotPromote)
{
    SetAssocCache<int> c(1, 2);
    c.insert(1, 1);
    c.insert(2, 2);
    c.peek(1); // must NOT save 1 from eviction
    auto ev = c.insert(3, 3);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->tag, 1u);
}

TEST(SetAssoc, SetsAreIndependent)
{
    // 4 sets x 1 way: tags 0..3 map to distinct sets.
    SetAssocCache<int> c(4, 1);
    for (std::uint64_t t = 0; t < 4; ++t)
        EXPECT_FALSE(c.insert(t, static_cast<int>(t)).has_value());
    EXPECT_EQ(c.size(), 4u);
    // Tag 4 collides only with tag 0.
    auto ev = c.insert(4, 4);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->tag, 0u);
}

TEST(SetAssoc, EraseRemovesEntry)
{
    SetAssocCache<int> c(4, 2);
    c.insert(9, 90);
    auto removed = c.erase(9);
    ASSERT_TRUE(removed.has_value());
    EXPECT_EQ(*removed, 90);
    EXPECT_EQ(c.peek(9), nullptr);
    EXPECT_EQ(c.size(), 0u);
    EXPECT_FALSE(c.erase(9).has_value());
}

TEST(SetAssoc, ClearDropsEverything)
{
    SetAssocCache<int> c(4, 4);
    for (std::uint64_t t = 0; t < 16; ++t)
        c.insert(t, 0);
    c.clear();
    EXPECT_EQ(c.size(), 0u);
    for (std::uint64_t t = 0; t < 16; ++t)
        EXPECT_EQ(c.peek(t), nullptr);
}

TEST(SetAssoc, ForEachVisitsAllValidEntries)
{
    SetAssocCache<int> c(8, 2);
    for (std::uint64_t t = 0; t < 10; ++t)
        c.insert(t, static_cast<int>(t));
    std::set<std::uint64_t> seen;
    c.forEach([&](std::uint64_t tag, int &) { seen.insert(tag); });
    EXPECT_EQ(seen.size(), c.size());
}

TEST(SetAssoc, CapacityFullWithoutEvictionAcrossSets)
{
    SetAssocCache<int> c(4, 4);
    // 16 tags that spread evenly over 4 sets never evict.
    for (std::uint64_t t = 0; t < 16; ++t)
        EXPECT_FALSE(c.insert(t, 1).has_value());
    EXPECT_EQ(c.size(), c.capacity());
}

TEST(SetAssocDeath, NonPowerOfTwoSetsRejected)
{
    using Cache = SetAssocCache<int>;
    EXPECT_DEATH(Cache(3, 2), "power of two");
}

// LRU property under a pseudo-random workload: after touching a key it
// must survive (ways-1) subsequent distinct insertions into its set.
TEST(SetAssoc, TouchedKeySurvivesWaysMinusOneInsertions)
{
    constexpr std::size_t ways = 8;
    SetAssocCache<int> c(1, ways);
    for (std::uint64_t t = 0; t < ways; ++t)
        c.insert(t, 0);
    c.touch(3);
    for (std::uint64_t t = 100; t < 100 + ways - 1; ++t)
        c.insert(t, 0);
    EXPECT_NE(c.peek(3), nullptr);
    c.insert(999, 0);
    EXPECT_EQ(c.peek(3), nullptr);
}
