/**
 * @file
 * Host self-profiler unit tests: disabled-is-off, nesting arithmetic,
 * reset semantics, machine-run attribution, and the JSON rendering.
 */

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "obs/profiler.hh"
#include "runner/machine.hh"
#include "workloads/apps.hh"

using namespace hopp;
using namespace hopp::obs;

namespace
{

/** Every test starts from a dead profiler with zeroed tables. */
class ProfilerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prof::enable(false);
        prof::reset();
    }

    void TearDown() override { prof::enable(false); }
};

TEST_F(ProfilerTest, DisabledRecordsNothing)
{
    {
        HOPP_PROF(Run);
        HOPP_PROF(VmsAccess);
    }
    prof::Report r = prof::collect();
    EXPECT_EQ(r.wallNs(), 0u);
    for (unsigned z = 0; z < prof::zoneCount; ++z)
        EXPECT_EQ(r.zones[z].count, 0u) << prof::zoneName(
            static_cast<prof::Zone>(z));
}

TEST_F(ProfilerTest, NestingAttributesChildTimeToParent)
{
    prof::enable(true);
    {
        HOPP_PROF(Run);
        {
            HOPP_PROF(VmsAccess);
            {
                HOPP_PROF(RadixWalk);
            }
        }
        {
            HOPP_PROF(Llc);
        }
    }
    prof::Report r = prof::collect();

    auto slot = [&](prof::Zone z) -> const prof::ZoneSlot & {
        return r.zones[static_cast<unsigned>(z)];
    };
    EXPECT_EQ(slot(prof::Zone::Run).count, 1u);
    EXPECT_EQ(slot(prof::Zone::VmsAccess).count, 1u);
    EXPECT_EQ(slot(prof::Zone::RadixWalk).count, 1u);
    EXPECT_EQ(slot(prof::Zone::Llc).count, 1u);

    // Run's inclusive time covers both children; its child time is
    // what VmsAccess and Llc accumulated, so self <= total and the
    // walk's time is attributed to VmsAccess, not Run.
    EXPECT_GE(slot(prof::Zone::Run).totalNs,
              slot(prof::Zone::VmsAccess).totalNs +
                  slot(prof::Zone::Llc).totalNs);
    EXPECT_GE(slot(prof::Zone::VmsAccess).totalNs,
              slot(prof::Zone::RadixWalk).totalNs);
    EXPECT_EQ(slot(prof::Zone::VmsAccess).childNs,
              slot(prof::Zone::RadixWalk).totalNs);
    EXPECT_LE(r.selfNs(prof::Zone::Run), slot(prof::Zone::Run).totalNs);
    EXPECT_LE(r.attributedNs(), r.wallNs());
}

TEST_F(ProfilerTest, ReentrantZoneCountsOnceForTime)
{
    prof::enable(true);
    {
        HOPP_PROF(Reclaim);
        {
            HOPP_PROF(Reclaim); // nested re-entry: counted, not timed
        }
    }
    prof::Report r = prof::collect();
    const prof::ZoneSlot &s =
        r.zones[static_cast<unsigned>(prof::Zone::Reclaim)];
    EXPECT_EQ(s.count, 2u);
    // Only the outer activation accumulated, so self == total (the
    // nested entry must not have pushed its elapsed time into childNs).
    EXPECT_EQ(r.selfNs(prof::Zone::Reclaim), s.totalNs);
}

TEST_F(ProfilerTest, ConditionalArmingFollowsThePredicate)
{
    prof::enable(true);
    {
        HOPP_PROF_IF(FaultPath, false);
    }
    {
        HOPP_PROF_IF(FaultPath, true);
    }
    prof::Report r = prof::collect();
    EXPECT_EQ(r.zones[static_cast<unsigned>(prof::Zone::FaultPath)].count,
              1u);
}

TEST_F(ProfilerTest, ResetZeroesEverything)
{
    prof::enable(true);
    {
        HOPP_PROF(Run);
    }
    EXPECT_GT(prof::collect().zones[0].count, 0u);
    prof::reset();
    prof::Report r = prof::collect();
    for (unsigned z = 0; z < prof::zoneCount; ++z) {
        EXPECT_EQ(r.zones[z].totalNs, 0u);
        EXPECT_EQ(r.zones[z].count, 0u);
    }
}

TEST_F(ProfilerTest, MachineRunIsAttributed)
{
    prof::enable(true);
    workloads::WorkloadScale scale;
    scale.footprint = 0.2;
    scale.iterations = 0.3;
    runner::RunResult res = runner::runOne(
        "microbench", runner::SystemKind::Fastswap, 0.5, scale);
    ASSERT_GT(res.vms.faults(), 0u);

    prof::Report r = prof::collect();
    EXPECT_GT(r.wallNs(), 0u);
    auto count = [&](prof::Zone z) {
        return r.zones[static_cast<unsigned>(z)].count;
    };
    EXPECT_GT(count(prof::Zone::EventDispatch), 0u);
    EXPECT_GT(count(prof::Zone::WorkloadGen), 0u);
    EXPECT_GT(count(prof::Zone::VmsAccess), 0u);
    EXPECT_GT(count(prof::Zone::FaultPath), 0u);
    EXPECT_GT(count(prof::Zone::Reclaim), 0u);

    double f = r.attributedFraction();
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
}

TEST_F(ProfilerTest, JsonReportIsWellFormed)
{
    prof::enable(true);
    {
        HOPP_PROF(Run);
        {
            HOPP_PROF(Llc);
        }
    }
    std::string doc = prof::toJson(prof::collect());

    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(doc, v, &err)) << err;
    const json::Value *schema = v.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str(), "hopp-profile-v1");
    const json::Value *zones = v.find("zones");
    ASSERT_NE(zones, nullptr);
    ASSERT_TRUE(zones->isArray());
    EXPECT_EQ(zones->items().size(), prof::zoneCount);
    const json::Value *frac = v.find("attributed_fraction");
    ASSERT_NE(frac, nullptr);
    EXPECT_GE(frac->number(), 0.0);
    EXPECT_LE(frac->number(), 1.0);
}

} // namespace
