/**
 * @file
 * Replay-trace codec tests: varint/zigzag edge values, delta sign
 * changes, randomized full round trips, the raw HMTT fallback with
 * 8-bit sequence wraparound, truncated/corrupt file rejection, and
 * block-boundary resume (seekability).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.hh"
#include "trace/champsim.hh"
#include "trace/codec.hh"
#include "trace/trace_file.hh"

using namespace hopp;
using namespace hopp::trace;

namespace
{

std::string
tmpPath(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

void
expectEqualRecords(const ReplayRecord &a, const ReplayRecord &b,
                   std::size_t i)
{
    EXPECT_EQ(a.kind, b.kind) << "record " << i;
    EXPECT_EQ(a.isWrite, b.isWrite) << "record " << i;
    EXPECT_EQ(a.shared, b.shared) << "record " << i;
    EXPECT_EQ(a.huge, b.huge) << "record " << i;
    EXPECT_EQ(a.pid, b.pid) << "record " << i;
    EXPECT_EQ(a.pa, b.pa) << "record " << i;
    EXPECT_EQ(a.vpn, b.vpn) << "record " << i;
    EXPECT_EQ(a.ppn, b.ppn) << "record " << i;
    EXPECT_EQ(a.tick, b.tick) << "record " << i;
}

std::vector<ReplayRecord>
readAll(TraceReader &reader)
{
    std::vector<ReplayRecord> out;
    ReplayRecord buf[37]; // deliberately odd: straddles block edges
    std::size_t n;
    while ((n = reader.nextBatch(buf, std::size(buf))) > 0)
        out.insert(out.end(), buf, buf + n);
    return out;
}

std::vector<ReplayRecord>
roundTrip(const std::vector<ReplayRecord> &in, const char *name,
          TraceWriter::Options opt = {})
{
    std::string path = tmpPath(name);
    TraceWriter w(path, opt);
    for (const auto &r : in)
        w.append(r);
    EXPECT_TRUE(w.finish());
    TraceReader reader;
    EXPECT_EQ(reader.open(path), TraceIoStatus::Ok);
    auto out = readAll(reader);
    EXPECT_EQ(reader.status(), TraceIoStatus::Ok);
    std::remove(path.c_str());
    return out;
}

} // namespace

TEST(Varint, EdgeValuesRoundTrip)
{
    const std::uint64_t values[] = {
        0,       1,      127,        128,
        129,     16383,  16384,      16385,
        1u << 21, (1ull << 35) - 1, 1ull << 35, 1ull << 62,
        ~0ull - 1, ~0ull};
    for (std::uint64_t v : values) {
        std::vector<std::uint8_t> buf;
        putVarint(buf, v);
        EXPECT_LE(buf.size(), 10u);
        const std::uint8_t *p = buf.data();
        std::uint64_t back = 0;
        ASSERT_TRUE(getVarint(p, buf.data() + buf.size(), back));
        EXPECT_EQ(back, v);
        EXPECT_EQ(p, buf.data() + buf.size());
    }
}

TEST(Varint, TruncatedAndOverlongRejected)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, 1ull << 40);
    const std::uint8_t *p = buf.data();
    std::uint64_t v;
    // Cut the buffer one byte short of the terminator.
    EXPECT_FALSE(getVarint(p, buf.data() + buf.size() - 1, v));
    // 11 continuation bytes cannot fit a 64-bit value.
    std::vector<std::uint8_t> overlong(11, 0x80);
    overlong.push_back(0x01);
    p = overlong.data();
    EXPECT_FALSE(getVarint(p, overlong.data() + overlong.size(), v));
}

TEST(Zigzag, SignEdgesRoundTrip)
{
    const std::int64_t values[] = {
        0,  -1, 1,  -2, 2,  63, -64, INT64_MAX, INT64_MIN,
        INT64_MAX - 1, INT64_MIN + 1};
    for (std::int64_t v : values)
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    // Small magnitudes must stay small (the property deltas rely on).
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
}

TEST(TraceCodec, DeltaSignChangesRoundTrip)
{
    // Strictly descending then ascending addresses, tick deltas of
    // both signs, interleaved PTE traffic: every delta field changes
    // sign mid-stream.
    std::vector<ReplayRecord> in;
    std::uint64_t ticks[] = {100, 100, 50, 5000, 4999, 5013};
    for (int i = 0; i < 6; ++i) {
        ReplayRecord r;
        r.kind = ReplayKind::Mc;
        r.isWrite = i % 2 == 0;
        r.pa = pageBase(Ppn{static_cast<std::uint64_t>(
                   i < 3 ? 1000 - 100 * i : 100 * i)}) +
               static_cast<std::uint64_t>(i) * lineBytes;
        r.tick = Tick{ticks[i]};
        in.push_back(r);
        ReplayRecord p;
        p.kind = i % 2 ? ReplayKind::PteSet : ReplayKind::PteClear;
        p.pid = Pid{static_cast<std::uint64_t>(7 + i)};
        p.shared = i % 2 != 0;
        p.huge = i == 3;
        p.vpn = Vpn{static_cast<std::uint64_t>(i < 3 ? 1u << 20 : 5)};
        p.ppn = Ppn{static_cast<std::uint64_t>(i < 3 ? 9 : 1u << 19)};
        p.tick = Tick{ticks[i]};
        in.push_back(p);
    }
    auto out = roundTrip(in, "hopp_codec_signs.htrc");
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        expectEqualRecords(in[i], out[i], i);
}

TEST(TraceCodec, RandomizedRoundTrip)
{
    Pcg32 rng(0xC0DEC, 42);
    std::vector<ReplayRecord> in;
    std::uint64_t tick = 0;
    for (int i = 0; i < 20000; ++i) {
        ReplayRecord r;
        switch (rng.below(8)) {
          case 0:
            r.kind = ReplayKind::PteSet;
            break;
          case 1:
            r.kind = ReplayKind::PteClear;
            break;
          case 2:
            r.kind = ReplayKind::PteInit;
            break;
          default:
            r.kind = ReplayKind::Mc;
            break;
        }
        // Ticks mostly advance, occasionally jump far or step back.
        switch (rng.below(16)) {
          case 0:
            tick += rng.below(1u << 30);
            break;
          case 1:
            tick -= rng.below(1000);
            break;
          default:
            tick += rng.below(15);
            break;
        }
        r.tick = Tick{tick};
        if (r.kind == ReplayKind::Mc) {
            r.isWrite = rng.below(2) != 0;
            r.pa = pageBase(Ppn{rng.below(1u << 22)}) +
                   rng.below(linesPerPage) * lineBytes;
        } else {
            r.pid = Pid{rng.below(0xFFFF)};
            r.shared = rng.below(2) != 0;
            r.huge = r.kind != ReplayKind::PteClear && rng.below(8) == 0;
            r.vpn = Vpn{rng.below64(1ull << 36)};
            r.ppn = Ppn{rng.below(1u << 22)};
        }
        in.push_back(r);
    }
    // Small blocks so the stream crosses many block boundaries.
    TraceWriter::Options opt;
    opt.blockRecords = 257;
    auto out = roundTrip(in, "hopp_codec_random.htrc", opt);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        expectEqualRecords(in[i], out[i], i);
}

TEST(TraceCodec, RawFallbackPreservesHmttWireFieldsAcrossSeqWrap)
{
    // 600 records: the 8-bit HMTT sequence number wraps twice.
    std::string path = tmpPath("hopp_codec_raw.htrc");
    TraceWriter::Options opt;
    opt.codec = TraceCodec::Raw16;
    opt.blockRecords = 100;
    std::vector<HmttRecord> in;
    {
        TraceWriter w(path, opt);
        for (int i = 0; i < 600; ++i) {
            HmttRecord r;
            r.seq = static_cast<std::uint8_t>(i);
            r.timestamp = static_cast<std::uint8_t>(i / 3);
            r.isWrite = i % 5 == 0;
            r.addr29 = toAddr29(pageBase(
                Ppn{static_cast<std::uint64_t>(i) * 7 % (1 << 17)}));
            r.fullTime = Tick{static_cast<std::uint64_t>(i) * 100};
            in.push_back(r);
            w.appendRaw(r);
        }
        ASSERT_TRUE(w.finish());
        // 16 B framing + block headers: no compression in raw mode.
        EXPECT_GE(w.bytesWritten(), 600u * 16);
    }
    TraceReader reader;
    ASSERT_EQ(reader.open(path), TraceIoStatus::Ok);
    EXPECT_EQ(reader.codec(), TraceCodec::Raw16);
    auto out = readAll(reader);
    ASSERT_EQ(reader.status(), TraceIoStatus::Ok);
    ASSERT_EQ(out.size(), in.size());
    std::uint8_t expect_seq = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(in[i].seq, expect_seq++); // wraps at 256, 512
        EXPECT_EQ(out[i].kind, ReplayKind::Mc);
        EXPECT_EQ(out[i].isWrite, in[i].isWrite);
        EXPECT_EQ(lineOf(out[i].pa), // hopp-lint: allow(raw) wire-field check
                  static_cast<std::uint64_t>(in[i].addr29));
        EXPECT_EQ(out[i].tick, in[i].fullTime);
    }
    std::remove(path.c_str());
}

TEST(TraceCodec, RawCodecDropsPteRecordsButKeepsMc)
{
    std::string path = tmpPath("hopp_codec_rawdrop.htrc");
    TraceWriter::Options opt;
    opt.codec = TraceCodec::Raw16;
    TraceWriter w(path, opt);
    ReplayRecord pte;
    pte.kind = ReplayKind::PteSet;
    pte.pid = Pid{1};
    w.append(pte);
    ReplayRecord mc;
    mc.kind = ReplayKind::Mc;
    mc.pa = pageBase(Ppn{17});
    mc.tick = Tick{300};
    w.append(mc);
    ASSERT_TRUE(w.finish());
    EXPECT_EQ(w.pteDropped(), 1u);
    EXPECT_EQ(w.records(), 1u);
    TraceReader reader;
    ASSERT_EQ(reader.open(path), TraceIoStatus::Ok);
    auto out = readAll(reader);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].pa, pageBase(Ppn{17}));
    std::remove(path.c_str());
}

TEST(TraceCodec, TruncatedFilesRejected)
{
    std::string path = tmpPath("hopp_codec_trunc.htrc");
    std::vector<ReplayRecord> in;
    for (int i = 0; i < 1000; ++i) {
        ReplayRecord r;
        r.pa = pageBase(Ppn{static_cast<std::uint64_t>(i)});
        r.tick = Tick{static_cast<std::uint64_t>(i)};
        in.push_back(r);
    }
    {
        TraceWriter w(path);
        for (const auto &r : in)
            w.append(r);
        ASSERT_TRUE(w.finish());
    }
    long full;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        full = std::ftell(f);
        std::fclose(f);
    }
    // Cut mid-payload, mid-block-header, and mid-file-header: all must
    // surface an error status, never a silently short trace.
    for (long cut : {full - 7L, 16L + 3L, 5L}) {
        ASSERT_EQ(::truncate(path.c_str(), cut), 0);
        TraceReader reader;
        auto st = reader.open(path);
        if (st == TraceIoStatus::Ok) {
            ReplayRecord buf[128];
            while (reader.nextBatch(buf, std::size(buf)) > 0) {
            }
            st = reader.status();
        }
        EXPECT_NE(st, TraceIoStatus::Ok) << "cut at " << cut;
    }
    std::remove(path.c_str());
}

TEST(TraceCodec, MissingFileAndBadMagicRejected)
{
    TraceReader reader;
    EXPECT_EQ(reader.open("/nonexistent/zzz.htrc"),
              TraceIoStatus::OpenFailed);
    std::string path = tmpPath("hopp_codec_badmagic.htrc");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace file at all.....", f);
    std::fclose(f);
    EXPECT_EQ(reader.open(path), TraceIoStatus::BadHeader);
    std::remove(path.c_str());
}

TEST(TraceCodec, BlockBoundaryResume)
{
    // Blocks must decode independently: skip the first k blocks and
    // the remainder must equal the tail of a full sequential read.
    std::string path = tmpPath("hopp_codec_seek.htrc");
    TraceWriter::Options opt;
    opt.blockRecords = 64;
    Pcg32 rng(0x5EED, 7);
    std::vector<ReplayRecord> in;
    std::uint64_t tick = 0;
    {
        TraceWriter w(path, opt);
        for (int i = 0; i < 64 * 5 + 13; ++i) {
            ReplayRecord r;
            r.kind = i % 9 == 0 ? ReplayKind::PteSet : ReplayKind::Mc;
            tick += rng.below(200);
            r.tick = Tick{tick};
            if (r.kind == ReplayKind::Mc) {
                r.pa = pageBase(Ppn{rng.below(1u << 20)});
            } else {
                r.pid = Pid{3};
                r.vpn = Vpn{rng.below(1u << 20)};
                r.ppn = Ppn{rng.below(1u << 20)};
            }
            in.push_back(r);
            w.append(r);
        }
        ASSERT_TRUE(w.finish());
    }
    for (std::uint64_t skip : {1u, 3u, 5u}) {
        TraceReader reader;
        ASSERT_EQ(reader.open(path), TraceIoStatus::Ok);
        ASSERT_EQ(reader.skipBlocks(skip), TraceIoStatus::Ok);
        auto tail = readAll(reader);
        EXPECT_EQ(reader.status(), TraceIoStatus::Ok);
        std::size_t from = skip * 64;
        ASSERT_EQ(tail.size(), in.size() - from) << "skip " << skip;
        for (std::size_t i = 0; i < tail.size(); ++i)
            expectEqualRecords(in[from + i], tail[i], i);
    }
    std::remove(path.c_str());
}

TEST(ChampSim, ImportSynthesizesMappingsAndAccesses)
{
    // Hand-build two 64-byte ChampSim instructions: one with a load
    // and a store, one touching the same page again (no new PteSet).
    std::string in_path = tmpPath("hopp_champsim_in.bin");
    std::string out_path = tmpPath("hopp_champsim_out.htrc");
    {
        std::FILE *f = std::fopen(in_path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::uint8_t instr[64] = {};
        auto put64 = [&](unsigned off, std::uint64_t v) {
            std::memcpy(instr + off, &v, 8);
        };
        // Layout: ip @0, flags/regs @8..15, dst mem @16, src mem @32.
        put64(0, 0x400000);
        put64(16, 0x7000'1040);       // store
        put64(32, 0x7000'2000);       // load
        ASSERT_EQ(std::fwrite(instr, 1, 64, f), 64u);
        std::memset(instr, 0, sizeof(instr));
        put64(0, 0x400004);
        put64(32, 0x7000'2100); // load, same page as before
        ASSERT_EQ(std::fwrite(instr, 1, 64, f), 64u);
        std::fclose(f);
    }
    auto imp = importChampSim(in_path, out_path);
    EXPECT_EQ(imp.status, TraceIoStatus::Ok);
    EXPECT_EQ(imp.instructions, 2u);
    EXPECT_EQ(imp.accesses, 3u);
    EXPECT_EQ(imp.pages, 2u);
    TraceReader reader;
    ASSERT_EQ(reader.open(out_path), TraceIoStatus::Ok);
    auto recs = readAll(reader);
    ASSERT_EQ(recs.size(), 5u); // 2 PteSet + 3 Mc
    EXPECT_EQ(recs[0].kind, ReplayKind::PteSet);
    EXPECT_EQ(recs[0].vpn.raw(), // hopp-lint: allow(raw) identity-map check
              recs[0].ppn.raw());
    // Loads convert before stores: PteSet+read, then PteSet+write.
    EXPECT_EQ(recs[1].kind, ReplayKind::Mc);
    EXPECT_FALSE(recs[1].isWrite);
    EXPECT_EQ(recs[2].kind, ReplayKind::PteSet);
    EXPECT_EQ(recs[3].kind, ReplayKind::Mc);
    EXPECT_TRUE(recs[3].isWrite);
    // Second instruction's load reuses the already-mapped page.
    EXPECT_EQ(recs[4].kind, ReplayKind::Mc);
    EXPECT_FALSE(recs[4].isWrite);
    EXPECT_EQ(pageOf(recs[4].pa), pageOf(recs[1].pa));
    std::remove(in_path.c_str());
    std::remove(out_path.c_str());
    // Importer propagates input IO failures.
    EXPECT_EQ(importChampSim("/nonexistent/zzz.bin", out_path).status,
              TraceIoStatus::OpenFailed);
    std::remove(out_path.c_str());
}
