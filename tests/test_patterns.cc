/**
 * @file
 * Unit tests for the workload pattern primitives: page coverage,
 * stride structure, determinism, and combinators.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "workloads/patterns.hh"

using namespace hopp;
using namespace hopp::workloads;

namespace
{

/** Drain a generator into page-number visits (dedup consecutive). */
std::vector<Vpn>
pageTrace(AccessGenerator &gen, std::size_t cap = 1u << 22)
{
    std::vector<Vpn> pages;
    Access a;
    while (gen.next(a) && cap--) {
        Vpn p = pageOf(a.va);
        if (pages.empty() || pages.back() != p)
            pages.push_back(p);
    }
    return pages;
}

std::uint64_t
drainCount(AccessGenerator &gen)
{
    Access a;
    std::uint64_t n = 0;
    while (gen.next(a))
        ++n;
    return n;
}

} // namespace

TEST(SequentialScanGen, CoversAllPagesInOrder)
{
    SequentialScan::Params p;
    p.base = pageBase(Vpn{100});
    p.pages = 8;
    p.linesPerPage = 4;
    SequentialScan gen(p);
    auto pages = pageTrace(gen);
    ASSERT_EQ(pages.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(pages[i], Vpn{100 + i});
}

TEST(SequentialScanGen, AccessCountMatchesGeometry)
{
    SequentialScan::Params p;
    p.pages = 10;
    p.linesPerPage = 64;
    p.passes = 3;
    SequentialScan gen(p);
    EXPECT_EQ(drainCount(gen), 10u * 64u * 3u);
}

TEST(SequentialScanGen, StrideSkipsPages)
{
    SequentialScan::Params p;
    p.pages = 4;
    p.pageStride = 16;
    p.linesPerPage = 1;
    SequentialScan gen(p);
    auto pages = pageTrace(gen);
    EXPECT_EQ(pages, (std::vector<Vpn>{Vpn{0}, Vpn{16}, Vpn{32}, Vpn{48}}));
}

TEST(SequentialScanGen, BackwardScansDescend)
{
    SequentialScan::Params p;
    p.pages = 4;
    p.linesPerPage = 1;
    p.backward = true;
    SequentialScan gen(p);
    auto pages = pageTrace(gen);
    EXPECT_EQ(pages, (std::vector<Vpn>{Vpn{3}, Vpn{2}, Vpn{1}, Vpn{0}}));
}

TEST(SequentialScanGen, ResetReplaysIdentically)
{
    SequentialScan::Params p;
    p.pages = 16;
    p.linesPerPage = 2;
    SequentialScan gen(p);
    auto first = pageTrace(gen);
    gen.reset();
    auto second = pageTrace(gen);
    EXPECT_EQ(first, second);
}

TEST(LadderGenPattern, TreadsAndRises)
{
    LadderGen::Params p;
    p.treadPages = 2;
    p.risePages = 16;
    p.treads = 3;
    p.linesPerPage = 1;
    LadderGen gen(p);
    auto pages = pageTrace(gen);
    EXPECT_EQ(pages, (std::vector<Vpn>{Vpn{0}, Vpn{1}, Vpn{16}, Vpn{17}, Vpn{32},
                            Vpn{33}}));
}

TEST(RippleGenPattern, NetProgressCoversRegion)
{
    RippleGen::Params p;
    p.pages = 64;
    p.linesPerPage = 2;
    p.seed = 3;
    RippleGen gen(p);
    auto pages = pageTrace(gen);
    std::set<Vpn> distinct(pages.begin(), pages.end());
    // The advancing front guarantees full coverage.
    EXPECT_EQ(distinct.size(), 64u);
    EXPECT_LT(*distinct.begin(), Vpn{2});
}

TEST(RippleGenPattern, HopsAreBounded)
{
    RippleGen::Params p;
    p.pages = 256;
    p.jitter = 2;
    p.linesPerPage = 1;
    p.seed = 7;
    RippleGen gen(p);
    auto pages = pageTrace(gen);
    // Each visit is within jitter of a monotonically advancing front,
    // so consecutive visits can differ by at most 2*jitter + 1.
    for (std::size_t i = 1; i < pages.size(); ++i) {
        auto d = pages[i] > pages[i - 1] ? pages[i] - pages[i - 1]
                                         : pages[i - 1] - pages[i];
        EXPECT_LE(d, 2u * p.jitter + 1u) << "at " << i;
    }
}

TEST(GatherGenPattern, MixesSequentialAndGathers)
{
    GatherGen::Params p;
    p.seqPages = 16;
    p.seqLinesPerPage = 4;
    p.targetBase = pageBase(Vpn{1000});
    p.targetPages = 32;
    p.gatherPerLine = 1.0; // one gather per sequential line
    GatherGen gen(p);
    Access a;
    unsigned seq = 0, gather = 0;
    while (gen.next(a)) {
        if (pageOf(a.va) >= Vpn{1000})
            ++gather;
        else
            ++seq;
    }
    EXPECT_EQ(seq, 16u * 4u);
    EXPECT_EQ(gather, seq);
}

TEST(HotColdGenPattern, SkewFavoursHotPages)
{
    HotColdGen::Params p;
    p.pages = 100;
    p.accesses = 20000;
    p.zipfTheta = 1.0;
    p.linesPerVisit = 1;
    HotColdGen gen(p);
    std::vector<unsigned> counts(100, 0);
    Access a;
    while (gen.next(a))
        ++counts[pageOf(a.va).raw()];
    EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(ShortRunsGenPattern, RunsStayInRegionAndGcScans)
{
    ShortRunsGen::Params p;
    p.pages = 128;
    p.runs = 40;
    p.runPagesMin = 2;
    p.runPagesMax = 6;
    p.gcEvery = 10;
    p.gcFraction = 0.5;
    p.linesPerPage = 1;
    p.seed = 5;
    ShortRunsGen gen(p);
    auto pages = pageTrace(gen);
    for (Vpn v : pages)
        EXPECT_LT(v, Vpn{128});
    // GC bursts produce runs of ~64 consecutive pages: find one.
    unsigned longest = 1, cur = 1;
    for (std::size_t i = 1; i < pages.size(); ++i) {
        cur = pages[i] == pages[i - 1] + 1 ? cur + 1 : 1;
        longest = std::max(longest, cur);
    }
    EXPECT_GE(longest, 60u);
}

TEST(QuicksortGenPattern, TouchesWholeArrayAndTerminates)
{
    QuicksortGen::Params p;
    p.pages = 64;
    p.cutoffPages = 4;
    p.linesPerPage = 2;
    QuicksortGen gen(p);
    auto pages = pageTrace(gen, 1u << 20);
    std::set<Vpn> distinct(pages.begin(), pages.end());
    EXPECT_EQ(distinct.size(), 64u);
    // Partitioning alternates ends: early trace hops between the two
    // halves of the range.
    EXPECT_EQ(pages[0], Vpn{0});
    EXPECT_EQ(pages[1], Vpn{63});
}

TEST(PermutationGenPattern, VisitsEveryPageOncePerPass)
{
    PermutationGen::Params p;
    p.pages = 64;
    p.linesPerPage = 2;
    p.passes = 1;
    p.seed = 3;
    PermutationGen gen(p);
    auto pages = pageTrace(gen);
    std::set<Vpn> distinct(pages.begin(), pages.end());
    EXPECT_EQ(pages.size(), 64u);
    EXPECT_EQ(distinct.size(), 64u);
}

TEST(PermutationGenPattern, OrderIsIrregularButRepeatsAcrossPasses)
{
    PermutationGen::Params p;
    p.pages = 128;
    p.linesPerPage = 1;
    p.passes = 2;
    p.seed = 9;
    PermutationGen gen(p);
    auto pages = pageTrace(gen);
    ASSERT_EQ(pages.size(), 256u);
    // Pass 2 replays pass 1 exactly (fixed pointer graph).
    for (std::size_t i = 0; i < 128; ++i)
        EXPECT_EQ(pages[i], pages[128 + i]);
    // The order is not sorted (it is a nontrivial permutation).
    unsigned unit_strides = 0;
    for (std::size_t i = 1; i < 128; ++i)
        unit_strides += pages[i] == pages[i - 1] + 1;
    EXPECT_LT(unit_strides, 16u);
}

TEST(PermutationGenPattern, SeedChangesTheGraph)
{
    PermutationGen::Params p;
    p.pages = 64;
    p.linesPerPage = 1;
    p.seed = 1;
    PermutationGen a(p);
    p.seed = 2;
    PermutationGen b(p);
    auto pa = pageTrace(a);
    auto pb = pageTrace(b);
    EXPECT_NE(pa, pb);
}

TEST(GatherGenPattern, FixedSequenceRepeatsAcrossPasses)
{
    GatherGen::Params p;
    p.seqPages = 8;
    p.seqLinesPerPage = 4;
    p.targetBase = pageBase(Vpn{1000});
    p.targetPages = 64;
    p.gatherPerLine = 1.0;
    p.passes = 2;
    p.fixedSequence = true;
    GatherGen gen(p);
    std::vector<Vpn> gathers;
    Access a;
    while (gen.next(a)) {
        if (pageOf(a.va) >= Vpn{1000})
            gathers.push_back(pageOf(a.va));
    }
    ASSERT_EQ(gathers.size() % 2, 0u);
    std::size_t half = gathers.size() / 2;
    for (std::size_t i = 0; i < half; ++i)
        EXPECT_EQ(gathers[i], gathers[half + i]) << i;
}

TEST(PhasedGenCombinator, RunsPhasesInSequence)
{
    std::vector<GeneratorPtr> phases;
    SequentialScan::Params a;
    a.pages = 2;
    a.linesPerPage = 1;
    phases.push_back(std::make_unique<SequentialScan>(a));
    SequentialScan::Params b;
    b.base = pageBase(Vpn{100});
    b.pages = 2;
    b.linesPerPage = 1;
    phases.push_back(std::make_unique<SequentialScan>(b));
    PhasedGen gen(std::move(phases));
    auto pages = pageTrace(gen);
    EXPECT_EQ(pages, (std::vector<Vpn>{Vpn{0}, Vpn{1}, Vpn{100}, Vpn{101}}));
}

TEST(InterleaveGenCombinator, AlternatesBursts)
{
    std::vector<GeneratorPtr> subs;
    SequentialScan::Params a;
    a.pages = 4;
    a.linesPerPage = 1;
    subs.push_back(std::make_unique<SequentialScan>(a));
    SequentialScan::Params b;
    b.base = pageBase(Vpn{100});
    b.pages = 4;
    b.linesPerPage = 1;
    subs.push_back(std::make_unique<SequentialScan>(b));
    InterleaveGen gen(std::move(subs), /*burst=*/2);
    auto pages = pageTrace(gen);
    EXPECT_EQ(pages, (std::vector<Vpn>{Vpn{0}, Vpn{1}, Vpn{100}, Vpn{101}, Vpn{2},
                            Vpn{3}, Vpn{102}, Vpn{103}}));
}

TEST(InterleaveGenCombinator, DrainsUnevenSubstreams)
{
    std::vector<GeneratorPtr> subs;
    SequentialScan::Params a;
    a.pages = 1;
    a.linesPerPage = 1;
    subs.push_back(std::make_unique<SequentialScan>(a));
    SequentialScan::Params b;
    b.base = pageBase(Vpn{100});
    b.pages = 5;
    b.linesPerPage = 1;
    subs.push_back(std::make_unique<SequentialScan>(b));
    InterleaveGen gen(std::move(subs), 1);
    EXPECT_EQ(drainCount(gen), 6u);
}

TEST(LimitGenCombinator, CapsAccesses)
{
    SequentialScan::Params p;
    p.pages = 100;
    p.linesPerPage = 64;
    auto inner = std::make_unique<SequentialScan>(p);
    LimitGen gen(std::move(inner), 17);
    EXPECT_EQ(drainCount(gen), 17u);
}
