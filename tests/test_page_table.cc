/**
 * @file
 * Unit tests for the two-level radix page table: find/get/erase
 * semantics, the three properties the hot path leans on (stable
 * pointers, deterministic ascending iteration, per-leaf contiguity),
 * and cross-leaf / cross-process record isolation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "vm/page_table.hh"

using namespace hopp;
using namespace hopp::vm;

TEST(PageTable, GetCreatesAndFindSeesIt)
{
    PageTable pt;
    EXPECT_EQ(pt.size(), 0u);
    EXPECT_EQ(pt.find(Pid{1}, Vpn{7}), nullptr);

    PageInfo &pi = pt.get(Pid{1}, Vpn{7});
    EXPECT_EQ(pi.state, PageState::Untouched);
    EXPECT_EQ(pt.size(), 1u);
    EXPECT_EQ(pt.find(Pid{1}, Vpn{7}), &pi);

    // get() again is find-or-create: same record, no growth.
    EXPECT_EQ(&pt.get(Pid{1}, Vpn{7}), &pi);
    EXPECT_EQ(pt.size(), 1u);
}

TEST(PageTable, FindMissesAbsentPidLeafAndSlot)
{
    PageTable pt;
    pt.get(Pid{2}, Vpn{600}); // directory 1, one slot
    EXPECT_EQ(pt.find(Pid{9}, Vpn{600}), nullptr);  // absent pid
    EXPECT_EQ(pt.find(Pid{2}, Vpn{5000}), nullptr); // absent leaf
    EXPECT_EQ(pt.find(Pid{2}, Vpn{601}), nullptr);  // absent slot
}

TEST(PageTable, PresentRequiresResidentState)
{
    PageTable pt;
    PageInfo &pi = pt.get(Pid{1}, Vpn{3});
    EXPECT_FALSE(pt.present(Pid{1}, Vpn{3})); // Untouched record
    pi.state = PageState::Resident;
    EXPECT_TRUE(pt.present(Pid{1}, Vpn{3}));
    pi.state = PageState::Swapped;
    EXPECT_FALSE(pt.present(Pid{1}, Vpn{3}));
}

TEST(PageTable, EraseDropsRecordAndResetsSlotInPlace)
{
    PageTable pt;
    PageInfo &pi = pt.get(Pid{1}, Vpn{42});
    pi.state = PageState::Resident;
    pi.dirty = true;
    pt.erase(Pid{1}, Vpn{42});
    EXPECT_EQ(pt.size(), 0u);
    EXPECT_EQ(pt.find(Pid{1}, Vpn{42}), nullptr);

    // Re-creating the same key must come back in the default state --
    // and, because the leaf never moved, at the same address.
    PageInfo &again = pt.get(Pid{1}, Vpn{42});
    EXPECT_EQ(&again, &pi);
    EXPECT_EQ(again.state, PageState::Untouched);
    EXPECT_FALSE(again.dirty);

    // Erasing absent records is a no-op.
    pt.erase(Pid{1}, Vpn{43});
    pt.erase(Pid{7}, Vpn{1});
    EXPECT_EQ(pt.size(), 1u);
}

TEST(PageTable, PointersStayStableAcrossHeavyGrowth)
{
    PageTable pt;
    // Pin a handful of records spread across pids and leaves.
    std::vector<std::pair<Pid, Vpn>> pinned = {
        {Pid{1}, Vpn{0}},    {Pid{1}, Vpn{511}}, {Pid{1}, Vpn{512}},
        {Pid{3}, Vpn{4096}}, {Pid{5}, Vpn{77}},
    };
    std::vector<PageInfo *> addrs;
    for (auto [pid, vpn] : pinned)
        addrs.push_back(&pt.get(pid, vpn));

    // Grow hard: new pids (directory vector resizes), new leaves in
    // existing directories, and thousands of records.
    for (std::uint64_t p = 1; p <= 40; ++p)
        for (std::uint64_t v = 0; v < 300; ++v)
            pt.get(Pid{p}, Vpn{v * 37});

    for (std::size_t i = 0; i < pinned.size(); ++i)
        EXPECT_EQ(pt.find(pinned[i].first, pinned[i].second), addrs[i])
            << "record " << i << " moved";
}

TEST(PageTable, ForEachVisitsAscendingKeyOrder)
{
    PageTable pt;
    // Insert in scrambled order across pids, leaves, and slots.
    std::vector<std::pair<Pid, Vpn>> entries = {
        {Pid{4}, Vpn{1}},   {Pid{1}, Vpn{513}}, {Pid{1}, Vpn{2}},
        {Pid{2}, Vpn{800}}, {Pid{1}, Vpn{511}}, {Pid{4}, Vpn{0}},
        {Pid{2}, Vpn{3}},   {Pid{1}, Vpn{512}},
    };
    for (auto [pid, vpn] : entries)
        pt.get(pid, vpn);

    std::vector<std::uint64_t> keys;
    pt.forEach([&](std::uint64_t key, const PageInfo &) {
        keys.push_back(key);
    });
    ASSERT_EQ(keys.size(), entries.size());
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));

    std::vector<std::uint64_t> expected;
    for (auto [pid, vpn] : entries)
        expected.push_back(pageKey(pid, vpn));
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(keys, expected);
}

TEST(PageTable, ForEachPresentFiltersToResident)
{
    PageTable pt;
    pt.get(Pid{1}, Vpn{1}).state = PageState::Resident;
    pt.get(Pid{1}, Vpn{2}).state = PageState::Swapped;
    pt.get(Pid{2}, Vpn{3}).state = PageState::Resident;
    pt.get(Pid{2}, Vpn{4}); // Untouched

    std::vector<std::pair<Pid, Vpn>> seen;
    pt.forEachPresent([&](Pid pid, Vpn vpn, const PageInfo &pi) {
        EXPECT_EQ(pi.state, PageState::Resident);
        seen.emplace_back(pid, vpn);
    });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], (std::pair<Pid, Vpn>{Pid{1}, Vpn{1}}));
    EXPECT_EQ(seen[1], (std::pair<Pid, Vpn>{Pid{2}, Vpn{3}}));
}

TEST(PageTable, KeysOfIsScopedToPidAndSortedByVpn)
{
    PageTable pt;
    pt.get(Pid{2}, Vpn{700});
    pt.get(Pid{2}, Vpn{3});
    pt.get(Pid{2}, Vpn{512});
    pt.get(Pid{9}, Vpn{1}); // other process

    auto keys = pt.keysOf(Pid{2});
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keyVpn(keys[0]), Vpn{3});
    EXPECT_EQ(keyVpn(keys[1]), Vpn{512});
    EXPECT_EQ(keyVpn(keys[2]), Vpn{700});
    for (auto k : keys)
        EXPECT_EQ(keyPid(k), Pid{2});

    EXPECT_TRUE(pt.keysOf(Pid{55}).empty());
}

TEST(PageTable, CountStateTalliesAcrossProcesses)
{
    PageTable pt;
    pt.get(Pid{1}, Vpn{1}).state = PageState::Resident;
    pt.get(Pid{2}, Vpn{1}).state = PageState::Resident;
    pt.get(Pid{2}, Vpn{2}).state = PageState::Swapped;
    EXPECT_EQ(pt.countState(PageState::Resident), 2u);
    EXPECT_EQ(pt.countState(PageState::Swapped), 1u);
    EXPECT_EQ(pt.countState(PageState::SwapCached), 0u);
}

TEST(PageTable, AdjacentVpnsShareALeafAcrossItsBoundary)
{
    PageTable pt;
    // 510..513 straddle the 512-page leaf boundary: four distinct
    // records, all present, all individually erasable.
    for (std::uint64_t v = 510; v <= 513; ++v)
        pt.get(Pid{1}, Vpn{v}).state = PageState::Resident;
    EXPECT_EQ(pt.size(), 4u);
    pt.erase(Pid{1}, Vpn{512});
    EXPECT_EQ(pt.find(Pid{1}, Vpn{512}), nullptr);
    EXPECT_NE(pt.find(Pid{1}, Vpn{511}), nullptr);
    EXPECT_NE(pt.find(Pid{1}, Vpn{513}), nullptr);
    EXPECT_EQ(pt.size(), 3u);
}
