/**
 * @file
 * Unit tests for the HMTT emulation: record packing, ring buffer
 * semantics, the MC tap, bandwidth accounting, and trace file IO.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "trace/hmtt.hh"
#include "trace/trace_io.hh"

using namespace hopp;
using namespace hopp::trace;

TEST(HmttRecord, PackUnpackRoundTrips)
{
    HmttRecord r;
    r.seq = 0xAB;
    r.timestamp = 0xCD;
    r.isWrite = true;
    r.addr29 = (1u << 29) - 5;
    HmttRecord u = HmttRecord::unpack(r.pack());
    EXPECT_EQ(u.seq, r.seq);
    EXPECT_EQ(u.timestamp, r.timestamp);
    EXPECT_EQ(u.isWrite, r.isWrite);
    EXPECT_EQ(u.addr29, r.addr29);
}

TEST(HmttRecord, PpnDerivesFromAddr29)
{
    HmttRecord r;
    r.addr29 = toAddr29(pageBase(Ppn{7}) + 3 * lineBytes);
    EXPECT_EQ(r.ppn(), Ppn{7});
}

TEST(HmttRecord, PackIs46Bits)
{
    HmttRecord r;
    r.seq = 0xFF;
    r.timestamp = 0xFF;
    r.isWrite = true;
    r.addr29 = (1u << 29) - 1;
    EXPECT_LT(r.pack(), 1ull << 46);
}

TEST(RingBufferT, PushPopFifo)
{
    RingBuffer<int> ring(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.push(i));
    EXPECT_FALSE(ring.push(99)); // full -> drop
    EXPECT_EQ(ring.dropped(), 1u);
    for (int i = 0; i < 4; ++i) {
        auto v = ring.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(ring.pop().has_value());
}

TEST(RingBufferT, WrapsAround)
{
    RingBuffer<int> ring(3);
    ring.push(1);
    ring.push(2);
    ring.pop();
    ring.push(3);
    ring.push(4);
    EXPECT_EQ(*ring.pop(), 2);
    EXPECT_EQ(*ring.pop(), 3);
    EXPECT_EQ(*ring.pop(), 4);
    EXPECT_EQ(ring.pushed(), 4u);
}

TEST(HmttTap, RecordsMcTraffic)
{
    mem::Dram dram(16);
    mem::MemCtrl mc(dram);
    Hmtt hmtt(dram);
    mc.attach(&hmtt);
    mc.demandRead(pageBase(Ppn{3}) + 64, Tick{1000});
    mc.writeback(pageBase(Ppn{4}), Tick{2000});
    EXPECT_EQ(hmtt.captured(), 2u);
    auto r1 = hmtt.ring().pop();
    ASSERT_TRUE(r1.has_value());
    EXPECT_FALSE(r1->isWrite);
    EXPECT_EQ(r1->ppn(), Ppn{3});
    EXPECT_EQ(r1->fullTime, Tick{1000});
    auto r2 = hmtt.ring().pop();
    ASSERT_TRUE(r2.has_value());
    EXPECT_TRUE(r2->isWrite);
}

TEST(HmttTap, ChargesTraceWriteBandwidth)
{
    mem::Dram dram(16);
    mem::MemCtrl mc(dram);
    Hmtt hmtt(dram);
    mc.attach(&hmtt);
    for (int i = 0; i < 10; ++i)
        mc.demandRead(PhysAddr{i * lineBytes}, Tick{});
    EXPECT_EQ(dram.traffic(mem::TrafficSource::TraceWrite), 80u);
}

TEST(HmttTap, SequenceNumbersWrapContinuously)
{
    mem::Dram dram(16);
    mem::MemCtrl mc(dram);
    HmttConfig cfg;
    cfg.ringCapacity = 1 << 12;
    Hmtt hmtt(dram, cfg);
    mc.attach(&hmtt);
    for (int i = 0; i < 300; ++i)
        mc.demandRead(PhysAddr{}, Tick{});
    std::uint8_t expect = 0;
    while (auto r = hmtt.ring().pop())
        EXPECT_EQ(r->seq, expect++);
}

TEST(TraceIo, WriteReadRoundTrip)
{
    std::vector<HmttRecord> recs;
    for (int i = 0; i < 100; ++i) {
        HmttRecord r;
        r.seq = static_cast<std::uint8_t>(i);
        r.isWrite = i % 3 == 0;
        r.addr29 = toAddr29(
            pageBase(Ppn{static_cast<std::uint64_t>(i)}) +
            (i % 64) * lineBytes);
        r.fullTime = Tick{static_cast<std::uint64_t>(i) * 123};
        recs.push_back(r);
    }
    std::string path = ::testing::TempDir() + "/hopp_trace_test.bin";
    ASSERT_TRUE(writeTraceFile(path, recs));
    std::vector<HmttRecord> back;
    ASSERT_EQ(readTraceFile(path, back), TraceIoStatus::Ok);
    ASSERT_EQ(back.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(back[i].seq, recs[i].seq);
        EXPECT_EQ(back[i].isWrite, recs[i].isWrite);
        EXPECT_EQ(back[i].addr29, recs[i].addr29);
        EXPECT_EQ(back[i].fullTime, recs[i].fullTime);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReportsOpenFailure)
{
    std::vector<HmttRecord> out;
    EXPECT_EQ(readTraceFile("/nonexistent/zzz.bin", out),
              TraceIoStatus::OpenFailed);
    EXPECT_TRUE(out.empty());
}

TEST(TraceIo, EmptyFileIsOkAndEmpty)
{
    std::string path = ::testing::TempDir() + "/hopp_trace_empty.bin";
    ASSERT_TRUE(writeTraceFile(path, {}));
    std::vector<HmttRecord> out;
    EXPECT_EQ(readTraceFile(path, out), TraceIoStatus::Ok);
    EXPECT_TRUE(out.empty());
    std::remove(path.c_str());
}

TEST(TraceIo, PartialRecordReportsTruncation)
{
    std::vector<HmttRecord> recs(3);
    std::string path = ::testing::TempDir() + "/hopp_trace_trunc.bin";
    ASSERT_TRUE(writeTraceFile(path, recs));
    ASSERT_EQ(::truncate(path.c_str(), 3 * 16 - 5), 0);
    std::vector<HmttRecord> out;
    EXPECT_EQ(readTraceFile(path, out), TraceIoStatus::Truncated);
    EXPECT_EQ(out.size(), 2u); // the complete prefix is still returned
    std::remove(path.c_str());
}
