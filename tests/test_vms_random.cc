/**
 * @file
 * Randomized stress test of the VMS: a fuzzer drives random accesses,
 * both prefetch flavours, batch injections and event draining against
 * a small machine, and after every step a full consistency audit runs:
 *
 *  - frame accounting (DRAM used == pages holding frames, no aliasing)
 *  - cgroup charge == charged pages
 *  - LRU membership == pages holding frames
 *  - state-flag coherence (inflight only when Swapped, injected only
 *    when Resident, swapcache pages always have a swap copy)
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.hh"
#include "vm/vms.hh"

using namespace hopp;
using namespace hopp::vm;

namespace
{

class Fuzzer : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static constexpr Pid pidA{1};
    static constexpr Pid pidB{2};
    static constexpr std::uint64_t space = 96; // vpns per process

    Fuzzer() : rng_(GetParam())
    {
        vm::VmsConfig vcfg;
        vcfg.kswapdEnabled = (GetParam() & 1) != 0;
        eq = std::make_unique<sim::EventQueue>();
        dram = std::make_unique<mem::Dram>(72);
        mc = std::make_unique<mem::MemCtrl>(*dram);
        llc = std::make_unique<mem::Llc>(mem::LlcConfig{16 << 10, 4});
        fabric =
            std::make_unique<net::RdmaFabric>(*eq, net::LinkConfig{});
        node = std::make_unique<remote::RemoteNode>(1 << 16);
        backend = std::make_unique<remote::SwapBackend>(*fabric, *node);
        vms = std::make_unique<Vms>(*eq, *dram, *mc, *llc, *backend,
                                    vcfg);
        vms->createProcess(pidA, 32);
        vms->createProcess(pidB, 24);
    }

    void
    audit()
    {
        std::uint64_t frames_held = 0;
        std::map<Pid, std::uint64_t> charged;
        std::set<Ppn> frames_seen;
        for (Pid pid : {pidA, pidB}) {
            for (std::uint64_t v = 0; v < space; ++v) {
                const PageInfo *pi =
                    vms->pageTable().find(pid, Vpn{v});
                if (!pi)
                    continue;
                switch (pi->state) {
                  case PageState::Resident:
                  case PageState::SwapCached:
                    ++frames_held;
                    ASSERT_NE(pi->ppn, Ppn{});
                    ASSERT_TRUE(frames_seen.insert(pi->ppn).second)
                        << "frame aliasing on ppn " << pi->ppn;
                    ASSERT_TRUE(pi->inLru);
                    ASSERT_FALSE(pi->inflight);
                    break;
                  case PageState::Swapped:
                    ASSERT_FALSE(pi->inLru);
                    ASSERT_NE(pi->slot, remote::noSlot);
                    break;
                  case PageState::Untouched:
                    ASSERT_FALSE(pi->inLru);
                    ASSERT_FALSE(pi->inflight);
                    break;
                }
                if (pi->charged) {
                    ++charged[pid];
                    ASSERT_NE(pi->state, PageState::Untouched);
                }
                if (pi->injected) {
                    ASSERT_EQ(pi->state, PageState::Resident);
                }
                if (pi->state == PageState::SwapCached) {
                    ASSERT_TRUE(pi->hasSwapCopy);
                }
            }
        }
        ASSERT_EQ(dram->usedFrames(), frames_held);
        ASSERT_EQ(vms->cgroup(pidA).charged(), charged[pidA]);
        ASSERT_EQ(vms->cgroup(pidB).charged(), charged[pidB]);
        ASSERT_EQ(vms->cgroup(pidA).lruSize() + vms->cgroup(pidB).lruSize(),
                  frames_held);
    }

    Pcg32 rng_;
    Tick now_;
    std::unique_ptr<sim::EventQueue> eq;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::MemCtrl> mc;
    std::unique_ptr<mem::Llc> llc;
    std::unique_ptr<net::RdmaFabric> fabric;
    std::unique_ptr<remote::RemoteNode> node;
    std::unique_ptr<remote::SwapBackend> backend;
    std::unique_ptr<Vms> vms;
};

} // namespace

TEST_P(Fuzzer, RandomOperationsKeepTheVmsConsistent)
{
    for (int step = 0; step < 4000; ++step) {
        Pid pid = rng_.chance(0.6) ? pidA : pidB;
        Vpn vpn{rng_.below64(space)};
        switch (rng_.below(5)) {
          case 0:
          case 1: // plain access (read or write)
            now_ += vms->access(pid,
                                pageBase(vpn) +
                                    rng_.below(64) * lineBytes,
                                rng_.chance(0.3), now_);
            break;
          case 2: // swapcache prefetch
            vms->prefetchToSwapCache(pid, vpn, 2, now_);
            break;
          case 3: // injection (adopt/join/issue)
            vms->prefetchInject(pid, vpn, 5, now_);
            break;
          case 4: // batch injection
            vms->prefetchInjectBatch(pid, vpn,
                                     1 + rng_.below(8), 5, now_);
            break;
        }
        if (rng_.chance(0.3))
            now_ = std::max(now_, eq->now());
        if (rng_.chance(0.25))
            eq->runUntil(now_);
        if (step % 64 == 0) {
            eq->run();
            now_ = std::max(now_, eq->now());
            audit();
        }
    }
    eq->run();
    audit();

    // Every page ever touched is in a coherent terminal state, and
    // time advanced.
    EXPECT_GT(now_, Tick{});
    EXPECT_GT(vms->stats().accesses, 0u);
    EXPECT_GT(vms->stats().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzzer,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));
