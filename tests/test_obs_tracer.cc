/**
 * @file
 * Flight-recorder tests: the Tracer buffer, the Chrome trace_event /
 * JSONL writers, the structural checker, and whole-machine trace
 * byte-determinism.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/trace_check.hh"
#include "obs/trace_writer.hh"
#include "obs/tracer.hh"
#include "runner/machine.hh"

using namespace hopp;
using namespace hopp::obs;

// ---------------------------------------------------------------------
// Tracer buffer semantics.

TEST(Tracer, DisabledByDefaultAndRecordsNothing)
{
    Tracer t;
    EXPECT_FALSE(t.enabled());
    t.begin("c", "a", Tick(1));
    t.end("c", "a", Tick(2));
    t.complete("c", "x", Tick(3), 4);
    t.instant("c", "i", Tick(5));
    t.counter("c", "n", Tick(6), 7);
    t.asyncBegin("c", "p", Tick(8), 1);
    t.asyncEnd("c", "p", Tick(9), 1);
    EXPECT_EQ(t.size(), 0u);
}

TEST(Tracer, DisabledTracerNeverAllocates)
{
    // Zero-cost-when-disabled: the event buffer must not even reserve
    // memory while recording is off.
    Tracer t;
    for (int i = 0; i < 10000; ++i)
        t.complete("c", "x", Tick(i), 1);
    EXPECT_EQ(t.bufferCapacity(), 0u);
}

TEST(Tracer, RecordsInOrderWithSequenceNumbers)
{
    Tracer t;
    t.enable();
    t.begin("c", "a", Tick(10));
    t.complete("c", "b", Tick(10), 5);
    t.end("c", "a", Tick(20));
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t.events()[0].ph, 'B');
    EXPECT_EQ(t.events()[1].ph, 'X');
    EXPECT_EQ(t.events()[2].ph, 'E');
    EXPECT_LT(t.events()[0].seq, t.events()[1].seq);
    EXPECT_LT(t.events()[1].seq, t.events()[2].seq);
}

TEST(Tracer, SortedIsStableOnTies)
{
    // Out-of-order record times (threads run ahead of the queue);
    // sorted() must order by ts and break ties by record order.
    Tracer t;
    t.enable();
    t.instant("c", "late", Tick(30));
    t.instant("c", "tie1", Tick(20));
    t.instant("c", "tie2", Tick(20));
    t.instant("c", "early", Tick(10));
    std::vector<TraceEvent> s = t.sorted();
    ASSERT_EQ(s.size(), 4u);
    EXPECT_STREQ(s[0].name, "early");
    EXPECT_STREQ(s[1].name, "tie1");
    EXPECT_STREQ(s[2].name, "tie2");
    EXPECT_STREQ(s[3].name, "late");
}

TEST(Tracer, AsyncIdsStartAtOneAndIncrease)
{
    Tracer t;
    EXPECT_EQ(t.nextAsyncId(), 1u);
    EXPECT_EQ(t.nextAsyncId(), 2u);
}

// ---------------------------------------------------------------------
// Writers: valid JSON, JSONL framing, structural validity.

namespace
{

/** A small well-formed recording exercising every phase. */
Tracer
sampleTracer()
{
    Tracer t;
    t.enable();
    t.begin("machine", "run", Tick(0));
    t.complete("vm", "fault.remote", Tick(1000), 8500, track::ofPid(Pid(1)));
    std::uint64_t id = t.nextAsyncId();
    t.asyncBegin("vm", "prefetch.inject", Tick(2000), id);
    t.counter("sim", "queue_depth", Tick(3000), 4);
    t.instant("vm", "prefetch.adopt", Tick(4000));
    t.asyncEnd("vm", "prefetch.inject", Tick(6000), id);
    t.end("machine", "run", Tick(9000));
    return t;
}

} // namespace

TEST(TraceWriter, ChromeJsonParsesAndValidates)
{
    std::string doc = toChromeJson(sampleTracer());
    json::Value root;
    std::string err;
    ASSERT_TRUE(json::parse(doc, root, &err)) << err;
    TraceCheck check = checkTrace(root);
    EXPECT_TRUE(check.ok()) << (check.errors.empty()
                                    ? ""
                                    : check.errors.front());
    EXPECT_EQ(check.events, 7u);
    EXPECT_EQ(check.phaseCounts['X'], 1u);
    EXPECT_EQ(check.phaseCounts['B'], 1u);
    EXPECT_EQ(check.phaseCounts['E'], 1u);
}

TEST(TraceWriter, ChromeJsonRendersMicrosecondsFromTicks)
{
    // 8500 ns must appear as 8.500 us with fixed 3-digit fractions
    // (integer rendering — no float formatting in the writer).
    std::string doc = toChromeJson(sampleTracer());
    EXPECT_NE(doc.find("\"dur\":8.500"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"ts\":1.000"), std::string::npos) << doc;
}

TEST(TraceWriter, JsonlHasOneValidObjectPerLine)
{
    std::string doc = toJsonl(sampleTracer());
    std::vector<const json::Value *> events;
    std::vector<json::Value> storage;
    storage.reserve(16);
    std::size_t lines = 0;
    std::size_t start = 0;
    while (start < doc.size()) {
        std::size_t nl = doc.find('\n', start);
        ASSERT_NE(nl, std::string::npos) << "unterminated last line";
        std::string line = doc.substr(start, nl - start);
        storage.emplace_back();
        std::string err;
        ASSERT_TRUE(json::parse(line, storage.back(), &err))
            << "line " << lines << ": " << err;
        ASSERT_TRUE(storage.back().isObject());
        ++lines;
        start = nl + 1;
    }
    EXPECT_EQ(lines, 7u);
    for (const json::Value &v : storage)
        events.push_back(&v);
    EXPECT_TRUE(checkEvents(events).ok());
}

TEST(TraceCheckTest, CatchesUnbalancedSpans)
{
    Tracer t;
    t.enable();
    t.begin("c", "open", Tick(0));
    std::string doc = toChromeJson(t);
    json::Value root;
    ASSERT_TRUE(json::parse(doc, root, nullptr));
    EXPECT_FALSE(checkTrace(root).ok());
}

TEST(TraceCheckTest, CatchesMismatchedEndName)
{
    Tracer t;
    t.enable();
    t.begin("c", "a", Tick(0));
    t.end("c", "b", Tick(1));
    std::string doc = toChromeJson(t);
    json::Value root;
    ASSERT_TRUE(json::parse(doc, root, nullptr));
    EXPECT_FALSE(checkTrace(root).ok());
}

// ---------------------------------------------------------------------
// Whole-machine recording: a traced run is structurally valid and
// byte-deterministic.

namespace
{

std::string
tracedRun()
{
    runner::MachineConfig cfg;
    cfg.system = runner::SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    cfg.trace = true;
    runner::Machine m(cfg);
    workloads::WorkloadScale scale;
    m.addWorkload(workloads::makeWorkload("microbench", scale));
    m.run();
    return toChromeJson(m.tracer());
}

} // namespace

TEST(MachineTrace, TracedRunValidates)
{
    std::string doc = tracedRun();
    json::Value root;
    std::string err;
    ASSERT_TRUE(json::parse(doc, root, &err)) << err;
    TraceCheck check = checkTrace(root);
    EXPECT_TRUE(check.ok()) << (check.errors.empty()
                                    ? ""
                                    : check.errors.front());
    // The machine run span and at least one fault span must be there.
    EXPECT_NE(doc.find("\"name\":\"run\""), std::string::npos);
    EXPECT_NE(doc.find("fault."), std::string::npos);
    EXPECT_GT(check.events, 100u);
}

TEST(MachineTrace, ByteIdenticalAcrossRuns)
{
    EXPECT_EQ(tracedRun(), tracedRun());
}

TEST(MachineTrace, DisabledMachineRecordsNothing)
{
    runner::MachineConfig cfg;
    cfg.system = runner::SystemKind::Fastswap;
    runner::Machine m(cfg);
    workloads::WorkloadScale scale;
    m.addWorkload(workloads::makeWorkload("microbench", scale));
    m.run();
    EXPECT_EQ(m.tracer().size(), 0u);
    EXPECT_EQ(m.tracer().bufferCapacity(), 0u);
}
