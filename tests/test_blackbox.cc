/**
 * @file
 * Black-box flight-ring tests: wrap semantics, JSONL rendering, and
 * the end-to-end forensics path through Machine::dumpForensics().
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/blackbox.hh"
#include "obs/json.hh"
#include "runner/machine.hh"
#include "workloads/apps.hh"

using namespace hopp;
using namespace hopp::obs;

namespace
{

/** Split @p text into its non-empty lines. */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        if (end > start)
            lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return lines;
}

TEST(BlackBox, KeepsLastCapacityEventsAcrossWrap)
{
    BlackBox bb;
    const std::size_t n = BlackBox::capacity + 76;
    for (std::size_t i = 0; i < n; ++i)
        bb.record(BbKind::FaultRemote, Tick{i}, 1, i, 0);

    EXPECT_EQ(bb.size(), BlackBox::capacity);
    EXPECT_EQ(bb.totalRecorded(), n);
    // Oldest surviving entry is record #76; newest is #n-1.
    EXPECT_EQ(bb.event(0).seq, 76u);
    EXPECT_EQ(bb.event(0).a, 76u);
    EXPECT_EQ(bb.event(BlackBox::capacity - 1).seq, n - 1);
}

TEST(BlackBox, ClearForgetsEverything)
{
    BlackBox bb;
    bb.record(BbKind::Evict, Tick{5}, 2, 3, 4);
    ASSERT_EQ(bb.size(), 1u);
    bb.clear();
    EXPECT_EQ(bb.size(), 0u);
    EXPECT_EQ(bb.totalRecorded(), 0u);
    EXPECT_TRUE(bb.toJsonl().empty());
}

TEST(BlackBox, JsonlLinesParseAndMatchTheRing)
{
    BlackBox bb;
    bb.record(BbKind::FaultCold, Tick{1000}, 1, 42, 0);
    bb.record(BbKind::PrefetchIssue, Tick{2500}, 1, 43, 9000);
    bb.record(BbKind::InvariantViolation, Tick{2600}, 0, 1, 0);

    std::vector<std::string> lines = splitLines(bb.toJsonl());
    ASSERT_EQ(lines.size(), 3u);

    const char *names[] = {"fault.cold", "prefetch.issue",
                           "check.violation"};
    for (std::size_t i = 0; i < lines.size(); ++i) {
        json::Value v;
        std::string err;
        ASSERT_TRUE(json::parse(lines[i], v, &err))
            << lines[i] << ": " << err;
        EXPECT_EQ(v.find("name")->str(), names[i]);
        EXPECT_EQ(v.find("ph")->str(), "i");
        EXPECT_EQ(v.find("cat")->str(), "bb");
        const json::Value *args = v.find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_EQ(args->find("seq")->number(),
                  static_cast<double>(i));
        EXPECT_EQ(args->find("a")->number(),
                  static_cast<double>(bb.event(i).a));
    }
}

TEST(BlackBox, MachineRunLeavesAUsableForensicsDump)
{
    runner::MachineConfig cfg;
    cfg.system = runner::SystemKind::Fastswap;
    workloads::WorkloadScale scale;
    scale.footprint = 0.2;
    scale.iterations = 0.3;

    runner::Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("microbench", scale, 43));
    runner::RunResult res = m.run();
    ASSERT_GT(res.vms.faults(), 0u);

    // The run recorded faults into this thread's ring...
    BlackBox &bb = blackbox();
    ASSERT_GT(bb.size(), 0u);

    // ...and dumpForensics writes exactly that ring as JSONL.
    const std::string path = "bb_forensics_unit.jsonl";
    ASSERT_TRUE(m.dumpForensics(path));

    std::string text;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    std::remove(path.c_str());

    std::vector<std::string> lines = splitLines(text);
    ASSERT_EQ(lines.size(), bb.size());
    // The dump is the ring, permuted into (tick, seq) order: every
    // ring entry appears exactly once under its recorded name, and
    // the timestamps never go backwards (the hopp_trace contract —
    // append order is causal, not time-ordered, because some records
    // carry scheduled future ticks).
    std::map<std::uint64_t, const char *> expected;
    for (std::size_t i = 0; i < bb.size(); ++i)
        expected[bb.event(i).seq] = bbKindName(bb.event(i).kind);
    double lastTick = -1.0;
    std::uint64_t lastSeq = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        json::Value v;
        std::string err;
        ASSERT_TRUE(json::parse(lines[i], v, &err)) << err;
        const std::uint64_t seq = static_cast<std::uint64_t>(
            v.find("args")->find("seq")->number());
        auto it = expected.find(seq);
        ASSERT_NE(it, expected.end()) << "seq " << seq;
        EXPECT_EQ(v.find("name")->str(), it->second);
        expected.erase(it);
        const double tick = v.find("args")->find("tick")->number();
        EXPECT_GE(tick, lastTick) << "line " << i;
        if (tick == lastTick) {
            EXPECT_GT(seq, lastSeq) << "line " << i;
        }
        lastTick = tick;
        lastSeq = seq;
    }
    EXPECT_TRUE(expected.empty());
}

} // namespace
