/**
 * @file
 * Unit tests for the strongly-typed scalar vocabulary in
 * common/types.hh: time literals, page/line geometry round-trips,
 * tagged arithmetic, hashing/ordering in standard containers, the
 * Pid 16-bit bound, and the compile-time wall between tag spaces.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "common/types.hh"

using namespace hopp;
using namespace hopp::time_literals;

// ---- compile-time discipline -----------------------------------------

// Cross-tag expressions must not compile: a physical address can never
// meet a virtual address, a page number, or a tick in any operator.
// (Concepts, not bare requires-expressions: the checks must stay in a
// substitution context so an invalid mix yields false, not an error.)
template <typename A, typename B>
concept Addable = requires(A a, B b) { a + b; };
template <typename A, typename B>
concept Subtractable = requires(A a, B b) { a - b; };
template <typename A, typename B>
concept Comparable = requires(A a, B b) { a < b; };
template <typename T>
concept PageConvertible = requires(T t) { pageOf(t); };

static_assert(!Addable<PhysAddr, VirtAddr>);
static_assert(!Comparable<PhysAddr, VirtAddr>);
static_assert(!Subtractable<Ppn, Vpn>);
static_assert(!Comparable<Tick, Ppn>);
static_assert(!Addable<PhysAddr, PhysAddr>);
static_assert(Subtractable<PhysAddr, PhysAddr>); // same-tag delta is fine

// No implicit lift from raw integers or implicit decay back.
static_assert(!std::is_convertible_v<std::uint64_t, Tick>);
static_assert(!std::is_convertible_v<Tick, std::uint64_t>);
static_assert(!std::is_convertible_v<int, Pid>);

// pageOf/pageBase map between the right spaces only.
static_assert(std::is_same_v<decltype(pageOf(PhysAddr{0})), Ppn>);
static_assert(std::is_same_v<decltype(pageOf(VirtAddr{0})), Vpn>);
static_assert(std::is_same_v<decltype(pageBase(Ppn{0})), PhysAddr>);
static_assert(std::is_same_v<decltype(pageBase(Vpn{0})), VirtAddr>);
static_assert(!PageConvertible<Ppn>);
static_assert(PageConvertible<PhysAddr> && PageConvertible<VirtAddr>);

TEST(TimeLiterals, ScaleToNanoseconds)
{
    EXPECT_EQ(7_ns, Duration{7});
    EXPECT_EQ(3_us, Duration{3'000});
    EXPECT_EQ(2_ms, Duration{2'000'000});
    EXPECT_EQ(1_s, Duration{1'000'000'000});
    EXPECT_EQ(1_s, 1000_ms);
    EXPECT_EQ(1_ms, 1000_us);
    EXPECT_EQ(1_us, 1000_ns);
}

TEST(TimeLiterals, AdvanceTicks)
{
    Tick t{};
    t += 5_us;
    EXPECT_EQ(t, Tick{5'000});
    EXPECT_EQ(t - Tick{}, 5_us);
}

TEST(Geometry, PageRoundTripPhysical)
{
    PhysAddr a{0x12345};
    EXPECT_EQ(pageOf(a), Ppn{0x12});
    EXPECT_EQ(pageBase(pageOf(a)), PhysAddr{0x12000});
    EXPECT_EQ(pageOffset(a), Bytes{0x345});
    EXPECT_EQ(pageBase(pageOf(a)) + pageOffset(a), a);
}

TEST(Geometry, PageRoundTripVirtual)
{
    VirtAddr a{0xDEAD'BEEF'F00Dull};
    EXPECT_EQ(pageBase(pageOf(a)) + pageOffset(a), a);
    EXPECT_LT(pageOffset(a), pageBytes);
}

TEST(Geometry, LineRoundTrip)
{
    PhysAddr a{0x1234'5678ull};
    EXPECT_EQ(lineBase(a), PhysAddr{0x1234'5640ull});
    EXPECT_EQ(lineOf(a), 0x1234'5678ull >> 6);
    EXPECT_EQ(lineOf(lineBase(a)), lineOf(a));
    VirtAddr v{0x7FFF'FFFFull};
    EXPECT_EQ(lineBase(v), VirtAddr{0x7FFF'FFC0ull});
    EXPECT_EQ(linesPerPage, pageBytes / lineBytes);
}

TEST(Geometry, EdgeAddresses)
{
    // Zero maps to page zero at offset zero.
    EXPECT_EQ(pageOf(PhysAddr{}), Ppn{});
    EXPECT_EQ(pageBase(Ppn{}), PhysAddr{});
    EXPECT_EQ(pageOffset(PhysAddr{}), Bytes{});
    EXPECT_EQ(lineBase(VirtAddr{}), VirtAddr{});

    // Top of the 64-bit address space.
    PhysAddr top{~std::uint64_t(0)};
    EXPECT_EQ(pageOf(top), Ppn{(~std::uint64_t(0)) >> pageShift});
    EXPECT_EQ(pageOffset(top), pageBytes - 1);
    EXPECT_EQ(pageBase(pageOf(top)) + pageOffset(top), top);

    // maxTick is the "never scheduled" sentinel: above every real tick.
    EXPECT_GT(maxTick, Tick{});
    EXPECT_GT(maxTick, Tick{1'000'000'000});
}

TEST(TaggedArithmetic, DeltasAndSteps)
{
    Vpn v{100};
    EXPECT_EQ(v + 5, Vpn{105});
    EXPECT_EQ(v - 5, Vpn{95});
    EXPECT_EQ(Vpn{105} - v, 5u);
    EXPECT_EQ(signedDelta(Vpn{105}, v), -5);
    EXPECT_EQ(signedDelta(v, Vpn{105}), 5);
    EXPECT_EQ(offsetBy(v, -100), Vpn{});
    EXPECT_EQ(offsetBy(v, 3), Vpn{103});

    ++v;
    EXPECT_EQ(v, Vpn{101});
    EXPECT_EQ(v--, Vpn{101});
    EXPECT_EQ(v, Vpn{100});

    EXPECT_DOUBLE_EQ(toDouble(Tick{2'500}), 2500.0);
}

TEST(Containers, HashingAndOrdering)
{
    std::unordered_map<Vpn, int> um;
    um[Vpn{1}] = 10;
    um[Vpn{2}] = 20;
    um[Vpn{1}] += 1;
    EXPECT_EQ(um.size(), 2u);
    EXPECT_EQ(um.at(Vpn{1}), 11);

    std::map<Tick, char> om;
    om[Tick{30}] = 'c';
    om[Tick{10}] = 'a';
    om[Tick{20}] = 'b';
    std::string order;
    for (const auto &kv : om)
        order += kv.second;
    EXPECT_EQ(order, "abc");

    std::unordered_map<Pid, int> pm;
    pm[Pid{7}] = 1;
    pm[Pid{8}] = 2;
    EXPECT_EQ(pm.at(Pid{7}), 1);
    EXPECT_LT(Pid{7}, Pid{8});
}

TEST(PidBounds, SixteenBitsEnforced)
{
    EXPECT_EQ(Pid{0xFFFF}.raw(), 0xFFFFu);
    EXPECT_EQ(Pid{}.raw(), 0u);
    EXPECT_DEATH(Pid{0x10000}, "16-bit");
}
