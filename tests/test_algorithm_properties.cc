/**
 * @file
 * Randomized property sweeps (TEST_P) over the prefetch algorithms:
 * for generated ladders, ripples and noisy simple streams with random
 * parameters, a prediction — whenever one is made — must target pages
 * the stream will actually visit, and tier dispatch must stay sound.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.hh"
#include "hopp/algorithms.hh"

using namespace hopp;
using namespace hopp::core;

namespace
{

struct ViewHolder
{
    std::vector<Vpn> vpns;
    std::vector<std::int64_t> strides;

    explicit ViewHolder(std::vector<Vpn> seq) : vpns(std::move(seq))
    {
        for (std::size_t i = 1; i < vpns.size(); ++i)
            strides.push_back(signedDelta(vpns[i - 1], vpns[i]));
    }

    StreamView
    view() const
    {
        return StreamView{Pid{1}, 7, 1000, &vpns, &strides};
    }
};

/** Ladder with randomized tread permutation and rise. */
std::vector<Vpn>
randomLadder(Pcg32 &rng, unsigned n)
{
    unsigned tread = 3 + rng.below(2);      // 3 or 4
    unsigned rise = 8 + rng.below(56);      // 8..63
    // Random within-tread visiting order (fixed across treads).
    std::vector<unsigned> offs(tread);
    for (unsigned i = 0; i < tread; ++i)
        offs[i] = i;
    for (unsigned i = tread - 1; i > 0; --i)
        std::swap(offs[i], offs[rng.below(i + 1)]);
    std::vector<Vpn> v;
    for (unsigned i = 0; i < n; ++i)
        v.push_back(Vpn{1000ull + (i / tread) * rise +
                        offs[i % tread]});
    return v;
}

} // namespace

class AlgoFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    Pcg32 rng_{GetParam()};
};

TEST_P(AlgoFuzz, SimpleStreamPredictionsAreOnTheStream)
{
    for (int round = 0; round < 200; ++round) {
        std::int64_t stride =
            static_cast<std::int64_t>(rng_.below(64)) - 32;
        if (stride == 0)
            stride = 1;
        Vpn base{100000ull + rng_.below(1000)};
        std::vector<Vpn> seq;
        for (unsigned i = 0; i < 16; ++i)
            seq.push_back(
                offsetBy(base, stride * static_cast<std::int64_t>(i)));
        ViewHolder h(seq);
        auto p = runSsp(h.view());
        ASSERT_TRUE(p.has_value());
        for (std::uint64_t off = 1; off <= 8; ++off) {
            auto t = p->target(off);
            if (!t)
                continue;
            // Target must be a future member of the arithmetic stream.
            std::int64_t delta = signedDelta(seq.back(), *t);
            ASSERT_EQ(delta % stride, 0);
            ASSERT_GT(delta / stride, 0);
        }
    }
}

TEST_P(AlgoFuzz, LadderPredictionsMostlyLandOnStreamPages)
{
    // The tiers are heuristics: a prediction need not always be an
    // exact member of the stream (mid-tread alignments can shift the
    // ladder base a page or two), but predictions must overwhelmingly
    // hit real stream pages and always stay inside the stream's
    // forward envelope.
    unsigned predicted = 0, on_stream = 0;
    for (int round = 0; round < 200; ++round) {
        auto seq = randomLadder(rng_, 64);
        ViewHolder h({seq.begin(), seq.begin() + 16});
        auto p = runThreeTier(h.view());
        if (!p)
            continue; // some orders legitimately defeat every tier
        auto t1 = p->target(1);
        if (!t1)
            continue;
        ++predicted;
        std::set<Vpn> members(seq.begin(), seq.end());
        on_stream += members.count(*t1) > 0;
        // Envelope: never wildly outside the region the stream spans.
        ASSERT_GE(*t1, seq.front());
        ASSERT_LE(*t1, seq.back() + 128) << "round " << round;
    }
    EXPECT_GT(predicted, 100u);
    EXPECT_GT(on_stream * 10, predicted * 7)
        << "at least 70% of predictions are exact stream pages";
}

TEST_P(AlgoFuzz, RippleIdentificationRobustToBoundedJitter)
{
    // Bounded-jitter forward progress should be identified in the
    // overwhelming majority of windows (adversarial jitter can
    // legitimately defeat the L/2 thresholds in a few).
    unsigned identified = 0;
    for (int round = 0; round < 100; ++round) {
        std::vector<Vpn> seq;
        std::int64_t front = 5000;
        for (unsigned i = 0; i < 16; ++i) {
            // Occasional bounded hops, as the paper's Fig. 3 ripples
            // (RSP tolerates ~2 out-of-order accesses per window).
            std::int64_t jitter =
                rng_.chance(0.35)
                    ? static_cast<std::int64_t>(rng_.below(3)) - 1
                    : 0;
            seq.push_back(Vpn{static_cast<std::uint64_t>(front + jitter)});
            ++front;
        }
        ViewHolder h(seq);
        auto p = runThreeTier(h.view());
        if (p && p->step > 0)
            ++identified;
    }
    EXPECT_GT(identified, 80u);
}

TEST_P(AlgoFuzz, PureNoiseIsMostlyRejected)
{
    unsigned accepted = 0;
    for (int round = 0; round < 200; ++round) {
        std::vector<Vpn> seq;
        for (unsigned i = 0; i < 16; ++i)
            seq.push_back(Vpn{rng_.below64(1u << 20)});
        ViewHolder h(seq);
        accepted += runThreeTier(h.view()).has_value();
    }
    // Uniform-random 20-bit pages: stride coincidences are rare.
    EXPECT_LT(accepted, 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgoFuzz,
                         ::testing::Values(11, 22, 33, 44));
