/**
 * @file
 * Unit tests for counters, averages, histograms (exact and log-scale),
 * stat-set resetters, and table printing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "stats/stats.hh"
#include "stats/table.hh"

using namespace hopp::stats;

TEST(Counter, AddAndReset)
{
    Counter c;
    ++c;
    c += 4;
    c.add();
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(LogHistogram, BucketsByPowerOfTwo)
{
    LogHistogram h(10);
    h.sample(1);   // bucket 0
    h.sample(3);   // bucket 1
    h.sample(4);   // bucket 2
    h.sample(7);   // bucket 2
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 2u);
}

TEST(LogHistogram, MeanIsExact)
{
    LogHistogram h;
    h.sample(10);
    h.sample(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LogHistogram, PercentileMonotone)
{
    LogHistogram h;
    for (std::uint64_t v = 1; v <= 1024; ++v)
        h.sample(v);
    EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
    EXPECT_LE(h.percentile(0.9), h.percentile(1.0));
    // Median of 1..1024 lies in the 512-1024 region (bucket upper edge).
    EXPECT_GE(h.percentile(0.5), 512u);
}

TEST(LogHistogram, OverflowClampsToLastBucket)
{
    LogHistogram h(4);
    h.sample(1ull << 60);
    EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(LogHistogram, ResetClears)
{
    LogHistogram h;
    h.sample(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatSet, RecordsPrefixedValues)
{
    StatSet s("llc");
    s.record("hits", 10, "cache hits");
    s.record("misses", 2, "cache misses");
    ASSERT_EQ(s.values().size(), 2u);
    EXPECT_EQ(s.values()[0].name, "llc.hits");
    std::string text = s.toString();
    EXPECT_NE(text.find("llc.misses"), std::string::npos);
}

TEST(Table, RendersAlignedColumns)
{
    Table t("Example");
    t.header({"name", "value"});
    t.row({"alpha", Table::num(1.5, 1)});
    t.row({"b", Table::pct(0.5, 0)});
    std::string s = t.toString();
    EXPECT_NE(s.find("== Example =="), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("50%"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.123456, 1), "12.3%");
}

// ---------------------------------------------------------------------
// Exact Histogram: nearest-rank percentiles against a brute-force
// oracle over the sorted sample set.

namespace
{

/** Nearest-rank oracle: smallest v with >= ceil(q*n) samples <= v. */
std::uint64_t
oraclePercentile(std::vector<std::uint64_t> samples, double q)
{
    if (samples.empty())
        return 0;
    std::sort(samples.begin(), samples.end());
    if (q <= 0.0)
        return samples.front();
    if (q >= 1.0)
        return samples.back();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    if (rank == 0)
        rank = 1;
    return samples[rank - 1];
}

} // namespace

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleSampleIsEveryPercentile)
{
    Histogram h;
    h.sample(42);
    EXPECT_EQ(h.percentile(0.0), 42u);
    EXPECT_EQ(h.percentile(0.5), 42u);
    EXPECT_EQ(h.percentile(0.99), 42u);
    EXPECT_EQ(h.percentile(1.0), 42u);
}

TEST(Histogram, MatchesOracleOnRandomSamples)
{
    hopp::Pcg32 rng(7);
    Histogram h;
    std::vector<std::uint64_t> all;
    for (int i = 0; i < 1000; ++i) {
        // Mix of magnitudes, with duplicates.
        std::uint64_t v = rng.below64(1'000'000) / (1 + rng.below(4));
        h.sample(v);
        all.push_back(v);
    }
    for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0})
        EXPECT_EQ(h.percentile(q), oraclePercentile(all, q)) << "q=" << q;
    EXPECT_EQ(h.min(), oraclePercentile(all, 0.0));
    EXPECT_EQ(h.max(), oraclePercentile(all, 1.0));
}

TEST(Histogram, InterleavedSampleAndQuery)
{
    // Queries lazily sort; later samples must still be seen.
    Histogram h;
    h.sample(10);
    h.sample(30);
    EXPECT_EQ(h.percentile(0.5), 10u);
    h.sample(20);
    EXPECT_EQ(h.percentile(0.5), 20u);
    h.sample(5);
    EXPECT_EQ(h.percentile(1.0), 30u);
    EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.sample(100);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(LogHistogram, PercentileWithinDocumentedBound)
{
    // The documented error bound: LogHistogram answers with the
    // bucket's upper edge, at most 2x the exact nearest-rank answer.
    hopp::Pcg32 rng(11);
    LogHistogram lh;
    std::vector<std::uint64_t> all;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t v = 1 + rng.below64(1u << 20);
        lh.sample(v);
        all.push_back(v);
    }
    for (double q : {0.1, 0.5, 0.9, 0.99}) {
        std::uint64_t exact = oraclePercentile(all, q);
        std::uint64_t approx = lh.percentile(q);
        EXPECT_GE(approx, exact) << "q=" << q;
        EXPECT_LE(approx, 2 * exact) << "q=" << q;
    }
}

// ---------------------------------------------------------------------
// StatSet resetters: resetAll() must run every registered callback so
// a dump-builder's reset coverage always matches its record coverage.

TEST(StatSet, ResetAllRunsEveryResetter)
{
    Counter a, b;
    a.add(3);
    b.add(5);
    StatSet s("x");
    s.record("a", static_cast<double>(a.value()));
    s.addResetter([&a] { a.reset(); });
    s.record("b", static_cast<double>(b.value()));
    s.addResetter([&b] { b.reset(); });
    s.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatSet, ResetAllWithNoResettersIsNoop)
{
    StatSet s("x");
    s.record("v", 1.0);
    s.resetAll();
    EXPECT_EQ(s.values().size(), 1u);
}
