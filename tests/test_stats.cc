/**
 * @file
 * Unit tests for counters, averages, log histograms and table printing.
 */

#include <gtest/gtest.h>

#include "stats/stats.hh"
#include "stats/table.hh"

using namespace hopp::stats;

TEST(Counter, AddAndReset)
{
    Counter c;
    ++c;
    c += 4;
    c.add();
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(LogHistogram, BucketsByPowerOfTwo)
{
    LogHistogram h(10);
    h.sample(1);   // bucket 0
    h.sample(3);   // bucket 1
    h.sample(4);   // bucket 2
    h.sample(7);   // bucket 2
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 2u);
}

TEST(LogHistogram, MeanIsExact)
{
    LogHistogram h;
    h.sample(10);
    h.sample(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LogHistogram, PercentileMonotone)
{
    LogHistogram h;
    for (std::uint64_t v = 1; v <= 1024; ++v)
        h.sample(v);
    EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
    EXPECT_LE(h.percentile(0.9), h.percentile(1.0));
    // Median of 1..1024 lies in the 512-1024 region (bucket upper edge).
    EXPECT_GE(h.percentile(0.5), 512u);
}

TEST(LogHistogram, OverflowClampsToLastBucket)
{
    LogHistogram h(4);
    h.sample(1ull << 60);
    EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(LogHistogram, ResetClears)
{
    LogHistogram h;
    h.sample(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatSet, RecordsPrefixedValues)
{
    StatSet s("llc");
    s.record("hits", 10, "cache hits");
    s.record("misses", 2, "cache misses");
    ASSERT_EQ(s.values().size(), 2u);
    EXPECT_EQ(s.values()[0].name, "llc.hits");
    std::string text = s.toString();
    EXPECT_NE(text.find("llc.misses"), std::string::npos);
}

TEST(Table, RendersAlignedColumns)
{
    Table t("Example");
    t.header({"name", "value"});
    t.row({"alpha", Table::num(1.5, 1)});
    t.row({"b", Table::pct(0.5, 0)});
    std::string s = t.toString();
    EXPECT_NE(s.find("== Example =="), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("50%"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.123456, 1), "12.3%");
}
