/**
 * @file
 * Unit tests for the shared analysis lexer (tools/analysis/lexer.hh)
 * and token-stream views — the foundation hopp_lint and hopp_analyze
 * stand on. The load-bearing property is full fidelity: every byte of
 * the input lands in exactly one token, so reassembling the token
 * texts reproduces the file byte-for-byte. The edge cases here are the
 * ones that defeat line-regex scanning: raw strings containing comment
 * markers, string literals containing directive syntax, and
 * preprocessor lines with backslash continuations.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/lexer.hh"
#include "analysis/token_stream.hh"
#include "common/random.hh"

using namespace hopp::analysis;

namespace
{

std::vector<Token>
tokensOf(const std::string &src, TokKind kind)
{
    std::vector<Token> out;
    for (const auto &t : lex(src))
        if (t.kind == kind)
            out.push_back(t);
    return out;
}

} // namespace

TEST(Lexer, RoundTripSimple)
{
    std::string src = "int main() { return 0; }\n";
    EXPECT_EQ(reassemble(lex(src)), src);
}

TEST(Lexer, RawStringContainingLineComment)
{
    // The // inside the raw string must NOT start a comment.
    std::string src = "auto s = R\"(not // a comment)\";\n";
    auto toks = lex(src);
    EXPECT_EQ(reassemble(toks), src);
    EXPECT_TRUE(tokensOf(src, TokKind::Comment).empty());
    auto strings = tokensOf(src, TokKind::String);
    ASSERT_EQ(strings.size(), 1u);
    EXPECT_EQ(strings[0].text, "R\"(not // a comment)\"");
}

TEST(Lexer, RawStringContainingBlockCommentMarkers)
{
    std::string src = "auto s = R\"x(/* not a comment */)x\";\n";
    auto toks = lex(src);
    EXPECT_EQ(reassemble(toks), src);
    EXPECT_TRUE(tokensOf(src, TokKind::Comment).empty());
    auto strings = tokensOf(src, TokKind::String);
    ASSERT_EQ(strings.size(), 1u);
    EXPECT_EQ(strings[0].text, "R\"x(/* not a comment */)x\"");
}

TEST(Lexer, RawStringDelimiterRequiresExactClose)
{
    // ")(" inside the payload must not close R"ab( ... )ab".
    std::string src = "auto s = R\"ab(close )( here )ab\";";
    auto strings = tokensOf(src, TokKind::String);
    ASSERT_EQ(strings.size(), 1u);
    EXPECT_EQ(strings[0].text, "R\"ab(close )( here )ab\"");
}

TEST(Lexer, EncodingPrefixedLiterals)
{
    std::string src = "auto a = u8\"x\"; auto b = L\"y\"; auto c = u'z';";
    EXPECT_EQ(reassemble(lex(src)), src);
    auto strings = tokensOf(src, TokKind::String);
    ASSERT_EQ(strings.size(), 2u);
    EXPECT_EQ(strings[0].text, "u8\"x\"");
    EXPECT_EQ(strings[1].text, "L\"y\"");
    auto chars = tokensOf(src, TokKind::CharLit);
    ASSERT_EQ(chars.size(), 1u);
    EXPECT_EQ(chars[0].text, "u'z'");
}

TEST(Lexer, StringContainingDirectiveSyntax)
{
    // A suppression directive spelled inside a string is a String
    // token, never a Comment — so it can't suppress anything.
    std::string src =
        "auto s = \"hopp-lint: allow(raw)\"; // real comment\n";
    auto comments = tokensOf(src, TokKind::Comment);
    ASSERT_EQ(comments.size(), 1u);
    EXPECT_EQ(comments[0].text, "// real comment");
    auto strings = tokensOf(src, TokKind::String);
    ASSERT_EQ(strings.size(), 1u);
    EXPECT_NE(strings[0].text.find("allow(raw)"), std::string::npos);
}

TEST(Lexer, EscapedQuoteStaysInsideString)
{
    std::string src = "auto s = \"a\\\"b\"; int x = 1;";
    EXPECT_EQ(reassemble(lex(src)), src);
    auto strings = tokensOf(src, TokKind::String);
    ASSERT_EQ(strings.size(), 1u);
    EXPECT_EQ(strings[0].text, "\"a\\\"b\"");
}

TEST(Lexer, DirectiveWithLineContinuation)
{
    std::string src = "#define PAIR(a, b) \\\n    ((a) + (b))\nint x;\n";
    auto pp = tokensOf(src, TokKind::PpDirective);
    ASSERT_EQ(pp.size(), 1u);
    // The continuation rides along inside the directive token.
    EXPECT_NE(pp[0].text.find("((a) + (b))"), std::string::npos);
    EXPECT_EQ(reassemble(lex(src)), src);
    // ppText flattens the continuation to one logical line.
    std::string flat = ppText(pp[0].text);
    EXPECT_EQ(flat.find('\n'), std::string::npos);
}

TEST(Lexer, DirectiveEndsBeforeTrailingComment)
{
    std::string src = "#include \"mod/a.hh\" // hopp-lint: allow(x)\n";
    auto pp = tokensOf(src, TokKind::PpDirective);
    ASSERT_EQ(pp.size(), 1u);
    EXPECT_EQ(pp[0].text.find("//"), std::string::npos);
    auto comments = tokensOf(src, TokKind::Comment);
    ASSERT_EQ(comments.size(), 1u);
    EXPECT_EQ(comments[0].line, 1);
}

TEST(Lexer, HashMidLineIsNotADirective)
{
    std::string src = "int a = 1;\nauto s = 2 # 3;\n";
    EXPECT_TRUE(tokensOf(src, TokKind::PpDirective).empty());
}

TEST(Lexer, NumbersWithSeparatorsAndExponents)
{
    std::string src = "auto a = 1'000'000; auto b = 1.5e-3; auto c = 0x1p+4;";
    auto nums = tokensOf(src, TokKind::Number);
    ASSERT_EQ(nums.size(), 3u);
    EXPECT_EQ(nums[0].text, "1'000'000");
    EXPECT_EQ(nums[1].text, "1.5e-3");
    EXPECT_EQ(nums[2].text, "0x1p+4");
    // The digit separator must not open a char literal.
    EXPECT_TRUE(tokensOf(src, TokKind::CharLit).empty());
}

TEST(Lexer, LineNumbersTrackMultilineTokens)
{
    std::string src = "/* one\ntwo */\nint x; // three\n";
    auto toks = lex(src);
    ASSERT_GE(toks.size(), 3u);
    EXPECT_EQ(toks[0].kind, TokKind::Comment);
    EXPECT_EQ(toks[0].line, 1);
    auto idents = tokensOf(src, TokKind::Ident);
    ASSERT_EQ(idents.size(), 2u); // int, x
    EXPECT_EQ(idents[0].line, 3);
    auto comments = tokensOf(src, TokKind::Comment);
    ASSERT_EQ(comments.size(), 2u);
    EXPECT_EQ(comments[1].line, 3);
}

TEST(Lexer, UnterminatedLiteralStillRoundTrips)
{
    std::string src = "auto s = \"never closed\nint x;";
    EXPECT_EQ(reassemble(lex(src)), src);
    std::string raw = "auto s = R\"(never closed";
    EXPECT_EQ(reassemble(lex(raw)), raw);
    std::string block = "int y; /* never closed";
    EXPECT_EQ(reassemble(lex(block)), block);
}

TEST(Lexer, SpaceshipLexesAsThreePuncts)
{
    // Punct tokens are single characters by design; <=> must arrive
    // as "<", "=", ">" in order, never swallow a neighbor, and still
    // round-trip.
    std::string src = "auto c = a <=> b;";
    EXPECT_EQ(reassemble(lex(src)), src);
    std::vector<std::string> puncts;
    for (const auto &t : lex(src))
        if (t.kind == TokKind::Punct)
            puncts.push_back(t.text);
    ASSERT_EQ(puncts.size(), 5u); // '=' then '<' '=' '>' ';'
    EXPECT_EQ(puncts[1], "<");
    EXPECT_EQ(puncts[2], "=");
    EXPECT_EQ(puncts[3], ">");
}

TEST(Lexer, UserDefinedLiteralSuffixes)
{
    // A numeric UDL is one pp-number (the suffix is part of the
    // pp-number grammar); a string UDL is a String followed by an
    // Ident suffix token.
    std::string src = "auto d = 12.5_km; auto s = \"abc\"_sv;";
    EXPECT_EQ(reassemble(lex(src)), src);
    auto nums = tokensOf(src, TokKind::Number);
    ASSERT_EQ(nums.size(), 1u);
    EXPECT_EQ(nums[0].text, "12.5_km");
    auto strings = tokensOf(src, TokKind::String);
    ASSERT_EQ(strings.size(), 1u);
    EXPECT_EQ(strings[0].text, "\"abc\"");
    bool saw_suffix = false;
    for (const auto &t : tokensOf(src, TokKind::Ident))
        saw_suffix = saw_suffix || t.text == "_sv";
    EXPECT_TRUE(saw_suffix);
}

TEST(Lexer, AdjacentStringLiteralsStaySeparate)
{
    // Translation-phase-6 concatenation happens after lexing: the
    // lexer must produce one String token per literal, comments
    // between them included.
    std::string src = "auto s = \"one\" \"two\" /* glue */ \"three\";";
    EXPECT_EQ(reassemble(lex(src)), src);
    auto strings = tokensOf(src, TokKind::String);
    ASSERT_EQ(strings.size(), 3u);
    EXPECT_EQ(strings[0].text, "\"one\"");
    EXPECT_EQ(strings[1].text, "\"two\"");
    EXPECT_EQ(strings[2].text, "\"three\"");
    ASSERT_EQ(tokensOf(src, TokKind::Comment).size(), 1u);
}

TEST(Lexer, OperatorCallDefinition)
{
    // operator() definitions: 'operator' is an Ident, the two paren
    // pairs are separate Punct tokens, and matchForward pairs the
    // empty operator parens without sliding into the parameter list.
    std::string src = "int operator()(int v) const { return v; }";
    EXPECT_EQ(reassemble(lex(src)), src);
    TokenStream ts(src);
    auto code = ts.code();
    std::size_t op = 0;
    for (std::size_t i = 0; i < code.size(); ++i)
        if (code[i].text == "operator")
            op = i;
    ASSERT_GT(op, 0u);
    ASSERT_EQ(code[op + 1].text, "(");
    EXPECT_EQ(matchForward(code, op + 1), op + 2); // '()' pairs itself
    ASSERT_EQ(code[op + 3].text, "(");
    std::size_t close = matchForward(code, op + 3);
    EXPECT_EQ(code[close].text, ")");
    EXPECT_EQ(code[close + 1].text, "const");
}

TEST(TokenStream, CodeViewDropsCommentsKeepsLiterals)
{
    TokenStream ts("int a = 1; // note\nauto s = \"text\";\n");
    bool saw_comment = false, saw_string = false;
    for (const auto &t : ts.code()) {
        saw_comment = saw_comment || t.kind == TokKind::Comment;
        saw_string = saw_string ||
                     (t.kind == TokKind::String && t.text == "\"text\"");
    }
    EXPECT_FALSE(saw_comment);
    EXPECT_TRUE(saw_string);
}

TEST(TokenStream, StrippedLinesBlankLiteralPayloads)
{
    TokenStream ts("call(\"abc\", 'x');\n");
    auto lines = ts.strippedLines();
    ASSERT_GE(lines.size(), 1u);
    // Delimiters survive, payloads don't, columns are preserved.
    EXPECT_EQ(lines[0], "call(\"   \", ' ');");
}

TEST(TokenStream, MatchForwardBalances)
{
    TokenStream ts("f(a, g(b, h[c]), {d});");
    auto code = ts.code();
    ASSERT_GT(code.size(), 2u);
    ASSERT_EQ(code[1].text, "(");
    std::size_t close = matchForward(code, 1);
    ASSERT_LT(close, code.size());
    EXPECT_EQ(code[close].text, ")");
    EXPECT_EQ(close + 2, code.size()); // ')' then ';'
}

/**
 * Randomized round-trip: assemble programs from a fragment pool with
 * the project's deterministic PRNG; every assembly must reassemble
 * byte-for-byte and cover every byte with exactly one token.
 */
TEST(Lexer, RandomizedRoundTrip)
{
    const char *fragments[] = {
        "int x = 1;\n",
        "// line comment with \"quotes\" and (parens)\n",
        "/* block\n   comment */",
        "auto r = R\"(payload // with /* markers */)\";\n",
        "auto s = \"str with // and #define\";\n",
        "#define M(a) \\\n    (a + 1)\n",
        "#include \"mod/file.hh\"\n",
        "char c = '\\'';\n",
        "double d = 1'234.5e-6;\n",
        "f(g(h(1, 2), \"x\"), 'y');\n",
        "\t \n",
        "u8\"utf\" L\"wide\";\n",
        "auto cmp = a <=> b;\n",
        "auto w = 9.81_mps2; auto t = \"txt\"_sv;\n",
        "auto j = \"ab\" \"cd\" \"ef\";\n",
        "int operator()(int v) const { return v; }\n",
    };
    const std::size_t n = sizeof(fragments) / sizeof(fragments[0]);

    hopp::Pcg32 rng(20260809);
    for (int trial = 0; trial < 200; ++trial) {
        std::string src;
        int pieces = 1 + static_cast<int>(rng.below(12));
        for (int i = 0; i < pieces; ++i)
            src += fragments[rng.below(static_cast<std::uint32_t>(n))];

        auto toks = lex(src);
        EXPECT_EQ(reassemble(toks), src) << "trial " << trial;

        std::size_t bytes = 0;
        for (const auto &t : toks) {
            EXPECT_FALSE(t.text.empty());
            bytes += t.text.size();
        }
        EXPECT_EQ(bytes, src.size()) << "trial " << trial;
    }
}
