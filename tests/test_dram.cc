/**
 * @file
 * Unit tests for the DRAM frame allocator and traffic accounting, plus
 * the MemCtrl observer fan-out.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/dram.hh"
#include "mem/memctrl.hh"

using namespace hopp;
using namespace hopp::mem;

TEST(Dram, AllocateAllFramesThenExhausted)
{
    Dram dram(4);
    std::set<Ppn> seen;
    for (int i = 0; i < 4; ++i)
        seen.insert(dram.allocate());
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_TRUE(dram.exhausted());
    EXPECT_EQ(dram.usedFrames(), 4u);
    EXPECT_EQ(seen.count(Ppn{}), 0u) << "PPN 0 must stay reserved";
}

TEST(Dram, ReleaseMakesFrameReusable)
{
    Dram dram(1);
    Ppn p = dram.allocate();
    EXPECT_TRUE(dram.exhausted());
    dram.release(p);
    EXPECT_FALSE(dram.exhausted());
    EXPECT_EQ(dram.allocate(), p);
}

TEST(DramDeath, DoubleFreePanics)
{
    Dram dram(2);
    Ppn p = dram.allocate();
    dram.release(p);
    EXPECT_DEATH(dram.release(p), "double free");
}

TEST(DramDeath, AllocateWhenExhaustedPanics)
{
    Dram dram(1);
    dram.allocate();
    EXPECT_DEATH(dram.allocate(), "exhausted");
}

TEST(Dram, TrafficAccountingPerSource)
{
    Dram dram(1);
    dram.recordTraffic(TrafficSource::AppRead, 64);
    dram.recordTraffic(TrafficSource::AppRead, 64);
    dram.recordTraffic(TrafficSource::HotPageWrite, 8);
    EXPECT_EQ(dram.traffic(TrafficSource::AppRead), 128u);
    EXPECT_EQ(dram.traffic(TrafficSource::HotPageWrite), 8u);
    EXPECT_EQ(dram.totalTraffic(), 136u);
    dram.resetTraffic();
    EXPECT_EQ(dram.totalTraffic(), 0u);
}

namespace
{

struct RecordingObserver : McObserver
{
    std::vector<std::tuple<PhysAddr, bool, Tick>> events;

    void
    onMcAccess(PhysAddr pa, bool is_write, Tick now) override
    {
        events.emplace_back(pa, is_write, now);
    }
};

} // namespace

TEST(MemCtrl, ObserversSeeReadsAndWritesWithFlags)
{
    Dram dram(8);
    MemCtrl mc(dram);
    RecordingObserver obs;
    mc.attach(&obs);

    mc.demandRead(PhysAddr{0x1040}, Tick{100});
    mc.writeback(PhysAddr{0x2000}, Tick{200});
    mc.pageDma(Ppn{7}, Tick{300});

    ASSERT_EQ(obs.events.size(), 3u);
    EXPECT_EQ(obs.events[0], std::make_tuple(PhysAddr{0x1040}, false,
                                             Tick{100}));
    EXPECT_EQ(obs.events[1], std::make_tuple(PhysAddr{0x2000}, true,
                                             Tick{200}));
    EXPECT_EQ(std::get<0>(obs.events[2]), pageBase(Ppn{7}));
    EXPECT_TRUE(std::get<1>(obs.events[2]));
}

TEST(MemCtrl, TrafficChargedToRightSources)
{
    Dram dram(8);
    MemCtrl mc(dram);
    mc.demandRead(PhysAddr{}, Tick{});
    mc.writeback(PhysAddr{64}, Tick{});
    mc.pageDma(Ppn{3}, Tick{});
    EXPECT_EQ(dram.traffic(TrafficSource::AppRead), lineBytes);
    EXPECT_EQ(dram.traffic(TrafficSource::AppWrite), lineBytes);
    EXPECT_EQ(dram.traffic(TrafficSource::PageTransfer), pageBytes);
}

TEST(MemCtrl, DetachStopsCallbacks)
{
    Dram dram(8);
    MemCtrl mc(dram);
    RecordingObserver obs;
    mc.attach(&obs);
    mc.demandRead(PhysAddr{}, Tick{});
    mc.detach(&obs);
    mc.demandRead(PhysAddr{64}, Tick{});
    EXPECT_EQ(obs.events.size(), 1u);
}
