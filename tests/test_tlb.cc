/**
 * @file
 * Software TLB tests: direct-mapped cache mechanics, shootdown through
 * the PTE-hook plumbing on every Resident -> non-Resident transition
 * (eviction, process teardown, injection-driven reclaim), and the
 * accelerator contract — simulation results are bit-identical with the
 * TLB on or off.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "vm/tlb.hh"
#include "vm/vms.hh"

using namespace hopp;
using namespace hopp::vm;

namespace
{

TEST(TlbUnit, MissThenFillThenHit)
{
    Tlb tlb(16);
    PageInfo pi;
    EXPECT_EQ(tlb.lookup(Pid{1}, Vpn{5}), nullptr);
    tlb.fill(Pid{1}, Vpn{5}, &pi);
    EXPECT_EQ(tlb.lookup(Pid{1}, Vpn{5}), &pi);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbUnit, DirectMappedAliasEvictsThePriorEntry)
{
    Tlb tlb(16);
    PageInfo a, b;
    // vpn and vpn + entries land in the same slot for one pid.
    tlb.fill(Pid{1}, Vpn{3}, &a);
    tlb.fill(Pid{1}, Vpn{3 + 16}, &b);
    EXPECT_EQ(tlb.lookup(Pid{1}, Vpn{3}), nullptr);
    EXPECT_EQ(tlb.lookup(Pid{1}, Vpn{3 + 16}), &b);
}

TEST(TlbUnit, ShootdownOnlyMatchingTranslation)
{
    Tlb tlb(16);
    PageInfo a, b;
    tlb.fill(Pid{1}, Vpn{2}, &a);
    tlb.fill(Pid{1}, Vpn{9}, &b);
    // A clear for a key that aliases slot-wise but differs in vpn must
    // not invalidate (the slot holds someone else's translation).
    tlb.onPteClear(Pid{1}, Vpn{2 + 16}, Ppn{0}, Tick{});
    EXPECT_EQ(tlb.shootdowns(), 0u);
    EXPECT_EQ(tlb.lookup(Pid{1}, Vpn{2}), &a);
    // A clear for the exact key shoots it down; the other survives.
    tlb.onPteClear(Pid{1}, Vpn{2}, Ppn{0}, Tick{});
    EXPECT_EQ(tlb.shootdowns(), 1u);
    EXPECT_EQ(tlb.lookup(Pid{1}, Vpn{2}), nullptr);
    EXPECT_EQ(tlb.lookup(Pid{1}, Vpn{9}), &b);
}

TEST(TlbUnit, PteSetDoesNotPrefill)
{
    Tlb tlb(16);
    tlb.onPteSet(Pid{1}, Vpn{4}, Ppn{7}, false, false, Tick{});
    EXPECT_EQ(tlb.lookup(Pid{1}, Vpn{4}), nullptr);
}

TEST(TlbUnit, FlushDropsEverything)
{
    Tlb tlb(16);
    PageInfo a, b;
    tlb.fill(Pid{1}, Vpn{1}, &a);
    tlb.fill(Pid{2}, Vpn{2}, &b);
    tlb.flush();
    EXPECT_EQ(tlb.lookup(Pid{1}, Vpn{1}), nullptr);
    EXPECT_EQ(tlb.lookup(Pid{2}, Vpn{2}), nullptr);
    EXPECT_EQ(tlb.flushes(), 1u);
}

/** VMS stack with a TLB wired into the PTE-hook list. */
class TlbVmsTest : public ::testing::Test
{
  protected:
    static constexpr Pid pid{1};

    TlbVmsTest() { rebuild(8); }

    void
    rebuild(std::uint64_t limit)
    {
        eq = std::make_unique<sim::EventQueue>();
        dram = std::make_unique<mem::Dram>(256);
        mc = std::make_unique<mem::MemCtrl>(*dram);
        mem::LlcConfig lcfg;
        lcfg.capacityBytes = 64 << 10;
        llc = std::make_unique<mem::Llc>(lcfg);
        fabric = std::make_unique<net::RdmaFabric>(*eq, net::LinkConfig{});
        node = std::make_unique<remote::RemoteNode>(1 << 20);
        backend = std::make_unique<remote::SwapBackend>(*fabric, *node);
        tlb = std::make_unique<Tlb>(64);
        vms = std::make_unique<Vms>(*eq, *dram, *mc, *llc, *backend,
                                    VmsConfig{});
        vms->addPteHook(tlb.get());
        vms->createProcess(pid, limit);
    }

    Duration
    touch(Vpn vpn, Tick now = Tick{}, bool write = false)
    {
        return vms->access(pid, pageBase(vpn), write, now, tlb.get());
    }

    Tick
    fill(std::uint64_t n, Tick now = Tick{})
    {
        Tick t = now;
        for (std::uint64_t v = 0; v < n; ++v)
            t += touch(Vpn{v}, t);
        return t;
    }

    std::unique_ptr<sim::EventQueue> eq;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::MemCtrl> mc;
    std::unique_ptr<mem::Llc> llc;
    std::unique_ptr<net::RdmaFabric> fabric;
    std::unique_ptr<remote::RemoteNode> node;
    std::unique_ptr<remote::SwapBackend> backend;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<Vms> vms;
};

TEST_F(TlbVmsTest, SecondAccessHitsTlbAtIdenticalCost)
{
    CostModel cm;
    touch(Vpn{5}); // cold fault fills the TLB
    EXPECT_EQ(tlb.get()->hits(), 0u);
    EXPECT_EQ(touch(Vpn{5}), cm.llcHit);
    EXPECT_EQ(tlb.get()->hits(), 1u);
    EXPECT_EQ(vms->stats().accesses, 2u);
    EXPECT_EQ(vms->stats().llcHits, 1u);
}

TEST_F(TlbVmsTest, EvictionShootsDownTheCachedEntry)
{
    Tick t = fill(8); // limit 8; every page cached in the TLB
    t += touch(Vpn{100}, t); // evicts page 0 -> firePteClear
    EXPECT_GE(tlb.get()->shootdowns(), 1u);
    EXPECT_EQ(tlb.get()->lookup(pid, Vpn{0}), nullptr);

    // Fault-after-evict: the access must take the slow path and pay a
    // remote fault, not serve a stale resident record.
    std::uint64_t remote_before = vms->stats().remoteFaults;
    t += touch(Vpn{0}, t);
    EXPECT_EQ(vms->stats().remoteFaults, remote_before + 1);
    EXPECT_TRUE(vms->pageTable().present(pid, Vpn{0}));
}

TEST_F(TlbVmsTest, TeardownShootsDownEveryProcessEntry)
{
    Tick t = fill(6);
    EXPECT_EQ(tlb.get()->shootdowns(), 0u);
    vms->destroyProcess(pid, t);
    // All six resident pages had cached translations; each PTE clear
    // must have reached the TLB.
    EXPECT_EQ(tlb.get()->shootdowns(), 6u);
    for (std::uint64_t v = 0; v < 6; ++v)
        EXPECT_EQ(tlb.get()->lookup(pid, Vpn{v}), nullptr);
}

TEST_F(TlbVmsTest, InjectionDrivenEvictionInvalidates)
{
    struct ClearRecorder : PteHook
    {
        std::vector<Vpn> cleared;
        void onPteSet(Pid, Vpn, Ppn, bool, bool, Tick) override {}
        void
        onPteClear(Pid, Vpn vpn, Ppn, Tick) override
        {
            cleared.push_back(vpn);
        }
    } rec;
    vms->addPteHook(&rec);

    Tick t = fill(9); // page 0 swapped out, cgroup at its limit
    rec.cleared.clear();
    ASSERT_EQ(vms->prefetchInject(pid, Vpn{0}, 3, t),
              Vms::InjectResult::Issued);
    eq->run();
    // Injection reclaimed (at least) one LRU page to make room; every
    // translation it cleared must be gone from the TLB.
    ASSERT_FALSE(rec.cleared.empty());
    for (Vpn v : rec.cleared)
        EXPECT_EQ(tlb.get()->lookup(pid, v), nullptr)
            << "stale translation for vpn " << v.raw();
}

TEST_F(TlbVmsTest, RandomizedTlbOnOffIsBitIdentical)
{
    // Drive the same pseudo-random access stream through two identical
    // stacks, one with the TLB and one without: every per-access cost
    // and every statistic must match exactly (the TLB is a host-side
    // accelerator, not a model change).
    struct Outcome
    {
        std::vector<Duration> costs;
        VmsStats stats;
    };
    auto drive = [](bool with_tlb) {
        sim::EventQueue eq;
        mem::Dram dram(256);
        mem::MemCtrl mc(dram);
        mem::LlcConfig lcfg;
        lcfg.capacityBytes = 64 << 10;
        mem::Llc llc(lcfg);
        net::RdmaFabric fabric(eq, net::LinkConfig{});
        remote::RemoteNode node(1 << 20);
        remote::SwapBackend backend(fabric, node);
        Tlb tlb(64);
        Vms vms(eq, dram, mc, llc, backend, VmsConfig{});
        if (with_tlb)
            vms.addPteHook(&tlb);
        vms.createProcess(Pid{1}, 8);

        Pcg32 rng(1234);
        Outcome out;
        Tick t{};
        for (int i = 0; i < 4000; ++i) {
            Vpn vpn{rng.below(32)};
            bool write = rng.chance(0.3);
            Duration d = vms.access(Pid{1}, pageBase(vpn), write, t,
                                    with_tlb ? &tlb : nullptr);
            out.costs.push_back(d);
            t += d;
        }
        out.stats = vms.stats();
        return out;
    };

    Outcome on = drive(true);
    Outcome off = drive(false);
    EXPECT_EQ(on.costs, off.costs);
    EXPECT_EQ(on.stats.accesses, off.stats.accesses);
    EXPECT_EQ(on.stats.llcHits, off.stats.llcHits);
    EXPECT_EQ(on.stats.llcMisses, off.stats.llcMisses);
    EXPECT_EQ(on.stats.coldFaults, off.stats.coldFaults);
    EXPECT_EQ(on.stats.remoteFaults, off.stats.remoteFaults);
    EXPECT_EQ(on.stats.evictions, off.stats.evictions);
    EXPECT_EQ(on.stats.writebacks, off.stats.writebacks);
    EXPECT_EQ(on.stats.directReclaims, off.stats.directReclaims);
}

} // namespace
