/**
 * @file
 * Integration-grade unit tests for the virtual memory subsystem: fault
 * paths and their §II-A costs, reclaim/LRU behaviour, cgroup charging,
 * both prefetch insertion flavours, PTE hooks and lifecycle listeners.
 */

#include <gtest/gtest.h>

#include <vector>

#include "vm/vms.hh"

using namespace hopp;
using namespace hopp::vm;

namespace
{

struct Recorder : PageEventListener
{
    struct Hit
    {
        Vpn vpn;
        Origin origin;
        Tick readyAt;
        Tick hitAt;
        bool dramHit;
    };

    std::vector<Hit> hits;
    std::vector<Vpn> evictedPrefetches;
    std::vector<Vpn> demandRemotes;
    std::vector<FaultKind> faults;

    void
    onPrefetchHit(Pid, Vpn vpn, Origin o, Tick ready, Tick hit,
                  bool dram) override
    {
        hits.push_back({vpn, o, ready, hit, dram});
    }

    void
    onPrefetchEvicted(Pid, Vpn vpn, Origin, Tick) override
    {
        evictedPrefetches.push_back(vpn);
    }

    void
    onDemandRemote(Pid, Vpn vpn, Tick) override
    {
        demandRemotes.push_back(vpn);
    }

    void
    onFaultResolved(Pid, Vpn, FaultKind k, Duration, Tick) override
    {
        faults.push_back(k);
    }
};

struct HookRecorder : PteHook
{
    std::vector<std::pair<Vpn, Ppn>> sets;
    std::vector<std::pair<Vpn, Ppn>> clears;

    void
    onPteSet(Pid, Vpn vpn, Ppn ppn, bool, bool, Tick) override
    {
        sets.emplace_back(vpn, ppn);
    }

    void
    onPteClear(Pid, Vpn vpn, Ppn ppn, Tick) override
    {
        clears.emplace_back(vpn, ppn);
    }
};

class VmsTest : public ::testing::Test
{
  protected:
    static constexpr Pid pid{1};

    VmsTest() { rebuild(8, 64, /*kswapd=*/false); }

    void
    rebuild(std::uint64_t limit, std::uint64_t dram_frames, bool kswapd)
    {
        VmsConfig cfg;
        cfg.kswapdEnabled = kswapd;
        rebuild(cfg, limit, dram_frames);
    }

    void
    rebuild(const VmsConfig &cfg, std::uint64_t limit,
            std::uint64_t dram_frames)
    {
        eq = std::make_unique<sim::EventQueue>();
        dram = std::make_unique<mem::Dram>(dram_frames);
        mc = std::make_unique<mem::MemCtrl>(*dram);
        mem::LlcConfig lcfg;
        lcfg.capacityBytes = 64 << 10;
        llc = std::make_unique<mem::Llc>(lcfg);
        fabric = std::make_unique<net::RdmaFabric>(*eq, net::LinkConfig{});
        node = std::make_unique<remote::RemoteNode>(1 << 20);
        backend = std::make_unique<remote::SwapBackend>(*fabric, *node);
        vms = std::make_unique<Vms>(*eq, *dram, *mc, *llc, *backend, cfg);
        vms->addListener(&rec);
        vms->addPteHook(&hook);
        vms->createProcess(pid, limit);
    }

    /** Touch the first line of page vpn at time now. */
    Duration
    touch(Vpn vpn, Tick now = Tick{}, bool write = false)
    {
        return vms->access(pid, pageBase(vpn), write, now);
    }

    /** Fill pages [0, n) so the LRU has n entries. */
    Tick
    fill(std::uint64_t n, Tick now = Tick{})
    {
        Tick t = now;
        for (std::uint64_t v = 0; v < n; ++v)
            t += touch(Vpn{v}, t);
        return t;
    }

    std::unique_ptr<sim::EventQueue> eq;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::MemCtrl> mc;
    std::unique_ptr<mem::Llc> llc;
    std::unique_ptr<net::RdmaFabric> fabric;
    std::unique_ptr<remote::RemoteNode> node;
    std::unique_ptr<remote::SwapBackend> backend;
    std::unique_ptr<Vms> vms;
    Recorder rec;
    HookRecorder hook;
};

} // namespace

TEST_F(VmsTest, ColdFaultCostsKernelPathPlusDramMiss)
{
    CostModel cm;
    Duration cost = touch(Vpn{5});
    EXPECT_EQ(cost, cm.coldFaultOverhead() + cm.dramHit);
    EXPECT_EQ(vms->stats().coldFaults, 1u);
    EXPECT_TRUE(vms->pageTable().present(pid, Vpn{5}));
}

TEST_F(VmsTest, ResidentLineHitCostsLlcHit)
{
    CostModel cm;
    touch(Vpn{5});
    EXPECT_EQ(touch(Vpn{5}), cm.llcHit);
    // A different line of the same page misses LLC but not the page.
    EXPECT_EQ(vms->access(pid, pageBase(Vpn{5}) + lineBytes, false,
                          Tick{}),
              cm.dramHit);
    EXPECT_EQ(vms->stats().faults(), 1u);
}

TEST_F(VmsTest, ExceedingCgroupLimitEvictsLru)
{
    fill(8); // limit is 8
    EXPECT_EQ(vms->stats().evictions, 0u);
    touch(Vpn{100});
    EXPECT_EQ(vms->stats().evictions, 1u);
    // Page 0 (LRU) went remote.
    EXPECT_FALSE(vms->pageTable().present(pid, Vpn{0}));
    EXPECT_EQ(vms->pageTable().find(pid, Vpn{0})->state, PageState::Swapped);
    EXPECT_EQ(vms->cgroup(pid).charged(), 8u);
}

TEST_F(VmsTest, EvictedDirtyPageIsWrittenBack)
{
    fill(8);
    touch(Vpn{100});
    // Cold pages have no swap copy: eviction must write back.
    EXPECT_EQ(vms->stats().writebacks, 1u);
    EXPECT_EQ(backend->writebacks(), 1u);
}

TEST_F(VmsTest, CleanRefetchedPageEvictsWithoutWriteback)
{
    Tick t = fill(9); // evicts page 0 with writeback #1
    t += touch(Vpn{0}, t); // remote fault: page 0 back, clean
    backend->resetStats();
    // Evict something twice; page 1 and 2 are dirty (cold) -> writeback,
    // but refetched page 0... force page 0 out by touching new pages and
    // keeping 0 idle.
    std::uint64_t wb_before = vms->stats().writebacks;
    for (std::uint64_t v = 200; v < 210; ++v)
        t += touch(Vpn{v}, t);
    // Page 0 was evicted again at some point; because it was clean it
    // should not have been written back: total writebacks grew by the
    // number of dirty evictions only.
    std::uint64_t dirty_evictions = 0;
    (void)wb_before;
    // All evicted pages except page 0 were cold-dirty. Count evictions
    // minus writebacks difference:
    dirty_evictions = vms->stats().writebacks;
    EXPECT_EQ(vms->stats().evictions - dirty_evictions, 1u)
        << "exactly one eviction (clean page 0) skipped writeback";
}

TEST_F(VmsTest, RemoteFaultPaysRdmaLatency)
{
    CostModel cm;
    fill(9); // page 0 evicted
    Duration cost = touch(Vpn{0}, Tick{1'000'000});
    // Kernel path (2.3 us) + ~4 us RDMA + DRAM access; no reclaim
    // needed because eviction already happened... but fetching page 0
    // exceeds the limit again, so one direct reclaim may be included.
    EXPECT_GT(cost, 6'000u);
    EXPECT_LT(cost, 14'000u);
    EXPECT_EQ(vms->stats().remoteFaults, 1u);
    EXPECT_EQ(rec.demandRemotes.size(), 1u);
    (void)cm;
}

TEST_F(VmsTest, SwapCachePrefetchHitCostsPrefetchHitOverhead)
{
    CostModel cm;
    Tick t = fill(9); // page 0 swapped out
    ASSERT_TRUE(vms->prefetchToSwapCache(pid, Vpn{0}, 2, t));
    eq->run(); // completion lands in swapcache
    ASSERT_EQ(vms->pageTable().find(pid, Vpn{0})->state, PageState::SwapCached);
    Tick when = eq->now() + 1000;
    Duration cost = touch(Vpn{0}, when);
    // Prefetch-hit: 2.3 us + one direct reclaim (charging page 0 pushes
    // the cgroup over its limit) + DRAM access.
    EXPECT_GE(cost, cm.prefetchHitOverhead() + cm.dramHit);
    EXPECT_LE(cost, cm.prefetchHitOverhead() + cm.dramHit +
                        cm.directReclaimPerPage);
    EXPECT_EQ(vms->stats().swapCacheHits, 1u);
    ASSERT_EQ(rec.hits.size(), 1u);
    EXPECT_EQ(rec.hits[0].vpn, Vpn{0});
    EXPECT_EQ(rec.hits[0].origin, 2);
    EXPECT_FALSE(rec.hits[0].dramHit);
}

TEST_F(VmsTest, InjectedPageFirstTouchIsDramHit)
{
    CostModel cm;
    Tick t = fill(9); // page 0 swapped out; cgroup full at 8
    ASSERT_EQ(vms->prefetchInject(pid, Vpn{0}, 3, t),
              Vms::InjectResult::Issued);
    eq->run();
    // Injection evicted one LRU page (no app cost) and mapped page 0.
    EXPECT_TRUE(vms->pageTable().present(pid, Vpn{0}));
    Duration cost = touch(Vpn{0}, eq->now() + 1000);
    EXPECT_EQ(cost, cm.dramHit); // no fault at all
    EXPECT_EQ(vms->stats().injectedHits, 1u);
    ASSERT_EQ(rec.hits.size(), 1u);
    EXPECT_TRUE(rec.hits[0].dramHit);
    EXPECT_EQ(rec.hits[0].origin, 3);
    EXPECT_EQ(vms->stats().faults(), 9u); // only the fills
}

TEST_F(VmsTest, InjectionChargesCgroup)
{
    Tick t = fill(9);
    EXPECT_EQ(vms->cgroup(pid).charged(), 8u);
    vms->prefetchInject(pid, Vpn{0}, 3, t);
    eq->run();
    // Still at the limit: injection evicted one page, charged page 0.
    EXPECT_EQ(vms->cgroup(pid).charged(), 8u);
    EXPECT_EQ(vms->stats().evictions, 2u); // fill eviction + injection
}

TEST_F(VmsTest, SwapCachePrefetchIsNotCharged)
{
    rebuild(8, 64, false);
    Tick t = fill(9);
    vms->prefetchToSwapCache(pid, Vpn{0}, 2, t);
    eq->run();
    EXPECT_EQ(vms->cgroup(pid).charged(), 8u);
    EXPECT_EQ(vms->pageTable().find(pid, Vpn{0})->charged, false);
    // The hit charges it (and must reclaim one page first).
    touch(Vpn{0}, eq->now() + 10);
    EXPECT_EQ(vms->cgroup(pid).charged(), 8u);
    EXPECT_TRUE(vms->pageTable().find(pid, Vpn{0})->charged);
}

TEST_F(VmsTest, UnusedPrefetchEventuallyEvictedAndReported)
{
    Tick t = fill(9); // page 0 out
    vms->prefetchToSwapCache(pid, Vpn{0}, 2, t);
    eq->run();
    // Never touch page 0; stream new pages until it gets reclaimed.
    t = eq->now();
    for (std::uint64_t v = 300; v < 330; ++v)
        t += touch(Vpn{v}, t);
    EXPECT_FALSE(rec.evictedPrefetches.empty());
    EXPECT_EQ(rec.evictedPrefetches[0], Vpn{0});
    EXPECT_EQ(vms->pageTable().find(pid, Vpn{0})->state, PageState::Swapped);
}

TEST_F(VmsTest, FaultOnInflightPrefetchWaitsAndCountsHit)
{
    Tick t = fill(9);
    ASSERT_TRUE(vms->prefetchToSwapCache(pid, Vpn{0}, 2, t));
    // Fault immediately, long before the ~4 us completion.
    Duration cost = touch(Vpn{0}, t);
    CostModel cm;
    EXPECT_GT(cost, cm.prefetchHitOverhead()); // waited for the wire
    EXPECT_EQ(vms->stats().inflightWaits, 1u);
    ASSERT_EQ(rec.hits.size(), 1u);
    EXPECT_FALSE(rec.hits[0].dramHit);
    eq->run();
    // The completion found the page consumed and dropped its work.
    EXPECT_EQ(vms->stats().prefetchesDropped, 1u);
    EXPECT_TRUE(vms->pageTable().present(pid, Vpn{0}));
}

TEST_F(VmsTest, PrefetchableOnlyWhenSwappedAndIdle)
{
    Tick t = fill(9);
    EXPECT_FALSE(vms->prefetchable(pid, Vpn{3}));   // resident
    EXPECT_FALSE(vms->prefetchable(pid, Vpn{999})); // untouched
    EXPECT_TRUE(vms->prefetchable(pid, Vpn{0}));    // swapped
    vms->prefetchToSwapCache(pid, Vpn{0}, 2, t);
    EXPECT_FALSE(vms->prefetchable(pid, Vpn{0})); // inflight
    EXPECT_FALSE(vms->prefetchToSwapCache(pid, Vpn{0}, 2, t));
}

TEST_F(VmsTest, PteHooksFireOnMapAndClear)
{
    fill(8);
    EXPECT_EQ(hook.sets.size(), 8u);
    touch(Vpn{100}); // evicts page 0
    ASSERT_EQ(hook.clears.size(), 1u);
    EXPECT_EQ(hook.clears[0].first, Vpn{0});
    // The cleared PPN matches what was set for page 0.
    EXPECT_EQ(hook.clears[0].second, hook.sets[0].second);
}

TEST_F(VmsTest, FaultCallbackSeesRemoteAndSwapCacheKinds)
{
    std::vector<FaultKind> kinds;
    vms->setFaultCallback(
        [&](const FaultContext &f) { kinds.push_back(f.kind); });
    Tick t = fill(9);          // cold faults don't call back
    EXPECT_TRUE(kinds.empty());
    t += touch(Vpn{0}, t);          // remote fault
    ASSERT_EQ(kinds.size(), 1u);
    EXPECT_EQ(kinds[0], FaultKind::Remote);
    t += touch(Vpn{1}, t);          // second remote fault
    vms->prefetchToSwapCache(pid, Vpn{2}, 2, t);
    eq->run();
    touch(Vpn{2}, eq->now());       // swapcache hit
    ASSERT_EQ(kinds.size(), 3u);
    EXPECT_EQ(kinds[2], FaultKind::SwapCacheHit);
}

TEST_F(VmsTest, SecondChanceKeepsRecentlyTouchedPage)
{
    fill(8);
    Tick t{1'000'000};
    t += touch(Vpn{100}, t); // evicts page 0 after one rotation pass
    EXPECT_EQ(vms->pageTable().find(pid, Vpn{0})->state, PageState::Swapped);
    // Touch page 1 (sets its accessed bit); page 2's bit was cleared by
    // the rotation above, so the next eviction must pick page 2.
    t += touch(Vpn{1}, t);
    t += touch(Vpn{101}, t);
    EXPECT_EQ(vms->pageTable().find(pid, Vpn{1})->state, PageState::Resident);
    EXPECT_EQ(vms->pageTable().find(pid, Vpn{2})->state, PageState::Swapped);
}

TEST_F(VmsTest, KswapdReclaimsInBackgroundWithoutAppCost)
{
    rebuild(64, 256, /*kswapd=*/true);
    Tick t{};
    // Touch up to the high watermark; kswapd should kick in and bring
    // charge down to the low watermark without direct reclaims.
    for (std::uint64_t v = 0; v < 64; ++v)
        t += touch(Vpn{v}, t);
    eq->runUntil(t + 1'000'000);
    EXPECT_GT(vms->stats().kswapdReclaims, 0u);
    EXPECT_EQ(vms->stats().directReclaims, 0u);
    auto low = static_cast<std::uint64_t>(64 * vms->config().lowWatermark);
    EXPECT_LE(vms->cgroup(pid).charged(), low + 1);
}

TEST_F(VmsTest, TinyKswapdBatchStillConvergesToLowWatermark)
{
    // One eviction per pass: convergence must come from rescheduling,
    // not from a single large burst.
    VmsConfig cfg;
    cfg.kswapdEnabled = true;
    cfg.kswapdBatch = 1;
    rebuild(cfg, 64, 256);
    Tick t{};
    for (std::uint64_t v = 0; v < 64; ++v)
        t += touch(Vpn{v}, t);
    eq->runUntil(t + 10'000'000);
    EXPECT_GT(vms->stats().kswapdReclaims, 0u);
    EXPECT_EQ(vms->stats().directReclaims, 0u);
    auto low =
        static_cast<std::uint64_t>(64 * vms->config().lowWatermark);
    EXPECT_LE(vms->cgroup(pid).charged(), low + 1);
}

TEST_F(VmsTest, AccessBatchMatchesScalarLoop)
{
    // Any record with .va/.write drains through accessBatch; the
    // result must be exactly the scalar loop: same final time, same
    // counters, conservation intact.
    struct Rec
    {
        VirtAddr va;
        bool write;
    };
    std::vector<Rec> block;
    for (std::uint64_t v = 0; v < 24; ++v) {
        block.push_back({pageBase(Vpn{v % 6}) + (v % 3) * lineBytes,
                         (v & 1) != 0});
    }

    std::size_t consumed = 0;
    Tick batched_end = vms->accessBatch(pid, block.data(), block.size(),
                                        Tick{}, maxTick, &consumed);
    EXPECT_EQ(consumed, block.size())
        << "maxTick horizon + empty queue must drain the whole block";
    VmsStats batched = vms->stats();

    rebuild(8, 64, /*kswapd=*/false);
    Tick t{};
    for (const Rec &r : block)
        t += vms->access(pid, r.va, r.write, t);
    const VmsStats &scalar = vms->stats();

    EXPECT_EQ(batched_end, t);
    EXPECT_EQ(batched.accesses, scalar.accesses);
    EXPECT_EQ(batched.llcHits, scalar.llcHits);
    EXPECT_EQ(batched.llcMisses, scalar.llcMisses);
    EXPECT_EQ(batched.coldFaults, scalar.coldFaults);
    EXPECT_EQ(batched.remoteFaults, scalar.remoteFaults);
    EXPECT_EQ(batched.swapCacheHits, scalar.swapCacheHits);
    EXPECT_EQ(batched.inflightWaits, scalar.inflightWaits);
    EXPECT_EQ(batched.accesses, block.size());
    EXPECT_EQ(batched.accesses, batched.llcHits + batched.llcMisses);
}

TEST_F(VmsTest, AccessBatchYieldsAtStopHorizon)
{
    // The per-access yield check: a horizon in the past stops the
    // drain after exactly one access (the check runs after, never
    // before, an access — a thread always makes progress), and the
    // drain resumes where it stopped. Four pages stay clear of the
    // kswapd watermark, so the queue stays empty throughout.
    struct Rec
    {
        VirtAddr va;
        bool write;
    };
    std::vector<Rec> block;
    for (std::uint64_t v = 0; v < 4; ++v)
        block.push_back({pageBase(Vpn{v}), false});

    std::size_t consumed = 0;
    Tick end = vms->accessBatch(pid, block.data(), block.size(), Tick{},
                                Tick{1}, &consumed);
    EXPECT_EQ(consumed, 1u);
    EXPECT_GE(end, Tick{1});
    EXPECT_EQ(vms->stats().accesses, 1u);

    std::size_t rest = 0;
    end = vms->accessBatch(pid, block.data() + consumed,
                           block.size() - consumed, end, maxTick, &rest);
    EXPECT_EQ(consumed + rest, block.size());
    EXPECT_EQ(vms->stats().accesses, block.size());
    EXPECT_EQ(vms->stats().accesses,
              vms->stats().llcHits + vms->stats().llcMisses);
}

TEST_F(VmsTest, WriteMarksPageDirtyAgain)
{
    Tick t = fill(9);
    t += touch(Vpn{0}, t); // refetch page 0: clean
    EXPECT_FALSE(vms->pageTable().find(pid, Vpn{0})->dirty);
    t += touch(Vpn{0}, t, /*write=*/true);
    EXPECT_TRUE(vms->pageTable().find(pid, Vpn{0})->dirty);
    EXPECT_FALSE(vms->pageTable().find(pid, Vpn{0})->hasSwapCopy);
}

TEST_F(VmsTest, StatsCountAccessesAndLlc)
{
    touch(Vpn{0});
    touch(Vpn{0});
    touch(Vpn{0});
    EXPECT_EQ(vms->stats().accesses, 3u);
    EXPECT_EQ(vms->stats().llcHits, 2u);
    EXPECT_EQ(vms->stats().llcMisses, 1u);
}

TEST_F(VmsTest, MultipleProcessesHaveIndependentCgroups)
{
    vms->createProcess(Pid{2}, 4);
    Tick t{};
    for (std::uint64_t v = 0; v < 8; ++v)
        t += touch(Vpn{v}, t);
    for (std::uint64_t v = 0; v < 5; ++v)
        t += vms->access(Pid{2}, pageBase(Vpn{v}), false, t);
    EXPECT_EQ(vms->cgroup(pid).charged(), 8u);
    EXPECT_EQ(vms->cgroup(Pid{2}).charged(), 4u);
    // Pid 2 evicted one of its own pages, not pid 1's.
    EXPECT_EQ(vms->pageTable().find(Pid{2}, Vpn{0})->state, PageState::Swapped);
    EXPECT_EQ(vms->pageTable().find(pid, Vpn{0})->state, PageState::Resident);
}

TEST_F(VmsTest, MarkFlagsPropagateToHooks)
{
    vms->markFlags(pid, Vpn{7}, /*shared=*/true, /*huge=*/false);
    bool saw_shared = false;
    struct FlagHook : PteHook
    {
        bool *saw;
        void
        onPteSet(Pid, Vpn vpn, Ppn, bool shared, bool, Tick) override
        {
            if (vpn == Vpn{7} && shared)
                *saw = true;
        }
        void onPteClear(Pid, Vpn, Ppn, Tick) override {}
    } fh;
    fh.saw = &saw_shared;
    vms->addPteHook(&fh);
    touch(Vpn{7});
    EXPECT_TRUE(saw_shared);
}
