/**
 * @file
 * Unit tests for the Hot Page Detection table (§III-B): threshold
 * behaviour, send-bit suppression, write filtering, set conflicts and
 * the Table II hot-ratio property on streaming traffic.
 */

#include <gtest/gtest.h>

#include "hopp/hpd.hh"

using namespace hopp;
using namespace hopp::core;

namespace
{

HpdConfig
cfg(unsigned threshold = 8)
{
    HpdConfig c;
    c.threshold = threshold;
    return c;
}

/** Touch `n` distinct lines of page `ppn`. */
std::uint64_t
touchLines(Hpd &hpd, Ppn ppn, unsigned n)
{
    std::uint64_t hot = 0;
    for (unsigned i = 0; i < n; ++i)
        hot += hpd.access(pageBase(ppn) + i * lineBytes, false)
                   .has_value();
    return hot;
}

} // namespace

TEST(Hpd, PageBecomesHotAtThreshold)
{
    Hpd hpd(cfg(8));
    EXPECT_EQ(touchLines(hpd, Ppn{100}, 7), 0u);
    auto hot = hpd.access(pageBase(Ppn{100}) + 7 * lineBytes, false);
    ASSERT_TRUE(hot.has_value());
    EXPECT_EQ(*hot, Ppn{100});
    EXPECT_EQ(hpd.stats().hotPages, 1u);
}

TEST(Hpd, SendBitSuppressesRepeatedExtraction)
{
    Hpd hpd(cfg(4));
    touchLines(hpd, Ppn{100}, 4); // extracted
    EXPECT_EQ(touchLines(hpd, Ppn{100}, 20), 0u);
    EXPECT_EQ(hpd.stats().hotPages, 1u);
    EXPECT_EQ(hpd.stats().suppressed, 20u);
}

TEST(Hpd, WritesAreIgnored)
{
    Hpd hpd(cfg(2));
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(hpd.access(pageBase(Ppn{5}), true).has_value());
    EXPECT_EQ(hpd.stats().writesIgnored, 10u);
    EXPECT_EQ(hpd.stats().reads, 0u);
    EXPECT_EQ(hpd.tracked(), 0u);
}

TEST(Hpd, EvictionAllowsReExtraction)
{
    // 4 sets x 16 ways; flood set 0 (ppn % 4 == 0) to evict page 0.
    Hpd hpd(cfg(4));
    touchLines(hpd, Ppn{0}, 4); // hot, send bit set
    EXPECT_EQ(hpd.stats().hotPages, 1u);
    for (std::uint64_t p = 4; p <= 4 * 16; p += 4)
        touchLines(hpd, Ppn{p}, 1); // 16 new pages in set 0 evict page 0
    EXPECT_GT(hpd.stats().evictions, 0u);
    // Page 0 can be detected hot again (repeated detection after
    // eviction — why small N inflates Table II's ratio).
    touchLines(hpd, Ppn{0}, 4);
    EXPECT_EQ(hpd.stats().hotPages, 2u);
}

TEST(Hpd, ThresholdOneExtractsImmediately)
{
    Hpd hpd(cfg(1));
    auto hot = hpd.access(pageBase(Ppn{9}), false);
    ASSERT_TRUE(hot.has_value());
    EXPECT_EQ(*hot, Ppn{9});
}

TEST(Hpd, StreamingRatioIsOneOverLinesPerPage)
{
    // Full-page streaming: each page read 64 times, N=8 -> exactly one
    // hot page per 64 reads = 1.5625% (Table II's K-means row).
    Hpd hpd(cfg(8));
    for (std::uint64_t p = 0; p < 512; ++p)
        touchLines(hpd, Ppn{p}, 64);
    EXPECT_NEAR(hpd.stats().hotRatio(), 1.0 / 64.0, 1e-9);
}

TEST(Hpd, SmallerThresholdNeverLowersRatio)
{
    // Property (Table II): the extraction ratio is non-increasing in N
    // for identical traffic.
    double prev = 1.0;
    for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
        Hpd hpd(cfg(n));
        // Sparse revisits: pages get 16 touches in 4-touch bursts with
        // interleaved conflict traffic.
        for (int round = 0; round < 4; ++round) {
            for (std::uint64_t p = 0; p < 256; ++p)
                touchLines(hpd, Ppn{p}, 4);
        }
        double ratio = hpd.stats().hotRatio();
        EXPECT_LE(ratio, prev + 1e-12) << "N=" << n;
        prev = ratio;
    }
}

TEST(Hpd, TracksAtMostSetsTimesWays)
{
    Hpd hpd(cfg(8));
    for (std::uint64_t p = 0; p < 1000; ++p)
        touchLines(hpd, Ppn{p}, 1);
    EXPECT_LE(hpd.tracked(), 64u);
}

TEST(Hpd, ResetStatsKeepsTableContents)
{
    Hpd hpd(cfg(4));
    touchLines(hpd, Ppn{7}, 3);
    hpd.resetStats();
    EXPECT_EQ(hpd.stats().reads, 0u);
    // One more read completes the threshold: contents were kept.
    auto hot = hpd.access(pageBase(Ppn{7}), false);
    EXPECT_TRUE(hot.has_value());
}
