/**
 * @file
 * Unit tests for the prefetch execution engine (§III-F): dedup,
 * injection, adoption accounting, per-tier stats and policy feedback.
 */

#include <gtest/gtest.h>

#include "hopp/exec_engine.hh"
#include "prefetch/prefetcher.hh"
#include "vm/vms.hh"

using namespace hopp;
using namespace hopp::core;

namespace
{

class ExecTest : public ::testing::Test
{
  protected:
    static constexpr Pid pid{1};

    ExecTest()
    {
        vm::VmsConfig vcfg;
        vcfg.kswapdEnabled = false;
        eq = std::make_unique<sim::EventQueue>();
        dram = std::make_unique<mem::Dram>(64);
        mc = std::make_unique<mem::MemCtrl>(*dram);
        llc = std::make_unique<mem::Llc>(mem::LlcConfig{64 << 10, 4});
        fabric =
            std::make_unique<net::RdmaFabric>(*eq, net::LinkConfig{});
        node = std::make_unique<remote::RemoteNode>(1 << 16);
        backend = std::make_unique<remote::SwapBackend>(*fabric, *node);
        vms = std::make_unique<vm::Vms>(*eq, *dram, *mc, *llc, *backend,
                                        vcfg);
        vms->createProcess(pid, 8);
        policy = std::make_unique<PolicyEngine>();
        exec = std::make_unique<ExecEngine>(*vms, *policy);
    }

    Duration
    touch(Vpn v, Tick now = Tick{})
    {
        return vms->access(pid, pageBase(v), false, now);
    }

    /** Touch pages [0, n), swapping out the early ones. */
    Tick
    fill(std::uint64_t n)
    {
        Tick t{};
        for (std::uint64_t v = 0; v < n; ++v)
            t += touch(Vpn{v}, t);
        return t;
    }

    std::unique_ptr<sim::EventQueue> eq;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::MemCtrl> mc;
    std::unique_ptr<mem::Llc> llc;
    std::unique_ptr<net::RdmaFabric> fabric;
    std::unique_ptr<remote::RemoteNode> node;
    std::unique_ptr<remote::SwapBackend> backend;
    std::unique_ptr<vm::Vms> vms;
    std::unique_ptr<PolicyEngine> policy;
    std::unique_ptr<ExecEngine> exec;
};

} // namespace

TEST_F(ExecTest, IssuesInjectionForSwappedPage)
{
    Tick t = fill(9); // page 0 swapped out
    exec->request(pid, Vpn{0}, /*stream=*/7, Tier::Ssp, t);
    EXPECT_EQ(exec->tierStats(Tier::Ssp).issued, 1u);
    EXPECT_EQ(exec->outstanding(), 1u);
    eq->run();
}

TEST_F(ExecTest, DedupsResidentAndUntouchedPages)
{
    Tick t = fill(4);
    exec->request(pid, Vpn{2}, 7, Tier::Ssp, t);    // resident
    exec->request(pid, Vpn{9999}, 7, Tier::Ssp, t); // untouched
    EXPECT_EQ(exec->deduped(), 2u);
    EXPECT_EQ(exec->tierStats(Tier::Ssp).issued, 0u);
}

TEST_F(ExecTest, DedupsInflightRequests)
{
    Tick t = fill(9);
    exec->request(pid, Vpn{0}, 7, Tier::Ssp, t);
    exec->request(pid, Vpn{0}, 7, Tier::Ssp, t); // duplicate while in flight
    EXPECT_EQ(exec->deduped(), 1u);
    EXPECT_EQ(exec->tierStats(Tier::Ssp).issued, 1u);
    eq->run();
}

TEST_F(ExecTest, AdoptsSwapCachedPageInstantly)
{
    Tick t = fill(9);
    ASSERT_TRUE(vms->prefetchToSwapCache(pid, Vpn{0}, 2, t));
    eq->run();
    exec->request(pid, Vpn{0}, 7, Tier::Lsp, eq->now());
    const auto &ts = exec->tierStats(Tier::Lsp);
    EXPECT_EQ(ts.issued, 1u);
    EXPECT_EQ(ts.completed, 1u); // instantly complete
    EXPECT_TRUE(vms->pageTable().present(pid, Vpn{0}));
    EXPECT_EQ(vms->stats().adoptions, 1u);
}

TEST_F(ExecTest, HitFeedsPolicyAndCountsPerTier)
{
    Tick t = fill(9);
    exec->request(pid, Vpn{0}, /*stream=*/42, Tier::Rsp, t);
    eq->run(); // injection completes
    // Wire the VMS listener path manually: first touch fires
    // onPrefetchHit, which the HoppSystem would route to exec->onHit.
    struct Router : vm::PageEventListener
    {
        ExecEngine *exec;
        void
        onPrefetchHit(Pid p, Vpn v, vm::Origin o, Tick r, Tick h,
                      bool) override
        {
            if (o == prefetch::origin::hopp)
                exec->onHit(p, v, r, h);
        }
    } router;
    router.exec = exec.get();
    vms->addListener(&router);
    touch(Vpn{0}, eq->now() + 1000); // immediate touch: T ~ 0 -> late
    EXPECT_EQ(exec->tierStats(Tier::Rsp).hits, 1u);
    EXPECT_EQ(exec->outstanding(), 0u);
    EXPECT_EQ(policy->stats().feedbacks, 1u);
    // One sample does not move the offset (epoch averaging), but it
    // is accumulated toward the next adjustment.
    EXPECT_DOUBLE_EQ(policy->offsetOf(42), 1.0);
}

TEST_F(ExecTest, EvictionCountsUnused)
{
    Tick t = fill(9);
    exec->request(pid, Vpn{0}, 7, Tier::Ssp, t);
    eq->run();
    struct Router : vm::PageEventListener
    {
        ExecEngine *exec;
        void
        onPrefetchEvicted(Pid p, Vpn v, vm::Origin o, Tick) override
        {
            if (o == prefetch::origin::hopp)
                exec->onEvicted(p, v);
        }
    } router;
    router.exec = exec.get();
    vms->addListener(&router);
    // Stream fresh pages so page 0 (injected, never touched) evicts.
    Tick now = eq->now();
    for (std::uint64_t v = 100; v < 130; ++v)
        now += touch(Vpn{v}, now);
    EXPECT_EQ(exec->tierStats(Tier::Ssp).evictedUnused, 1u);
    EXPECT_EQ(exec->outstanding(), 0u);
}
