/**
 * @file
 * Unit tests for cgroup charge accounting, LRU list maintenance, and
 * the page-table container.
 */

#include <gtest/gtest.h>

#include "vm/cgroup.hh"
#include "vm/page_table.hh"

using namespace hopp;
using namespace hopp::vm;

TEST(Cgroup, ChargeUnchargeTracksCount)
{
    Cgroup cg(Pid{1}, 4);
    EXPECT_EQ(cg.charged(), 0u);
    cg.charge();
    cg.charge();
    EXPECT_EQ(cg.charged(), 2u);
    EXPECT_FALSE(cg.atLimit());
    cg.charge();
    cg.charge();
    EXPECT_TRUE(cg.atLimit());
    cg.uncharge();
    EXPECT_FALSE(cg.atLimit());
}

TEST(CgroupDeath, ChargeBeyondLimitPanics)
{
    Cgroup cg(Pid{1}, 1);
    cg.charge();
    EXPECT_DEATH(cg.charge(), "beyond");
}

TEST(CgroupDeath, UnchargeBelowZeroPanics)
{
    Cgroup cg(Pid{1}, 1);
    EXPECT_DEATH(cg.uncharge(), "below zero");
}

TEST(Cgroup, LruInsertVictimOrder)
{
    Cgroup cg(Pid{1}, 8);
    PageInfo a, b, c;
    cg.lruInsert(pageKey(Pid{1}, Vpn{10}), a);
    cg.lruInsert(pageKey(Pid{1}, Vpn{11}), b);
    cg.lruInsert(pageKey(Pid{1}, Vpn{12}), c);
    EXPECT_EQ(cg.lruSize(), 3u);
    EXPECT_EQ(cg.lruVictim(), pageKey(Pid{1}, Vpn{10})); // oldest
}

TEST(Cgroup, LruRotateMovesToMru)
{
    Cgroup cg(Pid{1}, 8);
    PageInfo a, b;
    cg.lruInsert(pageKey(Pid{1}, Vpn{10}), a);
    cg.lruInsert(pageKey(Pid{1}, Vpn{11}), b);
    cg.lruRotate(a); // 10 becomes MRU
    EXPECT_EQ(cg.lruVictim(), pageKey(Pid{1}, Vpn{11}));
}

TEST(Cgroup, LruRemoveClearsMembership)
{
    Cgroup cg(Pid{1}, 8);
    PageInfo a, b;
    cg.lruInsert(pageKey(Pid{1}, Vpn{10}), a);
    cg.lruInsert(pageKey(Pid{1}, Vpn{11}), b);
    cg.lruRemove(a);
    EXPECT_FALSE(a.inLru);
    EXPECT_EQ(cg.lruSize(), 1u);
    EXPECT_EQ(cg.lruVictim(), pageKey(Pid{1}, Vpn{11}));
}

TEST(CgroupDeath, DoubleInsertPanics)
{
    Cgroup cg(Pid{1}, 8);
    PageInfo a;
    cg.lruInsert(pageKey(Pid{1}, Vpn{10}), a);
    EXPECT_DEATH(cg.lruInsert(pageKey(Pid{1}, Vpn{10}), a), "already");
}

TEST(PageKey, RoundTripsPidAndVpn)
{
    std::uint64_t k = pageKey(Pid{0xBEEF}, Vpn{0xABCDEF123456ull});
    EXPECT_EQ(keyPid(k), Pid{0xBEEF});
    EXPECT_EQ(keyVpn(k), Vpn{0xABCDEF123456ull});
}

TEST(PageTable, GetCreatesUntouched)
{
    PageTable pt;
    PageInfo &pi = pt.get(Pid{1}, Vpn{42});
    EXPECT_EQ(pi.state, PageState::Untouched);
    EXPECT_EQ(pt.size(), 1u);
    EXPECT_EQ(pt.find(Pid{1}, Vpn{42}), &pi);
    EXPECT_EQ(pt.find(Pid{1}, Vpn{43}), nullptr);
}

TEST(PageTable, PresentOnlyForResident)
{
    PageTable pt;
    PageInfo &pi = pt.get(Pid{1}, Vpn{42});
    EXPECT_FALSE(pt.present(Pid{1}, Vpn{42}));
    pi.state = PageState::Resident;
    EXPECT_TRUE(pt.present(Pid{1}, Vpn{42}));
    pi.state = PageState::SwapCached;
    EXPECT_FALSE(pt.present(Pid{1}, Vpn{42}));
}

TEST(PageTable, ForEachPresentVisitsOnlyMapped)
{
    PageTable pt;
    pt.get(Pid{1}, Vpn{1}).state = PageState::Resident;
    pt.get(Pid{1}, Vpn{2}).state = PageState::Swapped;
    pt.get(Pid{2}, Vpn{3}).state = PageState::Resident;
    int visits = 0;
    pt.forEachPresent([&](Pid pid, Vpn vpn, const PageInfo &) {
        ++visits;
        EXPECT_TRUE((pid == Pid{1} && vpn == Vpn{1}) ||
                    (pid == Pid{2} && vpn == Vpn{3}));
    });
    EXPECT_EQ(visits, 2);
}

TEST(PageTable, CountStateTallies)
{
    PageTable pt;
    pt.get(Pid{1}, Vpn{1}).state = PageState::Resident;
    pt.get(Pid{1}, Vpn{2}).state = PageState::Resident;
    pt.get(Pid{1}, Vpn{3}).state = PageState::Swapped;
    EXPECT_EQ(pt.countState(PageState::Resident), 2u);
    EXPECT_EQ(pt.countState(PageState::Swapped), 1u);
    EXPECT_EQ(pt.countState(PageState::Untouched), 0u);
}
