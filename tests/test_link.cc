/**
 * @file
 * Unit tests for the RDMA link and fabric models: serialization,
 * queueing, base latency, and async completion scheduling.
 */

#include <gtest/gtest.h>

#include "net/link.hh"
#include "net/rdma.hh"

using namespace hopp;
using namespace hopp::net;

TEST(Link, UncontendedPageTransferIsAboutFourMicroseconds)
{
    // Paper §II-A step 4: a 4 KB page over 56 Gbps RDMA ~ 4 us.
    Link link(LinkConfig{});
    Tick done = link.transfer(pageBytes, Tick{});
    // 585 ns serialization + 150 ns issue overhead + 3.4 us latency.
    EXPECT_NEAR(static_cast<double>(done.raw()), 4135.0, 150.0);
}

TEST(Link, SerializationScalesWithBytes)
{
    LinkConfig cfg;
    cfg.gbps = 8.0; // 1 byte per ns
    Link link(cfg);
    EXPECT_EQ(link.serializationDelay(1000), 1000u);
    EXPECT_EQ(link.serializationDelay(0), 0u);
}

TEST(Link, BackToBackTransfersQueueFifo)
{
    LinkConfig cfg;
    cfg.gbps = 8.0;
    cfg.baseLatency = 100;
    cfg.perTransferOverhead = 0;
    Link link(cfg);
    Tick first = link.transfer(1000, Tick{});  // ser 1000 + 100
    Tick second = link.transfer(1000, Tick{}); // starts at 1000
    EXPECT_EQ(first, Tick{1100});
    EXPECT_EQ(second, Tick{2100});
    EXPECT_EQ(link.busyUntil(), Tick{2000});
}

TEST(Link, IdleLinkDoesNotQueue)
{
    LinkConfig cfg;
    cfg.gbps = 8.0;
    cfg.baseLatency = 0;
    cfg.perTransferOverhead = 0;
    Link link(cfg);
    link.transfer(1000, Tick{});
    Tick done = link.transfer(1000, Tick{5000}); // link idle again
    EXPECT_EQ(done, Tick{6000});
    EXPECT_DOUBLE_EQ(link.queueDelay().max(), 0.0);
}

TEST(Link, TracksBytesAndTransferCounts)
{
    Link link(LinkConfig{});
    link.transfer(100, Tick{});
    link.transfer(200, Tick{});
    EXPECT_EQ(link.bytesSent(), 300u);
    EXPECT_EQ(link.transfers(), 2u);
}

TEST(RdmaFabric, ReadAndWriteUseIndependentLinks)
{
    sim::EventQueue eq;
    LinkConfig cfg;
    cfg.gbps = 8.0;
    cfg.baseLatency = 0;
    cfg.perTransferOverhead = 0;
    RdmaFabric fabric(eq, cfg);
    Tick r = fabric.read(1000, Tick{});
    Tick w = fabric.write(1000, Tick{});
    // No cross-direction contention: both complete at 1000.
    EXPECT_EQ(r, Tick{1000});
    EXPECT_EQ(w, Tick{1000});
}

TEST(RdmaFabric, AsyncReadFiresCompletionAtTheRightTick)
{
    sim::EventQueue eq;
    LinkConfig cfg;
    cfg.gbps = 8.0;
    cfg.baseLatency = 50;
    cfg.perTransferOverhead = 0;
    RdmaFabric fabric(eq, cfg);
    Tick seen;
    Tick predicted =
        fabric.readAsync(1000, Tick{}, [&](Tick t) { seen = t; });
    EXPECT_EQ(predicted, Tick{1050});
    eq.run();
    EXPECT_EQ(seen, Tick{1050});
    EXPECT_EQ(eq.now(), Tick{1050});
}

TEST(RdmaFabric, ConcurrentReadsContend)
{
    sim::EventQueue eq;
    LinkConfig cfg;
    cfg.gbps = 8.0;
    cfg.baseLatency = 0;
    cfg.perTransferOverhead = 0;
    RdmaFabric fabric(eq, cfg);
    std::vector<Tick> completions;
    for (int i = 0; i < 4; ++i)
        fabric.readAsync(1000, Tick{},
                         [&](Tick t) { completions.push_back(t); });
    eq.run();
    ASSERT_EQ(completions.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(completions[i], Tick{1000ull * (i + 1)});
}
