/**
 * @file
 * End-to-end machine tests: every system runs every (tiny) workload to
 * completion; the qualitative ordering the paper reports holds on the
 * pattern-friendly workloads; multi-application runs isolate cgroups.
 */

#include <gtest/gtest.h>

#include "runner/machine.hh"

using namespace hopp;
using namespace hopp::runner;
using hopp::workloads::WorkloadScale;

namespace
{

WorkloadScale
tiny()
{
    WorkloadScale s;
    s.footprint = 0.08;
    s.iterations = 0.3;
    return s;
}

} // namespace

TEST(Machine, AllSystemsCompleteKmeans)
{
    for (auto sys : {SystemKind::Local, SystemKind::NoPrefetch,
                     SystemKind::Fastswap, SystemKind::Leap,
                     SystemKind::Vma, SystemKind::DepthN,
                     SystemKind::Hopp, SystemKind::HoppOnly}) {
        auto r = runOne("kmeans-omp", sys, 0.5, tiny());
        EXPECT_GT(r.makespan, Tick{}) << systemName(sys);
        EXPECT_GT(r.vms.accesses, 1000u) << systemName(sys);
        ASSERT_EQ(r.apps.size(), 1u);
        EXPECT_EQ(r.apps[0].completion, r.makespan);
    }
}

TEST(Machine, AccessCountIndependentOfSystem)
{
    auto a = runOne("quicksort", SystemKind::Local, 0.5, tiny());
    auto b = runOne("quicksort", SystemKind::Hopp, 0.5, tiny());
    EXPECT_EQ(a.vms.accesses, b.vms.accesses)
        << "the system must not change the executed workload";
}

TEST(Machine, LocalIsFastestAndFaultsAreCold)
{
    auto local = runOne("kmeans-omp", SystemKind::Local, 0.5, tiny());
    EXPECT_EQ(local.vms.remoteFaults, 0u);
    EXPECT_EQ(local.demandRemote, 0u);
    auto fs = runOne("kmeans-omp", SystemKind::Fastswap, 0.5, tiny());
    EXPECT_LT(local.makespan, fs.makespan);
}

TEST(Machine, PrefetchingBeatsNoPrefetchOnStreams)
{
    auto none =
        runOne("kmeans-omp", SystemKind::NoPrefetch, 0.5, tiny());
    auto fs = runOne("kmeans-omp", SystemKind::Fastswap, 0.5, tiny());
    EXPECT_LT(fs.makespan, none.makespan);
    EXPECT_GT(fs.coverage, 0.5);
}

TEST(Machine, HoppBeatsFastswapOnStreams)
{
    auto fs = runOne("kmeans-omp", SystemKind::Fastswap, 0.5, tiny());
    auto hp = runOne("kmeans-omp", SystemKind::Hopp, 0.5, tiny());
    EXPECT_LT(hp.makespan, fs.makespan);
    EXPECT_GT(hp.dramHitCoverage, 0.3);
    EXPECT_LT(hp.vms.faults(), fs.vms.faults());
}

TEST(Machine, HoppAccuracyAndCoverageHighOnSimpleStreams)
{
    // At this tiny scale end-of-region overshoot weighs more than in
    // the full-size benches (which assert the paper's > 0.9).
    auto hp = runOne("kmeans-omp", SystemKind::Hopp, 0.5, tiny());
    EXPECT_GT(hp.accuracy, 0.8);
    EXPECT_GT(hp.coverage, 0.85);
}

TEST(Machine, TighterMemoryHurtsEveryone)
{
    auto half = runOne("quicksort", SystemKind::Fastswap, 0.5, tiny());
    auto quarter =
        runOne("quicksort", SystemKind::Fastswap, 0.25, tiny());
    EXPECT_GT(quarter.makespan, half.makespan);
}

TEST(Machine, MultiAppRunsIsolateCgroups)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("kmeans-omp", tiny(), 1));
    m.addWorkload(workloads::makeWorkload("quicksort", tiny(), 2));
    auto r = m.run();
    ASSERT_EQ(r.apps.size(), 2u);
    EXPECT_EQ(r.apps[0].name, "kmeans-omp");
    EXPECT_EQ(r.apps[1].name, "quicksort");
    EXPECT_GT(r.completionOf("kmeans-omp"), Tick{});
    EXPECT_GT(r.completionOf("quicksort"), Tick{});
    // Both cgroups stayed within their limits.
    EXPECT_LE(m.vms().cgroup(Pid{1}).charged(),
              m.vms().cgroup(Pid{1}).limit());
    EXPECT_LE(m.vms().cgroup(Pid{2}).charged(),
              m.vms().cgroup(Pid{2}).limit());
}

TEST(Machine, HoppSystemExposedOnlyForHoppKinds)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Fastswap;
    Machine m1(cfg);
    m1.addWorkload(workloads::makeWorkload("hpl", tiny()));
    m1.run();
    EXPECT_EQ(m1.hoppSystem(), nullptr);

    cfg.system = SystemKind::HoppOnly;
    Machine m2(cfg);
    m2.addWorkload(workloads::makeWorkload("hpl", tiny()));
    m2.run();
    ASSERT_NE(m2.hoppSystem(), nullptr);
    EXPECT_GT(m2.hoppSystem()->hpd().stats().reads, 0u);
}

TEST(Machine, NormalizedPerformanceHelper)
{
    EXPECT_DOUBLE_EQ(normalizedPerformance(Tick{50}, Tick{100}), 0.5);
    EXPECT_DOUBLE_EQ(normalizedPerformance(Tick{100}, Tick{100}), 1.0);
}

TEST(Machine, CompletionOfUnknownAppDies)
{
    auto r = runOne("hpl", SystemKind::Local, 0.5, tiny());
    EXPECT_DEATH((void)r.completionOf("nope"), "no app named");
}

TEST(Machine, DeterministicAcrossRuns)
{
    auto a = runOne("npb-mg", SystemKind::Hopp, 0.5, tiny());
    auto b = runOne("npb-mg", SystemKind::Hopp, 0.5, tiny());
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.vms.faults(), b.vms.faults());
    EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(Machine, CounterConservationAcrossTlbAndBatchModes)
{
    // Every access resolves to exactly one LLC hit or miss, and the
    // fault classes can never outnumber the accesses — with the TLB
    // and the batched pump in any combination. All four combinations
    // must also agree on every counter (the host-side fast paths are
    // accelerators, not models).
    std::vector<vm::VmsStats> runs;
    std::vector<Tick> makespans;
    for (bool tlb : {true, false}) {
        for (bool batch : {true, false}) {
            MachineConfig base;
            base.tlb = tlb;
            base.batch = batch;
            auto r =
                runOne("kmeans-omp", SystemKind::Hopp, 0.5, tiny(), base);
            const vm::VmsStats &v = r.vms;
            EXPECT_EQ(v.accesses, v.llcHits + v.llcMisses)
                << "tlb=" << tlb << " batch=" << batch;
            EXPECT_LE(v.faults(), v.accesses)
                << "tlb=" << tlb << " batch=" << batch;
            EXPECT_GT(v.accesses, 0u);
            runs.push_back(v);
            makespans.push_back(r.makespan);
        }
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
        EXPECT_EQ(runs[0].accesses, runs[i].accesses) << "combo " << i;
        EXPECT_EQ(runs[0].llcHits, runs[i].llcHits) << "combo " << i;
        EXPECT_EQ(runs[0].llcMisses, runs[i].llcMisses) << "combo " << i;
        EXPECT_EQ(runs[0].coldFaults, runs[i].coldFaults)
            << "combo " << i;
        EXPECT_EQ(runs[0].remoteFaults, runs[i].remoteFaults)
            << "combo " << i;
        EXPECT_EQ(runs[0].swapCacheHits, runs[i].swapCacheHits)
            << "combo " << i;
        EXPECT_EQ(runs[0].inflightWaits, runs[i].inflightWaits)
            << "combo " << i;
        EXPECT_EQ(runs[0].injectedHits, runs[i].injectedHits)
            << "combo " << i;
        EXPECT_EQ(runs[0].evictions, runs[i].evictions) << "combo " << i;
        EXPECT_EQ(runs[0].writebacks, runs[i].writebacks)
            << "combo " << i;
        EXPECT_EQ(makespans[0], makespans[i]) << "combo " << i;
    }
}

TEST(Machine, ManyWorkloadsRescheduleSafely)
{
    // Regression for the step() self-reschedule: with many workloads
    // the threads_ container grows well past its initial capacity
    // while step closures for early threads are already in flight;
    // index capture must survive that (a Thread& capture relied on
    // pointer stability of the container's elements).
    WorkloadScale s;
    s.footprint = 0.05;
    s.iterations = 0.1;
    MachineConfig cfg;
    cfg.system = SystemKind::Fastswap;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    constexpr int apps = 12; // every configured workload name, plus
                             // repeats: the densest supported machine
    const char *names[] = {"microbench", "linkedlist", "kmeans-omp",
                           "quicksort",  "hpl",        "npb-cg"};
    for (int i = 0; i < apps; ++i)
        m.addWorkload(workloads::makeWorkload(names[i % 6], s));
    auto r = m.run();
    ASSERT_EQ(r.apps.size(), static_cast<std::size_t>(apps));
    for (const auto &a : r.apps) {
        EXPECT_GT(a.accesses, 0u) << a.name;
        EXPECT_GT(a.completion, Tick{}) << a.name;
    }
    EXPECT_EQ(r.vms.accesses, r.vms.llcHits + r.vms.llcMisses);
}
