/**
 * @file
 * Tests for the runtime invariant checker (src/check): every validator
 * passes on a healthy machine and, crucially, each one detects the
 * specific corruption it exists to catch — a non-monotonic event, a bad
 * LRU link, a leaked LLC line, broken charge accounting, a lost RPT
 * mapping.
 */

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "check/invariants.hh"
#include "mem/llc.hh"
#include "net/rdma.hh"
#include "remote/swap_backend.hh"
#include "runner/machine.hh"
#include "sim/event_queue.hh"
#include "vm/vms.hh"

using namespace hopp;
using namespace hopp::check;
using namespace hopp::runner;

namespace
{

workloads::WorkloadScale
tiny()
{
    workloads::WorkloadScale s;
    s.footprint = 0.08;
    s.iterations = 0.3;
    return s;
}

/** A small VMS rig mirroring the test_vms fixture. */
class InvariantVmsTest : public ::testing::Test
{
  protected:
    static constexpr Pid pid{1};

    InvariantVmsTest()
    {
        vm::VmsConfig cfg;
        cfg.kswapdEnabled = false;
        eq = std::make_unique<sim::EventQueue>();
        dram = std::make_unique<mem::Dram>(64);
        mc = std::make_unique<mem::MemCtrl>(*dram);
        mem::LlcConfig lcfg;
        lcfg.capacityBytes = 64 << 10;
        llc = std::make_unique<mem::Llc>(lcfg);
        fabric =
            std::make_unique<net::RdmaFabric>(*eq, net::LinkConfig{});
        node = std::make_unique<remote::RemoteNode>(1 << 16);
        backend = std::make_unique<remote::SwapBackend>(*fabric, *node);
        vms = std::make_unique<vm::Vms>(*eq, *dram, *mc, *llc, *backend,
                                        cfg);
        vms->createProcess(pid, 8);
    }

    /** Touch pages [0, n); with limit 8 this also exercises reclaim. */
    void
    fill(std::uint64_t n)
    {
        Tick t{};
        for (std::uint64_t v = 0; v < n; ++v)
            t += vms->access(pid, pageBase(Vpn{v}), v % 3 == 0, t);
        eq->run();
    }

    Report
    validate()
    {
        Report r;
        validateVms(*vms, r);
        return r;
    }

    std::unique_ptr<sim::EventQueue> eq;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::MemCtrl> mc;
    std::unique_ptr<mem::Llc> llc;
    std::unique_ptr<net::RdmaFabric> fabric;
    std::unique_ptr<remote::RemoteNode> node;
    std::unique_ptr<remote::SwapBackend> backend;
    std::unique_ptr<vm::Vms> vms;
};

TEST(InvariantEventQueue, CleanQueuePasses)
{
    sim::EventQueue eq;
    eq.schedule(Tick{10}, [] {});
    eq.schedule(Tick{10}, [] {});
    eq.schedule(Tick{25}, [] {});
    EventQueueWatch w;
    Report r;
    validateEventQueue(eq, w, r);
    EXPECT_TRUE(r.ok()) << r.summary();

    eq.run();
    validateEventQueue(eq, w, r);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_EQ(w.lastExecuted, 3u);
}

TEST(InvariantEventQueue, DetectsEventScheduledInThePast)
{
    sim::EventQueue eq;
    eq.schedule(Tick{100}, [] {});
    eq.runOne(); // now() == 100
    hopp::check::testing::pushEventInPast(eq, Tick{40});

    EventQueueWatch w;
    Report r;
    validateEventQueue(eq, w, r);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.mentions("non-monotonic")) << r.summary();
}

TEST(InvariantEventQueue, DetectsTimeMovingBackwards)
{
    // Two queues observed through one watch model a rewound clock.
    sim::EventQueue ran;
    ran.schedule(Tick{500}, [] {});
    ran.runOne();
    EventQueueWatch w;
    Report r;
    validateEventQueue(ran, w, r);
    ASSERT_TRUE(r.ok()) << r.summary();

    sim::EventQueue fresh;
    validateEventQueue(fresh, w, r);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.mentions("backwards")) << r.summary();
}

TEST(InvariantLlc, DetectsLeakedOccupancy)
{
    mem::LlcConfig cfg;
    cfg.capacityBytes = 64 << 10;
    mem::Llc llc(cfg);
    for (std::uint64_t pa = 0; pa < 256 * 64; pa += 64)
        llc.access(PhysAddr{pa});

    Report clean;
    validateLlc(llc, clean);
    EXPECT_TRUE(clean.ok()) << clean.summary();

    hopp::check::testing::leakLlcOccupancy(llc);
    Report r;
    validateLlc(llc, r);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.mentions("occupancy accounting leaked"))
        << r.summary();
}

TEST_F(InvariantVmsTest, HealthyVmsPasses)
{
    // More pages than the cgroup limit: faults, reclaim, writebacks.
    fill(24);
    Report r = validate();
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST_F(InvariantVmsTest, HealthyVmsWithPrefetchesPasses)
{
    fill(24);
    // One swapcache prefetch and one injected prefetch, completed.
    ASSERT_TRUE(vms->prefetchToSwapCache(pid, Vpn{0}, 1, eq->now()));
    EXPECT_NE(vms->prefetchInject(pid, Vpn{1}, 1, eq->now()),
              vm::Vms::InjectResult::NotIssued);
    eq->run();
    Report r = validate();
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST_F(InvariantVmsTest, DetectsBadLruLink)
{
    fill(6);
    vm::PageInfo &a = vms->pageTable().get(pid, Vpn{0});
    vm::PageInfo &b = vms->pageTable().get(pid, Vpn{1});
    ASSERT_TRUE(a.inLru);
    ASSERT_TRUE(b.inLru);
    std::swap(a.lruIt, b.lruIt);

    Report r = validate();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.mentions("bad LRU link")) << r.summary();
}

TEST_F(InvariantVmsTest, DetectsUnlinkedResidentPage)
{
    fill(6);
    vm::PageInfo &pi = vms->pageTable().get(pid, Vpn{2});
    ASSERT_TRUE(pi.inLru);
    pi.inLru = false; // page claims to be off-list; the list disagrees

    Report r = validate();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.mentions("inLru flag is clear")) << r.summary();
}

TEST_F(InvariantVmsTest, DetectsChargeAccountingDrift)
{
    fill(6);
    vm::PageInfo &pi = vms->pageTable().get(pid, Vpn{3});
    ASSERT_TRUE(pi.charged);
    pi.charged = false; // counter now overstates by one

    Report r = validate();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.mentions("not charged")) << r.summary();
    EXPECT_TRUE(r.mentions("charge counter")) << r.summary();
}

TEST_F(InvariantVmsTest, DetectsIllegalStateFlagCombination)
{
    fill(6);
    vm::PageInfo &pi = vms->pageTable().get(pid, Vpn{4});
    ASSERT_EQ(pi.state, vm::PageState::Resident);
    pi.state = vm::PageState::SwapCached; // still charged: illegal

    Report r = validate();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.mentions("must not be charged")) << r.summary();
}

TEST_F(InvariantVmsTest, DetectsFrameAccountingDrift)
{
    fill(6);
    vm::PageInfo &pi = vms->pageTable().get(pid, Vpn{5});
    ASSERT_EQ(pi.state, vm::PageState::Resident);
    pi.ppn += 1000; // point at a frame the allocator never handed out

    Report r = validate();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.mentions("never handed out")) << r.summary();
}

TEST(InvariantMachine, CleanRunPassesWithPeriodicChecks)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Fastswap;
    cfg.localMemRatio = 0.5;
    cfg.checkInterval = 500; // validate often
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("quicksort", tiny()));
    RunResult r = m.run(); // enforce() panics if any validator trips
    EXPECT_GT(r.makespan, Tick{});
    EXPECT_TRUE(m.checkInvariants().ok());
}

TEST(InvariantMachine, CleanHoppRunPassesWithPeriodicChecks)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Hopp;
    cfg.localMemRatio = 0.5;
    cfg.checkInterval = 500;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("kmeans-omp", tiny()));
    RunResult r = m.run();
    EXPECT_GT(r.makespan, Tick{});
    EXPECT_TRUE(m.checkInvariants().ok());
}

TEST(InvariantMachine, DetectsRptMappingLoss)
{
    MachineConfig cfg;
    cfg.system = SystemKind::HoppOnly;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("microbench", tiny()));
    m.run();
    ASSERT_TRUE(m.checkInvariants().ok());

    // Remap a resident frame in both the DRAM RPT and every RPT cache
    // to a different process: the PTE <-> RPT cross-check must notice.
    Vpn vpn;
    bool found = false;
    Ppn ppn;
    m.vms().pageTable().forEachPresent(
        [&](Pid, Vpn v, const vm::PageInfo &pi) {
            if (found)
                return;
            found = true;
            vpn = v;
            ppn = pi.ppn;
        });
    ASSERT_TRUE(found);
    core::HoppSystem &hopp = *m.hoppSystem();
    core::RptEntry bogus;
    bogus.pid = Pid{999};
    bogus.vpn = vpn + 12345;
    for (unsigned c = 0; c < hopp.config().channels; ++c)
        hopp.rptCache(c).update(ppn, bogus);

    Report r = m.checkInvariants();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.mentions("rpt")) << r.summary();
}

TEST(InvariantMachine, EnforceAbortsOnViolation)
{
    MachineConfig cfg;
    cfg.system = SystemKind::Fastswap;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("quicksort", tiny()));
    m.run();
    vm::PageInfo *victim = nullptr;
    m.vms().pageTable().forEachPresent(
        [&](Pid p, Vpn v, const vm::PageInfo &) {
            if (!victim)
                victim = m.vms().pageTable().find(p, v);
        });
    ASSERT_NE(victim, nullptr);
    victim->charged = !victim->charged;
    EXPECT_DEATH(m.checkInvariants().enforce(), "invariant violation");
}

} // namespace
