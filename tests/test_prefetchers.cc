/**
 * @file
 * Unit tests for the baseline prefetchers: Fastswap readahead (swap
 * offsets), VMA readahead (virtual addresses), Leap (majority stride,
 * adaptive depth), Depth-N (fixed injection), and the PrefetchStats
 * metric accounting.
 */

#include <gtest/gtest.h>

#include "prefetch/depthn.hh"
#include "prefetch/leap.hh"
#include "prefetch/readahead.hh"
#include "prefetch/stats.hh"
#include "prefetch/vma.hh"
#include "vm/vms.hh"

using namespace hopp;
using namespace hopp::prefetch;
using vm::FaultContext;
using vm::FaultKind;

namespace
{

class PrefetcherTest : public ::testing::Test
{
  public:
    static constexpr Pid pid{1};

    PrefetcherTest()
    {
        vm::VmsConfig vcfg;
        vcfg.kswapdEnabled = false;
        eq = std::make_unique<sim::EventQueue>();
        dram = std::make_unique<mem::Dram>(512);
        mc = std::make_unique<mem::MemCtrl>(*dram);
        llc = std::make_unique<mem::Llc>(mem::LlcConfig{64 << 10, 4});
        fabric =
            std::make_unique<net::RdmaFabric>(*eq, net::LinkConfig{});
        node = std::make_unique<remote::RemoteNode>(1 << 16);
        backend = std::make_unique<remote::SwapBackend>(*fabric, *node);
        vms = std::make_unique<vm::Vms>(*eq, *dram, *mc, *llc, *backend,
                                        vcfg);
        vms->addListener(&pstats);
        vms->createProcess(pid, 32);
    }

    Duration
    touch(Vpn v, Tick t)
    {
        Duration c = vms->access(pid, pageBase(v), false, t);
        eq->runUntil(t + c);
        return c;
    }

    /** Touch pages [0, n) to populate, spilling the early ones. */
    Tick
    fill(std::uint64_t n)
    {
        Tick t{};
        for (std::uint64_t v = 0; v < n; ++v)
            t += touch(Vpn{v}, t);
        return t;
    }

    std::unique_ptr<sim::EventQueue> eq;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::MemCtrl> mc;
    std::unique_ptr<mem::Llc> llc;
    std::unique_ptr<net::RdmaFabric> fabric;
    std::unique_ptr<remote::RemoteNode> node;
    std::unique_ptr<remote::SwapBackend> backend;
    std::unique_ptr<vm::Vms> vms;
    PrefetchStats pstats;
};

} // namespace

TEST_F(PrefetcherTest, ReadaheadFetchesSwapOffsetNeighbors)
{
    Readahead ra(*vms, *backend);
    vms->setFaultCallback([&](const FaultContext &c) { ra.onFault(c); });
    // Pages 0..63 cold-fill a 32-frame cgroup: 0..31 get evicted in
    // LRU order, so their swap slots are consecutive.
    Tick t = fill(64);
    // Fault on page 10: neighbors by slot are pages ~6..14.
    t += touch(Vpn{10}, t);
    eq->run();
    unsigned cached = 0;
    for (std::uint64_t v = 5; v <= 15; ++v) {
        auto *pi = vms->pageTable().find(pid, Vpn{v});
        cached += pi && pi->state == vm::PageState::SwapCached;
    }
    EXPECT_GE(cached, 6u);
    EXPECT_EQ(pstats.forOrigin(origin::readahead).completed, cached);
}

TEST_F(PrefetcherTest, VmaFetchesVirtualNeighborsRegardlessOfSlots)
{
    VmaPrefetcher vp(*vms);
    vms->setFaultCallback([&](const FaultContext &c) { vp.onFault(c); });
    Tick t = fill(64);
    t += touch(Vpn{20}, t);
    eq->run();
    for (std::uint64_t v : {18u, 19u, 21u, 22u}) {
        auto *pi = vms->pageTable().find(pid, Vpn{v});
        ASSERT_NE(pi, nullptr);
        EXPECT_TRUE(pi->state == vm::PageState::SwapCached ||
                    pi->state == vm::PageState::Resident)
            << "vpn " << v;
    }
}

TEST_F(PrefetcherTest, DepthNInjectsPtes)
{
    DepthN dn(*vms, 8);
    vms->setFaultCallback([&](const FaultContext &c) { dn.onFault(c); });
    Tick t = fill(64);
    t += touch(Vpn{5}, t);
    eq->run();
    unsigned injected = 0;
    for (std::uint64_t v = 6; v <= 13; ++v) {
        auto *pi = vms->pageTable().find(pid, Vpn{v});
        injected += pi && pi->state == vm::PageState::Resident &&
                    pi->injected;
    }
    EXPECT_GE(injected, 6u);
    EXPECT_EQ(dn.name(), "depth-8");
}

TEST_F(PrefetcherTest, LeapDetectsStrideAcrossFaults)
{
    LeapConfig cfg;
    Leap leap(*vms, cfg);
    vms->setFaultCallback(
        [&](const FaultContext &c) { leap.onFault(c); });
    vms->addListener(&leap);
    Tick t = fill(128);
    // Fault with stride 2: 0, 2, 4, 6, 8 ...
    for (std::uint64_t v = 0; v <= 16; v += 2)
        t += touch(Vpn{v}, t);
    EXPECT_EQ(leap.detectStride(), 2);
    eq->run();
    // Pages ahead along stride 2 got prefetched.
    auto *pi = vms->pageTable().find(pid, Vpn{18});
    ASSERT_NE(pi, nullptr);
    EXPECT_TRUE(pi->state == vm::PageState::SwapCached ||
                pi->inflight || pi->state == vm::PageState::Resident);
}

TEST_F(PrefetcherTest, LeapFindsNoStrideInRandomFaults)
{
    Leap leap(*vms);
    Vpn seq[] = {Vpn{3},   Vpn{99}, Vpn{41}, Vpn{7},  Vpn{250},
                 Vpn{18}, Vpn{160}, Vpn{77}, Vpn{5},  Vpn{210}};
    Tick t = fill(256);
    vms->setFaultCallback(
        [&](const FaultContext &c) { leap.onFault(c); });
    for (Vpn v : seq)
        t += touch(v, t);
    EXPECT_EQ(leap.detectStride(), 0);
    eq->run();
}

TEST_F(PrefetcherTest, LeapDepthGrowsOnHits)
{
    LeapConfig cfg;
    cfg.epochFaults = 8;
    cfg.initialDepth = 2;
    Leap leap(*vms, cfg);
    vms->setFaultCallback(
        [&](const FaultContext &c) { leap.onFault(c); });
    vms->addListener(&leap);
    Tick t = fill(128);
    unsigned start_depth = leap.depth();
    // Long sequential fault stream: hits accumulate, depth grows.
    for (std::uint64_t v = 0; v < 96; ++v)
        t += touch(Vpn{v}, t);
    eq->run();
    EXPECT_GT(leap.depth(), start_depth);
}

TEST_F(PrefetcherTest, StatsComputeAccuracyAndCoverage)
{
    // Hand-drive the listener: 4 completed, 3 hits, 2 demand misses.
    PrefetchStats s;
    for (std::uint64_t i = 0; i < 4; ++i)
        s.onPrefetchCompleted(Pid{1}, Vpn{i}, 2, Tick{}, false);
    s.onPrefetchHit(Pid{1}, Vpn{0}, 2, Tick{100}, Tick{200}, false);
    s.onPrefetchHit(Pid{1}, Vpn{1}, 2, Tick{100}, Tick{300}, true);
    s.onPrefetchHit(Pid{1}, Vpn{2}, 2, Tick{400}, Tick{350},
                    true); // late hit
    s.onDemandRemote(Pid{1}, Vpn{9}, Tick{});
    s.onDemandRemote(Pid{1}, Vpn{10}, Tick{});
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.75);
    EXPECT_DOUBLE_EQ(s.coverage(), 3.0 / 5.0);
    EXPECT_DOUBLE_EQ(s.dramHitCoverage(), 2.0 / 5.0);
    EXPECT_EQ(s.forOrigin(2).lateHits, 1u);
    EXPECT_EQ(s.forOrigin(2).timeliness.count(), 2u);
}

TEST_F(PrefetcherTest, StatsSeparateOrigins)
{
    PrefetchStats s;
    s.onPrefetchCompleted(Pid{1}, Vpn{0}, origin::readahead, Tick{},
                          false);
    s.onPrefetchCompleted(Pid{1}, Vpn{1}, origin::hopp, Tick{}, true);
    s.onPrefetchHit(Pid{1}, Vpn{1}, origin::hopp, Tick{}, Tick{1},
                    true);
    EXPECT_DOUBLE_EQ(s.forOrigin(origin::hopp).accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(s.forOrigin(origin::readahead).accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.5);
}
