// hopp_lint self-test fixture: every line carrying an expect marker
// comment must produce exactly that diagnostic on that line. This
// file is never compiled.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <set>
#include <unordered_map>
#include <unordered_set>

struct Node;

struct Fixture
{
    std::unordered_map<int, long> counts_;
    std::unordered_set<unsigned> seen_;
    std::map<Node *, int> byNode_; // hopp-lint-expect(ptr-key)
    std::set<Node *> nodes_;       // hopp-lint-expect(ptr-key)

    void
    run()
    {
        std::srand(42);        // hopp-lint-expect(raw-rand)
        int x = std::rand();   // hopp-lint-expect(raw-rand)
        std::random_device rd; // hopp-lint-expect(random-device)
        auto wall =
            std::chrono::system_clock::now(); // hopp-lint-expect(wall-clock)
        auto mono =
            std::chrono::steady_clock::now(); // hopp-lint-expect(wall-clock)
        long stamp = time(nullptr); // hopp-lint-expect(wall-clock)
        long cpu = clock();         // hopp-lint-expect(wall-clock)

        for (const auto &kv : counts_) // hopp-lint-expect(unordered-iter)
            x += static_cast<int>(kv.second);

        for (auto it = seen_.begin(); // hopp-lint-expect(unordered-iter)
             it != seen_.end(); ++it)
            x += static_cast<int>(*it);

        (void)rd;
        (void)wall;
        (void)mono;
        (void)stamp;
        (void)cpu;
        (void)x;
    }

    unsigned long long
    typeDiscipline(Tick tick, unsigned long long addr)
    {
        auto vpn = addr >> pageShift;      // hopp-lint-expect(page-shift)
        auto base = vpn << pageShift;      // hopp-lint-expect(page-shift)
        return base + tick.raw();          // hopp-lint-expect(raw)
    }
};
