/**
 * @file
 * Lint fixture: the obs-chrono rule forbids wall-clock machinery in
 * any obs/ directory — flight-recorder timestamps must be simulator
 * ticks so recorded traces are byte-identical across runs. Every
 * violating line carries a hopp-lint-expect marker; the self-test
 * verifies the tool reports exactly these, and the plain-run ctest
 * asserts a nonzero exit.
 */

#include <chrono> // hopp-lint-expect(obs-chrono)

namespace hopp::obs
{

inline double
wallSeconds()
{
    using wall = std::chrono::steady_clock; // hopp-lint-expect(obs-chrono, wall-clock)
    auto since = wall::now().time_since_epoch();
    return std::chrono::duration<double>(since).count(); // hopp-lint-expect(obs-chrono)
}

} // namespace hopp::obs
