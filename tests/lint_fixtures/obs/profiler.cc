/**
 * @file
 * Lint fixture: the obs/profiler.* carve-out. This path is the one
 * sanctioned home for host wall-clock reads (the self-profiler times
 * the simulator itself), so the same tokens that fail everywhere else
 * — including elsewhere under obs/ — must pass clean here with no
 * allow comments at all.
 */

#include <chrono>
#include <cstdint>

namespace hopp::obs::prof
{

inline std::uint64_t
hostNowNs()
{
    using clock = std::chrono::steady_clock;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now().time_since_epoch())
            .count());
}

} // namespace hopp::obs::prof
