// hopp_lint self-test fixture: every hazard below carries a justified
// allowlist comment, so the file must lint clean (zero diagnostics and
// zero expect markers). This file is never compiled.

// Fixture-wide suppression: this hypothetical file wraps the host
// clock behind the trace-capture boundary, outside simulated time.
// hopp-lint: allow-file(wall-clock)

#include <chrono>
#include <cstdlib>
#include <unordered_map>

struct CleanFixture
{
    std::unordered_map<int, long> histogram_;

    long
    run()
    {
        // Order-insensitive reduction: summation commutes, so the
        // unspecified iteration order cannot leak into results.
        // hopp-lint: allow(unordered-iter)
        long sum = 0;
        for (const auto &kv : histogram_) // hopp-lint: allow(unordered-iter)
            sum += kv.second;

        // Interop shim for a third-party library that insists on
        // seeding the global RNG; never used for simulation state.
        std::srand(1); // hopp-lint: allow(raw-rand)

        // Covered by the allow-file(wall-clock) directive above.
        auto t0 = std::chrono::steady_clock::now();
        (void)t0;
        return sum;
    }

    unsigned long long
    serialize(Vpn vpn)
    {
        // Serialization boundary: the record layout is defined in raw
        // page numbers, so unwrapping here is the point.
        auto packed = vpn.raw(); // hopp-lint: allow(raw)
        // Wire format packs the page number into the address field.
        return packed << pageShift; // hopp-lint: allow(page-shift)
    }
};
