// hopp_lint self-test fixture (header): raw 64-bit integers whose
// names carry address/page/tick vocabulary must use the tagged types
// from common/types.hh. The raw-int-addr rule fires only in headers,
// which is where public signatures live. This file is never compiled.

#ifndef HOPP_LINT_FIXTURE_VIOLATIONS_TYPES_HH
#define HOPP_LINT_FIXTURE_VIOLATIONS_TYPES_HH

#include <cstdint>

struct TypeFixture
{
    std::uint64_t lookupPage(std::uint64_t vpn); // hopp-lint-expect(raw-int-addr)

    void schedule(std::uint64_t tick); // hopp-lint-expect(raw-int-addr)

    unsigned long long translate(unsigned long long fault_addr); // hopp-lint-expect(raw-int-addr)

    std::uint64_t pa_; // hopp-lint-expect(raw-int-addr)

    // Clean: counts and seeds are genuine integers, not address-space
    // values, so vocabulary matching must leave them alone.
    std::uint64_t footprintPages();
    void setSeed(std::uint64_t seed);
    std::uint64_t hotPages_ = 0;
};

#endif // HOPP_LINT_FIXTURE_VIOLATIONS_TYPES_HH
