// Bottom-layer utility: includable from everywhere.
#pragma once

namespace fixture
{

inline int
twice(int v)
{
    return v * 2;
}

} // namespace fixture
