// Interface header: lives in the top layer but is includable from any
// layer because it only depends on the bottom layer.
#pragma once

#include "base/util.hh"

namespace fixture
{

struct Note
{
    int value = 0;
};

} // namespace fixture
