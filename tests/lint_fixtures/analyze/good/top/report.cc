// A well-behaved stat factory: every member-backed stat is covered by
// the component's resetStats(), and a resetter is registered.
#include "mid/gadget.hh"

namespace fixture
{

stats::StatSet
gadgetStats(Gadget &g)
{
    stats::StatSet s("gadget");
    s.record("uses", static_cast<double>(g.uses()), "touches seen");
    s.addResetter([&g] { g.resetStats(); });
    return s;
}

} // namespace fixture
