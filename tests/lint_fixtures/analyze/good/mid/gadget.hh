// A well-behaved component: its counter is covered by resetStats().
#pragma once

#include "base/util.hh"
#include "top/note.hh"

namespace fixture
{

class Gadget
{
  public:
    void touch() { ++uses_; }
    unsigned long long uses() const { return uses_; }
    void resetStats() { uses_ = 0; }

  private:
    unsigned long long uses_ = 0;
};

} // namespace fixture
