// Seeded violation: an interface header must only include the bottom
// layer, otherwise it smuggles upper-layer dependencies everywhere.
#pragma once

#include "top/high.hh" // hopp-analyze-expect(interface-purity)

namespace fixture
{

struct Iface
{
    int tag = 0;
};

} // namespace fixture
