// Seeded violation: the bottom layer reaching into the top layer.
#pragma once

#include "top/high.hh" // hopp-analyze-expect(layer)

namespace fixture
{

struct Low
{
    High h;
};

} // namespace fixture
