// Seeded violations: a module absent from layers.conf, and a quote
// include that is not module-rooted.
#pragma once

#include "base/low.hh" // hopp-analyze-expect(undeclared-module)
#include "util.hh"     // hopp-analyze-expect(include-rooted)

namespace fixture
{

struct Rogue
{
    int x = 0;
};

} // namespace fixture
