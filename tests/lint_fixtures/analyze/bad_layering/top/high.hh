#pragma once

namespace fixture
{

struct High
{
    int level = 1;
};

} // namespace fixture
