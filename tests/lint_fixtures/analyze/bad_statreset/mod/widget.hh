// Seeded violation (used by report.cc): hits_ is a counter with no
// reset method covering it — the batchReads_ bug class.
#pragma once

namespace fixture
{

class Widget
{
  public:
    void touch() { ++hits_; }
    unsigned long long hits() const { return hits_; }

  private:
    unsigned long long hits_ = 0;
};

} // namespace fixture
