// Seeded violations for the stat-reset completeness pass.
#include "mod/gadget.hh"
#include "mod/widget.hh"

namespace fixture
{

stats::StatSet
widgetStats(Widget &w)
{
    stats::StatSet s("widget");
    s.record("hits", static_cast<double>(w.hits()), "touches"); // hopp-analyze-expect(stat-unreset)
    s.addResetter([&w] {});
    return s;
}

stats::StatSet
gadgetStats(Gadget &g)
{
    stats::StatSet s("gadget"); // hopp-analyze-expect(stat-no-resetter)
    s.record("count", static_cast<double>(g.count()), "bumps");
    return s;
}

} // namespace fixture
