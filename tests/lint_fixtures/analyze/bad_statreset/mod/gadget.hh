// Counter properly covered by resetStats(); the gap for this class is
// in the factory (no addResetter), not here.
#pragma once

namespace fixture
{

class Gadget
{
  public:
    void bump() { count_ += 1; }
    unsigned long long count() const { return count_; }
    void resetStats() { count_ = 0; }

  private:
    unsigned long long count_ = 0;
};

} // namespace fixture
