// Seeded violations for the hot-path allocation pass: the root
// Engine::step reaches one direct allocation and one transitive
// container growth through Buffer::grow.
#pragma once

#include <memory>
#include <vector>

namespace fixture
{

class Buffer
{
  public:
    void
    grow(int v)
    {
        data_.push_back(v); // hopp-analyze-expect(hotpath-alloc)
    }

  private:
    std::vector<int> data_;
};

class Engine
{
  public:
    void
    step()
    {
        buf_.grow(1);
        spare_ = std::make_unique<Buffer>(); // hopp-analyze-expect(hotpath-alloc)
    }

  private:
    Buffer buf_;
    std::unique_ptr<Buffer> spare_;
};

} // namespace fixture
