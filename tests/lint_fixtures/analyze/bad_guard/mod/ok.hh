#pragma once

namespace fixture
{

struct Ok
{
    int fine = 1;
};

} // namespace fixture
