// Seeded violation: #ifndef guards are not the sanctioned style.
#ifndef FIXTURE_MOD_OLD_GUARD_HH // hopp-analyze-expect(guard-style)
#define FIXTURE_MOD_OLD_GUARD_HH

#include "mod/ok.hh"

namespace fixture
{

struct OldGuard
{
    Ok inner;
};

} // namespace fixture

#endif
