// Seeded violations for the hot-path nondeterminism families: the
// root Sim::tick reads the wall clock, seeds a host RNG, and iterates
// an unordered container (hash order varies across libraries).
#pragma once

#include <chrono>
#include <cstdint>
#include <random>
#include <unordered_map>

namespace fixture
{

class Sim
{
  public:
    std::uint64_t
    tick()
    {
        // hopp-lint: allow(wall-clock) -- seeded analyzer fixture
        auto t0 = std::chrono::steady_clock::now(); // hopp-analyze-expect(hotpath-clock)
        std::mt19937_64 gen(seed_); // hopp-analyze-expect(hotpath-rng)
        std::uint64_t sum = gen();
        // hopp-lint: allow(unordered-iter) -- seeded analyzer fixture
        for (auto &kv : map_) // hopp-analyze-expect(hotpath-unordered)
            sum += kv.second;
        sum += static_cast<std::uint64_t>(
            t0.time_since_epoch().count());
        return sum;
    }

  private:
    std::uint64_t seed_ = 1;
    std::unordered_map<std::uint64_t, std::uint64_t> map_;
};

} // namespace fixture
