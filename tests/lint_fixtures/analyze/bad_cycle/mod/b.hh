// Seeded violation: closes the a.hh -> b.hh -> a.hh include cycle.
#pragma once

#include "mod/a.hh" // hopp-analyze-expect(include-cycle)

namespace fixture
{

struct B
{
    int y = 0;
};

} // namespace fixture
