#pragma once

#include "mod/b.hh"

namespace fixture
{

struct A
{
    int x = 0;
};

} // namespace fixture
