// Not part of the cycle: including into a cycle is not itself a cycle.
#pragma once

#include "mod/a.hh"

namespace fixture
{

struct C
{
    int z = 0;
};

} // namespace fixture
