// Clean hot-path fixture: growth excused by reserve() (ctor for the
// member, same body for the local), a placement new into existing
// storage, and one justified suppression.
#pragma once

#include <new>
#include <vector>

namespace fixture
{

class Pool
{
  public:
    Pool() { slab_.reserve(64); }

    void
    put(int v)
    {
        // Within the ctor's reservation in steady state.
        slab_.push_back(v);
    }

    int
    take()
    {
        int v = slab_.back();
        slab_.pop_back();
        return v;
    }

    void
    fill(int n)
    {
        std::vector<int> tmp;
        tmp.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            tmp.push_back(i);
        total_ += static_cast<int>(tmp.size());
    }

  private:
    std::vector<int> slab_;
    int total_ = 0;
};

class Engine
{
  public:
    void
    step()
    {
        pool_.put(1);
        pool_.fill(4);
        // Placement new constructs into existing storage.
        new (buf_) int(pool_.take());
        // Bounded debug ring, capped by the caller; growth accepted.
        // hopp-analyze: allow(hotpath-alloc)
        scratch_.push_back(pool_.take());
    }

  private:
    alignas(int) unsigned char buf_[sizeof(int)];
    Pool pool_;
    std::vector<int> scratch_;
};

} // namespace fixture
