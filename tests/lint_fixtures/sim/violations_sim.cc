/**
 * @file
 * Lint fixture: the sim-std-function rule forbids std::function in
 * any sim/ directory — the event core is allocation-free by design
 * (closures live in sim::InlineEvent's fixed inline storage), and a
 * type-erased heap closure on the schedule/dispatch path would
 * silently reintroduce a per-event allocation. Every violating line
 * carries a hopp-lint-expect marker; the self-test verifies the tool
 * reports exactly these, and the plain-run ctest asserts a nonzero
 * exit. The allow escape hatch is exercised at the bottom.
 */

#include <functional>

namespace hopp::sim
{

using BadEventFn = std::function<void()>; // hopp-lint-expect(sim-std-function)

inline void
scheduleLater(std::function<void()> fn) // hopp-lint-expect(sim-std-function)
{
    fn();
}

// Cold-path glue outside the dispatch loop may justify the escape
// hatch, spelled exactly like the other rules':
// hopp-lint: allow(sim-std-function)
using ColdPathFn = std::function<void(int)>;

} // namespace hopp::sim
