/**
 * @file
 * Lint fixture: the thread-primitive rule forbids raw std::thread /
 * mutex / atomic (and friends) outside runner/sweep* — simulation
 * results are a pure function of config + seed, which only holds while
 * simulation code stays single-threaded; the sanctioned host
 * parallelism is whole independent runs behind runner::SweepPool's
 * index-ordered API. This file sits under a runner/ path but is NOT a
 * sweep file, so every primitive below is a violation. Each line
 * carries a hopp-lint-expect marker; the self-test verifies the tool
 * reports exactly these, and the plain-run ctest asserts a nonzero
 * exit. The sibling sweep_clean.cc proves the runner/sweep* carve-out.
 */

#include <atomic>
#include <mutex>
#include <thread>

namespace hopp::runner
{

std::mutex badLock;              // hopp-lint-expect(thread-primitive)
std::atomic<int> badCounter{0};  // hopp-lint-expect(thread-primitive)

inline void
racyHelper()
{
    std::lock_guard<std::mutex> lock(badLock); // hopp-lint-expect(thread-primitive)
    std::thread t([] {});                      // hopp-lint-expect(thread-primitive)
    t.join();
}

// Host-side glue far from simulated state may justify the escape
// hatch, spelled exactly like the other rules':
// hopp-lint: allow(thread-primitive)
std::atomic<bool> justifiedFlag{false};

} // namespace hopp::runner
