/**
 * @file
 * Lint fixture: the thread-primitive rule's carve-out. This file's
 * path contains "runner/sweep", the one location where raw thread
 * primitives are sanctioned (the SweepPool implementation), so none of
 * the uses below may be reported — the self-test treats any diagnostic
 * here as spurious.
 */

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

namespace hopp::runner
{

inline int
poolStyleFanOut(int tasks)
{
    std::atomic<int> next{0};
    std::mutex mu;
    int done = 0;
    std::vector<std::thread> workers;
    for (int w = 0; w < 2; ++w) {
        workers.emplace_back([&] {
            while (next.fetch_add(1) < tasks) {
                std::lock_guard<std::mutex> lock(mu);
                ++done;
            }
        });
    }
    for (std::thread &t : workers)
        t.join();
    return done;
}

} // namespace hopp::runner
