/**
 * @file
 * Lint fixture: the tree-wide wall-clock rule. steady_clock /
 * system_clock anywhere outside obs/profiler.* (the host
 * self-profiler) is an error — simulated components must take time
 * from sim::EventQueue ticks, never the host. Every violating line
 * carries a hopp-lint-expect marker; the self-test verifies the tool
 * reports exactly these, and the plain-run ctest asserts a nonzero
 * exit.
 */

#include <chrono>

namespace hopp::vm
{

inline std::uint64_t
fakeFaultTimestamp()
{
    auto t = std::chrono::steady_clock::now(); // hopp-lint-expect(wall-clock)
    auto s = std::chrono::system_clock::now(); // hopp-lint-expect(wall-clock)
    return static_cast<std::uint64_t>(
        t.time_since_epoch().count() + s.time_since_epoch().count());
}

inline std::uint64_t
fakeEpochSeconds()
{
    return static_cast<std::uint64_t>(time(nullptr)); // hopp-lint-expect(wall-clock)
}

} // namespace hopp::vm
