/**
 * @file
 * Unit tests for the prefetch policy engine (§III-E): offset
 * adaptation under timeliness feedback, epoch averaging, clamping,
 * intensity.
 */

#include <gtest/gtest.h>

#include "hopp/policy.hh"

using namespace hopp;
using namespace hopp::core;
using namespace hopp::time_literals;

namespace
{

/** Engine adjusting on every sample (epoch = 1). */
PolicyEngine
perSample(double offset_init = 1.0)
{
    PolicyConfig cfg;
    cfg.adjustEpoch = 1;
    cfg.offsetInit = offset_init;
    return PolicyEngine(cfg);
}

} // namespace

TEST(Policy, DefaultOffsetIsOne)
{
    PolicyEngine pe;
    EXPECT_DOUBLE_EQ(pe.offsetOf(1), 1.0);
    auto offs = pe.offsets(1);
    ASSERT_EQ(offs.size(), 1u);
    EXPECT_EQ(offs[0], 1u);
}

TEST(Policy, LatePageGrowsOffset)
{
    auto pe = perSample();
    // T = 10 us < T_min = 40 us: nearly late -> i *= 1.2.
    pe.feedback(1, Tick{100_us}, Tick{110_us});
    EXPECT_NEAR(pe.offsetOf(1), 1.2, 1e-9);
    EXPECT_EQ(pe.stats().increases, 1u);
}

TEST(Policy, HitBeforeArrivalGrowsOffset)
{
    auto pe = perSample();
    pe.feedback(1, Tick{100_us}, Tick{90_us}); // waited on the wire: T = 0
    EXPECT_NEAR(pe.offsetOf(1), 1.2, 1e-9);
}

TEST(Policy, EarlyPageShrinksOffset)
{
    auto pe = perSample(100.0);
    pe.feedback(1, Tick{}, Tick{6_ms}); // T = 6 ms > T_max = 5 ms
    EXPECT_NEAR(pe.offsetOf(1), 80.0, 1e-9);
    EXPECT_EQ(pe.stats().decreases, 1u);
}

TEST(Policy, TimelyPageLeavesOffsetAlone)
{
    auto pe = perSample();
    pe.feedback(1, Tick{}, Tick{1_ms}); // 40 us < T < 5 ms
    EXPECT_DOUBLE_EQ(pe.offsetOf(1), 1.0);
    EXPECT_EQ(pe.stats().feedbacks, 1u);
    EXPECT_EQ(pe.stats().increases, 0u);
}

TEST(Policy, EpochAveragingAdjustsOncePerEpoch)
{
    PolicyConfig cfg;
    cfg.adjustEpoch = 8;
    PolicyEngine pe(cfg);
    for (int i = 0; i < 7; ++i)
        pe.feedback(1, Tick{}, Tick{}); // very late, but epoch not full
    EXPECT_DOUBLE_EQ(pe.offsetOf(1), 1.0);
    pe.feedback(1, Tick{}, Tick{}); // 8th sample closes the epoch
    EXPECT_NEAR(pe.offsetOf(1), 1.2, 1e-9);
    EXPECT_EQ(pe.stats().increases, 1u);
}

TEST(Policy, StaleSmallSamplesDilutedByAverage)
{
    // One stale T=0 sample among seven comfortably-timely ones must
    // NOT grow the offset — the instability the epoch average fixes.
    PolicyConfig cfg;
    cfg.adjustEpoch = 8;
    PolicyEngine pe(cfg);
    pe.feedback(1, Tick{}, Tick{});
    for (int i = 0; i < 7; ++i)
        pe.feedback(1, Tick{}, Tick{1_ms});
    EXPECT_DOUBLE_EQ(pe.offsetOf(1), 1.0);
    EXPECT_EQ(pe.stats().increases, 0u);
}

TEST(Policy, OffsetClampsAtMax)
{
    auto pe = perSample();
    for (int i = 0; i < 100; ++i)
        pe.feedback(1, Tick{}, Tick{});
    EXPECT_DOUBLE_EQ(pe.offsetOf(1), 1024.0);
}

TEST(Policy, OffsetNeverDropsBelowOne)
{
    auto pe = perSample();
    for (int i = 0; i < 50; ++i)
        pe.feedback(1, Tick{}, Tick{6_ms});
    EXPECT_DOUBLE_EQ(pe.offsetOf(1), 1.0);
}

TEST(Policy, StreamsAdaptIndependently)
{
    auto pe = perSample();
    pe.feedback(1, Tick{}, Tick{});
    EXPECT_GT(pe.offsetOf(1), 1.0);
    EXPECT_DOUBLE_EQ(pe.offsetOf(2), 1.0);
}

TEST(Policy, IntensityIssuesConsecutiveOffsets)
{
    PolicyConfig cfg;
    cfg.intensity = 3;
    cfg.offsetInit = 5.0;
    PolicyEngine pe(cfg);
    auto offs = pe.offsets(1);
    ASSERT_EQ(offs.size(), 3u);
    EXPECT_EQ(offs[0], 5u);
    EXPECT_EQ(offs[1], 6u);
    EXPECT_EQ(offs[2], 7u);
}

TEST(Policy, NonAdaptiveKeepsFixedOffset)
{
    PolicyConfig cfg;
    cfg.adaptive = false;
    cfg.offsetInit = 20.0;
    cfg.adjustEpoch = 1;
    PolicyEngine pe(cfg);
    for (int i = 0; i < 10; ++i)
        pe.feedback(1, Tick{}, Tick{});
    EXPECT_DOUBLE_EQ(pe.offsetOf(1), 20.0);
    EXPECT_EQ(pe.offsets(1)[0], 20u);
}

TEST(Policy, OffsetsRoundToNearest)
{
    auto pe = perSample(2.0);
    pe.feedback(1, Tick{}, Tick{}); // 2.4
    EXPECT_EQ(pe.offsets(1)[0], 2u);
    pe.feedback(1, Tick{}, Tick{}); // 2.88
    EXPECT_EQ(pe.offsets(1)[0], 3u);
}
