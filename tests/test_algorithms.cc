/**
 * @file
 * Unit tests for the three prefetch tiers (§III-D2-4): dominant-stride
 * detection (SSP), ladder repetition (LSP, Algorithm 1), ripple
 * accumulation (RSP, Algorithm 2), and the tier dispatch order.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "hopp/algorithms.hh"

using namespace hopp;
using namespace hopp::core;

namespace
{

/** Build vpn/stride arrays from a VPN sequence and wrap in a view. */
struct ViewHolder
{
    std::vector<Vpn> vpns;
    std::vector<std::int64_t> strides;

    explicit ViewHolder(std::vector<Vpn> seq) : vpns(std::move(seq))
    {
        for (std::size_t i = 1; i < vpns.size(); ++i)
            strides.push_back(signedDelta(vpns[i - 1], vpns[i]));
    }

    StreamView
    view() const
    {
        return StreamView{Pid{1}, 7, 100, &vpns, &strides};
    }
};

/** A 16-long VPN history with fixed stride. */
std::vector<Vpn>
arith(Vpn base, std::int64_t stride, unsigned n = 16)
{
    std::vector<Vpn> v;
    for (unsigned i = 0; i < n; ++i)
        v.push_back(offsetBy(base, stride * static_cast<std::int64_t>(i)));
    return v;
}

/**
 * Cross-stream ladder VPNs (Fig. 2): tread r visits rise*r + {0,2,1},
 * so within-tread strides vary (+2, -1) and no stride dominates; the
 * rise is the larger stable jump.
 */
std::vector<Vpn>
ladder(Vpn base, unsigned rise, unsigned n = 16)
{
    static const unsigned offsets[3] = {0, 2, 1};
    std::vector<Vpn> v;
    for (unsigned i = 0; i < n; ++i)
        v.push_back(base + (i / 3) * rise + offsets[i % 3]);
    return v;
}

/** Vpn vector from plain page numbers (test shorthand). */
std::vector<Vpn>
vpnsOf(std::initializer_list<std::uint64_t> xs)
{
    std::vector<Vpn> v;
    for (auto x : xs)
        v.push_back(Vpn{x});
    return v;
}

} // namespace

TEST(Ssp, DetectsDominantStride)
{
    ViewHolder h(arith(Vpn{100}, 3));
    auto p = runSsp(h.view());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->tier, Tier::Ssp);
    EXPECT_EQ(p->step, 3);
    EXPECT_EQ(p->base, h.vpns.back());
    EXPECT_EQ(p->target(1), h.vpns.back() + 3);
    EXPECT_EQ(p->target(4), h.vpns.back() + 12);
}

TEST(Ssp, DetectsNegativeStride)
{
    ViewHolder h(arith(Vpn{1000}, -2));
    auto p = runSsp(h.view());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->step, -2);
    EXPECT_EQ(p->target(1), h.vpns.back() - 2);
}

TEST(Ssp, MajorityWithNoiseStillDetected)
{
    // 10 of 15 strides are +1: dominant (>= L/2 = 8).
    auto seq = vpnsOf({0,  1,  2,  3,  4,  40, 41, 42,
                       43, 44, 45, 46, 47, 48, 49, 50});
    ViewHolder h(seq);
    auto p = runSsp(h.view());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->step, 1);
}

TEST(Ssp, NoDominantStrideFails)
{
    // Cross-stream ladder: strides cycle (+2, -1, +14), 5 occurrences
    // each in a 15-stride history — none reaches the L/2 = 8 majority.
    ViewHolder h(ladder(Vpn{0}, 16));
    EXPECT_FALSE(runSsp(h.view()).has_value());
}

TEST(Ssp, ExactlyHalfCountsAsDominant)
{
    // Paper: "occurred more than or equal to L/2 times". A tread-2
    // ladder alternates (1, 15): stride 1 appears exactly 8 times in a
    // 15-stride history, so SSP *does* claim it.
    std::vector<Vpn> v;
    for (unsigned i = 0; i < 16; ++i)
        v.push_back(Vpn{(i / 2) * 16ull + i % 2});
    ViewHolder h(v);
    auto p = runSsp(h.view());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->step, 1);
}

TEST(Ssp, UnderflowTargetIsNull)
{
    ViewHolder h(arith(Vpn{30}, -2));
    auto p = runSsp(h.view());
    ASSERT_TRUE(p.has_value());
    EXPECT_FALSE(p->target(10).has_value()); // 0 - 2*... < 0
}

TEST(Lsp, DetectsLadderRepetition)
{
    // Window ends right after a rise: target pattern (-1, +14), which
    // repeats every tread. The stride after each occurrence is +2 and
    // occurrences are 16 pages apart, so LSP predicts vpnA + 2 and
    // then +16 per repetition — exactly the future pages.
    auto seq = ladder(Vpn{0}, 16, 64);
    ViewHolder h({seq.begin(), seq.begin() + 16});
    auto p = runLsp(h.view());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->tier, Tier::Lsp);
    EXPECT_EQ(p->base, h.vpns.back() + 2);
    EXPECT_EQ(p->step, 16);
    // Both predicted pages really occur in the stream's future.
    std::set<Vpn> future(seq.begin() + 16, seq.end());
    EXPECT_TRUE(future.count(*p->target(1)));
    EXPECT_TRUE(future.count(*p->target(2)));
}

TEST(Lsp, NoRepetitionFails)
{
    // Strictly increasing strides: no pattern pair ever repeats.
    std::vector<Vpn> seq;
    Vpn cur{};
    for (int i = 0; i < 16; ++i) {
        seq.push_back(cur);
        cur += 3 + static_cast<std::uint64_t>(i);
    }
    ViewHolder h(seq);
    EXPECT_FALSE(runLsp(h.view()).has_value());
}

TEST(Lsp, WindowAlignmentStillPredictsFuturePages)
{
    // Same ladder, but the window ends mid-tread: whatever the target
    // pattern alignment, predicted pages must lie in the future.
    auto seq = ladder(Vpn{0}, 16, 64);
    for (unsigned start = 0; start < 3; ++start) {
        ViewHolder h({seq.begin() + start, seq.begin() + start + 16});
        auto p = runLsp(h.view());
        ASSERT_TRUE(p.has_value()) << "alignment " << start;
        std::set<Vpn> future(seq.begin() + start + 16, seq.end());
        EXPECT_TRUE(future.count(*p->target(1)))
            << "alignment " << start;
    }
}

TEST(Rsp, DetectsPureSequential)
{
    ViewHolder h(arith(Vpn{10}, 1));
    auto p = runRsp(h.view());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->tier, Tier::Rsp);
    EXPECT_EQ(p->step, 1);
    EXPECT_EQ(p->target(2), h.vpns.back() + 2);
}

TEST(Rsp, DetectsRippleWithOutOfOrderHops)
{
    // Net stride-1 progress with +/-2 excursions that cancel out.
    auto seq = vpnsOf({100, 102, 101, 103, 102, 104, 103, 105,
                       104, 106, 105, 107, 106, 108, 107, 109});
    ViewHolder h(seq);
    auto p = runRsp(h.view());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->step, 1);
}

TEST(Rsp, RejectsLargeStrideStream)
{
    ViewHolder h(arith(Vpn{0}, 16));
    EXPECT_FALSE(runRsp(h.view()).has_value());
}

TEST(Rsp, RejectsRandomJumps)
{
    auto seq = vpnsOf({0,   900, 13,  700, 45,  333, 801, 99,
                       555, 222, 777, 31,  650, 480, 12,  999});
    ViewHolder h(seq);
    EXPECT_FALSE(runRsp(h.view()).has_value());
}

TEST(ThreeTier, SspWinsOverRspForSimpleStream)
{
    ViewHolder h(arith(Vpn{0}, 1));
    auto p = runThreeTier(h.view());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->tier, Tier::Ssp);
}

TEST(ThreeTier, LadderFallsThroughToLsp)
{
    ViewHolder h(ladder(Vpn{0}, 16));
    auto p = runThreeTier(h.view());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->tier, Tier::Lsp);
}

TEST(ThreeTier, MaskDisablesTiers)
{
    ViewHolder h(ladder(Vpn{0}, 16));
    EXPECT_FALSE(runThreeTier(h.view(), tiers::ssp).has_value());
    EXPECT_TRUE(runThreeTier(h.view(), tiers::ssp | tiers::lsp)
                    .has_value());
    ViewHolder seq(arith(Vpn{0}, 1));
    auto p = runThreeTier(seq.view(), tiers::rsp);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->tier, Tier::Rsp);
}

TEST(ThreeTier, NothingMatchesRandom)
{
    auto seq = vpnsOf({0,   900, 13,  700, 45,  333, 801, 99,
                       555, 222, 777, 31,  650, 480, 12,  999});
    ViewHolder h(seq);
    EXPECT_FALSE(runThreeTier(h.view()).has_value());
}
