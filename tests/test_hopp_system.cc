/**
 * @file
 * Integration tests for the complete HoPP system (Figure 4): the
 * hardware tap -> HPD -> RPT cache -> hot-page ring -> trainer ->
 * policy -> exec -> early PTE injection pipeline, end to end on a
 * hand-driven machine.
 */

#include <gtest/gtest.h>

#include "hopp/hopp_system.hh"
#include "prefetch/stats.hh"

using namespace hopp;
using namespace hopp::core;

namespace
{

/** A hand-wired single-process machine with a HoPP system. */
struct Rig
{
    static constexpr Pid pid{1};

    explicit Rig(std::uint64_t limit = 64)
    {
        vm::VmsConfig vcfg;
        vcfg.kswapdEnabled = false;
        eq = std::make_unique<sim::EventQueue>();
        dram = std::make_unique<mem::Dram>(limit + 64);
        mc = std::make_unique<mem::MemCtrl>(*dram);
        // Tiny LLC so page streams miss and reach the MC.
        llc = std::make_unique<mem::Llc>(mem::LlcConfig{16 << 10, 4});
        fabric =
            std::make_unique<net::RdmaFabric>(*eq, net::LinkConfig{});
        node = std::make_unique<remote::RemoteNode>(1 << 16);
        backend = std::make_unique<remote::SwapBackend>(*fabric, *node);
        vms = std::make_unique<vm::Vms>(*eq, *dram, *mc, *llc, *backend,
                                        vcfg);
        vms->addListener(&pstats);
        vms->createProcess(pid, limit);
        HoppConfig hcfg;
        hcfg.trainerDelay = 100;
        hopp = std::make_unique<HoppSystem>(*eq, *vms, *mc, hcfg);
    }

    /** Stream all 64 lines of pages [first, last] in order. */
    Tick
    streamPages(Vpn first, Vpn last, Tick t)
    {
        for (Vpn v = first; v <= last; ++v) {
            for (unsigned line = 0; line < 64; ++line) {
                t += vms->access(pid,
                                 pageBase(v) + line * lineBytes, false,
                                 t);
                eq->runUntil(t);
            }
        }
        return t;
    }

    std::unique_ptr<sim::EventQueue> eq;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::MemCtrl> mc;
    std::unique_ptr<mem::Llc> llc;
    std::unique_ptr<net::RdmaFabric> fabric;
    std::unique_ptr<remote::RemoteNode> node;
    std::unique_ptr<remote::SwapBackend> backend;
    std::unique_ptr<vm::Vms> vms;
    std::unique_ptr<HoppSystem> hopp;
    prefetch::PrefetchStats pstats;
};

class HoppSystemTest : public ::testing::Test
{
  protected:
    Rig rig;
};

} // namespace

TEST_F(HoppSystemTest, InitialRptBuildCoversPresentPages)
{
    // Map a few pages before starting HoPP.
    Tick t{};
    for (std::uint64_t v = 0; v < 8; ++v)
        t += rig.vms->access(Rig::pid, pageBase(Vpn{v}), false, t);
    rig.hopp->start();
    EXPECT_EQ(rig.hopp->rpt().size(), 8u);
}

TEST_F(HoppSystemTest, HotPagesFlowThroughThePipeline)
{
    rig.hopp->start();
    rig.streamPages(Vpn{0}, Vpn{31}, Tick{});
    EXPECT_GT(rig.hopp->hpd().stats().hotPages, 20u);
    EXPECT_GT(rig.hopp->trainer().stats().hotPages, 20u);
    EXPECT_EQ(rig.hopp->unmappedHotPages(), 0u)
        << "PTE hooks must keep the RPT cache fresh";
}

TEST_F(HoppSystemTest, SequentialStreamTriggersInjections)
{
    rig.hopp->start();
    // Pass 1: cold-faults 128 pages into a 64-frame cgroup; the early
    // half is swapped out. Pass 2 re-streams: HoPP must identify the
    // stream and inject ahead.
    Tick t = rig.streamPages(Vpn{0}, Vpn{127}, Tick{});
    t = rig.streamPages(Vpn{0}, Vpn{127}, t);
    rig.eq->run();
    const auto &ssp = rig.hopp->exec().tierStats(Tier::Ssp);
    EXPECT_GT(ssp.issued, 30u);
    EXPECT_GT(ssp.hits, 20u);
    EXPECT_GT(rig.vms->stats().injectedHits + rig.vms->stats().adoptions,
              20u);
    EXPECT_GT(rig.hopp->policy().stats().feedbacks, 10u);
}

TEST_F(HoppSystemTest, InjectionsReduceFaultsVersusNoPrefetch)
{
    Rig bare;
    Tick t0 = bare.streamPages(Vpn{0}, Vpn{127}, Tick{});
    bare.streamPages(Vpn{0}, Vpn{127}, t0);
    bare.eq->run();

    rig.hopp->start();
    Tick t = rig.streamPages(Vpn{0}, Vpn{127}, Tick{});
    rig.streamPages(Vpn{0}, Vpn{127}, t);
    rig.eq->run();

    // Two 128-page passes are mostly offset-ramp-up warmup, so demand
    // only a solid reduction here; the full-size benches check the
    // near-elimination the paper reports.
    EXPECT_LT(rig.vms->stats().remoteFaults,
              bare.vms->stats().remoteFaults * 3 / 4)
        << "HoPP must eliminate a large share of demand remote faults";
}

TEST_F(HoppSystemTest, PteClearKeepsRptCacheConsistent)
{
    rig.hopp->start();
    rig.streamPages(Vpn{0}, Vpn{127}, Tick{}); // reclaim cleared many PTEs
    rig.eq->run();
    EXPECT_GT(rig.hopp->rptCache().stats().invalidates, 0u);
    // Every extraction either resolved through the RPT or was counted
    // unmapped — none were silently lost or misattributed.
    EXPECT_EQ(rig.hopp->unmappedHotPages() +
                  rig.hopp->trainer().stats().hotPages,
              rig.hopp->hpd().stats().hotPages);
}

TEST_F(HoppSystemTest, RingOverflowDropsInsteadOfBlocking)
{
    HoppConfig hcfg;
    hcfg.ringCapacity = 4;
    hcfg.trainerDelay = 1'000'000'000; // never drained during the run
    auto tiny =
        std::make_unique<HoppSystem>(*rig.eq, *rig.vms, *rig.mc, hcfg);
    tiny->start();
    rig.streamPages(Vpn{0}, Vpn{63}, Tick{});
    EXPECT_GT(tiny->ring().dropped(), 0u);
}

TEST_F(HoppSystemTest, DramHitCoverageReportedByStats)
{
    rig.hopp->start();
    Tick t = rig.streamPages(Vpn{0}, Vpn{127}, Tick{});
    rig.streamPages(Vpn{0}, Vpn{127}, t);
    rig.eq->run();
    EXPECT_GT(rig.pstats.dramHitCoverage(), 0.1);
    EXPECT_GT(rig.pstats.accuracy(), 0.7);
}

TEST_F(HoppSystemTest, HotPageWriteBandwidthCharged)
{
    rig.hopp->start();
    rig.streamPages(Vpn{0}, Vpn{63}, Tick{});
    std::uint64_t hot = rig.hopp->hpd().stats().hotPages -
                        rig.hopp->unmappedHotPages();
    EXPECT_EQ(rig.dram->traffic(mem::TrafficSource::HotPageWrite),
              hot * hotPageRecordBytes);
}

TEST_F(HoppSystemTest, StartTwiceIsAnError)
{
    rig.hopp->start();
    EXPECT_DEATH(rig.hopp->start(), "already started");
}

TEST_F(HoppSystemTest, AdvisorPruneSparesFreshEntries)
{
    // A hotness table past the cap made of entries still inside the
    // warm window: the prune pass must run (the trigger fired) but
    // drop nothing — it ages entries out, it does not clear wholesale.
    HoppConfig hcfg;
    hcfg.trainerDelay = 100;
    hcfg.evictionAdvisor = true;
    hcfg.warmEntriesCap = 4;
    auto warm =
        std::make_unique<HoppSystem>(*rig.eq, *rig.vms, *rig.mc, hcfg);
    warm->start();
    rig.streamPages(Vpn{0}, Vpn{15}, Tick{});
    rig.eq->run();
    ASSERT_GT(warm->hpd().stats().hotPages, 0u);
    EXPECT_GT(warm->warmEntriesLive(), hcfg.warmEntriesCap)
        << "fresh entries must survive the prune that the cap forced";
    EXPECT_GE(warm->warmPrunePasses(), 1u);
    EXPECT_EQ(warm->warmPruned(), 0u)
        << "every entry is inside warmWindow; none may be dropped";
}

TEST_F(HoppSystemTest, AdvisorPruneAgesOutStaleEntries)
{
    HoppConfig hcfg;
    hcfg.trainerDelay = 100;
    hcfg.evictionAdvisor = true;
    hcfg.warmEntriesCap = 4;
    auto warm =
        std::make_unique<HoppSystem>(*rig.eq, *rig.vms, *rig.mc, hcfg);
    warm->start();
    // Phase 1 populates the table, then the clock runs past the warm
    // window so every phase-1 entry goes stale.
    Tick t = rig.streamPages(Vpn{0}, Vpn{15}, Tick{});
    std::uint64_t live_phase1 = warm->warmEntriesLive();
    ASSERT_GT(live_phase1, 0u);
    t = t + hcfg.warmWindow + Duration{1'000'000};
    // Phase 2 inserts enough fresh entries to re-trigger the prune.
    rig.streamPages(Vpn{200}, Vpn{239}, t);
    rig.eq->run();
    EXPECT_GT(warm->warmPruned(), 0u)
        << "stale phase-1 entries must be aged out, not retained";
    EXPECT_GE(warm->warmPrunePasses(), 2u);
    // Page 0 is long out of the window: whether its entry was pruned
    // or merely stale, the advisor must not keep it warm.
    EXPECT_FALSE(warm->keepWarm(Rig::pid, Vpn{0}, rig.eq->now()));
}
