/**
 * @file
 * Unit tests for the LLC model: hit/miss behaviour, page invalidation,
 * and miss-rate properties on streaming vs resident working sets.
 */

#include <gtest/gtest.h>

#include "mem/llc.hh"

using namespace hopp;
using namespace hopp::mem;

namespace
{

LlcConfig
smallLlc(std::uint64_t kb = 64, std::size_t ways = 4)
{
    LlcConfig cfg;
    cfg.capacityBytes = kb << 10;
    cfg.ways = ways;
    return cfg;
}

} // namespace

TEST(Llc, FirstAccessMissesSecondHits)
{
    Llc llc(smallLlc());
    EXPECT_FALSE(llc.access(PhysAddr{0x1000}));
    EXPECT_TRUE(llc.access(PhysAddr{0x1000}));
    EXPECT_EQ(llc.hits(), 1u);
    EXPECT_EQ(llc.misses(), 1u);
}

TEST(Llc, SameLineDifferentBytesHit)
{
    Llc llc(smallLlc());
    llc.access(PhysAddr{0x1000});
    EXPECT_TRUE(llc.access(PhysAddr{0x1004}));
    EXPECT_TRUE(llc.access(PhysAddr{0x103F}));
    EXPECT_FALSE(llc.access(PhysAddr{0x1040})); // next line
}

TEST(Llc, ResidentWorkingSetEventuallyAllHits)
{
    Llc llc(smallLlc(64, 4));
    // 32 KB working set in a 64 KB cache: after warmup, no misses.
    for (int pass = 0; pass < 2; ++pass) {
        for (std::uint64_t a = 0; a < (32 << 10); a += lineBytes)
            llc.access(PhysAddr{a});
    }
    llc.resetStats();
    for (std::uint64_t a = 0; a < (32 << 10); a += lineBytes)
        llc.access(PhysAddr{a});
    EXPECT_EQ(llc.misses(), 0u);
}

TEST(Llc, StreamingFootprintLargerThanCacheAlwaysMisses)
{
    Llc llc(smallLlc(64, 4));
    // Stream 1 MB repeatedly: every access should miss with LRU.
    std::uint64_t miss_before = llc.misses();
    for (int pass = 0; pass < 2; ++pass) {
        for (std::uint64_t a = 0; a < (1 << 20); a += lineBytes)
            llc.access(PhysAddr{a});
    }
    std::uint64_t accesses = 2 * (1 << 20) / lineBytes;
    EXPECT_EQ(llc.misses() - miss_before, accesses);
}

TEST(Llc, InvalidatePageForcesMissesOnThatPageOnly)
{
    Llc llc(smallLlc(256, 8));
    // Touch two pages.
    for (std::uint64_t off = 0; off < pageBytes; off += lineBytes) {
        llc.access(pageBase(Ppn{5}) + off);
        llc.access(pageBase(Ppn{6}) + off);
    }
    llc.invalidatePage(Ppn{5});
    llc.resetStats();
    llc.access(pageBase(Ppn{5})); // invalidated -> miss
    llc.access(pageBase(Ppn{6})); // untouched -> hit
    EXPECT_EQ(llc.misses(), 1u);
    EXPECT_EQ(llc.hits(), 1u);
}

TEST(Llc, GeometryRoundsToPowerOfTwoSets)
{
    LlcConfig cfg;
    cfg.capacityBytes = 96 << 10; // 1536 lines / 16 ways = 96 sets -> 64
    cfg.ways = 16;
    Llc llc(cfg);
    EXPECT_EQ(llc.sets(), 64u);
}
