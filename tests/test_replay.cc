/**
 * @file
 * Record->replay fidelity tests (DESIGN.md §15): a live run recorded
 * through the HMTT tap and replayed through ReplayEngine must
 * reproduce the MC-side pipeline statistics byte for byte, for both
 * hopp system flavours; the error statuses of the reader propagate
 * through the engine.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "runner/machine.hh"
#include "runner/replay_engine.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

/** Temp path unique to this process (tests may run in parallel). */
std::string
tmpPath(const char *stem)
{
    return std::string("replay_") + stem + "_" +
           std::to_string(::getpid()) + ".trc";
}

/** Run @p workload live with recording on; return its MC-side doc. */
std::string
recordLive(const std::string &workload, SystemKind sys,
           const std::string &trace_path, core::HoppConfig hopp = {})
{
    MachineConfig cfg;
    cfg.system = sys;
    cfg.hopp = hopp;
    cfg.recordTracePath = trace_path;
    workloads::WorkloadScale scale;
    scale.footprint = 0.1;
    scale.iterations = 0.3;
    Machine machine(cfg);
    machine.addWorkload(workloads::makeWorkload(workload, scale, 43));
    machine.run();
    EXPECT_TRUE(machine.traceRecordOk());
    return core::mcSideStatsJson(machine.hoppSystem()->pipeline());
}

/** Replay @p trace_path under @p hopp; return the MC-side doc. */
std::string
replayed(const std::string &trace_path, core::HoppConfig hopp = {})
{
    trace::TraceReader reader;
    EXPECT_EQ(reader.open(trace_path), trace::TraceIoStatus::Ok);
    ReplayConfig cfg;
    cfg.hopp = hopp;
    ReplayEngine engine(cfg);
    EXPECT_EQ(engine.run(reader), trace::TraceIoStatus::Ok);
    EXPECT_GT(engine.result().records, 0u);
    EXPECT_GT(engine.result().mcAccesses, 0u);
    return engine.mcStatsJson();
}

} // namespace

TEST(Replay, ReproducesLiveMcStatsByteForByte)
{
    std::string path = tmpPath("kmeans");
    std::string live = recordLive("kmeans-omp", SystemKind::Hopp, path);
    EXPECT_EQ(live, replayed(path));
    std::remove(path.c_str());
}

TEST(Replay, ReproducesHoppOnlyWithMarkovAndChannels)
{
    // A second flavour: no fault-driven prefetcher feeding the VMS,
    // Markov tier on, two interleaved channels — the stats must still
    // match, because the pipeline input stream alone determines them.
    core::HoppConfig hopp;
    hopp.tierMask = core::tiers::all | core::tiers::markov;
    hopp.channels = 2;
    std::string path = tmpPath("hopponly");
    std::string live =
        recordLive("microbench", SystemKind::HoppOnly, path, hopp);
    EXPECT_EQ(live, replayed(path, hopp));
    std::remove(path.c_str());
}

TEST(Replay, OracleLedgerIsConsistent)
{
    std::string path = tmpPath("oracle");
    recordLive("kmeans-omp", SystemKind::Hopp, path);

    trace::TraceReader reader;
    ASSERT_EQ(reader.open(path), trace::TraceIoStatus::Ok);
    ReplayEngine engine;
    ASSERT_EQ(engine.run(reader), trace::TraceIoStatus::Ok);
    const ReplayResult &r = engine.result();
    // Every request is eventually classified, and nothing else is.
    EXPECT_EQ(r.used + r.late + r.unused, r.requested);
    EXPECT_LE(r.coveredPages, r.demandPages);
    EXPECT_GE(engine.result().records,
              r.mcAccesses + r.pteEvents);
    std::remove(path.c_str());
}

TEST(Replay, FanoutCellsMatchSoloReplays)
{
    // One shared-frontend pass over the trace must give every policy
    // cell the exact stats and oracle ledger a solo replay of that
    // cell produces — the fan-out is an optimization, not a model.
    std::string path = tmpPath("fanout");
    recordLive("kmeans-omp", SystemKind::Hopp, path);

    std::vector<ReplayConfig> cells;
    for (unsigned mask :
         {core::tiers::all, core::tiers::ssp, core::tiers::lsp,
          core::tiers::all | core::tiers::markov}) {
        ReplayConfig cfg;
        cfg.hopp.tierMask = mask;
        cells.push_back(cfg);
    }
    trace::TraceReader reader;
    ASSERT_EQ(reader.open(path), trace::TraceIoStatus::Ok);
    ReplayEngine fanout(cells);
    ASSERT_EQ(fanout.run(reader), trace::TraceIoStatus::Ok);
    ASSERT_EQ(fanout.cells(), cells.size());

    for (std::size_t i = 0; i < cells.size(); ++i) {
        trace::TraceReader solo_reader;
        ASSERT_EQ(solo_reader.open(path), trace::TraceIoStatus::Ok);
        ReplayEngine solo(cells[i]);
        ASSERT_EQ(solo.run(solo_reader), trace::TraceIoStatus::Ok);
        EXPECT_EQ(fanout.mcStatsJson(i), solo.mcStatsJson())
            << "cell " << i;
        EXPECT_EQ(fanout.oracleJson(i), solo.oracleJson())
            << "cell " << i;
    }
    std::remove(path.c_str());
}

TEST(Replay, FanoutRejectsMixedHardwareConfigs)
{
    ReplayConfig a;
    ReplayConfig b;
    b.hopp.hpd.threshold = a.hopp.hpd.threshold * 2;
    std::vector<ReplayConfig> cells{a, b};
    EXPECT_DEATH(ReplayEngine{cells}, "hardware");
}

TEST(Replay, RunIsOnceOnly)
{
    std::string path = tmpPath("once");
    recordLive("microbench", SystemKind::Hopp, path);
    trace::TraceReader reader;
    ASSERT_EQ(reader.open(path), trace::TraceIoStatus::Ok);
    ReplayEngine engine;
    ASSERT_EQ(engine.run(reader), trace::TraceIoStatus::Ok);
    trace::TraceReader again;
    ASSERT_EQ(again.open(path), trace::TraceIoStatus::Ok);
    EXPECT_DEATH(engine.run(again), "once");
    std::remove(path.c_str());
}

TEST(Replay, MissingTracePropagatesOpenFailed)
{
    trace::TraceReader reader;
    EXPECT_EQ(reader.open("replay_no_such_file.trc"),
              trace::TraceIoStatus::OpenFailed);
    ReplayEngine engine;
    // A reader that failed to open yields nothing; the engine returns
    // the sticky status instead of inventing an empty-but-ok run.
    EXPECT_EQ(engine.run(reader), trace::TraceIoStatus::OpenFailed);
    EXPECT_EQ(engine.result().records, 0u);
}

TEST(Replay, TruncatedTracePropagatesAndKeepsPrefix)
{
    std::string path = tmpPath("trunc");
    recordLive("microbench", SystemKind::Hopp, path);

    // Chop the file mid-block: the complete prefix still replays, the
    // status reports the damage.
    FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_GT(size, 64);
    ASSERT_EQ(::truncate(path.c_str(), size - 7), 0);

    trace::TraceReader reader;
    ASSERT_EQ(reader.open(path), trace::TraceIoStatus::Ok);
    ReplayEngine engine;
    EXPECT_EQ(engine.run(reader), trace::TraceIoStatus::Truncated);
    EXPECT_GT(engine.result().records, 0u);
    std::remove(path.c_str());
}
