/**
 * @file
 * Fault-path latency histograms: classification, §II-A consistency of
 * the recorded latencies, and the percentile report.
 */

#include <gtest/gtest.h>

#include "obs/latency.hh"
#include "runner/machine.hh"
#include "vm/cost_model.hh"

using namespace hopp;
using namespace hopp::obs;
using namespace hopp::runner;

namespace
{

/** Run one workload and hand back the machine for inspection. */
struct LatencyRun
{
    Machine machine;

    LatencyRun(SystemKind system, double ratio, double footprint,
               const std::string &app = "microbench")
        : machine([&] {
              MachineConfig cfg;
              cfg.system = system;
              cfg.localMemRatio = ratio;
              return cfg;
          }())
    {
        workloads::WorkloadScale scale;
        scale.footprint = footprint;
        machine.addWorkload(workloads::makeWorkload(app, scale));
        machine.run();
    }

    const stats::Histogram &
    of(LatencyClass c)
    {
        return machine.faultLatency().of(c);
    }
};

} // namespace

TEST(FaultLatency, DramHitCostsExactlyTheDramHitCharge)
{
    // Early-injected pages resolve without a fault: every first touch
    // is charged the §II-A DRAM-hit occupancy, nothing more.
    LatencyRun r(SystemKind::Hopp, 0.5, 0.3);
    const stats::Histogram &h = r.of(LatencyClass::DramHit);
    ASSERT_GT(h.count(), 0u);
    vm::CostModel cost;
    EXPECT_EQ(h.percentile(0.50), cost.dramHit);
    EXPECT_EQ(h.percentile(0.99), cost.dramHit);
}

TEST(FaultLatency, PrefetchHitIsTheKernelSwapcachePath)
{
    // A swapcache hit pays §II-A steps 1+2+3+6 = 2.3 us; queueing
    // never touches it, so the minimum is exactly that constant.
    LatencyRun r(SystemKind::Fastswap, 0.5, 0.3);
    const stats::Histogram &h = r.of(LatencyClass::PrefetchHit);
    ASSERT_GT(h.count(), 0u);
    vm::CostModel cost;
    EXPECT_EQ(h.min(), cost.prefetchHitOverhead());
}

TEST(FaultLatency, RemoteFaultP50MatchesPaperWindow)
{
    // Demand page-ins under memory pressure: §II-A measures the full
    // path (kernel steps + RDMA transfer + direct reclaim / queueing)
    // at ~8.3-11.3 us. Low local ratio keeps reclaim on the critical
    // path, as in the paper's measurement.
    LatencyRun r(SystemKind::Fastswap, 0.1, 0.3);
    const stats::Histogram &h = r.of(LatencyClass::RemoteFault);
    ASSERT_GT(h.count(), 0u);
    std::uint64_t p50 = h.percentile(0.50);
    EXPECT_GE(p50, 8300u);
    EXPECT_LE(p50, 11300u);
}

TEST(FaultLatency, PercentilesAreMonotoneWithinEachClass)
{
    LatencyRun r(SystemKind::Fastswap, 0.3, 0.3);
    for (std::size_t i = 0; i < latencyClassCount; ++i) {
        const stats::Histogram &h =
            r.of(static_cast<LatencyClass>(i));
        if (h.count() == 0)
            continue;
        std::uint64_t p50 = h.percentile(0.50);
        std::uint64_t p90 = h.percentile(0.90);
        std::uint64_t p99 = h.percentile(0.99);
        EXPECT_LE(p50, p90);
        EXPECT_LE(p90, p99);
        EXPECT_GE(p50, h.min());
        EXPECT_LE(p99, h.max());
    }
}

TEST(FaultLatency, RemoteTransferIsRemoteFaultMinusKernelSteps)
{
    // The transfer histogram strips the fixed kernel overhead, so its
    // minimum plus 2.3 us equals the remote-fault minimum.
    LatencyRun r(SystemKind::Fastswap, 0.2, 0.3);
    const stats::Histogram &fault = r.of(LatencyClass::RemoteFault);
    const stats::Histogram &xfer = r.of(LatencyClass::RemoteTransfer);
    ASSERT_GT(fault.count(), 0u);
    ASSERT_EQ(xfer.count(), fault.count());
    vm::CostModel cost;
    EXPECT_EQ(xfer.min() + cost.remoteFaultOverhead(), fault.min());
}

TEST(FaultLatency, DumpStatsReportsEveryNonEmptyClass)
{
    LatencyRun r(SystemKind::Fastswap, 0.3, 0.3);
    stats::StatSet s("latency");
    r.machine.faultLatency().dumpStats(s);
    bool saw_remote_p99 = false;
    for (const stats::StatValue &v : s.values())
        saw_remote_p99 |= v.name == "latency.remote_fault.p99_ns";
    EXPECT_TRUE(saw_remote_p99);
    // 5 scalars per non-empty class, never a partial group.
    EXPECT_EQ(s.values().size() % 5, 0u);
    EXPECT_GE(s.values().size(), 10u);
}

TEST(FaultLatency, ResetClearsAllClasses)
{
    LatencyRun r(SystemKind::Fastswap, 0.3, 0.3);
    ASSERT_GT(r.of(LatencyClass::RemoteFault).count(), 0u);
    r.machine.faultLatency().reset();
    for (std::size_t i = 0; i < latencyClassCount; ++i)
        EXPECT_EQ(r.of(static_cast<LatencyClass>(i)).count(), 0u);
}
