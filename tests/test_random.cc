/**
 * @file
 * Unit tests for the deterministic PRNG and the Zipf sampler.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"

using namespace hopp;

TEST(Pcg32, DeterministicForSameSeed)
{
    Pcg32 a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiverge)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Pcg32, BelowRespectsBound)
{
    Pcg32 rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Pcg32, Below64RespectsBound)
{
    Pcg32 rng(7);
    std::uint64_t bound = 1ull << 40;
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below64(bound), bound);
}

TEST(Pcg32, UniformInUnitInterval)
{
    Pcg32 rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Pcg32, BelowIsRoughlyUniform)
{
    Pcg32 rng(11);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[rng.below(10)];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 500);
}

TEST(ZipfSampler, SkewFavoursLowIndices)
{
    Pcg32 rng(3);
    ZipfSampler zipf(1000, 0.99);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf.sample(rng)];
    // Item 0 should be drawn far more than item 500.
    EXPECT_GT(counts[0], counts[500] * 10);
}

TEST(ZipfSampler, ThetaZeroIsUniform)
{
    Pcg32 rng(3);
    ZipfSampler zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 600);
}

TEST(ZipfSampler, SamplesWithinRange)
{
    Pcg32 rng(5);
    ZipfSampler zipf(7, 1.2);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.sample(rng), 7u);
}
