/**
 * @file
 * Unit tests for the Stream Training Table (§III-D1): clustering by
 * PID and Δ_stream, history management, LRU replacement, duplicate
 * suppression.
 */

#include <gtest/gtest.h>

#include "hopp/stt.hh"

using namespace hopp;
using namespace hopp::core;

namespace
{

SttConfig
smallCfg(unsigned L = 8, std::size_t entries = 4)
{
    SttConfig c;
    c.historyLen = L;
    c.entries = entries;
    return c;
}

} // namespace

TEST(Stt, ViewAppearsOnceHistoryFills)
{
    Stt stt(smallCfg(8));
    for (std::uint64_t v = 0; v < 7; ++v)
        EXPECT_FALSE(stt.feed(Pid{1}, Vpn{100 + v}).has_value());
    auto view = stt.feed(Pid{1}, Vpn{107});
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->pid, Pid{1});
    EXPECT_EQ(view->vpns->size(), 8u);
    EXPECT_EQ(view->strides->size(), 7u);
    EXPECT_EQ(view->vpnA(), Vpn{107});
    EXPECT_EQ(view->strideA(), 1);
}

TEST(Stt, HistorySlidesAfterFull)
{
    Stt stt(smallCfg(8));
    for (std::uint64_t v = 0; v < 9; ++v)
        stt.feed(Pid{1}, Vpn{100 + v});
    auto view = stt.feed(Pid{1}, Vpn{109});
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->vpns->front(), Vpn{102});
    EXPECT_EQ(view->vpns->back(), Vpn{109});
}

TEST(Stt, DifferentPidsNeverShareStreams)
{
    Stt stt(smallCfg(4));
    stt.feed(Pid{1}, Vpn{100});
    stt.feed(Pid{2}, Vpn{101}); // adjacent VPN but different pid
    stt.feed(Pid{1}, Vpn{102});
    stt.feed(Pid{2}, Vpn{103});
    EXPECT_EQ(stt.liveStreams(), 2u);
}

TEST(Stt, FarVpnSeedsNewStream)
{
    Stt stt(smallCfg(4));
    stt.feed(Pid{1}, Vpn{100});
    stt.feed(Pid{1}, Vpn{100 + 65}); // beyond delta = 64
    EXPECT_EQ(stt.liveStreams(), 2u);
    stt.feed(Pid{1}, Vpn{100 + 64}); // within delta of the first stream
    EXPECT_EQ(stt.liveStreams(), 2u);
    EXPECT_EQ(stt.stats().seeded, 2u);
}

TEST(Stt, ClosestStreamWinsWhenBothMatch)
{
    Stt stt(smallCfg(8));
    stt.feed(Pid{1}, Vpn{100});
    stt.feed(Pid{1}, Vpn{160});     // second stream 60 pages away (within delta!)
    auto before = stt.liveStreams();
    EXPECT_EQ(before, 1u) << "160 clusters into the 100-stream";
    stt.feed(Pid{1}, Vpn{161});
    EXPECT_EQ(stt.liveStreams(), 1u);
}

TEST(Stt, DuplicateVpnIsSuppressed)
{
    Stt stt(smallCfg(4));
    stt.feed(Pid{1}, Vpn{100});
    stt.feed(Pid{1}, Vpn{100});
    stt.feed(Pid{1}, Vpn{100});
    EXPECT_EQ(stt.stats().duplicates, 2u);
    EXPECT_EQ(stt.stats().appended, 0u);
}

TEST(Stt, LruEvictionRecyclesOldestStream)
{
    Stt stt(smallCfg(4, /*entries=*/2));
    stt.feed(Pid{1}, Vpn{100});   // stream A
    stt.feed(Pid{1}, Vpn{1000});  // stream B
    stt.feed(Pid{1}, Vpn{1001});  // touch B
    stt.feed(Pid{1}, Vpn{5000});  // needs a slot: evicts A (LRU)
    EXPECT_EQ(stt.stats().evicted, 1u);
    EXPECT_EQ(stt.liveStreams(), 2u);
    // A's history is gone: feeding near 100 seeds anew, evicting B.
    stt.feed(Pid{1}, Vpn{101});
    EXPECT_EQ(stt.stats().evicted, 2u);
}

TEST(Stt, StreamIdsAreUniquePerGeneration)
{
    Stt stt(smallCfg(4, 2));
    auto fill = [&](Vpn base) {
        std::optional<StreamView> v;
        for (std::uint64_t i = 0; i < 4; ++i)
            v = stt.feed(Pid{1}, base + i);
        return v;
    };
    auto a = fill(Vpn{100});
    ASSERT_TRUE(a.has_value());
    std::uint64_t id_a = a->streamId;
    auto b = fill(Vpn{10000});
    ASSERT_TRUE(b.has_value());
    EXPECT_NE(id_a, b->streamId);
}

TEST(Stt, BackwardStreamsClusterToo)
{
    Stt stt(smallCfg(8));
    std::optional<StreamView> view;
    for (std::uint64_t i = 0; i < 8; ++i)
        view = stt.feed(Pid{1}, Vpn{1000 - i * 2});
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->strideA(), -2);
}
