/**
 * @file
 * Unit tests for the Stream Training Table (§III-D1): clustering by
 * PID and Δ_stream, history management, LRU replacement, duplicate
 * suppression.
 */

#include <gtest/gtest.h>

#include "hopp/stt.hh"

using namespace hopp;
using namespace hopp::core;

namespace
{

SttConfig
smallCfg(unsigned L = 8, std::size_t entries = 4)
{
    SttConfig c;
    c.historyLen = L;
    c.entries = entries;
    return c;
}

} // namespace

TEST(Stt, ViewAppearsOnceHistoryFills)
{
    Stt stt(smallCfg(8));
    for (Vpn v = 0; v < 7; ++v)
        EXPECT_FALSE(stt.feed(1, 100 + v).has_value());
    auto view = stt.feed(1, 107);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->pid, 1);
    EXPECT_EQ(view->vpns->size(), 8u);
    EXPECT_EQ(view->strides->size(), 7u);
    EXPECT_EQ(view->vpnA(), 107u);
    EXPECT_EQ(view->strideA(), 1);
}

TEST(Stt, HistorySlidesAfterFull)
{
    Stt stt(smallCfg(8));
    for (Vpn v = 0; v < 9; ++v)
        stt.feed(1, 100 + v);
    auto view = stt.feed(1, 109);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->vpns->front(), 102u);
    EXPECT_EQ(view->vpns->back(), 109u);
}

TEST(Stt, DifferentPidsNeverShareStreams)
{
    Stt stt(smallCfg(4));
    stt.feed(1, 100);
    stt.feed(2, 101); // adjacent VPN but different pid
    stt.feed(1, 102);
    stt.feed(2, 103);
    EXPECT_EQ(stt.liveStreams(), 2u);
}

TEST(Stt, FarVpnSeedsNewStream)
{
    Stt stt(smallCfg(4));
    stt.feed(1, 100);
    stt.feed(1, 100 + 65); // beyond delta = 64
    EXPECT_EQ(stt.liveStreams(), 2u);
    stt.feed(1, 100 + 64); // within delta of the first stream
    EXPECT_EQ(stt.liveStreams(), 2u);
    EXPECT_EQ(stt.stats().seeded, 2u);
}

TEST(Stt, ClosestStreamWinsWhenBothMatch)
{
    Stt stt(smallCfg(8));
    stt.feed(1, 100);
    stt.feed(1, 160);     // second stream 60 pages away (within delta!)
    auto before = stt.liveStreams();
    EXPECT_EQ(before, 1u) << "160 clusters into the 100-stream";
    stt.feed(1, 161);
    EXPECT_EQ(stt.liveStreams(), 1u);
}

TEST(Stt, DuplicateVpnIsSuppressed)
{
    Stt stt(smallCfg(4));
    stt.feed(1, 100);
    stt.feed(1, 100);
    stt.feed(1, 100);
    EXPECT_EQ(stt.stats().duplicates, 2u);
    EXPECT_EQ(stt.stats().appended, 0u);
}

TEST(Stt, LruEvictionRecyclesOldestStream)
{
    Stt stt(smallCfg(4, /*entries=*/2));
    stt.feed(1, 100);   // stream A
    stt.feed(1, 1000);  // stream B
    stt.feed(1, 1001);  // touch B
    stt.feed(1, 5000);  // needs a slot: evicts A (LRU)
    EXPECT_EQ(stt.stats().evicted, 1u);
    EXPECT_EQ(stt.liveStreams(), 2u);
    // A's history is gone: feeding near 100 seeds anew, evicting B.
    stt.feed(1, 101);
    EXPECT_EQ(stt.stats().evicted, 2u);
}

TEST(Stt, StreamIdsAreUniquePerGeneration)
{
    Stt stt(smallCfg(4, 2));
    auto fill = [&](Vpn base) {
        std::optional<StreamView> v;
        for (Vpn i = 0; i < 4; ++i)
            v = stt.feed(1, base + i);
        return v;
    };
    auto a = fill(100);
    ASSERT_TRUE(a.has_value());
    std::uint64_t id_a = a->streamId;
    auto b = fill(10000);
    ASSERT_TRUE(b.has_value());
    EXPECT_NE(id_a, b->streamId);
}

TEST(Stt, BackwardStreamsClusterToo)
{
    Stt stt(smallCfg(8));
    std::optional<StreamView> view;
    for (int i = 0; i < 8; ++i)
        view = stt.feed(1, 1000 - i * 2);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->strideA(), -2);
}
