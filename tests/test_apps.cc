/**
 * @file
 * Tests for the application models (Table IV): registry completeness,
 * footprint accounting, determinism, and pattern-class sanity (the
 * access streams stay within the declared footprints).
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/apps.hh"

using namespace hopp;
using namespace hopp::workloads;

namespace
{

WorkloadScale
tiny()
{
    WorkloadScale s;
    s.footprint = 0.05;
    s.iterations = 0.25;
    return s;
}

std::uint64_t
drain(AccessGenerator &gen, std::set<Vpn> *pages = nullptr,
      std::uint64_t cap = 50'000'000)
{
    Access a;
    std::uint64_t n = 0;
    while (n < cap && gen.next(a)) {
        ++n;
        if (pages)
            pages->insert(pageOf(a.va));
    }
    return n;
}

} // namespace

TEST(Apps, RegistryHasFourteenAppsPlusMicrobench)
{
    EXPECT_EQ(allWorkloadNames().size(), 14u);
    EXPECT_EQ(nonJvmWorkloadNames().size(), 8u);
    EXPECT_EQ(sparkWorkloadNames().size(), 6u);
    // Every name resolves.
    for (const auto &n : allWorkloadNames())
        EXPECT_FALSE(makeWorkload(n, tiny()).threads.empty()) << n;
    EXPECT_FALSE(makeWorkload("microbench", tiny()).threads.empty());
}

TEST(AppsDeath, UnknownNameIsFatal)
{
    EXPECT_DEATH(makeWorkload("nonsense"), "unknown workload");
}

TEST(Apps, JvmFlagMatchesGrouping)
{
    for (const auto &n : nonJvmWorkloadNames())
        EXPECT_FALSE(makeWorkload(n, tiny()).jvm) << n;
    for (const auto &n : sparkWorkloadNames())
        EXPECT_TRUE(makeWorkload(n, tiny()).jvm) << n;
}

TEST(Apps, EveryThreadTerminatesAndProducesAccesses)
{
    for (const auto &name : allWorkloadNames()) {
        Workload w = makeWorkload(name, tiny());
        for (std::size_t t = 0; t < w.threads.size(); ++t) {
            auto gen = w.threads[t]();
            std::uint64_t n = drain(*gen);
            EXPECT_GT(n, 100u) << name << " thread " << t;
            EXPECT_LT(n, 50'000'000u) << name << " thread " << t;
        }
    }
}

TEST(Apps, DistinctPagesStayNearDeclaredFootprint)
{
    for (const auto &name : allWorkloadNames()) {
        Workload w = makeWorkload(name, tiny());
        std::set<Vpn> pages;
        for (const auto &make : w.threads) {
            auto gen = make();
            drain(*gen, &pages);
        }
        EXPECT_LE(pages.size(), w.footprintPages * 5 / 4)
            << name << " exceeds declared footprint";
        // Loose lower bound: random-run workloads only sample their
        // regions at tiny scales.
        EXPECT_GE(pages.size(), w.footprintPages / 10)
            << name << " far below declared footprint";
    }
}

TEST(Apps, GeneratorsAreDeterministicPerSeed)
{
    Workload w1 = makeWorkload("graphx-pr", tiny(), 7);
    Workload w2 = makeWorkload("graphx-pr", tiny(), 7);
    auto g1 = w1.threads[0]();
    auto g2 = w2.threads[0]();
    Access a1, a2;
    for (int i = 0; i < 10000; ++i) {
        bool ok1 = g1->next(a1);
        bool ok2 = g2->next(a2);
        ASSERT_EQ(ok1, ok2);
        if (!ok1)
            break;
        ASSERT_EQ(a1.va, a2.va);
    }
}

TEST(Apps, SeedsChangeIrregularWorkloads)
{
    auto g1 = makeWorkload("spark-bayes", tiny(), 1).threads[0]();
    auto g2 = makeWorkload("spark-bayes", tiny(), 2).threads[0]();
    Access a1, a2;
    int differs = 0;
    for (int i = 0; i < 5000; ++i) {
        if (!g1->next(a1) || !g2->next(a2))
            break;
        differs += a1.va != a2.va;
    }
    EXPECT_GT(differs, 0);
}

TEST(Apps, ScaleShrinksFootprintAndAccesses)
{
    WorkloadScale big = tiny();
    big.footprint *= 4;
    Workload small = makeWorkload("kmeans-omp", tiny());
    Workload large = makeWorkload("kmeans-omp", big);
    EXPECT_GT(large.footprintPages, small.footprintPages * 3);
}

TEST(Apps, ThreadsUseDisjointPrimaryRegions)
{
    Workload w = makeWorkload("npb-ft", tiny());
    ASSERT_EQ(w.threads.size(), 2u);
    std::set<Vpn> p0, p1;
    auto g0 = w.threads[0]();
    auto g1 = w.threads[1]();
    drain(*g0, &p0);
    drain(*g1, &p1);
    for (Vpn v : p0)
        EXPECT_EQ(p1.count(v), 0u);
}
