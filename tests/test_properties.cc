/**
 * @file
 * Property-based, parameterized sweeps (TEST_P) over the whole machine
 * and the core components:
 *
 *  - every workload x every system: metric ranges, accounting
 *    conservation, cgroup-limit invariants, determinism;
 *  - HPD threshold sweep: the Table II ratio is monotone in N;
 *  - policy alpha sweep: offsets converge inside the band.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "hopp/policy.hh"
#include "runner/machine.hh"

using namespace hopp;
using namespace hopp::runner;

namespace
{

workloads::WorkloadScale
tiny()
{
    workloads::WorkloadScale s;
    s.footprint = 0.08;
    s.iterations = 0.25;
    return s;
}

} // namespace

// ---------------------------------------------------------------------
// Workload x system sweep
// ---------------------------------------------------------------------

class MachineProperty
    : public ::testing::TestWithParam<std::tuple<std::string, SystemKind>>
{
};

TEST_P(MachineProperty, InvariantsHold)
{
    const auto &[workload, system] = GetParam();
    MachineConfig cfg;
    cfg.system = system;
    cfg.localMemRatio = 0.5;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload(workload, tiny()));
    auto r = m.run();

    // Metric ranges.
    EXPECT_GE(r.accuracy, 0.0);
    EXPECT_LE(r.accuracy, 1.0 + 1e-9);
    EXPECT_GE(r.coverage, 0.0);
    EXPECT_LE(r.coverage, 1.0 + 1e-9);
    EXPECT_LE(r.dramHitCoverage, r.coverage + 1e-9);
    EXPECT_GT(r.makespan, Tick{});

    // The cgroup never exceeds its limit.
    EXPECT_LE(m.vms().cgroup(Pid{1}).charged(),
              m.vms().cgroup(Pid{1}).limit());

    // Frame accounting: used frames equal pages holding DRAM.
    auto &pt = m.vms().pageTable();
    std::size_t in_dram = pt.countState(vm::PageState::Resident) +
                          pt.countState(vm::PageState::SwapCached);
    EXPECT_EQ(m.dram().usedFrames(), in_dram);

    // Fault taxonomy covers every fault.
    EXPECT_EQ(r.vms.faults(), r.vms.coldFaults + r.vms.remoteFaults +
                                  r.vms.swapCacheHits +
                                  r.vms.inflightWaits);

    // Remote demand reads equal remote faults.
    EXPECT_EQ(r.demandRemote, r.vms.remoteFaults);
}

TEST_P(MachineProperty, DeterministicAcrossRuns)
{
    const auto &[workload, system] = GetParam();
    auto a = runOne(workload, system, 0.5, tiny());
    auto b = runOne(workload, system, 0.5, tiny());
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.vms.faults(), b.vms.faults());
    EXPECT_EQ(a.prefetchReads, b.prefetchReads);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, MachineProperty,
    ::testing::Combine(
        ::testing::Values("kmeans-omp", "quicksort", "hpl", "npb-cg",
                          "npb-ft", "npb-lu", "npb-mg", "npb-is",
                          "graphx-pr", "spark-kmeans", "spark-bayes"),
        ::testing::Values(SystemKind::NoPrefetch, SystemKind::Fastswap,
                          SystemKind::Leap, SystemKind::DepthN,
                          SystemKind::Hopp)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param) + "_" +
                        systemName(std::get<1>(info.param));
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// Access counts must not depend on the system under test.
class WorkloadConservation
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadConservation, SameAccessesUnderEverySystem)
{
    std::uint64_t baseline =
        runOne(GetParam(), SystemKind::Local, 1.0, tiny()).vms.accesses;
    for (auto sys : {SystemKind::Fastswap, SystemKind::Hopp}) {
        EXPECT_EQ(runOne(GetParam(), sys, 0.5, tiny()).vms.accesses,
                  baseline)
            << systemName(sys);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadConservation,
    ::testing::Values("kmeans-omp", "quicksort", "hpl", "npb-cg",
                      "npb-ft", "npb-lu", "npb-mg", "npb-is",
                      "graphx-pr", "graphx-cc", "graphx-bfs",
                      "graphx-lp", "spark-kmeans", "spark-bayes"),
    [](const auto &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// Memory-ratio monotonicity: less local memory never helps.
// ---------------------------------------------------------------------

class RatioMonotonicity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RatioMonotonicity, TighterMemoryNeverFaster)
{
    auto r50 = runOne(GetParam(), SystemKind::Fastswap, 0.5, tiny());
    auto r25 = runOne(GetParam(), SystemKind::Fastswap, 0.25, tiny());
    // At this tiny scale the 25% limit clamps to the 64-frame floor,
    // leaving the two limits close; allow generous layout noise.
    EXPECT_GE(static_cast<double>(r25.makespan - Tick{}) * 1.06,
              static_cast<double>(r50.makespan - Tick{}));
    EXPECT_GE(r25.vms.remoteFaults + r25.vms.swapCacheHits +
                  r25.vms.inflightWaits,
              r50.vms.remoteFaults);
}

INSTANTIATE_TEST_SUITE_P(
    Streams, RatioMonotonicity,
    ::testing::Values("kmeans-omp", "quicksort", "npb-cg", "npb-is"),
    [](const auto &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// HPD threshold sweep (Table II property, end to end)
// ---------------------------------------------------------------------

class HpdThresholdSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HpdThresholdSweep, RatioBoundedByInverseThreshold)
{
    unsigned n = GetParam();
    MachineConfig cfg;
    cfg.system = SystemKind::HoppOnly;
    cfg.localMemRatio = 1.2;
    cfg.hopp.hpd.threshold = n;
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("kmeans-omp", tiny()));
    m.run();
    const auto &s = m.hoppSystem()->hpd().stats();
    EXPECT_GT(s.hotPages, 0u);
    // At most one extraction per N reads of a page.
    EXPECT_LE(s.hotRatio(), 1.0 / n + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, HpdThresholdSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

// ---------------------------------------------------------------------
// Policy alpha sweep
// ---------------------------------------------------------------------

class PolicyAlphaSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(PolicyAlphaSweep, OffsetStaysClampedUnderAnyFeedback)
{
    core::PolicyConfig cfg;
    cfg.alpha = GetParam();
    cfg.adjustEpoch = 1;
    core::PolicyEngine pe(cfg);
    Pcg32 rng(7);
    for (int i = 0; i < 2000; ++i) {
        Tick ready{rng.below(1000) * 1000ull};
        Tick hit = ready + rng.below64(10'000'000);
        pe.feedback(1, ready, hit);
        double off = pe.offsetOf(1);
        ASSERT_GE(off, 1.0);
        ASSERT_LE(off, cfg.offsetMax);
    }
}

TEST_P(PolicyAlphaSweep, ConsistentlyLateFeedbackReachesMax)
{
    core::PolicyConfig cfg;
    cfg.alpha = GetParam();
    cfg.adjustEpoch = 1;
    core::PolicyEngine pe(cfg);
    for (int i = 0; i < 200; ++i)
        pe.feedback(1, Tick{1000}, Tick{1000}); // T == 0: always late
    EXPECT_DOUBLE_EQ(pe.offsetOf(1), cfg.offsetMax);
}

INSTANTIATE_TEST_SUITE_P(Alphas, PolicyAlphaSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.5));
