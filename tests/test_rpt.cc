/**
 * @file
 * Unit tests for the Reverse Page Table and its MC cache (§III-C):
 * lookups, maintenance hooks, lazy write-back, tombstones and the
 * Table III / Table V accounting.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "hopp/rpt.hh"

using namespace hopp;
using namespace hopp::core;

namespace
{

struct RptFixture : ::testing::Test
{
    mem::Dram dram{64};
    Rpt rpt;

    RptCacheConfig
    smallCache(std::uint64_t bytes = 1024)
    {
        RptCacheConfig c;
        c.capacityBytes = bytes;
        return c;
    }
};

} // namespace

TEST_F(RptFixture, RptStoreLoadErase)
{
    rpt.store(Ppn{5}, RptEntry{Pid{3}, Vpn{0x123}, true, 1});
    auto e = rpt.load(Ppn{5});
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->pid, Pid{3});
    EXPECT_EQ(e->vpn, Vpn{0x123});
    EXPECT_TRUE(e->shared);
    EXPECT_EQ(e->hugeBits, 1);
    rpt.erase(Ppn{5});
    EXPECT_FALSE(rpt.load(Ppn{5}).has_value());
}

TEST_F(RptFixture, RptBytesAre8PerEntry)
{
    rpt.store(Ppn{1}, {});
    rpt.store(Ppn{2}, {});
    EXPECT_EQ(rpt.bytes(), 16u);
}

TEST_F(RptFixture, CacheMissReadsDramThenHits)
{
    rpt.store(Ppn{7}, RptEntry{Pid{1}, Vpn{0x700}});
    RptCache cache(rpt, dram, smallCache());
    auto e = cache.lookup(Ppn{7});
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->vpn, Vpn{0x700});
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(dram.traffic(mem::TrafficSource::RptQuery), 64u);
    cache.lookup(Ppn{7});
    EXPECT_EQ(cache.stats().hits, 1u);
    // The hit consumed no DRAM bandwidth.
    EXPECT_EQ(dram.traffic(mem::TrafficSource::RptQuery), 64u);
}

TEST_F(RptFixture, UpdateServesLookupWithoutDram)
{
    RptCache cache(rpt, dram, smallCache());
    cache.update(Ppn{9}, RptEntry{Pid{2}, Vpn{0x900}});
    auto e = cache.lookup(Ppn{9});
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->pid, Pid{2});
    EXPECT_EQ(cache.stats().hits, 1u);
    // Lazy write-back: DRAM RPT not yet updated.
    EXPECT_FALSE(rpt.load(Ppn{9}).has_value());
}

TEST_F(RptFixture, DirtyEvictionWritesBackToDram)
{
    // 1 KB / 8 B = 128 entries, 16 ways -> 8 sets. Flood one set.
    RptCache cache(rpt, dram, smallCache(1024));
    for (std::uint64_t p = 0; p < 8 * 17; p += 8)
        cache.update(Ppn{p}, RptEntry{Pid{1}, Vpn{0x1000 + p}});
    EXPECT_GT(cache.stats().writebacks, 0u);
    EXPECT_GT(dram.traffic(mem::TrafficSource::RptUpdate), 0u);
    // The evicted entry (ppn 0, the LRU) landed in the DRAM RPT.
    auto e = rpt.load(Ppn{0});
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->vpn, Vpn{0x1000});
}

TEST_F(RptFixture, InvalidateMakesLookupUnknown)
{
    RptCache cache(rpt, dram, smallCache());
    cache.update(Ppn{4}, RptEntry{Pid{1}, Vpn{0x400}});
    cache.invalidate(Ppn{4});
    EXPECT_FALSE(cache.lookup(Ppn{4}).has_value());
    EXPECT_EQ(cache.stats().invalidates, 1u);
}

TEST_F(RptFixture, InvalidateWritesThroughToDram)
{
    rpt.store(Ppn{3}, RptEntry{Pid{1}, Vpn{0x300}});
    RptCache cache(rpt, dram, smallCache(1024));
    cache.invalidate(Ppn{3});
    EXPECT_FALSE(rpt.load(Ppn{3}).has_value())
        << "invalidate must erase the stale DRAM entry immediately";
    EXPECT_GT(dram.traffic(mem::TrafficSource::RptUpdate), 0u);
}

TEST_F(RptFixture, UnknownPpnCountsUnmapped)
{
    RptCache cache(rpt, dram, smallCache());
    EXPECT_FALSE(cache.lookup(Ppn{42}).has_value());
    EXPECT_EQ(cache.stats().missUnmapped, 1u);
}

TEST_F(RptFixture, DefaultGeometryIs64KB16Way)
{
    RptCache cache(rpt, dram, RptCacheConfig{});
    EXPECT_EQ(cache.capacityEntries(), (64u << 10) / 8);
}

TEST_F(RptFixture, HitRateImprovesWithCacheSize)
{
    // Table III property: bigger cache, better hit rate, on a
    // working set with reuse spread over more pages than a tiny
    // cache can hold.
    auto run = [&](std::uint64_t bytes) {
        mem::Dram d(64);
        Rpt r;
        for (std::uint64_t p = 0; p < 4096; ++p)
            r.store(Ppn{p}, RptEntry{Pid{1}, Vpn{p}});
        RptCache cache(r, d, [&] {
            RptCacheConfig c;
            c.capacityBytes = bytes;
            return c;
        }());
        // Skewed reuse: hot head + long tail, so capacity gradually
        // captures more of the reuse set (cyclic scans would defeat
        // LRU at every size below the working set).
        Pcg32 rng(9);
        ZipfSampler zipf(2048, 0.9);
        for (int i = 0; i < 40000; ++i)
            cache.lookup(Ppn{zipf.sample(rng)});
        return cache.stats().hitRate();
    };
    double small = run(1 << 10);
    double medium = run(4 << 10);
    double large = run(16 << 10);
    EXPECT_LT(small, medium);
    EXPECT_LT(medium, large);
    EXPECT_GT(large, 0.9);
}
