/**
 * @file
 * Tests for multi-channel memory-controller support (§III-B "impact
 * of multiple memory channels"): access routing, per-channel HPD
 * extraction, threshold scaling under interleaving, RPT maintenance
 * fan-out, and end-to-end equivalence of prefetch quality.
 */

#include <gtest/gtest.h>

#include "hopp/hopp_system.hh"
#include "runner/machine.hh"

using namespace hopp;
using namespace hopp::core;
using namespace hopp::runner;

namespace
{

MachineConfig
channelCfg(unsigned channels, bool interleaved)
{
    MachineConfig cfg;
    cfg.system = SystemKind::HoppOnly;
    cfg.localMemRatio = 0.5;
    cfg.hopp.channels = channels;
    cfg.hopp.channelInterleaved = interleaved;
    return cfg;
}

} // namespace

TEST(Channels, SingleChannelRoutesEverythingToChannelZero)
{
    Machine m(channelCfg(1, true));
    m.addWorkload(workloads::makeWorkload("kmeans-omp",
                                          {0.08, 0.25}));
    m.run();
    auto *h = m.hoppSystem();
    EXPECT_EQ(h->channelOf(PhysAddr{0x0}), 0u);
    EXPECT_EQ(h->channelOf(PhysAddr{0xFFFFFF}), 0u);
    EXPECT_GT(h->hpd(0).stats().reads, 0u);
}

TEST(Channels, InterleavedRoutingIsLineGranular)
{
    Machine m(channelCfg(4, true));
    m.addWorkload(workloads::makeWorkload("kmeans-omp",
                                          {0.08, 0.25}));
    m.prepare();
    auto *h = m.hoppSystem();
    // Consecutive lines round-robin channels.
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(h->channelOf(PhysAddr{i * lineBytes}), i % 4);
    // Lines of one page spread over all channels.
    EXPECT_NE(h->channelOf(pageBase(Ppn{5})),
              h->channelOf(pageBase(Ppn{5}) + lineBytes));
}

TEST(Channels, NonInterleavedRoutingIsPageGranular)
{
    Machine m(channelCfg(4, false));
    m.addWorkload(workloads::makeWorkload("kmeans-omp",
                                          {0.08, 0.25}));
    m.prepare();
    auto *h = m.hoppSystem();
    for (unsigned line = 0; line < 64; ++line) {
        EXPECT_EQ(h->channelOf(pageBase(Ppn{5}) + line * lineBytes),
                  h->channelOf(pageBase(Ppn{5})));
    }
    EXPECT_NE(h->channelOf(pageBase(Ppn{4})), h->channelOf(pageBase(Ppn{5})));
}

TEST(Channels, InterleavedScalesThresholdDown)
{
    Machine m(channelCfg(4, true));
    m.addWorkload(workloads::makeWorkload("kmeans-omp",
                                          {0.08, 0.25}));
    m.prepare();
    // Default N = 8 / 4 channels = 2 per channel.
    EXPECT_EQ(m.hoppSystem()->hpd(0).config().threshold, 2u);

    Machine m2(channelCfg(4, false));
    m2.addWorkload(workloads::makeWorkload("kmeans-omp",
                                           {0.08, 0.25}));
    m2.prepare();
    EXPECT_EQ(m2.hoppSystem()->hpd(0).config().threshold, 8u);
}

TEST(Channels, AllChannelsSeeTrafficUnderInterleaving)
{
    Machine m(channelCfg(4, true));
    m.addWorkload(workloads::makeWorkload("kmeans-omp",
                                          {0.08, 0.25}));
    m.run();
    auto *h = m.hoppSystem();
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_GT(h->hpd(c).stats().reads, 100u) << "channel " << c;
        EXPECT_GT(h->hpd(c).stats().hotPages, 0u) << "channel " << c;
    }
}

TEST(Channels, CoverageComparableAcrossChannelConfigs)
{
    // §III-B claims the design keeps working across channel layouts
    // (repeats deduplicated / outputs merged in the framework).
    double base = 0;
    for (auto [channels, inter] :
         {std::pair{1u, true}, {4u, true}, {4u, false}}) {
        Machine m(channelCfg(channels, inter));
        m.addWorkload(workloads::makeWorkload("kmeans-omp",
                                              {0.25, 0.5}));
        auto r = m.run();
        if (base == 0)
            base = r.coverage;
        EXPECT_NEAR(r.coverage, base, 0.15)
            << channels << (inter ? " interleaved" : " split");
        EXPECT_GT(r.dramHitCoverage, 0.2);
    }
}

TEST(Channels, HpdTotalsAggregateAllChannels)
{
    Machine m(channelCfg(4, true));
    m.addWorkload(workloads::makeWorkload("kmeans-omp",
                                          {0.08, 0.25}));
    m.run();
    auto *h = m.hoppSystem();
    std::uint64_t sum = 0;
    for (unsigned c = 0; c < 4; ++c)
        sum += h->hpd(c).stats().reads;
    EXPECT_EQ(h->hpdTotals().reads, sum);
    EXPECT_GT(sum, 0u);
}

TEST(ChannelsDeath, NonPowerOfTwoChannelsRejected)
{
    MachineConfig cfg = channelCfg(3, true);
    Machine m(cfg);
    m.addWorkload(workloads::makeWorkload("kmeans-omp",
                                          {0.08, 0.25}));
    EXPECT_DEATH(m.run(), "power of two");
}
