/**
 * @file
 * Access-stream abstraction for the synthetic application models.
 *
 * Workloads are streaming generators of virtual-address accesses at
 * cacheline granularity; they are never materialised, so footprints and
 * iteration counts can be large. Composition (phases, interleaving,
 * limits) happens through combinator generators.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace hopp::workloads
{

/** One application memory access. */
struct Access
{
    VirtAddr va;
    bool write = false;
};

/**
 * Streaming access generator. next() produces the following access or
 * returns false at the end of the workload.
 */
class AccessGenerator
{
  public:
    virtual ~AccessGenerator() = default;

    /** Produce the next access. @return false at end-of-stream. */
    virtual bool next(Access &out) = 0;

    /**
     * Fill @p out with up to @p n accesses and return how many were
     * produced. A short count means end-of-stream: every later call
     * returns 0. The sequence is exactly what repeated next() calls
     * would produce (the batched pump relies on that; the randomized
     * oracle test test_generator_batch.cc enforces it). The default
     * loops the virtual next(); concrete generators override with a
     * devirtualized tight loop.
     */
    virtual std::size_t
    nextBatch(Access *out, std::size_t n)
    {
        std::size_t i = 0;
        while (i < n && next(out[i]))
            ++i;
        return i;
    }

    /** Restart from the beginning (same sequence). */
    virtual void reset() = 0;
};

/** Owning pointer alias used throughout the workload library. */
using GeneratorPtr = std::unique_ptr<AccessGenerator>;

/**
 * Run several generators one after another (application phases, e.g.
 * the GraphX job whose footprint grows in thirds, §VI).
 */
class PhasedGen : public AccessGenerator
{
  public:
    explicit PhasedGen(std::vector<GeneratorPtr> phases)
        : phases_(std::move(phases))
    {
    }

    bool
    next(Access &out) override
    {
        while (idx_ < phases_.size()) {
            if (phases_[idx_]->next(out))
                return true;
            ++idx_;
        }
        return false;
    }

    std::size_t
    nextBatch(Access *out, std::size_t n) override
    {
        std::size_t filled = 0;
        while (filled < n && idx_ < phases_.size()) {
            filled += phases_[idx_]->nextBatch(out + filled, n - filled);
            // A short sub-fill means the phase ended; a full block may
            // leave an exactly-drained phase current, which the next
            // call advances past (same as next()'s lazy hand-over).
            if (filled < n)
                ++idx_;
        }
        return filled;
    }

    void
    reset() override
    {
        for (auto &p : phases_)
            p->reset();
        idx_ = 0;
    }

  private:
    std::vector<GeneratorPtr> phases_;
    std::size_t idx_ = 0;
};

/**
 * Round-robin burst interleaving of several sub-streams, modelling
 * intra-thread mixing of concurrent access streams (§II-B's motivating
 * scenario: multiple page streams accessed alternately).
 */
class InterleaveGen : public AccessGenerator
{
  public:
    /** @param burst accesses taken from one sub-stream per turn. */
    InterleaveGen(std::vector<GeneratorPtr> subs, unsigned burst)
        : subs_(std::move(subs)), burst_(burst ? burst : 1)
    {
        done_.assign(subs_.size(), false);
    }

    bool
    next(Access &out) override
    {
        std::size_t tried = 0;
        while (tried < subs_.size()) {
            if (!done_[cur_]) {
                if (subs_[cur_]->next(out)) {
                    if (++taken_ >= burst_)
                        advance();
                    return true;
                }
                done_[cur_] = true;
            }
            advance();
            ++tried;
        }
        return false;
    }

    std::size_t
    nextBatch(Access *out, std::size_t n) override
    {
        std::size_t filled = 0;
        std::size_t tried = 0;
        while (filled < n && tried < subs_.size()) {
            if (done_[cur_]) {
                advance();
                ++tried;
                continue;
            }
            // Never ask for more than the rest of the current burst:
            // taken_ then stays below burst_, exactly as with next().
            std::size_t want = std::min<std::size_t>(
                n - filled, burst_ - taken_);
            std::size_t got = subs_[cur_]->nextBatch(out + filled, want);
            filled += got;
            if (got > 0)
                tried = 0; // progress restarts the all-done probe
            if (got < want) {
                // Sub-stream ran dry mid-burst.
                done_[cur_] = true;
                advance();
                ++tried;
            } else {
                taken_ += static_cast<unsigned>(got);
                if (taken_ >= burst_)
                    advance();
            }
        }
        return filled;
    }

    void
    reset() override
    {
        for (auto &s : subs_)
            s->reset();
        done_.assign(subs_.size(), false);
        cur_ = 0;
        taken_ = 0;
    }

  private:
    void
    advance()
    {
        cur_ = (cur_ + 1) % subs_.size();
        taken_ = 0;
    }

    std::vector<GeneratorPtr> subs_;
    std::vector<bool> done_;
    unsigned burst_;
    std::size_t cur_ = 0;
    unsigned taken_ = 0;
};

/** Truncate a generator after a fixed number of accesses. */
class LimitGen : public AccessGenerator
{
  public:
    LimitGen(GeneratorPtr inner, std::uint64_t limit)
        : inner_(std::move(inner)), limit_(limit)
    {
    }

    bool
    next(Access &out) override
    {
        if (count_ >= limit_ || !inner_->next(out))
            return false;
        ++count_;
        return true;
    }

    std::size_t
    nextBatch(Access *out, std::size_t n) override
    {
        std::uint64_t room = limit_ - count_;
        if (room == 0)
            return 0; // like next(): the inner generator is not probed
        std::size_t want =
            n < room ? n : static_cast<std::size_t>(room);
        std::size_t got = inner_->nextBatch(out, want);
        count_ += got;
        return got;
    }

    void
    reset() override
    {
        inner_->reset();
        count_ = 0;
    }

  private:
    GeneratorPtr inner_;
    std::uint64_t limit_;
    std::uint64_t count_ = 0;
};

} // namespace hopp::workloads

