/**
 * @file
 * Access-pattern primitives matching the paper's stream taxonomy
 * (§II-B): simple streams (fixed page stride), ladder streams
 * (repetitive tread + rise, e.g. blocked matrix kernels), ripple
 * streams (stride-1 distorted by out-of-order and cross-stream hops),
 * plus irregular building blocks (zipf gathers, hot/cold, short runs)
 * used by the application models.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "workloads/generator.hh"

namespace hopp::workloads
{

/**
 * Simple stream: scan a region of pages with a fixed page stride,
 * touching a configurable number of lines per page, repeated for a
 * number of passes.
 */
class SequentialScan : public AccessGenerator
{
  public:
    struct Params
    {
        VirtAddr base;
        std::uint64_t pages = 1;      //!< region length in pages
        std::int64_t pageStride = 1;  //!< stride between visited pages
        unsigned linesPerPage = 64;   //!< lines touched per page visit
        unsigned passes = 1;          //!< full scans of the region
        bool write = false;
        bool backward = false;        //!< scan from the top down
    };

    explicit SequentialScan(const Params &p);

    bool next(Access &out) override;
    std::size_t nextBatch(Access *out, std::size_t n) override;
    void reset() override;

  private:
    Params p_;
    std::uint64_t visits_;   // page visits per pass
    std::uint64_t visit_ = 0;
    unsigned line_ = 0;
    unsigned pass_ = 0;
};

/**
 * Ladder stream (paper Fig. 2): repeated treads of consecutive pages
 * followed by a rise to the next repetition, as blocked matrix kernels
 * (HPL) produce.
 */
class LadderGen : public AccessGenerator
{
  public:
    struct Params
    {
        VirtAddr base;
        std::uint64_t treadPages = 4;  //!< pages touched per tread
        std::uint64_t risePages = 32;  //!< page distance between treads
        std::uint64_t treads = 16;     //!< treads per pass
        unsigned linesPerPage = 64;
        unsigned passes = 1;

        /**
         * Visit tread pages in cross-stream order (even offsets, then
         * odd), as Fig. 2's "concentrated accesses across streams": the
         * within-tread strides then vary, so no dominant stride exists
         * and only LSP identifies the pattern.
         */
        bool crossStream = false;
    };

    explicit LadderGen(const Params &p) : p_(p) {}

    bool next(Access &out) override;
    std::size_t nextBatch(Access *out, std::size_t n) override;
    void reset() override;

  private:
    Params p_;
    std::uint64_t tread_ = 0;
    // Footprint-relative page cursor, not a VPN. hopp-lint: allow(raw-int-addr)
    std::uint64_t page_ = 0;
    unsigned line_ = 0;
    unsigned pass_ = 0;
};

/**
 * Ripple stream (paper Fig. 3): net stride-1 progress distorted by
 * bounded out-of-order hops and cross-stream excursions, as stencil /
 * multigrid kernels (NPB-MG) produce.
 */
class RippleGen : public AccessGenerator
{
  public:
    struct Params
    {
        VirtAddr base;
        std::uint64_t pages = 64;
        unsigned linesPerPage = 16;
        unsigned passes = 1;
        /** Max |hop| in pages around the advancing front. */
        unsigned jitter = 2;
        /** Probability of an out-of-order hop at each page step. */
        double hopChance = 0.4;
        std::uint64_t seed = 1;
    };

    explicit RippleGen(const Params &p) : p_(p), rng_(p.seed) {}

    bool next(Access &out) override;
    std::size_t nextBatch(Access *out, std::size_t n) override;
    void reset() override;

  private:
    Params p_;
    Pcg32 rng_;
    std::uint64_t front_ = 0;
    unsigned line_ = 0;
    unsigned pass_ = 0;
    std::int64_t pendingHop_ = 0;
};

/**
 * Sequential scan of an index region with probabilistic zipf-skewed
 * gathers into a target region — graph edge traversal (GraphX) and
 * sparse mat-vec (NPB-CG) shape.
 */
class GatherGen : public AccessGenerator
{
  public:
    struct Params
    {
        VirtAddr seqBase;
        std::uint64_t seqPages = 64;
        unsigned seqLinesPerPage = 64;
        VirtAddr targetBase;
        std::uint64_t targetPages = 64;
        /** Gather accesses per sequential line access. */
        double gatherPerLine = 0.5;
        double zipfTheta = 0.8;
        unsigned passes = 1;

        /**
         * Replay the same gather sequence every pass, as iterating
         * over a fixed edge list / sparse matrix does. Correlation
         * (Markov) prefetching can learn such repeats from the full
         * trace; fault-only history cannot.
         */
        bool fixedSequence = true;
        std::uint64_t seed = 1;
    };

    explicit GatherGen(const Params &p);

    bool next(Access &out) override;
    std::size_t nextBatch(Access *out, std::size_t n) override;
    void reset() override;

  private:
    Params p_;
    Pcg32 rng_;
    ZipfSampler zipf_;
    // Footprint-relative page cursor, not a VPN. hopp-lint: allow(raw-int-addr)
    std::uint64_t page_ = 0;
    unsigned line_ = 0;
    unsigned pass_ = 0;
    double gatherDebt_ = 0.0;
    bool pendingReset_ = false; //!< fixed-sequence rng reset deferred
                                //!< until the old pass's gathers drain
};

/**
 * Zipf-popularity random page accesses: hot/cold irregular traffic
 * with no stream structure (interference, §II-B limitation 3).
 */
class HotColdGen : public AccessGenerator
{
  public:
    struct Params
    {
        VirtAddr base;
        std::uint64_t pages = 64;
        std::uint64_t accesses = 1024;
        double zipfTheta = 0.9;
        unsigned linesPerVisit = 4;
        std::uint64_t seed = 1;
    };

    explicit HotColdGen(const Params &p);

    bool next(Access &out) override;
    std::size_t nextBatch(Access *out, std::size_t n) override;
    void reset() override;

  private:
    Params p_;
    Pcg32 rng_;
    ZipfSampler zipf_;
    std::uint64_t count_ = 0;
    // Footprint-relative page cursor, not a VPN. hopp-lint: allow(raw-int-addr)
    std::uint64_t page_ = 0;
    unsigned line_ = 0;
};

/**
 * Short sequential runs at random offsets with periodic full-region
 * scan bursts — the JVM/Spark allocation-area + GC shape (§VI-B: many
 * short streams; repetitive patterns stop before identification).
 */
class ShortRunsGen : public AccessGenerator
{
  public:
    struct Params
    {
        VirtAddr base;
        std::uint64_t pages = 256;
        std::uint64_t runs = 64;
        std::uint64_t runPagesMin = 4;
        std::uint64_t runPagesMax = 24;
        unsigned linesPerPage = 32;
        /** Every gcEvery runs, scan a fraction of the region (GC). */
        std::uint64_t gcEvery = 16;
        double gcFraction = 0.5;

        /**
         * Run starts are aligned to this many pages, as JVM
         * allocation buffers (TLABs) are slab-aligned; with 64-page
         * slabs, consecutive runs land outside HoPP's Δ_stream
         * clustering window, so short streams end cleanly instead of
         * polluting a merged stream.
         */
        std::uint64_t alignPages = 64;
        std::uint64_t seed = 1;
    };

    explicit ShortRunsGen(const Params &p) : p_(p), rng_(p.seed) {}

    bool next(Access &out) override;
    std::size_t nextBatch(Access *out, std::size_t n) override;
    void reset() override;

  private:
    void startRun();

    Params p_;
    Pcg32 rng_;
    std::uint64_t run_ = 0;
    std::uint64_t runStart_ = 0;
    std::uint64_t runLen_ = 0;
    // Footprint-relative page cursor, not a VPN. hopp-lint: allow(raw-int-addr)
    std::uint64_t page_ = 0;
    unsigned line_ = 0;
    bool inGc_ = false;
    bool started_ = false;
};

/**
 * Pointer chasing over a fixed pseudo-random permutation of pages
 * (linked records, B-tree leaf chains, hash-bucket walks): every pass
 * visits the pages in the same irregular order. No stride detector can
 * cover it; a correlation (Markov) prefetcher trained on the full
 * trace can.
 */
class PermutationGen : public AccessGenerator
{
  public:
    struct Params
    {
        VirtAddr base;
        std::uint64_t pages = 256;
        unsigned linesPerPage = 48;
        unsigned passes = 1;
        std::uint64_t seed = 1;
    };

    explicit PermutationGen(const Params &p);

    bool next(Access &out) override;
    std::size_t nextBatch(Access *out, std::size_t n) override;
    void reset() override;

  private:
    Params p_;
    std::vector<std::uint32_t> order_; // fixed visiting permutation
    std::uint64_t idx_ = 0;
    unsigned line_ = 0;
    unsigned pass_ = 0;
};

/**
 * Quicksort partition traffic: two pointers scanning toward each other
 * (interleaved +1 and -1 page streams), recursing over sub-ranges.
 */
class QuicksortGen : public AccessGenerator
{
  public:
    struct Params
    {
        VirtAddr base;
        std::uint64_t pages = 256;
        std::uint64_t cutoffPages = 8; //!< switch to sequential below
        unsigned linesPerPage = 64;
        std::uint64_t seed = 1;
    };

    explicit QuicksortGen(const Params &p) : p_(p), rng_(p.seed)
    {
        reset();
    }

    bool next(Access &out) override;
    std::size_t nextBatch(Access *out, std::size_t n) override;
    void reset() override;

  private:
    struct Range
    {
        std::uint64_t lo;
        std::uint64_t hi; // exclusive
    };

    Params p_;
    Pcg32 rng_;
    std::vector<Range> stack_;
    // Partition state
    bool partitioning_ = false;
    std::uint64_t left_ = 0, right_ = 0;
    bool fromLeft_ = true;
    unsigned line_ = 0;
    // Sequential (cutoff) state
    bool scanning_ = false;
    // Footprint-relative scan cursor, not a VPN. hopp-lint: allow(raw-int-addr)
    std::uint64_t scanPage_ = 0, scanEnd_ = 0;
    Range cur_{0, 0};
};

} // namespace hopp::workloads

