/**
 * @file
 * The evaluation's application models (paper Table IV), expressed as
 * multi-threaded synthetic access-pattern compositions and scaled from
 * GB-class footprints to tens-of-MB simulator footprints.
 *
 * Each model reproduces the *pattern class* the paper attributes to the
 * application: simple streams (K-means, QuickSort), ladder streams
 * (HPL, NPB-LU), ripple streams (NPB-MG), strided streams (NPB-FT),
 * gather-heavy irregularity (NPB-CG/IS, GraphX), and the JVM-segmented
 * short streams + GC scans of Spark applications (§VI-B).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "workloads/generator.hh"

namespace hopp::workloads
{

/** A multi-threaded workload: one generator factory per thread. */
struct Workload
{
    std::string name;

    /** Total footprint over all threads, in pages. */
    std::uint64_t footprintPages = 0;

    /** JVM-managed (Spark/GraphX) grouping used by the benches. */
    bool jvm = false;

    /** Per-thread generator factories (fresh generator per call). */
    std::vector<std::function<GeneratorPtr()>> threads;
};

/** Uniform scaling knobs applied to every app model. */
struct WorkloadScale
{
    /** Multiplies region sizes (pages). */
    double footprint = 1.0;

    /** Multiplies pass/iteration counts. */
    double iterations = 1.0;
};

/**
 * Build a workload by name.
 * Known names: kmeans-omp quicksort hpl npb-cg npb-ft npb-lu npb-mg
 * npb-is graphx-pr graphx-cc graphx-bfs graphx-lp spark-kmeans
 * spark-bayes microbench. Fatal on unknown names.
 */
Workload makeWorkload(const std::string &name,
                      const WorkloadScale &scale = {},
                      std::uint64_t seed = 42);

/** All application names (excluding the §VI-E microbench). */
std::vector<std::string> allWorkloadNames();

/** The non-JVM programs of Figures 9-11. */
std::vector<std::string> nonJvmWorkloadNames();

/** The Spark/GraphX programs of Figures 12-14. */
std::vector<std::string> sparkWorkloadNames();

} // namespace hopp::workloads

