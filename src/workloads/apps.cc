#include "workloads/apps.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "workloads/patterns.hh"

namespace hopp::workloads
{

namespace
{

/** Heap base of thread t: regions far apart so streams never collide. */
constexpr VirtAddr
threadBase(unsigned t)
{
    return VirtAddr{0x10'0000'0000ull} + t * 0x1'0000'0000ull;
}

/** Scaled page count (minimum 16 to keep generators sane). */
std::uint64_t
sp(const WorkloadScale &s, std::uint64_t pages)
{
    auto v = static_cast<std::uint64_t>(
        static_cast<double>(pages) * s.footprint);
    return std::max<std::uint64_t>(16, v);
}

/** Scaled iteration count (minimum 1). */
unsigned
it(const WorkloadScale &s, unsigned iters)
{
    auto v = static_cast<unsigned>(
        std::lround(static_cast<double>(iters) * s.iterations));
    return std::max(1u, v);
}

// -------------------------------------------------------------------
// Per-application factories. Each returns the generator of thread t.
// -------------------------------------------------------------------

/** OMP K-means: contiguous array, repeated full scans (pure simple
 *  stream), one partition per thread + tiny hot centroid block. */
GeneratorPtr
kmeansOmpThread(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    std::uint64_t part = sp(s, 1024); // pages per thread
    SequentialScan::Params scan;
    scan.base = threadBase(t);
    scan.pages = part;
    scan.passes = it(s, 8);
    scan.linesPerPage = 64;
    HotColdGen::Params cent;
    cent.base = threadBase(16); // shared centroid block
    cent.pages = 16;
    cent.accesses = part * scan.passes / 8;
    cent.zipfTheta = 0.6;
    cent.linesPerVisit = 2;
    cent.seed = seed + t;
    std::vector<GeneratorPtr> subs;
    subs.push_back(std::make_unique<SequentialScan>(scan));
    subs.push_back(std::make_unique<HotColdGen>(cent));
    return std::make_unique<InterleaveGen>(std::move(subs), 256);
}

/** QuickSort: two-pointer partitions recursing over the array. */
GeneratorPtr
quicksortThread(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    QuicksortGen::Params p;
    p.base = threadBase(t);
    p.pages = sp(s, 2048);
    p.cutoffPages = 8;
    p.seed = seed + t;
    return std::make_unique<QuicksortGen>(p);
}

/** HPL: blocked factorization; ladder streams (tread + rise). */
GeneratorPtr
hplThread(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    (void)seed;
    LadderGen::Params p;
    p.base = threadBase(t);
    // Cross-stream treads (Fig. 2): within-tread strides vary, so no
    // dominant stride exists in a 16-deep history and only LSP
    // identifies the pattern (Fig. 18's HPL ablation).
    p.treadPages = 3;
    p.risePages = 16;
    p.treads = sp(s, 1024) / p.risePages;
    p.linesPerPage = 64;
    p.passes = it(s, 10);
    p.crossStream = true;
    return std::make_unique<LadderGen>(p);
}

/** NPB-CG: sequential sparse-matrix scan + zipf gathers into x. */
GeneratorPtr
npbCgThread(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    GatherGen::Params p;
    p.seqBase = threadBase(t);
    p.seqPages = sp(s, 768);
    p.seqLinesPerPage = 64;
    p.targetBase = threadBase(16) + 0x1000'0000ull; // shared x vector
    p.targetPages = sp(s, 256);
    p.gatherPerLine = 0.3;
    p.zipfTheta = 0.7;
    p.passes = it(s, 6);
    p.seed = seed + t;
    return std::make_unique<GatherGen>(p);
}

/** NPB-FT: transpose phases; interleaved large-stride simple streams. */
GeneratorPtr
npbFtThread(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    (void)seed;
    std::vector<GeneratorPtr> subs;
    std::uint64_t stride = 16;
    std::uint64_t visits = sp(s, 1024) / stride;
    for (unsigned k = 0; k < 4; ++k) {
        SequentialScan::Params p;
        // Each transpose stream reads a distant row band: streams live
        // in separate address subspaces, so they cluster into separate
        // STT entries (Δ_stream = 64) rather than one mixed pattern.
        p.base = threadBase(t) + k * 0x1000'0000ull;
        p.pages = visits;
        p.pageStride = static_cast<std::int64_t>(stride);
        p.linesPerPage = 64;
        p.passes = it(s, 10);
        subs.push_back(std::make_unique<SequentialScan>(p));
    }
    return std::make_unique<InterleaveGen>(std::move(subs), 64);
}

/** NPB-LU: wavefront sweeps; short-tread ladders + forward scans. */
GeneratorPtr
npbLuThread(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    (void)seed;
    std::vector<GeneratorPtr> subs;
    LadderGen::Params lad;
    lad.base = threadBase(t);
    lad.treadPages = 2;
    lad.risePages = 16;
    lad.treads = sp(s, 512) / lad.risePages;
    lad.linesPerPage = 32;
    lad.passes = it(s, 8);
    subs.push_back(std::make_unique<LadderGen>(lad));
    SequentialScan::Params seq;
    seq.base = threadBase(t) + 0x4000'0000ull;
    seq.pages = sp(s, 256);
    seq.passes = it(s, 8);
    seq.linesPerPage = 64;
    subs.push_back(std::make_unique<SequentialScan>(seq));
    return std::make_unique<InterleaveGen>(std::move(subs), 128);
}

/** NPB-MG: multigrid V-cycles; ripple streams over nested grids. */
GeneratorPtr
npbMgThread(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    std::vector<GeneratorPtr> cycles;
    unsigned vcycles = it(s, 4);
    for (unsigned c = 0; c < vcycles; ++c) {
        std::uint64_t levels[] = {sp(s, 1024), sp(s, 256), sp(s, 64),
                                  sp(s, 256), sp(s, 1024)};
        for (std::uint64_t pages : levels) {
            RippleGen::Params p;
            p.base = threadBase(t);
            p.pages = pages;
            p.linesPerPage = 16;
            p.passes = 1;
            p.jitter = 2;
            p.hopChance = 0.4;
            p.seed = seed + t * 97 + c;
            cycles.push_back(std::make_unique<RippleGen>(p));
        }
    }
    return std::make_unique<PhasedGen>(std::move(cycles));
}

/** NPB-IS: sequential key scan + random bucket scatter. */
GeneratorPtr
npbIsThread(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    std::vector<GeneratorPtr> subs;
    SequentialScan::Params keys;
    keys.base = threadBase(t);
    keys.pages = sp(s, 1024);
    keys.passes = it(s, 6);
    keys.linesPerPage = 64;
    subs.push_back(std::make_unique<SequentialScan>(keys));
    HotColdGen::Params buckets;
    buckets.base = threadBase(t) + 0x4000'0000ull;
    buckets.pages = sp(s, 512);
    buckets.accesses = keys.pages * keys.passes / 4;
    buckets.zipfTheta = 0.4;
    buckets.linesPerVisit = 1;
    buckets.seed = seed + t;
    subs.push_back(std::make_unique<HotColdGen>(buckets));
    return std::make_unique<InterleaveGen>(std::move(subs), 32);
}

/** GraphX jobs: 3 growing phases (11/22/33 GB thirds, §VI), each a
 *  vertex-scan + zipf edge-gather mix with JVM short-run noise. */
GeneratorPtr
graphxThread(const WorkloadScale &s, unsigned t, std::uint64_t seed,
             double theta, double gather_per_line, unsigned passes)
{
    std::vector<GeneratorPtr> phases;
    std::uint64_t full = sp(s, 1536); // per-thread final footprint
    for (unsigned phase = 1; phase <= 3; ++phase) {
        std::uint64_t pages = full * phase / 3;
        std::vector<GeneratorPtr> subs;
        GatherGen::Params g;
        g.seqBase = threadBase(t);
        g.seqPages = pages * 2 / 3;
        g.seqLinesPerPage = 48;
        g.targetBase = threadBase(t) + 0x4000'0000ull;
        g.targetPages = std::max<std::uint64_t>(16, pages / 3);
        g.gatherPerLine = gather_per_line;
        g.zipfTheta = theta;
        g.passes = it(s, passes);
        g.seed = seed + t * 131 + phase;
        subs.push_back(std::make_unique<GatherGen>(g));
        ShortRunsGen::Params jvm;
        jvm.base = threadBase(t) + 0x8000'0000ull;
        jvm.pages = std::max<std::uint64_t>(64, pages / 4);
        jvm.runs = 48 * phase;
        jvm.runPagesMin = 4;
        jvm.runPagesMax = 16;
        jvm.linesPerPage = 24;
        jvm.gcEvery = 24;
        jvm.gcFraction = 0.5;
        jvm.seed = seed + t * 313 + phase;
        subs.push_back(std::make_unique<ShortRunsGen>(jvm));
        phases.push_back(
            std::make_unique<InterleaveGen>(std::move(subs), 192));
    }
    return std::make_unique<PhasedGen>(std::move(phases));
}

/** Spark K-means: staged, each stage writes a fresh memory area (§VI-B)
 *  => many short streams + GC scans. */
GeneratorPtr
sparkKmeansThread(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    std::vector<GeneratorPtr> stages;
    unsigned n_stages = it(s, 4);
    std::uint64_t area = sp(s, 512); // fresh area per stage
    for (unsigned st = 0; st < n_stages; ++st) {
        VirtAddr base = threadBase(t) + st * (area * pageBytes);
        std::vector<GeneratorPtr> subs;
        SequentialScan::Params scan;
        scan.base = base;
        scan.pages = area;
        scan.passes = 2;
        scan.linesPerPage = 48;
        subs.push_back(std::make_unique<SequentialScan>(scan));
        ShortRunsGen::Params runs;
        runs.base = base;
        runs.pages = area;
        runs.runs = 96;
        runs.runPagesMin = 2;
        runs.runPagesMax = 12;
        runs.linesPerPage = 24;
        runs.gcEvery = 32;
        runs.gcFraction = 0.6;
        runs.seed = seed + t * 71 + st;
        subs.push_back(std::make_unique<ShortRunsGen>(runs));
        stages.push_back(
            std::make_unique<InterleaveGen>(std::move(subs), 128));
    }
    return std::make_unique<PhasedGen>(std::move(stages));
}

/** Spark Bayes: large gather-heavy JVM job. */
GeneratorPtr
sparkBayesThread(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    std::vector<GeneratorPtr> subs;
    GatherGen::Params g;
    g.seqBase = threadBase(t);
    g.seqPages = sp(s, 1024);
    g.seqLinesPerPage = 40;
    g.targetBase = threadBase(t) + 0x4000'0000ull;
    g.targetPages = sp(s, 384);
    g.gatherPerLine = 0.45;
    g.zipfTheta = 0.85;
    g.passes = it(s, 5);
    g.seed = seed + t * 11;
    subs.push_back(std::make_unique<GatherGen>(g));
    ShortRunsGen::Params jvm;
    jvm.base = threadBase(t) + 0x8000'0000ull;
    jvm.pages = sp(s, 256);
    jvm.runs = 256;
    jvm.runPagesMin = 3;
    jvm.runPagesMax = 14;
    jvm.linesPerPage = 24;
    jvm.gcEvery = 40;
    jvm.gcFraction = 0.5;
    jvm.seed = seed + t * 17;
    subs.push_back(std::make_unique<ShortRunsGen>(jvm));
    return std::make_unique<InterleaveGen>(std::move(subs), 160);
}

/** Pointer chasing: fixed pseudo-random page permutation revisited
 *  every pass (linked records / index walks). Invisible to stride
 *  detectors; covered by the correlation tier. */
GeneratorPtr
linkedlistThread(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    PermutationGen::Params p;
    p.base = threadBase(t);
    p.pages = sp(s, 1536);
    p.linesPerPage = 48;
    p.passes = it(s, 6);
    p.seed = seed + t;
    return std::make_unique<PermutationGen>(p);
}

/** §VI-E microbenchmark: per-thread 2 GB-scaled array, read-sum every
 *  8-byte block of every page; pure simple stream, no interference. */
GeneratorPtr
microbenchThread(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    (void)seed;
    SequentialScan::Params p;
    p.base = threadBase(t);
    p.pages = sp(s, 1024);
    p.passes = it(s, 6);
    p.linesPerPage = 64;
    return std::make_unique<SequentialScan>(p);
}

struct AppDef
{
    const char *name;
    unsigned threads;
    std::uint64_t basePages; // footprint before scaling
    bool jvm;
    GeneratorPtr (*factory)(const WorkloadScale &, unsigned,
                            std::uint64_t);
};

GeneratorPtr
graphxPr(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    return graphxThread(s, t, seed, 0.9, 0.35, 4);
}

GeneratorPtr
graphxCc(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    return graphxThread(s, t, seed, 0.6, 0.25, 4);
}

GeneratorPtr
graphxBfs(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    return graphxThread(s, t, seed, 0.8, 0.3, 3);
}

GeneratorPtr
graphxLp(const WorkloadScale &s, unsigned t, std::uint64_t seed)
{
    return graphxThread(s, t, seed, 0.7, 0.3, 4);
}

const AppDef appDefs[] = {
    {"kmeans-omp", 2, 2 * 1024 + 16, false, kmeansOmpThread},
    {"quicksort", 1, 2048, false, quicksortThread},
    // Footprints count *touched* pages: the HPL/FT/LU access patterns
    // are sparse within their address regions.
    {"hpl", 2, 2 * 192, false, hplThread},
    {"npb-cg", 2, 2 * 768 + 256, false, npbCgThread},
    {"npb-ft", 2, 2 * 256, false, npbFtThread},
    {"npb-lu", 2, 2 * 320, false, npbLuThread},
    {"npb-mg", 2, 2 * 1024, false, npbMgThread},
    {"npb-is", 2, 2 * (1024 + 512), false, npbIsThread},
    {"graphx-pr", 4, 4 * (1536 + 512 + 384), true, graphxPr},
    {"graphx-cc", 4, 4 * (1536 + 512 + 384), true, graphxCc},
    {"graphx-bfs", 4, 4 * (1536 + 512 + 384), true, graphxBfs},
    {"graphx-lp", 4, 4 * (1536 + 512 + 384), true, graphxLp},
    {"spark-kmeans", 3, 3 * 4 * 512, true, sparkKmeansThread},
    {"spark-bayes", 4, 4 * (1024 + 384 + 256), true, sparkBayesThread},
    {"microbench", 2, 2 * 1024, false, microbenchThread},
    {"linkedlist", 1, 1536, false, linkedlistThread},
};

} // namespace

Workload
makeWorkload(const std::string &name, const WorkloadScale &scale,
             std::uint64_t seed)
{
    for (const auto &def : appDefs) {
        if (name != def.name)
            continue;
        Workload w;
        w.name = def.name;
        w.jvm = def.jvm;
        w.footprintPages = sp(scale, def.basePages);
        for (unsigned t = 0; t < def.threads; ++t) {
            auto *factory = def.factory;
            w.threads.push_back([factory, scale, t, seed] {
                return factory(scale, t, seed);
            });
        }
        return w;
    }
    hopp_fatal("unknown workload '%s'", name.c_str());
}

namespace
{

/** Synthetic scenarios that are not part of the paper's Table IV. */
bool
isSynthetic(const char *name)
{
    return std::string(name) == "microbench" ||
           std::string(name) == "linkedlist";
}

} // namespace

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> out;
    for (const auto &def : appDefs) {
        if (!isSynthetic(def.name))
            out.push_back(def.name);
    }
    return out;
}

std::vector<std::string>
nonJvmWorkloadNames()
{
    std::vector<std::string> out;
    for (const auto &def : appDefs) {
        if (!def.jvm && !isSynthetic(def.name))
            out.push_back(def.name);
    }
    return out;
}

std::vector<std::string>
sparkWorkloadNames()
{
    std::vector<std::string> out;
    for (const auto &def : appDefs) {
        if (def.jvm)
            out.push_back(def.name);
    }
    return out;
}

} // namespace hopp::workloads
