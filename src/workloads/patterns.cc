#include "workloads/patterns.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hopp::workloads
{

namespace
{

/**
 * Shared body of every concrete nextBatch override: the qualified
 * `g.G::next(...)` call devirtualizes, so each override compiles to
 * one tight loop over the generator's own advance logic instead of a
 * virtual dispatch per access.
 */
template <typename G>
std::size_t
drainInto(G &g, Access *out, std::size_t n)
{
    std::size_t i = 0;
    while (i < n && g.G::next(out[i]))
        ++i;
    return i;
}

} // namespace

// ---------------------------------------------------------------------
// SequentialScan
// ---------------------------------------------------------------------

SequentialScan::SequentialScan(const Params &p) : p_(p), visits_(p.pages)
{
    hopp_assert(p_.pages > 0, "scan needs pages");
    hopp_assert(p_.pageStride != 0, "scan needs a nonzero stride");
    hopp_assert(p_.linesPerPage >= 1 && p_.linesPerPage <= linesPerPage,
                "lines per page out of range");
}

bool
SequentialScan::next(Access &out)
{
    if (pass_ >= p_.passes)
        return false;
    std::uint64_t idx = p_.backward ? visits_ - 1 - visit_ : visit_;
    std::int64_t page_off = static_cast<std::int64_t>(idx) * p_.pageStride;
    out.va = p_.base + static_cast<std::uint64_t>(page_off) * pageBytes +
             static_cast<std::uint64_t>(line_) * lineBytes;
    out.write = p_.write;
    if (++line_ >= p_.linesPerPage) {
        line_ = 0;
        if (++visit_ >= visits_) {
            visit_ = 0;
            ++pass_;
        }
    }
    return true;
}

std::size_t
SequentialScan::nextBatch(Access *out, std::size_t n)
{
    return drainInto(*this, out, n);
}

void
SequentialScan::reset()
{
    visit_ = 0;
    line_ = 0;
    pass_ = 0;
}

// ---------------------------------------------------------------------
// LadderGen
// ---------------------------------------------------------------------

bool
LadderGen::next(Access &out)
{
    if (pass_ >= p_.passes)
        return false;
    std::uint64_t offset = page_;
    if (p_.crossStream) {
        // Even offsets ascending, then odd offsets ascending.
        std::uint64_t evens = (p_.treadPages + 1) / 2;
        offset = page_ < evens ? page_ * 2 : (page_ - evens) * 2 + 1;
    }
    std::uint64_t page = tread_ * p_.risePages + offset;
    out.va = p_.base + page * pageBytes +
             static_cast<std::uint64_t>(line_) * lineBytes;
    out.write = false;
    if (++line_ >= p_.linesPerPage) {
        line_ = 0;
        if (++page_ >= p_.treadPages) {
            page_ = 0;
            if (++tread_ >= p_.treads) {
                tread_ = 0;
                ++pass_;
            }
        }
    }
    return true;
}

std::size_t
LadderGen::nextBatch(Access *out, std::size_t n)
{
    return drainInto(*this, out, n);
}

void
LadderGen::reset()
{
    tread_ = 0;
    page_ = 0;
    line_ = 0;
    pass_ = 0;
}

// ---------------------------------------------------------------------
// RippleGen
// ---------------------------------------------------------------------

bool
RippleGen::next(Access &out)
{
    if (pass_ >= p_.passes)
        return false;
    std::int64_t page = static_cast<std::int64_t>(front_) + pendingHop_;
    page = std::clamp<std::int64_t>(
        page, 0, static_cast<std::int64_t>(p_.pages) - 1);
    out.va = p_.base + static_cast<std::uint64_t>(page) * pageBytes +
             static_cast<std::uint64_t>(line_) * lineBytes;
    out.write = false;
    if (++line_ >= p_.linesPerPage) {
        line_ = 0;
        // Choose the next page visit: usually the advancing front,
        // sometimes an out-of-order hop around it.
        if (pendingHop_ == 0 && rng_.chance(p_.hopChance)) {
            pendingHop_ =
                static_cast<std::int64_t>(rng_.below(2 * p_.jitter + 1)) -
                static_cast<std::int64_t>(p_.jitter);
        } else {
            pendingHop_ = 0;
            if (++front_ >= p_.pages) {
                front_ = 0;
                ++pass_;
            }
        }
    }
    return true;
}

std::size_t
RippleGen::nextBatch(Access *out, std::size_t n)
{
    return drainInto(*this, out, n);
}

void
RippleGen::reset()
{
    front_ = 0;
    line_ = 0;
    pass_ = 0;
    pendingHop_ = 0;
    rng_ = Pcg32(p_.seed);
}

// ---------------------------------------------------------------------
// GatherGen
// ---------------------------------------------------------------------

GatherGen::GatherGen(const Params &p)
    : p_(p), rng_(p.seed), zipf_(p.targetPages, p.zipfTheta)
{
    hopp_assert(p_.seqPages > 0 && p_.targetPages > 0,
                "gather needs regions");
}

bool
GatherGen::next(Access &out)
{
    if (gatherDebt_ >= 1.0) {
        gatherDebt_ -= 1.0;
        std::uint64_t tp = zipf_.sample(rng_);
        out.va = p_.targetBase + tp * pageBytes +
                 rng_.below(static_cast<std::uint32_t>(linesPerPage)) *
                     lineBytes;
        out.write = false;
        return true;
    }
    if (pass_ >= p_.passes)
        return false;
    if (pendingReset_) {
        // New iteration over the same edge list: the gather sequence
        // repeats exactly. (Deferred past the previous pass's last
        // gathers, which still draw from the old stream.)
        rng_ = Pcg32(p_.seed);
        pendingReset_ = false;
    }
    out.va = p_.seqBase + page_ * pageBytes +
             static_cast<std::uint64_t>(line_) * lineBytes;
    out.write = false;
    gatherDebt_ += p_.gatherPerLine;
    if (++line_ >= p_.seqLinesPerPage) {
        line_ = 0;
        if (++page_ >= p_.seqPages) {
            page_ = 0;
            ++pass_;
            pendingReset_ = p_.fixedSequence;
        }
    }
    return true;
}

std::size_t
GatherGen::nextBatch(Access *out, std::size_t n)
{
    return drainInto(*this, out, n);
}

void
GatherGen::reset()
{
    page_ = 0;
    line_ = 0;
    pass_ = 0;
    gatherDebt_ = 0.0;
    pendingReset_ = false;
    rng_ = Pcg32(p_.seed);
}

// ---------------------------------------------------------------------
// HotColdGen
// ---------------------------------------------------------------------

HotColdGen::HotColdGen(const Params &p)
    : p_(p), rng_(p.seed), zipf_(p.pages, p.zipfTheta)
{
}

bool
HotColdGen::next(Access &out)
{
    if (count_ >= p_.accesses)
        return false;
    if (line_ == 0)
        page_ = zipf_.sample(rng_);
    out.va = p_.base + page_ * pageBytes +
             static_cast<std::uint64_t>(line_) * lineBytes;
    out.write = false;
    if (++line_ >= p_.linesPerVisit) {
        line_ = 0;
        ++count_;
    }
    return true;
}

std::size_t
HotColdGen::nextBatch(Access *out, std::size_t n)
{
    return drainInto(*this, out, n);
}

void
HotColdGen::reset()
{
    count_ = 0;
    page_ = 0;
    line_ = 0;
    rng_ = Pcg32(p_.seed);
}

// ---------------------------------------------------------------------
// ShortRunsGen
// ---------------------------------------------------------------------

void
ShortRunsGen::startRun()
{
    started_ = true;
    page_ = 0;
    line_ = 0;
    if (p_.gcEvery && run_ > 0 && run_ % p_.gcEvery == 0 && !inGc_) {
        // GC pause: scan a fraction of the whole region from the start.
        inGc_ = true;
        runStart_ = 0;
        runLen_ = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(p_.pages) * p_.gcFraction));
        return;
    }
    inGc_ = false;
    std::uint64_t span = p_.runPagesMax > p_.runPagesMin
                             ? p_.runPagesMax - p_.runPagesMin
                             : 0;
    runLen_ = p_.runPagesMin +
              (span ? rng_.below64(span + 1) : 0);
    runLen_ = std::min(runLen_, p_.pages);
    runStart_ = rng_.below64(p_.pages - runLen_ + 1);
    if (p_.alignPages > 1) {
        runStart_ -= runStart_ % p_.alignPages;
        runStart_ = std::min(runStart_, p_.pages - runLen_);
    }
}

bool
ShortRunsGen::next(Access &out)
{
    if (!started_) {
        if (run_ >= p_.runs)
            return false;
        startRun();
    }
    out.va = p_.base + (runStart_ + page_) * pageBytes +
             static_cast<std::uint64_t>(line_) * lineBytes;
    out.write = false;
    if (++line_ >= p_.linesPerPage) {
        line_ = 0;
        if (++page_ >= runLen_) {
            ++run_;
            started_ = false;
            if (run_ >= p_.runs)
                return true; // last access of the last run
            startRun();
        }
    }
    return true;
}

std::size_t
ShortRunsGen::nextBatch(Access *out, std::size_t n)
{
    return drainInto(*this, out, n);
}

void
ShortRunsGen::reset()
{
    run_ = 0;
    page_ = 0;
    line_ = 0;
    started_ = false;
    inGc_ = false;
    rng_ = Pcg32(p_.seed);
}

// ---------------------------------------------------------------------
// PermutationGen
// ---------------------------------------------------------------------

PermutationGen::PermutationGen(const Params &p) : p_(p)
{
    hopp_assert(p_.pages > 0, "permutation needs pages");
    order_.resize(p_.pages);
    for (std::uint64_t i = 0; i < p_.pages; ++i)
        order_[i] = static_cast<std::uint32_t>(i);
    // Fisher-Yates with the deterministic PRNG: the pointer graph.
    Pcg32 rng(p_.seed);
    for (std::uint64_t i = p_.pages - 1; i > 0; --i) {
        std::uint64_t j = rng.below64(i + 1);
        std::swap(order_[i], order_[j]);
    }
}

bool
PermutationGen::next(Access &out)
{
    if (pass_ >= p_.passes)
        return false;
    out.va = p_.base +
             static_cast<std::uint64_t>(order_[idx_]) * pageBytes +
             static_cast<std::uint64_t>(line_) * lineBytes;
    out.write = false;
    if (++line_ >= p_.linesPerPage) {
        line_ = 0;
        if (++idx_ >= order_.size()) {
            idx_ = 0;
            ++pass_;
        }
    }
    return true;
}

std::size_t
PermutationGen::nextBatch(Access *out, std::size_t n)
{
    return drainInto(*this, out, n);
}

void
PermutationGen::reset()
{
    idx_ = 0;
    line_ = 0;
    pass_ = 0;
}

// ---------------------------------------------------------------------
// QuicksortGen
// ---------------------------------------------------------------------

std::size_t
QuicksortGen::nextBatch(Access *out, std::size_t n)
{
    return drainInto(*this, out, n);
}

void
QuicksortGen::reset()
{
    rng_ = Pcg32(p_.seed);
    stack_.clear();
    stack_.push_back({0, p_.pages});
    partitioning_ = false;
    scanning_ = false;
    line_ = 0;
}

bool
QuicksortGen::next(Access &out)
{
    for (;;) {
        if (scanning_) {
            out.va = p_.base + scanPage_ * pageBytes +
                     static_cast<std::uint64_t>(line_) * lineBytes;
            out.write = false;
            if (++line_ >= p_.linesPerPage) {
                line_ = 0;
                if (++scanPage_ >= scanEnd_)
                    scanning_ = false;
            }
            return true;
        }
        if (partitioning_) {
            std::uint64_t page = fromLeft_ ? left_ : right_ - 1;
            out.va = p_.base + page * pageBytes +
                     static_cast<std::uint64_t>(line_) * lineBytes;
            out.write = (line_ & 3) == 3; // some swaps write back
            if (++line_ >= p_.linesPerPage) {
                line_ = 0;
                if (fromLeft_)
                    ++left_;
                else
                    --right_;
                fromLeft_ = !fromLeft_;
                if (left_ >= right_) {
                    partitioning_ = false;
                    // Recurse on both halves around the meeting point.
                    std::uint64_t mid = left_;
                    if (mid > cur_.lo && mid < cur_.hi) {
                        stack_.push_back({cur_.lo, mid});
                        stack_.push_back({mid, cur_.hi});
                    }
                }
            }
            return true;
        }
        if (stack_.empty())
            return false;
        cur_ = stack_.back();
        stack_.pop_back();
        std::uint64_t len = cur_.hi - cur_.lo;
        if (len == 0)
            continue;
        if (len <= p_.cutoffPages) {
            scanning_ = true;
            scanPage_ = cur_.lo;
            scanEnd_ = cur_.hi;
            line_ = 0;
        } else {
            partitioning_ = true;
            left_ = cur_.lo;
            right_ = cur_.hi;
            fromLeft_ = true;
            line_ = 0;
        }
    }
}

} // namespace hopp::workloads
