#include "sim/event_queue.hh"

#include "obs/profiler.hh"

namespace hopp::sim
{

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // Host-side attribution only: every dispatched event (and thus
    // nearly all simulation work) accounts under this zone, with the
    // component zones below it claiming their slices as self time.
    HOPP_PROF(EventDispatch);
    // The callback may schedule new events, so move it out first.
    // popTop() moves the closure out of the heap — no copy, no
    // allocation — which is the point of the InlineEvent design.
    Entry e = popTop();
    hopp_assert(e.when >= now_, "event heap ordering violated");
    now_ = e.when;
    ++executed_;
    bool traced = tracer_ && executed_ % traceSampleEvery_ == 0;
    if (traced) {
        tracer_->counter("sim", "queue_depth", now_, heap_.size());
        tracer_->counter("sim", "events_executed", now_, executed_);
        tracer_->begin("sim", "dispatch", now_, obs::track::sim);
    }
    e.fn();
    if (traced) {
        // Callbacks cannot advance now_, so the span closes at the
        // tick it opened; nested events it recorded (at >= now_) sort
        // inside or after it, never before.
        tracer_->end("sim", "dispatch", now_, obs::track::sim);
    }
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && runOne())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.front().when <= until && runOne())
        ++n;
    if (now_ < until)
        now_ = until;
    return n;
}

} // namespace hopp::sim
