#include "event_queue.hh"

namespace hopp::sim
{

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // The callback may schedule new events, so move it out first.
    Entry e = heap_.top();
    heap_.pop();
    hopp_assert(e.when >= now_, "event heap ordering violated");
    now_ = e.when;
    ++executed_;
    e.fn();
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && runOne())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().when <= until && runOne())
        ++n;
    if (now_ < until)
        now_ = until;
    return n;
}

} // namespace hopp::sim
