/**
 * @file
 * Small-buffer-only type-erased callable for the event queue.
 *
 * `InlineEvent` stores its closure inside a fixed 64-byte buffer and
 * dispatches through a static ops table — no virtual call, and, by
 * design, *no* heap fallback: a capture that does not fit the buffer
 * is a compile error, not a silent allocation. Every `schedule()` on
 * the simulator hot path (faults, RDMA completions, kswapd wakeups,
 * trainer drains, thread steps) constructs one of these, so the
 * no-allocation guarantee here is what makes the whole event core
 * allocation-free (tests/test_event_queue_alloc.cc proves it with an
 * instrumented global allocator).
 */
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/logging.hh"

namespace hopp::sim {

class InlineEvent
{
  public:
    /// Closure capture budget. 64 bytes = one cache line, and enough
    /// for every capture shape used in-tree (the largest is an RDMA
    /// completion wrapping a moved-in user callback plus a Tick).
    static constexpr std::size_t inlineBytes = 64;
    static constexpr std::size_t inlineAlign = alignof(std::max_align_t);

    InlineEvent() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineEvent> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineEvent(F &&fn) // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= inlineBytes,
                      "event capture exceeds the 64-byte inline budget; "
                      "shrink the capture (indices instead of copies) — "
                      "there is deliberately no heap fallback");
        static_assert(alignof(Fn) <= inlineAlign,
                      "event capture is over-aligned for inline storage");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "event captures must be nothrow-move-constructible "
                      "(the queue relocates them during heap sifts)");
        ::new (static_cast<void *>(storage_)) Fn(std::forward<F>(fn));
        ops_ = &OpsImpl<Fn>::ops;
    }

    InlineEvent(InlineEvent &&other) noexcept : ops_(other.ops_)
    {
        if (ops_ != nullptr) {
            ops_->relocate(other.storage_, storage_);
            other.ops_ = nullptr;
        }
    }

    InlineEvent &operator=(InlineEvent &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_ != nullptr) {
                ops_->relocate(other.storage_, storage_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InlineEvent(const InlineEvent &) = delete;
    InlineEvent &operator=(const InlineEvent &) = delete;

    ~InlineEvent() { reset(); }

    void operator()()
    {
        hopp_assert(ops_ != nullptr, "invoking an empty InlineEvent");
        ops_->invoke(storage_);
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

  private:
    struct Ops {
        void (*invoke)(void *self);
        /// Move-construct *src into dst, then destroy *src.
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *self) noexcept;
    };

    template <typename Fn>
    struct OpsImpl {
        static void invoke(void *self) { (*static_cast<Fn *>(self))(); }
        static void relocate(void *src, void *dst) noexcept
        {
            Fn *from = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        }
        static void destroy(void *self) noexcept
        {
            static_cast<Fn *>(self)->~Fn();
        }
        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    void reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(inlineAlign) unsigned char storage_[inlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace hopp::sim
