/**
 * @file
 * Discrete-event simulation core.
 *
 * A single global-order EventQueue drives the whole machine model:
 * application threads, asynchronous RDMA completions, background reclaim
 * and the HoPP software trainer are all events. Events scheduled for the
 * same tick fire in FIFO order of scheduling, which keeps runs
 * deterministic.
 */

#ifndef HOPP_SIM_EVENT_QUEUE_HH
#define HOPP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "obs/tracer.hh"

namespace hopp::check
{
class Access; // invariant-checker introspection (src/check)
}

namespace hopp::sim
{

/** Callback type for scheduled events. */
using EventFn = std::function<void()>;

/**
 * Time-ordered event queue with deterministic same-tick ordering.
 */
class EventQueue
{
  public:
    /** Schedule fn to run at absolute tick when (>= now()). */
    void
    schedule(Tick when, EventFn fn)
    {
        hopp_assert(when >= now_, "scheduling into the past");
        heap_.push(Entry{when, seq_++, std::move(fn)});
    }

    /** Schedule fn to run delay nanoseconds from now. */
    void
    scheduleIn(Duration delay, EventFn fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event (maxTick when empty). */
    Tick
    nextTime() const
    {
        return heap_.empty() ? maxTick : heap_.top().when;
    }

    /**
     * Run the earliest event, advancing now().
     * @return false when the queue was empty.
     */
    bool runOne();

    /** Run until the queue drains or limit events have executed. */
    std::uint64_t run(std::uint64_t limit = ~std::uint64_t(0));

    /** Run all events with when <= until (inclusive); advances now(). */
    std::uint64_t runUntil(Tick until);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Attach the flight recorder. Every @p sample_every-th event gets
     * a dispatch span plus queue-depth / executed-count counter
     * samples; sampling keeps the trace linear in run length with a
     * small constant. nullptr detaches.
     */
    void
    setTracer(obs::Tracer *tracer, std::uint64_t sample_every = 256)
    {
        tracer_ = tracer;
        traceSampleEvery_ = sample_every ? sample_every : 1;
    }

  private:
    friend class hopp::check::Access;

    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    obs::Tracer *tracer_ = nullptr;
    std::uint64_t traceSampleEvery_ = 256;
};

} // namespace hopp::sim

#endif // HOPP_SIM_EVENT_QUEUE_HH
