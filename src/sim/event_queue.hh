/**
 * @file
 * Discrete-event simulation core.
 *
 * A single global-order EventQueue drives the whole machine model:
 * application threads, asynchronous RDMA completions, background reclaim
 * and the HoPP software trainer are all events. Events scheduled for the
 * same tick fire in FIFO order of scheduling, which keeps runs
 * deterministic.
 *
 * The queue is allocation-free in steady state: events are
 * `InlineEvent`s (closures live inside the queue entries, never on the
 * heap — see inline_event.hh), and the priority heap is a hand-rolled
 * 4-ary min-heap over a reserved `std::vector`, so dispatch moves the
 * root entry out instead of copying it (`std::priority_queue::top()`
 * returns a const reference, which forced a closure copy — and a heap
 * allocation — per event in the old `std::function` design).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "obs/tracer.hh"
#include "sim/inline_event.hh"

namespace hopp::check
{
class Access; // invariant-checker introspection (src/check)
}

namespace hopp::sim
{

/**
 * Time-ordered event queue with deterministic same-tick ordering.
 */
class EventQueue
{
  public:
    EventQueue() { heap_.reserve(defaultReserve); }

    /** Schedule fn to run at absolute tick when (>= now()). */
    void
    schedule(Tick when, InlineEvent fn)
    {
        hopp_assert(when >= now_, "scheduling into the past");
        pushEntry(Entry{when, seq_++, std::move(fn)});
    }

    /** Schedule fn to run delay nanoseconds from now. */
    void
    scheduleIn(Duration delay, InlineEvent fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /**
     * Pre-size the heap storage. The queue reserves a sensible default
     * at construction; runners with a known fan-out (threads + inflight
     * prefetches + background actors) can widen it so steady state
     * never regrows the vector.
     */
    void reserve(std::size_t events) { heap_.reserve(events); }

    /** Tick of the earliest pending event (maxTick when empty). */
    Tick
    nextTime() const
    {
        return heap_.empty() ? maxTick : heap_.front().when;
    }

    /**
     * Run the earliest event, advancing now().
     * @return false when the queue was empty.
     */
    bool runOne();

    /** Run until the queue drains or limit events have executed. */
    std::uint64_t run(std::uint64_t limit = ~std::uint64_t(0));

    /** Run all events with when <= until (inclusive); advances now(). */
    std::uint64_t runUntil(Tick until);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Attach the flight recorder. Every @p sample_every-th event gets
     * a dispatch span plus queue-depth / executed-count counter
     * samples; sampling keeps the trace linear in run length with a
     * small constant. nullptr detaches.
     */
    void
    setTracer(obs::Tracer *tracer, std::uint64_t sample_every = 256)
    {
        tracer_ = tracer;
        traceSampleEvery_ = sample_every ? sample_every : 1;
    }

  private:
    friend class hopp::check::Access;

    static constexpr std::size_t defaultReserve = 1024;

    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        InlineEvent fn;
    };

    /// Strict total order: earlier tick first, scheduling order within
    /// a tick. This is exactly the old (when, seq) comparator, so the
    /// rewrite preserves event execution order bit-for-bit.
    static bool
    before(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /// 4-ary heap geometry: shallower than binary (fewer sift levels)
    /// and the four children of a node are adjacent, so a sift-down
    /// touches one or two cache lines per level.
    static constexpr std::size_t arity = 4;

    void
    pushEntry(Entry e)
    {
        heap_.push_back(std::move(e));
        siftUp(heap_.size() - 1);
    }

    Entry
    popTop()
    {
        Entry top = std::move(heap_.front());
        heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
        return top;
    }

    void
    siftUp(std::size_t i)
    {
        Entry e = std::move(heap_[i]);
        while (i > 0) {
            std::size_t parent = (i - 1) / arity;
            if (!before(e, heap_[parent]))
                break;
            heap_[i] = std::move(heap_[parent]);
            i = parent;
        }
        heap_[i] = std::move(e);
    }

    void
    siftDown(std::size_t i)
    {
        Entry e = std::move(heap_[i]);
        const std::size_t n = heap_.size();
        for (;;) {
            std::size_t child = i * arity + 1;
            if (child >= n)
                break;
            std::size_t best = child;
            const std::size_t last = std::min(child + arity, n);
            for (std::size_t k = child + 1; k < last; ++k) {
                if (before(heap_[k], heap_[best]))
                    best = k;
            }
            if (!before(heap_[best], e))
                break;
            heap_[i] = std::move(heap_[best]);
            i = best;
        }
        heap_[i] = std::move(e);
    }

    std::vector<Entry> heap_;
    Tick now_;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    obs::Tracer *tracer_ = nullptr;
    std::uint64_t traceSampleEvery_ = 256;
};

} // namespace hopp::sim

