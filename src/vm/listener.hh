/**
 * @file
 * Observation interfaces the VMS exposes to prefetchers, the HoPP
 * engine and the metric sinks.
 */

#pragma once

#include <functional>

#include "common/types.hh"
#include "remote/remote_node.hh"
#include "vm/page.hh"

namespace hopp::vm
{

/** What kind of fault the handler resolved. */
enum class FaultKind : std::uint8_t
{
    Cold,         //!< first touch, zero-fill
    SwapCacheHit, //!< prefetch-hit in swapcache (2.3 us path)
    Remote,       //!< demand page-in over RDMA
    InflightWait, //!< fault waited on an in-flight prefetch
};

/** Context handed to the fault-driven prefetcher callback. */
struct FaultContext
{
    Pid pid;
    Vpn vpn;
    remote::SwapSlot slot; //!< slot the page lived in (or noSlot)
    FaultKind kind;
    Tick now;              //!< fault resolution time
};

/** Fault-driven prefetchers (Fastswap/Leap/VMA/Depth-N) register this. */
using FaultCallback = std::function<void(const FaultContext &)>;

/**
 * Passive listener for page lifecycle events; used by prefetch metric
 * accounting and by HoPP's policy engine (timeliness measurement).
 */
class PageEventListener
{
  public:
    virtual ~PageEventListener() = default;

    /** A demand page-in over RDMA was required (prefetch miss). */
    virtual void
    onDemandRemote(Pid, Vpn, Tick /*now*/)
    {
    }

    /** A prefetch for (pid, vpn) completed and occupies DRAM. */
    virtual void
    onPrefetchCompleted(Pid, Vpn, Origin, Tick /*now*/, bool /*injected*/)
    {
    }

    /**
     * A previously prefetched page was hit for the first time.
     *
     * @param ready_at when the prefetched data became available.
     * @param hit_at   when the application touched it.
     * @param dram_hit true for an injected-PTE DRAM hit (HoPP),
     *                 false for a swapcache prefetch-hit (2.3 us path).
     */
    virtual void
    onPrefetchHit(Pid, Vpn, Origin, Tick /*ready_at*/, Tick /*hit_at*/,
                  bool /*dram_hit*/)
    {
    }

    /** A prefetched page was reclaimed without ever being hit. */
    virtual void
    onPrefetchEvicted(Pid, Vpn, Origin, Tick /*now*/)
    {
    }

    /** Any fault was resolved, with its total latency. */
    virtual void
    onFaultResolved(Pid, Vpn, FaultKind, Duration /*latency*/,
                    Tick /*now*/)
    {
    }

    /** A resident page was reclaimed (evicted to remote). */
    virtual void
    onPageEvicted(Pid, Vpn, Tick /*now*/)
    {
    }
};

} // namespace hopp::vm

