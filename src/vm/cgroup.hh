/**
 * @file
 * Memory cgroup model: a per-process memory limit with an LRU list of
 * in-DRAM pages and second-chance (accessed-bit) reclaim ordering, as
 * the evaluation isolates applications with cgroups (§VI-B).
 */

#pragma once

#include <cstdint>
#include <list>

#include "common/logging.hh"
#include "common/types.hh"
#include "vm/page.hh"

namespace hopp::check
{
class Access; // invariant-checker introspection (src/check)
}

namespace hopp::vm
{

/**
 * One memory cgroup: charge accounting plus the LRU list reclaim scans.
 *
 * The LRU list holds page keys of *all* pages occupying local frames on
 * behalf of this process — mapped pages and unhit swapcache prefetches —
 * so inaccurate prefetches are reclaimed (and counted) naturally.
 */
class Cgroup
{
  public:
    Cgroup(Pid pid, std::uint64_t limit_frames)
        : pid_(pid), limit_(limit_frames)
    {
        hopp_assert(limit_frames > 0, "cgroup needs a nonzero limit");
    }

    /** Owning process. */
    Pid pid() const { return pid_; }

    /** Hard limit in frames. */
    std::uint64_t limit() const { return limit_; }

    /** Frames currently charged. */
    std::uint64_t charged() const { return charged_; }

    /** Charge one frame; caller must have reclaimed below the limit. */
    void
    charge()
    {
        hopp_assert(charged_ < limit_, "charge beyond cgroup limit");
        ++charged_;
    }

    /** Uncharge one frame. */
    void
    uncharge()
    {
        hopp_assert(charged_ > 0, "uncharge below zero");
        --charged_;
    }

    /** True when a charged allocation needs reclaim first. */
    bool atLimit() const { return charged_ >= limit_; }

    /** Insert a page at the MRU end; stores the iterator in pi. */
    void
    lruInsert(std::uint64_t key, PageInfo &pi)
    {
        hopp_assert(!pi.inLru, "page already on an LRU list");
        // std::list node per first-touch insert: PageInfo stores the
        // iterator, so node pointer stability is load-bearing (splice
        // rotation relies on it); an intrusive list is the known
        // allocation-free alternative and is deliberately out of
        // scope. hopp-analyze: allow(hotpath-alloc)
        lru_.push_front(key);
        pi.lruIt = lru_.begin();
        pi.inLru = true;
    }

    /** Remove a page from the list. */
    void
    lruRemove(PageInfo &pi)
    {
        hopp_assert(pi.inLru, "page not on an LRU list");
        lru_.erase(pi.lruIt);
        pi.inLru = false;
    }

    /** Rotate a page back to the MRU end (second chance). */
    void
    lruRotate(PageInfo &pi)
    {
        hopp_assert(pi.inLru, "rotating page not on LRU list");
        lru_.splice(lru_.begin(), lru_, pi.lruIt);
        pi.lruIt = lru_.begin();
    }

    /** Key of the current LRU-end candidate; list must be non-empty. */
    std::uint64_t
    lruVictim() const
    {
        hopp_assert(!lru_.empty(), "no reclaim candidates");
        return lru_.back();
    }

    /** Number of pages on the LRU list. */
    std::size_t lruSize() const { return lru_.size(); }

    /** True when nothing can be reclaimed. */
    bool lruEmpty() const { return lru_.empty(); }

    /**
     * Background-reclaim latch: true while a kswapd pass is scheduled
     * or running for this cgroup. Living here (instead of a side map
     * keyed by pid in the VMS) bounds the bookkeeping structurally —
     * the flag is created and destroyed with the cgroup itself.
     */
    bool kswapdActive() const { return kswapdActive_; }
    void setKswapdActive(bool active) { kswapdActive_ = active; }

  private:
    friend class hopp::check::Access;

    Pid pid_;
    std::uint64_t limit_;
    std::uint64_t charged_ = 0;
    bool kswapdActive_ = false;
    std::list<std::uint64_t> lru_;
};

} // namespace hopp::vm

