/**
 * @file
 * Software TLB: a per-thread direct-mapped cache of VPN -> PageInfo*
 * for resident pages, sitting in front of the radix page-table walk on
 * the access hot path.
 *
 * Correctness contract: an entry may only be served while the page is
 * Resident. The TLB therefore participates in the existing PTE-hook
 * plumbing (vm/page_table.hh): every firePteClear — eviction, process
 * teardown, injected-prefetch revocation — shoots the cached entry
 * down, exactly like the IPI-driven TLB shootdowns the kernel issues
 * when it clears a PTE. Fills happen only from the access path, where
 * the page is known Resident; onPteSet is deliberately not a fill
 * (a PTE set by prefetch injection has not been touched by this
 * thread, and real TLBs do not prefill either).
 *
 * The TLB is an accelerator, not a model: hit or miss, the simulated
 * costs, statistics, and listener callbacks are identical, so enabling
 * it never changes a simulation result — only how fast the host
 * reaches it (tested by the TLB-on/TLB-off cross-check).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "vm/page_table.hh"

namespace hopp::vm
{

/**
 * Direct-mapped VPN -> PageInfo* cache with PTE-hook shootdown.
 */
class Tlb : public PteHook
{
  public:
    /** @param entries slot count; must be a power of two. */
    explicit Tlb(std::size_t entries = 1024) : slots_(entries)
    {
        hopp_assert(entries > 0 && (entries & (entries - 1)) == 0,
                    "TLB size must be a power of two");
        mask_ = entries - 1;
    }

    /**
     * Look (pid, vpn) up. @return the cached resident record, or
     * nullptr on miss.
     */
    PageInfo *
    lookup(Pid pid, Vpn vpn)
    {
        const Slot &s = slots_[index(pid, vpn)];
        if (s.pi && s.key == pageKey(pid, vpn)) {
            ++hits_;
            return s.pi;
        }
        ++misses_;
        return nullptr;
    }

    /**
     * Install a translation. The caller guarantees @p pi is the radix
     * table's record for (pid, vpn) and is currently Resident.
     */
    void
    fill(Pid pid, Vpn vpn, PageInfo *pi)
    {
        Slot &s = slots_[index(pid, vpn)];
        s.key = pageKey(pid, vpn);
        s.pi = pi;
    }

    /** Drop every entry (e.g. between experiment repetitions). */
    void
    flush()
    {
        for (Slot &s : slots_)
            s.pi = nullptr;
        ++flushes_;
    }

    /** PteHook: a set PTE is not a touch; nothing to cache yet. */
    void
    onPteSet(Pid, Vpn, Ppn, bool, bool, Tick) override
    {
    }

    /** PteHook: shoot the translation down with the PTE. */
    void
    onPteClear(Pid pid, Vpn vpn, Ppn, Tick) override
    {
        Slot &s = slots_[index(pid, vpn)];
        if (s.pi && s.key == pageKey(pid, vpn)) {
            s.pi = nullptr;
            ++shootdowns_;
        }
    }

    /** Lookup hits (host-side; never reported into simulated stats). */
    std::uint64_t hits() const { return hits_; }

    /** Lookup misses. */
    std::uint64_t misses() const { return misses_; }

    /** Entries invalidated by PTE clears. */
    std::uint64_t shootdowns() const { return shootdowns_; }

    /** Whole-TLB flushes. */
    std::uint64_t flushes() const { return flushes_; }

    /** Slot count. */
    std::size_t entries() const { return slots_.size(); }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        PageInfo *pi = nullptr; //!< nullptr = invalid
    };

    std::size_t
    index(Pid pid, Vpn vpn) const
    {
        // Low VPN bits spread sequential streams across slots; folding
        // the pid in keeps colocated processes from aliasing slot 0.
        // Index mixing of the raw fields. hopp-lint: allow(raw)
        return (vpn.raw() ^ (std::uint64_t(pid.raw()) << 7)) & mask_;
    }

    std::vector<Slot> slots_;
    std::size_t mask_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t shootdowns_ = 0;
    std::uint64_t flushes_ = 0;
};

} // namespace hopp::vm

