#include "vm/vms.hh"

#include <algorithm>

#include "check/check.hh"
#include "obs/blackbox.hh"
#include "obs/profiler.hh"

namespace hopp::vm
{

Vms::Vms(sim::EventQueue &eq, mem::Dram &dram, mem::MemCtrl &mc,
         mem::Llc &llc, remote::SwapBackend &backend, const VmsConfig &cfg)
    : eq_(eq), dram_(dram), mc_(mc), llc_(llc), backend_(backend), cfg_(cfg)
{
    hopp_assert(cfg_.kswapdBatch > 0,
                "kswapdBatch must be nonzero: an empty reclaim pass "
                "can never reach the low watermark");
    bundleScratch_.reserve(64);
}

void
Vms::createProcess(Pid pid, std::uint64_t limit_frames)
{
    // Diagnostic formatting of the pid. hopp-lint: allow(raw)
    hopp_assert(findCgroup(pid) == nullptr, "process %u already exists",
                pid.raw());
    cgroups_.emplace_back(pid, limit_frames);
}

Cgroup *
Vms::findCgroup(Pid pid)
{
    for (Cgroup &cg : cgroups_) {
        if (cg.pid() == pid)
            return &cg;
    }
    return nullptr;
}

Cgroup &
Vms::cgroup(Pid pid)
{
    Cgroup *cg = findCgroup(pid);
    // Diagnostic formatting of the pid. hopp-lint: allow(raw)
    hopp_assert(cg != nullptr, "unknown process %u", pid.raw());
    return *cg;
}

void
Vms::destroyProcess(Pid pid, Tick now)
{
    Cgroup &cg = cgroup(pid);
    for (std::uint64_t key : table_.keysOf(pid)) {
        Vpn vpn = keyVpn(key);
        PageInfo &pi = *table_.find(pid, vpn);
        // Diagnostic formatting of pid/vpn. hopp-lint: allow(raw)
        hopp_assert(!pi.inflight,
                    "destroying process %u with page %llu mid-fetch",
                    pid.raw(), (unsigned long long)vpn.raw());
        switch (pi.state) {
          case PageState::Resident:
            firePteClear(pid, vpn, pi.ppn, now);
            llc_.invalidatePage(pi.ppn);
            dram_.release(pi.ppn);
            break;
          case PageState::SwapCached:
            llc_.invalidatePage(pi.ppn);
            dram_.release(pi.ppn);
            --swapCachedPages_;
            break;
          case PageState::Swapped:
          case PageState::Untouched:
            break;
        }
        if (pi.inLru)
            cg.lruRemove(pi);
        if (pi.charged) {
            cg.uncharge();
            pi.charged = false;
        }
        if (pi.slot != remote::noSlot)
            backend_.release(pi.slot);
        table_.erase(pid, vpn);
    }
    hopp_assert(cg.charged() == 0, "destroyed cgroup still charged");
    // Dropping the cgroup also drops its kswapd latch; a reclaim pass
    // already on the event queue finds no cgroup and returns.
    std::erase_if(cgroups_,
                  [pid](const Cgroup &c) { return c.pid() == pid; });
}

void
Vms::markFlags(Pid pid, Vpn vpn, bool shared, bool huge)
{
    PageInfo &pi = table_.get(pid, vpn);
    pi.shared = shared;
    pi.huge = huge;
}

void
Vms::firePteSet(Pid pid, Vpn vpn, const PageInfo &pi, Tick now)
{
    for (auto *h : pteHooks_)
        h->onPteSet(pid, vpn, pi.ppn, pi.shared, pi.huge, now);
}

void
Vms::firePteClear(Pid pid, Vpn vpn, Ppn ppn, Tick now)
{
    for (auto *h : pteHooks_)
        h->onPteClear(pid, vpn, ppn, now);
}

bool
Vms::evictOne(Cgroup &cg, Tick now, bool direct, Duration *cost)
{
    HOPP_PROF(Reclaim);
    unsigned rotations = 0;
    while (!cg.lruEmpty()) {
        std::uint64_t key = cg.lruVictim();
        Pid vpid = keyPid(key);
        Vpn vvpn = keyVpn(key);
        PageInfo &v = table_.get(vpid, vvpn);
        if (v.accessedBit && rotations < cfg_.secondChanceCap) {
            // Second chance: clear the accessed bit and rotate.
            v.accessedBit = false;
            cg.lruRotate(v);
            ++rotations;
            continue;
        }
        if (advisor_ && rotations < cfg_.secondChanceCap &&
            v.state == PageState::Resident &&
            advisor_->keepWarm(vpid, vvpn, now)) {
            // Trace-informed second chance (§IV): the hot-page trace
            // says this page is warmer than the accessed bit shows.
            cg.lruRotate(v);
            ++rotations;
            continue;
        }

        if (v.state == PageState::Resident) {
            firePteClear(vpid, vvpn, v.ppn, now);
            if (v.injected) {
                // An injected prefetch reclaimed before its first use:
                // a wasted HoPP/Depth-N prefetch.
                v.injected = false;
                for (auto *l : listeners_)
                    l->onPrefetchEvicted(vpid, vvpn, v.origin, now);
            }
            if (v.dirty || !v.hasSwapCopy) {
                if (v.slot == remote::noSlot)
                    v.slot = backend_.allocate(vpid, vvpn);
                backend_.write(now);
                ++stats_.writebacks;
                v.hasSwapCopy = true;
                v.dirty = false;
            }
            for (auto *l : listeners_)
                l->onPageEvicted(vpid, vvpn, now);
        } else {
            hopp_assert(v.state == PageState::SwapCached,
                        "LRU page in unexpected state");
            if (v.prefetched) {
                // Unhit swapcache prefetch discarded: a wasted fetch.
                v.prefetched = false;
                for (auto *l : listeners_)
                    l->onPrefetchEvicted(vpid, vvpn, v.origin, now);
            }
            hopp_assert(v.hasSwapCopy, "swapcache page without swap copy");
            --swapCachedPages_;
        }

        v.state = PageState::Swapped;
        llc_.invalidatePage(v.ppn);
        dram_.release(v.ppn);
        v.ppn = Ppn{};
        cg.lruRemove(v);
        if (v.charged) {
            cg.uncharge();
            v.charged = false;
        }
        ++stats_.evictions;
        if (direct) {
            ++stats_.directReclaims;
            if (cost)
                *cost += cfg_.cost.directReclaimPerPage;
        } else {
            ++stats_.kswapdReclaims;
        }
        // Black box: which page the reclaim scan chose, and whether
        // the caller was a direct-reclaiming fault (b=1) or kswapd.
        // Ring payload serialization. hopp-lint: allow(raw)
        obs::blackbox().record(obs::BbKind::Evict, now, vpid.raw(),
                               vvpn.raw(), direct ? 1 : 0);
        return true;
    }
    return false;
}

Ppn
Vms::obtainFrame(Pid pid, bool charged_alloc, Tick now, Duration *cost)
{
    Cgroup &cg = cgroup(pid);
    if (charged_alloc) {
        while (cg.atLimit()) {
            bool ok = evictOne(cg, now, cost != nullptr, cost);
            hopp_assert(ok, "cgroup at limit with nothing reclaimable");
        }
    }
    while (dram_.exhausted()) {
        // Global memory pressure: reclaim from this cgroup first, then
        // from whichever cgroup holds the most frames.
        if (evictOne(cg, now, cost != nullptr, cost))
            continue;
        Cgroup *biggest = nullptr;
        // Order-independent selection: strictly larger LRU wins and
        // ties go to the smallest pid, so the victim cgroup does not
        // depend on container order (the flat vector is deterministic
        // anyway, but the policy stays order-free).
        for (Cgroup &other : cgroups_) {
            if (other.lruEmpty())
                continue;
            if (!biggest || other.lruSize() > biggest->lruSize() ||
                (other.lruSize() == biggest->lruSize() &&
                 other.pid() < biggest->pid())) {
                biggest = &other;
            }
        }
        hopp_assert(biggest, "DRAM exhausted with nothing reclaimable");
        evictOne(*biggest, now, cost != nullptr, cost);
    }
    maybeKickKswapd(pid, now);
    return dram_.allocate();
}

void
Vms::maybeKickKswapd(Pid pid, Tick now)
{
    if (!cfg_.kswapdEnabled)
        return;
    Cgroup &cg = cgroup(pid);
    auto high = static_cast<std::uint64_t>(
        static_cast<double>(cg.limit()) * cfg_.highWatermark);
    if (cg.charged() < high || cg.kswapdActive())
        return;
    cg.setKswapdActive(true);
    Tick when = std::max(now, eq_.now()) + cfg_.kswapdDelay;
    eq_.schedule(when, [this, pid] { kswapdRun(pid); });
}

void
Vms::kswapdRun(Pid pid)
{
    Cgroup *found = findCgroup(pid);
    if (!found) {
        // The process exited between scheduling and dispatch; its
        // reclaim state died with the cgroup.
        return;
    }
    Cgroup &cg = *found;
    HOPP_PROF(Reclaim);
    auto target = static_cast<std::uint64_t>(
        static_cast<double>(cg.limit()) * cfg_.lowWatermark);
    if (trace_)
        trace_->begin("vm", "reclaim.kswapd", eq_.now(),
                      obs::track::kswapd);
    unsigned batch = cfg_.kswapdBatch;
    while (cg.charged() > target && batch-- > 0) {
        if (!evictOne(cg, eq_.now(), false, nullptr))
            break;
    }
    if (trace_) {
        trace_->end("vm", "reclaim.kswapd", eq_.now(),
                    obs::track::kswapd);
        trace_->counter("vm", "kswapd_reclaimed", eq_.now(),
                        stats_.kswapdReclaims);
    }
    if (cg.charged() > target && !cg.lruEmpty()) {
        eq_.scheduleIn(cfg_.kswapdDelay, [this, pid] { kswapdRun(pid); });
    } else {
        cg.setKswapdActive(false);
    }
}

void
Vms::mapPage(Pid pid, Vpn vpn, PageInfo &pi, Ppn ppn, bool charged,
             Origin origin, bool injected, Tick now)
{
    // Diagnostic formatting of pid/vpn. hopp-lint: allow(raw)
    HOPP_DCHECK(pi.state != PageState::Resident,
                "double map of page %u:%llu", pid.raw(),
                (unsigned long long)vpn.raw());
    // Diagnostic formatting of pid/vpn. hopp-lint: allow(raw)
    HOPP_DCHECK(!pi.inflight, "mapping page %u:%llu mid-fetch", pid.raw(),
                (unsigned long long)vpn.raw());
    pi.state = PageState::Resident;
    pi.ppn = ppn;
    pi.origin = origin;
    pi.injected = injected;
    pi.prefetched = false;
    pi.fetchedAt = now;
    pi.accessedBit = false;
    if (charged) {
        cgroup(pid).charge();
        pi.charged = true;
    }
    if (!pi.inLru)
        cgroup(pid).lruInsert(pageKey(pid, vpn), pi);
    firePteSet(pid, vpn, pi, now);
}

Duration
Vms::accessSlow(Pid pid, VirtAddr va, bool is_write, Tick now, Tlb *tlb)
{
    // stats_.accesses was already booked by noteAccess() in access().
    Vpn vpn = pageOf(va);
    PageInfo *walked;
    {
        // Host-time slice of the two-level walk alone, separated from
        // the fault handling below so the TLB-vs-walk trade stays
        // measurable.
        HOPP_PROF(RadixWalk);
        walked = &table_.get(pid, vpn);
    }
    PageInfo &pi = *walked;
    // Everything below the Resident arm is fault handling.
    HOPP_PROF_IF(FaultPath, pi.state != PageState::Resident);

    // Radix leaves never move, so &pi stays valid across the frame
    // allocation / reclaim below and is safe to cache in the TLB once
    // the page is Resident (any later PTE clear shoots it down).
    switch (pi.state) {
      case PageState::Resident:
        if (tlb)
            tlb->fill(pid, vpn, &pi);
        return residentAccess(pid, pi, va, is_write, now);

      case PageState::Untouched: {
        // First touch: zero-fill minor fault. The fresh page has no
        // remote copy, so it is born dirty.
        Duration cost = cfg_.cost.coldFaultOverhead();
        Ppn ppn = obtainFrame(pid, true, now, &cost);
        mapPage(pid, vpn, pi, ppn, true, originDemand, false, now + cost);
        pi.dirty = true;
        pi.hasSwapCopy = false;
        ++stats_.coldFaults;
        // Ring payload serialization. hopp-lint: allow(raw)
        obs::blackbox().record(obs::BbKind::FaultCold, now, pid.raw(),
                               vpn.raw(), cost);
        if (trace_)
            trace_->complete("vm", "fault.cold", now, cost,
                             obs::track::ofPid(pid));
        for (auto *l : listeners_)
            l->onFaultResolved(pid, vpn, FaultKind::Cold, cost, now + cost);
        if (tlb)
            tlb->fill(pid, vpn, &pi);
        cost += residentAccess(pid, pi, va, is_write, now + cost);
        return cost;
      }

      case PageState::SwapCached: {
        // Prefetch-hit: the page is in DRAM but the fault still costs
        // the 2.3 us kernel path (§II-A / §II-C).
        Duration cost = cfg_.cost.prefetchHitOverhead();
        bool was_prefetched = pi.prefetched;
        Origin origin = pi.origin;
        Tick ready_at = pi.fetchedAt;
        Cgroup &cg = cgroup(pid);
        // Take the page off the LRU while charging so the reclaim loop
        // cannot pick the very page being promoted.
        cg.lruRemove(pi);
        if (!pi.charged) {
            while (cg.atLimit()) {
                bool ok = evictOne(cg, now, true, &cost);
                hopp_assert(ok, "cgroup at limit with empty LRU");
            }
            cg.charge();
            pi.charged = true;
        }
        pi.state = PageState::Resident;
        pi.prefetched = false;
        cg.lruInsert(pageKey(pid, vpn), pi);
        firePteSet(pid, vpn, pi, now + cost);
        ++stats_.swapCacheHits;
        --swapCachedPages_;
        // Ring payload serialization. hopp-lint: allow(raw)
        obs::blackbox().record(obs::BbKind::FaultSwapHit, now, pid.raw(),
                               vpn.raw(), cost);
        if (trace_)
            trace_->complete("vm", "fault.swapcache_hit", now, cost,
                             obs::track::ofPid(pid));
        if (was_prefetched) {
            for (auto *l : listeners_)
                l->onPrefetchHit(pid, vpn, origin, ready_at, now + cost,
                                 false);
        }
        for (auto *l : listeners_)
            l->onFaultResolved(pid, vpn, FaultKind::SwapCacheHit, cost,
                               now + cost);
        if (faultCb_) {
            faultCb_(FaultContext{pid, vpn, pi.slot,
                                  FaultKind::SwapCacheHit, now + cost});
        }
        if (tlb)
            tlb->fill(pid, vpn, &pi);
        cost += residentAccess(pid, pi, va, is_write, now + cost);
        return cost;
      }

      case PageState::Swapped: {
        if (pi.inflight) {
            // Fault on a page whose prefetch is still in the air: the
            // kernel waits on the in-flight IO, then takes the
            // swapcache-hit path.
            Duration wait =
                pi.completesAt > now ? pi.completesAt - now : 0;
            Duration cost = wait + cfg_.cost.prefetchHitOverhead();
            Origin origin = pi.origin;
            Tick ready_at = pi.completesAt;
            pi.inflight = false; // completion handler will drop it
            Ppn ppn = obtainFrame(pid, true, now, &cost);
            mapPage(pid, vpn, pi, ppn, true, origin, false, now + cost);
            pi.hasSwapCopy = true;
            pi.dirty = false;
            mc_.pageDma(ppn, now + cost);
            llc_.invalidatePage(ppn);
            ++stats_.inflightWaits;
            --inflight_;
            // Ring payload serialization. hopp-lint: allow(raw)
            obs::blackbox().record(obs::BbKind::FaultWait, now,
                                   pid.raw(), vpn.raw(), cost);
            if (trace_)
                trace_->complete("vm", "fault.inflight_wait", now, cost,
                                 obs::track::ofPid(pid));
            for (auto *l : listeners_) {
                // The in-flight prefetch is consumed here; its normal
                // completion event will be dropped, so account for the
                // completed fetch before the hit.
                l->onPrefetchCompleted(pid, vpn, origin, now + cost,
                                       false);
                l->onPrefetchHit(pid, vpn, origin, ready_at, now + cost,
                                 false);
                l->onFaultResolved(pid, vpn, FaultKind::InflightWait, cost,
                                   now + cost);
            }
            if (faultCb_) {
                faultCb_(FaultContext{pid, vpn, pi.slot,
                                      FaultKind::InflightWait, now + cost});
            }
            if (tlb)
                tlb->fill(pid, vpn, &pi);
            cost += residentAccess(pid, pi, va, is_write, now + cost);
            return cost;
        }

        // Full remote fault: kernel path + RDMA + PTE establish.
        Duration cost = cfg_.cost.contextSwitch + cfg_.cost.pageWalk +
                        cfg_.cost.swapCacheQuery;
        Ppn ppn = obtainFrame(pid, true, now, &cost);
        Duration kernel = cost; // §II-A steps 1-3 + direct reclaim
        Tick completion = backend_.demandRead(now + cost);
        cost = (completion - now) + cfg_.cost.pteEstablish;
        mapPage(pid, vpn, pi, ppn, true, originDemand, false, now + cost);
        pi.hasSwapCopy = true;
        pi.dirty = false;
        mc_.pageDma(ppn, now + cost);
        llc_.invalidatePage(ppn);
        ++stats_.remoteFaults;
        // Ring payload serialization. hopp-lint: allow(raw)
        obs::blackbox().record(obs::BbKind::FaultRemote, now, pid.raw(),
                               vpn.raw(), cost);
        if (trace_) {
            // The fault span plus its §II-A decomposition: kernel
            // steps (incl. direct reclaim), the RDMA transfer (incl.
            // link queueing), and the PTE establish tail.
            std::uint32_t tid = obs::track::ofPid(pid);
            trace_->complete("vm", "fault.remote", now, cost, tid);
            trace_->complete("vm", "remote.kernel", now, kernel, tid);
            trace_->complete("vm", "remote.rdma", now + kernel,
                             completion - (now + kernel), tid);
            trace_->complete("vm", "remote.pte", completion,
                             cfg_.cost.pteEstablish, tid);
        }
        for (auto *l : listeners_) {
            l->onDemandRemote(pid, vpn, now);
            l->onFaultResolved(pid, vpn, FaultKind::Remote, cost,
                               now + cost);
        }
        if (faultCb_) {
            faultCb_(FaultContext{pid, vpn, pi.slot, FaultKind::Remote,
                                  now + cost});
        }
        if (tlb)
            tlb->fill(pid, vpn, &pi);
        cost += residentAccess(pid, pi, va, is_write, now + cost);
        return cost;
      }
    }
    hopp_panic("unreachable page state");
}

bool
Vms::prefetchable(Pid pid, Vpn vpn) const
{
    const PageInfo *pi = table_.find(pid, vpn);
    return pi && pi->state == PageState::Swapped && !pi->inflight;
}

bool
Vms::prefetchToSwapCache(Pid pid, Vpn vpn, Origin origin, Tick now)
{
    if (!prefetchable(pid, vpn))
        return false;
    PageInfo &pi = table_.get(pid, vpn);
    pi.inflight = true;
    pi.injectOnArrival = false;
    pi.origin = origin;
    ++inflight_;
    Tick issue = std::max(now, eq_.now());
    pi.completesAt = backend_.readAsync(
        issue,
        [this, pid, vpn](Tick t) { finishPrefetch(pid, vpn, t); });
    // Ring payload serialization. hopp-lint: allow(raw)
    obs::blackbox().record(obs::BbKind::PrefetchIssue, issue, pid.raw(),
                           vpn.raw(), pi.completesAt.raw());
    if (trace_) {
        // Issue->fill span; ends at the already-known completion tick
        // (the sort puts the end event in its place).
        std::uint64_t id = trace_->nextAsyncId();
        trace_->asyncBegin("vm", "prefetch.swapcache", issue, id);
        trace_->asyncEnd("vm", "prefetch.swapcache", pi.completesAt, id);
    }
    return true;
}

Vms::InjectResult
Vms::prefetchInject(Pid pid, Vpn vpn, Origin origin, Tick now)
{
    PageInfo *found = table_.find(pid, vpn);
    if (found && found->state == PageState::SwapCached) {
        // Adoption: the data is already local (fetched by the
        // fault-path prefetcher); inject the PTE right now so the
        // future touch is a DRAM hit instead of a 2.3 us fault.
        PageInfo &pi = *found;
        Cgroup &cg = cgroup(pid);
        cg.lruRemove(pi);
        if (!pi.charged) {
            while (cg.atLimit()) {
                bool ok = evictOne(cg, now, false, nullptr);
                hopp_assert(ok, "cgroup at limit with empty LRU");
            }
            cg.charge();
            pi.charged = true;
        }
        pi.state = PageState::Resident;
        pi.prefetched = false; // the original fetch is consumed usefully
        pi.origin = origin;
        pi.injected = true;
        pi.accessedBit = false;
        cg.lruInsert(pageKey(pid, vpn), pi);
        firePteSet(pid, vpn, pi, now);
        ++stats_.adoptions;
        --swapCachedPages_;
        // Ring payload serialization. hopp-lint: allow(raw)
        obs::blackbox().record(obs::BbKind::PrefetchInject, now,
                               pid.raw(), vpn.raw(), 0);
        if (trace_)
            trace_->instant("vm", "prefetch.adopt", now,
                            obs::track::ofPid(pid));
        return InjectResult::Adopted;
    }
    if (found && found->state == PageState::Swapped &&
        found->inflight && !found->injectOnArrival) {
        // A swapcache-bound fetch (fault-path readahead) is already on
        // the wire: join it, upgrading the arrival to a PTE injection
        // under the new origin.
        found->injectOnArrival = true;
        found->origin = origin;
        if (trace_)
            trace_->instant("vm", "prefetch.join", now,
                            obs::track::ofPid(pid));
        return InjectResult::Joined;
    }
    if (!prefetchable(pid, vpn))
        return InjectResult::NotIssued;
    PageInfo &pi = table_.get(pid, vpn);
    pi.inflight = true;
    pi.injectOnArrival = true;
    pi.origin = origin;
    ++inflight_;
    Tick issue = std::max(now, eq_.now());
    pi.completesAt = backend_.readAsync(
        issue,
        [this, pid, vpn](Tick t) { finishPrefetch(pid, vpn, t); });
    // Ring payload serialization. hopp-lint: allow(raw)
    obs::blackbox().record(obs::BbKind::PrefetchIssue, issue, pid.raw(),
                           vpn.raw(), pi.completesAt.raw());
    if (trace_) {
        std::uint64_t id = trace_->nextAsyncId();
        trace_->asyncBegin("vm", "prefetch.inject", issue, id);
        trace_->asyncEnd("vm", "prefetch.inject", pi.completesAt, id);
    }
    return InjectResult::Issued;
}

unsigned
Vms::prefetchInjectBatch(Pid pid, Vpn vpn, unsigned count,
                         Origin origin, Tick now)
{
    // Collect the bundle into the reused scratch buffer (reserved in
    // the ctor): consecutive pages that are fetchable now. Only the
    // async completion below copies it, once per batch transfer.
    bundleScratch_.clear();
    for (unsigned i = 0; i < count; ++i) {
        if (prefetchable(pid, vpn + i))
            bundleScratch_.push_back(vpn + i);
    }
    if (bundleScratch_.empty())
        return 0;
    for (Vpn v : bundleScratch_) {
        PageInfo &pi = table_.get(pid, v);
        pi.inflight = true;
        pi.injectOnArrival = true;
        pi.origin = origin;
    }
    inflight_ += bundleScratch_.size();
    // One transfer for the whole bundle: a single base latency, with
    // serialization proportional to the bundle size.
    Tick issue = std::max(now, eq_.now());
    Tick completion = backend_.readBatchAsync(
        bundleScratch_.size(), issue,
        [this, pid, bundle = bundleScratch_](Tick t) {
            for (Vpn v : bundle)
                finishPrefetch(pid, v, t);
        });
    for (Vpn v : bundleScratch_)
        table_.get(pid, v).completesAt = completion;
    // One ring entry covers the bundle (one transfer): a = first vpn,
    // b = bundle size. hopp-lint: allow(raw)
    obs::blackbox().record(obs::BbKind::PrefetchIssue, issue, pid.raw(),
                           bundleScratch_.front().raw(),
                           bundleScratch_.size());
    if (trace_) {
        // One span covers the whole bundle (one RDMA transfer).
        std::uint64_t id = trace_->nextAsyncId();
        trace_->asyncBegin("vm", "prefetch.batch", issue, id);
        trace_->asyncEnd("vm", "prefetch.batch", completion, id);
    }
    return static_cast<unsigned>(bundleScratch_.size());
}

void
Vms::finishPrefetch(Pid pid, Vpn vpn, Tick completion)
{
    PageInfo &pi = table_.get(pid, vpn);
    if (!pi.inflight) {
        // The application faulted while the read was in flight and the
        // fault handler already consumed it.
        ++stats_.prefetchesDropped;
        return;
    }
    // Read the delivery mode at arrival: an injector may have joined
    // this fetch while it was on the wire.
    bool inject = pi.injectOnArrival;
    Origin origin = pi.origin;
    pi.inflight = false;
    --inflight_;
    Ppn ppn = obtainFrame(pid, inject, completion, nullptr);
    pi.hasSwapCopy = true;
    pi.dirty = false;
    pi.fetchedAt = completion;
    mc_.pageDma(ppn, completion);
    llc_.invalidatePage(ppn);
    if (inject) {
        mapPage(pid, vpn, pi, ppn, true, origin, true, completion);
    } else {
        pi.state = PageState::SwapCached;
        pi.ppn = ppn;
        pi.prefetched = true;
        pi.origin = origin;
        pi.charged = false;
        pi.accessedBit = false;
        cgroup(pid).lruInsert(pageKey(pid, vpn), pi);
        ++swapCachedPages_;
    }
    // Ring payload serialization; b=1 when the arrival injected a
    // PTE, 0 when it parked in the swap cache. hopp-lint: allow(raw)
    obs::blackbox().record(obs::BbKind::PrefetchFill, completion,
                           pid.raw(), vpn.raw(), inject ? 1 : 0);
    for (auto *l : listeners_)
        l->onPrefetchCompleted(pid, vpn, origin, completion, inject);
}

} // namespace hopp::vm
