/**
 * @file
 * Global page table: per-(pid, vpn) PageInfo records plus present-PTE
 * queries. The kernel hook points HoPP installs (set_pte_at /
 * pte_clear, §V) are modelled as PteHook callbacks fired by the VMS
 * whenever a mapping is created or destroyed.
 */

#ifndef HOPP_VM_PAGE_TABLE_HH
#define HOPP_VM_PAGE_TABLE_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "vm/page.hh"

namespace hopp::vm
{

/**
 * Kernel virtual-memory hook: notified on every PTE establish / clear,
 * exactly the callbacks HoPP uses for RPT maintenance (§III-C, §V).
 */
class PteHook
{
  public:
    virtual ~PteHook() = default;

    /** A PTE mapping (pid, vpn) -> ppn was established. */
    virtual void onPteSet(Pid pid, Vpn vpn, Ppn ppn, bool shared,
                          bool huge, Tick now) = 0;

    /** The PTE mapping (pid, vpn) -> ppn was removed. */
    virtual void onPteClear(Pid pid, Vpn vpn, Ppn ppn, Tick now) = 0;
};

/**
 * Page table over all simulated processes.
 */
class PageTable
{
  public:
    /** Find-or-create the record for (pid, vpn). */
    PageInfo &
    get(Pid pid, Vpn vpn)
    {
        return pages_[pageKey(pid, vpn)];
    }

    /** Lookup without creating. @return nullptr when absent. */
    PageInfo *
    find(Pid pid, Vpn vpn)
    {
        auto it = pages_.find(pageKey(pid, vpn));
        return it == pages_.end() ? nullptr : &it->second;
    }

    /** Const lookup without creating. */
    const PageInfo *
    find(Pid pid, Vpn vpn) const
    {
        auto it = pages_.find(pageKey(pid, vpn));
        return it == pages_.end() ? nullptr : &it->second;
    }

    /** True when (pid, vpn) has a present PTE (Resident). */
    bool
    present(Pid pid, Vpn vpn) const
    {
        const PageInfo *pi = find(pid, vpn);
        return pi && pi->state == PageState::Resident;
    }

    /** Number of page records (any state). */
    std::size_t size() const { return pages_.size(); }

    /**
     * Visit every present mapping: fn(pid, vpn, const PageInfo&), in
     * sorted (pid, vpn) order so consumers — HoPP's initial RPT build,
     * which walks all page tables at startup (§III-C) — observe the
     * same sequence on every stdlib implementation.
     */
    template <typename Fn>
    void
    forEachPresent(Fn &&fn) const
    {
        std::vector<std::uint64_t> keys;
        keys.reserve(pages_.size());
        // Collection order is erased by the sort below.
        for (const auto &[key, pi] : pages_) { // hopp-lint: allow(unordered-iter)
            if (pi.state == PageState::Resident)
                keys.push_back(key);
        }
        std::sort(keys.begin(), keys.end());
        for (std::uint64_t key : keys)
            fn(keyPid(key), keyVpn(key), pages_.at(key));
    }

    /** Count of pages in a given state (test/metrics helper). */
    std::size_t
    countState(PageState s) const
    {
        std::size_t n = 0;
        // Commutative count: iteration order cannot leak out.
        for (const auto &[key, pi] : pages_) { // hopp-lint: allow(unordered-iter)
            (void)key;
            n += pi.state == s;
        }
        return n;
    }

    /**
     * All page keys belonging to @p pid, in ascending vpn order (the
     * sort makes process teardown deterministic).
     */
    std::vector<std::uint64_t>
    keysOf(Pid pid) const
    {
        std::vector<std::uint64_t> keys;
        // Collection order is erased by the sort below.
        for (const auto &[key, pi] : pages_) { // hopp-lint: allow(unordered-iter)
            (void)pi;
            if (keyPid(key) == pid)
                keys.push_back(key);
        }
        std::sort(keys.begin(), keys.end());
        return keys;
    }

    /** Drop the record for (pid, vpn), if any. */
    void
    erase(Pid pid, Vpn vpn)
    {
        pages_.erase(pageKey(pid, vpn));
    }

    /**
     * Visit every record in any state: fn(key, const PageInfo&). Used
     * by the invariant checker; order-insensitive consumers only.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        // Validation is order-insensitive by construction.
        for (const auto &[key, pi] : pages_) // hopp-lint: allow(unordered-iter)
            fn(key, pi);
    }

  private:
    std::unordered_map<std::uint64_t, PageInfo> pages_;
};

} // namespace hopp::vm

#endif // HOPP_VM_PAGE_TABLE_HH
