/**
 * @file
 * Global page table: per-(pid, vpn) PageInfo records plus present-PTE
 * queries. The kernel hook points HoPP installs (set_pte_at /
 * pte_clear, §V) are modelled as PteHook callbacks fired by the VMS
 * whenever a mapping is created or destroyed.
 *
 * Layout: a two-level radix table, exactly the shape real kernels use
 * instead of a hash. Level one is a per-process directory indexed by
 * the high VPN bits; level two is a fixed 512-entry leaf of contiguous
 * PageInfo records indexed by the low VPN bits. A walk is two array
 * indexations — no hashing, no probing, no pointer-chased buckets —
 * which is what puts it in front of every simulated memory access.
 *
 * Three properties the rest of the simulator leans on:
 *
 *  - Stable pointers: leaves are heap blocks that never move once
 *    allocated, so a PageInfo* stays valid until the record is erased
 *    (process teardown). This is what lets the software TLB (vm/tlb.hh)
 *    cache VPN -> PageInfo* across accesses.
 *  - Deterministic iteration: walking directories in pid order and
 *    leaves in vpn order visits records in ascending (pid, vpn) key
 *    order by construction — no sort step, no stdlib dependence.
 *  - Contiguous storage: the 512 records of a leaf are one array, so
 *    sequential access streams walk the table with near-perfect
 *    spatial locality.
 */

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "vm/page.hh"

namespace hopp::vm
{

/**
 * Kernel virtual-memory hook: notified on every PTE establish / clear,
 * exactly the callbacks HoPP uses for RPT maintenance (§III-C, §V).
 */
class PteHook
{
  public:
    virtual ~PteHook() = default;

    /** A PTE mapping (pid, vpn) -> ppn was established. */
    virtual void onPteSet(Pid pid, Vpn vpn, Ppn ppn, bool shared,
                          bool huge, Tick now) = 0;

    /** The PTE mapping (pid, vpn) -> ppn was removed. */
    virtual void onPteClear(Pid pid, Vpn vpn, Ppn ppn, Tick now) = 0;
};

/**
 * Page table over all simulated processes: per-pid two-level radix.
 */
class PageTable
{
  public:
    /** log2 of the pages covered by one leaf (512, like one PTE page). */
    static constexpr unsigned leafShift = 9;

    /** Pages per leaf. */
    static constexpr std::uint64_t leafPages = 1ull << leafShift;

    /** Find-or-create the record for (pid, vpn). */
    PageInfo &
    get(Pid pid, Vpn vpn)
    {
        Directory &dir = directoryOf(pid);
        std::uint64_t di = dirIndex(vpn);
        // Lazy first-touch radix growth: a directory slot and its leaf
        // are allocated exactly once per address-space region, leaf
        // pointers are pinned thereafter, and steady state is
        // allocation-free (the PR-5 radix design).
        if (di >= dir.leaves.size())
            // hopp-analyze: allow(hotpath-alloc)
            dir.leaves.resize(di + 1);
        if (!dir.leaves[di])
            // hopp-analyze: allow(hotpath-alloc)
            dir.leaves[di] = std::make_unique<Leaf>();
        Leaf &leaf = *dir.leaves[di];
        std::uint64_t slot = slotIndex(vpn);
        if (!leaf.test(slot)) {
            leaf.set(slot);
            ++dir.live;
            ++size_;
        }
        return leaf.pages[slot];
    }

    /** Lookup without creating. @return nullptr when absent. */
    PageInfo *
    find(Pid pid, Vpn vpn)
    {
        std::uint16_t p = pid.raw(); // dense directory index. hopp-lint: allow(raw)
        if (p >= dirs_.size())
            return nullptr;
        Directory &dir = dirs_[p];
        std::uint64_t di = dirIndex(vpn);
        if (di >= dir.leaves.size() || !dir.leaves[di])
            return nullptr;
        Leaf &leaf = *dir.leaves[di];
        std::uint64_t slot = slotIndex(vpn);
        return leaf.test(slot) ? &leaf.pages[slot] : nullptr;
    }

    /** Const lookup without creating. */
    const PageInfo *
    find(Pid pid, Vpn vpn) const
    {
        return const_cast<PageTable *>(this)->find(pid, vpn);
    }

    /** True when (pid, vpn) has a present PTE (Resident). */
    bool
    present(Pid pid, Vpn vpn) const
    {
        const PageInfo *pi = find(pid, vpn);
        return pi && pi->state == PageState::Resident;
    }

    /** Number of page records (any state). */
    std::size_t size() const { return size_; }

    /**
     * Visit every present mapping: fn(pid, vpn, const PageInfo&), in
     * ascending (pid, vpn) order — the radix layout yields that order
     * by construction, so consumers (HoPP's initial RPT build, which
     * walks all page tables at startup, §III-C) observe the same
     * sequence on every stdlib implementation with no sort step.
     */
    template <typename Fn>
    void
    forEachPresent(Fn &&fn) const
    {
        forEach([&](std::uint64_t key, const PageInfo &pi) {
            if (pi.state == PageState::Resident)
                fn(keyPid(key), keyVpn(key), pi);
        });
    }

    /** Count of pages in a given state (test/metrics helper). */
    std::size_t
    countState(PageState s) const
    {
        std::size_t n = 0;
        forEach([&](std::uint64_t, const PageInfo &pi) {
            n += pi.state == s;
        });
        return n;
    }

    /**
     * All page keys belonging to @p pid, in ascending vpn order (so
     * process teardown is deterministic).
     */
    std::vector<std::uint64_t>
    keysOf(Pid pid) const
    {
        std::vector<std::uint64_t> keys;
        std::uint16_t p = pid.raw(); // dense directory index. hopp-lint: allow(raw)
        if (p >= dirs_.size())
            return keys;
        const Directory &dir = dirs_[p];
        keys.reserve(dir.live);
        forEachInDir(dir, [&](Vpn vpn, const PageInfo &) {
            keys.push_back(pageKey(pid, vpn));
        });
        return keys;
    }

    /** Drop the record for (pid, vpn), if any. */
    void
    erase(Pid pid, Vpn vpn)
    {
        std::uint16_t p = pid.raw(); // dense directory index. hopp-lint: allow(raw)
        if (p >= dirs_.size())
            return;
        Directory &dir = dirs_[p];
        std::uint64_t di = dirIndex(vpn);
        if (di >= dir.leaves.size() || !dir.leaves[di])
            return;
        Leaf &leaf = *dir.leaves[di];
        std::uint64_t slot = slotIndex(vpn);
        if (!leaf.test(slot))
            return;
        leaf.clear(slot);
        // Reset in place: the slot may be re-created later and must
        // come back in the default (Untouched) state. The leaf itself
        // stays allocated — its siblings' addresses must not move.
        leaf.pages[slot] = PageInfo{};
        --dir.live;
        --size_;
    }

    /**
     * Visit every record in any state: fn(key, const PageInfo&), in
     * ascending (pid, vpn) key order (deterministic by construction).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t p = 0; p < dirs_.size(); ++p) {
            const Directory &dir = dirs_[p];
            if (dir.live == 0)
                continue;
            Pid pid{static_cast<std::uint64_t>(p)};
            forEachInDir(dir, [&](Vpn vpn, const PageInfo &pi) {
                fn(pageKey(pid, vpn), pi);
            });
        }
    }

  private:
    /**
     * One leaf: 512 contiguous PageInfo records plus a presence bitmap
     * (a record exists only after get() created it, so Untouched slots
     * that were never asked for do not count as records).
     */
    struct Leaf
    {
        std::array<PageInfo, leafPages> pages{};
        std::array<std::uint64_t, leafPages / 64> used{};

        bool
        test(std::uint64_t slot) const
        {
            return (used[slot >> 6] >> (slot & 63)) & 1;
        }

        void set(std::uint64_t slot) { used[slot >> 6] |= 1ull << (slot & 63); }
        void clear(std::uint64_t slot) { used[slot >> 6] &= ~(1ull << (slot & 63)); }
    };

    /** Level-one directory of one process. */
    struct Directory
    {
        std::vector<std::unique_ptr<Leaf>> leaves;
        std::uint64_t live = 0; //!< records under this directory
    };

    static std::uint64_t
    dirIndex(Vpn vpn)
    {
        // The directory is a dense array over vpn >> leafShift; bound
        // the index so a stray huge VPN cannot balloon it. Real
        // workloads top out around 2^25 pages (dir index ~2^16).
        std::uint64_t di = vpn.raw() >> leafShift; // radix split. hopp-lint: allow(raw)
        hopp_assert(di < (1ull << 28),
                    "vpn %llu beyond the radix directory range",
                    (unsigned long long)vpn.raw()); // hopp-lint: allow(raw)
        return di;
    }

    static std::uint64_t
    slotIndex(Vpn vpn)
    {
        return vpn.raw() & (leafPages - 1); // radix split. hopp-lint: allow(raw)
    }

    Directory &
    directoryOf(Pid pid)
    {
        std::uint16_t p = pid.raw(); // dense directory index. hopp-lint: allow(raw)
        if (p >= dirs_.size())
            // Grows once per new pid (process creation), never on a
            // steady-state walk. hopp-analyze: allow(hotpath-alloc)
            dirs_.resize(p + 1);
        return dirs_[p];
    }

    /** Visit one directory's records in ascending vpn order. */
    template <typename Fn>
    static void
    forEachInDir(const Directory &dir, Fn &&fn)
    {
        for (std::size_t di = 0; di < dir.leaves.size(); ++di) {
            const Leaf *leaf = dir.leaves[di].get();
            if (!leaf)
                continue;
            for (std::uint64_t w = 0; w < leaf->used.size(); ++w) {
                std::uint64_t bits = leaf->used[w];
                while (bits) {
                    auto b = static_cast<std::uint64_t>(
                        __builtin_ctzll(bits));
                    bits &= bits - 1;
                    std::uint64_t slot = w * 64 + b;
                    fn(Vpn{(static_cast<std::uint64_t>(di) << leafShift) |
                           slot},
                       leaf->pages[slot]);
                }
            }
        }
    }

    std::vector<Directory> dirs_; //!< indexed by pid
    std::uint64_t size_ = 0;      //!< total records, all processes
};

} // namespace hopp::vm

