/**
 * @file
 * Global page table: per-(pid, vpn) PageInfo records plus present-PTE
 * queries. The kernel hook points HoPP installs (set_pte_at /
 * pte_clear, §V) are modelled as PteHook callbacks fired by the VMS
 * whenever a mapping is created or destroyed.
 */

#ifndef HOPP_VM_PAGE_TABLE_HH
#define HOPP_VM_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "vm/page.hh"

namespace hopp::vm
{

/**
 * Kernel virtual-memory hook: notified on every PTE establish / clear,
 * exactly the callbacks HoPP uses for RPT maintenance (§III-C, §V).
 */
class PteHook
{
  public:
    virtual ~PteHook() = default;

    /** A PTE mapping (pid, vpn) -> ppn was established. */
    virtual void onPteSet(Pid pid, Vpn vpn, Ppn ppn, bool shared,
                          bool huge, Tick now) = 0;

    /** The PTE mapping (pid, vpn) -> ppn was removed. */
    virtual void onPteClear(Pid pid, Vpn vpn, Ppn ppn, Tick now) = 0;
};

/**
 * Page table over all simulated processes.
 */
class PageTable
{
  public:
    /** Find-or-create the record for (pid, vpn). */
    PageInfo &
    get(Pid pid, Vpn vpn)
    {
        return pages_[pageKey(pid, vpn)];
    }

    /** Lookup without creating. @return nullptr when absent. */
    PageInfo *
    find(Pid pid, Vpn vpn)
    {
        auto it = pages_.find(pageKey(pid, vpn));
        return it == pages_.end() ? nullptr : &it->second;
    }

    /** Const lookup without creating. */
    const PageInfo *
    find(Pid pid, Vpn vpn) const
    {
        auto it = pages_.find(pageKey(pid, vpn));
        return it == pages_.end() ? nullptr : &it->second;
    }

    /** True when (pid, vpn) has a present PTE (Resident). */
    bool
    present(Pid pid, Vpn vpn) const
    {
        const PageInfo *pi = find(pid, vpn);
        return pi && pi->state == PageState::Resident;
    }

    /** Number of page records (any state). */
    std::size_t size() const { return pages_.size(); }

    /**
     * Visit every present mapping: fn(pid, vpn, const PageInfo&).
     * Used by HoPP's initial RPT build, which walks all page tables at
     * startup (§III-C).
     */
    template <typename Fn>
    void
    forEachPresent(Fn &&fn) const
    {
        for (const auto &[key, pi] : pages_) {
            if (pi.state == PageState::Resident)
                fn(keyPid(key), keyVpn(key), pi);
        }
    }

    /** Count of pages in a given state (test/metrics helper). */
    std::size_t
    countState(PageState s) const
    {
        std::size_t n = 0;
        for (const auto &[key, pi] : pages_) {
            (void)key;
            n += pi.state == s;
        }
        return n;
    }

  private:
    std::unordered_map<std::uint64_t, PageInfo> pages_;
};

} // namespace hopp::vm

#endif // HOPP_VM_PAGE_TABLE_HH
