/**
 * @file
 * Per-page bookkeeping shared between the VMS, the prefetchers and the
 * statistics sinks.
 */

#pragma once

#include <cstdint>
#include <list>

#include "common/types.hh"
#include "remote/remote_node.hh"

namespace hopp::vm
{

/** Lifecycle of one virtual page in the disaggregated hierarchy. */
enum class PageState : std::uint8_t
{
    Untouched,  //!< never accessed; first touch is a zero-fill fault
    Resident,   //!< PTE present, frame in local DRAM
    SwapCached, //!< frame in DRAM but PTE absent (prefetched, not hit)
    Swapped,    //!< only the remote swap-slot copy exists
};

/** Who brought a page into local memory. 0 is the demand path. */
using Origin = std::uint8_t;

/** Demand (fault) path origin. */
inline constexpr Origin originDemand = 0;

/**
 * Composite (pid, vpn) key used by the page table and LRU lists. The
 * pid/vpn bit-packing below is a designated raw boundary: the key is a
 * deliberate 64-bit encoding, not address arithmetic.
 */
constexpr std::uint64_t
pageKey(Pid pid, Vpn vpn) // hopp-lint: allow(raw-int-addr)
{
    // Packing into the 16:48 key layout. hopp-lint: allow(raw)
    return (static_cast<std::uint64_t>(pid.raw()) << 48) | vpn.raw();
}

/** Extract the pid from a page key. */
constexpr Pid
keyPid(std::uint64_t key)
{
    return Pid{key >> 48};
}

/** Extract the vpn from a page key. */
constexpr Vpn
keyVpn(std::uint64_t key)
{
    return Vpn{key & ((1ull << 48) - 1)};
}

/**
 * All VMS state of one virtual page.
 */
struct PageInfo
{
    PageState state = PageState::Untouched;

    /** Local frame; valid in Resident / SwapCached. */
    Ppn ppn;

    /** Remote slot; valid when a swap copy exists or the page is out. */
    remote::SwapSlot slot = remote::noSlot;

    /** The slot holds a byte-accurate copy (page clean since fetch). */
    bool hasSwapCopy = false;

    /** Written since the last writeback / fetch. */
    bool dirty = false;

    /** Hardware accessed bit, consumed by second-chance reclaim. */
    bool accessedBit = false;

    /** Resident via early PTE injection and not yet referenced. */
    bool injected = false;

    /** In swapcache from a prefetch and not yet hit. */
    bool prefetched = false;

    /** Asynchronous fetch outstanding. */
    bool inflight = false;

    /** Map (inject the PTE) as soon as the in-flight fetch arrives. */
    bool injectOnArrival = false;

    /** This frame is charged to the owning cgroup. */
    bool charged = false;

    /** Shared-page flag forwarded through the RPT (§III-C). */
    bool shared = false;

    /** Huge-page flag forwarded through the RPT (§III-C). */
    bool huge = false;

    /** Who fetched the current local copy. */
    Origin origin = originDemand;

    /** Completion tick of the fetch that produced the local copy. */
    Tick fetchedAt;

    /** Completion tick of the outstanding fetch while inflight. */
    Tick completesAt;

    /** Position in the owning cgroup's LRU list while in DRAM. */
    std::list<std::uint64_t>::iterator lruIt{};

    /** True when lruIt is valid. */
    bool inLru = false;
};

} // namespace hopp::vm

