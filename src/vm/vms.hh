/**
 * @file
 * The virtual memory subsystem (VMS): translation, page faults,
 * swapcache, reclaim and the two prefetch insertion paths (swapcache
 * fill for kernel-style readahead; early PTE injection for Depth-N and
 * HoPP, §II-C/§III-F).
 *
 * This is the substrate every system under evaluation shares; the
 * systems differ only in which prefetcher drives it and whether pages
 * arrive via the swapcache or via injection.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "check/check.hh"
#include "common/types.hh"
#include "mem/llc.hh"
#include "mem/memctrl.hh"
#include "obs/profiler.hh"
#include "obs/tracer.hh"
#include "remote/swap_backend.hh"
#include "sim/event_queue.hh"
#include "vm/cgroup.hh"
#include "vm/cost_model.hh"
#include "vm/listener.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace hopp::check
{
class Access; // invariant-checker introspection (src/check)
}

namespace hopp::vm
{

/** VMS behaviour knobs. */
struct VmsConfig
{
    /** Swap-path latency model (§II-A). */
    CostModel cost;

    /** Run kswapd-style background reclaim ahead of demand. */
    bool kswapdEnabled = true;

    /**
     * Background reclaim starts when charged frames exceed
     * limit * highWatermark and stops below limit * lowWatermark.
     */
    double highWatermark = 0.98;
    double lowWatermark = 0.94;

    /** Dispatch delay of a background reclaim pass. */
    Duration kswapdDelay = 10'000; // 10 us

    /**
     * Evictions one background reclaim pass attempts before it
     * reschedules (the kernel's per-iteration shrink burst). Must be
     * nonzero: a pass that evicts nothing could never converge to the
     * low watermark.
     */
    unsigned kswapdBatch = 32;

    /** Max LRU rotations (second chances) per eviction scan. */
    unsigned secondChanceCap = 64;
};

/** Aggregate VMS event counters. */
struct VmsStats
{
    std::uint64_t accesses = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t coldFaults = 0;
    std::uint64_t remoteFaults = 0;
    std::uint64_t swapCacheHits = 0;
    std::uint64_t inflightWaits = 0;
    std::uint64_t injectedHits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t directReclaims = 0;
    std::uint64_t kswapdReclaims = 0;
    std::uint64_t prefetchesDropped = 0;
    std::uint64_t adoptions = 0; //!< swapcache pages PTE-injected

    /** All page faults (cold + remote + swapcache hits + waits). */
    std::uint64_t
    faults() const
    {
        return coldFaults + remoteFaults + swapCacheHits + inflightWaits;
    }
};

/**
 * The virtual memory subsystem.
 */
class Vms
{
  public:
    Vms(sim::EventQueue &eq, mem::Dram &dram, mem::MemCtrl &mc,
        mem::Llc &llc, remote::SwapBackend &backend,
        const VmsConfig &cfg = {});

    /** Register a process with a cgroup limit in frames. */
    void createProcess(Pid pid, std::uint64_t limit_frames);

    /**
     * Tear a process down: unmap and release every local frame, free
     * its swap slots and page records, and drop the cgroup (with its
     * kswapd latch — so long colocation runs that churn processes
     * retain no per-pid bookkeeping). Requires no in-flight prefetches
     * for the process; a kswapd pass still scheduled when the cgroup
     * disappears becomes a no-op.
     */
    void destroyProcess(Pid pid, Tick now);

    /**
     * One application memory access (the whole data path: translate,
     * fault if needed, LLC/DRAM access).
     *
     * The translation itself is the host-side hot path: with a @p tlb
     * the caller-provided software TLB (vm/tlb.hh) short-circuits the
     * radix walk for resident pages, and the whole hit chain — TLB
     * probe, accessed-bit update, LLC tag probe — inlines here with no
     * out-of-line call. TLB on and off produce bit-identical simulation
     * results; only host throughput differs.
     *
     * @param now the issuing thread's local time.
     * @param tlb optional per-thread software TLB.
     * @return the access latency charged to the thread.
     */
    Duration
    access(Pid pid, VirtAddr va, bool is_write, Tick now,
           Tlb *tlb = nullptr)
    {
        noteAccess();
        if (tlb) {
            if (PageInfo *pi = tlb->lookup(pid, pageOf(va))) {
                // Cached translations are invalidated on every PTE
                // clear, so a hit is by construction Resident.
                return residentAccess(pid, *pi, va, is_write, now);
            }
        }
        return accessSlow(pid, va, is_write, now, tlb);
    }

    /**
     * Drain a block of accesses: the batched pump's inner loop
     * (ROADMAP item 3). Semantically a sequence of access() calls
     * threading the issuing thread's local time through, with the
     * pre-batching per-access yield check kept intact: the drain stops
     * as soon as the thread's time reaches @p stopAt (the next other
     * thread's local time) or the earliest pending event, whichever
     * comes first — both are single inline compares, so the whole
     * resident chain (TLB probe, accessed-bit update, LLC tag probe)
     * still runs back to back with no event-queue round trip. Because
     * the yield points are identical to the scalar pump's, batch on
     * and off stay byte-identical (the --no-batch cross-check test).
     *
     * @tparam AccessT any record with `.va` and `.write` members
     *         (workloads::Access; a template so the vm layer needs no
     *         include of the workloads layer above it).
     * @param stopAt yield horizon; maxTick to drain unconditionally.
     * @param consumed out: number of accesses performed (>= 1 when
     *        n > 0; the yield check runs after each access).
     * @return the thread's local time after the last access performed.
     */
    template <typename AccessT>
    Tick
    accessBatch(Pid pid, const AccessT *block, std::size_t n, Tick now,
                Tick stopAt, std::size_t *consumed, Tlb *tlb = nullptr)
    {
        HOPP_PROF(VmsAccess);
        std::size_t i = 0;
        while (i < n) {
            now += access(pid, block[i].va, block[i].write, now, tlb);
            ++i;
            if (now >= stopAt || now >= eq_.nextTime())
                break;
        }
        *consumed = i;
        return now;
    }

    /**
     * Issue an asynchronous prefetch that lands in the swapcache
     * (kernel-style readahead: a later fault still pays 2.3 us).
     *
     * @return true when actually issued (page was swapped-out and idle).
     */
    bool prefetchToSwapCache(Pid pid, Vpn vpn, Origin origin, Tick now);

    /** Outcome of a prefetchInject() request. */
    enum class InjectResult
    {
        NotIssued, //!< resident, untouched, or already inject-bound
        Issued,    //!< RDMA read issued; PTE injected on arrival
        Adopted,   //!< page was in the swapcache: PTE injected now,
                   //!< no transfer needed (the fetch of the original
                   //!< prefetcher is adopted)
        Joined,    //!< a swapcache-bound fetch was in flight: the
                   //!< request joins it and the PTE is injected on
                   //!< arrival
    };

    /**
     * Issue an asynchronous prefetch with early PTE injection: the PTE
     * is established the moment the page arrives, so a subsequent touch
     * is a plain DRAM hit (§II-C, §III-F). The frame is charged to the
     * application's cgroup (§I contribution 4). A page that already
     * sits in the swapcache (e.g. readahead fetched it on the fault
     * path) is adopted: mapped immediately at zero transfer cost.
     */
    InjectResult prefetchInject(Pid pid, Vpn vpn, Origin origin,
                                Tick now);

    /**
     * Batched injection (§IV huge-page support direction): fetch up to
     * @p count consecutive pages starting at @p vpn with ONE RDMA
     * transfer (one base latency for the whole 2 MB-style batch) and
     * inject each page's PTE on arrival. Pages that are not
     * prefetchable are skipped.
     *
     * @return the number of pages actually bundled.
     */
    unsigned prefetchInjectBatch(Pid pid, Vpn vpn, unsigned count,
                                 Origin origin, Tick now);

    /** True if a prefetch of (pid, vpn) would be useful right now. */
    bool prefetchable(Pid pid, Vpn vpn) const;

    /** Register the fault-driven prefetcher callback. */
    void setFaultCallback(FaultCallback cb) { faultCb_ = std::move(cb); }

    /** Attach a lifecycle listener (stats, HoPP policy). */
    void addListener(PageEventListener *l) { listeners_.push_back(l); }

    /** Attach a PTE hook (HoPP RPT maintenance). */
    void addPteHook(PteHook *h) { pteHooks_.push_back(h); }

    /**
     * Eviction advisor (§IV: "the software can serve other purposes
     * with full memory traces, e.g., improving kernel page eviction"):
     * when set, reclaim gives pages the advisor reports as recently
     * hot a rotation even if their accessed bit is clear.
     */
    class EvictionAdvisor
    {
      public:
        virtual ~EvictionAdvisor() = default;

        /** True to keep (pid, vpn) in memory a little longer. */
        virtual bool keepWarm(Pid pid, Vpn vpn, Tick now) = 0;
    };

    /** Install (or clear, with nullptr) the eviction advisor. */
    void setEvictionAdvisor(EvictionAdvisor *a) { advisor_ = a; }

    /**
     * Attach the flight recorder: fault-resolution spans per class
     * (with the remote path decomposed into §II-A kernel / RDMA / PTE
     * sub-spans), async prefetch issue->fill spans, reclaim-pass
     * spans and sampled miss counters. nullptr (default) detaches.
     */
    void setTracer(obs::Tracer *tracer) { trace_ = tracer; }

    /** Pages currently sitting in the swapcache (gauge). */
    std::uint64_t swapCachedPages() const { return swapCachedPages_; }

    /** Prefetch reads currently in flight (gauge). */
    std::uint64_t inflightPrefetches() const { return inflight_; }

    /** Zero all event counters (between experiment repetitions). */
    void resetStats() { stats_ = VmsStats{}; }

    /** The page table (for HoPP's initial RPT build and tests). */
    PageTable &pageTable() { return table_; }

    /** Cgroup of a process. */
    Cgroup &cgroup(Pid pid);

    /** Cgroup of a process, or nullptr after teardown. */
    Cgroup *findCgroup(Pid pid);

    /** Number of live processes. */
    std::size_t processCount() const { return cgroups_.size(); }

    /** Event counters. */
    const VmsStats &stats() const { return stats_; }

    /** Configuration in effect. */
    const VmsConfig &config() const { return cfg_; }

    /**
     * Mark a page's RPT flags (shared / huge). Test and example helper
     * exercising the §III-C flag plumbing.
     */
    void markFlags(Pid pid, Vpn vpn, bool shared, bool huge);

  private:
    friend class hopp::check::Access;

    /**
     * Count one application access. The single stats_.accesses site:
     * every entry point (access, accessBatch) books the access here
     * before dispatching, so the counter-conservation invariant
     * (accesses == llcHits + llcMisses) cannot drift between the TLB,
     * slow, and batched paths.
     */
    void noteAccess() { ++stats_.accesses; }

    /**
     * LLC + DRAM data-path cost for a resident access. Inline: this is
     * the tail of both the TLB fast path and every fault resolution.
     */
    Duration
    residentAccess(Pid pid, PageInfo &pi, VirtAddr va, bool is_write,
                   Tick now)
    {
        // Diagnostic formatting of pid/vpn. hopp-lint: allow(raw)
        HOPP_DCHECK(pi.state == PageState::Resident,
                    "data-path access to page %u:%llu in state %u",
                    pid.raw(), (unsigned long long)pageOf(va).raw(),
                    unsigned(pi.state));
        pi.accessedBit = true;
        if (is_write) {
            pi.dirty = true;
            pi.hasSwapCopy = false;
        }
        if (pi.injected) {
            // First touch of an early-injected page: a plain DRAM hit
            // instead of a 2.3 us prefetch-hit fault (§II-C).
            pi.injected = false;
            ++stats_.injectedHits;
            for (auto *l : listeners_)
                l->onPrefetchHit(pid, pageOf(va), pi.origin, pi.fetchedAt,
                                 now, true);
        }
        PhysAddr pa = pageBase(pi.ppn) + pageOffset(va);
        if (llc_.access(pa)) {
            ++stats_.llcHits;
            if (trace_ && stats_.llcHits % llcTraceSample == 0)
                traceLlcCounters(now);
            return cfg_.cost.llcHit;
        }
        ++stats_.llcMisses;
        if (trace_ && stats_.llcMisses % llcTraceSample == 0)
            traceLlcCounters(now);
        // A write miss performs read-for-ownership first, so the MC
        // sees a READ either way (§III-B).
        mc_.demandRead(lineBase(pa), now);
        return cfg_.cost.dramHit;
    }

    /** Sampling cadence of the LLC trace counters (every Nth event). */
    static constexpr std::uint64_t llcTraceSample = 4096;

    /**
     * Emit both sampled LLC counters together (hit- and miss-side call
     * sites share this, so the pair always moves in lockstep). Each
     * side samples on its own counter's cadence — hit-heavy phases
     * used to go untraced because only the miss counter gated the
     * emission.
     */
    void
    traceLlcCounters(Tick now)
    {
        trace_->counter("mem", "llc_misses", now, stats_.llcMisses);
        trace_->counter("mem", "llc_hits", now, stats_.llcHits);
    }

    /** Fault path and first resident touch; fills @p tlb on the way out. */
    Duration accessSlow(Pid pid, VirtAddr va, bool is_write, Tick now,
                        Tlb *tlb);

    /**
     * Make a frame available for (pid, charged ? charged alloc : cache
     * alloc). Direct-reclaim cost is accumulated into *cost when the
     * caller is the faulting thread; nullptr means reclaim is free
     * (kernel-thread context).
     */
    Ppn obtainFrame(Pid pid, bool charged_alloc, Tick now,
                    Duration *cost);

    /** Evict one page from the cgroup LRU. @return false when empty. */
    bool evictOne(Cgroup &cg, Tick now, bool direct, Duration *cost);

    /** Schedule background reclaim when above the high watermark. */
    void maybeKickKswapd(Pid pid, Tick now);

    /** Background reclaim pass. */
    void kswapdRun(Pid pid);

    /** Map a fetched page: state, PTE hook, LRU. */
    void mapPage(Pid pid, Vpn vpn, PageInfo &pi, Ppn ppn, bool charged,
                 Origin origin, bool injected, Tick now);

    /** Completion handler shared by both prefetch flavours. */
    void finishPrefetch(Pid pid, Vpn vpn, Tick completion);

    void firePteSet(Pid pid, Vpn vpn, const PageInfo &pi, Tick now);
    void firePteClear(Pid pid, Vpn vpn, Ppn ppn, Tick now);

    sim::EventQueue &eq_;
    mem::Dram &dram_;
    mem::MemCtrl &mc_;
    mem::Llc &llc_;
    remote::SwapBackend &backend_;
    VmsConfig cfg_;
    PageTable table_;
    /// Creation-ordered flat array: process counts are small (one per
    /// colocated app), so a linear scan beats hashing on the per-fault
    /// lookup path, and iteration is deterministic by construction.
    /// The kswapd latch lives inside each Cgroup (see cgroup.hh).
    std::vector<Cgroup> cgroups_;
    FaultCallback faultCb_;
    std::vector<PageEventListener *> listeners_;
    std::vector<PteHook *> pteHooks_;
    EvictionAdvisor *advisor_ = nullptr;
    VmsStats stats_;
    obs::Tracer *trace_ = nullptr;
    std::uint64_t swapCachedPages_ = 0; //!< live SwapCached count
    std::uint64_t inflight_ = 0;        //!< live in-flight prefetches
    /// Reused by prefetchInjectBatch so batch assembly on the drain
    /// path does not allocate per call (reserved in the ctor).
    std::vector<Vpn> bundleScratch_;
};

} // namespace hopp::vm

