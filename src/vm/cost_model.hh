/**
 * @file
 * Latency cost model of the kernel swap path, taken directly from the
 * paper's §II-A breakdown of a page fault in kernel-based disaggregated
 * memory systems. All values in nanoseconds of simulated time.
 */

#pragma once

#include "common/types.hh"

namespace hopp::vm
{

/**
 * Per-step costs of the swap data path (§II-A steps 1-6). The RDMA
 * transfer (step 4) is not a constant here: it comes from the network
 * model, so queueing under load is captured.
 */
struct CostModel
{
    /** Step 1: page-fault context switch. */
    Duration contextSwitch = 300;

    /** Step 2: kernel page-table walk to locate the PTE. */
    Duration pageWalk = 600;

    /** Step 3: swapcache query (+ page/swap-entry allocation on miss). */
    Duration swapCacheQuery = 400;

    /** Step 5: direct (synchronous) reclaim, per reclaimed page. */
    Duration directReclaimPerPage = 3000;

    /** Step 6: establish PTE and return to user space. */
    Duration pteEstablish = 1000;

    /**
     * Per-access occupancy of an LLC miss served by DRAM. The paper's
     * DRAM-hit *latency* is 0.1 us, but out-of-order cores overlap
     * about four misses (MLP), so the time the thread is charged per
     * miss is ~25 ns; anything larger makes applications artificially
     * compute-bound relative to the 4-9 us swap path.
     */
    Duration dramHit = 25;

    /** LLC hit occupancy (pipelined). */
    Duration llcHit = 5;

    /**
     * Prefetch-hit: a fault that finds its page in the swapcache still
     * pays steps 1+2+3+6 = 2.3 us (post Linux v5.8, §II-A).
     */
    Duration
    prefetchHitOverhead() const
    {
        return contextSwitch + pageWalk + swapCacheQuery + pteEstablish;
    }

    /** First-touch (zero-fill) minor fault: same kernel path, no IO. */
    Duration
    coldFaultOverhead() const
    {
        return contextSwitch + pageWalk + swapCacheQuery + pteEstablish;
    }

    /**
     * Fixed kernel overhead of a remote (major) fault excluding the
     * RDMA transfer and any reclaim: steps 1+2+3+6.
     */
    Duration
    remoteFaultOverhead() const
    {
        return contextSwitch + pageWalk + swapCacheQuery + pteEstablish;
    }
};

} // namespace hopp::vm

