/**
 * @file
 * Asynchronous RDMA fabric: two simplex links (reads pull data from the
 * memory node, writes push data to it) plus completion scheduling on the
 * event queue. This is the only channel both the demand swap path and
 * HoPP's separate prefetch data path use, so they naturally contend.
 */

#pragma once

#include <utility>

#include "common/types.hh"
#include "net/link.hh"
#include "sim/event_queue.hh"

namespace hopp::net
{

/**
 * RDMA one-sided read/write engine over a pair of simplex links.
 */
class RdmaFabric
{
  public:
    RdmaFabric(sim::EventQueue &eq, const LinkConfig &cfg)
        : eq_(eq), readLink_(cfg), writeLink_(cfg)
    {
    }

    /**
     * One-sided read of @p bytes issued at @p now.
     * @return the completion tick (data available locally).
     */
    Tick
    read(std::uint64_t bytes, Tick now)
    {
        return readLink_.transfer(bytes, now);
    }

    /**
     * One-sided read with a completion callback scheduled on the event
     * queue. @p now must be >= the queue's current time. The callback
     * is moved straight into the event queue's inline storage — it must
     * fit sim::InlineEvent's capture budget (enforced at compile time),
     * which keeps completions allocation-free.
     */
    template <typename F>
    Tick
    readAsync(std::uint64_t bytes, Tick now, F &&done)
    {
        Tick completion = readLink_.transfer(bytes, now);
        eq_.schedule(completion,
                     [done = std::forward<F>(done), completion]() mutable {
                         done(completion);
                     });
        return completion;
    }

    /** One-sided write of @p bytes issued at @p now. */
    Tick
    write(std::uint64_t bytes, Tick now)
    {
        return writeLink_.transfer(bytes, now);
    }

    /** One-sided write with completion callback (same inline-capture
     *  contract as readAsync). */
    template <typename F>
    Tick
    writeAsync(std::uint64_t bytes, Tick now, F &&done)
    {
        Tick completion = writeLink_.transfer(bytes, now);
        eq_.schedule(completion,
                     [done = std::forward<F>(done), completion]() mutable {
                         done(completion);
                     });
        return completion;
    }

    /** Inbound (read-response) link. */
    const Link &readLink() const { return readLink_; }

    /** Outbound (write) link. */
    const Link &writeLink() const { return writeLink_; }

    /** Zero both links' traffic counters. */
    void
    resetStats()
    {
        readLink_.resetStats();
        writeLink_.resetStats();
    }

    /** Attach the flight recorder to both simplex links. */
    void
    setTracer(obs::Tracer *tracer)
    {
        readLink_.setTracer(tracer, "net.read", "read_backlog_ns",
                            obs::track::netRead);
        writeLink_.setTracer(tracer, "net.write", "write_backlog_ns",
                             obs::track::netWrite);
    }

  private:
    sim::EventQueue &eq_;
    Link readLink_;
    Link writeLink_;
};

} // namespace hopp::net

