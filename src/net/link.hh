/**
 * @file
 * Bandwidth/latency model of one direction of an RDMA fabric.
 *
 * A transfer entering at tick t completes at
 *   max(t, link_free) + bytes/bandwidth + base_latency,
 * i.e. FIFO serialization on the wire plus a fixed propagation +
 * NIC/switch processing latency. With the paper's 56 Gbps link and a
 * 3.4 us base latency, a 4 KB page costs ~4 us uncontended (§II-A
 * step 4), and queueing delay emerges naturally under prefetch bursts.
 */

#pragma once

#include <cstdint>

#include "common/types.hh"
#include "obs/blackbox.hh"
#include "obs/profiler.hh"
#include "obs/tracer.hh"
#include "stats/stats.hh"

namespace hopp::net
{

/** Link parameters. */
struct LinkConfig
{
    /** Wire rate in gigabits per second (paper testbed: 56 Gbps IB). */
    double gbps = 56.0;

    /** Fixed one-way latency added after serialization. */
    Duration baseLatency = 3400;

    /**
     * Per-transfer issue overhead occupying the engine (doorbell, WQE
     * processing). Makes one 32-page batch cheaper than 32 single-page
     * reads, as on real NICs.
     */
    Duration perTransferOverhead = 150;
};

/**
 * One simplex link with FIFO queueing.
 */
class Link
{
  public:
    explicit Link(const LinkConfig &cfg)
        : cfg_(cfg),
          milliGbps_(static_cast<std::uint64_t>(cfg.gbps * 1000.0 + 0.5))
    {
        hopp_assert(milliGbps_ > 0, "link rate must be positive");
    }

    /**
     * Enqueue a transfer of @p bytes at time @p now.
     * @return the absolute tick at which the last byte arrives.
     */
    Tick
    transfer(Bytes bytes, Tick now)
    {
        HOPP_PROF(LinkTransfer);
        Tick start = busyUntil_ > now ? busyUntil_ : now;
        Duration ser =
            cfg_.perTransferOverhead + serializationDelay(bytes);
        busyUntil_ = start + ser;
        bytesSent_ += bytes;
        ++transfers_;
        queueDelay_.sample(static_cast<double>(start - now));
        if (trace_) {
            // Queueing (wait for the wire) + serialization as one
            // complete span; backlog = how far busyUntil_ runs ahead
            // of the issue tick.
            trace_->complete(cat_, "transfer", now, busyUntil_ - now,
                             tid_);
            trace_->counter(cat_, backlogName_, now, busyUntil_ - now);
        }
        // Black box: link completions are where remote latency comes
        // from; the last few tell a post-mortem what the wire was
        // doing. hopp-lint: allow(raw) payload serialization
        obs::blackbox().record(obs::BbKind::LinkTransfer, now, tid_,
                               bytes,
                               (busyUntil_ + cfg_.baseLatency).raw());
        return busyUntil_ + cfg_.baseLatency;
    }

    /**
     * Pure serialization time of @p bytes at the configured rate.
     *
     * Computed in exact integer arithmetic so the result is identical
     * on every compiler/FPU configuration: the configured rate is
     * quantised once (at construction) to milli-gigabits per second,
     * and the delay is round-half-up of bytes*8000 / milliGbps. With
     * bytes < 2^50 the numerator cannot overflow 64 bits.
     */
    Duration
    serializationDelay(Bytes bytes) const
    {
        std::uint64_t millibits = bytes * 8000ull;
        return (millibits + milliGbps_ / 2) / milliGbps_;
    }

    /** Earliest tick a new transfer could start serialization. */
    Tick busyUntil() const { return busyUntil_; }

    /** Total payload bytes accepted. */
    std::uint64_t bytesSent() const { return bytesSent_; }

    /** Number of transfers accepted. */
    std::uint64_t transfers() const { return transfers_; }

    /** Distribution of per-transfer queueing delay. */
    const stats::Average &queueDelay() const { return queueDelay_; }

    /** Configured parameters. */
    const LinkConfig &config() const { return cfg_; }

    /** Zero traffic counters (busyUntil_ is sim state, kept). */
    void
    resetStats()
    {
        bytesSent_ = 0;
        transfers_ = 0;
        queueDelay_.reset();
    }

    /**
     * Attach the flight recorder: one complete span per transfer
     * (queueing + serialization) plus a backlog counter, on the given
     * track. @p cat and @p backlog_name must outlive the link (use
     * string literals); backlog counters need distinct names because
     * the trace viewer keys counter series by name.
     */
    void
    setTracer(obs::Tracer *tracer, const char *cat,
              const char *backlog_name, std::uint32_t tid)
    {
        trace_ = tracer;
        cat_ = cat;
        backlogName_ = backlog_name;
        tid_ = tid;
    }

  private:
    LinkConfig cfg_;
    std::uint64_t milliGbps_; //!< wire rate quantised to integer mGbps
    Tick busyUntil_;
    std::uint64_t bytesSent_ = 0;
    std::uint64_t transfers_ = 0;
    stats::Average queueDelay_;
    obs::Tracer *trace_ = nullptr;
    const char *cat_ = "net";
    const char *backlogName_ = "backlog_ns";
    std::uint32_t tid_ = 0;
};

} // namespace hopp::net

