/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic() is for internal invariant violations (a HoPP bug), fatal() for
 * unrecoverable user/configuration errors, warn()/inform() for status.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace hopp
{

namespace detail
{

[[noreturn]] void terminateWithMessage(const char *kind, const char *file,
                                       int line, const std::string &msg,
                                       bool core_dump);

void emitMessage(const char *kind, const std::string &msg);

/**
 * Hook invoked (at most once, re-entrancy guarded) after a panic
 * message prints and before abort(). The black-box flight ring
 * (obs/blackbox.hh) installs its forensics dump here so invariant
 * failures and hopp_assert aborts leave a last-events report behind.
 */
using CrashHook = void (*)();

/** Install @p hook; passing nullptr uninstalls. Returns the old one. */
CrashHook setCrashHook(CrashHook hook);

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Abort with a core dump: something that must never happen happened. */
#define hopp_panic(...)                                                      \
    ::hopp::detail::terminateWithMessage(                                    \
        "panic", __FILE__, __LINE__,                                         \
        ::hopp::detail::formatMessage(__VA_ARGS__), true)

/** Exit(1): the configuration or input is unusable, not a HoPP bug. */
#define hopp_fatal(...)                                                      \
    ::hopp::detail::terminateWithMessage(                                    \
        "fatal", __FILE__, __LINE__,                                         \
        ::hopp::detail::formatMessage(__VA_ARGS__), false)

/** Non-fatal warning about questionable behaviour. */
#define hopp_warn(...)                                                       \
    ::hopp::detail::emitMessage(                                             \
        "warn", ::hopp::detail::formatMessage(__VA_ARGS__))

/** Informational status message. */
#define hopp_inform(...)                                                     \
    ::hopp::detail::emitMessage(                                             \
        "info", ::hopp::detail::formatMessage(__VA_ARGS__))

/** Cheap always-on assertion used to protect simulation invariants. */
#define hopp_assert(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::hopp::detail::terminateWithMessage(                            \
                "panic", __FILE__, __LINE__,                                 \
                std::string("assertion failed: ") + #cond + ": " +           \
                    ::hopp::detail::formatMessage(__VA_ARGS__),              \
                true);                                                       \
        }                                                                    \
    } while (0)

} // namespace hopp

