#include "common/logging.hh"

#include <cstdarg>
#include <vector>

namespace hopp
{
namespace detail
{

std::string
formatMessage(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

void
emitMessage(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", kind, msg.c_str());
}

namespace
{
CrashHook g_crashHook = nullptr;
} // namespace

CrashHook
setCrashHook(CrashHook hook)
{
    CrashHook old = g_crashHook;
    g_crashHook = hook;
    return old;
}

void
terminateWithMessage(const char *kind, const char *file, int line,
                     const std::string &msg, bool core_dump)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", kind, file, line, msg.c_str());
    if (core_dump) {
        // Panic path only: give the black-box ring one chance to dump
        // its forensics before the abort. The guard keeps a panic
        // raised *inside* the hook from recursing.
        static bool inHook = false;
        if (g_crashHook != nullptr && !inHook) {
            inHook = true;
            g_crashHook();
        }
        std::abort();
    }
    std::exit(1);
}

} // namespace detail
} // namespace hopp
