/**
 * @file
 * Fundamental scalar types shared by every HoPP module.
 *
 * The whole simulation is expressed in terms of a small vocabulary:
 * simulated time in nanoseconds, physical/virtual byte addresses, page
 * numbers, and process identifiers. HoPP's correctness hinges on
 * keeping those integer spaces straight — the RPT exists precisely to
 * reverse-translate PPNs back to (PID, VPN), so passing a physical
 * address where a virtual page number is expected is the exact bug
 * class the hardware design manages. This header therefore wraps each
 * space in a zero-overhead strong type:
 *
 *   Tick      absolute simulated time (ns since simulation start)
 *   PhysAddr  byte address in the simulated physical address space
 *   VirtAddr  byte address in a process' virtual address space
 *   Ppn       physical page number (PhysAddr >> pageShift)
 *   Vpn       virtual page number (VirtAddr >> pageShift)
 *   Pid       16-bit process id, range-checked at construction
 *
 * Allowed arithmetic is only what is dimensionally meaningful:
 *
 *   Addr + Bytes -> Addr        Addr - Addr -> Bytes
 *   Tick + Duration -> Tick     Tick - Tick -> Duration
 *   Ppn  + count -> Ppn         Ppn  - Ppn  -> count       (ditto Vpn)
 *   pageOf(PhysAddr) -> Ppn     pageBase(Ppn) -> PhysAddr
 *   pageOf(VirtAddr) -> Vpn     pageBase(Vpn) -> VirtAddr
 *
 * Cross-tag expressions (PhysAddr + VirtAddr, Tick < Ppn, ...) do not
 * compile. Offsets (Bytes, Duration, page counts) are deliberately
 * plain std::uint64_t: they are dimensionless deltas, and tagging them
 * too would force arithmetic noise everywhere for little protection.
 *
 * Escape hatch: .raw() yields the underlying integer. hopp_lint flags
 * every use outside designated boundary files (trace I/O, stats
 * reporting, hardware tag packing) unless annotated with
 * `hopp-lint: allow(raw)` and a justification.
 *
 * This file is the definition site: the operators, geometry helpers,
 * and hash specializations below are the single implementation of the
 * tagged types, so unwrapping here is inherent.
 * hopp-lint: allow-file(raw)
 */

#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

#include "common/logging.hh"

namespace hopp
{

/**
 * Zero-overhead strong wrapper around a 64-bit unsigned integer.
 *
 * Distinct @p Tag types instantiate unrelated wrapper types, so values
 * from different spaces cannot meet in any operator. Construction from
 * a raw integer is explicit; the wrapper is trivially copyable and has
 * the same size and alignment as the integer it wraps (statically
 * asserted below), so it vanishes at -O1.
 */
template <typename Tag>
class TaggedU64
{
  public:
    /** Zero-initialises: tick 0 / address 0 / page 0. */
    constexpr TaggedU64() = default;

    /** Explicit lift from the raw integer space. */
    constexpr explicit TaggedU64(std::uint64_t v) : v_(v) {}

    /**
     * The underlying integer. Boundary use only (serialisation, stats,
     * hardware tag packing); hopp_lint enforces the annotation rule.
     */
    constexpr std::uint64_t raw() const { return v_; }

    /** Total order / equality within one tag space. */
    constexpr auto operator<=>(const TaggedU64 &) const = default;

    /** Advance by a raw delta (Bytes for addresses, ns for ticks). */
    constexpr TaggedU64 &
    operator+=(std::uint64_t d)
    {
        v_ += d;
        return *this;
    }

    /** Step back by a raw delta. */
    constexpr TaggedU64 &
    operator-=(std::uint64_t d)
    {
        v_ -= d;
        return *this;
    }

    /** Pre-increment: the next page / tick / byte. */
    constexpr TaggedU64 &
    operator++()
    {
        ++v_;
        return *this;
    }

    /** Post-increment. */
    constexpr TaggedU64
    operator++(int)
    {
        TaggedU64 old = *this;
        ++v_;
        return old;
    }

    /** Pre-decrement. */
    constexpr TaggedU64 &
    operator--()
    {
        --v_;
        return *this;
    }

    /** Post-decrement. */
    constexpr TaggedU64
    operator--(int)
    {
        TaggedU64 old = *this;
        --v_;
        return old;
    }

    /** value + delta -> value. */
    friend constexpr TaggedU64
    operator+(TaggedU64 a, std::uint64_t d)
    {
        return TaggedU64{a.v_ + d};
    }

    /** value - delta -> value. */
    friend constexpr TaggedU64
    operator-(TaggedU64 a, std::uint64_t d)
    {
        return TaggedU64{a.v_ - d};
    }

    /** value - value -> delta (same tag only). */
    friend constexpr std::uint64_t
    operator-(TaggedU64 a, TaggedU64 b)
    {
        return a.v_ - b.v_;
    }

    /** Stream as the plain integer (logging / gtest failure output). */
    friend std::ostream &
    operator<<(std::ostream &os, TaggedU64 v)
    {
        return os << v.v_;
    }

  private:
    std::uint64_t v_ = 0;
};

/** Simulated time, in nanoseconds since simulation start. */
using Tick = TaggedU64<struct TickTag>;

/** Byte address in the simulated physical address space. */
using PhysAddr = TaggedU64<struct PhysAddrTag>;

/** Byte address in a simulated process' virtual address space. */
using VirtAddr = TaggedU64<struct VirtAddrTag>;

/** Physical page number (PhysAddr >> pageShift). */
using Ppn = TaggedU64<struct PpnTag>;

/** Virtual page number (VirtAddr >> pageShift). */
using Vpn = TaggedU64<struct VpnTag>;

/** Time delta in nanoseconds (latencies, timeouts, periods). */
using Duration = std::uint64_t;

/** Size delta in bytes. */
using Bytes = std::uint64_t;

/**
 * Process identifier, as carried in RPT entries. The RPT packs the PID
 * into 16 bits of the 64-bit entry (§III-C), so construction range-
 * checks instead of silently truncating: a PID the hardware could not
 * represent is a configuration bug, caught here.
 */
class Pid
{
  public:
    /** PID 0 (the idle/kernel pseudo-process). */
    constexpr Pid() = default;

    /** Lift from an integer; panics when the value exceeds 16 bits. */
    constexpr explicit Pid(std::uint64_t v)
        : v_(static_cast<std::uint16_t>(v))
    {
        hopp_assert(v <= 0xFFFFull,
                    "pid %llu does not fit the RPT's 16-bit field",
                    static_cast<unsigned long long>(v));
    }

    /** The underlying integer (same boundary rules as TaggedU64). */
    constexpr std::uint16_t raw() const { return v_; }

    /** Total order / equality. */
    constexpr auto operator<=>(const Pid &) const = default;

    /** Stream as the plain integer. */
    friend std::ostream &
    operator<<(std::ostream &os, Pid p)
    {
        return os << p.v_;
    }

  private:
    std::uint16_t v_ = 0;
};

/** Sentinel for "no tick": used for unscheduled deadlines. */
inline constexpr Tick maxTick{~std::uint64_t(0)};

/** Base-2 logarithm of the page size: 4 KB pages. */
inline constexpr unsigned pageShift = 12;

/** Page size in bytes. */
inline constexpr Bytes pageBytes = 1ull << pageShift;

/** Base-2 logarithm of the cacheline size: 64 B lines. */
inline constexpr unsigned lineShift = 6;

/** Cacheline size in bytes. */
inline constexpr Bytes lineBytes = 1ull << lineShift;

/** Cachelines per 4 KB page (64) — a count, not an address. */
inline constexpr std::uint64_t linesPerPage = // hopp-lint: allow(raw-int-addr)
    pageBytes / lineBytes;

namespace time_literals
{

/** One nanosecond of simulated time. */
inline constexpr Duration operator""_ns(unsigned long long v)
{
    return v;
}

/** One microsecond of simulated time. */
inline constexpr Duration operator""_us(unsigned long long v)
{
    return v * 1000ull;
}

/** One millisecond of simulated time. */
inline constexpr Duration operator""_ms(unsigned long long v)
{
    return v * 1000ull * 1000ull;
}

/** One second of simulated time. */
inline constexpr Duration operator""_s(unsigned long long v)
{
    return v * 1000ull * 1000ull * 1000ull;
}

} // namespace time_literals

// The page/line geometry helpers below are the ONE place byte
// addresses are shifted into page/line space and back; hopp_lint
// rejects manual pageShift arithmetic anywhere else.

/** Convert a physical byte address to its page number. */
constexpr Ppn
pageOf(PhysAddr addr)
{
    return Ppn{addr.raw() >> pageShift};
}

/** Convert a virtual byte address to its page number. */
constexpr Vpn
pageOf(VirtAddr addr)
{
    return Vpn{addr.raw() >> pageShift};
}

/** Base byte address of a physical page. */
constexpr PhysAddr
pageBase(Ppn page)
{
    return PhysAddr{page.raw() << pageShift};
}

/** Base byte address of a virtual page. */
constexpr VirtAddr
pageBase(Vpn page)
{
    return VirtAddr{page.raw() << pageShift};
}

/** Byte offset of an address within its page. */
constexpr Bytes
pageOffset(PhysAddr addr)
{
    return addr.raw() & (pageBytes - 1);
}

/** Byte offset of an address within its page. */
constexpr Bytes
pageOffset(VirtAddr addr)
{
    return addr.raw() & (pageBytes - 1);
}

/** Global cacheline index of a physical byte address. */
constexpr std::uint64_t
lineOf(PhysAddr addr)
{
    return addr.raw() >> lineShift;
}

/** Align a physical byte address down to its cacheline base. */
constexpr PhysAddr
lineBase(PhysAddr addr)
{
    return PhysAddr{addr.raw() & ~(lineBytes - 1)};
}

/** Align a virtual byte address down to its cacheline base. */
constexpr VirtAddr
lineBase(VirtAddr addr)
{
    return VirtAddr{addr.raw() & ~(lineBytes - 1)};
}

/**
 * Signed distance @p to - @p from in the tag's unit (pages for
 * Ppn/Vpn, bytes for addresses, ns for ticks). Stride detectors need
 * directions, which the unsigned same-tag difference cannot express.
 */
template <typename Tag>
constexpr std::int64_t
signedDelta(TaggedU64<Tag> from, TaggedU64<Tag> to)
{
    return static_cast<std::int64_t>(to.raw() - from.raw());
}

/**
 * Offset a value by a signed delta (two's-complement wrap; callers
 * reject out-of-range targets before applying).
 */
template <typename Tag>
constexpr TaggedU64<Tag>
offsetBy(TaggedU64<Tag> v, std::int64_t d)
{
    return TaggedU64<Tag>{v.raw() + static_cast<std::uint64_t>(d)};
}

/**
 * A tagged value as a double, for ratio/rate math in reports and
 * benches (speedups, bandwidth, normalized performance). Keeping the
 * conversion here concentrates the one legitimate escape into
 * floating point behind a named intent.
 */
template <typename Tag>
constexpr double
toDouble(TaggedU64<Tag> v)
{
    return static_cast<double>(v.raw()); // hopp-lint: allow(raw)
}

// The wrappers must be free: same size/alignment as the raw integer,
// trivially copyable (memcpy-able into trace buffers), and usable in
// constant expressions.
static_assert(sizeof(Tick) == 8 && alignof(Tick) == alignof(std::uint64_t));
static_assert(sizeof(PhysAddr) == 8 && sizeof(VirtAddr) == 8);
static_assert(sizeof(Ppn) == 8 && sizeof(Vpn) == 8);
static_assert(sizeof(Pid) == 2 && alignof(Pid) == alignof(std::uint16_t));
static_assert(std::is_trivially_copyable_v<Tick> &&
              std::is_trivially_copyable_v<PhysAddr> &&
              std::is_trivially_copyable_v<VirtAddr> &&
              std::is_trivially_copyable_v<Ppn> &&
              std::is_trivially_copyable_v<Vpn> &&
              std::is_trivially_copyable_v<Pid>);
static_assert(pageOf(PhysAddr{0x12345}) == Ppn{0x12} &&
              pageBase(Ppn{0x12}) == PhysAddr{0x12000});
static_assert(pageOf(VirtAddr{0x12345}) == Vpn{0x12} &&
              pageBase(Vpn{0x12}) == VirtAddr{0x12000});

} // namespace hopp

// Hash support so the tagged types drop into unordered containers.
// Identity over the raw value, matching the pre-strong-type behaviour.
template <typename Tag>
struct std::hash<hopp::TaggedU64<Tag>>
{
    std::size_t
    operator()(const hopp::TaggedU64<Tag> &v) const noexcept
    {
        return std::hash<std::uint64_t>{}(v.raw());
    }
};

template <>
struct std::hash<hopp::Pid>
{
    std::size_t
    operator()(const hopp::Pid &p) const noexcept
    {
        return std::hash<std::uint16_t>{}(p.raw());
    }
};

