/**
 * @file
 * Fundamental scalar types shared by every HoPP module.
 *
 * The whole simulation is expressed in terms of a small vocabulary:
 * simulated time in nanoseconds, physical/virtual byte addresses, page
 * numbers, and process identifiers. Keeping them in one header (with the
 * page/cacheline geometry constants) avoids magic numbers spreading
 * through the substrates.
 */

#ifndef HOPP_COMMON_TYPES_HH
#define HOPP_COMMON_TYPES_HH

#include <cstdint>

namespace hopp
{

/** Simulated time, in nanoseconds since simulation start. */
using Tick = std::uint64_t;

/** Byte address in the simulated physical address space. */
using PhysAddr = std::uint64_t;

/** Byte address in a simulated process' virtual address space. */
using VirtAddr = std::uint64_t;

/** Physical page number (PhysAddr >> pageShift). */
using Ppn = std::uint64_t;

/** Virtual page number (VirtAddr >> pageShift). */
using Vpn = std::uint64_t;

/** Process identifier, as carried in RPT entries (16 bits in hardware). */
using Pid = std::uint16_t;

/** Sentinel for "no tick": used for unscheduled deadlines. */
inline constexpr Tick maxTick = ~Tick(0);

/** Base-2 logarithm of the page size: 4 KB pages. */
inline constexpr unsigned pageShift = 12;

/** Page size in bytes. */
inline constexpr std::uint64_t pageBytes = 1ull << pageShift;

/** Base-2 logarithm of the cacheline size: 64 B lines. */
inline constexpr unsigned lineShift = 6;

/** Cacheline size in bytes. */
inline constexpr std::uint64_t lineBytes = 1ull << lineShift;

/** Cachelines per 4 KB page (64). */
inline constexpr std::uint64_t linesPerPage = pageBytes / lineBytes;

namespace time_literals
{

/** One nanosecond of simulated time. */
inline constexpr Tick operator""_ns(unsigned long long v) { return v; }

/** One microsecond of simulated time. */
inline constexpr Tick operator""_us(unsigned long long v)
{
    return v * 1000ull;
}

/** One millisecond of simulated time. */
inline constexpr Tick operator""_ms(unsigned long long v)
{
    return v * 1000ull * 1000ull;
}

/** One second of simulated time. */
inline constexpr Tick operator""_s(unsigned long long v)
{
    return v * 1000ull * 1000ull * 1000ull;
}

} // namespace time_literals

/** Convert a byte address to its page number. */
constexpr std::uint64_t
pageOf(std::uint64_t addr)
{
    return addr >> pageShift;
}

/** Convert a page number back to the base byte address of that page. */
constexpr std::uint64_t
pageBase(std::uint64_t page)
{
    return page << pageShift;
}

/** Convert a byte address to its cacheline index. */
constexpr std::uint64_t
lineOf(std::uint64_t addr)
{
    return addr >> lineShift;
}

/** Align a byte address down to its cacheline base. */
constexpr std::uint64_t
lineBase(std::uint64_t addr)
{
    return addr & ~(lineBytes - 1);
}

} // namespace hopp

#endif // HOPP_COMMON_TYPES_HH
