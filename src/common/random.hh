/**
 * @file
 * Deterministic PRNG used throughout the simulator.
 *
 * All randomness in workload generators and network jitter flows through
 * Pcg32 so every experiment is reproducible from a single seed. PCG32 is
 * small, fast, and statistically far better than rand().
 */

#pragma once

#include <cstdint>
#include <vector>

namespace hopp
{

/**
 * PCG32 pseudo-random number generator (O'Neill, pcg-random.org,
 * Apache-2.0 reference implementation).
 */
class Pcg32
{
  public:
    /** Construct with a seed and stream selector. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bull,
                   std::uint64_t stream = 0xda3e39cb94b95bdbull)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1;
        next();
        state_ += seed;
        next();
    }

    /** Next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ull + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Uniform value in [0, bound) using Lemire's rejection method. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (bound <= 1)
            return 0;
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform 64-bit value in [0, bound). */
    std::uint64_t
    below64(std::uint64_t bound)
    {
        if (bound <= 1)
            return 0;
        std::uint64_t r =
            (static_cast<std::uint64_t>(next()) << 32) | next();
        return r % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

/**
 * Zipfian index sampler over [0, n), used by graph and sort workloads to
 * model skewed access popularity.
 *
 * Uses the classic inverse-CDF-over-precomputed-harmonics method; setup is
 * O(n), sampling is O(log n).
 */
class ZipfSampler
{
  public:
    /** Build a sampler over n items with skew theta (0 = uniform-ish). */
    ZipfSampler(std::uint64_t n, double theta);

    /** Draw one index in [0, n). */
    std::uint64_t sample(Pcg32 &rng) const;

    /** Number of items covered. */
    std::uint64_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace hopp

