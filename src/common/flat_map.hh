/**
 * @file
 * Open-addressed hash map keyed by std::uint64_t, for per-fault hot
 * state (e.g. the HoPP eviction advisor's last-hotness table). One
 * flat slot array, linear probing, power-of-two capacity: a lookup is
 * one mix and a short contiguous scan — no per-node allocation, no
 * pointer chasing — and the table's layout is a pure function of the
 * key sequence, so iteration order is deterministic across runs and
 * standard libraries (the mixer below is our own, not std::hash).
 *
 * Deliberately minimal: exactly the operations the simulator hot paths
 * need. Keys are values (never pointers), which keeps any behaviour
 * derived from iteration order run-to-run stable; still, consumers of
 * forEach/eraseIf must be order-insensitive, because the order is
 * hash order, not insertion order.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace hopp
{

/** Flat open-addressed map from std::uint64_t to V. */
template <typename V>
class FlatU64Map
{
  public:
    FlatU64Map() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Drop everything; keeps the slot array capacity. */
    void
    clear()
    {
        for (Slot &s : slots_)
            s.used = false;
        size_ = 0;
    }

    /** Pre-size so @p n entries fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t want = slotsFor(n);
        if (want > slots_.size())
            rehash(want);
    }

    /** Pointer to the mapped value, or nullptr. */
    V *
    find(std::uint64_t key)
    {
        if (slots_.empty())
            return nullptr;
        std::size_t i = mix(key) & mask_;
        while (slots_[i].used) {
            if (slots_[i].key == key)
                return &slots_[i].value;
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    const V *
    find(std::uint64_t key) const
    {
        return const_cast<FlatU64Map *>(this)->find(key);
    }

    /** Value for @p key, default-constructing on first touch. */
    V &
    operator[](std::uint64_t key)
    {
        if (slots_.empty() || (size_ + 1) * loadDen > slots_.size() * loadNum)
            rehash(slotsFor(size_ + 1));
        std::size_t i = mix(key) & mask_;
        while (slots_[i].used) {
            if (slots_[i].key == key)
                return slots_[i].value;
            i = (i + 1) & mask_;
        }
        slots_[i].used = true;
        slots_[i].key = key;
        slots_[i].value = V{};
        ++size_;
        return slots_[i].value;
    }

    /** Remove @p key. @return true when it was present. */
    bool
    erase(std::uint64_t key)
    {
        if (slots_.empty())
            return false;
        std::size_t i = mix(key) & mask_;
        while (slots_[i].used) {
            if (slots_[i].key == key) {
                shiftBack(i);
                --size_;
                return true;
            }
            i = (i + 1) & mask_;
        }
        return false;
    }

    /**
     * Remove every entry for which @p pred(key, value) holds. @return
     * the number removed. Rebuilds the table once, so a sweep is O(n)
     * regardless of how many entries die.
     */
    template <typename Pred>
    std::size_t
    eraseIf(Pred pred)
    {
        std::size_t removed = 0;
        std::vector<Slot> old = std::move(slots_);
        std::size_t live = 0;
        for (const Slot &s : old) {
            if (s.used && !pred(s.key, s.value))
                ++live;
        }
        removed = size_ - live;
        // One table rebuild per prune sweep, amortized over the whole
        // sweep's erasures. hopp-analyze: allow(hotpath-alloc)
        slots_.assign(slotsFor(live), Slot{});
        mask_ = slots_.empty() ? 0 : slots_.size() - 1;
        size_ = 0;
        for (Slot &s : old) {
            if (s.used && !pred(s.key, s.value))
                insertFresh(s.key, std::move(s.value));
        }
        return removed;
    }

    /** Visit every (key, value); order is hash order, not insertion. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const Slot &s : slots_) {
            if (s.used)
                fn(s.key, s.value);
        }
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        V value{};
        bool used = false;
    };

    // Max load factor loadNum/loadDen = 7/10.
    static constexpr std::size_t loadNum = 7;
    static constexpr std::size_t loadDen = 10;
    static constexpr std::size_t minSlots = 16;

    /** splitmix64 finalizer: full-avalanche, stdlib-independent. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    static std::size_t
    slotsFor(std::size_t entries)
    {
        std::size_t want = minSlots;
        while (entries * loadDen > want * loadNum)
            want <<= 1;
        return want;
    }

    void
    rehash(std::size_t new_slots)
    {
        std::vector<Slot> old = std::move(slots_);
        // Geometric growth: the table reaches its high-water size in
        // O(log n) rehashes, then steady state never reallocates.
        // hopp-analyze: allow(hotpath-alloc)
        slots_.assign(new_slots, Slot{});
        mask_ = new_slots - 1;
        size_ = 0;
        for (Slot &s : old) {
            if (s.used)
                insertFresh(s.key, std::move(s.value));
        }
    }

    void
    insertFresh(std::uint64_t key, V &&value)
    {
        std::size_t i = mix(key) & mask_;
        while (slots_[i].used)
            i = (i + 1) & mask_;
        slots_[i].used = true;
        slots_[i].key = key;
        slots_[i].value = std::move(value);
        ++size_;
    }

    /** Backward-shift deletion starting at the emptied slot @p hole. */
    void
    shiftBack(std::size_t hole)
    {
        std::size_t i = hole; // current hole
        std::size_t j = hole; // scan cursor
        for (;;) {
            j = (j + 1) & mask_;
            if (!slots_[j].used)
                break;
            // Slot j may move into the hole at i only if its probe
            // path starts at or before i, i.e. its home position is
            // cyclically outside (i, j].
            std::size_t home = mix(slots_[j].key) & mask_;
            if (((j - home) & mask_) >= ((j - i) & mask_)) {
                slots_[i].key = slots_[j].key;
                slots_[i].value = std::move(slots_[j].value);
                i = j;
            }
        }
        slots_[i].used = false;
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace hopp

