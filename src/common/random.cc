#include "common/random.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hopp
{

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
{
    hopp_assert(n > 0, "ZipfSampler needs at least one item");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
        cdf_[i] = sum;
    }
    for (auto &v : cdf_)
        v /= sum;
}

std::uint64_t
ZipfSampler::sample(Pcg32 &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

} // namespace hopp
