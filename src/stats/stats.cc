#include "stats/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace hopp::stats
{

void
LogHistogram::sample(std::uint64_t v)
{
    unsigned bucket = v == 0 ? 0 : std::bit_width(v) - 1;
    if (bucket >= buckets_.size())
        bucket = static_cast<unsigned>(buckets_.size()) - 1;
    ++buckets_[bucket];
    ++count_;
    sum_ += static_cast<double>(v);
}

std::uint64_t
LogHistogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return 1ull << (i + 1); // upper edge of the bucket
    }
    return 1ull << buckets_.size();
}

void
LogHistogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    count_ = 0;
    sum_ = 0.0;
}

void
Histogram::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (samples_.empty())
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    ensureSorted();
    // Nearest-rank: rank = ceil(q * N), 1-based; rank 0 means the
    // smallest sample.
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(samples_.size())));
    std::uint64_t idx = rank == 0 ? 0 : rank - 1;
    if (idx >= samples_.size())
        idx = samples_.size() - 1;
    return samples_[idx];
}

double
Histogram::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (std::uint64_t v : samples_)
        sum += static_cast<double>(v);
    return sum / static_cast<double>(samples_.size());
}

std::uint64_t
Histogram::min() const
{
    if (samples_.empty())
        return 0;
    ensureSorted();
    return samples_.front();
}

std::uint64_t
Histogram::max() const
{
    if (samples_.empty())
        return 0;
    ensureSorted();
    return samples_.back();
}

std::string
StatSet::toString() const
{
    std::string out;
    char line[256];
    for (const auto &v : values_) {
        std::snprintf(line, sizeof(line), "%-48s %16.4f  # %s\n",
                      v.name.c_str(), v.value, v.desc.c_str());
        out += line;
    }
    return out;
}

} // namespace hopp::stats
