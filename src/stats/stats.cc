#include "stats.hh"

#include <bit>
#include <cstdio>

namespace hopp::stats
{

void
LogHistogram::sample(std::uint64_t v)
{
    unsigned bucket = v == 0 ? 0 : std::bit_width(v) - 1;
    if (bucket >= buckets_.size())
        bucket = static_cast<unsigned>(buckets_.size()) - 1;
    ++buckets_[bucket];
    ++count_;
    sum_ += static_cast<double>(v);
}

std::uint64_t
LogHistogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return 1ull << (i + 1); // upper edge of the bucket
    }
    return 1ull << buckets_.size();
}

void
LogHistogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    count_ = 0;
    sum_ = 0.0;
}

std::string
StatSet::toString() const
{
    std::string out;
    char line[256];
    for (const auto &v : values_) {
        std::snprintf(line, sizeof(line), "%-48s %16.4f  # %s\n",
                      v.name.c_str(), v.value, v.desc.c_str());
        out += line;
    }
    return out;
}

} // namespace hopp::stats
