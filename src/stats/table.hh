/**
 * @file
 * ASCII table printer used by the benchmark harnesses to emit the same
 * rows/series the paper's tables and figures report.
 */

#pragma once

#include <string>
#include <vector>

namespace hopp::stats
{

/**
 * Simple column-aligned table. Cells are strings; numeric helpers format
 * with a fixed precision. Rendered with a header rule, suitable both for
 * eyeballing and for grepping in bench_output.txt.
 */
class Table
{
  public:
    /** Create a table with a caption (e.g., "Table II: ..."). */
    explicit Table(std::string caption) : caption_(std::move(caption)) {}

    /** Set the column headers. */
    void header(std::vector<std::string> cols) { header_ = std::move(cols); }

    /** Append a row of preformatted cells. */
    void row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Format a percentage (0.153 -> "15.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render the whole table. */
    std::string toString() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string caption_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hopp::stats

