#include "stats/table.hh"

#include <algorithm>
#include <cstdio>

namespace hopp::stats
{

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
Table::toString() const
{
    // Compute column widths across header and all rows.
    std::vector<std::size_t> width;
    auto fit = [&](const std::vector<std::string> &cells) {
        if (cells.size() > width.size())
            width.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    fit(header_);
    for (const auto &r : rows_)
        fit(r);

    auto render = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t i = 0; i < width.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            cell.resize(width[i], ' ');
            line += cell;
            if (i + 1 < width.size())
                line += "  ";
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = "== " + caption_ + " ==\n";
    if (!header_.empty()) {
        out += render(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < width.size(); ++i)
            total += width[i] + (i + 1 < width.size() ? 2 : 0);
        out += std::string(total, '-') + "\n";
    }
    for (const auto &r : rows_)
        out += render(r);
    return out;
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
    std::fputc('\n', stdout);
}

} // namespace hopp::stats
