/**
 * @file
 * Lightweight statistics primitives: scalar counters, averages, and
 * fixed-bucket histograms, grouped into named StatSets for dumping.
 *
 * Every simulated component owns its stats by value; a StatSet only keeps
 * registration metadata so copies of components stay cheap and safe.
 */

#ifndef HOPP_STATS_STATS_HH
#define HOPP_STATS_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hopp::stats
{

/** Monotonically increasing event counter. */
class Counter
{
  public:
    /** Add v occurrences. */
    void add(std::uint64_t v = 1) { value_ += v; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero (between experiment repetitions). */
    void reset() { value_ = 0; }

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max of a sampled quantity. */
class Average
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    /** Arithmetic mean of all samples (0 when empty). */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Smallest sample seen. */
    double min() const { return min_; }

    /** Largest sample seen. */
    double max() const { return max_; }

    /** Number of samples. */
    std::uint64_t count() const { return count_; }

    /** Clear all samples. */
    void reset() { sum_ = 0; count_ = 0; min_ = 0; max_ = 0; }

  private:
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Histogram with logarithmic (power-of-two) buckets, suitable for latency
 * distributions spanning ns to ms.
 */
class LogHistogram
{
  public:
    /** Buckets cover [2^i, 2^(i+1)) for i in [0, buckets). */
    explicit LogHistogram(unsigned buckets = 40) : buckets_(buckets, 0) {}

    /** Record one value. */
    void sample(std::uint64_t v);

    /** Value at or below which fraction q of samples fall. */
    std::uint64_t percentile(double q) const;

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Mean of all samples (exact, not bucketed). */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Per-bucket counts, bucket i covering [2^i, 2^(i+1)). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Clear all samples. */
    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** One named scalar inside a StatSet dump. */
struct StatValue
{
    std::string name;
    double value;
    std::string desc;
};

/**
 * A named group of statistics assembled at dump time.
 *
 * Components implement a dumpStats(StatSet&) style method that pushes
 * their scalars; the runner collates and prints them.
 */
class StatSet
{
  public:
    /** Create a set with a component name prefix. */
    explicit StatSet(std::string prefix) : prefix_(std::move(prefix)) {}

    /** Record one scalar under prefix.name. */
    void
    record(const std::string &name, double value,
           const std::string &desc = "")
    {
        values_.push_back({prefix_ + "." + name, value, desc});
    }

    /** All recorded scalars. */
    const std::vector<StatValue> &values() const { return values_; }

    /** Render "name value # desc" lines. */
    std::string toString() const;

  private:
    std::string prefix_;
    std::vector<StatValue> values_;
};

} // namespace hopp::stats

#endif // HOPP_STATS_STATS_HH
