/**
 * @file
 * Lightweight statistics primitives: scalar counters, averages, and
 * fixed-bucket histograms, grouped into named StatSets for dumping.
 *
 * Every simulated component owns its stats by value; a StatSet only keeps
 * registration metadata so copies of components stay cheap and safe.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hopp::stats
{

/** Monotonically increasing event counter. */
class Counter
{
  public:
    /** Add v occurrences. */
    void add(std::uint64_t v = 1) { value_ += v; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero (between experiment repetitions). */
    void reset() { value_ = 0; }

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max of a sampled quantity. */
class Average
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    /** Arithmetic mean of all samples (0 when empty). */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Smallest sample seen. */
    double min() const { return min_; }

    /** Largest sample seen. */
    double max() const { return max_; }

    /** Number of samples. */
    std::uint64_t count() const { return count_; }

    /** Clear all samples. */
    void reset() { sum_ = 0; count_ = 0; min_ = 0; max_ = 0; }

  private:
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Histogram with logarithmic (power-of-two) buckets, suitable for latency
 * distributions spanning ns to ms when memory per sample matters.
 *
 * Quantization error bound: percentile() answers with the *upper edge*
 * of the bucket holding the requested rank, and bucket i covers
 * [2^i, 2^(i+1)), so the reported value overestimates the true
 * percentile by at most a factor of 2 (exactly 2 in the worst case of
 * a sample sitting on a bucket's lower edge). Use stats::Histogram
 * below when exact percentiles are required.
 */
class LogHistogram
{
  public:
    /** Buckets cover [2^i, 2^(i+1)) for i in [0, buckets). */
    explicit LogHistogram(unsigned buckets = 40) : buckets_(buckets, 0) {}

    /** Record one value. */
    void sample(std::uint64_t v);

    /**
     * Value at or below which fraction q of samples fall, rounded up
     * to the containing bucket's upper edge (<= 2x the true value).
     */
    std::uint64_t percentile(double q) const;

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Mean of all samples (exact, not bucketed). */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Per-bucket counts, bucket i covering [2^i, 2^(i+1)). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Clear all samples. */
    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * Exact-percentile histogram: keeps every sample, answers percentile
 * queries by nearest-rank over the sorted sample set. Costs 8 bytes
 * per sample; meant for latency distributions whose sample counts are
 * bounded by fault counts, not per-access rates.
 */
class Histogram
{
  public:
    /** Record one value. */
    void
    sample(std::uint64_t v)
    {
        samples_.push_back(v);
        sorted_ = samples_.size() <= 1;
    }

    /**
     * Exact nearest-rank percentile: the smallest recorded value v
     * such that at least q * count() samples are <= v. q is clamped
     * to [0, 1]; returns 0 when empty. Lazily sorts (amortised).
     */
    std::uint64_t percentile(double q) const;

    /** Number of samples. */
    std::uint64_t count() const { return samples_.size(); }

    /** Exact mean (0 when empty). */
    double mean() const;

    /** Smallest sample (0 when empty). */
    std::uint64_t min() const;

    /** Largest sample (0 when empty). */
    std::uint64_t max() const;

    /** Clear all samples. */
    void
    reset()
    {
        samples_.clear();
        sorted_ = true;
    }

  private:
    void ensureSorted() const;

    mutable std::vector<std::uint64_t> samples_;
    mutable bool sorted_ = true;
};

/** One named scalar inside a StatSet dump. */
struct StatValue
{
    std::string name;
    double value;
    std::string desc;
};

/**
 * A named group of statistics assembled at dump time.
 *
 * Components implement a dumpStats(StatSet&) style method that pushes
 * their scalars; the runner collates and prints them.
 */
class StatSet
{
  public:
    /** Create a set with a component name prefix. */
    explicit StatSet(std::string prefix) : prefix_(std::move(prefix)) {}

    /** Record one scalar under prefix.name. */
    void
    record(const std::string &name, double value,
           const std::string &desc = "")
    {
        values_.push_back({prefix_ + "." + name, value, desc});
    }

    /** All recorded scalars. */
    const std::vector<StatValue> &values() const { return values_; }

    /** Render "name value # desc" lines. */
    std::string toString() const;

    /**
     * Register a callback that zeroes the component counters this set
     * was recorded from. Builders register alongside record() so a
     * later resetAll() covers exactly what the dump covers — closing
     * the historical gap where between-repetition resets were ad-hoc
     * per-field calls that silently missed newly added counters.
     */
    void
    addResetter(std::function<void()> fn)
    {
        resetters_.push_back(std::move(fn));
    }

    /** Run every registered resetter. */
    void
    resetAll()
    {
        for (auto &fn : resetters_)
            fn();
    }

  private:
    std::string prefix_;
    std::vector<StatValue> values_;
    std::vector<std::function<void()>> resetters_;
};

} // namespace hopp::stats

