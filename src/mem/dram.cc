#include "mem/dram.hh"

namespace hopp::mem
{

Dram::Dram(std::uint64_t frames) : total_(frames), base_(Ppn{1})
{
    hopp_assert(frames > 0, "DRAM needs at least one frame");
    // PPN 0 is reserved as an invalid sentinel; frames are [base_,
    // base_ + total_). Hand frames out in ascending order.
    freeList_.reserve(frames);
    for (std::uint64_t i = 0; i < frames; ++i)
        freeList_.push_back(base_ + (frames - 1 - i));
    allocated_.assign(frames, false);
}

Ppn
Dram::allocate()
{
    hopp_assert(!freeList_.empty(), "DRAM exhausted; reclaim first");
    std::size_t idx = static_cast<std::size_t>(
        rng_.below64(freeList_.size()));
    std::swap(freeList_[idx], freeList_.back());
    Ppn ppn = freeList_.back();
    freeList_.pop_back();
    allocated_[ppn - base_] = true;
    return ppn;
}

void
Dram::release(Ppn ppn)
{
    // Diagnostic formatting of the frame number. hopp-lint: allow(raw)
    hopp_assert(ppn >= base_ && ppn < base_ + total_,
                "release of foreign frame %llu",
                static_cast<unsigned long long>(ppn.raw()));
    // Diagnostic formatting of the frame number. hopp-lint: allow(raw)
    hopp_assert(allocated_[ppn - base_], "double free of frame %llu",
                static_cast<unsigned long long>(ppn.raw()));
    allocated_[ppn - base_] = false;
    freeList_.push_back(ppn);
}

std::uint64_t
Dram::totalTraffic() const
{
    std::uint64_t sum = 0;
    for (auto v : traffic_)
        sum += v;
    return sum;
}

void
Dram::resetTraffic()
{
    for (auto &v : traffic_)
        v = 0;
}

} // namespace hopp::mem
