#include "llc.hh"

namespace hopp::mem
{

namespace
{

std::size_t
setsFor(const LlcConfig &cfg)
{
    std::uint64_t lines = cfg.capacityBytes / lineBytes;
    std::uint64_t sets = lines / cfg.ways;
    hopp_assert(sets > 0, "LLC too small for its associativity");
    // Round down to a power of two as real indexing requires.
    while (sets & (sets - 1))
        sets &= sets - 1;
    return static_cast<std::size_t>(sets);
}

} // namespace

Llc::Llc(const LlcConfig &cfg) : tags_(setsFor(cfg), cfg.ways) {}

std::uint64_t
Llc::taggedLine(PhysAddr pa)
{
    // Frame number as dense per-frame vector index. hopp-lint: allow(raw)
    std::uint64_t frame = pageOf(pa).raw();
    std::uint32_t epoch =
        frame < epochs_.size() ? epochs_[frame] : 0;
    // The set index comes from the low line-address bits; the epoch
    // only disambiguates tags, so invalidated lines conflict in the
    // same set they always occupied.
    return (static_cast<std::uint64_t>(epoch) << 40) | lineOf(pa);
}

bool
Llc::access(PhysAddr pa)
{
    std::uint64_t tag = taggedLine(pa);
    if (tags_.touch(tag)) {
        ++hits_;
        return true;
    }
    ++misses_;
    tags_.insert(tag, Empty{});
    return false;
}

void
Llc::invalidatePage(Ppn ppn)
{
    // Frame number as dense per-frame vector index. hopp-lint: allow(raw)
    std::uint64_t frame = ppn.raw();
    if (frame >= epochs_.size())
        epochs_.resize(frame + 1, 0);
    ++epochs_[frame];
}

} // namespace hopp::mem
