#include "mem/llc.hh"

namespace hopp::mem
{

namespace
{

std::size_t
setsFor(const LlcConfig &cfg)
{
    std::uint64_t lines = cfg.capacityBytes / lineBytes;
    std::uint64_t sets = lines / cfg.ways;
    hopp_assert(sets > 0, "LLC too small for its associativity");
    // Round down to a power of two as real indexing requires.
    while (sets & (sets - 1))
        sets &= sets - 1;
    return static_cast<std::size_t>(sets);
}

} // namespace

Llc::Llc(const LlcConfig &cfg) : tags_(setsFor(cfg), cfg.ways) {}

void
Llc::invalidatePage(Ppn ppn)
{
    // Frame number as dense per-frame vector index. hopp-lint: allow(raw)
    std::uint64_t frame = ppn.raw();
    if (frame >= epochs_.size())
        // Dense per-frame epoch vector grows monotonically to the peak
        // frame index, then never again: a handful of reallocations
        // early in a run. hopp-analyze: allow(hotpath-alloc)
        epochs_.resize(frame + 1, 0);
    ++epochs_[frame];
}

} // namespace hopp::mem
