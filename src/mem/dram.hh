/**
 * @file
 * Local DRAM model: a physical frame allocator plus traffic accounting.
 *
 * Traffic is tallied per source so the Table V experiment can report the
 * share of bandwidth consumed by HoPP's hot-page writes and RPT queries
 * relative to application traffic.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace hopp::check
{
class Access; // invariant-checker introspection (src/check)
}

namespace hopp::mem
{

/** Who generated a DRAM transfer; drives Table V accounting. */
enum class TrafficSource : unsigned
{
    AppRead = 0,     //!< demand LLC-miss reads
    AppWrite,        //!< writebacks / fills on behalf of the app
    PageTransfer,    //!< 4 KB page DMA from/to the RDMA NIC
    HotPageWrite,    //!< HPD writing (PID, VPN) combos to the ring
    RptQuery,        //!< RPT cache misses reading the DRAM RPT
    RptUpdate,       //!< RPT cache dirty write-backs to the DRAM RPT
    TraceWrite,      //!< HMTT writing raw trace records (prototype mode)
    NumSources,
};

/**
 * Local DRAM: fixed number of 4 KB frames with a free list, plus
 * per-source byte counters.
 */
class Dram
{
  public:
    /** @param frames number of 4 KB frames of local DRAM. */
    explicit Dram(std::uint64_t frames);

    /** Frames in the module. */
    std::uint64_t totalFrames() const { return total_; }

    /** Frames currently unallocated. */
    std::uint64_t freeFrames() const
    {
        return static_cast<std::uint64_t>(freeList_.size());
    }

    /** Frames currently allocated. */
    std::uint64_t usedFrames() const { return total_ - freeFrames(); }

    /** True when an allocation would fail. */
    bool exhausted() const { return freeList_.empty(); }

    /**
     * Allocate one frame, drawn pseudo-randomly from the free list the
     * way a long-running buddy allocator hands out effectively
     * arbitrary frames. (LIFO reuse would make swapped-in pages
     * physically contiguous in access order — an unrealistically
     * conflict-friendly LLC layout.)
     *
     * @return its PPN; panics when empty (callers must reclaim first).
     */
    Ppn allocate();

    /** Return a frame to the free list. */
    void release(Ppn ppn);

    /** Record a transfer of @p bytes attributed to @p src. */
    void
    recordTraffic(TrafficSource src, std::uint64_t bytes)
    {
        traffic_[static_cast<unsigned>(src)] += bytes;
    }

    /** Bytes transferred for one source. */
    std::uint64_t
    traffic(TrafficSource src) const
    {
        return traffic_[static_cast<unsigned>(src)];
    }

    /** Bytes across all sources. */
    std::uint64_t totalTraffic() const;

    /** Zero the traffic counters. */
    void resetTraffic();

  private:
    friend class hopp::check::Access;

    std::uint64_t total_;
    Ppn base_; // first PPN managed by this module
    Pcg32 rng_{0x0ddba11};
    std::vector<Ppn> freeList_;
    std::vector<bool> allocated_;
    std::uint64_t traffic_[static_cast<unsigned>(
        TrafficSource::NumSources)] = {};
};

} // namespace hopp::mem

