/**
 * @file
 * Memory-controller model.
 *
 * The MC receives LLC-miss transactions and forwards read misses to any
 * attached hardware observers — this is exactly the tap point the paper
 * modifies: HoPP's Hot Page Detection module consumes MC read traffic
 * (§III-B), and the HMTT prototype emulates the same tap as a
 * bump-in-the-wire (§V).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/dram.hh"
#include "obs/tracer.hh"

namespace hopp::mem
{

/**
 * Anything that wants to see MC-level traffic (HPD hardware, HMTT
 * tracer) implements this interface and attaches to the MemCtrl.
 */
class McObserver
{
  public:
    virtual ~McObserver() = default;

    /**
     * One LLC-miss access has reached the memory controller.
     *
     * @param pa cacheline-aligned physical address.
     * @param is_write true for writebacks / DMA writes.
     * @param now current simulated time.
     */
    virtual void onMcAccess(PhysAddr pa, bool is_write, Tick now) = 0;
};

/**
 * Memory controller: accounts DRAM traffic and fans accesses out to
 * observers. Purely functional (no queueing model) — the end-to-end
 * latency of a DRAM access is charged by the cost model in vm::Vms.
 */
class MemCtrl
{
  public:
    explicit MemCtrl(Dram &dram) : dram_(dram) {}

    /** Attach an observer; order of attachment = order of callbacks. */
    void attach(McObserver *obs) { observers_.push_back(obs); }

    /** Detach a previously attached observer. */
    void detach(McObserver *obs);

    /** A demand LLC-miss read of one cacheline. */
    void
    demandRead(PhysAddr pa, Tick now)
    {
        dram_.recordTraffic(TrafficSource::AppRead, lineBytes);
        ++reads_;
        if (trace_ && reads_ % traceSampleEvery_ == 0)
            trace_->counter("mem", "mc_reads", now, reads_);
        notify(pa, false, now);
    }

    /** An LLC writeback of one cacheline. */
    void
    writeback(PhysAddr pa, Tick now)
    {
        dram_.recordTraffic(TrafficSource::AppWrite, lineBytes);
        ++writes_;
        if (trace_ && writes_ % traceSampleEvery_ == 0)
            trace_->counter("mem", "mc_writes", now, writes_);
        notify(pa, true, now);
    }

    /**
     * A 4 KB page DMA transfer by the RDMA NIC (page in or out). These
     * are write accesses the paper explicitly excludes from hot-page
     * detection (§III-B), so observers see them flagged as writes.
     */
    void
    pageDma(Ppn ppn, Tick now)
    {
        dram_.recordTraffic(TrafficSource::PageTransfer, pageBytes);
        notify(pageBase(ppn), true, now);
    }

    /** The DRAM module behind this controller. */
    Dram &dram() { return dram_; }

    /** Demand read transactions seen. */
    std::uint64_t reads() const { return reads_; }

    /** Writeback transactions seen. */
    std::uint64_t writes() const { return writes_; }

    /** Zero the transaction counters. */
    void
    resetStats()
    {
        reads_ = 0;
        writes_ = 0;
    }

    /**
     * Attach the flight recorder: cumulative miss-stream counter
     * samples every @p sample_every transactions.
     */
    void
    setTracer(obs::Tracer *tracer, std::uint64_t sample_every = 4096)
    {
        trace_ = tracer;
        traceSampleEvery_ = sample_every ? sample_every : 1;
    }

  private:
    void
    notify(PhysAddr pa, bool is_write, Tick now)
    {
        for (auto *obs : observers_)
            obs->onMcAccess(pa, is_write, now);
    }

    Dram &dram_;
    std::vector<McObserver *> observers_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    obs::Tracer *trace_ = nullptr;
    std::uint64_t traceSampleEvery_ = 4096;
};

} // namespace hopp::mem

