/**
 * @file
 * Generic set-associative, LRU-replaced lookup structure.
 *
 * Models the small hardware tables HoPP adds to the memory controller
 * (HPD table, RPT cache) as well as the LLC tag array. Keys are 64-bit
 * tags — raw integers or TaggedU64 wrappers (e.g. Ppn for the
 * frame-indexed MC tables); the set index is the low bits of the key,
 * exactly as the paper indexes the HPD table with the low PPN bits.
 *
 * Storage is structure-of-arrays: one flat tag array, one age array,
 * one valid bitmask word per set, and a separate payload array. A way
 * scan therefore touches two cache lines of tags (16 ways x 8 B)
 * instead of walking {valid, tag, age, payload} records — the tag
 * probe sits behind every simulated LLC access and every LLC miss
 * probes the HPD again, so the layout is the single largest host-side
 * cost of a simulated memory access (see DESIGN.md §14).
 */

#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace hopp::check
{
class Access; // invariant-checker introspection (src/check)
}

namespace hopp::mem
{

/**
 * Fixed-geometry set-associative cache with true-LRU replacement.
 *
 * @tparam Value payload stored per tag.
 * @tparam Key   tag type: a raw 64-bit integer or a TaggedU64 wrapper.
 */
template <typename Value, typename Key = std::uint64_t>
class SetAssocCache
{
  public:
    /** An evicted (tag, value) pair returned from insert(). */
    struct Eviction
    {
        Key tag;
        Value value;
    };

    /**
     * @param sets number of sets; must be a power of two.
     * @param ways associativity; at most 64 (one valid-bit word/set).
     */
    SetAssocCache(std::size_t sets, std::size_t ways)
        : sets_(sets), setMask_(sets - 1), ways_(ways),
          tags_(sets * ways, 0), ages_(sets * ways, 0), valid_(sets, 0),
          values_(sets * ways)
    {
        hopp_assert(sets > 0 && (sets & (sets - 1)) == 0,
                    "set count must be a power of two");
        hopp_assert(ways > 0 && ways <= 64,
                    "way count must fit the per-set valid word");
    }

    /** Number of sets. */
    std::size_t sets() const { return sets_; }

    /** Associativity. */
    std::size_t ways() const { return ways_; }

    /** Total capacity in entries. */
    std::size_t capacity() const { return sets_ * ways_; }

    /** Entries currently valid. */
    std::size_t size() const { return live_; }

    /**
     * Look up a tag and promote it to MRU on hit.
     * @return pointer to the payload, or nullptr on miss.
     */
    Value *
    touch(Key tag)
    {
        std::size_t i = findIndex(rawKey(tag));
        if (i == npos)
            return nullptr;
        promote(i);
        return &values_[i];
    }

    /** Look up a tag without disturbing LRU state. */
    Value *
    peek(Key tag)
    {
        std::size_t i = findIndex(rawKey(tag));
        return i == npos ? nullptr : &values_[i];
    }

    /** Const lookup without disturbing LRU state. */
    const Value *
    peek(Key tag) const
    {
        std::size_t i =
            const_cast<SetAssocCache *>(this)->findIndex(rawKey(tag));
        return i == npos ? nullptr : &values_[i];
    }

    /**
     * Insert or overwrite a tag as MRU.
     * @return the LRU victim if a valid entry had to be evicted.
     */
    std::optional<Eviction>
    insert(Key tag, Value value)
    {
        const std::uint64_t raw = rawKey(tag);
        std::size_t i = findIndex(raw);
        if (i != npos) {
            values_[i] = std::move(value);
            promote(i);
            return std::nullopt;
        }
        const std::size_t set = setIndex(raw);
        bool evicted;
        std::size_t v = victimIndex(set, &evicted);
        std::optional<Eviction> out;
        if (evicted)
            out = Eviction{Key{tags_[v]}, std::move(values_[v])};
        fill(set, v, raw, std::move(value));
        return out;
    }

    /** Outcome of a probeInsert(): the resident payload, whether the
     *  probe hit, and whether a valid entry was evicted on the miss. */
    struct ProbeResult
    {
        Value *value;
        bool hit;
        bool evicted;
    };

    /**
     * Combined probe-and-insert: exactly touch(tag), followed on miss
     * by insert(tag, missValue) — same hit promotion, same LRU victim
     * choice (first invalid way, else strictly-oldest), same clock
     * advance — but in a single way scan instead of three. This is the
     * tag-array pattern of the per-access hot path (LLC, HPD), where
     * the redundant scans were a measurable share of a simulated
     * access; the split entry points remain for callers that probe
     * without filling.
     */
    ProbeResult
    probeInsert(Key tag, Value missValue)
    {
        const std::uint64_t raw = rawKey(tag);
        const std::size_t set = setIndex(raw);
        const std::size_t base = set * ways_;
        const std::uint64_t vmask = valid_[set];
        const std::uint64_t *tags = tags_.data() + base;
        const std::uint64_t *ages = ages_.data() + base;
        // One fused pass: hit probe and LRU victim tracking together,
        // so a miss (the steady state of a streaming LLC) needs no
        // second scan. Victim rule matches victimIndex(): first
        // invalid way, else the strictly-oldest valid one.
        std::size_t v = 0;
        std::uint64_t vage = 0;
        for (std::size_t w = 0; w < ways_; ++w) {
            if (tags[w] == raw && (vmask >> w) & 1) {
                promote(base + w);
                return {&values_[base + w], true, false};
            }
            if (ages[w] > vage) {
                vage = ages[w];
                v = w;
            }
        }
        bool evicted = true;
        const std::uint64_t full =
            ways_ == 64 ? ~0ull : (1ull << ways_) - 1;
        if (vmask != full) {
            v = static_cast<std::size_t>(std::countr_one(vmask));
            valid_[set] = vmask | (1ull << v);
            ++live_;
            evicted = false;
        }
        v += base;
        fill(set, v, raw, std::move(missValue));
        return {&values_[v], false, evicted};
    }

    /**
     * Remove a tag if present.
     * @return the removed payload.
     */
    std::optional<Value>
    erase(Key tag)
    {
        const std::uint64_t raw = rawKey(tag);
        std::size_t i = findIndex(raw);
        if (i == npos)
            return std::nullopt;
        valid_[setIndex(raw)] &= ~(1ull << (i % ways_));
        --live_;
        return std::move(values_[i]);
    }

    /** Drop every entry. */
    void
    clear()
    {
        for (auto &v : valid_)
            v = 0;
        live_ = 0;
        clock_ = 0;
    }

    /** Visit every valid (tag, value) pair; fn(tag, value&). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t s = 0; s < sets_; ++s) {
            for (std::uint64_t m = valid_[s]; m; m &= m - 1) {
                std::size_t i =
                    s * ways_ +
                    static_cast<std::size_t>(std::countr_zero(m));
                fn(Key{tags_[i]}, values_[i]);
            }
        }
    }

  private:
    friend class hopp::check::Access;

    static constexpr std::size_t npos = ~std::size_t{0};

    static constexpr std::uint64_t
    rawKey(Key tag)
    {
        // Set indexing needs the key's bits regardless of its tag
        // type. hopp-lint: allow(raw)
        if constexpr (requires { tag.raw(); })
            return tag.raw(); // hopp-lint: allow(raw)
        else
            return static_cast<std::uint64_t>(tag);
    }

    std::size_t
    setIndex(std::uint64_t raw) const
    {
        // Precomputed at construction: the tag lookup sits on the
        // per-access LLC hit path, where even the subtraction counts.
        return static_cast<std::size_t>(raw & setMask_);
    }

    /** Flat index of the valid line holding @p raw, or npos. */
    std::size_t
    findIndex(std::uint64_t raw)
    {
        const std::size_t set = setIndex(raw);
        const std::size_t base = set * ways_;
        const std::uint64_t vmask = valid_[set];
        const std::uint64_t *tags = tags_.data() + base;
        for (std::size_t w = 0; w < ways_; ++w) {
            if (tags[w] == raw && (vmask >> w) & 1)
                return base + w;
        }
        return npos;
    }

    /**
     * Replacement choice in @p set: the first invalid way, else the
     * strictly-oldest valid one. Books the occupancy change; the
     * caller writes tag/age/payload via fill().
     */
    std::size_t
    victimIndex(std::size_t set, bool *evicted)
    {
        const std::uint64_t vmask = valid_[set];
        const std::uint64_t full =
            ways_ == 64 ? ~0ull : (1ull << ways_) - 1;
        if (vmask != full) {
            std::size_t w =
                static_cast<std::size_t>(std::countr_one(vmask));
            valid_[set] = vmask | (1ull << w);
            ++live_;
            *evicted = false;
            return set * ways_ + w;
        }
        const std::uint64_t *ages = ages_.data() + set * ways_;
        std::size_t v = 0;
        for (std::size_t w = 1; w < ways_; ++w) {
            if (ages[w] > ages[v])
                v = w;
        }
        *evicted = true;
        return set * ways_ + v;
    }

    void
    fill(std::size_t set, std::size_t idx, std::uint64_t raw,
         Value value)
    {
        (void)set;
        tags_[idx] = raw;
        values_[idx] = std::move(value);
        promote(idx);
    }

    void
    promote(std::size_t idx)
    {
        // A global logical clock gives true LRU without per-set
        // shuffles; ages decrease over time, so the oldest entry
        // carries the numerically largest age.
        ages_[idx] = ~(clock_++);
    }

    std::size_t sets_;
    std::uint64_t setMask_; //!< sets_ - 1, precomputed for setIndex()
    std::size_t ways_;
    std::vector<std::uint64_t> tags_; //!< sets x ways raw keys
    std::vector<std::uint64_t> ages_; //!< sets x ways LRU stamps
    std::vector<std::uint64_t> valid_; //!< one bit per way, per set
    std::vector<Value> values_;        //!< sets x ways payloads
    std::size_t live_ = 0;
    std::uint64_t clock_ = 0;
};

} // namespace hopp::mem
