/**
 * @file
 * Generic set-associative, LRU-replaced lookup structure.
 *
 * Models the small hardware tables HoPP adds to the memory controller
 * (HPD table, RPT cache) as well as the LLC tag array. Keys are 64-bit
 * tags — raw integers or TaggedU64 wrappers (e.g. Ppn for the
 * frame-indexed MC tables); the set index is the low bits of the key,
 * exactly as the paper indexes the HPD table with the low PPN bits.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace hopp::check
{
class Access; // invariant-checker introspection (src/check)
}

namespace hopp::mem
{

/**
 * Fixed-geometry set-associative cache with true-LRU replacement.
 *
 * @tparam Value payload stored per tag.
 * @tparam Key   tag type: a raw 64-bit integer or a TaggedU64 wrapper.
 */
template <typename Value, typename Key = std::uint64_t>
class SetAssocCache
{
  public:
    /** An evicted (tag, value) pair returned from insert(). */
    struct Eviction
    {
        Key tag;
        Value value;
    };

    /**
     * @param sets number of sets; must be a power of two.
     * @param ways associativity.
     */
    SetAssocCache(std::size_t sets, std::size_t ways)
        : sets_(sets), setMask_(sets - 1), ways_(ways), lines_(sets * ways)
    {
        hopp_assert(sets > 0 && (sets & (sets - 1)) == 0,
                    "set count must be a power of two");
        hopp_assert(ways > 0, "need at least one way");
    }

    /** Number of sets. */
    std::size_t sets() const { return sets_; }

    /** Associativity. */
    std::size_t ways() const { return ways_; }

    /** Total capacity in entries. */
    std::size_t capacity() const { return sets_ * ways_; }

    /** Entries currently valid. */
    std::size_t size() const { return live_; }

    /**
     * Look up a tag and promote it to MRU on hit.
     * @return pointer to the payload, or nullptr on miss.
     */
    Value *
    touch(Key tag)
    {
        Line *line = findLine(tag);
        if (!line)
            return nullptr;
        promote(line);
        return &line->value;
    }

    /** Look up a tag without disturbing LRU state. */
    Value *
    peek(Key tag)
    {
        Line *line = findLine(tag);
        return line ? &line->value : nullptr;
    }

    /** Const lookup without disturbing LRU state. */
    const Value *
    peek(Key tag) const
    {
        const Line *line =
            const_cast<SetAssocCache *>(this)->findLine(tag);
        return line ? &line->value : nullptr;
    }

    /**
     * Insert or overwrite a tag as MRU.
     * @return the LRU victim if a valid entry had to be evicted.
     */
    std::optional<Eviction>
    insert(Key tag, Value value)
    {
        if (Line *line = findLine(tag)) {
            line->value = std::move(value);
            promote(line);
            return std::nullopt;
        }
        std::size_t set = setIndex(tag);
        Line *victim = nullptr;
        for (std::size_t w = 0; w < ways_; ++w) {
            Line &cand = lines_[set * ways_ + w];
            if (!cand.valid) {
                victim = &cand;
                break;
            }
            if (!victim || cand.age > victim->age)
                victim = &cand;
        }
        std::optional<Eviction> out;
        if (victim->valid) {
            out = Eviction{victim->tag, std::move(victim->value)};
        } else {
            ++live_;
        }
        victim->valid = true;
        victim->tag = tag;
        victim->value = std::move(value);
        promote(victim);
        return out;
    }

    /**
     * Remove a tag if present.
     * @return the removed payload.
     */
    std::optional<Value>
    erase(Key tag)
    {
        Line *line = findLine(tag);
        if (!line)
            return std::nullopt;
        line->valid = false;
        --live_;
        return std::move(line->value);
    }

    /** Drop every entry. */
    void
    clear()
    {
        for (auto &l : lines_)
            l.valid = false;
        live_ = 0;
        clock_ = 0;
    }

    /** Visit every valid (tag, value) pair; fn(tag, value&). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &l : lines_) {
            if (l.valid)
                fn(l.tag, l.value);
        }
    }

  private:
    friend class hopp::check::Access;

    struct Line
    {
        bool valid = false;
        Key tag{};
        std::uint64_t age = 0; // lower = more recently used
        Value value{};
    };

    static constexpr std::uint64_t
    rawKey(Key tag)
    {
        // Set indexing needs the key's bits regardless of its tag
        // type. hopp-lint: allow(raw)
        if constexpr (requires { tag.raw(); })
            return tag.raw(); // hopp-lint: allow(raw)
        else
            return static_cast<std::uint64_t>(tag);
    }

    std::size_t
    setIndex(Key tag) const
    {
        // Precomputed at construction: the tag lookup sits on the
        // per-access LLC hit path, where even the subtraction counts.
        return static_cast<std::size_t>(rawKey(tag) & setMask_);
    }

    Line *
    findLine(Key tag)
    {
        std::size_t set = setIndex(tag);
        for (std::size_t w = 0; w < ways_; ++w) {
            Line &line = lines_[set * ways_ + w];
            if (line.valid && line.tag == tag)
                return &line;
        }
        return nullptr;
    }

    void
    promote(Line *line)
    {
        // A global logical clock gives true LRU without per-set shuffles.
        line->age = ~(clock_++);
    }

    std::size_t sets_;
    std::uint64_t setMask_; //!< sets_ - 1, precomputed for setIndex()
    std::size_t ways_;
    std::vector<Line> lines_;
    std::size_t live_ = 0;
    std::uint64_t clock_ = 0;
};

} // namespace hopp::mem

