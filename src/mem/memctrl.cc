#include "mem/memctrl.hh"

#include <algorithm>

namespace hopp::mem
{

void
MemCtrl::detach(McObserver *obs)
{
    observers_.erase(std::remove(observers_.begin(), observers_.end(), obs),
                     observers_.end());
}

} // namespace hopp::mem
