/**
 * @file
 * Last-level cache model.
 *
 * The LLC is what makes a memory-controller-side tracer attractive
 * (paper §II-D): the MC only sees LLC misses, two orders of magnitude
 * fewer events than L1/MMU accesses. We model tags only (no data), with
 * physical-address indexing and true LRU, sized so the footprint/LLC
 * ratio of the scaled-down workloads matches the paper's testbed.
 */

#pragma once

#include <cstdint>

#include "common/types.hh"
#include "mem/set_assoc.hh"
#include "obs/profiler.hh"
#include "stats/stats.hh"

namespace hopp::mem
{

/** Geometry and behaviour knobs for the LLC model. */
struct LlcConfig
{
    /** Total capacity in bytes (default 4 MB, scaled with footprints). */
    std::uint64_t capacityBytes = 4ull << 20;

    /** Associativity. */
    std::size_t ways = 16;
};

/**
 * Tag-only set-associative LLC. access() returns whether the line hit;
 * on miss the caller forwards the access to the memory controller.
 */
class Llc
{
  public:
    explicit Llc(const LlcConfig &cfg);

    /**
     * Access one physical byte address at cacheline granularity.
     * @return true on hit, false on miss (line is then filled).
     *
     * Defined inline: this is the data-path cost of every resident
     * access, and keeping it in the header lets the hit branch (tag
     * probe + LRU promote) inline straight into Vms::residentAccess
     * with no out-of-line call.
     */
    bool
    access(PhysAddr pa)
    {
        HOPP_PROF(Llc);
        std::uint64_t tag = taggedLine(pa);
        // One combined way scan for probe + fill (identical hit/victim
        // behaviour to touch() + insert(), see SetAssocCache).
        if (tags_.probeInsert(tag, Empty{}).hit) {
            ++hits_;
            return true;
        }
        ++misses_;
        return false;
    }

    /**
     * Invalidate every line of a physical page. Called when a frame is
     * recycled for a different page (the RDMA DMA-write of new contents
     * replaces the stale lines in real hardware).
     *
     * Implemented by bumping the frame's epoch: lines of the previous
     * tenancy can no longer hit, but — exactly as real stale lines —
     * they keep occupying capacity until natural LRU eviction, so
     * swapping traffic does not get a spurious cache-cleaning bonus.
     */
    void invalidatePage(Ppn ppn);

    /** Drop all lines. */
    void clear() { tags_.clear(); }

    /** Hits observed. */
    std::uint64_t hits() const { return hits_; }

    /** Misses observed. */
    std::uint64_t misses() const { return misses_; }

    /** Number of sets (for tests). */
    std::size_t sets() const { return tags_.sets(); }

    /** Reset counters, keep contents. */
    void
    resetStats()
    {
        hits_ = 0;
        misses_ = 0;
    }

  private:
    friend class hopp::check::Access;

    struct Empty
    {
    };

    /** Versioned tag: epoch in the high bits, line address low. */
    std::uint64_t
    taggedLine(PhysAddr pa) const
    {
        // Frame number as dense per-frame vector index. hopp-lint: allow(raw)
        std::uint64_t frame = pageOf(pa).raw();
        std::uint32_t epoch = frame < epochs_.size() ? epochs_[frame] : 0;
        // The set index comes from the low line-address bits; the epoch
        // only disambiguates tags, so invalidated lines conflict in the
        // same set they always occupied.
        return (static_cast<std::uint64_t>(epoch) << 40) | lineOf(pa);
    }

    SetAssocCache<Empty> tags_;
    std::vector<std::uint32_t> epochs_; // per-frame tenancy version
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace hopp::mem

