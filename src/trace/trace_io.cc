// Binary trace serialisation is a designated raw boundary.
// hopp-lint: allow-file(raw, page-shift)

#include "trace/trace_io.hh"

#include <cstdio>
#include <memory>

namespace hopp::trace
{

namespace
{

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

bool
writeTraceFile(const std::string &path,
               const std::vector<HmttRecord> &records)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    for (const auto &r : records) {
        std::uint64_t words[2] = {r.pack(), r.fullTime.raw()};
        if (std::fwrite(words, sizeof(words), 1, f.get()) != 1)
            return false;
    }
    return true;
}

std::vector<HmttRecord>
readTraceFile(const std::string &path)
{
    std::vector<HmttRecord> out;
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return out;
    std::uint64_t words[2];
    while (std::fread(words, sizeof(words), 1, f.get()) == 1) {
        HmttRecord r = HmttRecord::unpack(words[0]);
        r.fullTime = Tick{words[1]};
        r.fullAddr =
            PhysAddr{static_cast<std::uint64_t>(r.addr29) << lineShift};
        out.push_back(r);
    }
    return out;
}

} // namespace hopp::trace
