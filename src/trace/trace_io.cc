// Binary trace serialisation is a designated raw boundary.
// hopp-lint: allow-file(raw, page-shift)

#include "trace/trace_io.hh"

#include <cstdio>
#include <memory>

namespace hopp::trace
{

namespace
{

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

const char *
traceIoStatusName(TraceIoStatus s)
{
    switch (s) {
      case TraceIoStatus::Ok:
        return "ok";
      case TraceIoStatus::OpenFailed:
        return "open failed";
      case TraceIoStatus::WriteFailed:
        return "write failed";
      case TraceIoStatus::BadHeader:
        return "bad header";
      case TraceIoStatus::Truncated:
        return "truncated";
      case TraceIoStatus::Corrupt:
        return "corrupt";
    }
    return "unknown";
}

bool
writeTraceFile(const std::string &path,
               const std::vector<HmttRecord> &records)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    for (const auto &r : records) {
        std::uint64_t words[2] = {r.pack(), r.fullTime.raw()};
        if (std::fwrite(words, sizeof(words), 1, f.get()) != 1)
            return false;
    }
    return true;
}

TraceIoStatus
readTraceFile(const std::string &path, std::vector<HmttRecord> &out)
{
    out.clear();
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return TraceIoStatus::OpenFailed;
    std::uint64_t words[2];
    std::size_t got;
    while ((got = std::fread(words, sizeof(std::uint64_t), 2,
                             f.get())) == 2) {
        HmttRecord r = HmttRecord::unpack(words[0]);
        r.fullTime = Tick{words[1]};
        r.fullAddr =
            PhysAddr{static_cast<std::uint64_t>(r.addr29) << lineShift};
        out.push_back(r);
    }
    // A trailing partial record means the writer died mid-record (or
    // the file is not a trace at all) — report it instead of silently
    // dropping the tail.
    if (got != 0 || std::ferror(f.get()))
        return TraceIoStatus::Truncated;
    return TraceIoStatus::Ok;
}

} // namespace hopp::trace
