// External wire-format ingestion is a designated raw boundary.
// hopp-lint: allow-file(raw, page-shift)

#include "trace/champsim.hh"

#include <cstdio>
#include <cstring>

#include "common/flat_map.hh"
#include "trace/trace_file.hh"

namespace hopp::trace
{

namespace
{

// ChampSim's trace_instr_format: 2 destination + 4 source operands.
constexpr unsigned champDst = 2;
constexpr unsigned champSrc = 4;

struct ChampSimInstr
{
    std::uint64_t ip;
    std::uint8_t isBranch;
    std::uint8_t branchTaken;
    std::uint8_t destinationRegisters[champDst];
    std::uint8_t sourceRegisters[champSrc];
    std::uint64_t destinationMemory[champDst];
    std::uint64_t sourceMemory[champSrc];
};
static_assert(sizeof(ChampSimInstr) == 64,
              "ChampSim trace_instr_format is 64 bytes");

} // namespace

ChampSimImport
importChampSim(const std::string &in_path, const std::string &out_path,
               const ChampSimOptions &opt)
{
    ChampSimImport result;
    std::FILE *in = std::fopen(in_path.c_str(), "rb");
    if (!in) {
        result.status = TraceIoStatus::OpenFailed;
        return result;
    }
    TraceWriter out(out_path);
    if (!out.ok()) {
        std::fclose(in);
        result.status = TraceIoStatus::WriteFailed;
        return result;
    }
    FlatU64Map<std::uint8_t> seenPages;
    Tick now;
    ChampSimInstr instr;
    std::size_t got;
    auto emit = [&](std::uint64_t vaddr, bool is_write) {
        std::uint64_t page = vaddr >> pageShift;
        if (!seenPages.find(page)) {
            seenPages[page] = 1;
            ReplayRecord pte;
            pte.kind = ReplayKind::PteSet;
            pte.pid = Pid{opt.pid};
            pte.vpn = Vpn{page};
            pte.ppn = Ppn{page}; // identity: ChampSim has no phys map
            pte.tick = now;
            out.append(pte);
            ++result.pages;
        }
        ReplayRecord mc;
        mc.kind = ReplayKind::Mc;
        mc.isWrite = is_write;
        mc.pa = PhysAddr{vaddr};
        mc.tick = now;
        out.append(mc);
        ++result.accesses;
    };
    while ((got = std::fread(&instr, 1, sizeof(instr), in)) ==
           sizeof(instr)) {
        ++result.instructions;
        for (unsigned i = 0; i < champSrc; ++i) {
            if (instr.sourceMemory[i] != 0)
                emit(instr.sourceMemory[i], false);
        }
        for (unsigned i = 0; i < champDst; ++i) {
            if (instr.destinationMemory[i] != 0)
                emit(instr.destinationMemory[i], true);
        }
        now += opt.tickPerInstr;
    }
    bool in_ok = got == 0 && !std::ferror(in);
    std::fclose(in);
    if (!out.finish()) {
        result.status = TraceIoStatus::WriteFailed;
        return result;
    }
    if (!in_ok) {
        // Trailing partial instruction: the input is damaged (or not a
        // ChampSim trace). The records already converted stand.
        result.status = TraceIoStatus::Truncated;
    }
    return result;
}

} // namespace hopp::trace
