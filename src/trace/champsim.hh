/**
 * @file
 * ChampSim trace importer: converts the 64-byte ChampSim
 * trace_instr_format stream into a HoPP replay trace, so externally
 * captured traces (SPEC, GAP, ...) become first-class scenarios for
 * hopp-replay without writing a workload generator.
 *
 * ChampSim carries virtual data addresses and no page table, so the
 * importer synthesizes an identity mapping: each page's first touch
 * emits a PteSet with ppn == vpn before the access itself, which is
 * exactly what the RPT needs to reverse-translate hot frames. Ticks
 * are synthetic (a fixed per-instruction advance).
 */

#pragma once

#include <cstdint>
#include <string>

#include "trace/trace_io.hh"

namespace hopp::trace
{

/** Knobs for the ChampSim conversion. */
struct ChampSimOptions
{
    /** PID assigned to every synthesized mapping/access. */
    std::uint64_t pid = 1;

    /** Simulated nanoseconds per ChampSim instruction. */
    Duration tickPerInstr = 4;
};

/** What a conversion produced. */
struct ChampSimImport
{
    TraceIoStatus status = TraceIoStatus::Ok;
    std::uint64_t instructions = 0;
    std::uint64_t accesses = 0;
    std::uint64_t pages = 0; //!< distinct pages (PteSet records)
};

/**
 * Convert the (decompressed) ChampSim trace at @p in_path into a
 * Delta-codec replay trace at @p out_path.
 */
ChampSimImport importChampSim(const std::string &in_path,
                              const std::string &out_path,
                              const ChampSimOptions &opt = {});

} // namespace hopp::trace
