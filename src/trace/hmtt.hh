/**
 * @file
 * HMTT emulation: a bump-in-the-wire tracer between the memory
 * controller and DRAM (§V). It converts every MC access into an
 * HmttRecord, pushes it into the reserved-DRAM ring, and charges the
 * record-write bandwidth — reproducing the prototype in which HPD runs
 * in *software* over the full raw trace (unlike the §III-B design, in
 * which HPD lives inside the MC and only hot pages are written out).
 */

#pragma once

#include <cstdint>

#include "common/types.hh"
#include "mem/dram.hh"
#include "mem/memctrl.hh"
#include "trace/record.hh"
#include "trace/trace_buffer.hh"

namespace hopp::trace
{

/** HMTT configuration. */
struct HmttConfig
{
    /** Ring capacity in records (reserved area in DRAM 1). */
    std::size_t ringCapacity = 1 << 20;

    /** Bytes written to DRAM per record (packed record, padded). */
    std::uint64_t bytesPerRecord = 8;

    /** Coarse timestamp granularity of the 8-bit wrapping stamp. */
    Duration timestampQuantum = 100;
};

/**
 * DIMM-snooping tracer emulation.
 */
class Hmtt : public mem::McObserver
{
  public:
    Hmtt(mem::Dram &trace_dram, const HmttConfig &cfg = {})
        : dram_(trace_dram), cfg_(cfg), ring_(cfg.ringCapacity)
    {
    }

    /** MC tap: record every access. */
    void
    onMcAccess(PhysAddr pa, bool is_write, Tick now) override
    {
        HmttRecord r;
        r.seq = seq_++;
        // Wrapping 8-bit wire timestamp quantisation. hopp-lint: allow(raw)
        r.timestamp =
            static_cast<std::uint8_t>(now.raw() / cfg_.timestampQuantum);
        r.isWrite = is_write;
        r.addr29 = toAddr29(pa);
        r.fullTime = now;
        r.fullAddr = pa;
        ring_.push(r);
        dram_.recordTraffic(mem::TrafficSource::TraceWrite,
                            cfg_.bytesPerRecord);
    }

    /** The reserved-DRAM ring the software consumes. */
    RingBuffer<HmttRecord> &ring() { return ring_; }

    /** Records captured so far (including dropped). */
    std::uint64_t
    captured() const
    {
        return ring_.pushed() + ring_.dropped();
    }

  private:
    mem::Dram &dram_;
    HmttConfig cfg_;
    RingBuffer<HmttRecord> ring_;
    std::uint8_t seq_ = 0;
};

} // namespace hopp::trace

