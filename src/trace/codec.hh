/**
 * @file
 * Compact replay-trace codec: the record vocabulary the replay engine
 * consumes (MC accesses plus the PTE events that keep the RPT in sync)
 * and the delta+zigzag+varint encoding that packs a record into a few
 * bytes. Encoding state resets at every block boundary, so any block
 * of a trace file decodes independently (seekability).
 *
 * Byte layout of one encoded record (codec::Delta):
 *
 *   control byte:
 *     bits 0-1  record kind (Mc / PteSet / PteClear / PteInit)
 *     bit  2    isWrite (Mc) or shared (PTE kinds)
 *     Mc:       bits 3-7 tick delta 0..30 inline; 31 = escape, a
 *               zigzag varint tick delta follows the control byte.
 *               (Mc has no huge flag, so bit 3 joins the tick code:
 *               inter-access gaps cluster just past 14 ns, and the
 *               wider field keeps them inline.)
 *     PTE:      bit 3 huge; bits 4-7 tick delta 0..14 inline; 15 =
 *               escape as above
 *   then, by kind:
 *     Mc        zigzag varint of the cacheline-number delta
 *     PteSet /  varint pid, zigzag varint vpn delta, zigzag varint
 *     PteInit   ppn delta
 *     PteClear  same payload as PteSet (flags unused)
 *
 * Deltas are relative to the previous record of the same field within
 * the block; the first record of a block encodes against zeroed state,
 * i.e. an absolute value in zigzag form.
 *
 * Packing addresses/ticks into wire integers is this file's purpose,
 * and the delta baselines live in that raw wire space by design.
 * hopp-lint: allow-file(raw, page-shift, raw-int-addr)
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hopp::trace
{

/** What one replay record describes. */
enum class ReplayKind : std::uint8_t
{
    /** A memory-controller access (the HMTT tap). */
    Mc = 0,
    /** set_pte_at: a mapping appeared or changed. */
    PteSet = 1,
    /** pte_clear: a mapping was torn down. */
    PteClear = 2,
    /**
     * A mapping that existed when recording started (the initial
     * page-table snapshot). Replayed straight into the RPT, exactly as
     * HoppSystem::start() builds it, so RPT-cache update counters stay
     * byte-identical to the live run.
     */
    PteInit = 3,
};

/** One decoded replay record. Unused fields stay zero for each kind. */
struct ReplayRecord
{
    ReplayKind kind = ReplayKind::Mc;
    bool isWrite = false; //!< Mc only
    bool shared = false;  //!< PTE kinds only
    bool huge = false;    //!< PTE kinds only
    Pid pid;              //!< PTE kinds only
    PhysAddr pa;          //!< Mc only
    Vpn vpn;              //!< PTE kinds only
    Ppn ppn;              //!< PTE kinds only
    Tick tick;
};

/** Map a signed value onto unsigned with small magnitudes small. */
constexpr std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode. */
constexpr std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Append @p v as a LEB128 varint (7 payload bits per byte). */
inline void
putVarint(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    while (v >= 0x80) {
        buf.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    buf.push_back(static_cast<std::uint8_t>(v));
}

/**
 * Decode a varint from [@p p, @p end). Advances @p p past the varint.
 * @return false on buffer overrun or a varint wider than 64 bits.
 */
inline bool
getVarint(const std::uint8_t *&p, const std::uint8_t *end,
          std::uint64_t &out)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (p < end) {
        std::uint8_t byte = *p++;
        if (shift >= 63 && (byte >> (64 - shift)) != 0)
            return false; // would overflow 64 bits
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            out = v;
            return true;
        }
        shift += 7;
        if (shift > 63)
            return false;
    }
    return false;
}

/**
 * Per-block delta baselines. Zero-initialised at every block start;
 * both sides advance it record by record.
 */
struct DeltaState
{
    std::uint64_t tick = 0;
    std::uint64_t mcLine = 0;
    std::uint64_t vpn = 0;
    std::uint64_t ppn = 0;
};

/** Worst-case encoded size of one record (sizing decode buffers). */
inline constexpr std::size_t maxEncodedRecordBytes =
    1 /* control */ + 10 /* tick */ + 3 /* pid */ + 10 /* vpn/line */ +
    10 /* ppn */;

namespace detail
{

inline constexpr std::uint8_t kindMask = 0x3;
inline constexpr std::uint8_t flagWrite = 1u << 2; // isWrite / shared
inline constexpr std::uint8_t flagHuge = 1u << 3;  // PTE kinds only
// Mc: 5-bit tick code (bit 3 is free — no huge flag).
inline constexpr unsigned mcTickShift = 3;
inline constexpr std::uint64_t mcTickEscape = 31;
// PTE kinds: 4-bit tick code above the huge flag.
inline constexpr unsigned tickShift = 4;
inline constexpr std::uint64_t tickEscape = 15;

} // namespace detail

/** Append the encoding of @p r to @p buf, advancing @p st. */
inline void
encodeRecord(std::vector<std::uint8_t> &buf, DeltaState &st,
             const ReplayRecord &r)
{
    std::int64_t dt =
        static_cast<std::int64_t>(r.tick.raw() - st.tick);
    st.tick = r.tick.raw();
    std::uint8_t ctl = static_cast<std::uint8_t>(r.kind);
    if (r.kind == ReplayKind::Mc ? r.isWrite : r.shared)
        ctl |= detail::flagWrite;
    bool inlineTick;
    if (r.kind == ReplayKind::Mc) {
        inlineTick = dt >= 0 && dt <= 30;
        std::uint64_t code = inlineTick
                                 ? static_cast<std::uint64_t>(dt)
                                 : detail::mcTickEscape;
        ctl |= static_cast<std::uint8_t>(code << detail::mcTickShift);
    } else {
        if (r.huge)
            ctl |= detail::flagHuge;
        inlineTick = dt >= 0 && dt <= 14;
        std::uint64_t code = inlineTick
                                 ? static_cast<std::uint64_t>(dt)
                                 : detail::tickEscape;
        ctl |= static_cast<std::uint8_t>(code << detail::tickShift);
    }
    buf.push_back(ctl);
    if (!inlineTick)
        putVarint(buf, zigzagEncode(dt));
    if (r.kind == ReplayKind::Mc) {
        std::uint64_t line = lineOf(r.pa);
        putVarint(buf, zigzagEncode(static_cast<std::int64_t>(
                           line - st.mcLine)));
        st.mcLine = line;
    } else {
        putVarint(buf, r.pid.raw());
        putVarint(buf, zigzagEncode(static_cast<std::int64_t>(
                           r.vpn.raw() - st.vpn)));
        st.vpn = r.vpn.raw();
        putVarint(buf, zigzagEncode(static_cast<std::int64_t>(
                           r.ppn.raw() - st.ppn)));
        st.ppn = r.ppn.raw();
    }
}

/**
 * Decode one record from [@p p, @p end), advancing @p p and @p st.
 * @return false on a malformed or truncated payload.
 */
inline bool
decodeRecord(const std::uint8_t *&p, const std::uint8_t *end,
             DeltaState &st, ReplayRecord &r)
{
    if (p >= end)
        return false;
    std::uint8_t ctl = *p++;
    r.kind = static_cast<ReplayKind>(ctl & detail::kindMask);
    bool isMc = r.kind == ReplayKind::Mc;
    std::uint64_t code = isMc ? ctl >> detail::mcTickShift
                              : ctl >> detail::tickShift;
    std::int64_t dt;
    if (code == (isMc ? detail::mcTickEscape : detail::tickEscape)) {
        std::uint64_t zz;
        if (!getVarint(p, end, zz))
            return false;
        dt = zigzagDecode(zz);
    } else {
        dt = static_cast<std::int64_t>(code);
    }
    st.tick += static_cast<std::uint64_t>(dt);
    r.tick = Tick{st.tick};
    if (r.kind == ReplayKind::Mc) {
        r.isWrite = (ctl & detail::flagWrite) != 0;
        r.shared = false;
        r.huge = false;
        r.pid = Pid{};
        r.vpn = Vpn{};
        r.ppn = Ppn{};
        std::uint64_t zz;
        if (!getVarint(p, end, zz))
            return false;
        st.mcLine += static_cast<std::uint64_t>(zigzagDecode(zz));
        r.pa = PhysAddr{st.mcLine << lineShift};
        return true;
    }
    r.isWrite = false;
    r.shared = (ctl & detail::flagWrite) != 0;
    r.huge = (ctl & detail::flagHuge) != 0;
    r.pa = PhysAddr{};
    std::uint64_t pid_raw, zz;
    if (!getVarint(p, end, pid_raw) || pid_raw > 0xFFFF)
        return false;
    r.pid = Pid{pid_raw};
    if (!getVarint(p, end, zz))
        return false;
    st.vpn += static_cast<std::uint64_t>(zigzagDecode(zz));
    r.vpn = Vpn{st.vpn};
    if (!getVarint(p, end, zz))
        return false;
    st.ppn += static_cast<std::uint64_t>(zigzagDecode(zz));
    r.ppn = Ppn{st.ppn};
    return true;
}

} // namespace hopp::trace
