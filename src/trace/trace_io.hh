/**
 * @file
 * Binary trace file I/O for offline studies (the paper collects offline
 * HMTT traces for §VI-D's pattern analysis and Table V's bandwidth
 * accounting). Format: little-endian packed records, 16 bytes each
 * (packed wire bits + full timestamp).
 */

#pragma once

#include <string>
#include <vector>

#include "trace/record.hh"

namespace hopp::trace
{

/**
 * Outcome of a trace file operation. Distinguishes "the file has no
 * records" (Ok, empty output) from "the file could not be opened or is
 * damaged" — callers must branch on the status, not the record count.
 */
enum class TraceIoStatus
{
    Ok = 0,
    /** fopen failed (missing file, permissions, bad path). */
    OpenFailed,
    /** fwrite/fclose failed (disk full, IO error). */
    WriteFailed,
    /** File magic/version/codec field is not a trace file's. */
    BadHeader,
    /** File ends mid-record or mid-block. */
    Truncated,
    /** Structurally valid framing but undecodable payload. */
    Corrupt,
};

/** Human-readable name of @p s for error messages. */
const char *traceIoStatusName(TraceIoStatus s);

/** Write records to @p path. @return false on IO failure. */
bool writeTraceFile(const std::string &path,
                    const std::vector<HmttRecord> &records);

/**
 * Read all records of @p path into @p out (cleared first).
 * @return Ok (possibly zero records), OpenFailed, or Truncated when
 * the file ends inside a 16-byte record.
 */
TraceIoStatus readTraceFile(const std::string &path,
                            std::vector<HmttRecord> &out);

} // namespace hopp::trace
