/**
 * @file
 * Binary trace file I/O for offline studies (the paper collects offline
 * HMTT traces for §VI-D's pattern analysis and Table V's bandwidth
 * accounting). Format: little-endian packed records, 16 bytes each
 * (packed wire bits + full timestamp).
 */

#pragma once

#include <string>
#include <vector>

#include "trace/record.hh"

namespace hopp::trace
{

/** Write records to @p path. @return false on IO failure. */
bool writeTraceFile(const std::string &path,
                    const std::vector<HmttRecord> &records);

/** Read records from @p path. @return empty vector on IO failure. */
std::vector<HmttRecord> readTraceFile(const std::string &path);

} // namespace hopp::trace

