// Trace container framing is a designated raw boundary.
// hopp-lint: allow-file(raw, page-shift)

#include "trace/trace_file.hh"

#include <algorithm>
#include <cstring>

namespace hopp::trace
{

namespace
{

constexpr char traceMagic[8] = {'H', 'O', 'P', 'P', 'T', 'R', 'C', '1'};

struct FileHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t codec;
};
static_assert(sizeof(FileHeader) == 16);

struct BlockHeader
{
    std::uint32_t nRecords;
    std::uint32_t payloadBytes;
};
static_assert(sizeof(BlockHeader) == 8);

constexpr std::size_t rawRecordBytes = 16;

/** Largest payload any legal block can carry, across both codecs. */
constexpr std::size_t maxBlockPayload =
    static_cast<std::size_t>(maxBlockRecords) *
    std::max(maxEncodedRecordBytes, rawRecordBytes);

} // namespace

// ---------------------------------------------------------------- writer

TraceWriter::TraceWriter(const std::string &path, Options opt)
    : opt_(opt)
{
    opt_.blockRecords =
        std::clamp<std::uint32_t>(opt_.blockRecords, 1, maxBlockRecords);
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        return;
    ok_ = true;
    FileHeader h{};
    std::memcpy(h.magic, traceMagic, sizeof(traceMagic));
    h.version = traceFormatVersion;
    h.codec = static_cast<std::uint32_t>(opt_.codec);
    put(&h, sizeof(h));
    // One reservation covers the worst-case block; append never grows.
    block_.reserve(static_cast<std::size_t>(opt_.blockRecords) *
                   std::max(maxEncodedRecordBytes, rawRecordBytes));
}

TraceWriter::~TraceWriter()
{
    finish();
}

void
TraceWriter::put(const void *p, std::size_t n)
{
    if (!ok_)
        return;
    if (std::fwrite(p, 1, n, file_) != n) {
        ok_ = false;
        return;
    }
    bytesWritten_ += n;
}

void
TraceWriter::append(const ReplayRecord &r)
{
    if (!file_)
        return;
    if (opt_.codec == TraceCodec::Raw16) {
        if (r.kind != ReplayKind::Mc) {
            ++pteDropped_;
            return;
        }
        HmttRecord raw;
        raw.seq = rawSeq_++;
        raw.timestamp = static_cast<std::uint8_t>(r.tick.raw() / 100);
        raw.isWrite = r.isWrite;
        raw.addr29 = toAddr29(r.pa);
        raw.fullTime = r.tick;
        raw.fullAddr = r.pa;
        appendRaw(raw);
        return;
    }
    encodeRecord(block_, delta_, r);
    ++records_;
    if (++blockCount_ >= opt_.blockRecords)
        flushBlock();
}

void
TraceWriter::appendRaw(const HmttRecord &r)
{
    hopp_assert(opt_.codec == TraceCodec::Raw16,
                "appendRaw requires the Raw16 codec");
    if (!file_)
        return;
    std::uint64_t words[2] = {r.pack(), r.fullTime.raw()};
    const auto *bytes = reinterpret_cast<const std::uint8_t *>(words);
    block_.insert(block_.end(), bytes, bytes + sizeof(words));
    ++records_;
    if (++blockCount_ >= opt_.blockRecords)
        flushBlock();
}

void
TraceWriter::flushBlock()
{
    if (blockCount_ == 0)
        return;
    BlockHeader bh{blockCount_,
                   static_cast<std::uint32_t>(block_.size())};
    put(&bh, sizeof(bh));
    put(block_.data(), block_.size());
    block_.clear();
    blockCount_ = 0;
    delta_ = DeltaState{};
}

bool
TraceWriter::finish()
{
    if (finished_)
        return ok_;
    finished_ = true;
    if (file_) {
        flushBlock();
        if (std::fclose(file_) != 0)
            ok_ = false;
        file_ = nullptr;
    }
    return ok_;
}

// ---------------------------------------------------------------- reader

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

TraceIoStatus
TraceReader::open(const std::string &path)
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
    decoded_ = 0;
    blockLeft_ = 0;
    pos_ = end_ = nullptr;
    eof_ = false;
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        return status_ = TraceIoStatus::OpenFailed;
    FileHeader h;
    if (std::fread(&h, sizeof(h), 1, file_) != 1)
        return status_ = TraceIoStatus::BadHeader;
    if (std::memcmp(h.magic, traceMagic, sizeof(traceMagic)) != 0 ||
        h.version != traceFormatVersion ||
        h.codec > static_cast<std::uint32_t>(TraceCodec::Raw16)) {
        return status_ = TraceIoStatus::BadHeader;
    }
    codec_ = static_cast<TraceCodec>(h.codec);
    // The one allocation: size the block buffer for the worst legal
    // block, so the decode loop below never grows anything.
    buf_.resize(maxBlockPayload);
    return status_ = TraceIoStatus::Ok;
}

bool
TraceReader::loadBlock()
{
    BlockHeader bh;
    // Framed refill of the pre-sized block buffer.
    std::size_t got = // hopp-analyze: allow(hotpath-io) trace decode IS file input
        std::fread(&bh, 1, sizeof(bh), file_);
    if (got == 0) {
        eof_ = true;
        return false;
    }
    if (got != sizeof(bh)) {
        status_ = TraceIoStatus::Truncated;
        return false;
    }
    std::size_t per = codec_ == TraceCodec::Raw16
                          ? rawRecordBytes
                          : maxEncodedRecordBytes;
    if (bh.nRecords == 0 || bh.nRecords > maxBlockRecords ||
        bh.payloadBytes > bh.nRecords * per ||
        (codec_ == TraceCodec::Raw16 &&
         bh.payloadBytes != bh.nRecords * rawRecordBytes)) {
        status_ = TraceIoStatus::Corrupt;
        return false;
    }
    if (std::fread(buf_.data(), 1, bh.payloadBytes, file_) != // hopp-analyze: allow(hotpath-io) trace decode IS file input
        bh.payloadBytes) {
        status_ = TraceIoStatus::Truncated;
        return false;
    }
    pos_ = buf_.data();
    end_ = buf_.data() + bh.payloadBytes;
    blockLeft_ = bh.nRecords;
    delta_ = DeltaState{};
    return true;
}

std::size_t
TraceReader::nextBatch(ReplayRecord *out, std::size_t max)
{
    if (status_ != TraceIoStatus::Ok || eof_)
        return 0;
    std::size_t n = 0;
    while (n < max) {
        if (blockLeft_ == 0) {
            if (pos_ != end_) {
                // Payload bytes left over after the last record:
                // the block lied about one of its counts.
                status_ = TraceIoStatus::Corrupt;
                return n;
            }
            if (!loadBlock())
                return n;
        }
        ReplayRecord &r = out[n];
        if (codec_ == TraceCodec::Raw16) {
            std::uint64_t words[2];
            std::memcpy(words, pos_, sizeof(words));
            pos_ += sizeof(words);
            HmttRecord raw = HmttRecord::unpack(words[0]);
            r.kind = ReplayKind::Mc;
            r.isWrite = raw.isWrite;
            r.shared = false;
            r.huge = false;
            r.pid = Pid{};
            r.vpn = Vpn{};
            r.ppn = Ppn{};
            r.pa = PhysAddr{static_cast<std::uint64_t>(raw.addr29)
                            << lineShift};
            r.tick = Tick{words[1]};
        } else if (!decodeRecord(pos_, end_, delta_, r)) {
            status_ = TraceIoStatus::Corrupt;
            return n;
        }
        --blockLeft_;
        ++n;
        ++decoded_;
    }
    return n;
}

TraceIoStatus
TraceReader::skipBlocks(std::uint64_t n)
{
    if (status_ != TraceIoStatus::Ok)
        return status_;
    hopp_assert(blockLeft_ == 0,
                "skipBlocks mid-block: not at a block boundary");
    for (std::uint64_t i = 0; i < n && !eof_; ++i) {
        BlockHeader bh;
        std::size_t got = std::fread(&bh, 1, sizeof(bh), file_);
        if (got == 0) {
            eof_ = true;
            break;
        }
        if (got != sizeof(bh))
            return status_ = TraceIoStatus::Truncated;
        if (std::fseek(file_, static_cast<long>(bh.payloadBytes),
                       SEEK_CUR) != 0) {
            return status_ = TraceIoStatus::Truncated;
        }
    }
    return status_;
}

} // namespace hopp::trace
