/**
 * @file
 * HMTT trace record format (§V): each record carries an 8-bit sequence
 * number, an 8-bit (wrapping) timestamp, a read/write flag and a 29-bit
 * physical address (cacheline granularity). We keep the exact field
 * widths so the packed encoding round-trips the way the hardware's
 * does, and carry a full-resolution shadow timestamp for analysis.
 *
 * This file is a designated raw boundary: packing addresses and times
 * into the fixed-width wire format is exactly what .raw() exists for.
 */

// Wire-format packing boundary. hopp-lint: allow-file(raw, page-shift)

#pragma once

#include <cstdint>

#include "common/types.hh"

namespace hopp::trace
{

/** One HMTT memory-bus record. */
struct HmttRecord
{
    /** 8-bit wrapping sequence number (drop detection). */
    std::uint8_t seq = 0;

    /** 8-bit wrapping coarse timestamp. */
    std::uint8_t timestamp = 0;

    /** True for a write transaction. */
    bool isWrite = false;

    /** 29-bit cacheline-granular physical address field. */
    std::uint32_t addr29 = 0;

    /** Full-resolution simulation time (not part of the wire format). */
    Tick fullTime;

    /** Full physical address (not part of the wire format). */
    PhysAddr fullAddr;

    /** Pack the 46-bit wire format into the low bits of a uint64. */
    std::uint64_t
    pack() const
    {
        return (static_cast<std::uint64_t>(seq) << 38) |
               (static_cast<std::uint64_t>(timestamp) << 30) |
               (static_cast<std::uint64_t>(isWrite) << 29) |
               (addr29 & ((1u << 29) - 1));
    }

    /** Unpack the wire format. Full-resolution fields stay zero. */
    static HmttRecord
    unpack(std::uint64_t bits)
    {
        HmttRecord r;
        r.seq = static_cast<std::uint8_t>(bits >> 38);
        r.timestamp = static_cast<std::uint8_t>(bits >> 30);
        r.isWrite = (bits >> 29) & 1;
        r.addr29 = static_cast<std::uint32_t>(bits & ((1u << 29) - 1));
        return r;
    }

    /** Physical page number from the 29-bit cacheline address. */
    Ppn
    ppn() const
    {
        return Ppn{static_cast<std::uint64_t>(addr29) >>
                   (pageShift - lineShift)};
    }
};

/** Encode a physical byte address into the 29-bit cacheline field. */
constexpr std::uint32_t
toAddr29(PhysAddr pa)
{
    return static_cast<std::uint32_t>(lineOf(pa) & ((1u << 29) - 1));
}

} // namespace hopp::trace

