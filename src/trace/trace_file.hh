/**
 * @file
 * Blocked, seekable replay-trace container (DESIGN.md §15).
 *
 * File layout:
 *
 *   file header (16 B):  magic "HOPPTRC1" | u32 version | u32 codec
 *   block*:              u32 nRecords | u32 payloadBytes | payload
 *
 * Codec Delta packs ReplayRecords with the delta+zigzag+varint record
 * codec (codec.hh); encoder state resets at each block, so blocks
 * decode independently and a reader can seek by skipping whole blocks.
 * Codec Raw16 stores the legacy 16-byte HmttRecord wire pairs
 * (pack() + full timestamp) unchanged — the §V hardware format kept as
 * a fallback for tools that speak only HMTT records.
 *
 * TraceWriter streams records out block by block; TraceReader's
 * nextBatch decode loop is allocation-free (all buffers are sized once
 * at open) and batched to mirror AccessGenerator::nextBatch.
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/codec.hh"
#include "trace/record.hh"
#include "trace/trace_io.hh"

namespace hopp::trace
{

/** Payload encoding of a trace file's blocks. */
enum class TraceCodec : std::uint32_t
{
    /** Delta + zigzag + varint ReplayRecords (the default). */
    Delta = 0,
    /** Raw 16-byte HmttRecord pairs (MC accesses only). */
    Raw16 = 1,
};

/** Trace container format version this build reads and writes. */
inline constexpr std::uint32_t traceFormatVersion = 1;

/** Most records one block may carry (bounds reader buffers). */
inline constexpr std::uint32_t maxBlockRecords = 1u << 16;

/**
 * Streaming trace writer. Records are buffered into blocks and
 * flushed when a block fills; finish() flushes the tail and reports
 * whether every write reached the file.
 */
class TraceWriter
{
  public:
    struct Options
    {
        TraceCodec codec = TraceCodec::Delta;
        /** Records per block (clamped to [1, maxBlockRecords]). */
        std::uint32_t blockRecords = 4096;
    };

    explicit TraceWriter(const std::string &path)
        : TraceWriter(path, Options{})
    {
    }
    TraceWriter(const std::string &path, Options opt);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** False once any open/write failure happened. */
    bool ok() const { return ok_; }

    /**
     * Append one replay record. Under Raw16, PTE records cannot be
     * represented and are dropped (counted in pteDropped()).
     */
    void append(const ReplayRecord &r);

    /** Append a pre-built HMTT record (Raw16 codec only). */
    void appendRaw(const HmttRecord &r);

    /** Flush the tail block and close. @return ok(). Idempotent. */
    bool finish();

    /** Records accepted so far. */
    std::uint64_t records() const { return records_; }

    /** Bytes written so far, headers included. */
    std::uint64_t bytesWritten() const { return bytesWritten_; }

    /** PTE records dropped by the Raw16 codec. */
    std::uint64_t pteDropped() const { return pteDropped_; }

  private:
    void flushBlock();
    void put(const void *p, std::size_t n);

    std::FILE *file_ = nullptr;
    Options opt_;
    std::vector<std::uint8_t> block_;
    DeltaState delta_;
    std::uint32_t blockCount_ = 0;
    std::uint64_t records_ = 0;
    std::uint64_t bytesWritten_ = 0;
    std::uint64_t pteDropped_ = 0;
    std::uint8_t rawSeq_ = 0;
    bool ok_ = false;
    bool finished_ = false;
};

/**
 * Streaming trace reader. open() validates the header and sizes every
 * buffer; nextBatch() then decodes without allocating. A short batch
 * is returned only at end of file or on error — check status() when
 * nextBatch returns 0.
 */
class TraceReader
{
  public:
    TraceReader() = default;
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Open @p path and validate the file header. */
    TraceIoStatus open(const std::string &path);

    /**
     * Decode up to @p max records into @p out.
     * @return records decoded; 0 means end of file or error.
     */
    std::size_t nextBatch(ReplayRecord *out, std::size_t max);

    /** Ok while healthy (including at clean EOF); sticky on error. */
    TraceIoStatus status() const { return status_; }

    /** Codec of the open file. */
    TraceCodec codec() const { return codec_; }

    /**
     * Skip @p n whole blocks without decoding them. Valid only at a
     * block boundary (before any nextBatch, or after a block drained
     * exactly). Decoding then resumes with fresh delta state.
     */
    TraceIoStatus skipBlocks(std::uint64_t n);

    /** Records decoded so far. */
    std::uint64_t recordsDecoded() const { return decoded_; }

  private:
    bool loadBlock();

    std::FILE *file_ = nullptr;
    TraceIoStatus status_ = TraceIoStatus::OpenFailed;
    TraceCodec codec_ = TraceCodec::Delta;
    std::vector<std::uint8_t> buf_;
    const std::uint8_t *pos_ = nullptr;
    const std::uint8_t *end_ = nullptr;
    std::uint32_t blockLeft_ = 0;
    DeltaState delta_;
    std::uint64_t decoded_ = 0;
    bool eof_ = false;
};

} // namespace hopp::trace
