/**
 * @file
 * Ring buffer in "reserved DRAM" carrying trace records from the
 * tracer hardware to consuming software (the prototype writes HMTT
 * records to DRAM 1 via PCIe + DMA, §V). Bounded: when software lags,
 * the hardware drops records and counts them.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/logging.hh"

namespace hopp::trace
{

/**
 * Fixed-capacity single-producer single-consumer ring.
 */
template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t capacity)
        : buf_(capacity), capacity_(capacity)
    {
        hopp_assert(capacity > 0, "ring needs capacity");
    }

    /** @return false (and counts a drop) when the ring is full. */
    bool
    push(const T &item)
    {
        if (size_ == capacity_) {
            ++dropped_;
            return false;
        }
        buf_[(head_ + size_) % capacity_] = item;
        ++size_;
        ++pushed_;
        return true;
    }

    /** Pop the oldest record. */
    std::optional<T>
    pop()
    {
        if (size_ == 0)
            return std::nullopt;
        T item = buf_[head_];
        head_ = (head_ + 1) % capacity_;
        --size_;
        return item;
    }

    /** Records currently queued. */
    std::size_t size() const { return size_; }

    /** True when nothing is queued. */
    bool empty() const { return size_ == 0; }

    /** Capacity in records. */
    std::size_t capacity() const { return capacity_; }

    /** Records dropped because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** Records ever accepted. */
    std::uint64_t pushed() const { return pushed_; }

    /** Zero the lifetime counters (queued records are untouched). */
    void
    resetStats()
    {
        dropped_ = 0;
        pushed_ = 0;
    }

  private:
    std::vector<T> buf_;
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t pushed_ = 0;
};

} // namespace hopp::trace

